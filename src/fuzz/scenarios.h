#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/snapshot.h"

// The workloads the schedule fuzzer points at: small, fully deterministic
// simulator runs, each built to keep one of the runtime's racy protocols
// under continuous load so that perturbing decision points perturbs that
// protocol.  Every scenario returns a checksum over its computation so a
// silently-wrong schedule (lost message, double wakeup, mis-copied object)
// is observable even when nothing panics.

namespace mp::fuzz {

struct ScenarioOpts {
  std::uint64_t seed = 0x5eed;  // machine model rng seed
  int procs = 4;
  std::string queue = "ws";  // ws | distributed
  bool parallel_gc = true;
  int scale = 1;  // workload size multiplier
};

using ScenarioFn = ExecResult (*)(const ScenarioOpts&);

struct Scenario {
  const char* name;
  const char* description;
  ScenarioFn fn;
};

// All registered scenarios, in a stable order.
const std::vector<Scenario>& scenarios();
// nullptr when unknown.
const Scenario* find_scenario(const std::string& name);

// Convenience: a BodyFn for Executor that runs the named scenario
// (panics on an unknown name — resolve with find_scenario first when the
// name is user input).
BodyFn scenario_body(std::string name, ScenarioOpts opts);

}  // namespace mp::fuzz
