#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "fuzz/scenarios.h"
#include "fuzz/snapshot.h"
#include "fuzz/trace.h"

// The fuzz campaign: record a scenario's baseline schedule, then keep
// executing it under small random mutation lists — biased toward the
// decision kinds where the synchronization protocols race — until a run
// fails or the budget expires.  A failure is shrunk (ddmin over the
// mutation list, keyed on the failure signature) and packaged as a
// replayable seed file.

namespace mp::fuzz {

struct DriverOptions {
  std::string scenario;
  ScenarioOpts opts;
  double budget_s = 30;         // wall-clock budget for the campaign
  std::uint64_t max_execs = 0;  // 0 = no execution cap
  std::uint64_t rng_seed = 1;   // mutation-generator seed (campaign identity)
  // Per-execution decision cap; 0 derives one from the baseline trace.
  std::uint64_t decision_budget = 0;
  // Per-execution wall-clock watchdog (the decision budget catches almost
  // every hang long before this).
  double child_timeout_s = 20;
  bool use_snapshot = true;
  // Optional progress sink (fuzz_driver wires this to stderr).
  std::function<void(const std::string&)> log;
};

struct DriverResult {
  bool found = false;
  SeedFile seed;          // shrunk repro (when found)
  RunResult failure;      // the failing run's outcome (when found)
  std::uint64_t executions = 0;
  std::uint64_t shrink_executions = 0;
  std::uint64_t baseline_decisions = 0;
  std::string baseline_summary;
  RunResult baseline;
};

// Run one fuzz campaign.  Stops at the first failure (shrunk) or when the
// budget expires.
DriverResult fuzz_scenario(const DriverOptions& opt);

// Re-execute a seed file's mutation list once, cold (no snapshot server),
// and return the outcome.  `decision_budget_fallback` applies when the
// seed file carries no budget.
RunResult replay_seed(const SeedFile& seed,
                      std::uint64_t decision_budget_fallback = 5'000'000,
                      double child_timeout_s = 60);

// ScenarioOpts embedded in / extracted from a seed file.
SeedFile make_seed_file(const std::string& scenario, const ScenarioOpts& o);
ScenarioOpts opts_from_seed(const SeedFile& seed);

}  // namespace mp::fuzz
