#include "fuzz/scenarios.h"

#include <memory>
#include <utility>

#include "arch/panic.h"
#include "cml/cml.h"
#include "gc/heap.h"
#include "io/stream.h"
#include "kv/client.h"
#include "kv/server.h"
#include "kv/service.h"
#include "mp/sim_platform.h"
#include "threads/scheduler.h"
#include "threads/sync.h"

namespace mp::fuzz {

namespace {

using threads::Barrier;
using threads::CountdownLatch;
using threads::Mutex;
using threads::Scheduler;

SimPlatformConfig base_config(const ScenarioOpts& o) {
  SimPlatformConfig cfg;
  cfg.machine = sim::sequent_s81(o.procs);
  cfg.machine.seed = o.seed;
  cfg.heap.parallel_gc = o.parallel_gc;
  return cfg;
}

threads::SchedulerConfig sched_config(const ScenarioOpts& o) {
  threads::SchedulerConfig cfg;
  if (o.queue == "ws" || o.queue == "work-stealing") {
    cfg.queue = std::make_unique<threads::WorkStealingQueue>();
  } else if (o.queue == "distributed") {
    cfg.queue = std::make_unique<threads::DistributedQueue>();
  } else {
    arch::panic("fuzz scenario: unknown queue discipline '%s'",
                o.queue.c_str());
  }
  // Preemption keeps every proc passing through the dispatcher, which is
  // where most of the interesting decision points live.  The quantum must
  // stay well above the dispatcher's own cost (a distributed-queue steal
  // sweep is ~40-130us of lock traffic at 4 MIPS) or every resumed thread
  // re-preempts before doing any work and the run degenerates into a
  // preempt storm.
  cfg.preempt_interval_us = 250;
  return cfg;
}

// ---- cml-ring ----
//
// The committed-lock CML protocol under load: tokens circulate a ring of
// rendezvous channels (every hop is a two-party commit), while a producer
// pair feeds a select_receive consumer (multi-offer commit, the protocol's
// hard case).  Checksum folds the token values deposited after their final
// lap with the select consumer's ledger.

ExecResult run_cml_ring(const ScenarioOpts& o) {
  SimPlatform platform(base_config(o));
  constexpr int kStations = 4;
  constexpr int kTokens = 3;
  const int laps = 4 * o.scale;
  const int noise = 24 * o.scale;

  long deposits = 0;
  long ledger = 0;
  Scheduler::run(platform, sched_config(o), [&](Scheduler& s) {
    std::vector<std::unique_ptr<cml::Channel<long>>> ring;
    for (int i = 0; i < kStations; i++) {
      ring.push_back(std::make_unique<cml::Channel<long>>(s));
    }
    CountdownLatch done(s, kStations + 2);

    // Token format: value in the high bits, hops remaining in the low 16.
    for (int i = 0; i < kStations; i++) {
      s.fork([&, i] {
        for (int h = 0; h < laps * kTokens; h++) {
          const long packed = ring[i]->recv();
          long hops = packed & 0xffff;
          long val = (packed >> 16) + i + 1;
          hops--;
          if (hops == 0) {
            deposits += val;  // only station kStations-1 ever gets here
          } else {
            ring[(i + 1) % kStations]->send((val << 16) | hops);
          }
        }
        done.count_down();
      });
    }

    std::vector<std::unique_ptr<cml::Channel<long>>> side;
    side.push_back(std::make_unique<cml::Channel<long>>(s));
    side.push_back(std::make_unique<cml::Channel<long>>(s));
    std::vector<cml::Channel<long>*> side_ptrs = {side[0].get(),
                                                  side[1].get()};
    s.fork([&] {
      for (int j = 0; j < noise; j++) side[j % 2]->send(1000 + j);
      done.count_down();
    });
    s.fork([&] {
      for (int j = 0; j < noise; j++) {
        ledger += cml::select_receive<long>(side_ptrs);
      }
      done.count_down();
    });

    // Inject the tokens (each send is itself a rendezvous with station 0).
    const long hops = static_cast<long>(laps) * kStations;
    for (int t = 0; t < kTokens; t++) {
      ring[0]->send((static_cast<long>(t + 1) << 16) | hops);
    }
    done.await();
  });

  ExecResult r;
  r.checksum = static_cast<std::uint64_t>(deposits) * 31 +
               static_cast<std::uint64_t>(ledger);
  r.virtual_us = platform.report().total_us;
  return r;
}

// ---- qlock-storm ----
//
// The PR-6 queue-lock claim/grant/park protocol: more threads than procs
// hammer one mutex in short critical sections (with occasional yields while
// holding, so waiters exhaust their spin and park), punctuated by barrier
// episodes that exercise the generation-tagged flip.  This is the scenario
// that re-finds the injected qlock-park-race and barrier-generation bugs.

ExecResult run_qlock_storm(const ScenarioOpts& o) {
  SimPlatform platform(base_config(o));
  const int threads = o.procs * 2 < 4 ? 4 : o.procs * 2;
  const int episodes = 3 * o.scale;
  constexpr int kInner = 10;

  long counter = 0;
  Scheduler::run(platform, sched_config(o), [&](Scheduler& s) {
    Mutex m(s);
    Barrier bar(s, threads);
    CountdownLatch done(s, threads);
    for (int t = 0; t < threads; t++) {
      s.fork([&, t] {
        for (int e = 0; e < episodes; e++) {
          for (int k = 0; k < kInner; k++) {
            m.lock();
            counter += t * 131 + e * 17 + k;
            if ((t + k) % 5 == 0) s.yield();  // hold across a reschedule
            m.unlock();
            if ((t + k) % 3 == 0) s.yield();
          }
          bar.arrive_and_wait();
        }
        done.count_down();
      });
    }
    done.await();
  });

  ExecResult r;
  r.checksum = static_cast<std::uint64_t>(counter);
  r.virtual_us = platform.report().total_us;
  return r;
}

// ---- wake-storm ----
//
// The PR-5 targeted wakeup protocol: waves of short tasks separated by full
// joins, with staggered timer sleeps inside each wave.  Between waves every
// proc drains, goes idle and parks; the next wave's forks must find and
// wake them (wake_one), and the sleeps route wakeups through the timer
// path.  A lost wakeup deadlocks the join.

ExecResult run_wake_storm(const ScenarioOpts& o) {
  SimPlatform platform(base_config(o));
  const int waves = 4 * o.scale;
  const int fan = o.procs * 3;

  std::vector<long> acc(static_cast<std::size_t>(fan), 0);
  Scheduler::run(platform, sched_config(o), [&](Scheduler& s) {
    for (int w = 0; w < waves; w++) {
      CountdownLatch latch(s, fan);
      for (int i = 0; i < fan; i++) {
        s.fork([&, w, i] {
          if ((w + i) % 2 == 0) s.yield();
          s.sleep_for(static_cast<double>((i % 7) * 3 + 1));
          acc[static_cast<std::size_t>(i)] += w * 1000 + i;
          latch.count_down();
        });
      }
      latch.await();
    }
  });

  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < acc.size(); i++) {
    sum += static_cast<std::uint64_t>(acc[i]) * (i + 1);
  }
  ExecResult r;
  r.checksum = sum;
  r.virtual_us = platform.report().total_us;
  return r;
}

// ---- gc-churn ----
//
// The parallel copier under allocation pressure: each thread grows a cons
// list in a tiny nursery (collections every few hundred allocations),
// periodically dropping its list to make garbage, while all threads mutate
// a shared old array under a mutex (write-barrier traffic and cross-thread
// pointers) and cycle LOS-sized arrays through a rotating root (dirty-flag
// scans, marks, and — with the deliberately tiny arena — pressure-driven
// sweeps).  Together with the card remset this reaches every fuzz decision
// point the latency GC added: kCardFlush (early dirty-card buffer flushes)
// and kLosSweep (minors mutated into LOS-sweeping majors).  Checksum
// traverses the surviving structures, so an object the copier loses or
// mis-links changes the answer even without a panic.

ExecResult run_gc_churn(const ScenarioOpts& o) {
  SimPlatformConfig cfg = base_config(o);
  cfg.heap.nursery_bytes = 32 * 1024;
  cfg.heap.old_bytes = 16u << 20;
  // Small enough that the rotating large arrays cross the LOS pressure
  // threshold within one run, so sweep scheduling becomes a fuzzed decision.
  cfg.heap.los_bytes = 1u << 20;
  cfg.heap.los_pressure_fraction = 0.25;
  SimPlatform platform(cfg);
  const int threads = o.procs < 2 ? 2 : o.procs;
  const int steps = 220 * o.scale;

  std::vector<long> sums(static_cast<std::size_t>(threads), 0);
  std::uint64_t shared_sum = 0;
  Scheduler::run(platform, sched_config(o), [&](Scheduler& s) {
    auto& h = platform.heap();
    Mutex m(s);
    CountdownLatch done(s, threads);
    gc::GlobalRoot shared(
        s.platform().heap(),
        h.alloc_array(static_cast<std::size_t>(threads) + 1,
                      gc::Value::from_int(0)));
    for (int t = 0; t < threads; t++) {
      s.fork([&, t] {
        gc::GlobalRoot list(h, gc::Value::nil());
        gc::GlobalRoot big(h, gc::Value::nil());
        for (int i = 0; i < steps; i++) {
          const long id = t * 1000000L + i;
          list = gc::GlobalRoot(
              h, h.alloc_record({gc::Value::from_int(id), list.get()}));
          // Immediately-dead filler keeps the tiny nursery overflowing, so
          // the baseline itself reaches do_collect's kLosSweep pick (the
          // fuzzer can only override decisions present in the baseline).
          h.alloc_array(24, gc::Value::from_int(i));
          if (i % 64 == 63) list = gc::GlobalRoot(h, gc::Value::nil());
          if (i % 13 == 0) {
            m.lock();
            h.store(shared.get(), static_cast<std::size_t>(t) + 1,
                    gc::Value::from_int(id));
            m.unlock();
          }
          if (i % 8 == 3) {
            // An LOS-sized array holding a young pointer (the list head)
            // replaces the previous one, which becomes sweepable garbage.
            big = gc::GlobalRoot(h, h.alloc_array(1200, list.get()));
          }
          if (i % 17 == 0) s.yield();
        }
        long sum = 0;
        gc::Value v = list.get();
        while (v.is_ptr()) {
          sum += v.field(0).as_int();
          v = v.field(1);
        }
        if (big.get().is_ptr()) {
          sum += big.get().length();
          const gc::Value head = big.get().field(0);
          if (head.is_ptr()) sum += head.field(0).as_int();
        }
        sums[static_cast<std::size_t>(t)] = sum;
        done.count_down();
      });
    }
    done.await();
    for (int t = 0; t < threads; t++) {
      shared_sum = shared_sum * 1099511628211ull +
                   static_cast<std::uint64_t>(
                       shared.get()
                           .field(static_cast<std::size_t>(t) + 1)
                           .as_int());
    }
  });

  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < sums.size(); i++) {
    sum += static_cast<std::uint64_t>(sums[i]) * (i + 1);
  }
  ExecResult r;
  r.checksum = sum ^ shared_sum;
  r.virtual_us = platform.report().total_us;
  return r;
}

// ---- kv-pipeline ----
//
// The PR-8 sharded KV service end to end: several pipelined connections
// (duplex pipes, so every backend schedules the same bytes) hammer a
// multi-shard service with interleaved SET/GET/DEL, cross-shard RANGE
// scatter-gathers, and deliberately malformed commands.  This drives the
// whole stack at once — frame parser resync, per-shard ownership channels,
// the writer's seq reorder buffer, and reader-side fan-out — and any
// schedule-dependent reordering of replies changes the checksum.

std::uint64_t fold_reply(std::uint64_t h, const kv::Reply& rep) {
  auto mix = [&h](std::string_view s) {
    for (const char ch : s) {
      h = (h ^ static_cast<unsigned char>(ch)) * 1099511628211ull;
    }
  };
  h = h * 31 + static_cast<std::uint64_t>(rep.kind);
  h = h * 31 + static_cast<std::uint64_t>(rep.ival);
  mix(rep.text);
  for (const auto& it : rep.items) mix(it);
  return h;
}

ExecResult run_kv_pipeline(const ScenarioOpts& o) {
  SimPlatform platform(base_config(o));
  const int conns = o.procs < 3 ? 3 : o.procs;
  const int ops = 30 * o.scale;
  constexpr int kWindow = 6;

  std::vector<std::uint64_t> digests(static_cast<std::size_t>(conns),
                                     1469598103934665603ull);
  Scheduler::run(platform, sched_config(o), [&](Scheduler& s) {
    kv::KvConfig cfg;
    cfg.shards = o.procs < 2 ? 2 : o.procs;
    kv::KvService svc(s, cfg);
    svc.start();

    CountdownLatch servers_done(s, conns);
    CountdownLatch clients_done(s, conns);
    for (int c = 0; c < conns; c++) {
      auto [client_end, server_end] = io::duplex_pipe(s, 512);
      s.fork([&svc, &servers_done, server_end]() mutable {
        kv::serve(svc, server_end);
        servers_done.count_down();
      });
      s.fork([&, client_end, c]() mutable {
        kv::KvClient cli(client_end);
        std::uint64_t& h = digests[static_cast<std::size_t>(c)];
        int sent = 0;
        while (sent < ops) {
          const int batch = kWindow < ops - sent ? kWindow : ops - sent;
          for (int i = 0; i < batch; i++) {
            const int op = sent + i;
            // Keys are shared across connections (no per-conn prefix), so
            // shard channels see genuine cross-connection interleaving.
            const std::string key = "k" + std::to_string((c + op * 3) % 40);
            switch (op % 7) {
              case 0:
              case 1:
              case 4:
                cli.queue_set(key, "v" + std::to_string(c * 1000 + op));
                break;
              case 2:
              case 5:
                cli.queue_get(key);
                break;
              case 3:
                cli.queue_del(key);
                break;
              default:
                if (op % 14 == 6) {
                  cli.queue_raw("BOGUS command\n");  // parser resync path
                } else {
                  cli.queue_range("k0", "k9~", 8);  // cross-shard fan-out
                }
                break;
            }
          }
          cli.flush();
          for (int i = 0; i < batch; i++) {
            const kv::Reply rep = cli.recv_reply();
            // Values race across connections, so fold only schedule-stable
            // facts: frame kind, error-vs-ok, and structural sizes.
            kv::Reply shape;
            shape.kind = rep.kind;
            shape.ival = rep.kind == kv::Reply::Kind::kArray
                             ? static_cast<long>(rep.items.size())
                             : 0;
            if (rep.kind == kv::Reply::Kind::kSimple ||
                rep.kind == kv::Reply::Kind::kError) {
              shape.text = rep.text;
            }
            h = fold_reply(h, shape);
          }
          sent += batch;
        }
        cli.quit();
        clients_done.count_down();
      });
    }
    clients_done.await();
    servers_done.await();

    // Final state is schedule-dependent per key, but the service must agree
    // with itself: STATS totals come from the shards' own counters.
    const kv::ShardStats st = svc.stats();
    digests[0] = digests[0] * 31 + st.ops;
    svc.stop();
  });

  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < digests.size(); i++) {
    sum += digests[i] * (i + 1);
  }
  ExecResult r;
  r.checksum = sum;
  r.virtual_us = platform.report().total_us;
  return r;
}

}  // namespace

const std::vector<Scenario>& scenarios() {
  static const std::vector<Scenario> kScenarios = {
      {"cml-ring",
       "rendezvous ring + select consumer (committed-lock CML protocol)",
       &run_cml_ring},
      {"qlock-storm",
       "contended mutex + barrier episodes (qlock claim/grant/park)",
       &run_qlock_storm},
      {"wake-storm",
       "fork/join waves with timer sleeps (park/unpark wake protocol)",
       &run_wake_storm},
      {"gc-churn",
       "multi-thread allocation churn in a tiny nursery (parallel copier)",
       &run_gc_churn},
      {"kv-pipeline",
       "pipelined connections into the sharded KV service (PR-8 stack)",
       &run_kv_pipeline},
  };
  return kScenarios;
}

const Scenario* find_scenario(const std::string& name) {
  for (const Scenario& s : scenarios()) {
    if (name == s.name) return &s;
  }
  return nullptr;
}

BodyFn scenario_body(std::string name, ScenarioOpts opts) {
  return [name = std::move(name), opts]() -> ExecResult {
    const Scenario* s = find_scenario(name);
    if (s == nullptr) arch::panic("unknown fuzz scenario '%s'", name.c_str());
    return s->fn(opts);
  };
}

}  // namespace mp::fuzz
