#include "fuzz/snapshot.h"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "arch/panic.h"

namespace mp::fuzz {

namespace {

// Exit code an execution child uses after successfully shipping a result
// record up the pipe.  Any other exit is a crash the reaper synthesizes a
// record for.
constexpr int kExitRecorded = 42;

// Per-child-process context the panic handler needs.  Only ever touched in
// forked children (and only after fork, before any platform procs exist),
// so plain globals are fine.
struct ChildCtx {
  TraceRecorder* rec = nullptr;
  int res_fd = -1;
  bool want_trace = false;
};
ChildCtx g_child;

bool write_all(int fd, const void* buf, std::size_t n) {
  const char* p = static_cast<const char*>(buf);
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

// Blocking exact read; used on the server side where the parent controls
// the lifecycle.  Returns false on EOF or error.
bool read_exact_blocking(int fd, void* buf, std::size_t n) {
  char* p = static_cast<char*>(buf);
  while (n > 0) {
    const ssize_t r = ::read(fd, p, n);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

// Parent-side reader with a wall-clock deadline and an optional child pid
// whose death arms a short grace period (data written before death is still
// readable from the pipe; after the grace there is nothing left to wait
// for).  The parent keeps its own copy of the pipe's write end open, so EOF
// never signals child exit — waitpid does.
struct DeadlineReader {
  int fd;
  std::chrono::steady_clock::time_point deadline;
  pid_t watch = -1;
  bool child_died = false;
  int child_status = 0;
  bool timed_out = false;

  bool read_exact(void* buf, std::size_t n) {
    char* p = static_cast<char*>(buf);
    auto grace = std::chrono::steady_clock::time_point::max();
    while (n > 0) {
      struct pollfd pfd {};
      pfd.fd = fd;
      pfd.events = POLLIN;
      const int pr = ::poll(&pfd, 1, 50);
      if (pr < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (pr > 0 && (pfd.revents & (POLLIN | POLLHUP)) != 0) {
        const ssize_t r = ::read(fd, p, n);
        if (r > 0) {
          p += r;
          n -= static_cast<std::size_t>(r);
          continue;
        }
        if (r < 0 && errno == EINTR) continue;
        return false;  // EOF or hard error
      }
      const auto now = std::chrono::steady_clock::now();
      if (!child_died && watch > 0) {
        int st = 0;
        if (::waitpid(watch, &st, WNOHANG) == watch) {
          child_died = true;
          child_status = st;
          grace = now + std::chrono::milliseconds(500);
        }
      }
      if (now >= deadline) {
        timed_out = true;
        return false;
      }
      if (now >= grace) return false;
    }
    return true;
  }
};

// ---- wire records ----
//
// cmd pipe, parent -> server:   u8 want_trace, u32 n, n x WireMut
// res pipe, children -> parent: 'Y'  server parked at the snapshot point
//                               'T'  u64 count, count x Decision
//                               'R'  u8 status, u64 checksum, f64 virtual_us,
//                                    u64 decisions, u32 len, len msg bytes
//
// Both ends are the same forked binary, so raw struct bytes are a valid
// encoding.  Writers are serialized (one execution in flight at a time), so
// records never interleave.

struct WireMut {
  std::uint64_t index = 0;
  std::uint8_t has_pick = 0;
  std::uint64_t pick = 0;
  double jitter_us = 0;
};

bool send_request(int fd, const std::vector<Mutation>& muts, bool want_trace) {
  const std::uint8_t wt = want_trace ? 1 : 0;
  const std::uint32_t n = static_cast<std::uint32_t>(muts.size());
  if (!write_all(fd, &wt, 1) || !write_all(fd, &n, sizeof n)) return false;
  for (const Mutation& m : muts) {
    WireMut w;
    w.index = m.index;
    w.has_pick = m.has_pick ? 1 : 0;
    w.pick = m.pick;
    w.jitter_us = m.jitter_us;
    if (!write_all(fd, &w, sizeof w)) return false;
  }
  return true;
}

void send_result(int fd, const RunResult& r) {
  const char tag = 'R';
  const std::uint8_t st = static_cast<std::uint8_t>(r.status);
  const std::uint32_t len = static_cast<std::uint32_t>(r.message.size());
  write_all(fd, &tag, 1);
  write_all(fd, &st, 1);
  write_all(fd, &r.checksum, sizeof r.checksum);
  write_all(fd, &r.virtual_us, sizeof r.virtual_us);
  write_all(fd, &r.decisions, sizeof r.decisions);
  write_all(fd, &len, sizeof len);
  if (len > 0) write_all(fd, r.message.data(), len);
}

void send_trace(int fd, const ScheduleTrace& t) {
  const char tag = 'T';
  const std::uint64_t n = t.decisions.size();
  write_all(fd, &tag, 1);
  write_all(fd, &n, sizeof n);
  if (n > 0) write_all(fd, t.decisions.data(), n * sizeof(Decision));
}

bool read_result_body(DeadlineReader& rd, RunResult* r) {
  std::uint8_t st = 0;
  std::uint32_t len = 0;
  if (!rd.read_exact(&st, 1)) return false;
  if (!rd.read_exact(&r->checksum, sizeof r->checksum)) return false;
  if (!rd.read_exact(&r->virtual_us, sizeof r->virtual_us)) return false;
  if (!rd.read_exact(&r->decisions, sizeof r->decisions)) return false;
  if (!rd.read_exact(&len, sizeof len) || len > (1u << 20)) return false;
  r->message.resize(len);
  if (len > 0 && !rd.read_exact(&r->message[0], len)) return false;
  if (st > static_cast<std::uint8_t>(RunResult::Status::kCrash)) return false;
  r->status = static_cast<RunResult::Status>(st);
  return true;
}

// Installed via arch::set_panic_handler in every execution child: classify
// the failure, ship it up the result pipe, and die with the recorded exit
// code so the reaper knows a record was written.
void panic_to_pipe(const char* msg, void* /*arg*/) {
  if (g_child.res_fd < 0) return;  // not a fuzz child: fall through to abort
  RunResult r;
  r.message = msg != nullptr ? msg : "";
  r.decisions = g_child.rec != nullptr ? g_child.rec->cursor() : 0;
  if (r.message.find("decision budget exceeded") != std::string::npos) {
    r.status = RunResult::Status::kHang;
  } else if (r.message.find("simulated deadlock") != std::string::npos) {
    r.status = RunResult::Status::kDeadlock;
  } else {
    r.status = RunResult::Status::kPanic;
  }
  if (g_child.want_trace && g_child.rec != nullptr) {
    send_trace(g_child.res_fd, g_child.rec->trace());
  }
  send_result(g_child.res_fd, r);
  ::_exit(kExitRecorded);
}

// Drop anything buffered in a pipe (used after killing a writer mid-record
// so the next execution starts from a clean stream).
void drain_fd(int fd) {
  char buf[4096];
  for (;;) {
    struct pollfd pfd {};
    pfd.fd = fd;
    pfd.events = POLLIN;
    if (::poll(&pfd, 1, 0) <= 0 || (pfd.revents & POLLIN) == 0) return;
    if (::read(fd, buf, sizeof buf) <= 0) return;
  }
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

const char* status_name(RunResult::Status s) {
  switch (s) {
    case RunResult::Status::kOk: return "ok";
    case RunResult::Status::kPanic: return "panic";
    case RunResult::Status::kDeadlock: return "deadlock";
    case RunResult::Status::kHang: return "hang";
    case RunResult::Status::kCrash: return "crash";
  }
  return "?";
}

std::string RunResult::signature() const {
  std::string s = status_name(status);
  if (!message.empty()) {
    s += " ";
    s += message;
  }
  return s;
}

Executor::Executor(BodyFn body, ExecutorOptions opt)
    : body_(std::move(body)), opt_(opt) {
  // A dead reader must surface as a failed write, not a process kill.
  ::signal(SIGPIPE, SIG_IGN);
  int cmd[2] = {-1, -1};
  int res[2] = {-1, -1};
  if (::pipe(cmd) != 0 || ::pipe(res) != 0) {
    arch::panic("fuzz executor: pipe() failed: %s", std::strerror(errno));
  }
  pipes_.cmd_r = cmd[0];
  pipes_.cmd_w = cmd[1];
  pipes_.res_r = res[0];
  pipes_.res_w = res[1];
}

Executor::~Executor() {
  shutdown_server();
  close_fd(pipes_.cmd_r);
  close_fd(pipes_.cmd_w);
  close_fd(pipes_.res_r);
  close_fd(pipes_.res_w);
}

void Executor::child_main(const std::vector<Mutation>& muts, bool want_trace,
                          bool as_server) {
  // Own process group so the parent can kill this child and any
  // grandchildren with one kill(-pid).
  ::setpgid(0, 0);
  ::signal(SIGPIPE, SIG_IGN);
  close_fd(pipes_.cmd_w);
  close_fd(pipes_.res_r);
  if (opt_.mute_child_stderr) {
    const int nul = ::open("/dev/null", O_WRONLY);
    if (nul >= 0) {
      ::dup2(nul, 2);
      ::close(nul);
    }
  }
  // The driver toggles MPNJ_FUZZ_INJECT between executions; the cached
  // parse predates this fork.
  reparse_injected_bugs();

  TraceRecorder rec(muts, opt_.decision_budget, /*record=*/true);
  g_child.rec = &rec;
  g_child.res_fd = pipes_.res_w;
  g_child.want_trace = want_trace;

  if (as_server) {
    rec.set_checkpoint(opt_.snapshot_at, [this, &rec] {
      // Parked at the snapshot point, deep inside the running simulation.
      // Loop: take a request, fork, let the grandchild resume the run with
      // the mutated suffix, reap it.  The lambda returning IS the restore.
      const char ready = 'Y';
      write_all(pipes_.res_w, &ready, 1);
      for (;;) {
        std::uint8_t want = 0;
        std::uint32_t n = 0;
        if (!read_exact_blocking(pipes_.cmd_r, &want, 1) ||
            !read_exact_blocking(pipes_.cmd_r, &n, sizeof n) ||
            n > (1u << 20)) {
          ::_exit(0);  // parent closed the command pipe: orderly shutdown
        }
        std::vector<Mutation> req(n);
        for (std::uint32_t i = 0; i < n; i++) {
          WireMut w;
          if (!read_exact_blocking(pipes_.cmd_r, &w, sizeof w)) ::_exit(0);
          req[i].index = w.index;
          req[i].has_pick = w.has_pick != 0;
          req[i].pick = w.pick;
          req[i].jitter_us = w.jitter_us;
        }
        const pid_t pid = ::fork();
        if (pid == 0) {
          g_child.want_trace = want != 0;
          rec.set_mutations(std::move(req));
          return;  // resume the simulation in the grandchild
        }
        RunResult r;
        if (pid < 0) {
          r.status = RunResult::Status::kCrash;
          r.message = "snapshot server: fork() failed";
          send_result(pipes_.res_w, r);
          continue;
        }
        int st = 0;
        while (::waitpid(pid, &st, 0) < 0 && errno == EINTR) {
        }
        if (WIFEXITED(st) && WEXITSTATUS(st) == kExitRecorded) continue;
        // Grandchild died without writing a record: synthesize a crash.
        char buf[96];
        if (WIFSIGNALED(st)) {
          std::snprintf(buf, sizeof buf, "child killed by signal %d",
                        WTERMSIG(st));
        } else {
          std::snprintf(buf, sizeof buf,
                        "child exited with status %d without a result record",
                        WIFEXITED(st) ? WEXITSTATUS(st) : -1);
        }
        r.status = RunResult::Status::kCrash;
        r.message = buf;
        send_result(pipes_.res_w, r);
      }
    });
  }

  arch::set_panic_handler(&panic_to_pipe, nullptr);
  install_sink(&rec);
  const ExecResult body = body_();
  install_sink(nullptr);

  RunResult r;
  r.status = RunResult::Status::kOk;
  r.checksum = body.checksum;
  r.virtual_us = body.virtual_us;
  r.decisions = rec.cursor();
  if (g_child.want_trace) send_trace(pipes_.res_w, rec.trace());
  send_result(pipes_.res_w, r);
  ::_exit(kExitRecorded);
}

bool Executor::ensure_server() {
  if (server_broken_ || pipes_.cmd_w < 0) return false;
  if (server_pid_ > 0) return true;
  const pid_t pid = ::fork();
  if (pid < 0) {
    server_broken_ = true;
    return false;
  }
  if (pid == 0) child_main({}, /*want_trace=*/false, /*as_server=*/true);
  server_pid_ = pid;

  // The server answers with 'Y' once parked, or a full result record if the
  // deterministic prefix finished (or failed) before the snapshot point.
  DeadlineReader rd{pipes_.res_r,
                    std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(
                                opt_.child_timeout_s)),
                    server_pid_};
  char tag = 0;
  if (rd.read_exact(&tag, 1) && tag == 'Y') return true;
  if (tag == 'R') {
    RunResult r;
    if (read_result_body(rd, &r)) {
      int st = 0;
      while (::waitpid(server_pid_, &st, 0) < 0 && errno == EINTR) {
      }
      server_pid_ = -1;
      server_broken_ = true;
      // Mutations a snapshot run would serve all lie at or past the
      // snapshot point, and this run never got there — so no eligible
      // mutation can change this outcome.  Serve it for every such run.
      have_prefix_result_ = true;
      prefix_result_ = r;
      return false;
    }
  }
  // Garbled handshake or server death: give up on snapshotting.
  kill_children();
  drain_fd(pipes_.res_r);
  server_broken_ = true;
  return false;
}

RunResult Executor::run(const std::vector<Mutation>& muts,
                        ScheduleTrace* trace_out) {
  bool eligible = opt_.use_snapshot;
  for (const Mutation& m : muts) {
    if (m.index < opt_.snapshot_at) {
      eligible = false;
      break;
    }
  }
  if (eligible) {
    if (ensure_server()) {
      if (send_request(pipes_.cmd_w, muts, trace_out != nullptr)) {
        return read_outcome(trace_out, /*direct_child=*/-1);
      }
      // The request write failed: the server is gone.  Reap and fall back
      // to a cold fork for this execution; the next run() rebuilds it.
      kill_children();
      drain_fd(pipes_.res_r);
    } else if (have_prefix_result_ && trace_out == nullptr) {
      return prefix_result_;
    }
  }
  return cold_run(muts, trace_out != nullptr, trace_out);
}

RunResult Executor::cold_run(const std::vector<Mutation>& muts,
                             bool want_trace, ScheduleTrace* trace_out) {
  const pid_t pid = ::fork();
  if (pid < 0) {
    RunResult r;
    r.status = RunResult::Status::kCrash;
    r.message = "fuzz executor: fork() failed";
    return r;
  }
  if (pid == 0) child_main(muts, want_trace, /*as_server=*/false);
  return read_outcome(trace_out, pid);
}

RunResult Executor::read_outcome(ScheduleTrace* trace_out,
                                 pid_t direct_child) {
  const pid_t watch = direct_child >= 0 ? direct_child : server_pid_;
  DeadlineReader rd{pipes_.res_r,
                    std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(
                                opt_.child_timeout_s)),
                    watch};
  for (;;) {
    char tag = 0;
    if (!rd.read_exact(&tag, 1)) break;
    if (tag == 'T') {
      std::uint64_t n = 0;
      if (!rd.read_exact(&n, sizeof n) || n > (1u << 26)) break;
      std::vector<Decision> ds(n);
      if (n > 0 && !rd.read_exact(ds.data(), n * sizeof(Decision))) break;
      if (trace_out != nullptr) trace_out->decisions = std::move(ds);
      continue;
    }
    if (tag == 'R') {
      RunResult r;
      if (!read_result_body(rd, &r)) break;
      if (direct_child >= 0 && !rd.child_died) {
        int st = 0;
        while (::waitpid(direct_child, &st, 0) < 0 && errno == EINTR) {
        }
      }
      return r;
    }
    break;  // unknown tag: corrupt stream
  }

  // No complete record arrived: the execution hung past the watchdog, died
  // mid-write, or garbled the stream.  Kill the writer(s), clean the pipe,
  // and synthesize an outcome from what the reaper saw.
  RunResult r;
  if (direct_child >= 0) {
    ::kill(-direct_child, SIGKILL);
    ::kill(direct_child, SIGKILL);
    if (!rd.child_died) {
      int st = 0;
      while (::waitpid(direct_child, &st, 0) < 0 && errno == EINTR) {
      }
      rd.child_status = st;
    }
  } else {
    // Server mode: the server reaps crashed grandchildren itself, so
    // reaching here means the whole group is stuck or the server died.
    kill_children();
    drain_fd(pipes_.cmd_r);
  }
  drain_fd(pipes_.res_r);

  char buf[96];
  if (rd.timed_out) {
    std::snprintf(buf, sizeof buf,
                  "wall-clock watchdog expired after %.0f s",
                  opt_.child_timeout_s);
    r.status = RunResult::Status::kHang;
  } else if (rd.child_died && WIFSIGNALED(rd.child_status)) {
    std::snprintf(buf, sizeof buf, "child killed by signal %d",
                  WTERMSIG(rd.child_status));
    r.status = RunResult::Status::kCrash;
  } else {
    std::snprintf(buf, sizeof buf,
                  "child exited without a complete result record");
    r.status = RunResult::Status::kCrash;
  }
  r.message = buf;
  return r;
}

void Executor::kill_children() {
  if (server_pid_ <= 0) return;
  ::kill(-server_pid_, SIGKILL);
  ::kill(server_pid_, SIGKILL);
  int st = 0;
  while (::waitpid(server_pid_, &st, 0) < 0 && errno == EINTR) {
  }
  server_pid_ = -1;
}

void Executor::shutdown_server() {
  if (server_pid_ <= 0) {
    close_fd(pipes_.cmd_w);
    return;
  }
  // Closing the command pipe is the orderly shutdown: the server's blocking
  // request read returns EOF and it exits cleanly.
  close_fd(pipes_.cmd_w);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (std::chrono::steady_clock::now() < deadline) {
    int st = 0;
    const pid_t w = ::waitpid(server_pid_, &st, WNOHANG);
    if (w == server_pid_ || (w < 0 && errno != EINTR)) {
      server_pid_ = -1;
      break;
    }
    ::usleep(10 * 1000);
  }
  kill_children();
  server_broken_ = true;  // cmd pipe is gone; later runs go cold
}

}  // namespace mp::fuzz
