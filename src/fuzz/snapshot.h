#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <sys/types.h>
#include <vector>

#include "fuzz/trace.h"

// Snapshot/restore of a warmed-up simulator machine, gingersnap-style.
//
// A simulator execution's state is the host process: the engine's virtual
// procs, every fiber stack segment, the ready queues, the steal-trace rng
// cursors, the timer state, and the heap pages are all ordinary C++ objects
// and mallocs.  Restoring that object graph in place would mean tracking
// every allocation; instead the snapshot IS the kernel's copy-on-write page
// table.  The executor fork()s a server child that boots the scenario and
// parks at a chosen decision index (the snapshot point, taken inside the
// TraceRecorder callback — deep inside the running simulation, fiber stacks
// and all).  Each fuzz execution then fork()s that parked server: the
// grandchild resumes the run in microseconds with a mutated decision
// suffix, and only the pages it dirties are copied.  The simulation is
// single-OS-threaded, so forking mid-run is safe, and a child's address
// space is byte-identical to its parent's, so a restored run is
// bit-for-bit the run that would have happened without the snapshot — the
// round-trip test in tests/schedule_fuzz_test.cpp pins exactly that.
//
// Failure plumbing: a panic (MPNJ_CHECK, deadlock detection, decision
// budget) in an execution child is intercepted by the arch panic handler,
// shipped up the result pipe, and the child _exit()s; a raw crash (signal)
// is reaped by the server and reported as kCrash.  The parent never runs a
// scenario itself, so a fuzz campaign survives anything a schedule does to
// the runtime.

namespace mp::fuzz {

struct RunResult {
  enum class Status : std::uint8_t {
    kOk = 0,
    kPanic,     // MPNJ_CHECK / arch::panic fired
    kDeadlock,  // the simulator's all-idle-but-not-done diagnostic
    kHang,      // decision budget exceeded, or wall-clock watchdog
    kCrash,     // child died on a signal without reporting
  };
  Status status = Status::kOk;
  std::string message;        // panic message / crash description
  std::uint64_t checksum = 0; // scenario-reported (kOk only)
  double virtual_us = 0;      // elapsed virtual time (kOk only)
  std::uint64_t decisions = 0;

  bool failed() const { return status != Status::kOk; }
  // Stable failure identity for dedup and shrink equivalence.
  std::string signature() const;
};

const char* status_name(RunResult::Status s);

// What a scenario body reports on clean completion.
struct ExecResult {
  std::uint64_t checksum = 0;
  double virtual_us = 0;
};
using BodyFn = std::function<ExecResult()>;

struct ExecutorOptions {
  // Hard cap on decisions per execution; overruns report kHang.
  std::uint64_t decision_budget = 5'000'000;
  // Decision index the snapshot server parks at.  0 parks at the first
  // decision: everything before it (process setup, platform construction,
  // heap init) is the boot cost every restart now skips.
  std::uint64_t snapshot_at = 0;
  // false forces every execution to cold-fork from the parent instead of
  // the warmed server (the round-trip test compares the two).
  bool use_snapshot = true;
  // Wall-clock watchdog per execution; expiry kills the process group.
  double child_timeout_s = 120;
  // Redirect execution children's stderr to /dev/null (fuzz campaigns
  // produce panics by design; the message still arrives via the pipe).
  bool mute_child_stderr = false;
};

class Executor {
 public:
  Executor(BodyFn body, ExecutorOptions opt);
  ~Executor();
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  // Execute the scenario under `muts`.  Serves from the warmed snapshot
  // when every mutation index is at or past the snapshot point; cold-forks
  // otherwise.  With `trace_out`, the run also ships back its recorded
  // decision stream (kinds + arities), which the driver uses to target
  // mutations at interesting decision kinds.
  RunResult run(const std::vector<Mutation>& muts,
                ScheduleTrace* trace_out = nullptr);

  // Tear down the snapshot server (also done by the destructor).
  void shutdown_server();

 private:
  struct Pipes {
    int cmd_r = -1, cmd_w = -1;  // parent -> server requests
    int res_r = -1, res_w = -1;  // children -> parent records
  };

  bool ensure_server();
  RunResult cold_run(const std::vector<Mutation>& muts, bool want_trace,
                     ScheduleTrace* trace_out);
  RunResult read_outcome(ScheduleTrace* trace_out, pid_t direct_child);
  [[noreturn]] void child_main(const std::vector<Mutation>& muts,
                               bool want_trace, bool as_server);
  void kill_children();

  BodyFn body_;
  ExecutorOptions opt_;
  Pipes pipes_;
  pid_t server_pid_ = -1;
  bool server_broken_ = false;
  // Set when the server failed before reaching the snapshot point (the
  // deterministic prefix itself fails); every snapshot-eligible run then
  // returns this same result.
  bool have_prefix_result_ = false;
  RunResult prefix_result_;
};

}  // namespace mp::fuzz
