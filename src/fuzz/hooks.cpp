#include "fuzz/hooks.h"

#include <cstdlib>
#include <cstring>

namespace mp::fuzz {

namespace detail {
std::atomic<DecisionSink*> g_sink{nullptr};
}  // namespace detail

void install_sink(DecisionSink* s) {
  detail::g_sink.store(s, std::memory_order_relaxed);
}

DecisionSink* installed_sink() {
  return detail::g_sink.load(std::memory_order_relaxed);
}

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kLockAcquire: return "lock-acquire";
    case Kind::kLockRelease: return "lock-release";
    case Kind::kCas: return "cas";
    case Kind::kHandoff: return "handoff";
    case Kind::kPark: return "park";
    case Kind::kUnpark: return "unpark";
    case Kind::kStealVictim: return "steal-victim";
    case Kind::kWakeScan: return "wake-scan";
    case Kind::kAlloc: return "alloc";
    case Kind::kGcTrigger: return "gc-trigger";
    case Kind::kIoOrder: return "io-order";
    case Kind::kPreemptArm: return "preempt-arm";
    case Kind::kCardFlush: return "card-flush";
    case Kind::kLosSweep: return "los-sweep";
    case Kind::kKindCount: break;
  }
  return "?";
}

namespace {

std::uint32_t parse_injected() {
  const char* env = std::getenv("MPNJ_FUZZ_INJECT");
  if (env == nullptr) return 0;
  std::uint32_t mask = 0;
  if (std::strstr(env, "qlock-park-race") != nullptr) {
    mask |= static_cast<std::uint32_t>(InjectedBug::kQlockParkRace);
  }
  if (std::strstr(env, "barrier-generation") != nullptr) {
    mask |= static_cast<std::uint32_t>(InjectedBug::kBarrierGeneration);
  }
  return mask;
}

std::atomic<std::uint32_t>& injected_mask() {
  static std::atomic<std::uint32_t> mask{parse_injected()};
  return mask;
}

}  // namespace

bool injected(InjectedBug b) {
  return (injected_mask().load(std::memory_order_relaxed) &
          static_cast<std::uint32_t>(b)) != 0;
}

void reparse_injected_bugs() {
  injected_mask().store(parse_injected(), std::memory_order_relaxed);
}

}  // namespace mp::fuzz
