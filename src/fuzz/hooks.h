#pragma once

#include <atomic>
#include <cstdint>

// Decision-point hooks for the deterministic schedule fuzzer (docs/FUZZING.md).
//
// Every interleaving-visible nondeterministic decision in the runtime —
// which victim a steal probes, which parked proc a wakeup claims, when a
// preemption signal lands, whether a chunk refill collects early, the order
// ready io events fire — funnels through one of two calls:
//
//   pick(kind, arity, dflt)   a discrete choice in [0, arity); `dflt` is the
//                             uninstrumented decision (usually an rng draw)
//   point(kind)               a cost point; returns virtual-time jitter (us)
//                             the caller injects before proceeding
//
// With no sink installed (every production configuration, and all native
// runs) both collapse to one relaxed load and the default: behavior and the
// rng stream are bit-identical to an unhooked build.  The fuzzer installs a
// sink only around single-threaded simulator executions, where it records
// the decision sequence as a ScheduleTrace (fuzz/trace.h) and applies
// mutations to individual decisions.
//
// `dflt` is evaluated by the caller even when a sink overrides it, so an
// overridden run consumes the same rng draws as the recorded one — replay
// stays byte-for-byte deterministic.

namespace mp::fuzz {

enum class Kind : std::uint8_t {
  kLockAcquire = 0,  // MP spin-lock acquire (sim cost point)
  kLockRelease,      // MP spin-lock release (sim cost point)
  kCas,              // one hardware CAS: steals, park claims, qlock joins
  kHandoff,          // queue-lock direct grant handoff
  kPark,             // Platform::park_proc entry
  kUnpark,           // Platform::unpark_proc kick
  kStealVictim,      // which proc a steal scan starts at (choice)
  kWakeScan,         // which core wake_one's claim scan starts at (choice)
  kAlloc,            // heap allocation charge (sim cost point)
  kGcTrigger,        // chunk refill: 1 forces an early collection (choice)
  kIoOrder,          // rotation applied to the reactor's ready batch (choice)
  kPreemptArm,       // jitter added to the next preemption deadline
  kCardFlush,        // write barrier: 1 flushes the proc's dirty-card buffer
                     // to the global list early (choice)
  kLosSweep,         // collection trigger: 1 escalates to a major so the LOS
                     // sweeps under mutated schedules (choice)
  kKindCount,
};

const char* kind_name(Kind k);

class DecisionSink {
 public:
  virtual ~DecisionSink() = default;
  // Discrete choice point: return a value in [0, arity).
  virtual std::uint64_t on_pick(Kind k, std::uint64_t arity,
                                std::uint64_t dflt) = 0;
  // Cost point: return virtual-time jitter in microseconds (>= 0).
  virtual double on_point(Kind k) = 0;
};

namespace detail {
extern std::atomic<DecisionSink*> g_sink;
}  // namespace detail

// Install (or clear, with nullptr) the process-global sink.  Only legal
// while no platform procs are running; the fuzzer installs it around
// single-threaded simulator executions in forked children.
void install_sink(DecisionSink* s);
DecisionSink* installed_sink();

inline std::uint64_t pick(Kind k, std::uint64_t arity, std::uint64_t dflt) {
  DecisionSink* s = detail::g_sink.load(std::memory_order_relaxed);
  return s == nullptr ? dflt : s->on_pick(k, arity, dflt);
}

inline double point(Kind k) {
  DecisionSink* s = detail::g_sink.load(std::memory_order_relaxed);
  return s == nullptr ? 0.0 : s->on_point(k);
}

// ---- deliberate bug re-introduction (acceptance harness) ----
//
// Known, previously fixed interleaving bugs can be switched back on behind
// the MPNJ_FUZZ_INJECT env var (comma-separated names) so the fuzzer's
// ability to re-find them is itself testable.  Names:
//
//   qlock-park-race     claim_wait parks with a check-then-store instead of
//                       the phase CAS: a grant landing in the window is lost
//                       and the grantee sleeps forever (deadlock)
//   barrier-generation  the barrier flip stamps waiters with the pre-flip
//                       generation, tripping the waiters' reuse guard
//
// The env var is parsed once per process; forked fuzz children re-parse via
// reparse_injected_bugs() so a driver can toggle injections per execution.

enum class InjectedBug : std::uint32_t {
  kQlockParkRace = 1u << 0,
  kBarrierGeneration = 1u << 1,
};

bool injected(InjectedBug b);
void reparse_injected_bugs();

}  // namespace mp::fuzz
