#include "fuzz/driver.h"

#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdio>

#include "arch/rng.h"

namespace mp::fuzz {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_until(Clock::time_point deadline) {
  return std::chrono::duration<double>(deadline - Clock::now()).count();
}

void say(const DriverOptions& opt, const std::string& msg) {
  if (opt.log) opt.log(msg);
}

std::string format_msg(const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  return buf;
}

// The decision kinds worth aiming mutations at: the ones that sit inside
// the runtime's race windows.  Cost points among them take jitter; pick
// points can also take an override.
bool interesting_kind(Kind k) {
  switch (k) {
    case Kind::kCas:
    case Kind::kHandoff:
    case Kind::kPark:
    case Kind::kUnpark:
    case Kind::kLockAcquire:
    case Kind::kLockRelease:
    case Kind::kWakeScan:
    case Kind::kStealVictim:
    case Kind::kGcTrigger:
      return true;
    default:
      return false;
  }
}

// Random mutation list against the baseline trace: mostly 1-3 mutations,
// 3/4 of them aimed at interesting decision kinds.
std::vector<Mutation> generate_mutations(arch::Rng& rng,
                                         const ScheduleTrace& baseline,
                                         const std::vector<std::uint64_t>&
                                             interesting) {
  const std::uint64_t total = baseline.count();
  std::vector<Mutation> muts;
  if (total == 0) return muts;
  const std::uint64_t k = 1 + rng.below(3) + (rng.below(4) == 0 ? 2 : 0);
  for (std::uint64_t i = 0; i < k; i++) {
    Mutation m;
    if (!interesting.empty() && rng.below(4) != 0) {
      m.index = interesting[rng.below(interesting.size())];
    } else {
      m.index = rng.below(total);
    }
    const Decision& d = baseline.decisions[static_cast<std::size_t>(m.index)];
    if (d.arity > 0 && rng.below(2) == 0) {
      m.has_pick = true;
      m.pick = rng.below(d.arity);
    } else {
      // Exponentially distributed virtual-time jitter, 0.5us .. 64us —
      // enough to slide one proc across another's critical section.
      m.jitter_us = 0.5 * static_cast<double>(1u << rng.below(8));
    }
    muts.push_back(m);
  }
  sort_mutations(muts);
  return muts;
}

// ddmin-lite over the mutation list: greedily drop halves, then single
// mutations, keeping any candidate that reproduces the same signature.
// Then halve surviving jitters while the signature holds.
std::vector<Mutation> shrink_mutations(Executor& ex,
                                       std::vector<Mutation> muts,
                                       const std::string& signature,
                                       Clock::time_point deadline,
                                       std::uint64_t* execs) {
  auto reproduces = [&](const std::vector<Mutation>& cand) {
    (*execs)++;
    return ex.run(cand).signature() == signature;
  };
  bool progress = true;
  while (progress && muts.size() > 1 && seconds_until(deadline) > 0) {
    progress = false;
    // Halves first.
    for (int half = 0; half < 2 && muts.size() > 1; half++) {
      std::vector<Mutation> cand(
          muts.begin() + (half == 0 ? static_cast<long>(muts.size()) / 2 : 0),
          half == 0 ? muts.end()
                    : muts.begin() + static_cast<long>(muts.size()) / 2);
      if (reproduces(cand)) {
        muts = std::move(cand);
        progress = true;
        break;
      }
    }
    if (progress) continue;
    // Then one-at-a-time removal.
    for (std::size_t i = 0; i < muts.size() && muts.size() > 1; i++) {
      std::vector<Mutation> cand = muts;
      cand.erase(cand.begin() + static_cast<long>(i));
      if (reproduces(cand)) {
        muts = std::move(cand);
        progress = true;
        break;
      }
    }
  }
  // Minimize jitter magnitudes.
  for (std::size_t i = 0; i < muts.size(); i++) {
    while (!muts[i].has_pick && muts[i].jitter_us > 0.5 &&
           seconds_until(deadline) > 0) {
      std::vector<Mutation> cand = muts;
      cand[i].jitter_us /= 2;
      if (!reproduces(cand)) break;
      muts = std::move(cand);
    }
  }
  return muts;
}

}  // namespace

SeedFile make_seed_file(const std::string& scenario, const ScenarioOpts& o) {
  SeedFile s;
  s.scenario = scenario;
  s.seed = o.seed;
  s.procs = o.procs;
  s.queue = o.queue;
  s.parallel_gc = o.parallel_gc;
  return s;
}

ScenarioOpts opts_from_seed(const SeedFile& seed) {
  ScenarioOpts o;
  o.seed = seed.seed;
  o.procs = seed.procs;
  o.queue = seed.queue;
  o.parallel_gc = seed.parallel_gc;
  return o;
}

DriverResult fuzz_scenario(const DriverOptions& opt) {
  DriverResult out;
  const Clock::time_point deadline =
      Clock::now() +
      std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(opt.budget_s));

  // Baseline: one cold run with trace recording, to learn the decision
  // stream and calibrate the per-execution decision budget.
  ExecutorOptions base_eopt;
  base_eopt.use_snapshot = false;
  // Even the baseline gets a (generous) decision budget: an injected bug
  // that livelocks the unmutated schedule should classify as kHang in
  // milliseconds, not burn the wall-clock watchdog.
  if (opt.decision_budget != 0) base_eopt.decision_budget = opt.decision_budget;
  base_eopt.child_timeout_s = opt.child_timeout_s;
  base_eopt.mute_child_stderr = true;
  ScheduleTrace baseline;
  {
    Executor base_ex(scenario_body(opt.scenario, opt.opts), base_eopt);
    out.baseline = base_ex.run({}, &baseline);
    out.executions++;
  }
  out.baseline_decisions = baseline.count();
  out.baseline_summary = baseline.summary();
  say(opt, format_msg("[%s] baseline: %s (%s)", opt.scenario.c_str(),
                      status_name(out.baseline.status),
                      out.baseline_summary.c_str()));
  if (out.baseline.failed()) {
    // The unmutated schedule already fails: that is the find.
    out.found = true;
    out.failure = out.baseline;
    out.seed = make_seed_file(opt.scenario, opt.opts);
    out.seed.signature = out.baseline.signature();
    return out;
  }

  ExecutorOptions eopt;
  eopt.decision_budget = opt.decision_budget != 0
                             ? opt.decision_budget
                             : out.baseline_decisions * 8 + 10'000;
  eopt.snapshot_at = 0;
  eopt.use_snapshot = opt.use_snapshot;
  eopt.child_timeout_s = opt.child_timeout_s;
  eopt.mute_child_stderr = true;
  Executor ex(scenario_body(opt.scenario, opt.opts), eopt);

  std::vector<std::uint64_t> interesting;
  for (std::uint64_t i = 0; i < baseline.count(); i++) {
    if (interesting_kind(
            baseline.decisions[static_cast<std::size_t>(i)].kind)) {
      interesting.push_back(i);
    }
  }

  arch::Rng rng(opt.rng_seed);
  while (seconds_until(deadline) > 0 &&
         (opt.max_execs == 0 || out.executions < opt.max_execs)) {
    const std::vector<Mutation> muts =
        generate_mutations(rng, baseline, interesting);
    if (muts.empty()) break;  // nothing to mutate: trivial scenario
    const RunResult r = ex.run(muts);
    out.executions++;
    if (!r.failed()) continue;

    const std::string signature = r.signature();
    say(opt, format_msg("[%s] FAILURE after %llu execs: %s",
                        opt.scenario.c_str(),
                        static_cast<unsigned long long>(out.executions),
                        signature.c_str()));
    const std::vector<Mutation> shrunk = shrink_mutations(
        ex, muts, signature, deadline, &out.shrink_executions);
    say(opt, format_msg("[%s] shrunk %zu -> %zu mutations",
                        opt.scenario.c_str(), muts.size(), shrunk.size()));
    out.found = true;
    out.failure = r;
    out.seed = make_seed_file(opt.scenario, opt.opts);
    out.seed.decision_budget = eopt.decision_budget;
    out.seed.mutations = shrunk;
    out.seed.signature = signature;
    return out;
  }
  say(opt, format_msg("[%s] no failures in %llu executions",
                      opt.scenario.c_str(),
                      static_cast<unsigned long long>(out.executions)));
  return out;
}

RunResult replay_seed(const SeedFile& seed,
                      std::uint64_t decision_budget_fallback,
                      double child_timeout_s) {
  ExecutorOptions eopt;
  eopt.use_snapshot = false;
  eopt.decision_budget = seed.decision_budget != 0
                             ? seed.decision_budget
                             : decision_budget_fallback;
  eopt.child_timeout_s = child_timeout_s;
  eopt.mute_child_stderr = true;
  Executor ex(scenario_body(seed.scenario, opts_from_seed(seed)), eopt);
  return ex.run(seed.mutations);
}

}  // namespace mp::fuzz
