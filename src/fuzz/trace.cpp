#include "fuzz/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "arch/panic.h"

namespace mp::fuzz {

// ----- ScheduleTrace -----

std::string ScheduleTrace::summary() const {
  std::uint64_t counts[static_cast<int>(Kind::kKindCount)] = {};
  for (const Decision& d : decisions) counts[static_cast<int>(d.kind)]++;
  std::ostringstream out;
  out << decisions.size() << " decisions";
  for (int k = 0; k < static_cast<int>(Kind::kKindCount); k++) {
    if (counts[k] == 0) continue;
    out << " " << kind_name(static_cast<Kind>(k)) << ":" << counts[k];
  }
  return out.str();
}

void sort_mutations(std::vector<Mutation>& muts) {
  std::sort(muts.begin(), muts.end(),
            [](const Mutation& a, const Mutation& b) {
              return a.index < b.index;
            });
}

// ----- TraceRecorder -----

TraceRecorder::TraceRecorder(std::vector<Mutation> mutations,
                             std::uint64_t budget, bool record)
    : mutations_(std::move(mutations)), budget_(budget), record_(record) {
  sort_mutations(mutations_);
}

void TraceRecorder::set_checkpoint(std::uint64_t index,
                                   std::function<void()> fn) {
  checkpoint_at_ = index;
  checkpoint_ = std::move(fn);
}

void TraceRecorder::set_mutations(std::vector<Mutation> mutations) {
  mutations_ = std::move(mutations);
  sort_mutations(mutations_);
  next_mut_ = 0;
  while (next_mut_ < mutations_.size() &&
         mutations_[next_mut_].index < cursor_) {
    next_mut_++;
  }
}

const Mutation* TraceRecorder::mutation_at(std::uint64_t index) {
  while (next_mut_ < mutations_.size() &&
         mutations_[next_mut_].index < index) {
    next_mut_++;
  }
  if (next_mut_ < mutations_.size() && mutations_[next_mut_].index == index) {
    return &mutations_[next_mut_];
  }
  return nullptr;
}

std::uint64_t TraceRecorder::advance(Kind k) {
  (void)k;
  // The checkpoint fires before the decision it is indexed at executes, so
  // a mutation at exactly `checkpoint_at_` still applies in the forked
  // continuation (set_mutations keeps entries at index >= cursor_).
  if (cursor_ == checkpoint_at_ && checkpoint_) checkpoint_();
  if (budget_ != 0 && cursor_ >= budget_) {
    // Checked before the decision executes, so a budget of N means exactly
    // N decisions ran — the overrun report is exact, not off by one.
    arch::panic(
        "schedule fuzz: decision budget exceeded (%" PRIu64
        " decisions; possible livelock or runaway schedule)",
        budget_);
  }
  return cursor_++;
}

std::uint64_t TraceRecorder::on_pick(Kind k, std::uint64_t arity,
                                     std::uint64_t dflt) {
  const std::uint64_t idx = advance(k);
  std::uint64_t chosen = dflt;
  if (const Mutation* m = mutation_at(idx); m != nullptr && m->has_pick) {
    chosen = arity > 0 ? m->pick % arity : 0;
  }
  if (record_) {
    trace_.decisions.push_back(Decision{k, static_cast<std::uint32_t>(arity),
                                        static_cast<std::uint32_t>(chosen)});
  }
  return chosen;
}

double TraceRecorder::on_point(Kind k) {
  const std::uint64_t idx = advance(k);
  double jitter = 0;
  if (const Mutation* m = mutation_at(idx); m != nullptr) {
    jitter = m->jitter_us > 0 ? m->jitter_us : 0;
  }
  if (record_) trace_.decisions.push_back(Decision{k, 0, 0});
  return jitter;
}

// ----- seed files -----

std::string format_seed_file(const SeedFile& s) {
  std::ostringstream out;
  out << "mpnj-schedule-fuzz v1\n";
  out << "scenario " << s.scenario << "\n";
  out << "seed " << s.seed << "\n";
  out << "procs " << s.procs << "\n";
  out << "queue " << s.queue << "\n";
  out << "parallel-gc " << (s.parallel_gc ? 1 : 0) << "\n";
  out << "decision-budget " << s.decision_budget << "\n";
  for (const Mutation& m : s.mutations) {
    if (m.has_pick) {
      out << "mutate " << m.index << " pick " << m.pick << "\n";
    } else {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", m.jitter_us);
      out << "mutate " << m.index << " jitter " << buf << "\n";
    }
  }
  if (!s.signature.empty()) out << "signature " << s.signature << "\n";
  return out.str();
}

bool parse_seed_file(const std::string& text, SeedFile* out,
                     std::string* error) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "mpnj-schedule-fuzz v1") {
    if (error) *error = "missing 'mpnj-schedule-fuzz v1' header";
    return false;
  }
  *out = SeedFile{};
  out->mutations.clear();
  int lineno = 1;
  while (std::getline(in, line)) {
    lineno++;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    auto fail = [&](const char* why) {
      if (error) {
        *error = "line " + std::to_string(lineno) + ": " + why;
      }
      return false;
    };
    if (key == "scenario") {
      if (!(ls >> out->scenario)) return fail("scenario name expected");
    } else if (key == "seed") {
      if (!(ls >> out->seed)) return fail("seed value expected");
    } else if (key == "procs") {
      if (!(ls >> out->procs)) return fail("proc count expected");
    } else if (key == "queue") {
      if (!(ls >> out->queue)) return fail("queue discipline expected");
    } else if (key == "parallel-gc") {
      int v = 0;
      if (!(ls >> v)) return fail("0/1 expected");
      out->parallel_gc = v != 0;
    } else if (key == "decision-budget") {
      if (!(ls >> out->decision_budget)) return fail("budget expected");
    } else if (key == "mutate") {
      Mutation m;
      std::string op;
      if (!(ls >> m.index >> op)) return fail("mutate <index> <op> expected");
      if (op == "pick") {
        m.has_pick = true;
        if (!(ls >> m.pick)) return fail("pick value expected");
      } else if (op == "jitter") {
        if (!(ls >> m.jitter_us)) return fail("jitter value expected");
      } else {
        return fail("unknown mutate op");
      }
      out->mutations.push_back(m);
    } else if (key == "signature") {
      std::string rest;
      std::getline(ls, rest);
      if (!rest.empty() && rest[0] == ' ') rest.erase(0, 1);
      out->signature = rest;
    } else {
      return fail("unknown key");
    }
  }
  if (out->scenario.empty()) {
    if (error) *error = "missing scenario line";
    return false;
  }
  sort_mutations(out->mutations);
  return true;
}

}  // namespace mp::fuzz
