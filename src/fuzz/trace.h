#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "fuzz/hooks.h"

// The recorded schedule of one simulator execution, and the mutations the
// fuzzer applies to it.
//
// A simulator run is a pure function of (machine model, seed, client
// program), so the sequence of decision points it passes — every pick() and
// point() in fuzz/hooks.h — is itself deterministic.  The TraceRecorder
// sink numbers those points 0,1,2,... as they occur and records each one's
// kind, arity and outcome; that numbered stream is the ScheduleTrace.  A
// Mutation addresses a decision by index and either overrides a discrete
// choice (pick sites) or injects virtual-time jitter (cost sites).  Jitter
// is the universal perturbation: delaying one proc at one decision slides
// every later event on that proc against the other procs' clocks, which is
// exactly an interleaving change — but one the simulator's cost model stays
// consistent under, so a mutated run is still a valid execution and still
// bit-reproducible from (seed, mutation list).

namespace mp::fuzz {

struct Decision {
  Kind kind;
  std::uint32_t arity;   // pick sites: the choice bound; cost sites: 0
  std::uint32_t chosen;  // pick sites: the outcome taken
};

struct Mutation {
  std::uint64_t index = 0;  // decision number the mutation applies to
  bool has_pick = false;
  std::uint64_t pick = 0;   // applied modulo the site's arity
  double jitter_us = 0;     // cost sites: virtual time injected
};

struct ScheduleTrace {
  std::vector<Decision> decisions;
  std::uint64_t count() const { return decisions.size(); }
  // "kind:count" histogram, for logs and seed-file comments.
  std::string summary() const;
};

// The DecisionSink the executor installs around a run: applies mutations,
// optionally records the stream, enforces the decision budget (a mutated
// schedule that livelocks keeps passing lock/CAS decision points, so a
// budget overrun is the deterministic analogue of a watchdog), and fires an
// optional callback at a chosen index (the snapshot point).
class TraceRecorder final : public DecisionSink {
 public:
  TraceRecorder(std::vector<Mutation> mutations, std::uint64_t budget,
                bool record);

  // Fired the first time the cursor reaches `index` (before that decision
  // executes).  The fork-snapshot server parks here.
  void set_checkpoint(std::uint64_t index, std::function<void()> fn);
  // Replaces the mutation list mid-run (the snapshot server applies a
  // request's suffix after forking).  Mutations below the cursor are inert.
  void set_mutations(std::vector<Mutation> mutations);

  std::uint64_t cursor() const { return cursor_; }
  const ScheduleTrace& trace() const { return trace_; }

  std::uint64_t on_pick(Kind k, std::uint64_t arity,
                        std::uint64_t dflt) override;
  double on_point(Kind k) override;

 private:
  const Mutation* mutation_at(std::uint64_t index);
  std::uint64_t advance(Kind k);

  std::vector<Mutation> mutations_;  // sorted by index
  std::size_t next_mut_ = 0;
  std::uint64_t budget_;
  bool record_;
  std::uint64_t cursor_ = 0;
  std::uint64_t checkpoint_at_ = ~0ull;
  std::function<void()> checkpoint_;
  ScheduleTrace trace_;
};

// ---- seed files ----
//
// The replayable artifact a failing run leaves behind: scenario identity,
// scenario options, the (shrunk) mutation list, and the failure signature.
// Plain line-oriented text so a CI artifact can be read, diffed, and
// replayed locally (fuzz_driver --replay <file>).

struct SeedFile {
  std::string scenario;
  std::uint64_t seed = 0x5eed;
  int procs = 4;
  std::string queue = "ws";      // ws | distributed
  bool parallel_gc = true;
  std::uint64_t decision_budget = 0;  // 0 = executor default
  std::vector<Mutation> mutations;
  std::string signature;  // "<status> <panic message>" of the failure
};

std::string format_seed_file(const SeedFile& s);
// Returns false and fills *error on a malformed file.
bool parse_seed_file(const std::string& text, SeedFile* out,
                     std::string* error);

void sort_mutations(std::vector<Mutation>& muts);

}  // namespace mp::fuzz
