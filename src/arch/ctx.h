#pragma once

#include <cstddef>

namespace mp::arch {

// A saved machine execution context: callee-saved registers plus a stack
// pointer.  This is the machine-dependent "process saving" primitive (Wand's
// term) that the continuation layer is built on.  Two backends implement it:
//
//   * ctx_x86_64.S  — 30 instructions of SysV assembly (the production path;
//                     analogous to the paper's 10-34 lines of per-port asm);
//   * ctx_ucontext  — portable POSIX fallback, slower but runs anywhere
//                     (analogous to the paper's trivial uniprocessor port).
//
// A Context is a passive value; it does not own the stack it points into.
// Lifetime of stacks is managed by the continuation layer (cont/segment.h).
class Context {
 public:
  Context() noexcept = default;
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;
  Context(Context&& other) noexcept : sp_(other.sp_) { other.sp_ = nullptr; }
  Context& operator=(Context&& other) noexcept {
    sp_ = other.sp_;
    other.sp_ = nullptr;
    return *this;
  }
  ~Context();

  bool valid() const noexcept { return sp_ != nullptr; }

 private:
  friend void ctx_swap(Context& save, Context& to) noexcept;
  friend void ctx_make(Context& out, void* stack_base, std::size_t size,
                       void (*fn)(void*), void* arg);

  // asm backend: the saved rsp.  ucontext backend: an owned ucontext_t*.
  void* sp_ = nullptr;
};

// Suspend the current execution into `save` and resume `to`.  `to` is
// consumed (a context may be resumed exactly once; resuming it again without
// re-saving is a fatal error caught in debug checks by the continuation
// layer).  Control returns here when somebody later swaps back into `save`.
void ctx_swap(Context& save, Context& to) noexcept;

// Fabricate a context that, when resumed, invokes fn(arg) on the given stack.
// `fn` must never return; falling off the bottom frame aborts the process.
// The stack region [stack_base, stack_base + size) must be writable and at
// least 4 KiB; the backend may reserve a small header at the top of it.
void ctx_make(Context& out, void* stack_base, std::size_t size,
              void (*fn)(void*), void* arg);

}  // namespace mp::arch
