#include "arch/sysio.h"

#include <system_error>

#include "metrics/metrics.h"

namespace mp::arch {

SysError::SysError(const char* op, int err) : op_(op), err_(err) {
  msg_ = std::string(op) + ": " + std::generic_category().message(err) +
         " (errno " + std::to_string(err) + ")";
}

void raise_errno(const char* op, int err) { throw SysError(op, err); }

void note_eintr_retry() { MPNJ_METRIC_COUNT(kIoEintrRetries, 1); }

}  // namespace mp::arch
