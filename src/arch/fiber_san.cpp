#include "arch/fiber_san.h"

#if MPNJ_SAN_ADDRESS || MPNJ_SAN_THREAD

// Declared by hand so the file builds against any sanitizer runtime new
// enough to ship the fiber API, without depending on optional headers.
extern "C" {
#if MPNJ_SAN_ADDRESS
void __sanitizer_start_switch_fiber(void** fake_stack_save, const void* bottom,
                                    std::size_t size);
void __sanitizer_finish_switch_fiber(void* fake_stack_save,
                                     const void** bottom_old,
                                     std::size_t* size_old);
void __asan_unpoison_memory_region(const volatile void* addr,
                                   std::size_t size);
#endif
#if MPNJ_SAN_THREAD
void* __tsan_create_fiber(unsigned flags);
void __tsan_destroy_fiber(void* fiber);
void __tsan_switch_to_fiber(void* fiber, unsigned flags);
void* __tsan_get_current_fiber(void);
#endif
}

namespace mp::arch::san {

void* fiber_create() {
#if MPNJ_SAN_THREAD
  return __tsan_create_fiber(0);
#else
  return nullptr;
#endif
}

void fiber_destroy(void* fiber) {
#if MPNJ_SAN_THREAD
  if (fiber != nullptr) __tsan_destroy_fiber(fiber);
#else
  (void)fiber;
#endif
}

void* current_fiber() {
#if MPNJ_SAN_THREAD
  return __tsan_get_current_fiber();
#else
  return nullptr;
#endif
}

void switch_begin(void** fake_save, void* dest_fiber, const void* dest_bottom,
                  std::size_t dest_size) {
#if MPNJ_SAN_ADDRESS
  __sanitizer_start_switch_fiber(fake_save, dest_bottom, dest_size);
#else
  (void)fake_save;
  (void)dest_bottom;
  (void)dest_size;
#endif
#if MPNJ_SAN_THREAD
  // Flag 0 keeps the default synchronization between fibers: every value
  // written before the switch happens-before the resumed side.
  if (dest_fiber != nullptr) __tsan_switch_to_fiber(dest_fiber, 0);
#else
  (void)dest_fiber;
#endif
}

void switch_finish(void* fake_restore, const void** prev_bottom,
                   std::size_t* prev_size) {
#if MPNJ_SAN_ADDRESS
  __sanitizer_finish_switch_fiber(fake_restore, prev_bottom, prev_size);
#else
  (void)fake_restore;
  (void)prev_bottom;
  (void)prev_size;
#endif
}

void stack_reuse(void* base, std::size_t size) {
#if MPNJ_SAN_ADDRESS
  __asan_unpoison_memory_region(base, size);
#else
  (void)base;
  (void)size;
#endif
}

}  // namespace mp::arch::san

#endif  // MPNJ_SAN_ADDRESS || MPNJ_SAN_THREAD
