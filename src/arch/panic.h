#pragma once

namespace mp::arch {

// Print a fatal runtime error to stderr and abort.  Used for invariant
// violations that cannot be reported through normal control flow, e.g.
// throwing a one-shot continuation twice or returning from a proc's bottom
// frame.  printf-style formatting.
[[noreturn]] void panic(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Last-chance observer run by panic() after the message is printed and
// before abort().  The schedule fuzzer's forked executions install one that
// ships the formatted message up a pipe and _exit()s; a handler that
// returns falls through to the abort.  Process-global, not thread-safe to
// install concurrently with a panic; pass nullptr to clear.
using PanicHandler = void (*)(const char* msg, void* arg);
void set_panic_handler(PanicHandler h, void* arg);

// assert-like check that stays on in release builds; the runtime's invariants
// guard memory safety of raw context switches, so they are never compiled out.
#define MPNJ_CHECK(cond, ...)                                         \
  do {                                                                \
    if (__builtin_expect(!(cond), 0)) {                               \
      ::mp::arch::panic("check failed (" #cond "): " __VA_ARGS__);    \
    }                                                                 \
  } while (0)

}  // namespace mp::arch
