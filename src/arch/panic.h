#pragma once

namespace mp::arch {

// Print a fatal runtime error to stderr and abort.  Used for invariant
// violations that cannot be reported through normal control flow, e.g.
// throwing a one-shot continuation twice or returning from a proc's bottom
// frame.  printf-style formatting.
[[noreturn]] void panic(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// assert-like check that stays on in release builds; the runtime's invariants
// guard memory safety of raw context switches, so they are never compiled out.
#define MPNJ_CHECK(cond, ...)                                         \
  do {                                                                \
    if (__builtin_expect(!(cond), 0)) {                               \
      ::mp::arch::panic("check failed (" #cond "): " __VA_ARGS__);    \
    }                                                                 \
  } while (0)

}  // namespace mp::arch
