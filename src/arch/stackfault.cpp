#include "arch/stackfault.h"

#include <signal.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>

namespace mp::arch::stackfault {

namespace {

ArenaInfo g_arenas[kMaxArenas];
std::atomic<int> g_num_arenas{0};

struct sigaction g_prev_sa;
std::atomic<bool> g_installed{false};

// --- async-signal-safe message building ---

void append_str(char* buf, std::size_t cap, std::size_t* len, const char* s) {
  while (*s != '\0' && *len + 1 < cap) buf[(*len)++] = *s++;
}

void append_num(char* buf, std::size_t cap, std::size_t* len, long v) {
  char tmp[24];
  std::size_t n = 0;
  unsigned long u = v < 0 ? static_cast<unsigned long>(-(v + 1)) + 1
                          : static_cast<unsigned long>(v);
  do {
    tmp[n++] = static_cast<char>('0' + u % 10);
    u /= 10;
  } while (u != 0 && n < sizeof(tmp));
  if (v < 0) tmp[n++] = '-';
  while (n > 0 && *len + 1 < cap) buf[(*len)++] = tmp[--n];
}

[[noreturn]] void report_overflow(const ArenaInfo& a, std::size_t slot) {
  const SlotInfo& s = a.slots[slot];
  char msg[256];
  std::size_t len = 0;
  append_str(msg, sizeof(msg), &len, "mpnj: fatal: stack overflow: thread ");
  append_num(msg, sizeof(msg), &len, s.tid.load(std::memory_order_relaxed));
  append_str(msg, sizeof(msg), &len, " (");
  append_str(msg, sizeof(msg), &len, s.name[0] != '\0' ? s.name : "unnamed");
  append_str(msg, sizeof(msg), &len, ") overflowed its ");
  append_num(msg, sizeof(msg), &len, static_cast<long>(a.usable_bytes));
  append_str(msg, sizeof(msg), &len, "-byte stack slot\n");
  // Only async-signal-safe calls from here: the fault may have happened with
  // arbitrary locks held, so no stdio, no panic().
  ssize_t ignored = write(2, msg, len);
  (void)ignored;
  abort();
}

// Maps a fault address to (arena, overflowing slot).  Returns false when the
// address is not attributable to a slot overflow.
bool classify(const std::byte* addr, const ArenaInfo** arena_out,
              std::size_t* slot_out) {
  const int n = g_num_arenas.load(std::memory_order_acquire);
  for (int i = 0; i < n; i++) {
    const ArenaInfo& a = g_arenas[i];
    if (addr < a.base || addr >= a.base + a.bytes) continue;
    const std::size_t off = static_cast<std::size_t>(addr - a.base);
    std::size_t slot = off / a.stride;
    if (slot >= a.num_slots) return false;
    if (a.guard_bytes > 0) {
      // Guarded slot: the guard region sits below the usable range, so a
      // fault inside it is the slot's own stack running off its bottom.
      if (off % a.stride >= a.guard_bytes) return false;
    } else {
      // Guardless arena: slots are contiguous, so an overflow runs into the
      // top of the slot below.  A fault in a never-committed slot directly
      // below a committed one is attributed to the committed slot's owner;
      // anything else is not attributable.
      if (a.slots[slot].committed.load(std::memory_order_relaxed) != 0) {
        return false;
      }
      if (slot + 1 >= a.num_slots ||
          a.slots[slot + 1].committed.load(std::memory_order_relaxed) == 0) {
        return false;
      }
      slot++;
    }
    *arena_out = &a;
    *slot_out = slot;
    return true;
  }
  return false;
}

void on_segv(int signo, siginfo_t* info, void* uctx) {
  const ArenaInfo* arena = nullptr;
  std::size_t slot = 0;
  if (info != nullptr &&
      classify(static_cast<const std::byte*>(info->si_addr), &arena, &slot)) {
    report_overflow(*arena, slot);
  }
  // Not ours: chain to whoever was installed before us (a sanitizer keeps
  // its own crash reports), or restore the default disposition and return —
  // the faulting instruction re-executes and the default action kills the
  // process with the usual SIGSEGV exit.
  if ((g_prev_sa.sa_flags & SA_SIGINFO) != 0 &&
      g_prev_sa.sa_sigaction != nullptr) {
    g_prev_sa.sa_sigaction(signo, info, uctx);
    return;
  }
  if (g_prev_sa.sa_handler != SIG_DFL && g_prev_sa.sa_handler != SIG_IGN) {
    g_prev_sa.sa_handler(signo);
    return;
  }
  signal(signo, SIG_DFL);
}

void install_handler() {
  bool expected = false;
  if (!g_installed.compare_exchange_strong(expected, true)) return;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_sigaction = &on_segv;
  sa.sa_flags = SA_SIGINFO | SA_ONSTACK;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGSEGV, &sa, &g_prev_sa);
}

// Alternate stack per OS thread, freed when the thread exits (after
// disabling it, so the handler can never run on freed memory).
struct AltStack {
  void* mem = nullptr;
  bool checked = false;
  ~AltStack() {
    if (mem != nullptr) {
      stack_t ss;
      std::memset(&ss, 0, sizeof(ss));
      ss.ss_flags = SS_DISABLE;
      sigaltstack(&ss, nullptr);
      std::free(mem);
    }
  }
};
thread_local AltStack t_altstack;

}  // namespace

int register_arena(const ArenaInfo& info) {
  install_handler();
  const int idx = g_num_arenas.load(std::memory_order_relaxed);
  if (idx >= kMaxArenas) return -1;
  g_arenas[idx] = info;
  g_num_arenas.store(idx + 1, std::memory_order_release);
  return idx;
}

void ensure_thread() {
  if (t_altstack.checked) return;
  t_altstack.checked = true;
  stack_t cur;
  std::memset(&cur, 0, sizeof(cur));
  if (sigaltstack(nullptr, &cur) == 0 && (cur.ss_flags & SS_DISABLE) == 0 &&
      cur.ss_sp != nullptr) {
    return;  // someone (a sanitizer) already gave this thread an altstack
  }
  const std::size_t size = 64 * 1024;
  void* mem = std::malloc(size);
  if (mem == nullptr) return;  // degraded: overflow becomes a plain crash
  stack_t ss;
  std::memset(&ss, 0, sizeof(ss));
  ss.ss_sp = mem;
  ss.ss_size = size;
  if (sigaltstack(&ss, nullptr) == 0) {
    t_altstack.mem = mem;
  } else {
    std::free(mem);
  }
}

}  // namespace mp::arch::stackfault
