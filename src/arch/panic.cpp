#include "arch/panic.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace mp::arch {

namespace {
PanicHandler g_handler = nullptr;
void* g_handler_arg = nullptr;
}  // namespace

void set_panic_handler(PanicHandler h, void* arg) {
  g_handler = h;
  g_handler_arg = arg;
}

[[noreturn]] void panic(const char* fmt, ...) {
  char msg[512];
  std::va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(msg, sizeof(msg), fmt, ap);
  va_end(ap);
  std::fputs("mpnj: fatal: ", stderr);
  std::fputs(msg, stderr);
  std::fputc('\n', stderr);
  std::fflush(stderr);
  if (g_handler != nullptr) g_handler(msg, g_handler_arg);
  std::abort();
}

}  // namespace mp::arch
