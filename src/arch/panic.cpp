#include "arch/panic.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace mp::arch {

[[noreturn]] void panic(const char* fmt, ...) {
  std::va_list ap;
  va_start(ap, fmt);
  std::fputs("mpnj: fatal: ", stderr);
  std::vfprintf(stderr, fmt, ap);
  std::fputc('\n', stderr);
  va_end(ap);
  std::fflush(stderr);
  std::abort();
}

}  // namespace mp::arch
