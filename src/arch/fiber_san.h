#pragma once

// Sanitizer annotations for user-level stack switching.
//
// ASan and TSan track one stack per kernel thread; the raw ctx_swap in
// arch/ctx.h moves execution between heap-allocated stack segments behind
// their backs, which ASan reports as stack corruption and TSan as impossible
// interleavings.  Both sanitizers export a fiber API for exactly this
// situation; this header wraps it so the continuation layer and the
// simulator engine can bracket every ctx_swap:
//
//   void* fake = nullptr;
//   san::switch_begin(&fake, dest_fiber, dest_bottom, dest_size);
//   arch::ctx_swap(save, to);
//   san::switch_finish(fake, &prev_bottom, &prev_size);   // on arrival
//
// Passing a null fake-save to switch_begin tells ASan the current stack is
// being abandoned for good (its fake-stack frames are freed rather than
// preserved for a resume).  switch_finish reports the bounds of the stack
// execution just left — that is how callers learn the bounds of OS-thread
// stacks (a proc's idle loop) without any platform-specific plumbing.
//
// Everything degrades to a no-op when neither sanitizer is active, so the
// production context switch stays untouched.

#include <cstddef>

#if defined(__SANITIZE_ADDRESS__)
#define MPNJ_SAN_ADDRESS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MPNJ_SAN_ADDRESS 1
#endif
#endif
#ifndef MPNJ_SAN_ADDRESS
#define MPNJ_SAN_ADDRESS 0
#endif

#if defined(__SANITIZE_THREAD__)
#define MPNJ_SAN_THREAD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MPNJ_SAN_THREAD 1
#endif
#endif
#ifndef MPNJ_SAN_THREAD
#define MPNJ_SAN_THREAD 0
#endif

namespace mp::arch::san {

inline constexpr bool kAddressSan = MPNJ_SAN_ADDRESS != 0;
inline constexpr bool kThreadSan = MPNJ_SAN_THREAD != 0;
inline constexpr bool kActive = kAddressSan || kThreadSan;

#if MPNJ_SAN_ADDRESS || MPNJ_SAN_THREAD

// Creates / destroys a TSan fiber identity for a stack segment (null when
// TSan is not active).  A fiber must not be destroyed while executing on it.
void* fiber_create();
void fiber_destroy(void* fiber);

// The TSan fiber currently executing (for an OS thread that never switched,
// its implicit fiber).  Null when TSan is not active.
void* current_fiber();

// Call immediately before ctx_swap.  `fake_save` receives ASan's fake-stack
// handle to pass to switch_finish when this context is resumed; pass nullptr
// when the current stack is abandoned and will never be resumed.
void switch_begin(void** fake_save, void* dest_fiber, const void* dest_bottom,
                  std::size_t dest_size);

// Call immediately after ctx_swap returns (including at the entry point of a
// fresh stack, with a null `fake_restore`).  `prev_bottom`/`prev_size`, when
// non-null, receive the bounds of the stack execution arrived from.
void switch_finish(void* fake_restore, const void** prev_bottom,
                   std::size_t* prev_size);

// Clears stale ASan shadow before a pooled stack segment is rebooted:
// abandoned frames never ran their epilogues, so their redzone poison would
// otherwise outlive them into the next execution.
void stack_reuse(void* base, std::size_t size);

#else

inline void* fiber_create() { return nullptr; }
inline void fiber_destroy(void*) {}
inline void* current_fiber() { return nullptr; }
inline void switch_begin(void**, void*, const void*, std::size_t) {}
inline void switch_finish(void*, const void**, std::size_t*) {}
inline void stack_reuse(void*, std::size_t) {}

#endif

}  // namespace mp::arch::san
