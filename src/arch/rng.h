#pragma once

#include <cstdint>

namespace mp::arch {

// SplitMix64: used to seed other generators and as a cheap stateless mixer.
inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// xoshiro256**: the repository's deterministic PRNG.  Every randomized piece
// of the platform (randomized ready queues, the `receive` channel shuffle,
// workload generators, the simulator) draws from one of these, seeded from a
// configuration seed, so simulated runs are bit-for-bit reproducible.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9b97f4a7c15ull) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    for (auto& word : s_) word = splitmix64(seed);
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    const std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform double in [0, 1).
  double unit() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace mp::arch
