#pragma once

#include <cstddef>

#include "arch/cacheline.h"

namespace mp::arch {

// Per-OS-thread freelist of cache-line-padded nodes.  Queue locks
// (threads/qlock.h) allocate one claim node per acquisition; taking that
// allocation off malloc matters because the node is on the acquire fast
// path, and keeping each freelist thread-private means push/pop need no
// synchronization at all — nodes simply migrate between pools when a lock
// is released on a different proc than it was acquired on (the same scheme
// the scheduler's recycled ThreadState cells use, proc_core.h).
//
// Requirements on T: cache-line aligned (alignas(kCacheLine)), default
// constructible, and exposing an intrusive `T* pool_next` link that is dead
// while the node is in use.  Callers must re-initialize all protocol fields
// after get(): the pool returns nodes exactly as put() received them.
template <typename T>
class PaddedPool {
  static_assert(alignof(T) >= kCacheLine,
                "pooled nodes must be cache-line aligned (alignas)");

 public:
  // Nodes cached per thread beyond which put() frees to the allocator; a
  // bound, not a reservation — an idle thread holds nothing.
  static constexpr int kMaxCached = 64;

  static T* get() {
    Cache& c = cache();
    if (c.head != nullptr) {
      T* n = c.head;
      c.head = n->pool_next;
      c.count--;
      n->pool_next = nullptr;
      return n;
    }
    return new T();  // operator new honours alignas over-alignment
  }

  static void put(T* n) {
    Cache& c = cache();
    if (c.count >= kMaxCached) {
      delete n;
      return;
    }
    n->pool_next = c.head;
    c.head = n;
    c.count++;
  }

 private:
  struct Cache {
    T* head = nullptr;
    int count = 0;
    ~Cache() {
      while (head != nullptr) {
        T* next = head->pool_next;
        delete head;
        head = next;
      }
    }
  };

  static Cache& cache() {
    thread_local Cache c;
    return c;
  }
};

}  // namespace mp::arch
