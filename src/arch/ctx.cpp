#include "arch/ctx.h"

#include <cstdint>
#include <cstring>

#include "arch/panic.h"

#if MPNJ_CTX_UCONTEXT

// The ucontext backend supplies Context's members from ctx_ucontext.cpp.

#else  // x86-64 assembly backend

extern "C" {
void mpnj_ctx_swap_asm(void** save_sp, void* new_sp);
void mpnj_ctx_boot();
}

namespace mp::arch {

namespace {

// Fabricated frame matching the layout documented in ctx_x86_64.S.
struct BootFrame {
  std::uint32_t mxcsr;
  std::uint32_t fcw;
  void* r15;
  void* r14;
  void* r13;
  void* r12;  // argument
  void* rbx;  // entry function
  void* rbp;
  void* ret;  // mpnj_ctx_boot
};
static_assert(sizeof(BootFrame) == 64);

}  // namespace

Context::~Context() = default;

void ctx_swap(Context& save, Context& to) noexcept {
  MPNJ_CHECK(to.sp_ != nullptr, "resuming an invalid context");
  void* target = to.sp_;
  to.sp_ = nullptr;  // consumed
  mpnj_ctx_swap_asm(&save.sp_, target);
}

void ctx_make(Context& out, void* stack_base, std::size_t size,
              void (*fn)(void*), void* arg) {
  MPNJ_CHECK(size >= 4096, "context stack too small");
  auto top = reinterpret_cast<std::uintptr_t>(stack_base) + size;
  // Place the frame so that the slot above the return address (the stack
  // pointer immediately after the boot `retq`) is 16-byte aligned; the boot
  // thunk's `call` then re-establishes the SysV entry alignment for fn.
  top &= ~static_cast<std::uintptr_t>(15);
  auto* frame = reinterpret_cast<BootFrame*>(top - sizeof(BootFrame));
  std::memset(frame, 0, sizeof(BootFrame));
  // Capture the caller's current FP control state for the new context.
  std::uint32_t mxcsr = __builtin_ia32_stmxcsr();
  std::uint16_t fcw;
  asm volatile("fnstcw %0" : "=m"(fcw));
  frame->mxcsr = mxcsr;
  frame->fcw = fcw;
  frame->r12 = arg;
  frame->rbx = reinterpret_cast<void*>(fn);
  frame->ret = reinterpret_cast<void*>(&mpnj_ctx_boot);
  out.sp_ = frame;
}

}  // namespace mp::arch

#endif  // backend selection
