#pragma once

// Deterministic stack-overflow reporting for pooled stack slots.
//
// The segment pool (cont/segment.h) reserves large PROT_NONE arenas and
// commits fixed-stride stack slots out of them, each with a guard region
// below the usable range (stacks grow down).  A thread that overflows its
// slot faults in the guard instead of corrupting a neighbour; the classifier
// installed here turns that SIGSEGV into a panic naming the owning thread
// ("stack overflow: thread 7 (kv-writer) ...") instead of a bare crash.
//
// Faults that do not land in a registered guard region are chained to the
// previously installed handler (a sanitizer's, typically) or re-raised with
// the default disposition, so unrelated segfaults keep their usual reports.
//
// Everything the handler reads is written with release/acquire atomics or is
// immutable after registration; the handler itself uses only async-signal-
// safe calls (write + abort).

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace mp::arch::stackfault {

// Per-slot owner record, written by the slot's owning thread and read by the
// fault handler.  `name` is only ever written by the thread executing on the
// slot and only read after that same thread faults, so a plain char array is
// race-free in practice.
struct SlotInfo {
  std::atomic<int> tid{-1};                // logical thread id, -1 = unowned
  std::atomic<std::uint8_t> committed{0};  // slot has committed pages
  char name[24] = {};                      // NUL-terminated debug name
};

struct ArenaInfo {
  const std::byte* base = nullptr;  // start of the reservation
  std::size_t bytes = 0;            // total reserved bytes
  std::size_t stride = 0;           // guard_bytes + usable bytes per slot
  std::size_t guard_bytes = 0;      // 0 = guardless (merged-VMA) arena
  std::size_t usable_bytes = 0;     // usable stack bytes per slot
  SlotInfo* slots = nullptr;        // one entry per slot, lives as long as
  std::size_t num_slots = 0;        //   the arena (arenas are never unmapped)
};

inline constexpr int kMaxArenas = 256;

// Publishes an arena to the fault classifier (and installs the process-wide
// handler on first use).  Callers must serialize registrations (the segment
// pool registers under its own lock).  Returns the arena index, or -1 when
// the table is full — faults in an unregistered arena fall through to the
// previous handler.
int register_arena(const ArenaInfo& info);

// Gives the calling OS thread an alternate signal stack so the classifier
// can run after the thread's own stack is exhausted.  Idempotent and cheap
// after the first call; respects an altstack someone else (a sanitizer)
// already installed.
void ensure_thread();

}  // namespace mp::arch::stackfault
