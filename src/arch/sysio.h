#pragma once

#include <cerrno>
#include <exception>
#include <string>

// Raw-syscall discipline for the runtime (native platform backends and the
// src/io reactor): every direct POSIX call goes through retry_eintr so an
// interrupted call is transparently restarted, and every unrecoverable
// failure is mapped onto one exception type carrying the errno, instead of
// each call site improvising its own error handling.

namespace mp::arch {

// An OS-level I/O failure: the operation that failed plus its errno,
// rendered into a stable human-readable message.
class SysError : public std::exception {
 public:
  SysError(const char* op, int err);
  int code() const noexcept { return err_; }
  const char* op() const noexcept { return op_; }
  const char* what() const noexcept override { return msg_.c_str(); }

 private:
  const char* op_;  // static string naming the syscall / operation
  int err_;
  std::string msg_;
};

[[noreturn]] void raise_errno(const char* op, int err);

// Metrics hook (kIoEintrRetries); out of line so this header stays light.
void note_eintr_retry();

// Repeat `f` (a raw syscall wrapper returning -1/errno on failure) until it
// stops failing with EINTR.  Returns f's final result with errno intact.
template <typename F>
auto retry_eintr(F&& f) -> decltype(f()) {
  for (;;) {
    auto r = f();
    if (r >= 0 || errno != EINTR) return r;
    note_eintr_retry();
  }
}

// retry_eintr + errno-to-exception mapping: throws SysError on any residual
// failure, otherwise returns the syscall's non-negative result.
template <typename F>
auto check_sys(const char* op, F&& f) -> decltype(f()) {
  auto r = retry_eintr(std::forward<F>(f));
  if (r < 0) raise_errno(op, errno);
  return r;
}

}  // namespace mp::arch
