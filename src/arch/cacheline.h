#pragma once

#include <cstddef>
#include <new>

namespace mp::arch {

// Cache line size used for padding shared data structures.  On the machines
// the paper targeted this was 16-64 bytes; modern x86-64 uses 64, and 64 also
// avoids destructive interference from adjacent-line prefetchers when doubled.
inline constexpr std::size_t kCacheLine = 64;

// A value padded out to a full cache line so that per-proc mutable state does
// not false-share with its neighbours (the paper's per-proc runtime variables
// are laid out the same way).
template <typename T>
struct alignas(kCacheLine) CachePadded {
  T value{};

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

}  // namespace mp::arch
