// Portable context-switch backend built on POSIX ucontext.  Slower than the
// assembly backend (swapcontext makes a sigprocmask syscall on glibc) but
// runs on any POSIX platform — the analogue of the paper's trivial
// uniprocessor port that "works on all processors that run SML/NJ".

#include "arch/ctx.h"

#if MPNJ_CTX_UCONTEXT

#include <ucontext.h>

#include <cstdint>
#include <new>

#include "arch/panic.h"

namespace mp::arch {

namespace {

// makecontext only passes int arguments; smuggle the pointer in two halves.
void boot_thunk(unsigned hi, unsigned lo) {
  auto bits = (static_cast<std::uint64_t>(hi) << 32) | lo;
  auto* pair = reinterpret_cast<void**>(static_cast<std::uintptr_t>(bits));
  auto fn = reinterpret_cast<void (*)(void*)>(pair[0]);
  void* arg = pair[1];
  fn(arg);
  panic("context entry function returned");
}

}  // namespace

Context::~Context() {
  delete static_cast<ucontext_t*>(sp_);
}

void ctx_swap(Context& save, Context& to) noexcept {
  MPNJ_CHECK(to.sp_ != nullptr, "resuming an invalid context");
  if (save.sp_ == nullptr) save.sp_ = new ucontext_t;
  auto* target = static_cast<ucontext_t*>(to.sp_);
  if (swapcontext(static_cast<ucontext_t*>(save.sp_), target) != 0) {
    panic("swapcontext failed");
  }
}

void ctx_make(Context& out, void* stack_base, std::size_t size,
              void (*fn)(void*), void* arg) {
  // Same floor as the asm backend: the ucontext_t lives on the heap, so the
  // stack only carries fn's frames.  The smallest pooled slot (8 KiB minus
  // the 512-byte boot-record reserve) must pass.
  MPNJ_CHECK(size >= 4096, "context stack too small");
  // Reserve a slot at the top of the stack for the (fn, arg) pair so the
  // context is self-contained; the ucontext_t itself is heap-allocated and
  // owned by `out`.
  auto top = (reinterpret_cast<std::uintptr_t>(stack_base) + size) & ~std::uintptr_t{15};
  auto* pair = reinterpret_cast<void**>(top - 2 * sizeof(void*));
  pair[0] = reinterpret_cast<void*>(fn);
  pair[1] = arg;

  delete static_cast<ucontext_t*>(out.sp_);
  auto* uc = new ucontext_t;
  if (getcontext(uc) != 0) panic("getcontext failed");
  uc->uc_stack.ss_sp = stack_base;
  uc->uc_stack.ss_size = reinterpret_cast<std::uintptr_t>(pair) -
                         reinterpret_cast<std::uintptr_t>(stack_base);
  uc->uc_link = nullptr;
  auto bits = reinterpret_cast<std::uintptr_t>(pair);
  makecontext(uc, reinterpret_cast<void (*)()>(boot_thunk), 2,
              static_cast<unsigned>(bits >> 32),
              static_cast<unsigned>(bits & 0xffffffffu));
  out.sp_ = uc;
}

}  // namespace mp::arch

#endif  // MPNJ_CTX_UCONTEXT
