#pragma once

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>

#ifdef __linux__
#include <sys/eventfd.h>
#endif

#include "arch/sysio.h"

// A cross-thread wakeup port: an eventfd (self-pipe on non-Linux) plus a
// collapsing flag, so one side can kick a peer that is blocked in a kernel
// wait (ppoll / epoll on the port's read end) from any OS thread, including
// signal-adjacent contexts like the preemption ticker.  signal() is
// async-thread-safe and bursts collapse into a single write, so the port
// can never fill.  Shared by the io::Reactor's poller wakeup and the
// per-proc park/unpark protocol of the native platform.

namespace mp::arch {

class WakePort {
 public:
  WakePort() = default;
  WakePort(const WakePort&) = delete;
  WakePort& operator=(const WakePort&) = delete;

  ~WakePort() {
    if (rfd_ >= 0) ::close(rfd_);
    if (wfd_ >= 0 && wfd_ != rfd_) ::close(wfd_);
  }

  void open() {
#ifdef __linux__
    rfd_ = check_sys("eventfd",
                     [] { return ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK); });
    wfd_ = rfd_;
#else
    int p[2];
    check_sys("pipe", [&] { return ::pipe(p); });
    rfd_ = p[0];
    wfd_ = p[1];
    set_nonblocking(rfd_);
    set_nonblocking(wfd_);
#endif
  }

  // The fd a poller waits on for readability.
  int rfd() const { return rfd_; }

  bool pending() const {
    return notified_.load(std::memory_order_acquire);
  }

  // Post a wakeup (async-thread-safe; callable while the peer is not
  // waiting — the kick persists until consumed).
  void signal() {
    if (notified_.exchange(true, std::memory_order_acq_rel)) return;
    const std::uint64_t one = 1;
    ssize_t rc;
    do {
      rc = ::write(wfd_, &one, wfd_ == rfd_ ? sizeof(one) : 1);
    } while (rc < 0 && errno == EINTR);
  }

  // Clear the flag and drain the fd; returns whether a signal had been
  // posted since the last consume.  Clearing before draining keeps the
  // usual self-pipe invariant: a signal() racing the drain re-writes, so a
  // posted kick always leaves the fd readable or the flag set.
  bool consume() {
    const bool was = notified_.exchange(false, std::memory_order_acq_rel);
    drain();
    return was;
  }

  // Flag-clear + drain split for pollers that learned of the readiness
  // from the demultiplexer itself.
  void acknowledge(std::memory_order order = std::memory_order_release) {
    notified_.store(false, order);
    drain();
  }

 private:
  void drain() {
    std::uint64_t buf;
    while (retry_eintr([&] { return ::read(rfd_, &buf, sizeof(buf)); }) > 0) {
    }
  }

#ifndef __linux__
  static void set_nonblocking(int fd) {
    const int flags = check_sys("fcntl", [&] { return ::fcntl(fd, F_GETFL); });
    check_sys("fcntl",
              [&] { return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK); });
  }
#endif

  int rfd_ = -1;  // polled side (eventfd, or pipe read end)
  int wfd_ = -1;  // written side (== rfd_ for eventfd)
  std::atomic<bool> notified_{false};
};

}  // namespace mp::arch
