#pragma once

#include <atomic>
#include <cstdint>

#include "arch/cacheline.h"
#include "metrics/metrics.h"

namespace mp::arch {

// Hint to the processor that we are in a spin-wait loop.
inline void cpu_relax() noexcept {
#if defined(__x86_64__)
  __builtin_ia32_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

// One-bit atomically test-and-set memory location — the hardware primitive
// underneath Lock.mutex_lock (paper section 3.3).  The Motorola 88100 and the
// Sequent provide an atomic exchange on a word of memory; on x86-64 the same
// shape is `xchg` / lock-prefixed exchange, which std::atomic::exchange
// compiles to.  Padded to a cache line so two locks never contend falsely.
class alignas(kCacheLine) TasWord {
 public:
  TasWord() noexcept = default;
  TasWord(const TasWord&) = delete;
  TasWord& operator=(const TasWord&) = delete;

  // Attempt to set; returns true iff the word was previously clear
  // (i.e. the caller now holds it).  Acquire ordering on success.
  bool test_and_set() noexcept {
    // test-test-and-set: avoid the bus transaction when visibly held.
    if (word_.load(std::memory_order_relaxed) != 0) return false;
    return word_.exchange(1, std::memory_order_acquire) == 0;
  }

  // Clear the word.  Release ordering; may be executed by any proc, not just
  // the setter (paper: "unlock ... may be called by any proc").
  void clear() noexcept { word_.store(0, std::memory_order_release); }

  bool is_set() const noexcept {
    return word_.load(std::memory_order_relaxed) != 0;
  }

 private:
  std::atomic<std::uint32_t> word_{0};
};

// Spin until the word is acquired, feeding the contention counters.  This is
// the one spin loop shared by every runtime-internal lock (heap, signal
// table, segment pool); the platform Locks keep their own loops because they
// add backoff and safe-point polling, and instrument those themselves.
inline void spin_acquire(TasWord& w) noexcept {
  if (w.test_and_set()) {
    MPNJ_METRIC_COUNT(kLockAcquires, 1);
    return;
  }
  std::uint64_t iters = 0;
  do {
    ++iters;
    cpu_relax();
  } while (!w.test_and_set());
  MPNJ_METRIC_COUNT(kLockAcquires, 1);
  MPNJ_METRIC_COUNT(kLockContended, 1);
  MPNJ_METRIC_COUNT(kLockSpinIters, iters);
  MPNJ_METRIC_RECORD(kLockSpinIters, iters);
}

// RAII spin_acquire / clear pair.
class TasGuard {
 public:
  explicit TasGuard(TasWord& w) noexcept : w_(w) { spin_acquire(w_); }
  ~TasGuard() { w_.clear(); }
  TasGuard(const TasGuard&) = delete;
  TasGuard& operator=(const TasGuard&) = delete;

 private:
  TasWord& w_;
};

}  // namespace mp::arch
