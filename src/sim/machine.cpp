#include "sim/machine.h"

namespace mp::sim {

MachineModel sequent_s81(int procs) {
  MachineModel m;
  m.name = "sequent-s81";
  m.num_procs = procs;
  m.mips = 4.0;              // 16 MHz 80386, ~4 cycles/instruction effective
  m.bus_bytes_per_us = 25.0; // measured max ~25 MB/s (section 6)
  m.lock_op_instr = 85.0;    // pair ~46 us at 4 MIPS incl. bus transactions
  m.tas_bus_bytes = 4.0;
  m.hardware_lock_bus = false;
  m.callcc_instr = 40.0;
  m.throw_instr = 30.0;
  return m;
}

MachineModel sgi_4d380(int procs) {
  MachineModel m;
  m.name = "sgi-4d380s";
  m.num_procs = procs;
  m.mips = 20.0;             // 33 MHz R3000: much faster processors...
  m.bus_bytes_per_us = 30.0; // ...but only slightly larger bus bandwidth
  m.lock_op_instr = 58.0;    // pair ~6 us at 20 MIPS
  m.tas_bus_bytes = 0.0;     // lock memory and bus are separate hardware
  m.hardware_lock_bus = true;
  m.callcc_instr = 30.0;
  m.throw_instr = 22.0;
  return m;
}

MachineModel luna88k(int procs) {
  MachineModel m;
  m.name = "luna88k";
  m.num_procs = procs;
  m.mips = 12.0;  // 25 MHz 88100
  m.bus_bytes_per_us = 20.0;
  m.lock_op_instr = 70.0;  // xmem atomic exchange on ordinary memory
  m.tas_bus_bytes = 4.0;
  m.hardware_lock_bus = false;
  return m;
}

MachineModel uniprocessor() {
  MachineModel m;
  m.name = "uniprocessor";
  m.num_procs = 1;
  m.mips = 4.0;
  m.bus_bytes_per_us = 25.0;
  return m;
}

}  // namespace mp::sim
