#pragma once

#include <cstdint>
#include <string>

namespace mp::sim {

// Cost model of a simulated shared-memory multiprocessor.
//
// Virtual time is measured in microseconds (double).  Compute work is
// expressed in "instructions" and converted via `mips` (instructions per
// microsecond); memory traffic in bytes is serialized through a single
// shared bus of `bus_bytes_per_us` bandwidth.  The preset models are
// calibrated from the numbers the paper reports for its three ports
// (section 5 and 6): the Sequent Symmetry S81 used for Figure 6, the SGI
// 4D/380S whose faster processors saturate a barely-larger bus, and the
// Omron Luna88k.
struct MachineModel {
  std::string name;
  int num_procs = 1;

  // --- processor ---
  double mips = 4.0;  // effective instructions per microsecond per proc

  // --- shared memory bus ---
  double bus_bytes_per_us = 25.0;  // achievable bandwidth (25 MB/s == 25 B/us)

  // --- mutex locks (paper section 5: assembly subroutines around a
  //     test-and-set; SGI uses a separate hardware lock bus) ---
  double lock_op_instr = 85.0;   // per try_lock / unlock call
  double tas_bus_bytes = 4.0;    // bus transaction per test-and-set
  bool hardware_lock_bus = false;  // SGI: lock traffic bypasses main bus
  double spin_retry_instr = 12.0;  // cost of one failed spin iteration

  // --- per-proc scheduling core (work stealing + targeted wakeups) ---
  double cas_instr = 30.0;       // one compare-and-swap (steal, park claim)
  // Queue-lock direct handoff (threads/qlock.h): the grant exchange plus the
  // line transfer carrying the released state to the next holder's cache.
  double lock_handoff_instr = 40.0;
  double park_us = 8.0;          // entering the kernel park (port wait setup)
  double unpark_instr = 150.0;   // targeted wakeup delivery (eventfd write)
  // Granularity at which a parked proc notices a posted unpark; also the
  // wakeup latency the model charges (a real port wakes at interrupt
  // speed; the slice keeps the simulation deterministic and cheap).
  double park_slice_us = 20.0;

  // --- continuations / scheduling ---
  double callcc_instr = 40.0;      // capture cost (closure allocation)
  double throw_instr = 30.0;       // resume cost
  double proc_acquire_us = 400.0;  // OS call: obtain a kernel thread
  double proc_release_us = 150.0;  // OS call: release the processor
  // Stack-slot pool traffic (cont/segment.h): committing a fresh slot page
  // (soft fault + zero fill) and decommitting one back to the OS
  // (madvise).  Cache-hot recycles charge nothing — that is the point of
  // the pool — so these price only the cold paths.
  double stack_commit_us_per_page = 2.0;
  double stack_decommit_us_per_page = 1.0;

  // --- allocation & GC (two-generation copying collector, section 5) ---
  double alloc_instr_per_word = 2.0;    // inline bump allocation
  double alloc_bus_bytes_per_word = 4.0;  // write miss on nearly every word
  // Per-processor cache.  SML/NJ's large allocation regions guarantee "a
  // cache-miss on almost every allocation" (section 7); when the nursery
  // fits in the cache, allocation writes mostly hit and only the dirty
  // write-back fraction reaches the bus — the "very small young
  // generations that can fit in the cache" future-work strategy.
  double cache_bytes = 64.0 * 1024;
  double cached_alloc_bus_factor = 0.2;
  double gc_instr_per_word = 20.0;      // sequential copy cost per live word
  double gc_bus_bytes_per_word = 8.0;   // read from-space + write to-space
  double gc_sync_us = 120.0;            // clean-point rendezvous overhead
  // Extra rendezvous/termination overhead per additional parallel-GC worker
  // (block hand-out, steal traffic, the two-phase termination barrier).
  double gc_par_sync_us_per_worker = 40.0;
  // Card-marking remembered set (gc/card_table.h): re-parsing one dirty card
  // costs a fixed crossing-map lookup plus a per-word header walk; the
  // parsed words are read traffic on the shared bus.
  double gc_card_scan_instr_per_card = 15.0;
  double gc_card_scan_instr_per_word = 2.0;
  double gc_card_scan_bus_bytes_per_word = 8.0;
  // Large-object space (gc/los.h): page-granular allocation soft-faults
  // fresh pages; the post-major sweep walks metas and madvises dead runs.
  double los_alloc_us_per_page = 0.5;
  double los_sweep_instr_per_page = 50.0;

  // --- scheduling of the simulation itself ---
  double granularity_us = 0.0;  // extra slack before forcing a proc switch
  std::uint64_t seed = 0x5eed;

  double instr_to_us(double instructions) const { return instructions / mips; }
};

// 16-processor Sequent Symmetry S81: 16 MHz Intel 80386 (a few effective
// MIPS), ~25 MB/s achievable bus bandwidth, lock+unlock pair ~46 us.
MachineModel sequent_s81(int procs = 16);

// SGI 4D/380S: much faster MIPS R3000 processors, only ~30 MB/s of bus, a
// separate hardware lock bus, lock+unlock pair ~6 us.
MachineModel sgi_4d380(int procs = 8);

// Omron Luna88k (Mach kernel threads, atomic exchange on any word).
MachineModel luna88k(int procs = 4);

// Trivial uniprocessor implementation (paper: "works on all processors that
// run SML/NJ").
MachineModel uniprocessor();

}  // namespace mp::sim
