#pragma once

#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "arch/ctx.h"
#include "arch/rng.h"
#include "cont/segment.h"
#include "sim/machine.h"

namespace mp::sim {

// Per-proc accounting, used by the benchmark harness to reproduce the
// paper's idle-rate, lock-contention and bus-traffic observations.
struct ProcStats {
  double busy_us = 0;      // executing (includes bus stalls and spinning)
  double spin_us = 0;      // subset of busy: spinning on mutex locks
  double idle_us = 0;      // parked with no work
  double gc_wait_us = 0;   // parked at a clean point waiting for the collector
  double bus_wait_us = 0;  // subset of busy: waiting for the shared bus
  double gc_us = 0;        // performing collections (collector proc)
  std::uint64_t bus_bytes = 0;
  std::uint64_t lock_acquires = 0;
  std::uint64_t lock_spin_iters = 0;
  std::uint64_t switches = 0;  // times this proc was scheduled
};

struct BusStats {
  double busy_us = 0;
  double wait_us = 0;
  std::uint64_t bytes = 0;
};

// Deterministic virtual-time simulator of a small shared-memory
// multiprocessor.  Each virtual proc runs as a fiber on the host thread and
// owns a virtual clock; the engine always resumes the runnable proc with the
// smallest clock (ties broken by proc id), so any interleaving-visible event
// order is a pure function of the machine model, the seed, and the client
// program.  Memory traffic is serialized through a single shared bus.
//
// The engine knows nothing about the MP platform; the platform supplies the
// per-proc main loop and hooks.  Everything here is proc-side unless noted.
class Engine {
 public:
  // `proc_main(id)` runs inside proc `id`'s fiber; it must loop forever
  // (idle_wait / work / idle_wait ...) and never return.
  using ProcMain = std::function<void(int)>;
  using Hook = std::function<void(int)>;

  Engine(const MachineModel& model, ProcMain proc_main);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Called with the proc id every time a proc fiber is (re)scheduled; the
  // platform points the continuation layer's current-exec at this proc.
  void set_resume_hook(Hook h) { resume_hook_ = std::move(h); }
  // Called from charge() when the proc's clock passes the deadline armed by
  // arm_hook(); used for preemption-signal delivery at safe points.
  void set_timer_hook(Hook h) { timer_hook_ = std::move(h); }
  void arm_hook(int id, double at_us);

  // ---- host side ----
  // Runs the simulation until no proc is runnable.  Quiescence with work
  // still logically outstanding is the client's deadlock to diagnose.
  void run();
  double total_us() const;
  const MachineModel& model() const { return model_; }
  ProcStats& stats(int id) { return procs_[static_cast<std::size_t>(id)]->stats; }
  const BusStats& bus_stats() const { return bus_; }

  // ---- proc side ----
  int current() const { return cur_; }
  double now() const;        // current proc's clock (us)
  double clock_of(int id) const;
  void charge_instr(double instr);
  void charge_us(double us);
  void bus_transfer(double bytes);      // advances clock by queueing + transfer
  void note_spin(double us, std::uint64_t iters);
  void safe_point();                    // runs all checks without adding time

  // Wake an idle (or not-yet-started) proc so it becomes runnable no earlier
  // than `not_before`.  May be called from a proc or from the host.
  void wake(int id, double not_before);
  // Park the current proc until woken.
  void idle_wait();
  bool is_idle(int id) const;
  int num_idle() const;
  // Procs currently parked at a clean point for a collection (excludes the
  // collector itself); the platform's parallel-GC cost model reads this.
  int num_stopped() const;

  // ---- stop-the-world rendezvous (GC clean points, paper section 5) ----
  // Called by the collecting proc: returns once every other started proc is
  // parked at a safe point (or idle).
  void stop_world();
  // Wakes the parked procs at the collector's (later) clock, charging the
  // difference to their gc_wait time.
  void resume_world();

  arch::Rng& rng(int id) { return procs_[static_cast<std::size_t>(id)]->rng; }

 private:
  enum class PState : std::uint8_t {
    kUnstarted,  // fiber not yet created
    kRunnable,
    kRunning,
    kIdle,     // waiting for wake()
    kParked,   // stopped at a clean point during a collection
    kWaitWorld  // collector waiting for the world to stop
  };

  struct VProc {
    int id = 0;
    PState state = PState::kUnstarted;
    double clock = 0;
    double idle_from = 0;
    double hook_at = std::numeric_limits<double>::infinity();
    arch::Context resume_ctx;
    cont::StackSegment* fiber_seg = nullptr;
    ProcStats stats;
    arch::Rng rng;
    // Sanitizer identity of the stack resume_ctx points into (which is the
    // fiber_seg only until the first client-level context switch): the TSan
    // fiber is recorded by the suspending side, the ASan bounds by the
    // engine when the suspension reaches it.  Unused in unsanitized builds.
    void* san_fiber = nullptr;
    const void* san_bottom = nullptr;
    std::size_t san_size = 0;
  };

  static void fiber_entry(void* arg);
  VProc& cur_proc();
  void switch_to_engine();         // save current proc, resume scheduler
  void maybe_yield();              // yield if another runnable proc is behind
  int pick_next() const;           // min-clock runnable proc, or -1
  void resume(int id);

  MachineModel model_;
  ProcMain proc_main_;
  Hook resume_hook_;
  Hook timer_hook_;
  std::vector<std::unique_ptr<VProc>> procs_;
  arch::Context engine_ctx_;
  int cur_ = -1;
  bool stop_requested_ = false;
  int collector_ = -1;
  BusStats bus_;
  double bus_free_at_ = 0;
  bool running_ = false;
  // Sanitizer identity of the engine's own (host-thread) stack; the fiber is
  // captured when run() starts, the ASan bounds on the first arrival at a
  // proc fiber's entry point.  Unused in unsanitized builds.
  void* san_engine_fiber_ = nullptr;
  const void* san_engine_bottom_ = nullptr;
  std::size_t san_engine_size_ = 0;
};

}  // namespace mp::sim
