#include "sim/engine.h"

#include <algorithm>

#include "arch/fiber_san.h"
#include "arch/panic.h"

namespace mp::sim {

namespace {

struct FiberBoot {
  Engine* engine;
  int id;
  std::function<void(int)>* main;
};

}  // namespace

Engine::Engine(const MachineModel& model, ProcMain proc_main)
    : model_(model), proc_main_(std::move(proc_main)) {
  MPNJ_CHECK(model_.num_procs >= 1, "machine must have at least one proc");
  procs_.reserve(static_cast<std::size_t>(model_.num_procs));
  for (int i = 0; i < model_.num_procs; i++) {
    auto p = std::make_unique<VProc>();
    p->id = i;
    p->rng.reseed(model_.seed ^ (0x9e3779b97f4a7c15ull * (std::uint64_t)(i + 1)));
    procs_.push_back(std::move(p));
  }
}

Engine::~Engine() {
  // Fibers are parked inside proc_main loops; their stacks are reclaimed by
  // dropping the segments.  Any client continuations they reference were
  // released by the platform before the engine is destroyed.
  for (auto& p : procs_) {
    if (p->fiber_seg != nullptr) p->fiber_seg->drop_ref();
  }
}

Engine::VProc& Engine::cur_proc() {
  MPNJ_CHECK(cur_ >= 0, "engine operation outside a running proc");
  return *procs_[static_cast<std::size_t>(cur_)];
}

double Engine::now() const {
  MPNJ_CHECK(cur_ >= 0, "now() outside a running proc");
  return procs_[static_cast<std::size_t>(cur_)]->clock;
}

double Engine::clock_of(int id) const {
  return procs_[static_cast<std::size_t>(id)]->clock;
}

double Engine::total_us() const {
  double t = 0;
  for (const auto& p : procs_) t = std::max(t, p->clock);
  return t;
}

void Engine::arm_hook(int id, double at_us) {
  procs_[static_cast<std::size_t>(id)]->hook_at = at_us;
}

void Engine::fiber_entry(void* arg) {
  auto* boot = static_cast<FiberBoot*>(arg);
  if constexpr (arch::san::kActive) {
    // Every first arrival on a proc fiber comes from the engine loop, so the
    // previous-stack bounds the sanitizer reports here are the engine's.
    const void* prev_bottom = nullptr;
    std::size_t prev_size = 0;
    arch::san::switch_finish(nullptr, &prev_bottom, &prev_size);
    boot->engine->san_engine_bottom_ = prev_bottom;
    boot->engine->san_engine_size_ = prev_size;
  }
  const int id = boot->id;
  auto* main = boot->main;
  delete boot;
  (*main)(id);
  arch::panic("sim proc main returned");
}

void Engine::resume(int id) {
  VProc& p = *procs_[static_cast<std::size_t>(id)];
  if (p.state == PState::kUnstarted || p.fiber_seg == nullptr) {
    p.fiber_seg = cont::SegmentPool::instance().acquire();
    auto* boot = new FiberBoot{this, id, &proc_main_};
    arch::san::stack_reuse(p.fiber_seg->stack_base(),
                           p.fiber_seg->stack_size());
    p.fiber_seg->san_fiber = arch::san::fiber_create();
    p.san_fiber = p.fiber_seg->san_fiber;
    p.san_bottom = p.fiber_seg->stack_base();
    p.san_size = p.fiber_seg->stack_size();
    arch::ctx_make(p.resume_ctx, p.fiber_seg->stack_base(),
                   p.fiber_seg->stack_size(), &fiber_entry, boot);
  }
  p.state = PState::kRunning;
  p.stats.switches++;
  cur_ = id;
  if (resume_hook_) resume_hook_(id);
  void* san_fake = nullptr;
  arch::san::switch_begin(&san_fake, p.san_fiber, p.san_bottom, p.san_size);
  arch::ctx_swap(engine_ctx_, p.resume_ctx);
  if constexpr (arch::san::kActive) {
    // The proc suspended somewhere (possibly on a client segment it switched
    // to since); remember that stack's bounds for the next resume.
    const void* prev_bottom = nullptr;
    std::size_t prev_size = 0;
    arch::san::switch_finish(san_fake, &prev_bottom, &prev_size);
    p.san_bottom = prev_bottom;
    p.san_size = prev_size;
  }
  cur_ = -1;
}

int Engine::pick_next() const {
  int best = -1;
  double best_clock = 0;
  for (const auto& p : procs_) {
    bool eligible = false;
    if (stop_requested_) {
      // While a stop-the-world is pending, only non-collector runnable procs
      // execute (driving them to their next clean point); the collector
      // resumes once everyone else is parked or idle.
      eligible = p->state == PState::kRunnable && p->id != collector_;
      if (!eligible && p->id == collector_ && p->state == PState::kWaitWorld) {
        bool all_stopped = true;
        for (const auto& q : procs_) {
          if (q->id == collector_) continue;
          if (q->state == PState::kRunnable || q->state == PState::kRunning) {
            all_stopped = false;
            break;
          }
        }
        eligible = all_stopped;
      }
    } else {
      eligible = p->state == PState::kRunnable;
    }
    if (eligible && (best < 0 || p->clock < best_clock)) {
      best = p->id;
      best_clock = p->clock;
    }
  }
  return best;
}

void Engine::run() {
  MPNJ_CHECK(!running_, "engine re-entered");
  running_ = true;
  if constexpr (arch::san::kActive) {
    san_engine_fiber_ = arch::san::current_fiber();
  }
  for (;;) {
    int next = pick_next();
    if (next < 0) break;
    resume(next);
  }
  MPNJ_CHECK(!stop_requested_,
             "simulation quiesced during a stop-the-world collection");
  running_ = false;
}

void Engine::switch_to_engine() {
  VProc& p = cur_proc();
  if constexpr (arch::san::kActive) {
    p.san_fiber = arch::san::current_fiber();
  }
  void* san_fake = nullptr;
  arch::san::switch_begin(&san_fake, san_engine_fiber_, san_engine_bottom_,
                          san_engine_size_);
  arch::ctx_swap(p.resume_ctx, engine_ctx_);
  arch::san::switch_finish(san_fake, nullptr, nullptr);
}

void Engine::maybe_yield() {
  VProc& p = cur_proc();
  // Deliver an armed timer (preemption signal) first: the hook may run
  // client code (a handler calling yield) on this proc's stack.
  if (p.clock >= p.hook_at && timer_hook_) {
    p.hook_at = std::numeric_limits<double>::infinity();
    timer_hook_(p.id);
  }
  if (stop_requested_ && p.id != collector_) {
    // Clean point: park for the collection.
    p.state = PState::kParked;
    switch_to_engine();
    return;
  }
  // Yield if some other runnable proc is further in the past than our
  // granularity allowance; the engine will run it first.
  for (const auto& q : procs_) {
    if (q->id != p.id && q->state == PState::kRunnable &&
        q->clock + model_.granularity_us < p.clock) {
      p.state = PState::kRunnable;
      switch_to_engine();
      return;
    }
  }
}

void Engine::charge_us(double us) {
  VProc& p = cur_proc();
  p.clock += us;
  p.stats.busy_us += us;
  maybe_yield();
}

void Engine::charge_instr(double instr) { charge_us(model_.instr_to_us(instr)); }

void Engine::safe_point() {
  cur_proc();
  maybe_yield();
}

void Engine::bus_transfer(double bytes) {
  if (bytes <= 0) return;
  VProc& p = cur_proc();
  const double start = std::max(p.clock, bus_free_at_);
  const double wait = start - p.clock;
  const double dur = bytes / model_.bus_bytes_per_us;
  bus_free_at_ = start + dur;
  bus_.bytes += static_cast<std::uint64_t>(bytes);
  bus_.busy_us += dur;
  bus_.wait_us += wait;
  p.stats.bus_wait_us += wait;
  p.stats.bus_bytes += static_cast<std::uint64_t>(bytes);
  // The proc stalls for the queueing delay plus the transfer itself; stalls
  // count as busy time (they lengthen the proc's execution, which is exactly
  // the paper's main-memory-contention effect).
  p.clock = start + dur;
  p.stats.busy_us += wait + dur;
  maybe_yield();
}

void Engine::note_spin(double us, std::uint64_t iters) {
  VProc& p = cur_proc();
  p.stats.spin_us += us;
  p.stats.lock_spin_iters += iters;
}

void Engine::wake(int id, double not_before) {
  VProc& p = *procs_[static_cast<std::size_t>(id)];
  MPNJ_CHECK(p.state == PState::kIdle || p.state == PState::kUnstarted,
             "wake of a non-idle sim proc");
  if (p.state == PState::kIdle) {
    const double wake_at = std::max(p.clock, not_before);
    p.stats.idle_us += wake_at - p.idle_from;
    p.clock = wake_at;
  } else {
    // An unstarted proc has been idle since the beginning of time.
    p.stats.idle_us += not_before;
    p.clock = not_before;
  }
  p.state = PState::kRunnable;
}

void Engine::idle_wait() {
  VProc& p = cur_proc();
  p.state = PState::kIdle;
  p.idle_from = p.clock;
  switch_to_engine();
  MPNJ_CHECK(p.state == PState::kRunning, "idle proc resumed in a bad state");
}

bool Engine::is_idle(int id) const {
  const auto s = procs_[static_cast<std::size_t>(id)]->state;
  return s == PState::kIdle || s == PState::kUnstarted;
}

int Engine::num_idle() const {
  int n = 0;
  for (const auto& p : procs_) {
    if (p->state == PState::kIdle || p->state == PState::kUnstarted) n++;
  }
  return n;
}

int Engine::num_stopped() const {
  int n = 0;
  for (const auto& p : procs_) {
    if (p->state == PState::kParked) n++;
  }
  return n;
}

void Engine::stop_world() {
  VProc& p = cur_proc();
  MPNJ_CHECK(!stop_requested_, "nested stop-the-world");
  stop_requested_ = true;
  collector_ = p.id;
  p.state = PState::kWaitWorld;
  switch_to_engine();
  // Resumed: every other started proc is parked or idle.
  p.state = PState::kRunning;
}

void Engine::resume_world() {
  VProc& collector = cur_proc();
  MPNJ_CHECK(stop_requested_ && collector_ == collector.id,
             "resume_world by a proc that did not stop it");
  for (auto& q : procs_) {
    if (q->state == PState::kParked) {
      const double resume_at = std::max(q->clock, collector.clock);
      q->stats.gc_wait_us += resume_at - q->clock;
      q->clock = resume_at;
      q->state = PState::kRunnable;
    }
  }
  stop_requested_ = false;
  collector_ = -1;
}

}  // namespace mp::sim
