#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "arch/rng.h"
#include "gc/roots.h"
#include "threads/scheduler.h"
#include "threads/sync.h"

// The five applications of the paper's Figure 6 plus the `seq` baseline.
//
// Each workload does real computation on plain C++ state (so results are
// verified exactly against an independent sequential reference), while its
// parallel structure — fork/join shape, barriers, serial sections — and its
// memory behaviour — work charges and SML/NJ-style heap allocation through
// the GC — drive the simulator's cost model.  Allocation profiles follow the
// ML originals: functional updates allocate fresh records/rows which stay
// live for a phase, so minor collections copy real data and the sequential
// collector becomes the scalability bottleneck the paper reports.

namespace mp::workloads {

class Workload {
 public:
  virtual ~Workload() = default;
  virtual const char* name() const = 0;
  // Body of the root thread; forks worker threads as needed.  `tasks` is
  // the parallelism hint (typically the proc count).
  virtual void run(threads::Scheduler& sched, int tasks) = 0;
  // Exact check against the sequential reference; call after run().
  virtual bool verify() const = 0;
  // A stable digest of the computed output (for cross-backend checks).
  virtual std::uint64_t checksum() const = 0;
};

// Factories (parameter defaults are the paper's sizes).
std::unique_ptr<Workload> make_allpairs(int nodes = 75,
                                        std::uint64_t seed = 1993);
std::unique_ptr<Workload> make_mst(int points = 200,
                                   std::uint64_t seed = 1993);
std::unique_ptr<Workload> make_abisort(int log2_n = 12,
                                       std::uint64_t seed = 1993);
std::unique_ptr<Workload> make_simple(int grid = 100, int steps = 1);
std::unique_ptr<Workload> make_mm(int n = 100, std::uint64_t seed = 1993);
// `seq`: `copies` independent instances of a simple allocating computation
// (one per proc in the Figure 6 baseline).
std::unique_ptr<Workload> make_seq(int copies, long list_len = 30000);
// `net_echo`: CML-backed echo server + loopback load generator over the
// src/io streams.  Virtual-pipe transport by default (every backend); set
// tcp for real loopback sockets through the reactor (native/uni only).
struct NetEchoOptions {
  int connections = 8;
  int roundtrips = 25;  // per connection
  int payload_bytes = 64;
  bool tcp = false;
};
std::unique_ptr<Workload> make_net_echo(NetEchoOptions opts = {});
// `kv`: the sharded KV service (src/kv) under a pipelined mixed-op load.
// Each connection owns a disjoint key prefix and replays a deterministic
// script (SET/GET/DEL/RANGE + a PING) with `window` requests in flight,
// verifying every reply byte-for-byte against a private sequential model.
// Virtual-pipe transport by default; tcp for loopback sockets (native/uni).
struct KvWorkloadOptions {
  int shards = 0;       // 0 = one shard per proc
  int connections = 8;
  int ops = 48;         // scripted operations per connection
  int window = 8;       // pipelined requests in flight per connection
  int keys = 24;        // distinct keys per connection's prefix
  int value_bytes = 32;
  bool tcp = false;
  std::uint64_t seed = 1993;
};
std::unique_ptr<Workload> make_kv(KvWorkloadOptions opts = {});

std::unique_ptr<Workload> make_workload(const std::string& name, int procs);
std::vector<std::string> workload_names();

// Fork `tasks` threads running body(task_index) and wait for all of them.
inline void parallel_for_tasks(threads::Scheduler& sched, int tasks,
                               const std::function<void(int)>& body) {
  threads::CountdownLatch latch(sched, tasks);
  for (int t = 0; t < tasks; t++) {
    sched.fork([&body, &latch, t] {
      body(t);
      latch.count_down();
    });
  }
  latch.await();
}

// Static block partition of [0, n) into `tasks` contiguous ranges.
struct Range {
  int lo;
  int hi;
};
inline Range task_range(int n, int tasks, int t) {
  const int base = n / tasks;
  const int extra = n % tasks;
  const int lo = t * base + std::min(t, extra);
  const int hi = lo + base + (t < extra ? 1 : 0);
  return {lo, hi};
}

}  // namespace mp::workloads
