// simple: the SIMPLE hydrodynamics benchmark (Crowley et al.), 100x100
// grid, one time step (paper section 6).  A simplified Lagrangian-style
// step with the code's characteristic phase structure: many short parallel
// stencil phases separated by global joins, red-black heat-conduction
// sweeps, and a sequential time-step computation.  The available
// parallelism is deliberately coarse (fixed 16-row blocks, i.e. at most
// ~7 concurrent tasks), which is what produces the paper's worst-case
// speedup and the >50% processor idle rates at 10+ procs.
//
// Every phase is element-wise or double-buffered, so results are exact and
// schedule-independent; verification compares against a sequential run of
// the same formulas.

#include <cmath>
#include <vector>

#include "gc/heap.h"
#include "workloads/workload.h"

namespace mp::workloads {

namespace {

using gc::Value;

constexpr int kRowsPerBlock = 20;  // fixed grain: limited parallelism
constexpr double kDt = 0.01;
constexpr double kGamma = 1.4;
constexpr double kCond = 0.1;

class SimpleHydro final : public Workload {
 public:
  SimpleHydro(int n, int steps) : n_(n), steps_(steps) {
    init(u_, v_, r_, e_, p_, q_);
    // Sequential reference.
    Grid ru, rv, rr, re, rp, rq;
    init(ru, rv, rr, re, rp, rq);
    for (int s = 0; s < steps_; s++) {
      step_reference(ru, rv, rr, re, rp, rq);
    }
    ref_e_ = re;
    ref_r_ = rr;
  }

  const char* name() const override { return "simple"; }

  void run(threads::Scheduler& sched, int tasks) override {
    (void)tasks;  // the grain is fixed; that is the point of this benchmark
    init(u_, v_, r_, e_, p_, q_);
    for (int s = 0; s < steps_; s++) step_parallel(sched);
  }

  bool verify() const override { return e_ == ref_e_ && r_ == ref_r_; }

  std::uint64_t checksum() const override {
    std::uint64_t acc = 1469598103934665603ull;
    for (const double d : e_) {
      std::uint64_t bits;
      __builtin_memcpy(&bits, &d, sizeof(bits));
      acc = (acc ^ bits) * 1099511628211ull;
    }
    return acc;
  }

 private:
  using Grid = std::vector<double>;

  double& at(Grid& g, int i, int j) const {
    return g[static_cast<std::size_t>(i) * n_ + j];
  }
  double at(const Grid& g, int i, int j) const {
    return g[static_cast<std::size_t>(i) * n_ + j];
  }

  void init(Grid& u, Grid& v, Grid& r, Grid& e, Grid& p, Grid& q) const {
    const auto cells = static_cast<std::size_t>(n_) * n_;
    u.assign(cells, 0.0);
    v.assign(cells, 0.0);
    r.assign(cells, 1.0);
    e.assign(cells, 0.0);
    p.assign(cells, 0.0);
    q.assign(cells, 0.0);
    for (int i = 0; i < n_; i++) {
      for (int j = 0; j < n_; j++) {
        // A smooth blast profile in the corner.
        const double d2 = static_cast<double>(i) * i + static_cast<double>(j) * j;
        at(e, i, j) = 1.0 + 4.0 / (1.0 + d2 / (n_ * 2.0));
        at(r, i, j) = 1.0 + 0.25 / (1.0 + d2 / (n_ * 4.0));
      }
    }
  }

  // --- the physics phases, element-wise on [1, n-2]^2 interiors ---

  void phase_pressure(Grid& p, const Grid& r, const Grid& e, const Grid& q,
                      int lo, int hi) const {
    for (int i = lo; i < hi; i++) {
      for (int j = 0; j < n_; j++) {
        at(p, i, j) = (kGamma - 1.0) * at(r, i, j) * at(e, i, j) + at(q, i, j);
      }
    }
  }

  void phase_velocity(Grid& u, Grid& v, const Grid& p, int lo, int hi) const {
    for (int i = std::max(lo, 1); i < std::min(hi, n_ - 1); i++) {
      for (int j = 1; j < n_ - 1; j++) {
        at(u, i, j) += kDt * (at(p, i, j - 1) - at(p, i, j + 1)) * 0.5;
        at(v, i, j) += kDt * (at(p, i - 1, j) - at(p, i + 1, j)) * 0.5;
      }
    }
  }

  void phase_viscosity(Grid& q, const Grid& u, const Grid& v, const Grid& r,
                       int lo, int hi) const {
    for (int i = std::max(lo, 1); i < std::min(hi, n_ - 1); i++) {
      for (int j = 1; j < n_ - 1; j++) {
        const double du = at(u, i, j + 1) - at(u, i, j - 1);
        const double dv = at(v, i + 1, j) - at(v, i - 1, j);
        const double c = du + dv;
        at(q, i, j) = c < 0 ? 2.0 * at(r, i, j) * c * c : 0.0;
      }
    }
  }

  void phase_density(Grid& rn, const Grid& r, const Grid& u, const Grid& v,
                     int lo, int hi) const {
    for (int i = lo; i < hi; i++) {
      for (int j = 0; j < n_; j++) {
        if (i == 0 || i == n_ - 1 || j == 0 || j == n_ - 1) {
          at(rn, i, j) = at(r, i, j);
          continue;
        }
        const double div =
            (at(u, i, j + 1) - at(u, i, j - 1) + at(v, i + 1, j) -
             at(v, i - 1, j)) *
            0.5;
        at(rn, i, j) = at(r, i, j) * (1.0 - kDt * div);
      }
    }
  }

  void phase_energy(Grid& e, const Grid& p, const Grid& u, const Grid& v,
                    const Grid& r, int lo, int hi) const {
    for (int i = std::max(lo, 1); i < std::min(hi, n_ - 1); i++) {
      for (int j = 1; j < n_ - 1; j++) {
        const double div =
            (at(u, i, j + 1) - at(u, i, j - 1) + at(v, i + 1, j) -
             at(v, i - 1, j)) *
            0.5;
        at(e, i, j) -= kDt * at(p, i, j) * div / at(r, i, j);
      }
    }
  }

  void phase_conduct(Grid& e, int parity, int lo, int hi) const {
    for (int i = std::max(lo, 1); i < std::min(hi, n_ - 1); i++) {
      for (int j = 1 + ((i + 1 + parity) % 2); j < n_ - 1; j += 2) {
        const double lap = at(e, i - 1, j) + at(e, i + 1, j) +
                           at(e, i, j - 1) + at(e, i, j + 1) -
                           4.0 * at(e, i, j);
        at(e, i, j) += kDt * kCond * lap;
      }
    }
  }

  // Sequential time-step control: a global reduction done on the root.
  double phase_dt(const Grid& u, const Grid& v) const {
    double m = 1e-9;
    for (int i = 0; i < n_; i++) {
      for (int j = 0; j < n_; j++) {
        m = std::max(m, std::fabs(at(u, i, j)) + std::fabs(at(v, i, j)));
      }
    }
    return 0.1 / m;
  }

  void step_reference(Grid& u, Grid& v, Grid& r, Grid& e, Grid& p,
                      Grid& q) const {
    phase_pressure(p, r, e, q, 0, n_);
    phase_velocity(u, v, p, 0, n_);
    phase_viscosity(q, u, v, r, 0, n_);
    Grid rn = r;
    phase_density(rn, r, u, v, 0, n_);
    r.swap(rn);
    phase_energy(e, p, u, v, r, 0, n_);
    for (int sweep = 0; sweep < 2; sweep++) {
      phase_conduct(e, 0, 0, n_);
      phase_conduct(e, 1, 0, n_);
    }
    (void)phase_dt(u, v);
  }

  // One phase fanned out over fixed row blocks with a join, charging work
  // and allocating a live row copy per row (boxed reals in the ML version
  // make these phases extremely allocation-heavy).
  void parallel_phase(threads::Scheduler& sched, double instr_per_cell,
                      const std::function<void(int, int)>& body) {
    Platform& p = sched.platform();
    auto& h = p.heap();
    const int blocks = (n_ + kRowsPerBlock - 1) / kRowsPerBlock;
    parallel_for_tasks(sched, blocks, [&](int b) {
      const int lo = b * kRowsPerBlock;
      const int hi = std::min(n_, lo + kRowsPerBlock);
      body(lo, hi);
      p.work((hi - lo) * n_ * instr_per_cell);
      // One fresh boxed row per grid row touched, live for the phase.
      std::vector<gc::GlobalRoot> live;
      live.reserve(static_cast<std::size_t>(hi - lo));
      for (int i = lo; i < hi; i++) {
        live.emplace_back(
            h, h.alloc_array(static_cast<std::size_t>(n_), Value::from_int(i)));
      }
    });
  }

  void step_parallel(threads::Scheduler& sched) {
    Platform& plat = sched.platform();
    parallel_phase(sched, 8, [&](int lo, int hi) {
      phase_pressure(p_, r_, e_, q_, lo, hi);
    });
    parallel_phase(sched, 10, [&](int lo, int hi) {
      phase_velocity(u_, v_, p_, lo, hi);
    });
    parallel_phase(sched, 10, [&](int lo, int hi) {
      phase_viscosity(q_, u_, v_, r_, lo, hi);
    });
    Grid rn = r_;
    parallel_phase(sched, 10, [&](int lo, int hi) {
      phase_density(rn, r_, u_, v_, lo, hi);
    });
    r_.swap(rn);
    parallel_phase(sched, 10, [&](int lo, int hi) {
      phase_energy(e_, p_, u_, v_, r_, lo, hi);
    });
    for (int sweep = 0; sweep < 2; sweep++) {
      parallel_phase(sched, 8, [&](int lo, int hi) {
        phase_conduct(e_, 0, lo, hi);
      });
      parallel_phase(sched, 8, [&](int lo, int hi) {
        phase_conduct(e_, 1, lo, hi);
      });
    }
    // Sequential time-step control on the root thread.
    (void)phase_dt(u_, v_);
    plat.work(n_ * n_ * 3.0);
  }

  int n_;
  int steps_;
  Grid u_, v_, r_, e_, p_, q_;
  Grid ref_e_, ref_r_;
};

}  // namespace

std::unique_ptr<Workload> make_simple(int grid, int steps) {
  return std::make_unique<SimpleHydro>(grid, steps);
}

}  // namespace mp::workloads
