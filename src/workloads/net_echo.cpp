// net_echo: a CML-backed network echo server plus loopback load generator,
// the proof workload for the src/io reactor.  Every connection is served by
// MLthreads speaking CML: a socket thread frames bytes off the stream and a
// separate echo worker processes each request, the two joined by a pair of
// rendezvous channels — so each roundtrip exercises stream parking, channel
// commitment and the scheduler together.  The transport is either virtual
// pipes (default: runs on every backend, including the simulator,
// deterministically) or real loopback TCP through the reactor (native).
//
// Verification is exact: payloads are deterministic per (connection,
// roundtrip), clients check each echo byte-for-byte, and both sides
// accumulate an order-independent digest that must match the sequentially
// computed expectation.

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <vector>

#include "arch/panic.h"
#include "cml/cml.h"
#include "io/io_event.h"
#include "io/stream.h"
#include "workloads/workload.h"

namespace mp::workloads {

namespace {

// One framed message: 4-byte little-endian length, then payload.  Frames
// cross the req/rep channels as raw pointers (CML payloads are 8-byte
// scalars); ownership walks the ring socket -> worker -> socket.
struct Frame {
  std::vector<unsigned char> data;
};

std::uint64_t fnv(const std::vector<unsigned char>& bytes) {
  std::uint64_t acc = 1469598103934665603ull;
  for (const unsigned char b : bytes) {
    acc = (acc ^ b) * 1099511628211ull;
  }
  return acc;
}

void fill_payload(std::vector<unsigned char>& out, int conn, int round) {
  std::uint32_t x = static_cast<std::uint32_t>(conn) * 2654435761u +
                    static_cast<std::uint32_t>(round) * 40503u + 1u;
  for (auto& b : out) {
    x ^= x << 13;
    x ^= x >> 17;
    x ^= x << 5;
    b = static_cast<unsigned char>(x);
  }
}

void write_frame(io::Stream& s, const std::vector<unsigned char>& payload) {
  // One coalesced write: a split header/payload pair would cross the wire
  // as two segments and serialize on peer ACKs for small frames.
  const auto len = static_cast<std::uint32_t>(payload.size());
  std::vector<unsigned char> frame(4 + payload.size());
  frame[0] = static_cast<unsigned char>(len);
  frame[1] = static_cast<unsigned char>(len >> 8);
  frame[2] = static_cast<unsigned char>(len >> 16);
  frame[3] = static_cast<unsigned char>(len >> 24);
  std::copy(payload.begin(), payload.end(), frame.begin() + 4);
  s.write_all(frame.data(), frame.size());
}

void read_frame(io::Stream& s, std::vector<unsigned char>& payload) {
  unsigned char hdr[4];
  s.read_exact(hdr, sizeof(hdr));
  const std::uint32_t len = static_cast<std::uint32_t>(hdr[0]) |
                            static_cast<std::uint32_t>(hdr[1]) << 8 |
                            static_cast<std::uint32_t>(hdr[2]) << 16 |
                            static_cast<std::uint32_t>(hdr[3]) << 24;
  payload.resize(len);
  if (len > 0) s.read_exact(payload.data(), len);
}

class NetEcho final : public Workload {
 public:
  explicit NetEcho(NetEchoOptions opts) : opts_(opts) {
    MPNJ_CHECK(opts_.connections > 0 && opts_.roundtrips > 0 &&
                   opts_.payload_bytes > 0,
               "net_echo needs positive connections/roundtrips/payload");
    // Sequential expectation of both digests.
    std::vector<unsigned char> payload(
        static_cast<std::size_t>(opts_.payload_bytes));
    for (int c = 0; c < opts_.connections; c++) {
      for (int r = 0; r < opts_.roundtrips; r++) {
        fill_payload(payload, c, r);
        expected_sum_ += fnv(payload);
      }
    }
  }

  const char* name() const override { return "net_echo"; }

  void run(threads::Scheduler& sched, int tasks) override {
    (void)tasks;  // parallelism comes from the connection count
    roundtrips_ = 0;
    mismatches_ = 0;
    client_sum_ = 0;
    server_sum_ = 0;

    std::unique_ptr<io::Reactor> reactor;
    io::Listener listener;
    if (opts_.tcp) {
      reactor = std::make_unique<io::Reactor>(sched);
      listener = io::Listener::tcp(*reactor, 0,
                                   std::max(opts_.connections, 128));
    }

    threads::CountdownLatch clients_done(sched, opts_.connections);
    // Socket threads signal here after their final write and close, so the
    // reactor is torn down only once no thread can touch it.
    threads::CountdownLatch servers_done(sched, opts_.connections);

    if (opts_.tcp) {
      // One acceptor: each accepted connection gets its own server pair.
      sched.fork([&] {
        for (int c = 0; c < opts_.connections; c++) {
          io::Stream s = listener.accept();
          spawn_server(sched, io::Duplex{s, s}, servers_done);
        }
      });
    }

    for (int c = 0; c < opts_.connections; c++) {
      io::Duplex client_end;
      if (!opts_.tcp) {
        auto [client, server] = io::duplex_pipe(
            sched, static_cast<std::size_t>(opts_.payload_bytes) + 64);
        client_end = client;
        spawn_server(sched, server, servers_done);
      }
      sched.fork([this, &sched, &reactor, &listener, &clients_done,
                  client_end, c]() mutable {
        io::Duplex conn = client_end;
        if (opts_.tcp) {
          io::Stream s = io::Stream::connect_tcp(*reactor, listener.port());
          conn = io::Duplex{s, s};
        }
        client_loop(conn, c);
        clients_done.count_down();
      });
    }

    clients_done.await();
    servers_done.await();
    if (opts_.tcp) {
      listener.close();
      reactor.reset();
    }
  }

  bool verify() const override {
    return roundtrips_.load() ==
               static_cast<std::uint64_t>(opts_.connections) *
                   static_cast<std::uint64_t>(opts_.roundtrips) &&
           mismatches_.load() == 0 && client_sum_.load() == expected_sum_ &&
           server_sum_.load() == expected_sum_;
  }

  std::uint64_t checksum() const override { return client_sum_.load(); }

 private:
  // Per connection: a socket thread framing the stream and an echo worker,
  // joined by req/rep rendezvous channels (Frame* as the payload).
  void spawn_server(threads::Scheduler& sched, io::Duplex conn,
                    threads::CountdownLatch& done) {
    auto req = std::make_shared<cml::Channel<std::uint64_t>>(sched);
    auto rep = std::make_shared<cml::Channel<std::uint64_t>>(sched);
    sched.fork([this, req, rep] {  // echo worker
      for (;;) {
        auto* f = reinterpret_cast<Frame*>(req->recv());
        const bool last = f->data.empty();
        if (!last) server_sum_.fetch_add(fnv(f->data));
        rep->send(reinterpret_cast<std::uint64_t>(f));
        if (last) return;
      }
    });
    sched.fork([conn, req, rep, &done]() mutable {  // socket thread
      for (;;) {
        auto* f = new Frame;
        io::Stream in = conn.in;
        read_frame(in, f->data);
        req->send(reinterpret_cast<std::uint64_t>(f));
        auto* r = reinterpret_cast<Frame*>(rep->recv());
        io::Stream out = conn.out;
        write_frame(out, r->data);
        const bool last = r->data.empty();
        delete r;
        if (last) break;
      }
      conn.close();
      done.count_down();
    });
  }

  void client_loop(io::Duplex conn, int c) {
    std::vector<unsigned char> payload(
        static_cast<std::size_t>(opts_.payload_bytes));
    std::vector<unsigned char> reply;
    for (int r = 0; r < opts_.roundtrips; r++) {
      fill_payload(payload, c, r);
      write_frame(conn.out, payload);
      read_frame(conn.in, reply);
      if (reply != payload) {
        mismatches_.fetch_add(1);
      } else {
        client_sum_.fetch_add(fnv(payload));
      }
      roundtrips_.fetch_add(1);
    }
    // Zero-length frame: shut the connection down cleanly.
    payload.clear();
    write_frame(conn.out, payload);
    read_frame(conn.in, reply);
    if (!reply.empty()) mismatches_.fetch_add(1);
    conn.close();
  }

  NetEchoOptions opts_;
  std::uint64_t expected_sum_ = 0;
  std::atomic<std::uint64_t> roundtrips_{0};
  std::atomic<std::uint64_t> mismatches_{0};
  std::atomic<std::uint64_t> client_sum_{0};
  std::atomic<std::uint64_t> server_sum_{0};
};

}  // namespace

std::unique_ptr<Workload> make_net_echo(NetEchoOptions opts) {
  return std::make_unique<NetEcho>(opts);
}

}  // namespace mp::workloads
