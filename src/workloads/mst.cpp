// mst: minimum spanning tree of 200 random points with Prim's algorithm
// (paper section 6).  Coordinates are reals, so every distance computation
// costs 80387-era floating point time and allocates a boxed result — the
// SML/NJ behaviour that gives this tiny benchmark measurable work.
//
// Structure: a fixed crew of worker threads (at most 8 — the problem does
// not decompose further) lives for the whole run; every Prim iteration each
// worker relaxes and scans its slice, then synchronizes with the
// coordinating root through a single-writer flag barrier (each flag has one
// writer, so plain shared-memory reads and writes suffice — the kind of
// synchronization section 3.3 expects clients to build from refs).  The
// per-iteration barriers and the sequential combine are what keep this
// benchmark's speedup low in the paper.

#include <cmath>
#include <vector>

#include "arch/cacheline.h"
#include "arch/rng.h"
#include "gc/heap.h"
#include "workloads/workload.h"

namespace mp::workloads {

namespace {

using gc::Value;

constexpr int kMaxCrew = 8;
constexpr double kDistInstr = 40.0;  // ~5 FP ops on a 16 MHz 80387
constexpr double kScanInstr = 6.0;

class Mst final : public Workload {
 public:
  Mst(int n, std::uint64_t seed) : n_(n) {
    arch::Rng rng(seed);
    px_.resize(static_cast<std::size_t>(n_));
    py_.resize(static_cast<std::size_t>(n_));
    for (int i = 0; i < n_; i++) {
      px_[static_cast<std::size_t>(i)] = static_cast<double>(rng.below(10000));
      py_[static_cast<std::size_t>(i)] = static_cast<double>(rng.below(10000));
    }
    ref_weight_ = reference_prim();
  }

  const char* name() const override { return "mst"; }

  void run(threads::Scheduler& sched, int tasks) override {
    Platform& p = sched.platform();
    // Crew sizing: the coordinating root thread works on slice 0 itself and
    // each additional crew member needs its own proc; a crew larger than
    // the machine would spin against itself.
    const int crew = std::max(1, std::min({kMaxCrew, tasks, p.max_procs()}));
    if (crew <= 1) {
      run_sequential(sched);
      return;
    }

    mind_.assign(static_cast<std::size_t>(n_), 0.0);
    visited_.assign(static_cast<std::size_t>(n_), 0);
    visited_[0] = 1;
    for (int j = 0; j < n_; j++) {
      mind_[static_cast<std::size_t>(j)] = dist2(sched, 0, j);
    }
    weight_ = 0;

    // Flag barrier state: single writer per slot.
    std::vector<arch::CachePadded<std::atomic<long>>> done(
        static_cast<std::size_t>(crew));
    std::vector<arch::CachePadded<std::pair<double, int>>> local(
        static_cast<std::size_t>(crew));
    std::atomic<long> round{0};
    std::atomic<int> chosen{-1};

    auto spin_until = [&](const std::function<bool()>& cond) {
      while (!cond()) p.work(4);  // shared-memory polling
    };

    // One Prim iteration's sweep over a crew member's slice: relax against
    // the newest tree node and find the slice minimum in the same pass.
    auto sweep_slice = [&](int w, int iter) {
      const Range range = task_range(n_, crew, w);
      const int u = chosen.load(std::memory_order_acquire);
      double best = 0;
      int best_j = -1;
      for (int j = range.lo; j < range.hi; j++) {
        if (visited_[static_cast<std::size_t>(j)]) continue;
        if (u >= 0) {
          const double d = dist2(sched, u, j);
          if (d < mind_[static_cast<std::size_t>(j)]) {
            mind_[static_cast<std::size_t>(j)] = d;
          }
        }
        const double m = mind_[static_cast<std::size_t>(j)];
        if (best_j < 0 || m < best) {
          best = m;
          best_j = j;
        }
      }
      p.work((range.hi - range.lo) * kScanInstr);
      *local[static_cast<std::size_t>(w)] = {best, best_j};
      done[static_cast<std::size_t>(w)]->store(iter, std::memory_order_release);
    };

    threads::CountdownLatch latch(sched, crew - 1);
    for (int w = 1; w < crew; w++) {
      sched.fork([&, w] {
        for (int iter = 1; iter < n_; iter++) {
          // Wait for the coordinator to publish this round's tree node.
          spin_until([&] { return round.load(std::memory_order_acquire) >= iter; });
          sweep_slice(w, iter);
        }
        latch.count_down();
      });
    }

    // Coordinator (this thread): sweep slice 0, combine, pick, publish.
    int u = -1;
    for (int iter = 1; iter < n_; iter++) {
      chosen.store(u, std::memory_order_release);
      round.store(iter, std::memory_order_release);
      sweep_slice(0, iter);
      spin_until([&] {
        for (int w = 1; w < crew; w++) {
          if (done[static_cast<std::size_t>(w)]->load(std::memory_order_acquire) < iter) {
            return false;
          }
        }
        return true;
      });
      // Sequential combine: a serial section every iteration.
      double best = 0;
      int next = -1;
      for (int w = 0; w < crew; w++) {
        const auto [d, j] = *local[static_cast<std::size_t>(w)];
        if (j >= 0 && (next < 0 || d < best)) {
          best = d;
          next = j;
        }
      }
      p.work(crew * 6.0);
      visited_[static_cast<std::size_t>(next)] = 1;
      weight_ += best;
      u = next;
    }
    latch.await();
  }

  bool verify() const override {
    return std::fabs(weight_ - ref_weight_) < 1e-6 * ref_weight_;
  }

  std::uint64_t checksum() const override {
    return static_cast<std::uint64_t>(weight_);
  }

 private:
  // Squared Euclidean distance, charged as boxed-real arithmetic.
  double dist2(threads::Scheduler& sched, int a, int b) {
    Platform& p = sched.platform();
    const double dx = px_[static_cast<std::size_t>(a)] - px_[static_cast<std::size_t>(b)];
    const double dy = py_[static_cast<std::size_t>(a)] - py_[static_cast<std::size_t>(b)];
    p.work(kDistInstr);
    p.heap().alloc_record({Value::from_int(a), Value::from_int(b)});  // boxed result
    return dx * dx + dy * dy;
  }
  double dist2_plain(int a, int b) const {
    const double dx = px_[static_cast<std::size_t>(a)] - px_[static_cast<std::size_t>(b)];
    const double dy = py_[static_cast<std::size_t>(a)] - py_[static_cast<std::size_t>(b)];
    return dx * dx + dy * dy;
  }

  void run_sequential(threads::Scheduler& sched) {
    Platform& p = sched.platform();
    std::vector<double> mind(static_cast<std::size_t>(n_));
    std::vector<char> visited(static_cast<std::size_t>(n_), 0);
    visited[0] = 1;
    for (int j = 0; j < n_; j++) mind[static_cast<std::size_t>(j)] = dist2(sched, 0, j);
    weight_ = 0;
    int u = -1;
    for (int iter = 1; iter < n_; iter++) {
      double best = 0;
      int next = -1;
      for (int j = 0; j < n_; j++) {
        if (visited[static_cast<std::size_t>(j)]) continue;
        if (u >= 0) {
          const double d = dist2(sched, u, j);
          if (d < mind[static_cast<std::size_t>(j)]) mind[static_cast<std::size_t>(j)] = d;
        }
        if (next < 0 || mind[static_cast<std::size_t>(j)] < best) {
          best = mind[static_cast<std::size_t>(j)];
          next = j;
        }
      }
      p.work(n_ * kScanInstr);
      visited[static_cast<std::size_t>(next)] = 1;
      weight_ += best;
      u = next;
    }
  }

  double reference_prim() const {
    std::vector<double> mind(static_cast<std::size_t>(n_));
    std::vector<char> visited(static_cast<std::size_t>(n_), 0);
    visited[0] = 1;
    for (int j = 0; j < n_; j++) mind[static_cast<std::size_t>(j)] = dist2_plain(0, j);
    double total = 0;
    for (int iter = 1; iter < n_; iter++) {
      double best = 0;
      int u = -1;
      for (int j = 0; j < n_; j++) {
        if (visited[static_cast<std::size_t>(j)]) continue;
        if (u < 0 || mind[static_cast<std::size_t>(j)] < best) {
          best = mind[static_cast<std::size_t>(j)];
          u = j;
        }
      }
      visited[static_cast<std::size_t>(u)] = 1;
      total += best;
      for (int j = 0; j < n_; j++) {
        if (visited[static_cast<std::size_t>(j)]) continue;
        const double d = dist2_plain(u, j);
        if (d < mind[static_cast<std::size_t>(j)]) mind[static_cast<std::size_t>(j)] = d;
      }
    }
    return total;
  }

  int n_;
  std::vector<double> px_, py_;
  double ref_weight_ = 0;
  double weight_ = 0;
  std::vector<double> mind_;
  std::vector<char> visited_;
};

}  // namespace

std::unique_ptr<Workload> make_mst(int points, std::uint64_t seed) {
  return std::make_unique<Mst>(points, seed);
}

}  // namespace mp::workloads
