// abisort: bitonic sorting of 2^12 integers (paper section 6, from Mohr's
// adaptive bitonic sort benchmark).  We implement the classical bitonic
// network with fork/join recursion; DESIGN.md records the substitution for
// the tree-based *adaptive* variant — the parallel structure (recursive
// halving, synchronization at merge boundaries) and the allocation profile
// (per-merge live buffers plus per-comparison garbage) are preserved, which
// is what drives the paper's GC-limited speedup for this benchmark.

#include <algorithm>
#include <vector>

#include "arch/rng.h"
#include "gc/heap.h"
#include "workloads/workload.h"

namespace mp::workloads {

namespace {

using gc::Value;

constexpr int kForkCutoff = 256;

class Abisort final : public Workload {
 public:
  Abisort(int log2_n, std::uint64_t seed) : n_(1 << log2_n) {
    arch::Rng rng(seed);
    data_.resize(static_cast<std::size_t>(n_));
    for (int i = 0; i < n_; i++) {
      data_[static_cast<std::size_t>(i)] = static_cast<int>(rng.below(1u << 30));
    }
    ref_ = data_;
    std::sort(ref_.begin(), ref_.end());
  }

  const char* name() const override { return "abisort"; }

  void run(threads::Scheduler& sched, int tasks) override {
    (void)tasks;  // parallelism comes from the recursion itself
    a_ = data_;
    bisort(sched, 0, n_, /*up=*/true);
  }

  bool verify() const override { return a_ == ref_; }

  std::uint64_t checksum() const override {
    std::uint64_t acc = 1469598103934665603ull;
    for (const int v : a_) {
      acc = (acc ^ static_cast<std::uint64_t>(v)) * 1099511628211ull;
    }
    return acc;
  }

 private:
  void bisort(threads::Scheduler& sched, int lo, int n, bool up) {
    if (n <= 1) return;
    const int m = n / 2;
    if (n >= kForkCutoff) {
      threads::CountdownLatch latch(sched, 2);
      sched.fork([&, lo, m] {
        bisort(sched, lo, m, true);
        latch.count_down();
      });
      sched.fork([&, lo, m, n] {
        bisort(sched, lo + m, n - m, false);
        latch.count_down();
      });
      latch.await();
    } else {
      bisort(sched, lo, m, true);
      bisort(sched, lo + m, n - m, false);
    }
    bimerge(sched, lo, n, up);
  }

  void bimerge(threads::Scheduler& sched, int lo, int n, bool up) {
    if (n <= 1) return;
    Platform& p = sched.platform();
    auto& h = p.heap();
    const int m = n / 2;
    // The adaptive variant allocates a fresh tree node per merge; model it
    // with a live buffer spanning this merge's span.
    gc::Roots<1> node;
    if (n >= 32) {
      node[0] = h.alloc_array(static_cast<std::size_t>(m), Value::from_int(lo));
    }
    for (int i = lo; i < lo + m; i++) {
      int& x = a_[static_cast<std::size_t>(i)];
      int& y = a_[static_cast<std::size_t>(i + m)];
      if ((x > y) == up) std::swap(x, y);
    }
    p.work(m * 8.0);
    // Comparison-loop garbage (CPS frames): a record per couple of swaps —
    // the tree-rebuilding allocation that makes the adaptive variant
    // GC-limited in the paper's measurements.
    for (int g = 0; g < m / 2 + 1; g++) {
      h.alloc_record({Value::from_int(g), Value::from_int(lo)});
    }
    if (n >= kForkCutoff) {
      threads::CountdownLatch latch(sched, 2);
      sched.fork([&, lo, m] {
        bimerge(sched, lo, m, up);
        latch.count_down();
      });
      sched.fork([&, lo, m, n] {
        bimerge(sched, lo + m, n - m, up);
        latch.count_down();
      });
      latch.await();
    } else {
      bimerge(sched, lo, m, up);
      bimerge(sched, lo + m, n - m, up);
    }
  }

  int n_;
  std::vector<int> data_;
  std::vector<int> a_;
  std::vector<int> ref_;
};

}  // namespace

std::unique_ptr<Workload> make_abisort(int log2_n, std::uint64_t seed) {
  return std::make_unique<Abisort>(log2_n, seed);
}

}  // namespace mp::workloads
