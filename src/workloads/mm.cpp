// mm: 100x100 integer matrix multiply (paper section 6).  Embarrassingly
// parallel over row blocks; per-cell allocation is calibrated so a 16-proc
// Sequent run generates on the order of 20 MB/s of allocation bus traffic
// against the ~25 MB/s achievable bus — the paper's headline observation
// that mm's excellent self-relative speedup is limited only by main-memory
// bus contention from SML/NJ's heap allocation.

#include <vector>

#include "arch/rng.h"
#include "gc/heap.h"
#include "workloads/workload.h"

namespace mp::workloads {

namespace {

using gc::Value;

class MatMul final : public Workload {
 public:
  MatMul(int n, std::uint64_t seed) : n_(n) {
    arch::Rng rng(seed);
    const auto cells = static_cast<std::size_t>(n_) * n_;
    a_.resize(cells);
    b_.resize(cells);
    c_.assign(cells, 0);
    for (auto& x : a_) x = static_cast<long>(rng.below(100)) - 50;
    for (auto& x : b_) x = static_cast<long>(rng.below(100)) - 50;
    ref_.assign(cells, 0);
    for (int i = 0; i < n_; i++) {
      for (int k = 0; k < n_; k++) {
        const long aik = a_[static_cast<std::size_t>(i) * n_ + k];
        for (int j = 0; j < n_; j++) {
          ref_[static_cast<std::size_t>(i) * n_ + j] +=
              aik * b_[static_cast<std::size_t>(k) * n_ + j];
        }
      }
    }
  }

  const char* name() const override { return "mm"; }

  void run(threads::Scheduler& sched, int tasks) override {
    Platform& p = sched.platform();
    auto& h = p.heap();
    std::fill(c_.begin(), c_.end(), 0);
    tasks = std::max(1, std::min(tasks, n_));
    parallel_for_tasks(sched, tasks, [&](int t) {
      const Range range = task_range(n_, tasks, t);
      for (int i = range.lo; i < range.hi; i++) {
        // The result row is built fresh on the heap and stays live until
        // the end of this task.
        gc::Roots<1> row;
        row[0] = h.alloc_array(static_cast<std::size_t>(n_), Value::from_int(0));
        for (int j = 0; j < n_; j++) {
          long acc = 0;
          for (int k = 0; k < n_; k++) {
            acc += a_[static_cast<std::size_t>(i) * n_ + k] *
                   b_[static_cast<std::size_t>(k) * n_ + j];
          }
          c_[static_cast<std::size_t>(i) * n_ + j] = acc;
          h.store(row[0], static_cast<std::size_t>(j), Value::from_int(acc));
          // Inner-loop cost: n multiply-adds, plus the iteration closures
          // the ML compiler allocates (calibrated against the paper's
          // ~20 MB/s of allocation traffic at 16 procs).
          p.work(n_ * 4.0);
          h.alloc_array(46, Value::from_int(j));
        }
      }
    });
  }

  bool verify() const override { return c_ == ref_; }

  std::uint64_t checksum() const override {
    std::uint64_t acc = 1469598103934665603ull;
    for (const long v : c_) {
      acc = (acc ^ static_cast<std::uint64_t>(v)) * 1099511628211ull;
    }
    return acc;
  }

 private:
  int n_;
  std::vector<long> a_, b_, c_, ref_;
};

}  // namespace

std::unique_ptr<Workload> make_mm(int n, std::uint64_t seed) {
  return std::make_unique<MatMul>(n, seed);
}

}  // namespace mp::workloads
