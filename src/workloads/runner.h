#pragma once

#include <string>
#include <vector>

#include "mp/sim_platform.h"
#include "workloads/workload.h"

// Harness that runs a workload on the simulated multiprocessor under the
// paper's evaluated thread-package configuration (distributed run queue,
// signal-based preemption, procs acquired at startup and held) and returns
// the measurements the benchmark binaries print.

namespace mp::workloads {

struct SimRunSpec {
  std::string workload = "mm";
  sim::MachineModel machine = sim::sequent_s81(16);
  std::size_t nursery_bytes = 2u << 20;
  std::size_t old_bytes = 64u << 20;  // must be a power of two (HeapConfig)
  // Model every stopped proc as a parallel-GC copying worker (the
  // gc::ParallelCopier protocol); false reproduces the paper's sequential
  // collector.
  bool parallel_gc = false;
  // Signal-based preemption quantum (a 1990s Unix scheduling tick).
  double preempt_interval_us = 20000;
  bool hold_procs = true;
  // Queue discipline (the paper-faithful harness default is the evaluated
  // distributed lock-per-proc configuration; the scheduler's own default is
  // "ws").  Accepted: ws|ws-lifo|distributed|central-fifo|central-lifo|
  // central-random (plus the bare fifo|lifo|random aliases).
  std::string queue = "distributed";
  double lock_backoff_us = 0;
  // T5 ablation: make collections free of virtual time ("if garbage
  // collection time were omitted", section 6).
  bool free_gc = false;
  int tasks = 0;  // parallelism hint; 0 = one task per proc
};

struct SimRunResult {
  std::string workload;
  int procs = 0;
  bool verified = false;
  std::uint64_t checksum = 0;
  SimReport report;
};

std::unique_ptr<threads::ReadyQueue> make_queue(const std::string& name);

SimRunResult run_sim(const SimRunSpec& spec);

// The same spec swept over proc counts (machine.num_procs is replaced).
std::vector<SimRunResult> sweep_procs(SimRunSpec spec,
                                      const std::vector<int>& proc_counts);

// Self-relative speedup of entry `i` of a sweep whose first entry is the
// 1-proc run.  For `seq` the p-proc run does p copies of the 1-proc work,
// so speedup is p * T(1) / T(p).
double self_relative_speedup(const std::vector<SimRunResult>& sweep,
                             std::size_t i);

}  // namespace mp::workloads
