#include "workloads/runner.h"

#include "arch/panic.h"
#include "threads/scheduler.h"

namespace mp::workloads {

std::unique_ptr<threads::ReadyQueue> make_queue(const std::string& name) {
  if (name == "ws" || name == "work-stealing") {
    return std::make_unique<threads::WorkStealingQueue>();
  }
  if (name == "ws-lifo") {
    return std::make_unique<threads::WorkStealingQueue>(
        threads::WorkStealingQueue::OwnerOrder::kLifo);
  }
  if (name == "distributed") return std::make_unique<threads::DistributedQueue>();
  if (name == "fifo" || name == "central-fifo") {
    return std::make_unique<threads::CentralFifoQueue>();
  }
  if (name == "lifo" || name == "central-lifo") {
    return std::make_unique<threads::CentralLifoQueue>();
  }
  if (name == "random" || name == "central-random") {
    return std::make_unique<threads::RandomQueue>();
  }
  arch::panic("unknown queue discipline '%s'", name.c_str());
}

SimRunResult run_sim(const SimRunSpec& spec) {
  SimPlatformConfig cfg;
  cfg.machine = spec.machine;
  if (spec.free_gc) {
    cfg.machine.gc_instr_per_word = 0;
    cfg.machine.gc_bus_bytes_per_word = 0;
    cfg.machine.gc_sync_us = 0;
  }
  cfg.heap.nursery_bytes = spec.nursery_bytes;
  cfg.heap.old_bytes = spec.old_bytes;
  cfg.heap.parallel_gc = spec.parallel_gc;
  cfg.lock_backoff_base_us = spec.lock_backoff_us;
  SimPlatform platform(cfg);

  auto workload = make_workload(spec.workload, spec.machine.num_procs);
  const int tasks = spec.tasks > 0 ? spec.tasks : spec.machine.num_procs;

  threads::SchedulerConfig sched_cfg;
  sched_cfg.queue = make_queue(spec.queue);
  sched_cfg.hold_procs = spec.hold_procs;
  sched_cfg.preempt_interval_us = spec.preempt_interval_us;

  threads::Scheduler::run(platform, std::move(sched_cfg),
                          [&](threads::Scheduler& sched) {
                            workload->run(sched, tasks);
                          });

  SimRunResult result;
  result.workload = spec.workload;
  result.procs = spec.machine.num_procs;
  result.verified = workload->verify();
  result.checksum = workload->checksum();
  result.report = platform.report();
  return result;
}

std::vector<SimRunResult> sweep_procs(SimRunSpec spec,
                                      const std::vector<int>& proc_counts) {
  std::vector<SimRunResult> out;
  out.reserve(proc_counts.size());
  for (const int p : proc_counts) {
    spec.machine.num_procs = p;
    out.push_back(run_sim(spec));
  }
  return out;
}

double self_relative_speedup(const std::vector<SimRunResult>& sweep,
                             std::size_t i) {
  const double t1 = sweep.front().report.total_us;
  const double tp = sweep[i].report.total_us;
  if (tp <= 0) return 0;
  double s = t1 / tp;
  if (sweep[i].workload == "seq") s *= sweep[i].procs;
  return s;
}

}  // namespace mp::workloads
