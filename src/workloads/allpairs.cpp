// allpairs: Floyd's algorithm for all shortest paths on a 75-node graph
// (paper section 6, adapted from Eric Mohr's Scheme original).  Parallel
// over rows within each k-iteration, with a join between iterations; each
// updated row is allocated fresh on the GC heap and stays live for the
// iteration — the functional-update allocation profile that makes this
// benchmark's speedup GC-limited in the paper.

#include <limits>
#include <vector>

#include "arch/rng.h"
#include "gc/heap.h"
#include "workloads/workload.h"

namespace mp::workloads {

namespace {

using gc::Value;

constexpr int kInf = std::numeric_limits<int>::max() / 4;

class Allpairs final : public Workload {
 public:
  Allpairs(int n, std::uint64_t seed) : n_(n) {
    arch::Rng rng(seed);
    adj_.assign(static_cast<std::size_t>(n_) * n_, kInf);
    for (int i = 0; i < n_; i++) at(adj_, i, i) = 0;
    // Random spanning path keeps the graph connected, plus random extras.
    for (int i = 1; i < n_; i++) {
      const int w = static_cast<int>(rng.below(100)) + 1;
      at(adj_, i - 1, i) = std::min(at(adj_, i - 1, i), w);
      at(adj_, i, i - 1) = std::min(at(adj_, i, i - 1), w);
    }
    const int extra = n_ * (n_ - 1) / 6;
    for (int e = 0; e < extra; e++) {
      const int i = static_cast<int>(rng.below(static_cast<std::uint64_t>(n_)));
      const int j = static_cast<int>(rng.below(static_cast<std::uint64_t>(n_)));
      if (i == j) continue;
      const int w = static_cast<int>(rng.below(100)) + 1;
      at(adj_, i, j) = std::min(at(adj_, i, j), w);
      at(adj_, j, i) = std::min(at(adj_, j, i), w);
    }
    // Sequential reference.
    ref_ = adj_;
    for (int k = 0; k < n_; k++) {
      for (int i = 0; i < n_; i++) {
        const int dik = at(ref_, i, k);
        if (dik >= kInf) continue;
        for (int j = 0; j < n_; j++) {
          const int cand = dik + at(ref_, k, j);
          if (cand < at(ref_, i, j)) at(ref_, i, j) = cand;
        }
      }
    }
  }

  const char* name() const override { return "allpairs"; }

  void run(threads::Scheduler& sched, int tasks) override {
    dist_ = adj_;
    Platform& p = sched.platform();
    auto& h = p.heap();
    tasks = std::max(1, std::min(tasks, n_));
    for (int k = 0; k < n_; k++) {
      parallel_for_tasks(sched, tasks, [&, k](int t) {
        const Range range = task_range(n_, tasks, t);
        // Fresh rows stay live until the end of this k-iteration.
        std::vector<gc::GlobalRoot> live_rows;
        live_rows.reserve(static_cast<std::size_t>(range.hi - range.lo));
        for (int i = range.lo; i < range.hi; i++) {
          const int dik = at(dist_, i, k);
          gc::Roots<1> row;
          row[0] = h.alloc_array(static_cast<std::size_t>(n_),
                                 Value::from_int(0));
          for (int j = 0; j < n_; j++) {
            int v = at(dist_, i, j);
            if (dik < kInf) {
              const int cand = dik + at(dist_, k, j);
              // Store only on improvement: row k never improves during
              // iteration k (d[k][k] = 0), so the rows other tasks are
              // reading are never written.
              if (cand < v) {
                v = cand;
                at(dist_, i, j) = v;
              }
            }
            h.store(row[0], static_cast<std::size_t>(j), Value::from_int(v));
          }
          p.work(n_ * 6.0);  // min/add per element
          // Iteration closures: the CPS-compiled inner loop allocates
          // frames as it goes (one small record per couple of elements).
          for (int g = 0; g < n_; g++) {
            h.alloc_record({Value::from_int(g), Value::from_int(i)});
          }
          live_rows.emplace_back(h, row[0]);
        }
      });
    }
  }

  bool verify() const override { return dist_ == ref_; }

  std::uint64_t checksum() const override {
    std::uint64_t acc = 1469598103934665603ull;
    for (const int v : dist_) {
      acc = (acc ^ static_cast<std::uint64_t>(v)) * 1099511628211ull;
    }
    return acc;
  }

 private:
  int& at(std::vector<int>& m, int i, int j) const {
    return m[static_cast<std::size_t>(i) * n_ + j];
  }
  int at(const std::vector<int>& m, int i, int j) const {
    return m[static_cast<std::size_t>(i) * n_ + j];
  }

  int n_;
  std::vector<int> adj_;
  std::vector<int> dist_;
  std::vector<int> ref_;
};

}  // namespace

std::unique_ptr<Workload> make_allpairs(int nodes, std::uint64_t seed) {
  return std::make_unique<Allpairs>(nodes, seed);
}

}  // namespace mp::workloads
