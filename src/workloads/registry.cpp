#include "arch/panic.h"
#include "workloads/workload.h"

namespace mp::workloads {

std::unique_ptr<Workload> make_workload(const std::string& name, int procs) {
  if (name == "allpairs") return make_allpairs();
  if (name == "mst") return make_mst();
  if (name == "abisort") return make_abisort();
  if (name == "simple") return make_simple();
  if (name == "mm") return make_mm();
  if (name == "seq") return make_seq(procs);
  if (name == "net_echo") return make_net_echo();
  if (name == "kv") {
    KvWorkloadOptions opts;
    opts.shards = procs;
    return make_kv(opts);
  }
  arch::panic("unknown workload '%s'", name.c_str());
}

std::vector<std::string> workload_names() {
  return {"allpairs", "mst",     "abisort", "simple",
          "mm",       "seq",     "net_echo", "kv"};
}

}  // namespace mp::workloads
