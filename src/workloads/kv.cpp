// kv: the sharded KV service (src/kv) under a pipelined mixed-op load —
// the proof workload for ownership-routed shards.  The service side is the
// real thing: KvService shard threads plus the serve() connection layer,
// over virtual pipes (every backend, deterministic in the simulator) or
// loopback TCP through the reactor (native/uni).
//
// Verification is exact despite full pipelining: each connection owns a
// disjoint key prefix, so a private std::map replayed at queue time predicts
// every reply byte-for-byte (per-connection program order holds because
// submit() is a rendezvous — it returns only once the owning shard has
// dequeued the request).  Both the expected and actual digests are
// independent of shard count, proc count, and schedule, which is what the
// cross-backend determinism checks key on.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "arch/panic.h"
#include "io/stream.h"
#include "kv/client.h"
#include "kv/server.h"
#include "kv/service.h"
#include "workloads/workload.h"

namespace mp::workloads {

namespace {

using kv::Reply;

std::uint64_t fnv(std::string_view s) {
  std::uint64_t acc = 1469598103934665603ull;
  for (const char c : s) {
    acc = (acc ^ static_cast<unsigned char>(c)) * 1099511628211ull;
  }
  return acc;
}

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t xorshift(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

// One scripted client operation, fully determined by (seed, conn, opnum).
struct OpSpec {
  kv::Op kind;
  std::string key;    // point-op key / RANGE lower bound
  std::string value;  // SET payload
  std::string hi;     // RANGE upper bound
  long limit = -1;
};

std::string key_name(int conn, int idx) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "c%03d:k%04d", conn, idx);
  return buf;
}

// Generates and replays one connection's script against a sequential model,
// invoking fn(spec, expected_encoded_reply) per op.  Used twice with the
// same inputs: by the constructor to precompute the expected digest and by
// the live clients to know what each reply must be.
template <typename Fn>
void replay_script(const KvWorkloadOptions& opts, int conn, Fn&& fn) {
  std::uint64_t rng = mix64(opts.seed ^ (0x9e3779b97f4a7c15ull +
                                         static_cast<std::uint64_t>(conn)));
  std::map<std::string, std::string> model;
  std::string value(static_cast<std::size_t>(opts.value_bytes), 'x');
  for (int i = 0; i < opts.ops; i++) {
    const std::uint64_t r = xorshift(rng);
    OpSpec spec;
    std::string expect;
    const int idx = static_cast<int>((r >> 32) %
                                     static_cast<std::uint64_t>(opts.keys));
    spec.key = key_name(conn, idx);
    const auto pick = r % 100;
    if (pick < 45) {
      spec.kind = kv::Op::kSet;
      for (auto& ch : value) {
        ch = static_cast<char>('a' + (xorshift(rng) % 26));
      }
      spec.value = value;
      model[spec.key] = value;
      kv::encode_ok(&expect);
    } else if (pick < 80) {
      spec.kind = kv::Op::kGet;
      const auto it = model.find(spec.key);
      if (it != model.end()) {
        kv::encode_bulk(&expect, it->second);
      } else {
        kv::encode_nil(&expect);
      }
    } else if (pick < 90) {
      spec.kind = kv::Op::kDel;
      kv::encode_int(&expect,
                     static_cast<long>(model.erase(spec.key)));
    } else {
      spec.kind = kv::Op::kRange;
      const int jdx = static_cast<int>((r >> 16) %
                                       static_cast<std::uint64_t>(opts.keys));
      spec.key = key_name(conn, std::min(idx, jdx));
      spec.hi = key_name(conn, std::max(idx, jdx));
      spec.limit = (r >> 8) % 4 == 0
                       ? static_cast<long>(std::max(opts.keys / 4, 1))
                       : -1;
      std::string body;
      std::size_t items = 0;
      for (auto it = model.lower_bound(spec.key);
           it != model.end() && it->first <= spec.hi; ++it) {
        if (spec.limit >= 0 &&
            items / 2 >= static_cast<std::size_t>(spec.limit)) {
          break;
        }
        kv::encode_bulk(&body, it->first);
        kv::encode_bulk(&body, it->second);
        items += 2;
      }
      kv::encode_array_header(&expect, items);
      expect += body;
    }
    fn(spec, expect);
  }
}

// Canonical re-encoding of a parsed reply, for byte comparison against the
// model's expectation (same encoders on both sides).
std::string reencode(const Reply& rep) {
  std::string out;
  switch (rep.kind) {
    case Reply::Kind::kSimple:
      out = "+" + rep.text + "\r\n";
      break;
    case Reply::Kind::kError:
      out = "-ERR " + rep.text + "\r\n";
      break;
    case Reply::Kind::kInt:
      kv::encode_int(&out, rep.ival);
      break;
    case Reply::Kind::kBulk:
      kv::encode_bulk(&out, rep.text);
      break;
    case Reply::Kind::kNil:
      kv::encode_nil(&out);
      break;
    case Reply::Kind::kArray:
      kv::encode_array_header(&out, rep.items.size());
      for (const std::string& item : rep.items) kv::encode_bulk(&out, item);
      break;
  }
  return out;
}

class KvWorkload final : public Workload {
 public:
  explicit KvWorkload(KvWorkloadOptions opts) : opts_(opts) {
    MPNJ_CHECK(opts_.connections > 0 && opts_.ops > 0 && opts_.window > 0 &&
                   opts_.keys > 0 && opts_.value_bytes > 0,
               "kv workload needs positive connections/ops/window/keys/bytes");
    for (int c = 0; c < opts_.connections; c++) {
      replay_script(opts_, c, [this](const OpSpec&, const std::string& e) {
        expected_sum_ += fnv(e);
      });
    }
  }

  const char* name() const override { return "kv"; }

  void run(threads::Scheduler& sched, int tasks) override {
    (void)tasks;  // parallelism comes from the shard + connection counts
    ops_done_ = 0;
    mismatches_ = 0;
    client_sum_ = 0;

    kv::KvConfig cfg;
    cfg.shards = opts_.shards;
    cfg.seed = opts_.seed;
    kv::KvService svc(sched, cfg);
    svc.start();

    std::unique_ptr<io::Reactor> reactor;
    io::Listener listener;
    if (opts_.tcp) {
      reactor = std::make_unique<io::Reactor>(sched);
      listener = io::Listener::tcp(*reactor, 0,
                                   std::max(opts_.connections, 128));
    }

    threads::CountdownLatch clients_done(sched, opts_.connections);
    threads::CountdownLatch servers_done(sched, opts_.connections);

    if (opts_.tcp) {
      sched.fork([&] {
        for (int c = 0; c < opts_.connections; c++) {
          io::Stream s = listener.accept();
          sched.fork([&svc, &servers_done, s]() mutable {
            kv::serve(svc, io::Duplex{s, s});
            servers_done.count_down();
          });
        }
      });
    }

    for (int c = 0; c < opts_.connections; c++) {
      io::Duplex client_end;
      if (!opts_.tcp) {
        auto [client, server] = io::duplex_pipe(sched, 4096);
        client_end = client;
        sched.fork([&svc, &servers_done, server]() mutable {
          kv::serve(svc, server);
          servers_done.count_down();
        });
      }
      sched.fork([this, &sched, &reactor, &listener, &clients_done,
                  client_end, c]() mutable {
        io::Duplex conn = client_end;
        if (opts_.tcp) {
          io::Stream s = io::Stream::connect_tcp(*reactor, listener.port());
          conn = io::Duplex{s, s};
        }
        client_loop(conn, c);
        clients_done.count_down();
      });
    }

    clients_done.await();
    servers_done.await();
    svc.stop();
    if (opts_.tcp) {
      listener.close();
      reactor.reset();
    }
  }

  bool verify() const override {
    return ops_done_.load() == static_cast<std::uint64_t>(opts_.connections) *
                                   static_cast<std::uint64_t>(opts_.ops) &&
           mismatches_.load() == 0 && client_sum_.load() == expected_sum_;
  }

  std::uint64_t checksum() const override { return client_sum_.load(); }

 private:
  void client_loop(io::Duplex conn, int c) {
    kv::KvClient cli(conn);
    if (!cli.ping()) mismatches_.fetch_add(1);

    // Windowed pipelining: queue up to `window` scripted requests, push the
    // whole batch in one write, then drain and check the matching replies.
    std::uint64_t local_sum = 0;
    std::uint64_t local_mismatch = 0;
    std::uint64_t local_done = 0;
    std::deque<std::string> expected;
    auto drain = [&] {
      while (!expected.empty()) {
        const Reply rep = cli.recv_reply();
        if (reencode(rep) == expected.front()) {
          local_sum += fnv(expected.front());
        } else {
          local_mismatch++;
        }
        expected.pop_front();
        local_done++;
      }
    };
    replay_script(opts_, c, [&](const OpSpec& spec, const std::string& e) {
      switch (spec.kind) {
        case kv::Op::kSet:
          cli.queue_set(spec.key, spec.value);
          break;
        case kv::Op::kGet:
          cli.queue_get(spec.key);
          break;
        case kv::Op::kDel:
          cli.queue_del(spec.key);
          break;
        default:
          cli.queue_range(spec.key, spec.hi, spec.limit);
          break;
      }
      expected.push_back(e);
      if (expected.size() >= static_cast<std::size_t>(opts_.window)) {
        cli.flush();
        drain();
      }
    });
    cli.flush();
    drain();

    // STATS is exercised but excluded from the digest (its body depends on
    // live cross-connection state).
    if (cli.stats().empty()) local_mismatch++;
    cli.quit();

    ops_done_.fetch_add(local_done);
    mismatches_.fetch_add(local_mismatch);
    client_sum_.fetch_add(local_sum);
  }

  KvWorkloadOptions opts_;
  std::uint64_t expected_sum_ = 0;
  std::atomic<std::uint64_t> ops_done_{0};
  std::atomic<std::uint64_t> mismatches_{0};
  std::atomic<std::uint64_t> client_sum_{0};
};

}  // namespace

std::unique_ptr<Workload> make_kv(KvWorkloadOptions opts) {
  return std::make_unique<KvWorkload>(opts);
}

}  // namespace mp::workloads
