// seq: the Figure 6 baseline — p independent copies of a simple SML/NJ
// application, one per proc, with no shared locks or synchronization.  Its
// speedup curve isolates the cost of sharing the memory bus: anything the
// real benchmarks lose beyond the seq curve is parallelism overhead, not
// hardware.

#include <vector>

#include "gc/heap.h"
#include "workloads/workload.h"

namespace mp::workloads {

namespace {

using gc::Value;

class SeqCopies final : public Workload {
 public:
  SeqCopies(int copies, long len) : copies_(copies), len_(len) {}

  const char* name() const override { return "seq"; }

  void run(threads::Scheduler& sched, int tasks) override {
    (void)tasks;
    Platform& p = sched.platform();
    auto& h = p.heap();
    sums_.assign(static_cast<std::size_t>(copies_), 0);
    parallel_for_tasks(sched, copies_, [&](int c) {
      // A list-building loop: cons-cell allocation at SML/NJ rates, with a
      // sample of cells kept live so collections copy real data.
      long sum = 0;
      std::vector<gc::GlobalRoot> live;
      live.reserve(static_cast<std::size_t>(len_ / 128 + 1));
      for (long i = 0; i < len_; i++) {
        gc::Roots<1> cell;
        cell[0] = h.alloc_record({Value::from_int(i), Value::from_int(i ^ c)});
        sum += cell[0].field(0).as_int();
        p.work(28);
        if (i % 128 == 0) live.emplace_back(h, cell[0]);
      }
      sums_[static_cast<std::size_t>(c)] = sum;
    });
  }

  bool verify() const override {
    const long expect = len_ * (len_ - 1) / 2;
    for (const long s : sums_) {
      if (s != expect) return false;
    }
    return !sums_.empty();
  }

  std::uint64_t checksum() const override {
    std::uint64_t acc = 0;
    for (const long s : sums_) acc += static_cast<std::uint64_t>(s);
    return acc;
  }

 private:
  int copies_;
  long len_;
  std::vector<long> sums_;
};

}  // namespace

std::unique_ptr<Workload> make_seq(int copies, long list_len) {
  return std::make_unique<SeqCopies>(copies, list_len);
}

}  // namespace mp::workloads
