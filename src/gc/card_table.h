#pragma once

// Card-marking remembered set for the old generation (heap.h, RemsetMode::
// kCard).  The store list the paper inherits from SML/NJ records one entry
// per assignment, so a store-heavy mutator hands the minor collector an
// unbounded, duplicate-ridden root list that must be sorted and walked every
// pause.  The card table bounds that work by the *locations* written instead
// of the writes: the active old semispace is divided into fixed power-of-two
// cards, a store dirties the byte for the card holding the written slot (an
// idempotent relaxed flag, re-dirtying an already-dirty card is free), and
// the minor collection re-scans each dirty card exactly once regardless of
// how many stores landed on it.
//
// Cards are addressed by word offset within the active semispace, so the two
// semispaces share one table and a major flip only needs the dirty bytes
// cleared — which is free, because the nursery is empty after every
// collection and therefore *no* old-to-young pointers survive a pause: every
// collection ends with an all-clean table.
//
// The crossing map (`object_start`) makes a dirty card parseable without
// walking the whole generation: for every card it records the word offset of
// the object covering the card's first word.  The invariant is maintained
// incrementally by whoever writes objects contiguously from a card-aligned
// base — the sequential collector from the semispace base, each parallel
// worker within its own card-aligned promotion block — via record_object():
//
//   - an object starting exactly on a card boundary claims that card;
//   - an object spanning into later cards claims each card it crosses.
//
// Any card inside a contiguously-filled region then names the right object:
// either some object starts exactly at its base (claims it), or the object
// overlapping its base started earlier and crossed into it (claims it).
// Entries for never-filled cards are garbage, but such cards can never be
// dirty (stores only land inside allocated objects).
//
// Concurrency: mark() is called by mutators in parallel (atomic byte,
// relaxed — the collector only reads the table at a stop-the-world pause);
// record_object() is called during collection where card-aligned promotion
// blocks give every card exactly one writer.

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>

#include "arch/panic.h"

namespace mp::gc {

class CardTable {
 public:
  CardTable() = default;
  CardTable(const CardTable&) = delete;
  CardTable& operator=(const CardTable&) = delete;

  // Cover a semispace of `space_words` with cards of `card_words` (both
  // powers of two, card_words <= space_words).
  void init(std::size_t space_words, std::size_t card_words) {
    MPNJ_CHECK(card_words != 0 && (card_words & (card_words - 1)) == 0,
               "card size must be a power of two");
    MPNJ_CHECK(card_words <= space_words,
               "card larger than the space it divides");
    card_words_ = card_words;
    shift_ = static_cast<std::size_t>(__builtin_ctzll(card_words));
    num_cards_ = space_words >> shift_;
    dirty_ = std::make_unique<std::atomic<std::uint8_t>[]>(num_cards_);
    start_ = std::make_unique<std::uint32_t[]>(num_cards_);
    for (std::size_t c = 0; c < num_cards_; c++) {
      dirty_[c].store(0, std::memory_order_relaxed);
    }
  }

  std::size_t card_words() const { return card_words_; }
  std::size_t num_cards() const { return num_cards_; }
  std::size_t card_of(std::size_t word_off) const { return word_off >> shift_; }
  std::size_t card_base_word(std::size_t card) const { return card << shift_; }

  // Mutator barrier: dirty the card holding `word_off`.  Returns true when
  // this call observed the card clean (the caller then queues the card index
  // for the collector); a racing pair of mutators may both see clean and
  // both queue it, which the collector's sort+unique absorbs.
  bool mark(std::size_t word_off) {
    std::atomic<std::uint8_t>& b = dirty_[word_off >> shift_];
    if (b.load(std::memory_order_relaxed) != 0) return false;
    b.store(1, std::memory_order_relaxed);
    return true;
  }

  bool is_dirty(std::size_t card) const {
    return dirty_[card].load(std::memory_order_relaxed) != 0;
  }
  void clear(std::size_t card) {
    dirty_[card].store(0, std::memory_order_relaxed);
  }
  void clear_all_dirty() {
    for (std::size_t c = 0; c < num_cards_; c++) clear(c);
  }

  // Crossing-map maintenance: an object of `words` words (header included)
  // was written at word offset `word_off`.  See the file comment for why
  // this keeps object_start() correct for every contiguously-filled card.
  void record_object(std::size_t word_off, std::size_t words) {
    const std::size_t first = word_off >> shift_;
    const std::size_t last = (word_off + words - 1) >> shift_;
    if (word_off == (first << shift_)) {
      start_[first] = static_cast<std::uint32_t>(word_off);
    }
    for (std::size_t c = first + 1; c <= last; c++) {
      start_[c] = static_cast<std::uint32_t>(word_off);
    }
  }

  // Word offset of the object covering `card`'s first word (<= the card's
  // base offset).  Only meaningful for cards inside filled space.
  std::size_t object_start(std::size_t card) const { return start_[card]; }

 private:
  std::unique_ptr<std::atomic<std::uint8_t>[]> dirty_;
  std::unique_ptr<std::uint32_t[]> start_;
  std::size_t card_words_ = 0;
  std::size_t shift_ = 0;
  std::size_t num_cards_ = 0;
};

}  // namespace mp::gc
