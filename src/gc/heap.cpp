#include "gc/heap.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "arch/tas.h"
#include "cont/cont.h"
#include "fuzz/hooks.h"
#include "gc/object_layout.h"
#include "metrics/metrics.h"

namespace mp::gc {

namespace {

constexpr std::size_t kWord = kWordBytes;
constexpr std::size_t kMaxInlineFields = 64;

bool is_pow2(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }

// RAII temp root frame used inside allocation: roots the allocation's own
// argument values so a collection triggered by the slow path (or by another
// proc at the charge point) updates them.
class TempRoots {
 public:
  TempRoots(Value* slots, std::size_t n) {
    cont::ExecContext* ex = cont::current_exec();
    MPNJ_CHECK(ex != nullptr && ex->seg != nullptr,
               "heap allocation outside a proc's client context");
    hdr_.prev = static_cast<RootFrameHdr*>(ex->root_head);
    hdr_.slots = slots;
    hdr_.count = n;
    ex->root_head = &hdr_;
  }
  ~TempRoots() {
    // Pop from the current proc: a preemption delivered at the allocation's
    // charge point may have migrated the thread.
    cont::ExecContext* ex = cont::current_exec();
    MPNJ_CHECK(ex != nullptr && ex->root_head == &hdr_,
               "allocation root frame popped out of order");
    ex->root_head = hdr_.prev;
  }

 private:
  RootFrameHdr hdr_;
};

}  // namespace

// ----- configuration -----

bool HeapConfig::default_parallel_gc() {
  static const bool enabled = [] {
    const char* env = std::getenv("MPNJ_GC_PARALLEL");
    return !(env != nullptr && env[0] == '0' && env[1] == '\0');
  }();
  return enabled;
}

void HeapConfig::validate() const {
  if (chunks_per_proc == 0) {
    arch::panic(
        "HeapConfig: chunks_per_proc is 0; a zero-chunk nursery can never "
        "satisfy an allocation (use with_chunks_per_proc(n >= 1))");
  }
  if (!is_pow2(nursery_bytes)) {
    arch::panic(
        "HeapConfig: nursery_bytes (%zu) must be a non-zero power of two",
        nursery_bytes);
  }
  if (!is_pow2(old_bytes)) {
    arch::panic(
        "HeapConfig: old_bytes (%zu) must be a non-zero power of two",
        old_bytes);
  }
  if (!(major_fraction > 0.0) || major_fraction > 1.0) {
    arch::panic(
        "HeapConfig: major_fraction (%f) must be in (0, 1]", major_fraction);
  }
  if (!is_pow2(par_block_words) || par_block_words < 64) {
    arch::panic(
        "HeapConfig: par_block_words (%zu) must be a power of two >= 64",
        par_block_words);
  }
}

Heap::Heap(const HeapConfig& config, Rendezvous& rendezvous,
           Accounting& accounting)
    : cfg_(config),
      rendezvous_(rendezvous),
      accounting_(accounting),
      copier_(config.par_block_words) {
  cfg_.validate();
  nursery_words_ = cfg_.nursery_bytes / kWord;
  const std::size_t nproc = static_cast<std::size_t>(rendezvous_.nproc());
  num_chunks_ = std::max<std::size_t>(1, nproc * cfg_.chunks_per_proc);
  chunk_words_ = nursery_words_ / num_chunks_;
  MPNJ_CHECK(chunk_words_ >= 64, "nursery chunks too small; grow the nursery");
  nursery_ = new std::uint64_t[nursery_words_];
  old_words_ = cfg_.old_bytes / kWord;
  old_a_ = new std::uint64_t[old_words_];
  old_b_ = new std::uint64_t[old_words_];
  old_cur_ = old_a_;
  old_alloc_ = old_a_;
  proc_heaps_.resize(nproc);
  free_chunks_.reserve(num_chunks_);
  for (std::size_t i = num_chunks_; i > 0; i--) {
    free_chunks_.push_back(static_cast<std::uint32_t>(i - 1));
  }
  baseline_ = metrics::registry().snapshot();
}

Heap::~Heap() {
  MPNJ_CHECK(global_roots_ == nullptr,
             "heap destroyed while GlobalRoots are still registered");
  delete[] nursery_;
  delete[] old_a_;
  delete[] old_b_;
}

bool Heap::in_nursery(Value v) const {
  if (!v.is_ptr()) return false;
  auto* p = reinterpret_cast<std::uint64_t*>(v.raw_bits());
  return p >= nursery_ && p < nursery_ + nursery_words_;
}

bool Heap::in_old_space(Value v) const {
  if (!v.is_ptr()) return false;
  auto* p = reinterpret_cast<std::uint64_t*>(v.raw_bits());
  return p >= old_cur_ && p < old_alloc_;
}

std::size_t Heap::old_space_used_words() const {
  return static_cast<std::size_t>(old_alloc_ - old_cur_);
}

std::size_t Heap::nursery_free_chunks() const { return free_chunks_.size(); }

HeapStats Heap::stats() const {
  const metrics::Snapshot now = metrics::registry().snapshot();
  // Saturating delta: registry().reset() between construction and here would
  // otherwise wrap.
  auto delta = [&](metrics::Counter c) -> std::uint64_t {
    const std::uint64_t cur = now.counter(c);
    const std::uint64_t base = baseline_.counter(c);
    return cur >= base ? cur - base : 0;
  };
  using metrics::Counter;
  HeapStats s;
  s.words_allocated = delta(Counter::kGcAllocWords);
  s.allocations = delta(Counter::kGcAllocs);
  s.minor_gcs = delta(Counter::kGcMinor);
  s.major_gcs = delta(Counter::kGcMajor);
  s.words_copied_minor = delta(Counter::kGcWordsCopiedMinor);
  s.words_copied_major = delta(Counter::kGcWordsCopiedMajor);
  s.chunk_grabs = delta(Counter::kGcChunkGrabs);
  s.chunk_steals = delta(Counter::kGcChunkSteals);
  s.stores_recorded = delta(Counter::kGcStores);
  s.large_allocs = delta(Counter::kGcLargeAllocs);
  return s;
}

// ----- allocation -----

bool Heap::grab_chunk(ProcHeap& ph) {
  arch::TasGuard guard(chunk_lock_);
  if (free_chunks_.empty()) return false;
  const std::uint32_t idx = free_chunks_.back();
  free_chunks_.pop_back();
  ph.alloc = nursery_ + static_cast<std::size_t>(idx) * chunk_words_;
  ph.limit = ph.alloc + chunk_words_;
  ph.chunks_since_gc++;
  MPNJ_METRIC_COUNT_ALWAYS(kGcChunkGrabs, 1);
  const std::uint64_t fair =
      num_chunks_ / static_cast<std::size_t>(rendezvous_.nproc());
  if (ph.chunks_since_gc > fair) {
    MPNJ_METRIC_COUNT_ALWAYS(kGcChunkSteals, 1);
  }
  return true;
}

std::uint64_t* Heap::alloc_raw(ObjKind kind, std::size_t field_words,
                               std::size_t length_for_header,
                               std::span<Value> rooted_args) {
  const int pid = rendezvous_.cur_proc();
  MPNJ_CHECK(pid >= 0, "allocation outside a proc");
  ProcHeap& ph = proc_heaps_[static_cast<std::size_t>(pid)];
  const std::size_t words = 1 + field_words;

  // Charge point (a clean point: another proc's collection may run here; the
  // argument values are protected by the caller's TempRoots frame).
  accounting_.charge_alloc(words);

  std::uint64_t* obj;
  if (words > chunk_words_) {
    obj = alloc_large(words);
  } else {
    while (ph.limit == nullptr ||
           static_cast<std::size_t>(ph.limit - ph.alloc) < words) {
      // Fuzz choice point: 1 forces a collection on this refill even though
      // free chunks remain, sliding GC cycles across the other procs'
      // allocation and synchronization histories.
      if (fuzz::pick(fuzz::Kind::kGcTrigger, 2, 0) == 1 ||
          !grab_chunk(ph)) {
        run_gc_cycle(false, rooted_args);
      }
    }
    obj = ph.alloc;
    ph.alloc += words;
  }
  obj[0] = make_header(kind, length_for_header);
  MPNJ_METRIC_COUNT_ALWAYS(kGcAllocWords, words);
  MPNJ_METRIC_COUNT_ALWAYS(kGcAllocs, 1);
  return obj;
}

std::uint64_t* Heap::alloc_large(std::size_t words) {
  for (int attempt = 0; attempt < 3; attempt++) {
    {
      arch::TasGuard guard(old_lock_);
      if (static_cast<std::size_t>((old_cur_ + old_words_) - old_alloc_) >=
          words) {
        std::uint64_t* obj = old_alloc_;
        old_alloc_ += words;
        MPNJ_METRIC_COUNT_ALWAYS(kGcLargeAllocs, 1);
        return obj;
      }
    }
    run_gc_cycle(/*force_major=*/true, {});
  }
  arch::panic("old generation exhausted by a large allocation of %zu words",
              words);
}

Value Heap::alloc_record(std::span<const Value> fields) {
  MPNJ_CHECK(fields.size() <= kMaxInlineFields,
             "records are limited to %d fields; use an array",
             static_cast<int>(kMaxInlineFields));
  Value buf[kMaxInlineFields];
  std::copy(fields.begin(), fields.end(), buf);
  TempRoots roots(buf, fields.size());
  std::uint64_t* obj =
      alloc_raw(ObjKind::kRecord, fields.size(), fields.size(),
                std::span<Value>(buf, fields.size()));
  for (std::size_t i = 0; i < fields.size(); i++) obj[1 + i] = buf[i].raw_bits();
  return Value::from_raw_bits(reinterpret_cast<std::uint64_t>(obj));
}

Value Heap::alloc_array(std::size_t n, Value init) {
  Value buf[1] = {init};
  TempRoots roots(buf, 1);
  std::uint64_t* obj =
      alloc_raw(ObjKind::kArray, n, n, std::span<Value>(buf, 1));
  for (std::size_t i = 0; i < n; i++) obj[1 + i] = buf[0].raw_bits();
  return Value::from_raw_bits(reinterpret_cast<std::uint64_t>(obj));
}

Value Heap::alloc_ref(Value init) {
  Value buf[1] = {init};
  TempRoots roots(buf, 1);
  std::uint64_t* obj = alloc_raw(ObjKind::kRef, 1, 1, std::span<Value>(buf, 1));
  obj[1] = buf[0].raw_bits();
  return Value::from_raw_bits(reinterpret_cast<std::uint64_t>(obj));
}

Value Heap::alloc_bytes(std::string_view data) {
  const std::size_t payload_words = (data.size() + kWord - 1) / kWord;
  std::uint64_t* obj =
      alloc_raw(ObjKind::kBytes, payload_words, data.size(), {});
  if (payload_words > 0) obj[payload_words] = 0;  // zero the tail word
  std::memcpy(obj + 1, data.data(), data.size());
  return Value::from_raw_bits(reinterpret_cast<std::uint64_t>(obj));
}

Value Heap::alloc_real(double d) {
  std::uint64_t* obj = alloc_raw(ObjKind::kReal, 1, sizeof(double), {});
  std::memcpy(obj + 1, &d, sizeof(double));
  return Value::from_raw_bits(reinterpret_cast<std::uint64_t>(obj));
}

// ----- mutation -----

void Heap::store(Value obj, std::size_t index, Value v) {
  MPNJ_CHECK(obj.is_ptr(), "store to a non-pointer Value");
  const ObjKind k = obj.kind();
  MPNJ_CHECK(k == ObjKind::kArray || k == ObjKind::kRef,
             "store to an immutable object");
  MPNJ_CHECK(index < obj.length(), "store index out of range");
  std::uint64_t* slot = obj.obj() + 1 + index;
  *slot = v.raw_bits();
  // Record assignments into the old generation: the minor collector scans
  // them as roots (SML/NJ's store list for old-to-young pointers).
  auto* p = reinterpret_cast<std::uint64_t*>(obj.raw_bits());
  if (p >= old_cur_ && p < old_alloc_) {
    const int pid = rendezvous_.cur_proc();
    ProcHeap& ph = proc_heaps_[static_cast<std::size_t>(pid)];
    ph.store_list.push_back(slot);
    MPNJ_METRIC_COUNT_ALWAYS(kGcStores, 1);
  }
}

// ----- collection -----

void Heap::stop_and_collect(bool force_major) {
  // Register the worker entry with the rendezvous *before* stopping the
  // world: a proc that parks while we are still enumerating roots spins
  // inside worker_cycle until the first phase opens.
  WorkerFn fn;
  if (cfg_.parallel_gc) {
    copier_.begin_cycle();
    fn = [this] { copier_.worker_cycle(); };
  }
  rendezvous_.stop_world(std::move(fn));
  do_collect(force_major, {});
  // Release the workers before the world resumes; the backend guarantees
  // every co-opted proc has left the worker fn before running client code.
  if (cfg_.parallel_gc) copier_.end_cycle();
  gc_in_progress_.store(false);
  rendezvous_.resume_world();
}

void Heap::join_in_flight_collection() {
  // Another proc is collecting: reach a clean point and contribute to the
  // copy where the backend supports it, instead of spinning.
  if (cfg_.parallel_gc) {
    rendezvous_.rendezvous_and_work([this] { copier_.worker_cycle(); });
  } else {
    rendezvous_.rendezvous_and_work(WorkerFn{});
  }
}

void Heap::run_gc_cycle(bool force_major, std::span<Value> rooted_args) {
  (void)rooted_args;  // already linked into the root chain by the caller
  bool expected = false;
  if (gc_in_progress_.compare_exchange_strong(expected, true)) {
    stop_and_collect(force_major);
  } else {
    // The caller retries its chunk grab against the refilled nursery.
    join_in_flight_collection();
  }
}

void Heap::collect_now(bool force_major) {
  for (;;) {
    bool expected = false;
    if (gc_in_progress_.compare_exchange_strong(expected, true)) {
      stop_and_collect(force_major);
      return;
    }
    join_in_flight_collection();
  }
}

void Heap::forward_slot(std::uint64_t* slot) {
  const std::uint64_t bits = *slot;
  if (bits == 0 || (bits & 1u) != 0) return;  // nil or immediate int
  auto* obj = reinterpret_cast<std::uint64_t*>(bits);
  if (obj < from_lo_ || obj >= from_hi_) return;  // not in the space evacuated
  const std::uint64_t hdr = obj[0];
  if ((hdr & 1u) != 0) {  // already copied: header holds forwarding pointer
    *slot = hdr & ~std::uint64_t{1};
    return;
  }
  const std::size_t words = 1 + header_field_words(hdr);
  MPNJ_CHECK(old_alloc_ + words <= old_cur_ + old_words_,
             "old generation exhausted during collection; grow old_bytes");
  std::uint64_t* dst = old_alloc_;
  old_alloc_ += words;
  std::memcpy(dst, obj, words * kWord);
  const auto fwd = reinterpret_cast<std::uint64_t>(dst);
  obj[0] = fwd | 1u;
  *slot = fwd;
}

std::uint64_t* Heap::scan_object(std::uint64_t* obj) {
  const std::uint64_t hdr = obj[0];
  const std::size_t words = header_field_words(hdr);
  if (header_is_traced(hdr)) {
    for (std::size_t i = 0; i < words; i++) forward_slot(obj + 1 + i);
  }
  return obj + 1 + words;
}

std::vector<std::uint64_t*> Heap::gather_root_slots(
    std::span<Value> extra_roots, bool minor) {
  std::vector<std::uint64_t*> slots;
  slots.reserve(256);
  auto add_value = [&](Value* v) {
    slots.push_back(reinterpret_cast<std::uint64_t*>(v));
  };
  auto walk_chain = [&](void* head) {
    for (auto* f = static_cast<RootFrameHdr*>(head); f != nullptr;
         f = f->prev) {
      for (std::size_t i = 0; i < f->count; i++) add_value(&f->slots[i]);
    }
  };

  for (Value& v : extra_roots) add_value(&v);

  // Running procs' current root chains.
  for (int id = 0; id < rendezvous_.nproc(); id++) {
    if (cont::ExecContext* ex = rendezvous_.proc_exec(id)) {
      walk_chain(ex->root_head);
    }
  }

  // Suspended threads: every live un-fired continuation's chain, plus any
  // Value payload already delivered to a queued continuation.
  cont::for_each_core([&](cont::ContCore& core) {
    const auto st = core.state();
    if (st == cont::ContCore::State::kFired) return;
    walk_chain(core.root_head());
    if (core.slot_is_gc_ref()) slots.push_back(core.slot_ptr());
  });

  // Individually registered roots (values inside C++ containers).
  {
    arch::TasGuard guard(roots_lock_);
    for (GlobalRoot* r = global_roots_; r != nullptr; r = r->next_) {
      add_value(&r->value_);
    }
  }

  // Minor collections additionally treat recorded old-to-young stores as
  // roots.  Only assignments into live old objects still matter; slots
  // inside the nursery belong to young objects the trace reaches anyway.
  if (minor) {
    for (auto& ph : proc_heaps_) {
      for (std::uint64_t* slot : ph.store_list) {
        if (slot >= old_cur_ && slot < old_alloc_) slots.push_back(slot);
      }
    }
  }

  // One slot, one writer: the parallel copier claims each root exactly once,
  // so duplicates (repeated store-list entries above all) must go.
  std::sort(slots.begin(), slots.end());
  slots.erase(std::unique(slots.begin(), slots.end()), slots.end());
  return slots;
}

std::uint64_t Heap::sequential_phase(std::span<Value> extra_roots, bool minor) {
  std::uint64_t* const start = old_alloc_;
  std::uint64_t* scan = old_alloc_;
  for (std::uint64_t* slot : gather_root_slots(extra_roots, minor)) {
    forward_slot(slot);
  }
  while (scan < old_alloc_) scan = scan_object(scan);
  return static_cast<std::uint64_t>(old_alloc_ - start);
}

std::uint64_t Heap::parallel_phase(std::span<Value> extra_roots, bool minor) {
  const std::vector<std::uint64_t*> roots =
      gather_root_slots(extra_roots, minor);
  std::uint64_t* frontier = old_alloc_;
  const ParallelCopier::PhaseResult res = copier_.run_phase(
      from_lo_, from_hi_, &frontier, old_cur_ + old_words_, roots);
  old_alloc_ = frontier;
  MPNJ_METRIC_COUNT_ALWAYS(kGcParCollections, 1);
  MPNJ_METRIC_COUNT(kGcParWorkers, static_cast<std::uint64_t>(res.workers));
  MPNJ_METRIC_COUNT(kGcParSteals, res.steals);
  MPNJ_METRIC_COUNT(kGcParOverflowPushes, res.overflow_pushes);
  MPNJ_METRIC_COUNT(kGcParPadWords, res.pad_words);
  MPNJ_METRIC_COUNT(kGcParTermRounds, res.term_rounds);
  MPNJ_METRIC_RECORD(kGcParSteals, res.steals);
  MPNJ_METRIC_RECORD(kGcParTermRounds, res.term_rounds);
  for (const std::uint64_t ww : res.worker_words) {
    (void)ww;  // compiled away with -DMPNJ_METRICS=OFF
    MPNJ_METRIC_RECORD(kGcParWorkerWords, ww);
  }
  return res.live_words;
}

void Heap::do_collect(bool force_major, std::span<Value> extra_roots) {
  const auto pause_start = std::chrono::steady_clock::now();

  // --- minor: evacuate the nursery into the old generation ---
  from_lo_ = nursery_;
  from_hi_ = nursery_ + nursery_words_;
  const std::uint64_t minor_copied =
      cfg_.parallel_gc ? parallel_phase(extra_roots, /*minor=*/true)
                       : sequential_phase(extra_roots, /*minor=*/true);
  MPNJ_METRIC_COUNT_ALWAYS(kGcWordsCopiedMinor, minor_copied);
  std::uint64_t copied = minor_copied;

  // Reset the nursery: every chunk becomes free and every proc grabs anew.
  {
    arch::TasGuard guard(chunk_lock_);
    free_chunks_.clear();
    for (std::size_t i = num_chunks_; i > 0; i--) {
      free_chunks_.push_back(static_cast<std::uint32_t>(i - 1));
    }
  }
  for (auto& ph : proc_heaps_) {
    ph.alloc = nullptr;
    ph.limit = nullptr;
    ph.store_list.clear();
    ph.chunks_since_gc = 0;
  }
  MPNJ_METRIC_COUNT_ALWAYS(kGcMinor, 1);

  // --- major: copy the old generation into the other semispace ---
  const bool need_major =
      force_major || static_cast<double>(old_space_used_words()) >
                         cfg_.major_fraction * static_cast<double>(old_words_);
  if (need_major) {
    from_lo_ = old_cur_;
    from_hi_ = old_cur_ + old_words_;
    std::uint64_t* to = (old_cur_ == old_a_) ? old_b_ : old_a_;
    old_cur_ = to;
    old_alloc_ = to;
    const std::uint64_t major_copied =
        cfg_.parallel_gc ? parallel_phase(extra_roots, /*minor=*/false)
                         : sequential_phase(extra_roots, /*minor=*/false);
    MPNJ_METRIC_COUNT_ALWAYS(kGcMajor, 1);
    MPNJ_METRIC_COUNT_ALWAYS(kGcWordsCopiedMajor, major_copied);
    copied += major_copied;
  }

  accounting_.charge_gc(copied);
  from_lo_ = nullptr;
  from_hi_ = nullptr;
  MPNJ_METRIC_COUNT_ALWAYS(kGcWordsCopied, copied);

  // Wall-clock pause, not virtual time: the simulator charges its own model
  // of GC cost via charge_gc; this measures what the host actually paid.
  const auto pause_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - pause_start)
          .count());
  MPNJ_METRIC_COUNT_ALWAYS(kGcPauseUsTotal, pause_us);
  MPNJ_METRIC_RECORD(kGcPauseUs, pause_us);
}

// ----- verification -----

namespace {

std::string describe_ptr(const void* p) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%p", p);
  return buf;
}

}  // namespace

bool Heap::verify(std::string* error) const {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  auto valid_value = [&](std::uint64_t bits) {
    if (bits == 0 || (bits & 1u) != 0) return true;  // nil or immediate
    if ((bits & 7u) != 0) return false;              // misaligned pointer
    auto* p = reinterpret_cast<std::uint64_t*>(bits);
    const bool young = p >= nursery_ && p < nursery_ + nursery_words_;
    const bool old = p >= old_cur_ && p < old_alloc_;
    return young || old;
  };

  // Every object in the old generation must parse (parallel collections pad
  // unused block tails with untraced kBytes objects precisely so this walk
  // stays valid).
  const std::uint64_t* obj = old_cur_;
  while (obj < old_alloc_) {
    const std::uint64_t hdr = *obj;
    if ((hdr & 1u) != 0) {
      return fail("forwarding pointer outside a collection at " +
                  describe_ptr(obj));
    }
    const auto kind = static_cast<ObjKind>((hdr >> 1) & 0x7u);
    if (kind != ObjKind::kRecord && kind != ObjKind::kArray &&
        kind != ObjKind::kRef && kind != ObjKind::kBytes &&
        kind != ObjKind::kReal) {
      return fail("bad object kind at " + describe_ptr(obj));
    }
    const std::size_t words = header_field_words(hdr);
    if (obj + 1 + words > old_cur_ + old_words_) {
      return fail("object overruns the old generation at " +
                  describe_ptr(obj));
    }
    if (header_is_traced(hdr)) {
      for (std::size_t i = 0; i < words; i++) {
        if (!valid_value(obj[1 + i])) {
          return fail("bad field pointer in object at " + describe_ptr(obj));
        }
      }
    }
    obj += 1 + words;
  }
  if (obj != old_alloc_) {
    return fail("old generation does not parse to its allocation frontier");
  }

  // Registered roots must hold valid values.
  for (GlobalRoot* r = global_roots_; r != nullptr; r = r->next_) {
    if (!valid_value(r->value_.raw_bits())) {
      return fail("GlobalRoot holds an invalid value");
    }
  }
  return true;
}

// ----- global roots -----

void Heap::register_global_root(GlobalRoot* root) {
  arch::TasGuard guard(roots_lock_);
  root->prev_ = nullptr;
  root->next_ = global_roots_;
  if (global_roots_ != nullptr) global_roots_->prev_ = root;
  global_roots_ = root;
}

void Heap::unregister_global_root(GlobalRoot* root) {
  arch::TasGuard guard(roots_lock_);
  if (root->prev_ != nullptr) {
    root->prev_->next_ = root->next_;
  } else {
    global_roots_ = root->next_;
  }
  if (root->next_ != nullptr) root->next_->prev_ = root->prev_;
  root->prev_ = nullptr;
  root->next_ = nullptr;
}

// ----- GlobalRoot -----

GlobalRoot::GlobalRoot(Heap& heap, Value v) : heap_(&heap), value_(v) {
  heap_->register_global_root(this);
}

GlobalRoot::~GlobalRoot() {
  if (heap_ != nullptr) heap_->unregister_global_root(this);
}

GlobalRoot::GlobalRoot(GlobalRoot&& other) noexcept {
  steal_links(std::move(other));
}

GlobalRoot& GlobalRoot::operator=(GlobalRoot&& other) noexcept {
  if (this == &other) return *this;
  if (heap_ != nullptr) heap_->unregister_global_root(this);
  steal_links(std::move(other));
  return *this;
}

void GlobalRoot::steal_links(GlobalRoot&& other) noexcept {
  heap_ = other.heap_;
  value_ = other.value_;
  if (heap_ != nullptr) {
    // Replace `other` with `this` in the registry under the lock.
    heap_->unregister_global_root(&other);
    heap_->register_global_root(this);
    other.heap_ = nullptr;
  }
}

}  // namespace mp::gc
