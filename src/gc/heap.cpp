#include "gc/heap.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "arch/tas.h"
#include "cont/cont.h"
#include "fuzz/hooks.h"
#include "gc/object_layout.h"
#include "metrics/metrics.h"

namespace mp::gc {

namespace {

constexpr std::size_t kWord = kWordBytes;
constexpr std::size_t kMaxInlineFields = 64;
// Newly dirtied cards queue per proc and flush to the global list in batches;
// the buffer is tiny because a card can only be queued once per collection
// cycle (the dirty byte filters duplicates).
constexpr std::size_t kCardBufCap = 64;

bool is_pow2(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }

// RAII temp root frame used inside allocation: roots the allocation's own
// argument values so a collection triggered by the slow path (or by another
// proc at the charge point) updates them.
class TempRoots {
 public:
  TempRoots(Value* slots, std::size_t n) {
    cont::ExecContext* ex = cont::current_exec();
    MPNJ_CHECK(ex != nullptr && ex->seg != nullptr,
               "heap allocation outside a proc's client context");
    hdr_.prev = static_cast<RootFrameHdr*>(ex->root_head);
    hdr_.slots = slots;
    hdr_.count = n;
    ex->root_head = &hdr_;
  }
  ~TempRoots() {
    // Pop from the current proc: a preemption delivered at the allocation's
    // charge point may have migrated the thread.
    cont::ExecContext* ex = cont::current_exec();
    MPNJ_CHECK(ex != nullptr && ex->root_head == &hdr_,
               "allocation root frame popped out of order");
    ex->root_head = hdr_.prev;
  }

 private:
  RootFrameHdr hdr_;
};

}  // namespace

// ----- configuration -----

bool HeapConfig::default_parallel_gc() {
  static const bool enabled = [] {
    const char* env = std::getenv("MPNJ_GC_PARALLEL");
    return !(env != nullptr && env[0] == '0' && env[1] == '\0');
  }();
  return enabled;
}

RemsetMode HeapConfig::default_remset() {
  static const RemsetMode mode = [] {
    const char* env = std::getenv("MPNJ_GC_REMSET");
    if (env != nullptr && std::strcmp(env, "list") == 0) {
      return RemsetMode::kList;
    }
    return RemsetMode::kCard;
  }();
  return mode;
}

bool HeapConfig::default_verify_after_phase() {
#ifndef NDEBUG
  return true;
#else
  return false;
#endif
}

void HeapConfig::validate() const {
  if (chunks_per_proc == 0) {
    arch::panic(
        "HeapConfig: chunks_per_proc is 0; a zero-chunk nursery can never "
        "satisfy an allocation (use with_chunks_per_proc(n >= 1))");
  }
  if (!is_pow2(nursery_bytes)) {
    arch::panic(
        "HeapConfig: nursery_bytes (%zu) must be a non-zero power of two",
        nursery_bytes);
  }
  if (!is_pow2(old_bytes)) {
    arch::panic(
        "HeapConfig: old_bytes (%zu) must be a non-zero power of two",
        old_bytes);
  }
  if (!(major_fraction > 0.0) || major_fraction > 1.0) {
    arch::panic(
        "HeapConfig: major_fraction (%f) must be in (0, 1]", major_fraction);
  }
  if (!is_pow2(par_block_words) || par_block_words < 64) {
    arch::panic(
        "HeapConfig: par_block_words (%zu) must be a power of two >= 64",
        par_block_words);
  }
  if (!is_pow2(card_bytes) || card_bytes < 64) {
    arch::panic(
        "HeapConfig: card_bytes (%zu) must be a power of two >= 64",
        card_bytes);
  }
  if (card_bytes > old_bytes) {
    arch::panic(
        "HeapConfig: card_bytes (%zu) exceeds old_bytes (%zu)", card_bytes,
        old_bytes);
  }
  if (card_bytes > par_block_words * kWordBytes) {
    arch::panic(
        "HeapConfig: card_bytes (%zu) exceeds par_block_words * 8 (%zu); "
        "parallel promotion blocks must cover whole cards",
        card_bytes, par_block_words * kWordBytes);
  }
  if (los_threshold_bytes < card_bytes) {
    arch::panic(
        "HeapConfig: los_threshold_bytes (%zu) below card_bytes (%zu); "
        "large objects must not be cheaper to remember than a card",
        los_threshold_bytes, card_bytes);
  }
  if (los_bytes == 0 || los_bytes % LargeObjectSpace::kPageBytes != 0) {
    arch::panic(
        "HeapConfig: los_bytes (%zu) must be a non-zero multiple of the "
        "%zu-byte page",
        los_bytes, LargeObjectSpace::kPageBytes);
  }
  if (!(los_pressure_fraction > 0.0) || los_pressure_fraction > 1.0) {
    arch::panic(
        "HeapConfig: los_pressure_fraction (%f) must be in (0, 1]",
        los_pressure_fraction);
  }
}

Heap::Heap(const HeapConfig& config, Rendezvous& rendezvous,
           Accounting& accounting)
    : cfg_(config),
      rendezvous_(rendezvous),
      accounting_(accounting),
      copier_(config.par_block_words) {
  cfg_.validate();
  nursery_words_ = cfg_.nursery_bytes / kWord;
  const std::size_t nproc = static_cast<std::size_t>(rendezvous_.nproc());
  num_chunks_ = std::max<std::size_t>(1, nproc * cfg_.chunks_per_proc);
  chunk_words_ = nursery_words_ / num_chunks_;
  MPNJ_CHECK(chunk_words_ >= 64, "nursery chunks too small; grow the nursery");
  nursery_ = new std::uint64_t[nursery_words_];
  old_words_ = cfg_.old_bytes / kWord;
  old_a_ = new std::uint64_t[old_words_];
  old_b_ = new std::uint64_t[old_words_];
  old_cur_ = old_a_;
  old_alloc_ = old_a_;
  if (cfg_.remset == RemsetMode::kCard) {
    cards_.init(old_words_, cfg_.card_bytes / kWord);
  }
  los_.init(cfg_.los_bytes);
  proc_heaps_.resize(nproc);
  for (auto& ph : proc_heaps_) ph.card_buf.reserve(kCardBufCap);
  free_chunks_.reserve(num_chunks_);
  for (std::size_t i = num_chunks_; i > 0; i--) {
    free_chunks_.push_back(static_cast<std::uint32_t>(i - 1));
  }
  baseline_ = metrics::registry().snapshot();
}

Heap::~Heap() {
  MPNJ_CHECK(global_roots_ == nullptr,
             "heap destroyed while GlobalRoots are still registered");
  delete[] nursery_;
  delete[] old_a_;
  delete[] old_b_;
}

bool Heap::in_nursery(Value v) const {
  if (!v.is_ptr()) return false;
  auto* p = reinterpret_cast<std::uint64_t*>(v.raw_bits());
  return p >= nursery_ && p < nursery_ + nursery_words_;
}

bool Heap::in_old_space(Value v) const {
  if (!v.is_ptr()) return false;
  auto* p = reinterpret_cast<std::uint64_t*>(v.raw_bits());
  return p >= old_cur_ && p < old_alloc_;
}

bool Heap::in_los(Value v) const {
  if (!v.is_ptr()) return false;
  auto* p = reinterpret_cast<std::uint64_t*>(v.raw_bits());
  return los_.contains(p);
}

std::size_t Heap::old_space_used_words() const {
  return static_cast<std::size_t>(old_alloc_ - old_cur_);
}

std::size_t Heap::nursery_free_chunks() const { return free_chunks_.size(); }

HeapStats Heap::stats() const {
  const metrics::Snapshot now = metrics::registry().snapshot();
  // Saturating delta: registry().reset() between construction and here would
  // otherwise wrap.
  auto delta = [&](metrics::Counter c) -> std::uint64_t {
    const std::uint64_t cur = now.counter(c);
    const std::uint64_t base = baseline_.counter(c);
    return cur >= base ? cur - base : 0;
  };
  using metrics::Counter;
  HeapStats s;
  s.words_allocated = delta(Counter::kGcAllocWords);
  s.allocations = delta(Counter::kGcAllocs);
  s.minor_gcs = delta(Counter::kGcMinor);
  s.major_gcs = delta(Counter::kGcMajor);
  s.words_copied_minor = delta(Counter::kGcWordsCopiedMinor);
  s.words_copied_major = delta(Counter::kGcWordsCopiedMajor);
  s.chunk_grabs = delta(Counter::kGcChunkGrabs);
  s.chunk_steals = delta(Counter::kGcChunkSteals);
  s.stores_recorded = delta(Counter::kGcStores);
  s.large_allocs = delta(Counter::kGcLargeAllocs);
  s.cards_dirtied = delta(Counter::kGcCardsDirtied);
  s.cards_scanned = delta(Counter::kGcCardsScanned);
  s.los_bytes = los_.used_bytes();
  return s;
}

std::vector<Heap::PauseSample> Heap::pause_log() const {
  arch::TasGuard guard(pause_lock_);
  return pause_log_;
}

// ----- allocation -----

bool Heap::grab_chunk(ProcHeap& ph) {
  arch::TasGuard guard(chunk_lock_);
  if (free_chunks_.empty()) return false;
  const std::uint32_t idx = free_chunks_.back();
  free_chunks_.pop_back();
  ph.alloc = nursery_ + static_cast<std::size_t>(idx) * chunk_words_;
  ph.limit = ph.alloc + chunk_words_;
  ph.chunks_since_gc++;
  MPNJ_METRIC_COUNT_ALWAYS(kGcChunkGrabs, 1);
  const std::uint64_t fair =
      num_chunks_ / static_cast<std::size_t>(rendezvous_.nproc());
  if (ph.chunks_since_gc > fair) {
    MPNJ_METRIC_COUNT_ALWAYS(kGcChunkSteals, 1);
  }
  return true;
}

std::uint64_t* Heap::alloc_raw(ObjKind kind, std::size_t field_words,
                               std::size_t length_for_header,
                               std::span<Value> rooted_args) {
  const int pid = rendezvous_.cur_proc();
  MPNJ_CHECK(pid >= 0, "allocation outside a proc");
  ProcHeap& ph = proc_heaps_[static_cast<std::size_t>(pid)];
  const std::size_t words = 1 + field_words;

  // Charge point (a clean point: another proc's collection may run here; the
  // argument values are protected by the caller's TempRoots frame).
  accounting_.charge_alloc(words);

  std::uint64_t* obj;
  if (words > chunk_words_ || words * kWord >= cfg_.los_threshold_bytes) {
    obj = alloc_los(words, kind, rooted_args);
  } else {
    while (ph.limit == nullptr ||
           static_cast<std::size_t>(ph.limit - ph.alloc) < words) {
      // Fuzz choice point: 1 forces a collection on this refill even though
      // free chunks remain, sliding GC cycles across the other procs'
      // allocation and synchronization histories.
      if (fuzz::pick(fuzz::Kind::kGcTrigger, 2, 0) == 1 ||
          !grab_chunk(ph)) {
        run_gc_cycle(false, rooted_args);
      }
    }
    obj = ph.alloc;
    ph.alloc += words;
  }
  obj[0] = make_header(kind, length_for_header);
  MPNJ_METRIC_COUNT_ALWAYS(kGcAllocWords, words);
  MPNJ_METRIC_COUNT_ALWAYS(kGcAllocs, 1);
  return obj;
}

std::uint64_t* Heap::alloc_los(std::size_t words, ObjKind kind,
                               std::span<Value> rooted_args) {
  for (int attempt = 0; attempt < 3; attempt++) {
    std::size_t pages = 0;
    std::uint64_t* obj = los_.alloc(words, &pages);
    if (obj != nullptr) {
      accounting_.charge_los_alloc(pages);
      MPNJ_METRIC_COUNT_ALWAYS(kGcLargeAllocs, 1);
      MPNJ_METRIC_COUNT_ALWAYS(kGcLosBytesAllocated, words * kWord);
      // Born dirty: a traced large object's initial fields may point into
      // the nursery, and no store barrier will ever see those writes.  The
      // next minor collection scans it like any recorded store.  (The old
      // bump-into-old-generation path silently missed exactly this case.)
      if (kind == ObjKind::kRecord || kind == ObjKind::kArray ||
          kind == ObjKind::kRef) {
        LargeObjectSpace::set_dirty(obj);
      }
      return obj;
    }
    // No extent fits: a major collection sweeps the LOS; retry after.
    run_gc_cycle(/*force_major=*/true, rooted_args);
  }
  arch::panic(
      "large-object space exhausted by an allocation of %zu words; grow "
      "los_bytes",
      words);
}

Value Heap::alloc_record(std::span<const Value> fields) {
  MPNJ_CHECK(fields.size() <= kMaxInlineFields,
             "records are limited to %d fields; use an array",
             static_cast<int>(kMaxInlineFields));
  Value buf[kMaxInlineFields];
  std::copy(fields.begin(), fields.end(), buf);
  TempRoots roots(buf, fields.size());
  std::uint64_t* obj =
      alloc_raw(ObjKind::kRecord, fields.size(), fields.size(),
                std::span<Value>(buf, fields.size()));
  for (std::size_t i = 0; i < fields.size(); i++) obj[1 + i] = buf[i].raw_bits();
  return Value::from_raw_bits(reinterpret_cast<std::uint64_t>(obj));
}

Value Heap::alloc_array(std::size_t n, Value init) {
  Value buf[1] = {init};
  TempRoots roots(buf, 1);
  std::uint64_t* obj =
      alloc_raw(ObjKind::kArray, n, n, std::span<Value>(buf, 1));
  for (std::size_t i = 0; i < n; i++) obj[1 + i] = buf[0].raw_bits();
  return Value::from_raw_bits(reinterpret_cast<std::uint64_t>(obj));
}

Value Heap::alloc_ref(Value init) {
  Value buf[1] = {init};
  TempRoots roots(buf, 1);
  std::uint64_t* obj = alloc_raw(ObjKind::kRef, 1, 1, std::span<Value>(buf, 1));
  obj[1] = buf[0].raw_bits();
  return Value::from_raw_bits(reinterpret_cast<std::uint64_t>(obj));
}

Value Heap::alloc_bytes(std::string_view data) {
  const std::size_t payload_words = (data.size() + kWord - 1) / kWord;
  std::uint64_t* obj =
      alloc_raw(ObjKind::kBytes, payload_words, data.size(), {});
  if (payload_words > 0) obj[payload_words] = 0;  // zero the tail word
  std::memcpy(obj + 1, data.data(), data.size());
  return Value::from_raw_bits(reinterpret_cast<std::uint64_t>(obj));
}

Value Heap::alloc_real(double d) {
  std::uint64_t* obj = alloc_raw(ObjKind::kReal, 1, sizeof(double), {});
  std::memcpy(obj + 1, &d, sizeof(double));
  return Value::from_raw_bits(reinterpret_cast<std::uint64_t>(obj));
}

// ----- mutation (barrier slow path) -----

void Heap::flush_card_buffer(ProcHeap& ph) {
  if (ph.card_buf.empty()) return;
  {
    arch::TasGuard guard(card_lock_);
    global_dirty_cards_.insert(global_dirty_cards_.end(), ph.card_buf.begin(),
                               ph.card_buf.end());
  }
  ph.card_buf.clear();
  MPNJ_METRIC_COUNT_ALWAYS(kGcCardFlushes, 1);
}

void Heap::record_store(std::uint64_t* obj, std::uint64_t* slot) {
  // The inline barrier already excluded the nursery; the written object is
  // in the old generation or the LOS.
  MPNJ_METRIC_COUNT_ALWAYS(kGcStores, 1);
  if (los_.contains(obj)) {
    LargeObjectSpace::set_dirty(obj);
    return;
  }
  if (!(obj >= old_cur_ && obj < old_alloc_)) return;
  if (cfg_.remset == RemsetMode::kList) {
    // Paper-faithful store list: one entry per assignment, duplicates and
    // all; the minor collection sorts and deduplicates the lot.
    const int pid = rendezvous_.cur_proc();
    proc_heaps_[static_cast<std::size_t>(pid)].store_list.push_back(slot);
    return;
  }
  // Card remset: dirty the byte for the *slot's* card.  Only the clean ->
  // dirty transition queues the card (so per-cycle queue traffic is bounded
  // by distinct cards, not stores); a racing pair of procs may both queue,
  // which the collector's sort+unique absorbs.
  const auto word_off = static_cast<std::size_t>(slot - old_cur_);
  if (cards_.mark(word_off)) {
    MPNJ_METRIC_COUNT_ALWAYS(kGcCardsDirtied, 1);
    const int pid = rendezvous_.cur_proc();
    ProcHeap& ph = proc_heaps_[static_cast<std::size_t>(pid)];
    ph.card_buf.push_back(static_cast<std::uint32_t>(cards_.card_of(word_off)));
    // Fuzz choice point: 1 flushes the proc's buffer early, sliding the
    // flush lock acquisition across other procs' histories.
    if (ph.card_buf.size() >= kCardBufCap ||
        fuzz::pick(fuzz::Kind::kCardFlush, 2, 0) == 1) {
      flush_card_buffer(ph);
    }
  }
}

// ----- collection -----

void Heap::stop_and_collect(bool force_major) {
  // Register the worker entry with the rendezvous *before* stopping the
  // world: a proc that parks while we are still enumerating roots spins
  // inside worker_cycle until the first phase opens.
  WorkerFn fn;
  if (cfg_.parallel_gc) {
    copier_.begin_cycle();
    fn = [this] { copier_.worker_cycle(); };
  }
  rendezvous_.stop_world(std::move(fn));
  do_collect(force_major, {});
  // Release the workers before the world resumes; the backend guarantees
  // every co-opted proc has left the worker fn before running client code.
  if (cfg_.parallel_gc) copier_.end_cycle();
  gc_in_progress_.store(false);
  rendezvous_.resume_world();
}

void Heap::join_in_flight_collection() {
  // Another proc is collecting: reach a clean point and contribute to the
  // copy where the backend supports it, instead of spinning.
  if (cfg_.parallel_gc) {
    rendezvous_.rendezvous_and_work([this] { copier_.worker_cycle(); });
  } else {
    rendezvous_.rendezvous_and_work(WorkerFn{});
  }
}

void Heap::run_gc_cycle(bool force_major, std::span<Value> rooted_args) {
  (void)rooted_args;  // already linked into the root chain by the caller
  bool expected = false;
  if (gc_in_progress_.compare_exchange_strong(expected, true)) {
    stop_and_collect(force_major);
  } else {
    // The caller retries its chunk grab against the refilled nursery.
    join_in_flight_collection();
  }
}

void Heap::collect_now(bool force_major) {
  for (;;) {
    bool expected = false;
    if (gc_in_progress_.compare_exchange_strong(expected, true)) {
      stop_and_collect(force_major);
      return;
    }
    join_in_flight_collection();
  }
}

void Heap::forward_slot(std::uint64_t* slot) {
  const std::uint64_t bits = *slot;
  if (bits == 0 || (bits & 1u) != 0) return;  // nil or immediate int
  auto* obj = reinterpret_cast<std::uint64_t*>(bits);
  if (obj < from_lo_ || obj >= from_hi_) {
    // Not in the evacuated space.  A major phase marks the LOS in passing;
    // the first visit owes the object's fields a scan (via the mark stack).
    if (los_mark_phase_ && los_.contains(obj) &&
        LargeObjectSpace::try_mark(obj)) {
      MPNJ_METRIC_COUNT_ALWAYS(kGcLosMarked, 1);
      if (header_is_traced(obj[0])) los_mark_stack_.push_back(obj);
    }
    return;
  }
  const std::uint64_t hdr = obj[0];
  if ((hdr & 1u) != 0) {  // already copied: header holds forwarding pointer
    *slot = hdr & ~std::uint64_t{1};
    return;
  }
  const std::size_t words = 1 + header_field_words(hdr);
  MPNJ_CHECK(old_alloc_ + words <= old_cur_ + old_words_,
             "old generation exhausted during collection; grow old_bytes");
  std::uint64_t* dst = old_alloc_;
  old_alloc_ += words;
  std::memcpy(dst, obj, words * kWord);
  if (cfg_.remset == RemsetMode::kCard) {
    // Sequential promotion fills the semispace contiguously from its (card
    // aligned) base, which is exactly the discipline the crossing map needs.
    cards_.record_object(static_cast<std::size_t>(dst - old_cur_), words);
  }
  const auto fwd = reinterpret_cast<std::uint64_t>(dst);
  obj[0] = fwd | 1u;
  *slot = fwd;
}

std::uint64_t* Heap::scan_object(std::uint64_t* obj) {
  const std::uint64_t hdr = obj[0];
  const std::size_t words = header_field_words(hdr);
  if (header_is_traced(hdr)) {
    for (std::size_t i = 0; i < words; i++) forward_slot(obj + 1 + i);
  }
  return obj + 1 + words;
}

void Heap::scan_range_seq(const ScanRange& r) {
  // Same contract as the parallel copier's range scan: parse objects from
  // r.parse, forward only the slots inside [lo, hi).
  std::uint64_t* p = r.parse;
  while (p < r.hi) {
    const std::uint64_t hdr = p[0];
    const std::size_t fields = header_field_words(hdr);
    std::uint64_t* obj_end = p + 1 + fields;
    if (header_is_traced(hdr)) {
      std::uint64_t* s = std::max(p + 1, r.lo);
      std::uint64_t* e = std::min(obj_end, r.hi);
      for (; s < e; s++) forward_slot(s);
    }
    p = obj_end;
  }
}

void Heap::drain_los_marks() {
  while (!los_mark_stack_.empty()) {
    std::uint64_t* obj = los_mark_stack_.back();
    los_mark_stack_.pop_back();
    const std::size_t n = header_field_words(obj[0]);
    for (std::size_t i = 0; i < n; i++) forward_slot(obj + 1 + i);
  }
}

std::vector<std::uint64_t*> Heap::gather_root_slots(
    std::span<Value> extra_roots, bool minor) {
  std::vector<std::uint64_t*> slots;
  slots.reserve(256);
  auto add_value = [&](Value* v) {
    slots.push_back(reinterpret_cast<std::uint64_t*>(v));
  };
  auto walk_chain = [&](void* head) {
    for (auto* f = static_cast<RootFrameHdr*>(head); f != nullptr;
         f = f->prev) {
      for (std::size_t i = 0; i < f->count; i++) add_value(&f->slots[i]);
    }
  };

  for (Value& v : extra_roots) add_value(&v);

  // Running procs' current root chains.
  for (int id = 0; id < rendezvous_.nproc(); id++) {
    if (cont::ExecContext* ex = rendezvous_.proc_exec(id)) {
      walk_chain(ex->root_head);
    }
  }

  // Suspended threads: every live un-fired continuation's chain, plus any
  // Value payload already delivered to a queued continuation.
  cont::for_each_core([&](cont::ContCore& core) {
    const auto st = core.state();
    if (st == cont::ContCore::State::kFired) return;
    walk_chain(core.root_head());
    if (core.slot_is_gc_ref()) slots.push_back(core.slot_ptr());
  });

  // Individually registered roots (values inside C++ containers).
  {
    arch::TasGuard guard(roots_lock_);
    for (GlobalRoot* r = global_roots_; r != nullptr; r = r->next_) {
      add_value(&r->value_);
    }
  }

  // List-mode minors additionally treat recorded old-to-young stores as
  // roots.  Only assignments into live old objects still matter; slots
  // inside the nursery belong to young objects the trace reaches anyway.
  // (Card-mode minors get the same information as parse ranges instead —
  // see gather_remset_ranges.)
  if (minor && cfg_.remset == RemsetMode::kList) {
    for (auto& ph : proc_heaps_) {
      for (std::uint64_t* slot : ph.store_list) {
        if (slot >= old_cur_ && slot < old_alloc_) slots.push_back(slot);
      }
    }
  }

  // One slot, one writer: the parallel copier claims each root exactly once,
  // so duplicates (repeated store-list entries above all) must go.
  std::sort(slots.begin(), slots.end());
  slots.erase(std::unique(slots.begin(), slots.end()), slots.end());
  return slots;
}

std::vector<ScanRange> Heap::gather_remset_ranges() {
  std::vector<ScanRange> ranges;
  pending_cards_.clear();
  if (cfg_.remset == RemsetMode::kCard) {
    {
      arch::TasGuard guard(card_lock_);
      pending_cards_.swap(global_dirty_cards_);
    }
    for (auto& ph : proc_heaps_) {
      pending_cards_.insert(pending_cards_.end(), ph.card_buf.begin(),
                            ph.card_buf.end());
      ph.card_buf.clear();
    }
    // Duplicates exist only via the mark() race; one scan per card.
    std::sort(pending_cards_.begin(), pending_cards_.end());
    pending_cards_.erase(
        std::unique(pending_cards_.begin(), pending_cards_.end()),
        pending_cards_.end());
    for (const std::uint32_t c : pending_cards_) {
      std::uint64_t* lo = old_cur_ + cards_.card_base_word(c);
      if (lo >= old_alloc_) continue;  // beyond the frontier: nothing to scan
      std::uint64_t* hi = std::min(lo + cards_.card_words(), old_alloc_);
      std::uint64_t* parse = old_cur_ + cards_.object_start(c);
      ranges.push_back(ScanRange{parse, lo, hi});
    }
  }
  // Dirty large objects are remembered ranges in both remset modes: the
  // store list never records LOS slots (an LOS store flips the object's
  // dirty flag instead).
  pending_los_.clear();
  los_.for_each_object([&](std::uint64_t* obj) {
    const LargeObjectSpace::Meta* m = LargeObjectSpace::meta_of(obj);
    if (m->dirty.load(std::memory_order_relaxed) == 0) return;
    pending_los_.push_back(obj);
    const std::uint64_t hdr = obj[0];
    if (!header_is_traced(hdr)) return;
    std::uint64_t* hi = obj + 1 + header_field_words(hdr);
    ranges.push_back(ScanRange{obj, obj + 1, hi});
  });
  return ranges;
}

std::uint64_t Heap::sequential_phase(std::span<const ScanRange> ranges,
                                     std::span<std::uint64_t* const> roots) {
  std::uint64_t* const start = old_alloc_;
  std::uint64_t* scan = old_alloc_;
  for (const ScanRange& r : ranges) scan_range_seq(r);
  for (std::uint64_t* slot : roots) forward_slot(slot);
  // Cheney scan; a major additionally drains the LOS mark stack against it
  // to a joint fixpoint (a promoted object can point at a large object and
  // vice versa).
  for (;;) {
    while (scan < old_alloc_) scan = scan_object(scan);
    if (los_mark_stack_.empty()) break;
    drain_los_marks();
  }
  return static_cast<std::uint64_t>(old_alloc_ - start);
}

std::uint64_t Heap::parallel_phase(std::span<const ScanRange> ranges,
                                   std::span<std::uint64_t* const> roots) {
  std::uint64_t* frontier = old_alloc_;
  ParallelCopier::PhaseSpaces in;
  in.from_lo = from_lo_;
  in.from_hi = from_hi_;
  in.frontier = &frontier;
  in.to_limit = old_cur_ + old_words_;
  in.roots = roots;
  in.ranges = ranges;
  if (cfg_.remset == RemsetMode::kCard) {
    in.cards = &cards_;
    in.card_base = old_cur_;
  }
  if (los_mark_phase_) in.los = &los_;
  const ParallelCopier::PhaseResult res = copier_.run_phase(in);
  old_alloc_ = frontier;
  MPNJ_METRIC_COUNT_ALWAYS(kGcParCollections, 1);
  MPNJ_METRIC_COUNT_ALWAYS(kGcLosMarked, res.los_marked);
  MPNJ_METRIC_COUNT(kGcParWorkers, static_cast<std::uint64_t>(res.workers));
  MPNJ_METRIC_COUNT(kGcParSteals, res.steals);
  MPNJ_METRIC_COUNT(kGcParOverflowPushes, res.overflow_pushes);
  MPNJ_METRIC_COUNT(kGcParPadWords, res.pad_words);
  MPNJ_METRIC_COUNT(kGcParTermRounds, res.term_rounds);
  MPNJ_METRIC_RECORD(kGcParSteals, res.steals);
  MPNJ_METRIC_RECORD(kGcParTermRounds, res.term_rounds);
  for (const std::uint64_t ww : res.worker_words) {
    (void)ww;  // compiled away with -DMPNJ_METRICS=OFF
    MPNJ_METRIC_RECORD(kGcParWorkerWords, ww);
  }
  return res.live_words;
}

void Heap::maybe_verify(const char* phase) {
  if (!cfg_.verify_after_phase) return;
  std::string err;
  if (!verify(&err)) {
    arch::panic("heap verify failed after %s phase: %s", phase, err.c_str());
  }
}

void Heap::do_collect(bool force_major, std::span<Value> extra_roots) {
  using clock = std::chrono::steady_clock;
  auto us_between = [](clock::time_point a, clock::time_point b) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(b - a).count());
  };
  const auto pause_start = clock::now();

  // --- minor: evacuate the nursery into the old generation ---
  from_lo_ = nursery_;
  from_hi_ = nursery_ + nursery_words_;
  const std::vector<ScanRange> ranges = gather_remset_ranges();
  const std::vector<std::uint64_t*> minor_roots =
      gather_root_slots(extra_roots, /*minor=*/true);
  std::uint64_t cards_scanned = 0;
  std::uint64_t card_scan_words = 0;
  for (const ScanRange& r : ranges) {
    if (r.lo >= old_cur_ && r.lo < old_cur_ + old_words_) {
      cards_scanned++;
      card_scan_words += static_cast<std::uint64_t>(r.hi - r.lo);
    }
  }
  const std::uint64_t minor_copied =
      cfg_.parallel_gc ? parallel_phase(ranges, minor_roots)
                       : sequential_phase(ranges, minor_roots);
  MPNJ_METRIC_COUNT_ALWAYS(kGcWordsCopiedMinor, minor_copied);
  MPNJ_METRIC_COUNT_ALWAYS(kGcCardsScanned, cards_scanned);
  MPNJ_METRIC_COUNT_ALWAYS(kGcCardScanWords, card_scan_words);
  if (cards_scanned != 0 || card_scan_words != 0) {
    accounting_.charge_card_scan(cards_scanned, card_scan_words);
  }
  std::uint64_t copied = minor_copied;

  // Reset the nursery: every chunk becomes free and every proc grabs anew.
  {
    arch::TasGuard guard(chunk_lock_);
    free_chunks_.clear();
    for (std::size_t i = num_chunks_; i > 0; i--) {
      free_chunks_.push_back(static_cast<std::uint32_t>(i - 1));
    }
  }
  for (auto& ph : proc_heaps_) {
    ph.alloc = nullptr;
    ph.limit = nullptr;
    ph.store_list.clear();
    ph.chunks_since_gc = 0;
  }
  // The nursery is empty: no old-to-young pointer survives, so the entire
  // remembered set resets.  pending_cards_ is the complete dirty set (every
  // clean->dirty transition queued its card), so clearing it clears all.
  if (cfg_.remset == RemsetMode::kCard) {
    for (const std::uint32_t c : pending_cards_) cards_.clear(c);
    pending_cards_.clear();
  }
  los_.clear_all_dirty();
  MPNJ_METRIC_COUNT_ALWAYS(kGcMinor, 1);
  maybe_verify("minor");
  const auto minor_end = clock::now();

  // --- major: copy the old generation into the other semispace ---
  // LOS pressure escalates to a major too: only a major's sweep frees runs.
  const bool los_pressure =
      static_cast<double>(los_.used_bytes()) >
      cfg_.los_pressure_fraction * static_cast<double>(cfg_.los_bytes);
  // Fuzz choice point: 1 forces a major (and therefore an LOS sweep) under
  // mutated schedules regardless of actual pressure.
  const bool need_major =
      force_major ||
      static_cast<double>(old_space_used_words()) >
          cfg_.major_fraction * static_cast<double>(old_words_) ||
      fuzz::pick(fuzz::Kind::kLosSweep, 2, los_pressure ? 1 : 0) == 1;
  if (need_major) {
    from_lo_ = old_cur_;
    from_hi_ = old_cur_ + old_words_;
    std::uint64_t* to = (old_cur_ == old_a_) ? old_b_ : old_a_;
    old_cur_ = to;
    old_alloc_ = to;
    los_mark_phase_ = true;
    const std::vector<std::uint64_t*> major_roots =
        gather_root_slots(extra_roots, /*minor=*/false);
    const std::uint64_t major_copied =
        cfg_.parallel_gc ? parallel_phase({}, major_roots)
                         : sequential_phase({}, major_roots);
    los_mark_phase_ = false;
    const std::size_t los_pages_before =
        los_.used_bytes() / LargeObjectSpace::kPageBytes;
    const LargeObjectSpace::SweepResult sw = los_.sweep();
    if (los_pages_before != 0) {
      accounting_.charge_los_sweep(los_pages_before);
    }
    MPNJ_METRIC_COUNT_ALWAYS(kGcLosSweeps, 1);
    MPNJ_METRIC_COUNT_ALWAYS(kGcLosBytesSwept, sw.bytes_freed);
    MPNJ_METRIC_COUNT_ALWAYS(kGcMajor, 1);
    MPNJ_METRIC_COUNT_ALWAYS(kGcWordsCopiedMajor, major_copied);
    copied += major_copied;
    maybe_verify("major");
  }

  accounting_.charge_gc(copied);
  from_lo_ = nullptr;
  from_hi_ = nullptr;
  MPNJ_METRIC_COUNT_ALWAYS(kGcWordsCopied, copied);

  // Wall-clock pause, not virtual time: the simulator charges its own model
  // of GC cost via charge_gc; this measures what the host actually paid.
  const auto pause_end = clock::now();
  const std::uint64_t minor_us = us_between(pause_start, minor_end);
  const std::uint64_t major_us =
      need_major ? us_between(minor_end, pause_end) : 0;
  const std::uint64_t pause_us = us_between(pause_start, pause_end);
  MPNJ_METRIC_COUNT_ALWAYS(kGcPauseUsTotal, pause_us);
  // Pause histograms are always-on (a latency SLO must survive
  // MPNJ_METRICS=0); the exact per-pause log is opt-in.
  MPNJ_METRIC_RECORD_ALWAYS(kGcPauseUs, pause_us);
  MPNJ_METRIC_RECORD_ALWAYS(kGcMinorPauseUs, minor_us);
  if (need_major) {
    MPNJ_METRIC_RECORD_ALWAYS(kGcMajorPauseUs, major_us);
  }
  if (cfg_.record_pauses) {
    arch::TasGuard guard(pause_lock_);
    if (pause_log_.size() < kMaxPauseSamples) {
      pause_log_.push_back(PauseSample{minor_us, major_us});
    }
  }
}

// ----- verification -----

namespace {

std::string describe_ptr(const void* p) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%p", p);
  return buf;
}

}  // namespace

bool Heap::verify(std::string* error) const {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  auto valid_value = [&](std::uint64_t bits) {
    if (bits == 0 || (bits & 1u) != 0) return true;  // nil or immediate
    if ((bits & 7u) != 0) return false;              // misaligned pointer
    auto* p = reinterpret_cast<std::uint64_t*>(bits);
    const bool young = p >= nursery_ && p < nursery_ + nursery_words_;
    const bool old = p >= old_cur_ && p < old_alloc_;
    return young || old || los_.is_object_start(p);
  };
  auto is_young = [&](std::uint64_t bits) {
    if (bits == 0 || (bits & 1u) != 0) return false;
    auto* p = reinterpret_cast<std::uint64_t*>(bits);
    return p >= nursery_ && p < nursery_ + nursery_words_;
  };
  const bool card_mode = cfg_.remset == RemsetMode::kCard;

  // Every object in the old generation must parse (parallel collections pad
  // unused block tails with untraced kBytes objects precisely so this walk
  // stays valid).
  const std::uint64_t* obj = old_cur_;
  while (obj < old_alloc_) {
    const std::uint64_t hdr = *obj;
    if ((hdr & 1u) != 0) {
      return fail("forwarding pointer outside a collection at " +
                  describe_ptr(obj));
    }
    const auto kind = static_cast<ObjKind>((hdr >> 1) & 0x7u);
    if (kind != ObjKind::kRecord && kind != ObjKind::kArray &&
        kind != ObjKind::kRef && kind != ObjKind::kBytes &&
        kind != ObjKind::kReal) {
      return fail("bad object kind at " + describe_ptr(obj));
    }
    const std::size_t words = header_field_words(hdr);
    if (obj + 1 + words > old_cur_ + old_words_) {
      return fail("object overruns the old generation at " +
                  describe_ptr(obj));
    }
    if (header_is_traced(hdr)) {
      for (std::size_t i = 0; i < words; i++) {
        if (!valid_value(obj[1 + i])) {
          return fail("bad field pointer in object at " + describe_ptr(obj));
        }
        // The card invariant: an old-to-young pointer whose card is clean
        // would be invisible to the next minor collection.
        if (card_mode && is_young(obj[1 + i])) {
          const std::size_t slot_off =
              static_cast<std::size_t>((obj + 1 + i) - old_cur_);
          if (!cards_.is_dirty(cards_.card_of(slot_off))) {
            return fail("old-to-young pointer on a clean card at slot " +
                        describe_ptr(obj + 1 + i));
          }
        }
      }
    }
    obj += 1 + words;
  }
  if (obj != old_alloc_) {
    return fail("old generation does not parse to its allocation frontier");
  }

  // Every live LOS object: well-formed meta, parseable header, valid fields,
  // and the dirty invariant (a young field requires the dirty flag — it is
  // the LOS equivalent of the card invariant above).
  bool los_ok = true;
  std::string los_err;
  los_.for_each_object([&](std::uint64_t* lobj) {
    if (!los_ok) return;
    const LargeObjectSpace::Meta* m = LargeObjectSpace::meta_of(lobj);
    if (!los_.is_object_start(lobj)) {
      los_ok = false;
      los_err = "LOS run with corrupt meta at " + describe_ptr(lobj);
      return;
    }
    const std::uint64_t hdr = lobj[0];
    if ((hdr & 1u) != 0) {
      los_ok = false;
      los_err = "forwarding pointer in an LOS header at " + describe_ptr(lobj);
      return;
    }
    const auto kind = static_cast<ObjKind>((hdr >> 1) & 0x7u);
    if (kind != ObjKind::kRecord && kind != ObjKind::kArray &&
        kind != ObjKind::kRef && kind != ObjKind::kBytes &&
        kind != ObjKind::kReal) {
      los_ok = false;
      los_err = "bad LOS object kind at " + describe_ptr(lobj);
      return;
    }
    const std::size_t words = header_field_words(hdr);
    if (1 + words != m->obj_words) {
      los_ok = false;
      los_err = "LOS header disagrees with run meta at " + describe_ptr(lobj);
      return;
    }
    if ((LargeObjectSpace::kMetaWords + 1 + words) * kWord >
        std::size_t{m->pages} * LargeObjectSpace::kPageBytes) {
      los_ok = false;
      los_err = "LOS object overruns its page run at " + describe_ptr(lobj);
      return;
    }
    if (header_is_traced(hdr)) {
      const bool dirty = m->dirty.load(std::memory_order_relaxed) != 0;
      for (std::size_t i = 0; i < words; i++) {
        if (!valid_value(lobj[1 + i])) {
          los_ok = false;
          los_err = "bad field pointer in LOS object at " + describe_ptr(lobj);
          return;
        }
        if (is_young(lobj[1 + i]) && !dirty) {
          los_ok = false;
          los_err = "young pointer in a clean LOS object at " +
                    describe_ptr(lobj);
          return;
        }
      }
    }
  });
  if (!los_ok) return fail(los_err);

  // Registered roots must hold valid values.
  for (GlobalRoot* r = global_roots_; r != nullptr; r = r->next_) {
    if (!valid_value(r->value_.raw_bits())) {
      return fail("GlobalRoot holds an invalid value");
    }
  }
  return true;
}

// ----- global roots -----

void Heap::register_global_root(GlobalRoot* root) {
  arch::TasGuard guard(roots_lock_);
  root->prev_ = nullptr;
  root->next_ = global_roots_;
  if (global_roots_ != nullptr) global_roots_->prev_ = root;
  global_roots_ = root;
}

void Heap::unregister_global_root(GlobalRoot* root) {
  arch::TasGuard guard(roots_lock_);
  if (root->prev_ != nullptr) {
    root->prev_->next_ = root->next_;
  } else {
    global_roots_ = root->next_;
  }
  if (root->next_ != nullptr) root->next_->prev_ = root->prev_;
  root->prev_ = nullptr;
  root->next_ = nullptr;
}

// ----- GlobalRoot -----

GlobalRoot::GlobalRoot(Heap& heap, Value v) : heap_(&heap), value_(v) {
  heap_->register_global_root(this);
}

GlobalRoot::~GlobalRoot() {
  if (heap_ != nullptr) heap_->unregister_global_root(this);
}

GlobalRoot::GlobalRoot(GlobalRoot&& other) noexcept {
  steal_links(std::move(other));
}

GlobalRoot& GlobalRoot::operator=(GlobalRoot&& other) noexcept {
  if (this == &other) return *this;
  if (heap_ != nullptr) heap_->unregister_global_root(this);
  steal_links(std::move(other));
  return *this;
}

void GlobalRoot::steal_links(GlobalRoot&& other) noexcept {
  heap_ = other.heap_;
  value_ = other.value_;
  if (heap_ != nullptr) {
    // Replace `other` with `this` in the registry under the lock.
    heap_->unregister_global_root(&other);
    heap_->register_global_root(this);
    other.heap_ = nullptr;
  }
}

}  // namespace mp::gc
