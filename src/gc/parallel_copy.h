#pragma once

// Parallel stop-the-world copying (the heap's answer to the paper's main
// scalability limit: §5 performs the whole collection on one proc while the
// others idle at the rendezvous).  Once the world is stopped, every proc the
// platform routes into worker_cycle() becomes a collection worker:
//
//   - Root slots are enumerated sequentially by the collector, then claimed
//     by workers in batches through an atomic cursor.
//   - Each worker copies survivors into a private alloc block carved from
//     the shared to-space frontier (one fetch_add per block, no per-object
//     synchronization) and Cheney-scans its own block in place.
//   - Forwarding races on a shared object are settled by a single CAS on the
//     from-space header (reserve locally, CAS the forwarding word, un-bump
//     on loss), so every object is copied exactly once and to-space has no
//     holes beyond explicit pads.
//   - When a block fills, its unscanned tail is published to a shared
//     overflow stack that idle workers steal from; the retired block's
//     unused words are padded so the old generation still parses.
//   - Termination is a two-phase detector: a worker that finds all entered
//     workers idle, the overflow stack empty, and the publish sequence
//     unchanged re-verifies the whole condition once more (a "round") before
//     declaring the phase done.
//
// The copier is observably equivalent to the sequential collector: the set
// of copied objects is the reachable set either way, only the to-space order
// differs.  One collection cycle may run several phases (minor, then major);
// co-opted procs stay inside worker_cycle() across phases until end_cycle().

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "arch/cacheline.h"
#include "arch/tas.h"

namespace mp::gc {

class ParallelCopier {
 public:
  static constexpr int kMaxWorkers = 64;

  explicit ParallelCopier(std::size_t block_words);
  ParallelCopier(const ParallelCopier&) = delete;
  ParallelCopier& operator=(const ParallelCopier&) = delete;

  struct PhaseResult {
    std::uint64_t live_words = 0;  // copied survivor words (pads excluded)
    std::uint64_t pad_words = 0;   // to-space words lost to block-tail pads
    std::uint64_t steals = 0;      // overflow regions stolen
    std::uint64_t overflow_pushes = 0;
    std::uint64_t term_rounds = 0;  // termination-detector confirm rounds
    int workers = 0;                // procs that participated in the phase
    std::vector<std::uint64_t> worker_words;  // per-worker copy balance
  };

  // Collector side.  begin_cycle() must be called before the worker fn is
  // registered with the platform (co-opted procs may enter worker_cycle()
  // immediately); end_cycle() releases them and must precede resume_world().
  void begin_cycle();
  void end_cycle();

  // Evacuate every object in [from_lo, from_hi) reachable from *root_slots
  // into to-space starting at **frontier (bounded by to_limit).  The calling
  // proc acts as a worker itself; procs already inside worker_cycle() join.
  // On return **frontier is the new allocation frontier and the to-space
  // region below it parses (gaps are pad objects).  Root slots must be
  // unique: each is claimed and rewritten by exactly one worker.
  PhaseResult run_phase(std::uint64_t* from_lo, std::uint64_t* from_hi,
                        std::uint64_t** frontier, std::uint64_t* to_limit,
                        std::span<std::uint64_t* const> root_slots);

  // Body of the WorkerFn the heap hands to Rendezvous::stop_world: loops
  // over the cycle's phases, working each one, until end_cycle().
  void worker_cycle();

 private:
  struct Region {
    std::uint64_t* lo;
    std::uint64_t* hi;
  };

  // Per-worker copy state; lives on the worker's stack during a phase.
  struct Worker {
    std::uint64_t* block = nullptr;  // current alloc block base (null: none)
    std::uint64_t* scan = nullptr;   // Cheney scan pointer within the block
    std::uint64_t* alloc = nullptr;  // bump pointer within the block
    std::uint64_t* limit = nullptr;  // end of the carved block
    std::uint64_t copied = 0;        // live words copied (pads excluded)
    std::uint64_t flushed = 0;       // portion of `copied` already published
    std::uint64_t steals = 0;
    std::uint64_t pushes = 0;
    std::uint64_t pads = 0;
  };

  void run_worker(std::uint64_t myseq);
  void claim_roots(Worker& w);
  void forward_slot(Worker& w, std::uint64_t* slot);
  void drain_own(Worker& w);
  void scan_fields(Worker& w, std::uint64_t* obj);
  void scan_region(Worker& w, Region r);
  std::uint64_t* reserve(Worker& w, std::size_t words);
  void retire_block(Worker& w);
  bool try_steal(Region* out);
  void publish(Worker& w, Region r);
  bool overflow_empty();
  // Spin until work appears (true; idle_ already left) or the phase
  // terminates (false; this worker may be the one that declares it).
  bool wait_for_work(Worker& w, int wid);
  void flush_stats(Worker& w, int wid);

  const std::size_t block_words_;

  // Cycle gate: worker_cycle() spins on these between phases.
  std::atomic<bool> cycle_open_{false};
  // Odd while a phase is accepting workers, even between phases; workers
  // remember the last phase they worked so one proc enters each phase once.
  std::atomic<std::uint64_t> phase_seq_{0};

  // Phase state (reset by run_phase before the phase opens).
  std::uint64_t* from_lo_ = nullptr;
  std::uint64_t* from_hi_ = nullptr;
  std::uint64_t* to_base_ = nullptr;
  std::size_t to_words_ = 0;
  std::atomic<std::size_t> frontier_off_{0};
  std::span<std::uint64_t* const> root_slots_;
  std::atomic<std::size_t> root_cursor_{0};

  std::atomic<int> entered_{0};
  std::atomic<int> idle_{0};
  std::atomic<bool> done_{false};
  // Workers currently inside run_worker; the collector waits for zero after
  // closing a phase so per-phase state is never reset under a straggler.
  std::atomic<int> active_{0};

  arch::TasWord overflow_lock_;
  std::vector<Region> overflow_;
  // Mirror of overflow_.size(), so idle workers can poll for work without
  // taking the lock.
  std::atomic<std::size_t> overflow_size_{0};
  std::atomic<std::uint64_t> publish_seq_{0};

  // Phase totals (flushed by workers before going idle, so they are complete
  // the moment the termination detector fires).
  std::atomic<std::uint64_t> live_words_{0};
  std::atomic<std::uint64_t> pad_words_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> pushes_{0};
  std::atomic<std::uint64_t> term_rounds_{0};
  struct alignas(arch::kCacheLine) PaddedWord {
    std::atomic<std::uint64_t> v{0};
  };
  PaddedWord worker_words_[kMaxWorkers];
};

}  // namespace mp::gc
