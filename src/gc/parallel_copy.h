#pragma once

// Parallel stop-the-world copying (the heap's answer to the paper's main
// scalability limit: §5 performs the whole collection on one proc while the
// others idle at the rendezvous).  Once the world is stopped, every proc the
// platform routes into worker_cycle() becomes a collection worker:
//
//   - Root slots are enumerated sequentially by the collector, then claimed
//     by workers in batches through an atomic cursor.  Remembered parse
//     ranges (dirty cards, dirty large objects) are claimed the same way
//     through a second cursor: a worker parses the range and forwards only
//     the slots inside it, so the one-writer-per-slot invariant holds even
//     when one object spans several cards.
//   - Each worker copies survivors into a private alloc block carved from
//     the shared to-space frontier (one fetch_add per block, no per-object
//     synchronization) and Cheney-scans its own block in place.  In card
//     remset mode blocks are rounded to whole cards so each worker maintains
//     the crossing map for its own cards without racing.
//   - Forwarding races on a shared object are settled by a single CAS on the
//     from-space header (reserve locally, CAS the forwarding word, un-bump
//     on loss), so every object is copied exactly once and to-space has no
//     holes beyond explicit pads.
//   - A major phase marks the large-object space in passing: the first
//     worker to reach an LOS object wins its mark CAS (in the LOS meta, not
//     the object header — LOS objects are never forwarded) and scans its
//     fields from a private pending stack.
//   - When a block fills, its unscanned tail is published to a shared
//     overflow stack that idle workers steal from; the retired block's
//     unused words are padded so the old generation still parses.
//   - Termination is a two-phase detector: a worker that finds all entered
//     workers idle, the overflow stack empty, and the publish sequence
//     unchanged re-verifies the whole condition once more (a "round") before
//     declaring the phase done.
//
// The copier is observably equivalent to the sequential collector: the set
// of copied objects is the reachable set either way, only the to-space order
// differs.  One collection cycle may run several phases (minor, then major);
// co-opted procs stay inside worker_cycle() across phases until end_cycle().

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "arch/cacheline.h"
#include "arch/tas.h"
#include "gc/card_table.h"
#include "gc/los.h"

namespace mp::gc {

// A remembered region to re-parse during a minor phase: objects are walked
// from `parse` (the crossing-map start for a card, the object header for a
// dirty LOS object) and only slots with addresses in [lo, hi) are forwarded.
struct ScanRange {
  std::uint64_t* parse;
  std::uint64_t* lo;
  std::uint64_t* hi;
};

class ParallelCopier {
 public:
  static constexpr int kMaxWorkers = 64;

  explicit ParallelCopier(std::size_t block_words);
  ParallelCopier(const ParallelCopier&) = delete;
  ParallelCopier& operator=(const ParallelCopier&) = delete;

  struct PhaseResult {
    std::uint64_t live_words = 0;  // copied survivor words (pads excluded)
    std::uint64_t pad_words = 0;   // to-space words lost to block-tail pads
    std::uint64_t steals = 0;      // overflow regions stolen
    std::uint64_t overflow_pushes = 0;
    std::uint64_t term_rounds = 0;  // termination-detector confirm rounds
    std::uint64_t range_words = 0;  // words covered by claimed scan ranges
    std::uint64_t los_marked = 0;   // LOS objects marked live (major phase)
    int workers = 0;                // procs that participated in the phase
    std::vector<std::uint64_t> worker_words;  // per-worker copy balance
  };

  // Everything one phase evacuates and maintains.  `roots` must be unique
  // (each slot is claimed and rewritten by exactly one worker); `ranges`
  // may overlap objects but never slots (the [lo, hi) clamp).  With `cards`
  // set the copier maintains the crossing map for every object and pad it
  // writes, with offsets relative to `card_base`.  With `los` set the phase
  // is a major: pointers into the LOS are marked and their fields scanned.
  struct PhaseSpaces {
    std::uint64_t* from_lo = nullptr;
    std::uint64_t* from_hi = nullptr;
    std::uint64_t** frontier = nullptr;
    std::uint64_t* to_limit = nullptr;
    std::span<std::uint64_t* const> roots;
    std::span<const ScanRange> ranges;
    CardTable* cards = nullptr;
    std::uint64_t* card_base = nullptr;
    LargeObjectSpace* los = nullptr;
  };

  // Collector side.  begin_cycle() must be called before the worker fn is
  // registered with the platform (co-opted procs may enter worker_cycle()
  // immediately); end_cycle() releases them and must precede resume_world().
  void begin_cycle();
  void end_cycle();

  // Evacuate every object in [from_lo, from_hi) reachable from the roots and
  // ranges into to-space starting at **frontier (bounded by to_limit).  The
  // calling proc acts as a worker itself; procs already inside
  // worker_cycle() join.  On return **frontier is the new allocation
  // frontier and the to-space region below it parses (gaps are pad objects).
  PhaseResult run_phase(const PhaseSpaces& in);

  // Body of the WorkerFn the heap hands to Rendezvous::stop_world: loops
  // over the cycle's phases, working each one, until end_cycle().
  void worker_cycle();

 private:
  struct Region {
    std::uint64_t* lo;
    std::uint64_t* hi;
  };

  // Per-worker copy state; lives on the worker's stack during a phase.
  struct Worker {
    std::uint64_t* block = nullptr;  // current alloc block base (null: none)
    std::uint64_t* scan = nullptr;   // Cheney scan pointer within the block
    std::uint64_t* alloc = nullptr;  // bump pointer within the block
    std::uint64_t* limit = nullptr;  // end of the carved block
    std::uint64_t copied = 0;        // live words copied (pads excluded)
    std::uint64_t flushed = 0;       // portion of `copied` already published
    std::uint64_t steals = 0;
    std::uint64_t pushes = 0;
    std::uint64_t pads = 0;
    std::uint64_t range_words = 0;   // scan-range words parsed
    std::uint64_t los_marked = 0;    // LOS mark CASes won
    // Newly marked traced LOS objects whose fields this worker owes a scan.
    std::vector<std::uint64_t*> los_pending;
  };

  void run_worker(std::uint64_t myseq);
  void claim_roots(Worker& w);
  void claim_ranges(Worker& w);
  void forward_slot(Worker& w, std::uint64_t* slot);
  void drain_own(Worker& w);
  // drain_own plus the worker's pending LOS scans, to a joint fixpoint.
  void drain_all(Worker& w);
  void scan_fields(Worker& w, std::uint64_t* obj);
  void scan_region(Worker& w, Region r);
  void scan_range(Worker& w, const ScanRange& r);
  std::uint64_t* reserve(Worker& w, std::size_t words);
  void retire_block(Worker& w);
  bool try_steal(Region* out);
  void publish(Worker& w, Region r);
  bool overflow_empty();
  // Spin until work appears (true; idle_ already left) or the phase
  // terminates (false; this worker may be the one that declares it).
  bool wait_for_work(Worker& w, int wid);
  void flush_stats(Worker& w, int wid);

  const std::size_t block_words_;

  // Cycle gate: worker_cycle() spins on these between phases.
  std::atomic<bool> cycle_open_{false};
  // Odd while a phase is accepting workers, even between phases; workers
  // remember the last phase they worked so one proc enters each phase once.
  std::atomic<std::uint64_t> phase_seq_{0};

  // Phase state (reset by run_phase before the phase opens).
  std::uint64_t* from_lo_ = nullptr;
  std::uint64_t* from_hi_ = nullptr;
  std::uint64_t* to_base_ = nullptr;
  std::size_t to_words_ = 0;
  std::atomic<std::size_t> frontier_off_{0};
  std::span<std::uint64_t* const> root_slots_;
  std::atomic<std::size_t> root_cursor_{0};
  std::span<const ScanRange> ranges_;
  std::atomic<std::size_t> range_cursor_{0};
  CardTable* cards_ = nullptr;
  std::uint64_t* card_base_ = nullptr;
  std::size_t card_words_ = 0;  // 0: no card alignment / crossing map
  LargeObjectSpace* los_ = nullptr;

  std::atomic<int> entered_{0};
  std::atomic<int> idle_{0};
  std::atomic<bool> done_{false};
  // Workers currently inside run_worker; the collector waits for zero after
  // closing a phase so per-phase state is never reset under a straggler.
  std::atomic<int> active_{0};

  arch::TasWord overflow_lock_;
  std::vector<Region> overflow_;
  // Mirror of overflow_.size(), so idle workers can poll for work without
  // taking the lock.
  std::atomic<std::size_t> overflow_size_{0};
  std::atomic<std::uint64_t> publish_seq_{0};

  // Phase totals (flushed by workers before going idle, so they are complete
  // the moment the termination detector fires).
  std::atomic<std::uint64_t> live_words_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> pushes_{0};
  std::atomic<std::uint64_t> term_rounds_{0};
  std::atomic<std::uint64_t> range_words_{0};
  std::atomic<std::uint64_t> los_marked_{0};
  struct alignas(arch::kCacheLine) PaddedWord {
    std::atomic<std::uint64_t> v{0};
  };
  PaddedWord worker_words_[kMaxWorkers];
};

}  // namespace mp::gc
