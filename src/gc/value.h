#pragma once

#include <cstddef>
#include <cstdint>

#include "arch/panic.h"
#include "cont/cont.h"

namespace mp::gc {

// Heap object kinds.  Records and tuples are immutable (no write barrier
// needed, matching ML); refs and arrays are mutable and their updates go
// through Heap::store, whose inline fast path is the write plus one nursery
// range check — only out-of-nursery stores take the out-of-line remembered-
// set record (a dirty card, a store-list entry, or an LOS dirty flag; see
// heap.h).
enum class ObjKind : std::uint8_t {
  kRecord = 0,  // immutable fields
  kArray = 1,   // mutable Value elements
  kRef = 2,     // mutable single cell
  kBytes = 3,   // raw untraced payload (strings)
  kReal = 4,    // boxed 64-bit float (SML/NJ boxes reals; length is 8 bytes)
};

// A tagged ML-style value: either a 63-bit immediate integer (low bit set)
// or a pointer to a heap object (8-byte aligned, low bits clear).  The
// default value is nil (a null pointer), distinct from int 0.
class Value {
 public:
  constexpr Value() noexcept : bits_(0) {}

  static constexpr Value nil() noexcept { return Value(); }

  static Value from_int(std::int64_t i) noexcept {
    Value v;
    v.bits_ = (static_cast<std::uint64_t>(i) << 1) | 1u;
    return v;
  }
  static Value from_bool(bool b) noexcept { return from_int(b ? 1 : 0); }

  bool is_nil() const noexcept { return bits_ == 0; }
  bool is_int() const noexcept { return (bits_ & 1u) != 0; }
  bool is_ptr() const noexcept { return bits_ != 0 && (bits_ & 1u) == 0; }

  std::int64_t as_int() const noexcept {
    MPNJ_CHECK(is_int(), "Value is not an integer");
    return static_cast<std::int64_t>(bits_) >> 1;
  }
  bool as_bool() const noexcept { return as_int() != 0; }

  // --- heap object accessors (is_ptr() case) ---

  ObjKind kind() const noexcept {
    return static_cast<ObjKind>((header() >> 1) & 0x7u);
  }
  // Number of Value fields (records/arrays) or payload bytes (kBytes).
  std::size_t length() const noexcept {
    return static_cast<std::size_t>(header() >> 4);
  }

  Value field(std::size_t i) const noexcept {
    MPNJ_CHECK(is_ptr(), "field access on a non-pointer Value");
    MPNJ_CHECK(i < length(), "Value field index out of range");
    Value v;
    v.bits_ = obj()[1 + i];
    return v;
  }

  const char* bytes() const noexcept {
    MPNJ_CHECK(is_ptr() && kind() == ObjKind::kBytes, "not a bytes object");
    return reinterpret_cast<const char*>(obj() + 1);
  }

  double as_real() const noexcept {
    MPNJ_CHECK(is_ptr() && kind() == ObjKind::kReal, "not a boxed real");
    double d;
    __builtin_memcpy(&d, obj() + 1, sizeof(d));
    return d;
  }

  friend bool operator==(Value a, Value b) noexcept { return a.bits_ == b.bits_; }

  std::uint64_t raw_bits() const noexcept { return bits_; }
  static Value from_raw_bits(std::uint64_t bits) noexcept {
    Value v;
    v.bits_ = bits;
    return v;
  }

 private:
  friend class Heap;
  friend class HeapTestPeer;

  // Object layout: [header][field 0]...[field n-1].
  // Header encoding: (length << 4) | (kind << 1) | 0; a header with the low
  // bit set is a forwarding pointer installed during collection.
  std::uint64_t* obj() const noexcept {
    return reinterpret_cast<std::uint64_t*>(bits_);
  }
  std::uint64_t header() const noexcept { return obj()[0]; }

  std::uint64_t bits_;
};

static_assert(sizeof(Value) == 8);

}  // namespace mp::gc

namespace mp::cont {
// Continuation payload slots holding Values are traced by the collector.
template <>
struct is_gc_traced<gc::Value> : std::true_type {};
}  // namespace mp::cont
