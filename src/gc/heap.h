#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string_view>
#include <vector>

#include "arch/cacheline.h"
#include "arch/tas.h"
#include "gc/hooks.h"
#include "gc/parallel_copy.h"
#include "gc/roots.h"
#include "gc/value.h"
#include "metrics/metrics.h"

namespace mp::gc {

// Sizing of the two-generation heap.  The nursery is the shared "allocation
// region" of the paper, divided into chunks that procs claim privately so
// the allocation fast path needs no synchronization; a proc whose share is
// exhausted "steals" spare chunks other procs have not claimed.  Survivors
// are copied into the old generation; the old generation itself is collected
// (copied between two semispaces) when it passes `major_fraction`.
//
// Construction is named-setter style and validated: Heap panics with a
// precise message on a degenerate configuration (zero-chunk nursery,
// non-power-of-two region sizes) instead of silently misbehaving:
//
//   gc::HeapConfig cfg;
//   cfg.with_nursery_bytes(1u << 20).with_chunks_per_proc(4);
struct HeapConfig {
  std::size_t nursery_bytes = 1u << 20;  // power of two
  // The nursery is split into nproc * chunks_per_proc chunks; one chunk is a
  // proc's initial "share" granularity.
  std::size_t chunks_per_proc = 4;
  std::size_t old_bytes = 32u << 20;  // per semispace; power of two
  double major_fraction = 0.75;
  // Run collections with every rendezvoused proc as a copy worker (see
  // gc/parallel_copy.h).  Defaults from the MPNJ_GC_PARALLEL environment
  // variable: unset or any value but "0" enables, "0" restores the paper's
  // sequential collection.
  bool parallel_gc = default_parallel_gc();
  // To-space granule each parallel worker carves per frontier fetch_add;
  // power of two, at least 64 words.
  std::size_t par_block_words = 1024;

  HeapConfig& with_nursery_bytes(std::size_t v) {
    nursery_bytes = v;
    return *this;
  }
  HeapConfig& with_chunks_per_proc(std::size_t v) {
    chunks_per_proc = v;
    return *this;
  }
  HeapConfig& with_old_bytes(std::size_t v) {
    old_bytes = v;
    return *this;
  }
  HeapConfig& with_major_fraction(double v) {
    major_fraction = v;
    return *this;
  }
  HeapConfig& with_parallel_gc(bool v) {
    parallel_gc = v;
    return *this;
  }
  HeapConfig& with_par_block_words(std::size_t v) {
    par_block_words = v;
    return *this;
  }

  // Panics with a clear message on any degenerate setting; called by Heap's
  // constructor, callable directly by tests.
  void validate() const;

  static bool default_parallel_gc();
};

// Aggregated heap statistics.  A thin shim over mp::metrics: the counters
// live in the process-wide metrics registry (always-on tier, so they survive
// MPNJ_METRICS=0 builds and env settings) and stats() returns the delta
// since this Heap was constructed.
struct HeapStats {
  std::uint64_t words_allocated = 0;
  std::uint64_t allocations = 0;
  std::uint64_t minor_gcs = 0;
  std::uint64_t major_gcs = 0;
  std::uint64_t words_copied_minor = 0;
  std::uint64_t words_copied_major = 0;
  std::uint64_t chunk_grabs = 0;
  std::uint64_t chunk_steals = 0;  // grabs beyond a proc's fair share
  std::uint64_t stores_recorded = 0;
  std::uint64_t large_allocs = 0;
};

// The multiprocessor-adapted SML/NJ heap (paper section 5): per-proc bump
// allocation into a shared nursery, stop-the-world clean-point rendezvous,
// and a two-generation copying collection.  With parallel_gc set (the
// default) every rendezvoused proc joins the copy as a worker through
// gc::ParallelCopier; with it clear the requesting proc collects alone while
// the others idle — the paper's original behaviour, and its main scalability
// bottleneck.
//
// Client discipline: every Value live across a runtime call (allocation,
// lock, thread operation, explicit safe point) must be held in a Roots frame
// or GlobalRoot; collections move objects and update only registered roots.
class Heap {
 public:
  Heap(const HeapConfig& config, Rendezvous& rendezvous,
       Accounting& accounting);
  ~Heap();
  Heap(const Heap&) = delete;
  Heap& operator=(const Heap&) = delete;

  // --- allocation (must be called on a proc) ---
  Value alloc_record(std::span<const Value> fields);
  Value alloc_record(std::initializer_list<Value> fields) {
    return alloc_record(std::span<const Value>(fields.begin(), fields.size()));
  }
  Value alloc_array(std::size_t n, Value init);
  Value alloc_ref(Value init);
  Value alloc_bytes(std::string_view data);
  Value alloc_real(double d);

  // Convenience: cons cell (record of two) and list helpers used by the
  // workloads.
  Value cons(Value head, Value tail) { return alloc_record({head, tail}); }

  // --- mutation (write barrier: records the store for the minor GC) ---
  void store(Value obj, std::size_t index, Value v);
  void store_ref(Value ref, Value v) { store(ref, 0, v); }
  static Value load_ref(Value ref) { return ref.field(0); }

  // --- collection ---
  // Force a collection now (tests / benchmarks); world-stops like any GC.
  void collect_now(bool force_major = false);

  // Statistics since this Heap's construction (metrics registry delta).
  HeapStats stats() const;
  std::size_t old_space_used_words() const;
  std::size_t nursery_free_chunks() const;

  const HeapConfig& config() const { return cfg_; }

  // --- introspection for tests ---
  bool in_nursery(Value v) const;
  bool in_old_space(Value v) const;

  // Heap consistency check (debugging aid): walks every object in the old
  // generation and every registered root, validating headers, lengths and
  // pointer targets.  Returns false and fills `error` on the first
  // inconsistency.  Call with the world quiescent (tests, or right after a
  // collection).
  bool verify(std::string* error) const;

 private:
  friend class GlobalRoot;

  struct alignas(arch::kCacheLine) ProcHeap {
    std::uint64_t* alloc = nullptr;
    std::uint64_t* limit = nullptr;
    std::vector<std::uint64_t*> store_list;
    std::uint64_t chunks_since_gc = 0;
  };

  std::uint64_t* alloc_raw(ObjKind kind, std::size_t field_words,
                           std::size_t length_for_header,
                           std::span<Value> rooted_args);
  bool grab_chunk(ProcHeap& ph);
  std::uint64_t* alloc_large(std::size_t words);
  void run_gc_cycle(bool force_major, std::span<Value> rooted_args);
  void stop_and_collect(bool force_major);
  void join_in_flight_collection();
  void do_collect(bool force_major, std::span<Value> extra_roots);
  // One copy phase (minor or major) over [from_lo_, from_hi_); returns the
  // live words copied.  The sequential variant is the paper's collector; the
  // parallel variant drives gc::ParallelCopier.
  std::uint64_t sequential_phase(std::span<Value> extra_roots, bool minor);
  std::uint64_t parallel_phase(std::span<Value> extra_roots, bool minor);
  std::vector<std::uint64_t*> gather_root_slots(std::span<Value> extra_roots,
                                                bool minor);
  void forward_slot(std::uint64_t* slot);
  std::uint64_t* scan_object(std::uint64_t* obj);
  void register_global_root(GlobalRoot* root);
  void unregister_global_root(GlobalRoot* root);

  HeapConfig cfg_;
  Rendezvous& rendezvous_;
  Accounting& accounting_;
  ParallelCopier copier_;
  // Metrics registry totals at construction; stats() subtracts these so each
  // Heap reports only its own activity.
  metrics::Snapshot baseline_;

  // Nursery.
  std::uint64_t* nursery_ = nullptr;
  std::size_t nursery_words_ = 0;
  std::size_t chunk_words_ = 0;
  std::size_t num_chunks_ = 0;
  std::vector<std::uint32_t> free_chunks_;  // stack of free chunk indices
  arch::TasWord chunk_lock_;

  // Old generation semispaces.
  std::uint64_t* old_a_ = nullptr;
  std::uint64_t* old_b_ = nullptr;
  std::size_t old_words_ = 0;
  std::uint64_t* old_cur_ = nullptr;    // active semispace base
  std::uint64_t* old_alloc_ = nullptr;  // bump pointer in active semispace
  arch::TasWord old_lock_;  // large allocations only

  std::vector<ProcHeap> proc_heaps_;

  // Collection coordination.
  std::atomic<bool> gc_in_progress_{false};

  // During a collection: the range being evacuated.
  std::uint64_t* from_lo_ = nullptr;
  std::uint64_t* from_hi_ = nullptr;

  // Global root list.
  GlobalRoot* global_roots_ = nullptr;
  arch::TasWord roots_lock_;
};

}  // namespace mp::gc
