#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string_view>
#include <vector>

#include "arch/cacheline.h"
#include "arch/tas.h"
#include "gc/card_table.h"
#include "gc/hooks.h"
#include "gc/los.h"
#include "gc/parallel_copy.h"
#include "gc/roots.h"
#include "gc/value.h"
#include "metrics/metrics.h"

namespace mp::gc {

// How the heap remembers old-to-young pointers for minor collections.
//
//   kCard  card-marking remembered set (gc/card_table.h): stores dirty a
//          per-card byte, minor collections re-scan dirty cards.  Pause work
//          is bounded by distinct written locations, not write count.
//   kList  the paper-faithful SML/NJ store list: every store into the old
//          generation appends the slot address; minor collections sort,
//          deduplicate and forward the whole list.  Kept as the ablation
//          baseline (MPNJ_GC_REMSET=list).
enum class RemsetMode : std::uint8_t { kCard = 0, kList = 1 };

// Sizing of the two-generation heap.  The nursery is the shared "allocation
// region" of the paper, divided into chunks that procs claim privately so
// the allocation fast path needs no synchronization; a proc whose share is
// exhausted "steals" spare chunks other procs have not claimed.  Survivors
// are copied into the old generation; the old generation itself is collected
// (copied between two semispaces) when it passes `major_fraction`.  Objects
// at or above `los_threshold_bytes` (and anything too big for a nursery
// chunk) go to the page-granular large-object space instead and are
// mark-swept, never copied.
//
// Construction is named-setter style and validated: Heap panics with a
// precise message on a degenerate configuration (zero-chunk nursery,
// non-power-of-two region sizes) instead of silently misbehaving:
//
//   gc::HeapConfig cfg;
//   cfg.with_nursery_bytes(1u << 20).with_chunks_per_proc(4);
struct HeapConfig {
  std::size_t nursery_bytes = 1u << 20;  // power of two
  // The nursery is split into nproc * chunks_per_proc chunks; one chunk is a
  // proc's initial "share" granularity.
  std::size_t chunks_per_proc = 4;
  std::size_t old_bytes = 32u << 20;  // per semispace; power of two
  double major_fraction = 0.75;
  // Run collections with every rendezvoused proc as a copy worker (see
  // gc/parallel_copy.h).  Defaults from the MPNJ_GC_PARALLEL environment
  // variable: unset or any value but "0" enables, "0" restores the paper's
  // sequential collection.
  bool parallel_gc = default_parallel_gc();
  // To-space granule each parallel worker carves per frontier fetch_add;
  // power of two, at least 64 words.  In card remset mode blocks are rounded
  // up to whole cards so each card's crossing-map entry has one writer, so
  // card_bytes must not exceed par_block_words * 8.
  std::size_t par_block_words = 1024;

  // Remembered-set mode; defaults from MPNJ_GC_REMSET ("list" restores the
  // paper's store list, anything else selects the card table).
  RemsetMode remset = default_remset();
  // Card granularity (bytes of old generation per dirty byte); power of two,
  // >= 64, <= par_block_words * 8 and <= old_bytes.
  std::size_t card_bytes = 512;
  // Allocations of at least this many bytes (header included) go to the
  // large-object space; must be >= card_bytes so LOS-bound objects could
  // never straddle cheaper card handling.
  std::size_t los_threshold_bytes = 4096;
  // Large-object arena reservation (MAP_NORESERVE: only touched pages cost
  // memory); multiple of the 4 KiB page.
  std::size_t los_bytes = 64u << 20;
  // Fraction of the LOS arena in use that escalates the next collection to a
  // major (which sweeps the LOS), in (0, 1].
  double los_pressure_fraction = 0.75;

  // Record an exact {minor_us, major_us} sample per collection (bounded
  // ring; see Heap::pause_log).  The log2 pause histograms are always on but
  // too coarse for a p99.9 SLO claim; benches opt into the exact log.
  bool record_pauses = false;
  // Re-verify heap consistency after every collection phase.  Defaults on in
  // debug builds (catching card-table / LOS / parse corruption at the phase
  // that caused it), off under NDEBUG.
  bool verify_after_phase = default_verify_after_phase();

  HeapConfig& with_nursery_bytes(std::size_t v) {
    nursery_bytes = v;
    return *this;
  }
  HeapConfig& with_chunks_per_proc(std::size_t v) {
    chunks_per_proc = v;
    return *this;
  }
  HeapConfig& with_old_bytes(std::size_t v) {
    old_bytes = v;
    return *this;
  }
  HeapConfig& with_major_fraction(double v) {
    major_fraction = v;
    return *this;
  }
  HeapConfig& with_parallel_gc(bool v) {
    parallel_gc = v;
    return *this;
  }
  HeapConfig& with_par_block_words(std::size_t v) {
    par_block_words = v;
    return *this;
  }
  HeapConfig& with_remset(RemsetMode v) {
    remset = v;
    return *this;
  }
  HeapConfig& with_card_bytes(std::size_t v) {
    card_bytes = v;
    return *this;
  }
  HeapConfig& with_los_threshold_bytes(std::size_t v) {
    los_threshold_bytes = v;
    return *this;
  }
  HeapConfig& with_los_bytes(std::size_t v) {
    los_bytes = v;
    return *this;
  }
  HeapConfig& with_los_pressure_fraction(double v) {
    los_pressure_fraction = v;
    return *this;
  }
  HeapConfig& with_record_pauses(bool v) {
    record_pauses = v;
    return *this;
  }
  HeapConfig& with_verify_after_phase(bool v) {
    verify_after_phase = v;
    return *this;
  }

  // Panics with a clear message on any degenerate setting; called by Heap's
  // constructor, callable directly by tests.
  void validate() const;

  static bool default_parallel_gc();
  static RemsetMode default_remset();
  static bool default_verify_after_phase();
};

// Aggregated heap statistics.  A thin shim over mp::metrics: the counters
// live in the process-wide metrics registry (always-on tier, so they survive
// MPNJ_METRICS=0 builds and env settings) and stats() returns the delta
// since this Heap was constructed.  los_bytes is the exception: it is the
// heap's *current* live large-object footprint, not a delta.
struct HeapStats {
  std::uint64_t words_allocated = 0;
  std::uint64_t allocations = 0;
  std::uint64_t minor_gcs = 0;
  std::uint64_t major_gcs = 0;
  std::uint64_t words_copied_minor = 0;
  std::uint64_t words_copied_major = 0;
  std::uint64_t chunk_grabs = 0;
  std::uint64_t chunk_steals = 0;  // grabs beyond a proc's fair share
  std::uint64_t stores_recorded = 0;
  std::uint64_t large_allocs = 0;
  std::uint64_t cards_dirtied = 0;
  std::uint64_t cards_scanned = 0;
  std::uint64_t los_bytes = 0;  // live large-object bytes right now
};

// The multiprocessor-adapted SML/NJ heap (paper section 5), grown into a
// three-layer latency-oriented design:
//
//   barrier      Heap::store's out-of-nursery slow path records the write in
//                the remembered set — a dirty card (kCard), a store-list
//                entry (kList), or the object's LOS dirty flag.
//   generations  per-proc bump allocation into a shared chunked nursery;
//                minor collections promote survivors into the old
//                generation's active semispace (parallel workers promote
//                through private card-aligned blocks, one fetch_add each);
//                majors copy the old generation between semispaces.
//   LOS          big objects live in a page-granular mark-sweep space and
//                are never copied by either generation.
//
// Client discipline: every Value live across a runtime call (allocation,
// lock, thread operation, explicit safe point) must be held in a Roots frame
// or GlobalRoot; collections move objects and update only registered roots.
// LOS objects never move, but the discipline is the same.
class Heap {
 public:
  Heap(const HeapConfig& config, Rendezvous& rendezvous,
       Accounting& accounting);
  ~Heap();
  Heap(const Heap&) = delete;
  Heap& operator=(const Heap&) = delete;

  // --- allocation (must be called on a proc) ---
  Value alloc_record(std::span<const Value> fields);
  Value alloc_record(std::initializer_list<Value> fields) {
    return alloc_record(std::span<const Value>(fields.begin(), fields.size()));
  }
  Value alloc_array(std::size_t n, Value init);
  Value alloc_ref(Value init);
  Value alloc_bytes(std::string_view data);
  Value alloc_real(double d);

  // Convenience: cons cell (record of two) and list helpers used by the
  // workloads.
  Value cons(Value head, Value tail) { return alloc_record({head, tail}); }

  // --- mutation (write barrier) ---
  // The fast path is fully inline: a store into the nursery (the common case
  // for freshly allocated mutable state) is one range check past the write
  // itself.  Everything else — old generation, LOS — takes the out-of-line
  // remembered-set record.
  void store(Value obj, std::size_t index, Value v) {
    MPNJ_CHECK(obj.is_ptr(), "store to a non-pointer Value");
    const ObjKind k = obj.kind();
    MPNJ_CHECK(k == ObjKind::kArray || k == ObjKind::kRef,
               "store to an immutable object");
    MPNJ_CHECK(index < obj.length(), "store index out of range");
    std::uint64_t* base = obj.obj();
    base[1 + index] = v.raw_bits();
    if (base >= nursery_ && base < nursery_ + nursery_words_) return;
    record_store(base, base + 1 + index);
  }
  void store_ref(Value ref, Value v) { store(ref, 0, v); }
  static Value load_ref(Value ref) { return ref.field(0); }

  // --- collection ---
  // Force a collection now (tests / benchmarks); world-stops like any GC.
  void collect_now(bool force_major = false);

  // Statistics since this Heap's construction (metrics registry delta).
  HeapStats stats() const;
  std::size_t old_space_used_words() const;
  std::size_t nursery_free_chunks() const;
  std::size_t los_used_bytes() const { return los_.used_bytes(); }

  const HeapConfig& config() const { return cfg_; }

  // Exact per-collection pause samples (cfg.record_pauses only; bounded to
  // kMaxPauseSamples, then new samples are dropped).  minor_us covers root
  // gather + nursery evacuation; major_us the semispace copy + LOS sweep, 0
  // for minor-only collections.
  struct PauseSample {
    std::uint64_t minor_us = 0;
    std::uint64_t major_us = 0;
  };
  static constexpr std::size_t kMaxPauseSamples = 1u << 20;
  std::vector<PauseSample> pause_log() const;

  // --- introspection for tests ---
  bool in_nursery(Value v) const;
  bool in_old_space(Value v) const;
  bool in_los(Value v) const;

  // Heap consistency check (debugging aid): walks every object in the old
  // generation and the LOS and every registered root, validating headers,
  // lengths and pointer targets; in card remset mode additionally checks
  // that every old-to-young pointer's card is dirty, and that LOS metadata
  // is well-formed (magic, run geometry, dirty flags covering young
  // fields).  Returns false and fills `error` on the first inconsistency.
  // Call with the world quiescent (tests, or right after a collection);
  // cfg.verify_after_phase makes the collector itself call this after every
  // phase.
  bool verify(std::string* error) const;

 private:
  friend class GlobalRoot;

  struct alignas(arch::kCacheLine) ProcHeap {
    std::uint64_t* alloc = nullptr;
    std::uint64_t* limit = nullptr;
    std::vector<std::uint64_t*> store_list;   // kList mode
    std::vector<std::uint32_t> card_buf;      // kCard mode: unflushed cards
    std::uint64_t chunks_since_gc = 0;
  };

  std::uint64_t* alloc_raw(ObjKind kind, std::size_t field_words,
                           std::size_t length_for_header,
                           std::span<Value> rooted_args);
  bool grab_chunk(ProcHeap& ph);
  std::uint64_t* alloc_los(std::size_t words, ObjKind kind,
                           std::span<Value> rooted_args);
  void record_store(std::uint64_t* obj, std::uint64_t* slot);
  void flush_card_buffer(ProcHeap& ph);
  void run_gc_cycle(bool force_major, std::span<Value> rooted_args);
  void stop_and_collect(bool force_major);
  void join_in_flight_collection();
  void do_collect(bool force_major, std::span<Value> extra_roots);
  // One copy phase (minor or major) over [from_lo_, from_hi_); returns the
  // live words copied.  The sequential variant is the paper's collector; the
  // parallel variant drives gc::ParallelCopier.  `ranges` are the remembered
  // regions (dirty cards, dirty LOS objects) a minor phase re-scans.
  std::uint64_t sequential_phase(std::span<const ScanRange> ranges,
                                 std::span<std::uint64_t* const> roots);
  std::uint64_t parallel_phase(std::span<const ScanRange> ranges,
                               std::span<std::uint64_t* const> roots);
  std::vector<std::uint64_t*> gather_root_slots(std::span<Value> extra_roots,
                                                bool minor);
  // Consume the dirty-card buffers / LOS dirty flags into parse ranges for a
  // minor phase; fills pending_cards_ for the post-phase clear.
  std::vector<ScanRange> gather_remset_ranges();
  void scan_range_seq(const ScanRange& r);
  void forward_slot(std::uint64_t* slot);
  std::uint64_t* scan_object(std::uint64_t* obj);
  void drain_los_marks();
  void maybe_verify(const char* phase);
  void register_global_root(GlobalRoot* root);
  void unregister_global_root(GlobalRoot* root);

  HeapConfig cfg_;
  Rendezvous& rendezvous_;
  Accounting& accounting_;
  ParallelCopier copier_;
  // Metrics registry totals at construction; stats() subtracts these so each
  // Heap reports only its own activity.
  metrics::Snapshot baseline_;

  // Nursery.
  std::uint64_t* nursery_ = nullptr;
  std::size_t nursery_words_ = 0;
  std::size_t chunk_words_ = 0;
  std::size_t num_chunks_ = 0;
  std::vector<std::uint32_t> free_chunks_;  // stack of free chunk indices
  arch::TasWord chunk_lock_;

  // Old generation semispaces.
  std::uint64_t* old_a_ = nullptr;
  std::uint64_t* old_b_ = nullptr;
  std::size_t old_words_ = 0;
  std::uint64_t* old_cur_ = nullptr;    // active semispace base
  std::uint64_t* old_alloc_ = nullptr;  // bump pointer in active semispace

  // Card-marking remembered set (kCard mode).  Cards newly dirtied by a proc
  // queue in its ProcHeap::card_buf and flush to global_dirty_cards_ under
  // card_lock_ when the buffer fills (a store is already a runtime call, so
  // every flush happens at a safe point).
  CardTable cards_;
  std::vector<std::uint32_t> global_dirty_cards_;
  arch::TasWord card_lock_;
  // Cards consumed by the in-progress minor collection; cleared after the
  // phase so re-scanned cards go clean again.
  std::vector<std::uint32_t> pending_cards_;

  // Large-object space.
  LargeObjectSpace los_;
  std::vector<std::uint64_t*> pending_los_;  // dirty LOS objects this minor
  // Sequential major phases push newly marked LOS objects here and drain
  // them against the Cheney scan until a fixpoint.
  std::vector<std::uint64_t*> los_mark_stack_;
  bool los_mark_phase_ = false;  // sequential collector: majors mark the LOS

  std::vector<ProcHeap> proc_heaps_;

  // Collection coordination.
  std::atomic<bool> gc_in_progress_{false};

  // During a collection: the range being evacuated.
  std::uint64_t* from_lo_ = nullptr;
  std::uint64_t* from_hi_ = nullptr;

  // Exact pause log (cfg.record_pauses).
  std::vector<PauseSample> pause_log_;
  mutable arch::TasWord pause_lock_;

  // Global root list.
  GlobalRoot* global_roots_ = nullptr;
  arch::TasWord roots_lock_;
};

}  // namespace mp::gc
