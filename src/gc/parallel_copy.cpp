#include "gc/parallel_copy.h"

#include <algorithm>
#include <cstring>
#include <thread>

#include "arch/panic.h"
#include "gc/object_layout.h"
#include "metrics/metrics.h"

namespace mp::gc {

namespace {

// Spin politely: the rendezvoused procs may outnumber the host's cores, so
// a pure pause loop could starve the worker that holds the work.
inline void relax(std::uint32_t n) {
  arch::cpu_relax();
  if ((n & 0x3Fu) == 0x3Fu) std::this_thread::yield();
}

}  // namespace

ParallelCopier::ParallelCopier(std::size_t block_words)
    : block_words_(block_words) {}

void ParallelCopier::begin_cycle() {
  cycle_open_.store(true, std::memory_order_release);
}

void ParallelCopier::end_cycle() {
  cycle_open_.store(false, std::memory_order_release);
}

ParallelCopier::PhaseResult ParallelCopier::run_phase(const PhaseSpaces& in) {
  // Reset per-phase state.  No worker can be inside run_worker here: the
  // previous phase waited for active_ == 0 and phase_seq_ is even.
  from_lo_ = in.from_lo;
  from_hi_ = in.from_hi;
  to_base_ = *in.frontier;
  to_words_ = static_cast<std::size_t>(in.to_limit - to_base_);
  frontier_off_.store(0, std::memory_order_relaxed);
  root_slots_ = in.roots;
  root_cursor_.store(0, std::memory_order_relaxed);
  ranges_ = in.ranges;
  range_cursor_.store(0, std::memory_order_relaxed);
  cards_ = in.cards;
  card_base_ = in.card_base;
  card_words_ = (in.cards != nullptr) ? in.cards->card_words() : 0;
  los_ = in.los;
  entered_.store(0, std::memory_order_relaxed);
  idle_.store(0, std::memory_order_relaxed);
  done_.store(false, std::memory_order_relaxed);
  {
    arch::TasGuard guard(overflow_lock_);
    overflow_.clear();
    overflow_size_.store(0, std::memory_order_relaxed);
  }
  publish_seq_.store(0, std::memory_order_relaxed);
  live_words_.store(0, std::memory_order_relaxed);
  steals_.store(0, std::memory_order_relaxed);
  pushes_.store(0, std::memory_order_relaxed);
  term_rounds_.store(0, std::memory_order_relaxed);
  range_words_.store(0, std::memory_order_relaxed);
  los_marked_.store(0, std::memory_order_relaxed);
  for (auto& ww : worker_words_) ww.v.store(0, std::memory_order_relaxed);

  // The crossing map is rebuilt from the to-space base in card mode, and
  // blocks are carved card-aligned, so the frontier must start on a card.
  if (card_words_ != 0) {
    MPNJ_CHECK((static_cast<std::size_t>(to_base_ - card_base_) &
                (card_words_ - 1)) == 0,
               "to-space frontier not card aligned");
  }

  // Open the phase (odd sequence) and work it ourselves: the collector is
  // just another worker until the termination detector fires.
  const std::uint64_t myseq =
      phase_seq_.fetch_add(1, std::memory_order_acq_rel) + 1;
  run_worker(myseq);

  // Close the phase, then wait for stragglers so the totals (and the pads
  // they write into their block tails) are complete before we read them.
  phase_seq_.fetch_add(1, std::memory_order_acq_rel);
  std::uint32_t spins = 0;
  while (active_.load(std::memory_order_acquire) != 0) relax(spins++);

  PhaseResult res;
  res.live_words = live_words_.load(std::memory_order_relaxed);
  const std::size_t carved = frontier_off_.load(std::memory_order_relaxed);
  // Every carved word is either a copied survivor or block-tail padding.
  res.pad_words = static_cast<std::uint64_t>(carved) - res.live_words;
  res.steals = steals_.load(std::memory_order_relaxed);
  res.overflow_pushes = pushes_.load(std::memory_order_relaxed);
  res.term_rounds = term_rounds_.load(std::memory_order_relaxed);
  res.range_words = range_words_.load(std::memory_order_relaxed);
  res.los_marked = los_marked_.load(std::memory_order_relaxed);
  res.workers = entered_.load(std::memory_order_relaxed);
  const int nw = std::min(res.workers, kMaxWorkers);
  for (int i = 0; i < nw; i++) {
    res.worker_words.push_back(
        worker_words_[i].v.load(std::memory_order_relaxed));
  }
  *in.frontier = to_base_ + carved;
  return res;
}

void ParallelCopier::worker_cycle() {
  std::uint64_t last_worked = 0;
  std::uint32_t spins = 0;
  while (cycle_open_.load(std::memory_order_acquire)) {
    const std::uint64_t seq = phase_seq_.load(std::memory_order_acquire);
    if ((seq & 1u) != 0 && seq != last_worked) {
      run_worker(seq);
      last_worked = seq;
      spins = 0;
      continue;
    }
    relax(spins++);
  }
}

void ParallelCopier::run_worker(std::uint64_t myseq) {
  active_.fetch_add(1, std::memory_order_acq_rel);
  // Re-check under the active_ guard: if the phase already closed, the
  // collector is (or will be) waiting for active_ == 0 and the per-phase
  // state must not be touched.
  if (phase_seq_.load(std::memory_order_acquire) != myseq ||
      done_.load(std::memory_order_acquire)) {
    active_.fetch_sub(1, std::memory_order_acq_rel);
    return;
  }
  const int wid = entered_.fetch_add(1, std::memory_order_acq_rel);
  if (wid >= kMaxWorkers) {
    entered_.fetch_sub(1, std::memory_order_acq_rel);
    active_.fetch_sub(1, std::memory_order_acq_rel);
    return;
  }

  Worker w;
  claim_roots(w);
  claim_ranges(w);
  drain_all(w);
  for (;;) {
    Region r;
    if (try_steal(&r)) {
      w.steals++;
      steals_.fetch_add(1, std::memory_order_relaxed);
      scan_region(w, r);
      drain_all(w);
      continue;
    }
    // Out of local work and the overflow stack looked empty.  Publish our
    // totals *before* going idle: termination requires every entered worker
    // idle, so at that instant all totals are complete.
    flush_stats(w, wid);
    idle_.fetch_add(1, std::memory_order_acq_rel);
    if (!wait_for_work(w, wid)) break;
  }
  // Termination: pad the final block's unused tail so to-space parses.
  retire_block(w);
  flush_stats(w, wid);
  active_.fetch_sub(1, std::memory_order_acq_rel);
}

void ParallelCopier::claim_roots(Worker& w) {
  constexpr std::size_t kBatch = 16;
  const std::size_t n = root_slots_.size();
  for (;;) {
    const std::size_t i = root_cursor_.fetch_add(kBatch,
                                                 std::memory_order_acq_rel);
    if (i >= n) return;
    const std::size_t end = std::min(i + kBatch, n);
    for (std::size_t j = i; j < end; j++) forward_slot(w, root_slots_[j]);
  }
}

void ParallelCopier::claim_ranges(Worker& w) {
  const std::size_t n = ranges_.size();
  if (n == 0) return;
  for (;;) {
    const std::size_t i = range_cursor_.fetch_add(1, std::memory_order_acq_rel);
    if (i >= n) return;
    scan_range(w, ranges_[i]);
  }
}

void ParallelCopier::scan_range(Worker& w, const ScanRange& r) {
  // Parse objects from r.parse but forward only slots inside [lo, hi): a
  // range's slots belong to exactly one range (dirty cards are deduplicated,
  // LOS ranges cover whole distinct objects), so the one-writer-per-slot
  // invariant survives objects straddling range boundaries.
  std::uint64_t* p = r.parse;
  while (p < r.hi) {
    const std::uint64_t hdr = p[0];
    const std::size_t fields = header_field_words(hdr);
    std::uint64_t* obj_end = p + 1 + fields;
    if (header_is_traced(hdr)) {
      std::uint64_t* s = std::max(p + 1, r.lo);
      std::uint64_t* e = std::min(obj_end, r.hi);
      for (; s < e; s++) forward_slot(w, s);
    }
    p = obj_end;
  }
  w.range_words += static_cast<std::uint64_t>(r.hi - r.lo);
}

void ParallelCopier::forward_slot(Worker& w, std::uint64_t* slot) {
  // Each slot is claimed by exactly one worker (root slots are deduplicated,
  // object slots belong to the worker scanning the object), so the slot
  // itself needs no synchronization — only the from-space header does.
  const std::uint64_t bits = *slot;
  if (bits == 0 || (bits & 1u) != 0) return;  // nil or immediate int
  auto* obj = reinterpret_cast<std::uint64_t*>(bits);
  if (obj < from_lo_ || obj >= from_hi_) {
    // Not in the evacuated space.  In a major phase the pointer may lead
    // into the large-object space: mark it live, and whoever wins the mark
    // CAS owes the object's fields a scan (exactly one scanner per object).
    if (los_ != nullptr && los_->contains(obj) &&
        LargeObjectSpace::try_mark(obj)) {
      w.los_marked++;
      if (header_is_traced(obj[0])) w.los_pending.push_back(obj);
    }
    return;
  }
  std::atomic_ref<std::uint64_t> hdr_ref(obj[0]);
  std::uint64_t hdr = hdr_ref.load(std::memory_order_acquire);
  if ((hdr & 1u) != 0) {  // already forwarded
    *slot = hdr & ~std::uint64_t{1};
    return;
  }
  const std::size_t words = 1 + header_field_words(hdr);
  // Reserve destination space from our own block first, then race for the
  // object with a single CAS on its header.  Winning installs dst|1 as the
  // forwarding word; losing un-bumps the (still unwritten) reservation.
  std::uint64_t* dst = reserve(w, words);
  if (hdr_ref.compare_exchange_strong(
          hdr, reinterpret_cast<std::uint64_t>(dst) | 1u,
          std::memory_order_acq_rel, std::memory_order_acquire)) {
    dst[0] = hdr;
    if (words > 1) std::memcpy(dst + 1, obj + 1, (words - 1) * kWordBytes);
    w.copied += words;
    if (card_words_ != 0) {
      cards_->record_object(static_cast<std::size_t>(dst - card_base_), words);
    }
    *slot = reinterpret_cast<std::uint64_t>(dst);
  } else {
    w.alloc -= words;
    MPNJ_CHECK((hdr & 1u) != 0,
               "from-space header changed without being forwarded");
    *slot = hdr & ~std::uint64_t{1};
  }
}

std::uint64_t* ParallelCopier::reserve(Worker& w, std::size_t words) {
  if (w.block == nullptr ||
      static_cast<std::size_t>(w.limit - w.alloc) < words) {
    retire_block(w);
    std::size_t take = std::max(block_words_, words);
    // Card mode: whole-card blocks make this worker the only crossing-map
    // writer for every card its block covers, and keep the shared frontier
    // card-aligned for the next carve.
    if (card_words_ != 0) {
      take = (take + card_words_ - 1) & ~(card_words_ - 1);
    }
    const std::size_t off =
        frontier_off_.fetch_add(take, std::memory_order_acq_rel);
    if (off + take > to_words_) {
      arch::panic(
          "old generation exhausted during parallel collection; grow "
          "old_bytes");
    }
    w.block = to_base_ + off;
    w.scan = w.block;
    w.alloc = w.block;
    w.limit = w.block + take;
  }
  std::uint64_t* p = w.alloc;
  w.alloc += words;
  return p;
}

void ParallelCopier::retire_block(Worker& w) {
  if (w.block == nullptr) return;
  // Hand the unscanned remainder to idle workers; every object in it was
  // fully written by this worker before the publish (the overflow lock's
  // release edge orders the writes for the stealer).
  if (w.scan < w.alloc) publish(w, Region{w.scan, w.alloc});
  if (w.alloc < w.limit) {
    const auto gap = static_cast<std::size_t>(w.limit - w.alloc);
    w.alloc[0] = make_pad_header(gap);  // payload stays garbage; never read
    if (card_words_ != 0) {
      cards_->record_object(static_cast<std::size_t>(w.alloc - card_base_),
                            gap);
    }
  }
  w.block = w.scan = w.alloc = w.limit = nullptr;
}

void ParallelCopier::drain_own(Worker& w) {
  // Cheney scan of our own block.  The scan pointer is advanced past the
  // object *before* its fields are forwarded, so a block retirement in the
  // middle of scan_fields never publishes the object we are working on.
  while (w.scan < w.alloc) {
    std::uint64_t* obj = w.scan;
    const std::uint64_t hdr = obj[0];
    w.scan = obj + 1 + header_field_words(hdr);
    if (header_is_traced(hdr)) scan_fields(w, obj);
  }
}

void ParallelCopier::drain_all(Worker& w) {
  // The block scan and the pending LOS scans feed each other (a promoted
  // object can point at a large object and vice versa); alternate to a joint
  // fixpoint.
  for (;;) {
    drain_own(w);
    if (w.los_pending.empty()) return;
    std::uint64_t* obj = w.los_pending.back();
    w.los_pending.pop_back();
    scan_fields(w, obj);
  }
}

void ParallelCopier::scan_fields(Worker& w, std::uint64_t* obj) {
  const std::uint64_t hdr = obj[0];
  const std::size_t n = header_field_words(hdr);
  for (std::size_t i = 0; i < n; i++) forward_slot(w, obj + 1 + i);
}

void ParallelCopier::scan_region(Worker& w, Region r) {
  std::uint64_t* p = r.lo;
  while (p < r.hi) {
    std::uint64_t* obj = p;
    const std::uint64_t hdr = obj[0];
    p += 1 + header_field_words(hdr);
    if (header_is_traced(hdr)) scan_fields(w, obj);
  }
}

bool ParallelCopier::try_steal(Region* out) {
  if (overflow_size_.load(std::memory_order_acquire) == 0) return false;
  arch::TasGuard guard(overflow_lock_);
  if (overflow_.empty()) return false;
  *out = overflow_.back();
  overflow_.pop_back();
  overflow_size_.store(overflow_.size(), std::memory_order_relaxed);
  return true;
}

void ParallelCopier::publish(Worker& w, Region r) {
  w.pushes++;
  pushes_.fetch_add(1, std::memory_order_relaxed);
  arch::TasGuard guard(overflow_lock_);
  overflow_.push_back(r);
  overflow_size_.store(overflow_.size(), std::memory_order_relaxed);
  publish_seq_.fetch_add(1, std::memory_order_release);
}

bool ParallelCopier::overflow_empty() {
  return overflow_size_.load(std::memory_order_acquire) == 0;
}

bool ParallelCopier::wait_for_work(Worker& w, int wid) {
  (void)w;
  (void)wid;
  std::uint32_t spins = 0;
  for (;;) {
    if (done_.load(std::memory_order_acquire)) return false;
    if (!overflow_empty()) {
      // Leave idle *before* attempting the steal so idle_ == entered_ can
      // only hold when no worker is between popping a region and working it.
      idle_.fetch_sub(1, std::memory_order_acq_rel);
      return true;
    }
    // Phase one: everyone idle, nothing published, cursor exhausted (a
    // worker only goes idle after draining the root cursor).
    if (idle_.load(std::memory_order_acquire) ==
        entered_.load(std::memory_order_acquire)) {
      const std::uint64_t seq = publish_seq_.load(std::memory_order_acquire);
      if (overflow_empty() &&
          idle_.load(std::memory_order_acquire) ==
              entered_.load(std::memory_order_acquire)) {
        // Phase two: a full confirming round.  Work can only appear through
        // a publish, and a publisher must leave idle first, so if the
        // sequence and the counts still agree the state is stable.
        term_rounds_.fetch_add(1, std::memory_order_relaxed);
        if (publish_seq_.load(std::memory_order_acquire) == seq &&
            overflow_empty() &&
            idle_.load(std::memory_order_acquire) ==
                entered_.load(std::memory_order_acquire)) {
          done_.store(true, std::memory_order_release);
          return false;
        }
      }
    }
    relax(spins++);
  }
}

void ParallelCopier::flush_stats(Worker& w, int wid) {
  std::uint64_t delta = w.copied - w.flushed;
  if (delta != 0) {
    live_words_.fetch_add(delta, std::memory_order_relaxed);
    worker_words_[wid].v.fetch_add(delta, std::memory_order_relaxed);
    w.flushed = w.copied;
  }
  if (w.range_words != 0) {
    range_words_.fetch_add(w.range_words, std::memory_order_relaxed);
    w.range_words = 0;
  }
  if (w.los_marked != 0) {
    los_marked_.fetch_add(w.los_marked, std::memory_order_relaxed);
    w.los_marked = 0;
  }
}

}  // namespace mp::gc
