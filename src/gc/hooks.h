#pragma once

#include <cstdint>

#include "cont/exec.h"

namespace mp::gc {

// What the heap needs from the platform underneath it.  The native backend
// implements stop_world with a real rendezvous of kernel threads and ignores
// the charge hooks; the simulator backend parks virtual procs at clean
// points and converts the charges into virtual time and bus traffic.
class CollectorHooks {
 public:
  virtual ~CollectorHooks() = default;

  // Park every other active proc at a clean point (paper section 5: "the
  // procs are synchronized at clean points").  Returns when the world is
  // stopped; the caller becomes the collector.
  virtual void stop_world() = 0;
  virtual void resume_world() = 0;

  // Account a completed collection that copied `words_copied` live words.
  virtual void charge_gc(std::uint64_t words_copied) = 0;
  // Account an allocation of `words` heap words (inline bump + write miss
  // traffic, the dominant bus load in SML/NJ programs).
  virtual void charge_alloc(std::uint64_t words) = 0;
  // Called by a proc that needs a collection some other proc is already
  // performing: must reach a clean point (parking there if the world is
  // stopping) and return once it is safe to retry allocation.
  virtual void gc_yield() = 0;

  // Identity of the executing proc, and the proc table for root scanning.
  virtual int cur_proc() = 0;
  virtual int nproc() = 0;
  // Execution context of proc `id` (for its current root chain); the world
  // is stopped when the collector calls this.
  virtual cont::ExecContext* proc_exec(int id) = 0;
};

}  // namespace mp::gc
