#pragma once

#include <cstdint>
#include <functional>

#include "cont/exec.h"

namespace mp::gc {

// Entry point of the heap's parallel-collection worker loop.  The heap hands
// one of these to the platform when it stops the world; every proc the
// backend co-opts at the rendezvous calls it exactly once per collection and
// returns only when the collection's parallel phase has terminated (the
// heap's own termination detector decides).  An empty function means the
// collection is sequential and rendezvoused procs simply wait.
using WorkerFn = std::function<void()>;

// What the heap needs from the platform to coordinate a collection: the
// stop-the-world rendezvous of paper section 5 ("the procs are synchronized
// at clean points"), extended so rendezvoused procs become collection
// workers instead of idling.  This is one half of the old monolithic
// CollectorHooks; the cost-accounting half is Accounting below.
class Rendezvous {
 public:
  virtual ~Rendezvous() = default;

  // Park every other active proc at a clean point and register `work` as the
  // collection's worker entry.  Returns when the world is stopped; the
  // caller becomes the collector (and worker 0).  Backends that can run code
  // on rendezvoused procs route each of them into `work` once; backends that
  // cannot (the uniprocessor, the single-kernel-thread simulator) leave the
  // caller as the only worker.
  virtual void stop_world(WorkerFn work) = 0;
  // Release the world.  The backend guarantees every proc it routed into
  // `work` has returned from it before any proc resumes client code.
  virtual void resume_world() = 0;

  // Called by a proc that needs a collection some other proc is already
  // performing: reach a clean point (parking there while the world is
  // stopping), join the in-flight collection as a worker where the backend
  // supports it, and return once it is safe to retry allocation.  Replaces
  // the old gc_yield(), whose contract let backends silently spin without
  // ever contributing to the collection.
  virtual void rendezvous_and_work(const WorkerFn& work) = 0;

  // Identity of the executing proc, and the proc table for root scanning.
  virtual int cur_proc() = 0;
  virtual int nproc() = 0;
  // Execution context of proc `id` (for its current root chain); the world
  // is stopped when the collector calls this.
  virtual cont::ExecContext* proc_exec(int id) = 0;
};

// Cost accounting for the platform underneath the heap.  The native backend
// ignores the charges (the computation itself is the cost); the simulator
// converts them into virtual time and bus traffic.
class Accounting {
 public:
  virtual ~Accounting() = default;

  // Account a completed collection that copied `words_copied` live words.
  virtual void charge_gc(std::uint64_t words_copied) = 0;
  // Account an allocation of `words` heap words (inline bump + write miss
  // traffic, the dominant bus load in SML/NJ programs).
  virtual void charge_alloc(std::uint64_t words) = 0;
  // Account a minor collection's remembered-set scan: `cards` dirty cards
  // re-parsed covering `words` old-generation words (card remset mode only;
  // the store-list baseline's root slots are charged through charge_gc).
  virtual void charge_card_scan(std::uint64_t cards, std::uint64_t words) = 0;
  // Account a large-object allocation of `pages` fresh pages (soft faults on
  // first touch) and a post-major sweep that released `pages` back.
  virtual void charge_los_alloc(std::uint64_t pages) = 0;
  virtual void charge_los_sweep(std::uint64_t pages) = 0;
};

}  // namespace mp::gc
