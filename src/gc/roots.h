#pragma once

#include <cstddef>

#include "arch/panic.h"
#include "cont/exec.h"
#include "gc/value.h"

namespace mp::gc {

class Heap;

// One frame of a logical thread's root chain.  The chain head lives in the
// proc's ExecContext and is saved into / restored from continuations, so a
// suspended thread's roots remain visible to the collector and travel with
// the thread when it migrates between procs.
struct RootFrameHdr {
  RootFrameHdr* prev = nullptr;
  Value* slots = nullptr;
  std::size_t count = 0;
};

// RAII block of GC roots.  Declare one in any scope that holds Values across
// a potential collection point (any allocation, and any suspension point):
//
//   gc::Roots<2> r;            // pushes onto the current thread's chain
//   r[0] = heap.alloc_ref(v);  // r[0] is traced and updated by the GC
//
// Frames nest strictly LIFO within one logical thread.  A callcc body starts
// with an empty chain (see cont/cont.h); values must cross that boundary via
// continuation payloads or GlobalRoot cells, never via captured frames.
template <std::size_t N>
class Roots {
 public:
  Roots() {
    cont::ExecContext* ex = cont::current_exec();
    MPNJ_CHECK(ex != nullptr && ex->seg != nullptr,
               "GC roots declared outside a proc's client context");
    hdr_.prev = static_cast<RootFrameHdr*>(ex->root_head);
    hdr_.slots = slots_;
    hdr_.count = N;
    ex->root_head = &hdr_;
  }
  ~Roots() {
    // The thread may have migrated to a different proc since construction;
    // its root chain travelled with it, so pop from the *current* proc.
    cont::ExecContext* ex = cont::current_exec();
    MPNJ_CHECK(ex != nullptr && ex->root_head == &hdr_,
               "GC root frames popped out of order");
    ex->root_head = hdr_.prev;
  }
  Roots(const Roots&) = delete;
  Roots& operator=(const Roots&) = delete;

  Value& operator[](std::size_t i) {
    MPNJ_CHECK(i < N, "root slot index out of range");
    return slots_[i];
  }

 private:
  RootFrameHdr hdr_;
  Value slots_[N] = {};
};

// A movable, individually registered root for Values stored inside ordinary
// C++ data structures (channel queues, thread-start records).  Registration
// is a doubly-linked list owned by the Heap; moving re-links.
class GlobalRoot {
 public:
  GlobalRoot() noexcept = default;  // unregistered, nil
  GlobalRoot(Heap& heap, Value v);
  GlobalRoot(GlobalRoot&& other) noexcept;
  GlobalRoot& operator=(GlobalRoot&& other) noexcept;
  GlobalRoot(const GlobalRoot&) = delete;
  GlobalRoot& operator=(const GlobalRoot&) = delete;
  ~GlobalRoot();

  Value get() const noexcept { return value_; }
  void set(Value v) noexcept { value_ = v; }
  bool registered() const noexcept { return heap_ != nullptr; }

 private:
  friend class Heap;
  void steal_links(GlobalRoot&& other) noexcept;

  Heap* heap_ = nullptr;
  Value value_;
  GlobalRoot* prev_ = nullptr;
  GlobalRoot* next_ = nullptr;
};

}  // namespace mp::gc
