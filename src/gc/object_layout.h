#pragma once

// Heap object layout helpers shared by the sequential collector (heap.cpp)
// and the parallel copier (parallel_copy.cpp).
//
// Object layout: [header][field 0]...[field n-1], one 64-bit word each.
// Header encoding: (length << 4) | (kind << 1) | 0; a header with the low
// bit set is a forwarding pointer installed during collection.

#include <cstddef>
#include <cstdint>

#include "gc/value.h"

namespace mp::gc {

inline constexpr std::size_t kWordBytes = sizeof(std::uint64_t);

inline std::uint64_t make_header(ObjKind kind, std::size_t length) {
  return (static_cast<std::uint64_t>(length) << 4) |
         (static_cast<std::uint64_t>(kind) << 1);
}

inline ObjKind header_kind(std::uint64_t hdr) {
  return static_cast<ObjKind>((hdr >> 1) & 0x7u);
}

inline std::size_t header_field_words(std::uint64_t hdr) {
  const ObjKind kind = header_kind(hdr);
  const std::size_t len = static_cast<std::size_t>(hdr >> 4);
  if (kind == ObjKind::kBytes || kind == ObjKind::kReal) {
    return (len + kWordBytes - 1) / kWordBytes;  // length counts payload bytes
  }
  return len;  // length counts Value fields
}

inline bool header_is_traced(std::uint64_t hdr) {
  const ObjKind kind = header_kind(hdr);
  return kind == ObjKind::kRecord || kind == ObjKind::kArray ||
         kind == ObjKind::kRef;
}

// A pad object filling `words` to-space words (block tails the parallel
// copier could not use).  Encoded as an untraced kBytes object so the old
// generation still parses linearly; no Value ever points at a pad.
inline std::uint64_t make_pad_header(std::size_t words) {
  return make_header(ObjKind::kBytes, (words - 1) * kWordBytes);
}

}  // namespace mp::gc
