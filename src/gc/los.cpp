#include "gc/los.h"

#include <sys/mman.h>

#include <algorithm>
#include <cstring>

#include "arch/panic.h"
#include "gc/object_layout.h"

namespace mp::gc {

void LargeObjectSpace::init(std::size_t arena_bytes) {
  MPNJ_CHECK(base_ == nullptr, "LargeObjectSpace initialized twice");
  MPNJ_CHECK((arena_bytes & (kPageBytes - 1)) == 0,
             "LOS arena must be a multiple of the page size");
  void* p = ::mmap(nullptr, arena_bytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  MPNJ_CHECK(p != MAP_FAILED, "mmap of %zu-byte LOS arena failed",
             arena_bytes);
  base_ = static_cast<char*>(p);
  arena_bytes_ = arena_bytes;
  arena_pages_ = arena_bytes / kPageBytes;
  free_.push_back(Extent{0, static_cast<std::uint32_t>(arena_pages_)});
}

LargeObjectSpace::~LargeObjectSpace() {
  if (base_ != nullptr) ::munmap(base_, arena_bytes_);
}

std::uint64_t* LargeObjectSpace::alloc(std::size_t obj_words,
                                       std::size_t* pages_out) {
  const std::size_t bytes = (kMetaWords + obj_words) * kWordBytes;
  const std::size_t pages = (bytes + kPageBytes - 1) / kPageBytes;
  std::uint32_t page = 0;
  {
    arch::TasGuard guard(lock_);
    // First fit: the free list is kept sorted by page, so this also prefers
    // low addresses and keeps the arena's touched prefix compact.
    std::size_t i = 0;
    for (; i < free_.size(); i++) {
      if (free_[i].pages >= pages) break;
    }
    if (i == free_.size()) return nullptr;
    page = free_[i].page;
    if (free_[i].pages == pages) {
      free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      free_[i].page += static_cast<std::uint32_t>(pages);
      free_[i].pages -= static_cast<std::uint32_t>(pages);
    }
    objects_.push_back(page);
  }
  used_pages_.fetch_add(pages, std::memory_order_relaxed);

  char* run = base_ + std::size_t{page} * kPageBytes;
  auto* meta = reinterpret_cast<Meta*>(run);
  meta->magic = kMagic;
  meta->pages = static_cast<std::uint32_t>(pages);
  meta->obj_words = obj_words;
  meta->mark.store(0, std::memory_order_relaxed);
  meta->dirty.store(0, std::memory_order_relaxed);
  if (pages_out != nullptr) *pages_out = pages;
  return reinterpret_cast<std::uint64_t*>(run) + kMetaWords;
}

void LargeObjectSpace::clear_all_dirty() {
  arch::TasGuard guard(lock_);
  for (const std::uint32_t page : objects_) {
    meta_of(object_at(page))->dirty.store(0, std::memory_order_relaxed);
  }
}

LargeObjectSpace::SweepResult LargeObjectSpace::sweep() {
  SweepResult res;
  arch::TasGuard guard(lock_);
  std::vector<std::uint32_t> live;
  live.reserve(objects_.size());
  for (const std::uint32_t page : objects_) {
    std::uint64_t* obj = object_at(page);
    Meta* meta = meta_of(obj);
    if (meta->mark.load(std::memory_order_relaxed) != 0) {
      meta->mark.store(0, std::memory_order_relaxed);
      meta->dirty.store(0, std::memory_order_relaxed);
      live.push_back(page);
      res.objects_live++;
      continue;
    }
    res.objects_freed++;
    res.bytes_freed += meta->obj_words * kWordBytes;
    res.pages_freed += meta->pages;
    meta->magic = 0;
    free_.push_back(Extent{page, meta->pages});
    ::madvise(base_ + std::size_t{page} * kPageBytes,
              std::size_t{meta->pages} * kPageBytes, MADV_DONTNEED);
  }
  objects_.swap(live);
  // Re-sort and coalesce the free list so fragmentation cannot accrete
  // across sweeps.
  std::sort(free_.begin(), free_.end(),
            [](const Extent& a, const Extent& b) { return a.page < b.page; });
  std::size_t out = 0;
  for (std::size_t i = 0; i < free_.size(); i++) {
    if (out > 0 &&
        free_[out - 1].page + free_[out - 1].pages == free_[i].page) {
      free_[out - 1].pages += free_[i].pages;
    } else {
      free_[out++] = free_[i];
    }
  }
  free_.resize(out);
  used_pages_.fetch_sub(static_cast<std::size_t>(res.pages_freed),
                        std::memory_order_relaxed);
  return res;
}

bool LargeObjectSpace::is_object_start(const std::uint64_t* p) const {
  if (!contains(p)) return false;
  const auto off = reinterpret_cast<const char*>(p) - base_;
  // Objects sit kMetaWords words into a page-aligned run.
  if (static_cast<std::size_t>(off) % kPageBytes != kMetaWords * kWordBytes) {
    return false;
  }
  const Meta* meta = meta_of(p);
  return meta->magic == kMagic &&
         std::size_t{meta->pages} * kPageBytes <=
             arena_bytes_ - static_cast<std::size_t>(off -
                 static_cast<std::ptrdiff_t>(kMetaWords * kWordBytes));
}

}  // namespace mp::gc
