#pragma once

// Large-object space: page-granular allocation for objects too big to earn
// their copying cost (KV values, io frames, big arrays).  Before this space
// existed, oversized allocations were bump-allocated straight into the old
// generation, where every major collection memcpy'd them between semispaces
// and — worse — an old-gen array born with nursery-pointing fields had no
// store-list entry, so its young targets could be missed by the next minor
// collection.  LOS objects are never copied: they are mark-swept by major
// collections and born *dirty*, so the first minor collection after an
// allocation scans their fields like any recorded store.
//
// Layout.  One contiguous anonymous mapping (MAP_NORESERVE: pages cost
// nothing until touched) carved into page runs by a first-fit free list of
// [page, count] extents under a test-and-set lock (allocation is already the
// heap's slow path).  Each run holds exactly one object:
//
//   [LosMeta .. padded to 64 bytes][object header][fields ...]
//
// so a Value points at a perfectly ordinary object header and the collector
// finds the run's metadata at a fixed negative offset.  The mark and dirty
// flags live in the meta, never in the object header — a major collection
// CAS-forwards old-generation headers, and keeping LOS state out of the
// header means LOS objects need no forwarding protocol at all.
//
// Sweeping madvises freed runs back to the OS (MADV_DONTNEED) and coalesces
// adjacent free extents, so peak RSS tracks live large objects, not the
// arena reservation.

#include <atomic>
#include <cstdint>
#include <vector>

#include "arch/tas.h"

namespace mp::gc {

class LargeObjectSpace {
 public:
  static constexpr std::size_t kPageBytes = 4096;
  // Meta prefix before the object header; one cache line keeps the header
  // 8-byte aligned and the mutator's dirty flag off the collector's fields.
  static constexpr std::size_t kMetaWords = 8;

  struct Meta {
    std::uint32_t magic;           // kMagic for a live run
    std::uint32_t pages;           // run length, pages
    std::uint64_t obj_words;       // header + fields
    std::atomic<std::uint8_t> mark;   // major-collection liveness
    std::atomic<std::uint8_t> dirty;  // may hold young pointers (minor root)
  };
  static constexpr std::uint32_t kMagic = 0x105B10C5;

  struct SweepResult {
    std::uint64_t objects_freed = 0;
    std::uint64_t bytes_freed = 0;
    std::uint64_t pages_freed = 0;
    std::uint64_t objects_live = 0;
  };

  LargeObjectSpace() = default;
  ~LargeObjectSpace();
  LargeObjectSpace(const LargeObjectSpace&) = delete;
  LargeObjectSpace& operator=(const LargeObjectSpace&) = delete;

  // Reserve an arena of `arena_bytes` (multiple of the page size).
  void init(std::size_t arena_bytes);

  // Allocate a run for an object of `obj_words` (header included); returns
  // the object header address, or nullptr when no extent fits (the caller
  // collects — a major sweeps this space — and retries).  `pages_out`
  // reports the run length for cost accounting.
  std::uint64_t* alloc(std::size_t obj_words, std::size_t* pages_out);

  bool contains(const void* p) const {
    return p >= base_ && p < base_ + arena_bytes_;
  }

  // Meta of an object returned by alloc() (fixed negative offset).
  static Meta* meta_of(std::uint64_t* obj) {
    return reinterpret_cast<Meta*>(obj - kMetaWords);
  }
  static const Meta* meta_of(const std::uint64_t* obj) {
    return reinterpret_cast<const Meta*>(obj - kMetaWords);
  }

  // Mutator barrier / allocation: flag the object as possibly holding young
  // pointers.  Returns true when this call observed it clean.
  static bool set_dirty(std::uint64_t* obj) {
    std::atomic<std::uint8_t>& d = meta_of(obj)->dirty;
    if (d.load(std::memory_order_relaxed) != 0) return false;
    d.store(1, std::memory_order_relaxed);
    return true;
  }

  // Collector marking (major phase): returns true for the worker that
  // transitions the object unmarked -> marked and must scan its fields.
  static bool try_mark(std::uint64_t* obj) {
    return meta_of(obj)->mark.exchange(1, std::memory_order_acq_rel) == 0;
  }

  // Post-minor: the nursery is empty, no object can hold young pointers.
  void clear_all_dirty();

  // Post-major: free every unmarked run (madvise the pages away), clear all
  // marks and dirty flags on survivors.
  SweepResult sweep();

  // Enumerate live objects (object header addresses).  Collector-side only.
  template <typename Fn>
  void for_each_object(Fn&& fn) const {
    for (const std::uint32_t page : objects_) {
      fn(object_at(page));
    }
  }

  std::size_t object_count() const { return objects_.size(); }
  std::size_t used_bytes() const {
    return used_pages_.load(std::memory_order_relaxed) * kPageBytes;
  }
  std::size_t arena_bytes() const { return arena_bytes_; }

  // Verification support: true iff `p` is the header address of a live LOS
  // object (meta magic and geometry check out).
  bool is_object_start(const std::uint64_t* p) const;

 private:
  std::uint64_t* object_at(std::uint32_t page) const {
    return reinterpret_cast<std::uint64_t*>(base_ + std::size_t{page} *
                                                        kPageBytes) +
           kMetaWords;
  }

  struct Extent {
    std::uint32_t page;
    std::uint32_t pages;
  };

  char* base_ = nullptr;
  std::size_t arena_bytes_ = 0;
  std::size_t arena_pages_ = 0;
  mutable arch::TasWord lock_;
  std::vector<Extent> free_;          // sorted by page; adjacent runs merged
  std::vector<std::uint32_t> objects_;  // first page of every live run
  std::atomic<std::size_t> used_pages_{0};
};

}  // namespace mp::gc
