#include "metrics/metrics.h"

#include <cctype>
#include <cstdlib>

namespace mp::metrics {

namespace {

constexpr const char* kCounterNames[kNumCounters] = {
    "lock_acquires",         "lock_contended",        "lock_spin_iters",
    "lock_backoff_rounds",   "lock_park_waits",       "lock_handoffs",
    "gc_minor",              "gc_major",
    "gc_pause_us_total",     "gc_words_copied",       "gc_words_copied_minor",
    "gc_words_copied_major", "gc_alloc_words",        "gc_allocs",
    "gc_stores_recorded",    "gc_chunk_grabs",        "gc_chunk_steals",
    "gc_large_allocs",
    "gc_cards_dirtied",      "gc_cards_scanned",      "gc_card_scan_words",
    "gc_card_flushes",       "gc_los_bytes_allocated", "gc_los_bytes_swept",
    "gc_los_sweeps",         "gc_los_marked",
    "gc_par_collections",    "gc_par_workers",
    "gc_par_steals",         "gc_par_overflow_pushes", "gc_par_pad_words",
    "gc_par_term_rounds",    "sched_dispatches",      "sched_preempts",
    "sched_forks",           "sched_yields",          "sched_idle_polls",
    "sched_timer_fires",     "sched_idle_backoff",    "sched_steal_attempts",
    "sched_steal_commits",   "sched_park_waits",      "sched_park_wakeups",
    "cml_sends",             "cml_recvs",             "cml_select_retries",
    "cml_offers_parked",
    "io_wakeups",            "io_dispatch_batches",   "io_parked",
    "io_notifies",           "io_eintr_retries",      "io_bytes_read",
    "io_bytes_written",
    "kv_gets",               "kv_sets",               "kv_dels",
    "kv_ranges",             "kv_stats",              "kv_hits",
    "kv_misses",             "kv_proto_errors",       "kv_conns",
    "stack_commit_bytes",    "stack_decommit_bytes",  "cont_pool_hits",
    "cont_pool_misses",      "cont_pool_recycles",    "cont_pool_decommits",
    "trace_dropped",
};

constexpr const char* kHistoNames[kNumHistos] = {
    "gc_pause_us",
    "gc_minor_pause_us",
    "gc_major_pause_us",
    "gc_par_worker_words",
    "gc_par_steals_per_gc",
    "gc_par_term_rounds_per_gc",
    "lock_spin_iters",
    "lock_hold_us",
    "lock_wait_us",
    "run_queue_depth",
    "sched_park_us",
    "sched_wake_to_dispatch_us",
    "io_wait_us",
    "io_batch_wakeups",
    "kv_queue_us_get",
    "kv_queue_us_set",
    "kv_queue_us_del",
    "kv_queue_us_range",
    "kv_req_us_get",
    "kv_req_us_set",
    "kv_req_us_del",
    "kv_req_us_range",
};

// Slot index for the calling thread; < 0 until bound or lazily assigned.
thread_local int tl_slot = -1;

}  // namespace

const char* counter_name(Counter c) {
  return kCounterNames[static_cast<std::size_t>(c)];
}

const char* histo_name(Histo h) {
  return kHistoNames[static_cast<std::size_t>(h)];
}

Registry::Registry() {
  // MPNJ_METRICS=0 in the environment disables collection at startup even in
  // instrumented builds, for apples-to-apples perf comparisons.
  if (const char* env = std::getenv("MPNJ_METRICS")) {
    if (env[0] == '0' && env[1] == '\0') enabled_.store(false);
  }
}

void Registry::bind_slot(int slot) {
  tl_slot = slot >= 0 ? slot % static_cast<int>(kMaxSlots) : -1;
}

void Registry::unbind_slot() { tl_slot = -1; }

Registry::Slot& Registry::slot() {
  int s = tl_slot;
  if (s < 0) {
    s = static_cast<int>(next_slot_.fetch_add(1, std::memory_order_relaxed) %
                         kMaxSlots);
    tl_slot = s;
  }
  return slots_[static_cast<std::size_t>(s)];
}

Snapshot Registry::snapshot() const {
  Snapshot out;
  for (const Slot& s : slots_) {
    for (std::size_t c = 0; c < kNumCounters; ++c) {
      out.counters[c] += s.counters[c].load(std::memory_order_relaxed);
    }
    for (std::size_t h = 0; h < kNumHistos; ++h) {
      out.histos[h].sum += s.histo_sum[h].load(std::memory_order_relaxed);
      for (std::size_t b = 0; b < kNumBuckets; ++b) {
        const std::uint64_t n =
            s.histo_buckets[h][b].load(std::memory_order_relaxed);
        out.histos[h].buckets[b] += n;
        out.histos[h].count += n;
      }
    }
  }
  return out;
}

void Registry::reset() {
  for (Slot& s : slots_) {
    for (std::size_t c = 0; c < kNumCounters; ++c) {
      s.counters[c].store(0, std::memory_order_relaxed);
    }
    for (std::size_t h = 0; h < kNumHistos; ++h) {
      s.histo_sum[h].store(0, std::memory_order_relaxed);
      for (std::size_t b = 0; b < kNumBuckets; ++b) {
        s.histo_buckets[h][b].store(0, std::memory_order_relaxed);
      }
    }
  }
}

Registry& registry() {
  static Registry instance;
  return instance;
}

std::string Snapshot::to_json() const {
  std::string out;
  out.reserve(2048);
  out += "{\"counters\":{";
  for (std::size_t c = 0; c < kNumCounters; ++c) {
    if (c != 0) out += ',';
    out += '"';
    out += kCounterNames[c];
    out += "\":";
    out += std::to_string(counters[c]);
  }
  out += "},\"histograms\":{";
  for (std::size_t h = 0; h < kNumHistos; ++h) {
    if (h != 0) out += ',';
    out += '"';
    out += kHistoNames[h];
    out += "\":{\"count\":";
    out += std::to_string(histos[h].count);
    out += ",\"sum\":";
    out += std::to_string(histos[h].sum);
    out += ",\"buckets\":[";
    for (std::size_t b = 0; b < kNumBuckets; ++b) {
      if (b != 0) out += ',';
      out += std::to_string(histos[h].buckets[b]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

namespace {

// Hand-rolled cursor parser for exactly the JSON subset to_json emits
// (objects, arrays, string keys, unsigned integers — no escapes, no floats).
// Kept local: the platform has no JSON dependency and does not want one.
class Cursor {
 public:
  explicit Cursor(const std::string& s) : s_(s) {}

  bool literal(char c) {
    skip_ws();
    if (pos_ >= s_.size() || s_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool peek(char c) {
    skip_ws();
    return pos_ < s_.size() && s_[pos_] == c;
  }

  bool string(std::string* out) {
    skip_ws();
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    const std::size_t start = ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') return false;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    out->assign(s_, start, pos_ - start);
    ++pos_;
    return true;
  }

  bool number(std::uint64_t* out) {
    skip_ws();
    if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_])))
      return false;
    std::uint64_t v = 0;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      v = v * 10 + static_cast<std::uint64_t>(s_[pos_] - '0');
      ++pos_;
    }
    *out = v;
    return true;
  }

  bool done() {
    skip_ws();
    return pos_ >= s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

int counter_index(const std::string& name) {
  for (std::size_t c = 0; c < kNumCounters; ++c) {
    if (name == kCounterNames[c]) return static_cast<int>(c);
  }
  return -1;
}

int histo_index(const std::string& name) {
  for (std::size_t h = 0; h < kNumHistos; ++h) {
    if (name == kHistoNames[h]) return static_cast<int>(h);
  }
  return -1;
}

bool parse_histo(Cursor& cur, HistoSnapshot* out) {
  if (!cur.literal('{')) return false;
  if (cur.literal('}')) return true;
  do {
    std::string key;
    if (!cur.string(&key) || !cur.literal(':')) return false;
    if (key == "buckets") {
      if (!cur.literal('[')) return false;
      std::size_t b = 0;
      if (!cur.peek(']')) {
        do {
          std::uint64_t v = 0;
          if (!cur.number(&v)) return false;
          if (out != nullptr && b < kNumBuckets) out->buckets[b] = v;
          ++b;
        } while (cur.literal(','));
      }
      if (!cur.literal(']')) return false;
    } else {
      std::uint64_t v = 0;
      if (!cur.number(&v)) return false;
      if (out != nullptr) {
        if (key == "count") out->count = v;
        if (key == "sum") out->sum = v;
      }
    }
  } while (cur.literal(','));
  return cur.literal('}');
}

}  // namespace

bool Snapshot::from_json(const std::string& text, Snapshot* out) {
  Snapshot parsed;
  Cursor cur(text);
  if (!cur.literal('{')) return false;
  if (!cur.peek('}')) {
    do {
      std::string section;
      if (!cur.string(&section) || !cur.literal(':')) return false;
      if (!cur.literal('{')) return false;
      if (cur.literal('}')) continue;
      do {
        std::string key;
        if (!cur.string(&key) || !cur.literal(':')) return false;
        if (section == "counters") {
          std::uint64_t v = 0;
          if (!cur.number(&v)) return false;
          const int c = counter_index(key);
          if (c >= 0) parsed.counters[static_cast<std::size_t>(c)] = v;
        } else if (section == "histograms") {
          const int h = histo_index(key);
          HistoSnapshot* dest =
              h >= 0 ? &parsed.histos[static_cast<std::size_t>(h)] : nullptr;
          if (!parse_histo(cur, dest)) return false;
        } else {
          return false;
        }
      } while (cur.literal(','));
      if (!cur.literal('}')) return false;
    } while (cur.literal(','));
  }
  if (!cur.literal('}') || !cur.done()) return false;
  *out = parsed;
  return true;
}

}  // namespace mp::metrics
