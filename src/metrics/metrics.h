#pragma once

// Runtime-wide observability (the metrics registry).
//
// The paper's platform keeps every interesting piece of state — thread
// queues, locks, allocation regions — observable from the client level; this
// module gives the reproduction the measuring instrument to match: one
// process-wide registry of per-proc, cache-line-padded event counters and
// log2-bucketed latency histograms, fed by the arch / gc / threads / cml
// layers and merged on demand into an immutable Snapshot with JSON
// serialization (what the bench binaries dump next to their timings).
//
// Cost model.  Each instrumentation site is a relaxed load of the global
// enable flag plus, when enabled, relaxed fetch_adds on a slot owned by the
// current proc (no shared cache lines on the hot path).  Building with
// -DMPNJ_METRICS=0 (CMake option MPNJ_METRICS=OFF) compiles every site away
// entirely, so the uninstrumented fast path is bit-identical to the seed.

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "arch/cacheline.h"

#ifndef MPNJ_METRICS
#define MPNJ_METRICS 1
#endif

namespace mp::metrics {

// Monotonic event counters.  One enumerator per instrumented event; names
// (counter_name) are the keys used in the JSON snapshot.
enum class Counter : std::uint32_t {
  // Lock layer (arch test-and-set words and platform MutexLocks).
  kLockAcquires,       // successful lock acquisitions
  kLockContended,      // acquisitions that had to spin at least once
  kLockSpinIters,      // total failed test-and-set retries while spinning
  kLockBackoffRounds,  // exponential-backoff delays taken while spinning
  // Thread-level queue locks (threads/qlock.h, threads/sync.h).
  kLockParkWaits,      // claims that parked the thread after the bounded spin
  kLockHandoffs,       // direct grants that rescheduled a parked waiter
  // Heap (gc/heap.cpp).  The structural counters double as the storage
  // behind Heap::stats() and are counted through the always-on tier (see
  // count_always below), so heap statistics survive MPNJ_METRICS=0.
  kGcMinor,          // minor (nursery) collections
  kGcMajor,          // major (semispace) collections
  kGcPauseUsTotal,   // total stop-the-world pause, integer microseconds
  kGcWordsCopied,    // live words copied by collections
  kGcWordsCopiedMinor,  // live words promoted by minor collections
  kGcWordsCopiedMajor,  // live words moved between semispaces by majors
  kGcAllocWords,     // heap words allocated (header + fields)
  kGcAllocs,         // allocation operations
  kGcStores,         // old-generation stores recorded on the store list
  kGcChunkGrabs,     // nursery chunks claimed by procs
  kGcChunkSteals,    // chunk grabs beyond a proc's fair share (paper "steal")
  kGcLargeAllocs,    // allocations routed to the large-object space
  // Card-marking remembered set (gc/heap.cpp, RemsetMode::kCard).  The
  // dirtied/scanned counts back HeapStats and run always-on.
  kGcCardsDirtied,    // clean->dirty card transitions observed by the barrier
  kGcCardsScanned,    // dirty cards re-parsed by minor collections
  kGcCardScanWords,   // old-generation words covered by scanned cards
  kGcCardFlushes,     // per-proc dirty-card buffer flushes to the global list
  // Large-object space (gc/los.cpp).
  kGcLosBytesAllocated,  // object bytes placed in the LOS
  kGcLosBytesSwept,      // object bytes released by post-major sweeps
  kGcLosSweeps,          // post-major sweep passes
  kGcLosMarked,          // LOS objects marked live by major collections
  // Parallel collection (gc/parallel_copy.cpp).
  kGcParCollections,    // collections that ran the parallel copier
  kGcParWorkers,        // workers that participated, summed over collections
  kGcParSteals,         // scan blocks stolen from the shared overflow stack
  kGcParOverflowPushes, // surplus grey blocks published to the overflow stack
  kGcParPadWords,       // to-space words lost to block-tail padding
  kGcParTermRounds,     // termination-detector rounds (steal-fail passes)
  // Thread package (threads/scheduler.cpp).
  kSchedDispatches,  // threads resumed by a dispatch loop
  kSchedPreempts,    // preemption signals acted upon
  kSchedForks,       // threads forked
  kSchedYields,      // voluntary yields
  kSchedIdlePolls,   // empty-queue polling iterations of held procs
  kSchedTimerFires,  // timer callbacks run
  kSchedIdleBackoff,  // bounded-backoff waits taken by idle dispatch loops
  kSchedStealAttempts,  // work-stealing CASes tried against non-empty victims
  kSchedStealCommits,   // steals whose CAS won (threads migrated between procs)
  kSchedParkWaits,      // bounded parks taken by idle procs (port or reactor)
  kSchedParkWakeups,    // parks ended by a targeted wake_one claim
  // CML channels (cml/cml.h).
  kCmlSends,          // send offers committed
  kCmlRecvs,          // receive offers committed
  kCmlSelectRetries,  // dead/retracted candidates skipped while polling
  kCmlOffersParked,   // offers parked on a channel queue
  // I/O reactor (io/reactor.h, io/stream.h, arch/sysio.h).
  kIoWakeups,          // waiters (threads / event offers) woken by readiness
  kIoDispatchBatches,  // reactor dispatch passes that woke at least one waiter
  kIoParked,           // waiters parked against fd / pipe readiness
  kIoNotifies,         // cross-thread reactor wakeup kicks delivered
  kIoEintrRetries,     // raw syscalls transparently restarted after EINTR
  kIoBytesRead,        // payload bytes moved by stream reads
  kIoBytesWritten,     // payload bytes moved by stream writes
  // KV service (kv/service.h, kv/server.h).
  kKvGets,         // GET operations applied by shard owners
  kKvSets,         // SET operations applied
  kKvDels,         // DEL operations applied
  kKvRanges,       // RANGE requests served (one per client request)
  kKvStats,        // per-shard STATS probes applied
  kKvHits,         // GETs that found the key
  kKvMisses,       // GETs that missed
  kKvProtoErrors,  // malformed frames answered with -ERR
  kKvConns,        // connections accepted into the serving loop
  // Pooled stack slots (cont/segment.cpp).  The commit/decommit byte totals
  // are counted through the always-on tier so RSS accounting survives
  // MPNJ_METRICS=0 (current committed bytes = commits - decommits, also
  // exposed directly by SegmentPool::committed_bytes()).
  kContStackCommitBytes,    // stack bytes committed (carve, cold-slot reuse)
  kContStackDecommitBytes,  // stack bytes released (madvise MADV_DONTNEED)
  kContPoolHits,       // acquisitions served without committing pages
  kContPoolMisses,     // acquisitions that had to commit (carve or cold pop)
  kContPoolRecycles,   // slots returned to a free pool
  kContPoolDecommits,  // slots madvised past the global free target
  // Scheduling-event tracer (threads/trace.h).
  kTraceDropped,  // trace events overwritten in the ring buffer
  kNumCounters,
};
inline constexpr std::size_t kNumCounters =
    static_cast<std::size_t>(Counter::kNumCounters);
const char* counter_name(Counter c);

// Log2-bucketed histograms: bucket 0 holds the value 0, bucket i >= 1 holds
// values in [2^(i-1), 2^i).  Cheap to record (a bit-width computation), wide
// enough for anything from spin iterations to pause times in microseconds.
enum class Histo : std::uint32_t {
  // Pause histograms run through the always-on tier (record_always): a pause
  // SLO is a product claim, not optional observability, so the distribution
  // survives MPNJ_METRICS=0 builds and env settings.
  kGcPauseUs,      // stop-the-world pause per collection (wall microseconds)
  kGcMinorPauseUs,  // minor-phase portion of the pause (root gather + copy)
  kGcMajorPauseUs,  // major-phase portion (semispace flip + LOS sweep)
  kGcParWorkerWords,  // words copied per worker per parallel collection
  kGcParSteals,       // overflow-stack steals per parallel collection
  kGcParTermRounds,   // termination-detector rounds per parallel collection
  kLockSpinIters,  // spin iterations per contended acquisition
  kLockHoldUs,     // queue-mutex hold time, acquire to release (microseconds)
  kLockWaitUs,     // queue-mutex wait time per contended acquire (microseconds)
  kRunQueueDepth,  // ready-queue length observed at each dispatch
  kSchedParkUs,    // time spent per bounded park (microseconds)
  kSchedWakeToDispatchUs,  // wake_one claim to next dispatch on the woken proc
  kIoWaitUs,       // parked time per woken I/O waiter (microseconds)
  kIoBatchWakeups,  // waiters woken per non-empty reactor dispatch pass
  // KV service: per-op-kind queueing delay (submit to shard dequeue) and
  // end-to-end service time (submit to in-order reply dequeue at the
  // connection writer), microseconds.
  kKvQueueUsGet,
  kKvQueueUsSet,
  kKvQueueUsDel,
  kKvQueueUsRange,
  kKvReqUsGet,
  kKvReqUsSet,
  kKvReqUsDel,
  kKvReqUsRange,
  kNumHistos,
};
inline constexpr std::size_t kNumHistos =
    static_cast<std::size_t>(Histo::kNumHistos);
const char* histo_name(Histo h);

inline constexpr std::size_t kNumBuckets = 32;

inline std::size_t bucket_of(std::uint64_t value) {
  if (value == 0) return 0;
  std::size_t b = 64 - static_cast<std::size_t>(__builtin_clzll(value));
  return b < kNumBuckets ? b : kNumBuckets - 1;
}

struct HistoSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, kNumBuckets> buckets{};

  friend bool operator==(const HistoSnapshot&, const HistoSnapshot&) = default;
};

// A merged, immutable view of the registry: per-proc slots summed at call
// time (exactly how Heap::stats() merges its per-proc counters).
struct Snapshot {
  std::array<std::uint64_t, kNumCounters> counters{};
  std::array<HistoSnapshot, kNumHistos> histos{};

  std::uint64_t counter(Counter c) const {
    return counters[static_cast<std::size_t>(c)];
  }
  const HistoSnapshot& histo(Histo h) const {
    return histos[static_cast<std::size_t>(h)];
  }

  // {"counters":{...},"histograms":{name:{"count":..,"sum":..,"buckets":[..]}}}
  std::string to_json() const;
  // Parses exactly the shape to_json emits (unknown names are ignored so
  // snapshots survive counter additions).  Returns false on malformed input.
  static bool from_json(const std::string& text, Snapshot* out);

  friend bool operator==(const Snapshot&, const Snapshot&) = default;
};

// The registry proper.  Increments land in one of kMaxSlots cache-line-
// padded slots; the executing proc's slot is named by a thread-local set
// with bind_slot (platform backends bind proc id; the simulator re-binds on
// every virtual-proc switch).  Threads that never bind — benchmark harness
// threads, tests — lazily take a distinct slot, so concurrent increments
// never contend on one line either way.
class Registry {
 public:
  static constexpr std::size_t kMaxSlots = 64;

  Registry();

  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Names the slot used by the calling OS thread (wrapped modulo kMaxSlots).
  static void bind_slot(int slot);
  static void unbind_slot();

  void count(Counter c, std::uint64_t n = 1) {
    if (!enabled()) return;
    slot().counters[static_cast<std::size_t>(c)].fetch_add(
        n, std::memory_order_relaxed);
  }

  // Always-on tier: structural runtime statistics (heap collection counts,
  // allocation totals) that Heap::stats() and the benchmark reports are
  // built from.  These bypass the enable flag — they are bookkeeping the
  // runtime itself relies on, not optional observability — and they remain
  // live under -DMPNJ_METRICS=0 builds (the seed kept the same counts as
  // plain per-proc fields, so the cost is unchanged: a relaxed add on a
  // slot owned by the current proc).
  void count_always(Counter c, std::uint64_t n = 1) {
    slot().counters[static_cast<std::size_t>(c)].fetch_add(
        n, std::memory_order_relaxed);
  }

  void record(Histo h, std::uint64_t value) {
    if (!enabled()) return;
    record_always(h, value);
  }

  // Always-on histogram tier (the counterpart of count_always): the GC pause
  // distributions bypass the enable flag because the pause-SLO reports are
  // built from them.
  void record_always(Histo h, std::uint64_t value) {
    Slot& s = slot();
    const auto i = static_cast<std::size_t>(h);
    s.histo_buckets[i][bucket_of(value)].fetch_add(1,
                                                   std::memory_order_relaxed);
    s.histo_sum[i].fetch_add(value, std::memory_order_relaxed);
  }

  Snapshot snapshot() const;
  void reset();

 private:
  struct alignas(arch::kCacheLine) Slot {
    std::atomic<std::uint64_t> counters[kNumCounters];
    std::atomic<std::uint64_t> histo_buckets[kNumHistos][kNumBuckets];
    std::atomic<std::uint64_t> histo_sum[kNumHistos];
  };

  Slot& slot();

  std::atomic<bool> enabled_{true};
  std::atomic<std::uint32_t> next_slot_{0};
  std::array<Slot, kMaxSlots> slots_{};
};

// The process-wide registry every instrumentation site feeds.
Registry& registry();

// Inline front doors used by the MPNJ_METRIC_* macros.
inline void count_event(Counter c, std::uint64_t n = 1) {
  registry().count(c, n);
}
inline void count_event_always(Counter c, std::uint64_t n = 1) {
  registry().count_always(c, n);
}
inline void record_value(Histo h, std::uint64_t value) {
  registry().record(h, value);
}
inline void record_value_always(Histo h, std::uint64_t value) {
  registry().record_always(h, value);
}

}  // namespace mp::metrics

// Instrumentation macros: compiled away entirely under -DMPNJ_METRICS=0 so
// the uninstrumented fast path is unchanged.
#if MPNJ_METRICS
#define MPNJ_METRIC_COUNT(c, n) \
  ::mp::metrics::count_event(::mp::metrics::Counter::c, (n))
#define MPNJ_METRIC_RECORD(h, v) \
  ::mp::metrics::record_value(::mp::metrics::Histo::h, (v))
#else
#define MPNJ_METRIC_COUNT(c, n) ((void)0)
#define MPNJ_METRIC_RECORD(h, v) ((void)0)
#endif

// Always-on tier: live in every build configuration (Heap::stats(), the
// pause-SLO reports and the benchmark tables depend on these being real).
#define MPNJ_METRIC_COUNT_ALWAYS(c, n) \
  ::mp::metrics::count_event_always(::mp::metrics::Counter::c, (n))
#define MPNJ_METRIC_RECORD_ALWAYS(h, v) \
  ::mp::metrics::record_value_always(::mp::metrics::Histo::h, (v))
