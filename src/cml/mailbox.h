#pragma once

#include <cstddef>
#include <deque>

#include "cont/cont.h"
#include "threads/scheduler.h"
#include "threads/sync.h"

// An asynchronous buffered channel (CML's mailbox): send enqueues and
// returns immediately — it never parks the sender waiting for a receiver —
// while recv blocks (the thread, never the proc) until a message is
// available.  Messages from one sender are received in the order they were
// sent; messages from different senders interleave in enqueue order.
//
// This is the complement of cml::Channel's rendezvous discipline, for the
// cases where the *sender* must not inherit the receiver's pace: a shard
// owner delivering replies to connection writers (src/kv) must never be
// parked by one stalled connection, or that connection head-of-line blocks
// the shard for everyone else.  The cost of the decoupling is that the
// buffer is unbounded — a mailbox provides no backpressure, so the
// producer-side protocol must bound what can be outstanding (kv bounds it
// by the rendezvous on the *request* channel: a connection can only owe as
// many replies as requests it managed to submit).
//
// Synthesized from Mutex + CondVar per section 3.3's recipe, so waiting
// receivers park through the scheduler and cost nothing.  Not selective:
// a mailbox is not an Event and cannot appear in a choose(); use a
// rendezvous Channel when selectivity matters.

namespace mp::cml {

template <typename T>
class Mailbox {
  // Buffered values are invisible to the GC between send and recv; only
  // non-traced payloads (raw words, pointers to C++ objects) are safe.
  static_assert(!cont::is_gc_traced<T>::value,
                "Mailbox buffers values outside any GC root; "
                "use a rendezvous Channel for GC-traced payloads");

 public:
  explicit Mailbox(threads::Scheduler& sched) : mu_(sched), cv_(sched) {}
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  // Enqueue `v` and return.  Never blocks beyond the internal mutex.
  void send(const T& v) {
    mu_.lock();
    q_.push_back(v);
    cv_.signal();
    mu_.unlock();
  }

  // Dequeue the oldest message, parking this thread until one exists.
  T recv() {
    mu_.lock();
    while (q_.empty()) cv_.wait(mu_);
    T v = std::move(q_.front());
    q_.pop_front();
    mu_.unlock();
    return v;
  }

  // Dequeue without blocking: false when the mailbox is empty.
  bool try_recv(T* out) {
    mu_.lock();
    if (q_.empty()) {
      mu_.unlock();
      return false;
    }
    *out = std::move(q_.front());
    q_.pop_front();
    mu_.unlock();
    return true;
  }

  // Momentary size (racy under concurrent senders; for tests and metrics).
  std::size_t size() {
    mu_.lock();
    const std::size_t n = q_.size();
    mu_.unlock();
    return n;
  }

 private:
  threads::Mutex mu_;
  threads::CondVar cv_;
  std::deque<T> q_;
};

}  // namespace mp::cml
