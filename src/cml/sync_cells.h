#pragma once

#include <deque>

#include "cml/cml.h"

// Synchronizing memory cells in the CML tradition, synthesized — like the
// channels — from mutex locks, refs and continuations (paper section 3.3):
//
//   * IVar<T>   — write-once cell; readers block until it is filled.
//   * MVar<T>   — a one-slot channel with take/put semantics.
//   * Mailbox<T> — unbounded buffered channel; send never blocks.

namespace mp::cml {

namespace detail {

// Holds one T; when T is a gc::Value the payload lives in a GlobalRoot so
// collections keep it current while parked inside a C++ structure.
template <typename T>
class PayloadSlot {
 public:
  void set(Platform& p, const T& v) {
    raw_ = cont::detail::encode_slot(v);
    if constexpr (cont::is_gc_traced<T>::value) {
      root_ = gc::GlobalRoot(p.heap(), gc::Value::from_raw_bits(raw_));
    }
  }
  T get() const {
    if constexpr (cont::is_gc_traced<T>::value) {
      return cont::detail::decode_slot<T>(root_.get().raw_bits());
    } else {
      return cont::detail::decode_slot<T>(raw_);
    }
  }

 private:
  std::uint64_t raw_ = 0;
  gc::GlobalRoot root_;
};

}  // namespace detail

// Write-once synchronizing variable.
template <typename T>
class IVar {
 public:
  explicit IVar(threads::Scheduler& sched) : sched_(sched) {
    spin_ = sched_.platform().mutex_lock();
  }
  IVar(const IVar&) = delete;
  IVar& operator=(const IVar&) = delete;

  // Fill the cell and wake every blocked reader.  Filling twice panics
  // (the ML version raises Put).
  void put(const T& v) {
    Platform& p = sched_.platform();
    p.lock(spin_);
    MPNJ_CHECK(!full_, "IVar::put on a full IVar");
    slot_.set(p, v);
    full_ = true;
    std::deque<threads::ThreadState> woken;
    woken.swap(waiters_);
    p.unlock(spin_);
    for (auto& t : woken) sched_.reschedule(std::move(t));
  }

  // Read the cell, blocking until it has been filled.
  T get() {
    Platform& p = sched_.platform();
    p.lock(spin_);
    if (full_) {
      p.unlock(spin_);
      return slot_.get();  // immutable once full
    }
    sched_.suspend([&](threads::ThreadState t) {
      waiters_.push_back(std::move(t));
      p.unlock(spin_);
    });
    return slot_.get();
  }

  bool full() {
    Platform& p = sched_.platform();
    p.lock(spin_);
    const bool f = full_;
    p.unlock(spin_);
    return f;
  }

 private:
  threads::Scheduler& sched_;
  MutexLock spin_;
  bool full_ = false;
  detail::PayloadSlot<T> slot_;
  std::deque<threads::ThreadState> waiters_;
};

// One-slot synchronizing variable: put blocks while full, take blocks
// while empty.
template <typename T>
class MVar {
 public:
  explicit MVar(threads::Scheduler& sched) : sched_(sched) {
    spin_ = sched_.platform().mutex_lock();
  }
  MVar(const MVar&) = delete;
  MVar& operator=(const MVar&) = delete;

  void put(const T& v) {
    Platform& p = sched_.platform();
    for (;;) {
      p.lock(spin_);
      if (!full_) {
        slot_.set(p, v);
        full_ = true;
        wake_one(takers_);  // unlocks
        return;
      }
      sched_.suspend([&](threads::ThreadState t) {
        putters_.push_back(std::move(t));
        p.unlock(spin_);
      });
      // Mesa semantics: re-check after waking.
    }
  }

  T take() {
    Platform& p = sched_.platform();
    for (;;) {
      p.lock(spin_);
      if (full_) {
        T v = slot_.get();
        full_ = false;
        wake_one(putters_);  // unlocks
        return v;
      }
      sched_.suspend([&](threads::ThreadState t) {
        takers_.push_back(std::move(t));
        p.unlock(spin_);
      });
    }
  }

  bool try_put(const T& v) {
    Platform& p = sched_.platform();
    p.lock(spin_);
    if (full_) {
      p.unlock(spin_);
      return false;
    }
    slot_.set(p, v);
    full_ = true;
    wake_one(takers_);
    return true;
  }

  std::optional<T> try_take() {
    Platform& p = sched_.platform();
    p.lock(spin_);
    if (!full_) {
      p.unlock(spin_);
      return std::nullopt;
    }
    T v = slot_.get();
    full_ = false;
    wake_one(putters_);
    return v;
  }

 private:
  // Pops one waiter (if any) and releases the spin lock either way.
  void wake_one(std::deque<threads::ThreadState>& q) {
    Platform& p = sched_.platform();
    if (q.empty()) {
      p.unlock(spin_);
      return;
    }
    threads::ThreadState t = std::move(q.front());
    q.pop_front();
    p.unlock(spin_);
    sched_.reschedule(std::move(t));
  }

  threads::Scheduler& sched_;
  MutexLock spin_;
  bool full_ = false;
  detail::PayloadSlot<T> slot_;
  std::deque<threads::ThreadState> putters_;
  std::deque<threads::ThreadState> takers_;
};

// Unbounded buffered channel: send is asynchronous (never blocks), recv
// blocks while empty — CML's Mailbox.
template <typename T>
class Mailbox {
 public:
  explicit Mailbox(threads::Scheduler& sched) : sched_(sched) {
    spin_ = sched_.platform().mutex_lock();
  }
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  void send(const T& v) {
    Platform& p = sched_.platform();
    p.lock(spin_);
    buffer_.emplace_back();
    buffer_.back().set(p, v);
    if (!waiters_.empty()) {
      threads::ThreadState t = std::move(waiters_.front());
      waiters_.pop_front();
      p.unlock(spin_);
      sched_.reschedule(std::move(t));
      return;
    }
    p.unlock(spin_);
  }

  T recv() {
    Platform& p = sched_.platform();
    for (;;) {
      p.lock(spin_);
      if (!buffer_.empty()) {
        T v = buffer_.front().get();
        buffer_.pop_front();
        p.unlock(spin_);
        return v;
      }
      sched_.suspend([&](threads::ThreadState t) {
        waiters_.push_back(std::move(t));
        p.unlock(spin_);
      });
    }
  }

  std::optional<T> try_recv() {
    Platform& p = sched_.platform();
    p.lock(spin_);
    if (buffer_.empty()) {
      p.unlock(spin_);
      return std::nullopt;
    }
    T v = buffer_.front().get();
    buffer_.pop_front();
    p.unlock(spin_);
    return v;
  }

  std::size_t size() {
    Platform& p = sched_.platform();
    p.lock(spin_);
    const std::size_t n = buffer_.size();
    p.unlock(spin_);
    return n;
  }

 private:
  threads::Scheduler& sched_;
  MutexLock spin_;
  std::deque<detail::PayloadSlot<T>> buffer_;
  std::deque<threads::ThreadState> waiters_;
};

}  // namespace mp::cml
