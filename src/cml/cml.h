#pragma once

#include <algorithm>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "gc/roots.h"
#include "metrics/metrics.h"
#include "threads/scheduler.h"
#include "threads/sync.h"

// CSP-style selective communication (paper section 4.2, Figures 4 and 5)
// and a Concurrent-ML-style composable event layer, built from mutex locks,
// refs, and first-class continuations — the multiprocessor CML prototype the
// paper describes.
//
// Commitment protocol.  Figure 5 guards each receiver with a `committed`
// mutex lock that the first matching sender wins.  For full selective
// communication on BOTH sides (an event may offer sends and receives on
// many channels at once) a one-bit lock is not quite enough: Figure 5's
// receive can pop a sender and then discover itself already committed,
// losing the popped sender.  We therefore use the three-state synchronizer
// from Reppy's CML implementation — WAITING / CLAIMED (transient, owned by
// the actively polling thread) / SYNCHED — which lets an active thread
// *retract* a tentative claim when its candidate partner turns out to be
// dead, instead of dropping the candidate.  DESIGN.md records this as a
// deliberate fix of the simplified Figure 5 protocol.

namespace mp::cml {

namespace detail {

enum class SyncSt : std::uint8_t { kWaiting, kClaimed, kSynched };

// Shared synchronization point of one `sync` call: each base event offered
// to a channel queue references this; exactly one base commits.
struct EventState {
  std::atomic<SyncSt> st{SyncSt::kWaiting};
  int fired_base = -1;
  // Set by the offering pass after its last touch of the sync frame.  A
  // partner may commit a parked offer and resume the sync on another proc
  // while the offering pass is still scanning the remaining bases; the
  // resumed side must not return (destroying the event and the frame under
  // the scanner) until the offerer signs off.
  std::atomic<bool> offers_done{false};

  bool synched() const {
    return st.load(std::memory_order_acquire) == SyncSt::kSynched;
  }
  // Owner side: tentatively claim while examining a candidate partner.
  bool try_claim() {
    SyncSt expected = SyncSt::kWaiting;
    return st.compare_exchange_strong(expected, SyncSt::kClaimed,
                                      std::memory_order_acq_rel);
  }
  void retract() { st.store(SyncSt::kWaiting, std::memory_order_release); }
  void commit_self(int base) {
    fired_base = base;
    st.store(SyncSt::kSynched, std::memory_order_release);
  }
  // Partner side: commit a queued waiter.  Spins through the transient
  // CLAIMED state (charging time so the claimant can run in the simulator).
  bool try_commit_partner(int base, Platform& p) {
    for (;;) {
      SyncSt expected = SyncSt::kWaiting;
      if (st.compare_exchange_strong(expected, SyncSt::kSynched,
                                     std::memory_order_acq_rel)) {
        fired_base = base;
        return true;
      }
      if (expected == SyncSt::kSynched) return false;  // already elsewhere
      p.work(5);  // CLAIMED: transient; let the claimant resolve it
    }
  }
};

// A parked offer on a channel queue (the paper's sndr / rcvr records).
struct Waiter {
  std::shared_ptr<EventState> state;
  cont::ContRef k;  // resumed with the raw payload (senders: unit)
  int thread_id = 0;
  int base_index = 0;
  bool gc_payload = false;
  std::uint64_t raw = 0;     // senders: the value being sent (non-GC case)
  gc::GlobalRoot root;       // senders: the value being sent (GC case)

  std::uint64_t payload() const {
    return gc_payload ? root.get().raw_bits() : raw;
  }
};

enum class Outcome { kCommitted, kBlocked, kDead };

}  // namespace detail

template <typename T>
class Channel;

// A first-class synchronous operation producing a T.  Compose with
// Channel::send_event / recv_event, Event::always, Event::choose and
// Event::wrap; perform with sync().
template <typename T>
class Event {
 public:
  Event() = default;

  // An event that is always ready and yields `v`.
  static Event always(const T& v) {
    Event e;
    Base b;
    const std::uint64_t raw = cont::detail::encode_slot(v);
    b.attempt = [raw](threads::Scheduler&,
                      const std::shared_ptr<detail::EventState>& own, int idx,
                      int, const cont::ContRef&,
                      std::uint64_t* out) -> detail::Outcome {
      if (own->synched()) return detail::Outcome::kDead;
      if (!own->try_claim()) return detail::Outcome::kDead;
      own->commit_self(idx);
      *out = raw;
      return detail::Outcome::kCommitted;
    };
    b.convert = [](std::uint64_t bits) {
      return cont::detail::decode_slot<T>(bits);
    };
    e.bases_.push_back(std::move(b));
    return e;
  }

  // Nondeterministic choice: whichever component event can commit first.
  static Event choose(std::vector<Event> events) {
    Event e;
    for (auto& ev : events) {
      for (auto& b : ev.bases_) e.bases_.push_back(std::move(b));
    }
    return e;
  }

  // The event that becomes ready `us` after the sync begins (CML's
  // timeout event).  Only defined for T = Unit; wrap it to change type.
  // Relies on the scheduler's timer facility, so it needs an active
  // dispatch loop to fire (see Scheduler::at).
  static Event after(threads::Scheduler& sched, double us) {
    static_assert(std::is_same_v<T, cont::Unit>,
                  "Event::after yields Unit; use wrap to change its type");
    Event e;
    Base b;
    (void)sched;  // the event is synced on the same scheduler
    b.attempt = [us](threads::Scheduler& s,
                     const std::shared_ptr<detail::EventState>& own, int idx,
                     int tid, const cont::ContRef& k,
                     std::uint64_t* out) -> detail::Outcome {
      Platform& p = s.platform();
      if (us <= 0) {
        if (own->synched() || !own->try_claim()) return detail::Outcome::kDead;
        own->commit_self(idx);
        *out = 0;
        return detail::Outcome::kCommitted;
      }
      // Park an offer; the timer commits it when the deadline passes.
      s.at(p.now_us() + us, [own, k, idx, tid, &s] {
        if (own->try_commit_partner(idx, s.platform())) {
          k.get()->preload(0, false);
          s.reschedule(threads::ThreadState{k, tid});
        }
      });
      return detail::Outcome::kBlocked;
    };
    b.convert = [](std::uint64_t) { return T{}; };
    e.bases_.push_back(std::move(b));
    return e;
  }

  // Extension point for external event sources (the src/io reactor): build
  // an event from one raw base.  `attempt` follows the contract of the
  // channel attempts above — poll once under your own locks, then commit
  // against `own` (commit_self for the immediate case), park an offer whose
  // eventual committer uses try_commit_partner + preload + reschedule, or
  // report kDead; it must release any lock it takes before returning.
  // `convert` maps the committed raw payload to the event's result.
  using AttemptFn = std::function<detail::Outcome(
      threads::Scheduler&, const std::shared_ptr<detail::EventState>&, int,
      int, const cont::ContRef&, std::uint64_t*)>;
  static Event primitive(AttemptFn attempt,
                         std::function<T(std::uint64_t)> convert) {
    Event e;
    Base b;
    b.attempt = std::move(attempt);
    b.convert = std::move(convert);
    e.bases_.push_back(std::move(b));
    return e;
  }

  // Post-process the result (CML's wrap combinator).
  template <typename U>
  Event<U> wrap(std::function<U(T)> f) && {
    Event<U> e;
    for (auto& b : bases_) {
      typename Event<U>::Base nb;
      nb.attempt = std::move(b.attempt);
      nb.convert = [inner = std::move(b.convert), f](std::uint64_t bits) {
        return f(inner(bits));
      };
      e.bases_.push_back(std::move(nb));
    }
    return e;
  }

  // Perform the event: commit immediately against a matching offer if one
  // exists (bases polled in pseudo-random order, as Figure 5's receive
  // randomizes its channel list), otherwise park an offer on every base and
  // yield the proc until a partner commits us.
  T sync(threads::Scheduler& sched) {
    MPNJ_CHECK(!bases_.empty(), "sync of an empty event");
    Platform& p = sched.platform();
    p.work(20);
    auto own = std::make_shared<detail::EventState>();
    int immediate_base = -1;

    // Preemption stays masked for the whole offer/commit sequence: a timer
    // yield in the middle would capture a second continuation for a thread
    // that may already be committed through its parked offers.
    p.mask_signal(Sig::kPreempt);
    const std::uint64_t raw = cont::callcc<std::uint64_t>(
        [&](cont::Cont<std::uint64_t> k) -> std::uint64_t {
          const int tid = sched.id();
          // Randomized polling order.
          std::vector<std::size_t> order(bases_.size());
          for (std::size_t i = 0; i < order.size(); i++) order[i] = i;
          for (std::size_t i = order.size(); i > 1; i--) {
            std::swap(order[i - 1], order[p.rng().below(i)]);
          }
          for (const std::size_t i : order) {
            std::uint64_t out = 0;
            const auto oc = bases_[i].attempt(sched, own, static_cast<int>(i),
                                              tid, k.ref(), &out);
            if (oc == detail::Outcome::kCommitted) {
              immediate_base = static_cast<int>(i);
              // No safe point between here and the implicit throw: `out`
              // may be an unrooted heap value.
              return out;
            }
            if (oc == detail::Outcome::kDead) {
              // A partner committed one of our parked offers while we were
              // scanning; our continuation is (or will be) on the ready
              // queue with the payload preloaded.
              own->offers_done.store(true, std::memory_order_release);
              sched.dispatch_from_blocked();
            }
          }
          // Every base parked an offer: give up the proc.
          own->offers_done.store(true, std::memory_order_release);
          sched.dispatch_from_blocked();
        });
    p.unmask_signal(Sig::kPreempt);
    if (immediate_base < 0) {
      // Parked and committed by a partner: wait for the offering pass to
      // finish with this frame before touching (or destroying) anything it
      // still reads.  work() keeps the spin a safe point and advances the
      // simulator clock so the offerer can run.
      while (!own->offers_done.load(std::memory_order_acquire)) p.work(5);
    }
    const int fired =
        immediate_base >= 0 ? immediate_base : own->fired_base;
    MPNJ_CHECK(fired >= 0, "event resumed without a committed base");
    return bases_[static_cast<std::size_t>(fired)].convert(raw);
  }

 private:
  template <typename>
  friend class Event;
  template <typename>
  friend class Channel;

  struct Base {
    // Polls the base once: commits against a waiting partner, parks an
    // offer, or reports that this sync is already dead.  Releases any
    // channel lock before returning.
    std::function<detail::Outcome(
        threads::Scheduler&, const std::shared_ptr<detail::EventState>&, int,
        int, const cont::ContRef&, std::uint64_t*)>
        attempt;
    std::function<T(std::uint64_t)> convert;
  };

  std::vector<Base> bases_;
};

// A synchronous channel of T (paper Figure 4's 'a chan): send blocks until
// a receiver takes the value and vice versa.
template <typename T>
class Channel {
 public:
  explicit Channel(threads::Scheduler& sched) : sched_(sched) {
    ch_lock_ = sched_.platform().mutex_lock();
  }
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  void send(const T& v) { send_event(v).sync(sched_); }
  T recv() { return recv_event().sync(sched_); }

  // The event of sending `v` on this channel.
  Event<cont::Unit> send_event(const T& v) {
    Event<cont::Unit> e;
    typename Event<cont::Unit>::Base b;
    const std::uint64_t raw = cont::detail::encode_slot(v);
    std::shared_ptr<gc::GlobalRoot> rooted;
    if (cont::is_gc_traced<T>::value) {
      rooted = std::make_shared<gc::GlobalRoot>(
          sched_.platform().heap(), gc::Value::from_raw_bits(raw));
    }
    b.attempt = [this, raw, rooted](
                    threads::Scheduler& sched,
                    const std::shared_ptr<detail::EventState>& own, int idx,
                    int tid, const cont::ContRef& k,
                    std::uint64_t* out) -> detail::Outcome {
      const std::uint64_t payload =
          rooted != nullptr ? rooted->get().raw_bits() : raw;
      return attempt_send(sched, own, idx, tid, k, payload,
                          rooted != nullptr, out);
    };
    b.convert = [](std::uint64_t) { return cont::Unit{}; };
    e.bases_.push_back(std::move(b));
    return e;
  }

  // The event of receiving a value from this channel.
  Event<T> recv_event() {
    Event<T> e;
    typename Event<T>::Base b;
    b.attempt = [this](threads::Scheduler& sched,
                       const std::shared_ptr<detail::EventState>& own, int idx,
                       int tid, const cont::ContRef& k,
                       std::uint64_t* out) -> detail::Outcome {
      return attempt_recv(sched, own, idx, tid, k, out);
    };
    b.convert = [](std::uint64_t bits) {
      return cont::detail::decode_slot<T>(bits);
    };
    e.bases_.push_back(std::move(b));
    return e;
  }

  threads::Scheduler& scheduler() { return sched_; }

 private:
  template <typename>
  friend class Event;

  detail::Outcome attempt_recv(threads::Scheduler& sched,
                               const std::shared_ptr<detail::EventState>& own,
                               int idx, int tid, const cont::ContRef& k,
                               std::uint64_t* out) {
    Platform& p = sched.platform();
    p.lock(ch_lock_);
    for (;;) {
      if (own->synched()) {
        p.unlock(ch_lock_);
        return detail::Outcome::kDead;
      }
      if (sndrs_.empty()) {
        detail::Waiter w;
        w.state = own;
        w.k = k;
        w.thread_id = tid;
        w.base_index = idx;
        w.gc_payload = false;
        rcvrs_.push_back(std::move(w));
        p.unlock(ch_lock_);
        MPNJ_METRIC_COUNT(kCmlOffersParked, 1);
        return detail::Outcome::kBlocked;
      }
      detail::Waiter cand = std::move(sndrs_.front());
      sndrs_.pop_front();
      if (cand.state->synched()) {
        MPNJ_METRIC_COUNT(kCmlSelectRetries, 1);
        continue;  // dead offer: drop it
      }
      if (!own->try_claim()) {
        // We were committed through a parked offer on another channel;
        // put the candidate back (the fix to Figure 5's dropped sender).
        sndrs_.push_front(std::move(cand));
        p.unlock(ch_lock_);
        return detail::Outcome::kDead;
      }
      if (!cand.state->try_commit_partner(cand.base_index, p)) {
        own->retract();
        MPNJ_METRIC_COUNT(kCmlSelectRetries, 1);
        continue;  // candidate died while we claimed; try the next one
      }
      own->commit_self(idx);
      MPNJ_METRIC_COUNT(kCmlRecvs, 1);
      // Wake the sender with unit...
      cand.k.get()->preload(0, false);
      p.unlock(ch_lock_);
      sched.reschedule(
          threads::ThreadState{std::move(cand.k), cand.thread_id});
      // ...and read the payload last: `cand.root` is still registered, so
      // a collection at the reschedule's safe points kept it current.
      *out = cand.payload();
      return detail::Outcome::kCommitted;
    }
  }

  detail::Outcome attempt_send(threads::Scheduler& sched,
                               const std::shared_ptr<detail::EventState>& own,
                               int idx, int tid, const cont::ContRef& k,
                               std::uint64_t payload, bool gc_payload,
                               std::uint64_t* out) {
    Platform& p = sched.platform();
    p.lock(ch_lock_);
    for (;;) {
      if (own->synched()) {
        p.unlock(ch_lock_);
        return detail::Outcome::kDead;
      }
      if (rcvrs_.empty()) {
        detail::Waiter w;
        w.state = own;
        w.k = k;
        w.thread_id = tid;
        w.base_index = idx;
        w.gc_payload = gc_payload;
        w.raw = payload;
        if (gc_payload) {
          w.root = gc::GlobalRoot(p.heap(), gc::Value::from_raw_bits(payload));
        }
        sndrs_.push_back(std::move(w));
        p.unlock(ch_lock_);
        MPNJ_METRIC_COUNT(kCmlOffersParked, 1);
        return detail::Outcome::kBlocked;
      }
      detail::Waiter cand = std::move(rcvrs_.front());
      rcvrs_.pop_front();
      if (cand.state->synched()) {
        MPNJ_METRIC_COUNT(kCmlSelectRetries, 1);
        continue;
      }
      if (!own->try_claim()) {
        rcvrs_.push_front(std::move(cand));
        p.unlock(ch_lock_);
        return detail::Outcome::kDead;
      }
      if (!cand.state->try_commit_partner(cand.base_index, p)) {
        own->retract();
        MPNJ_METRIC_COUNT(kCmlSelectRetries, 1);
        continue;
      }
      own->commit_self(idx);
      MPNJ_METRIC_COUNT(kCmlSends, 1);
      // Deliver the value to the receiver and reschedule it (the paper's
      // reschedule_thread: converting the 'a cont + value into a resumable
      // thread is exactly preload + enqueue here).
      cand.k.get()->preload(payload, gc_payload);
      p.unlock(ch_lock_);
      sched.reschedule(
          threads::ThreadState{std::move(cand.k), cand.thread_id});
      *out = 0;  // the sender's result is unit
      return detail::Outcome::kCommitted;
    }
  }

  threads::Scheduler& sched_;
  MutexLock ch_lock_;
  std::deque<detail::Waiter> sndrs_;
  std::deque<detail::Waiter> rcvrs_;
};

// The paper's SELECT signature (Figure 4): receive a value from one of a
// list of channels, chosen nondeterministically.
template <typename T>
T select_receive(const std::vector<Channel<T>*>& channels) {
  MPNJ_CHECK(!channels.empty(), "receive from an empty channel list");
  std::vector<Event<T>> events;
  events.reserve(channels.size());
  for (Channel<T>* ch : channels) events.push_back(ch->recv_event());
  return Event<T>::choose(std::move(events)).sync(channels[0]->scheduler());
}

// Receive with a timeout: nullopt if no sender rendezvoused within `us`.
template <typename T>
std::optional<T> recv_timeout(Channel<T>& ch, double us) {
  bool timed_out = false;
  T out{};
  Event<cont::Unit>::choose(
      {ch.recv_event().template wrap<cont::Unit>([&](T v) {
        out = v;
        return cont::Unit{};
      }),
       Event<cont::Unit>::after(ch.scheduler(), us)
           .template wrap<cont::Unit>([&](cont::Unit) {
             timed_out = true;
             return cont::Unit{};
           })})
      .sync(ch.scheduler());
  if (timed_out) return std::nullopt;
  return out;
}

// Send with a timeout: false if no receiver rendezvoused within `us`.
template <typename T>
bool send_timeout(Channel<T>& ch, const T& v, double us) {
  bool timed_out = false;
  Event<cont::Unit>::choose(
      {ch.send_event(v),
       Event<cont::Unit>::after(ch.scheduler(), us)
           .template wrap<cont::Unit>([&](cont::Unit) {
             timed_out = true;
             return cont::Unit{};
           })})
      .sync(ch.scheduler());
  return !timed_out;
}

}  // namespace mp::cml
