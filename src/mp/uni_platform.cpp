#include "mp/uni_platform.h"

#include <ctime>

#include "arch/panic.h"
#include "arch/sysio.h"

namespace mp {

namespace {

// No atomic instructions: a uniprocessor cannot race with itself, and
// runtime operations never suspend between a test and a set.
struct UniLockCell final : detail::LockCell {
  bool held = false;
};

UniLockCell& cell_of(const MutexLock& l) {
  MPNJ_CHECK(l.valid(), "operation on an invalid MutexLock");
  return *static_cast<UniLockCell*>(l.cell());
}

}  // namespace

UniPlatform::UniPlatform(UniPlatformConfig config) {
  proc_.id = 0;
  rng_.reseed(config.seed);
  epoch_ = std::chrono::steady_clock::now();
  preempt_interval_us_.store(config.preempt_interval_us);
  init_stacks(config.stack);
  init_heap(config.heap);
}

UniPlatform::~UniPlatform() {
  ticker_stop_.store(true);
  if (ticker_.joinable()) ticker_.join();
}

ProcRec& UniPlatform::self() {
  MPNJ_CHECK(running_, "MP operation outside the proc");
  return proc_;
}

void UniPlatform::for_each_proc(const std::function<void(ProcRec&)>& fn) {
  fn(proc_);
}

bool UniPlatform::backend_acquire(cont::ContRef, Datum) {
  // The single proc is always the caller's: there is never a second
  // processor to acquire.  Clients written against the full platform
  // (Figure 3) degrade gracefully: fork's acquire fails and the parent
  // goes to the ready queue instead, exactly Figure 1's behaviour.
  return false;
}

void UniPlatform::backend_release() {
  safe_point();
  cont::exit_to_idle();
}

void UniPlatform::backend_run(cont::ContRef root, Datum root_datum) {
  if (preempt_interval_us_.load() > 0 && !ticker_.joinable()) {
    set_preempt_interval(preempt_interval_us_.load());
  }
  proc_.datum = root_datum;
  proc_.active = true;
  running_ = true;
  cont::ExecContext* saved = cont::current_exec();
  cont::set_current_exec(&proc_.exec);
  arch::Context idle_ctx;
  proc_.exec.idle_ctx = &idle_ctx;
  cont::run_from_idle(std::move(root), proc_.exec);
  proc_.exec.idle_ctx = nullptr;
  cont::set_current_exec(saved);
  running_ = false;
  proc_.active = false;
  if (!done()) {
    arch::panic(
        "uniprocessor deadlock: the proc was released before the root "
        "computation completed");
  }
  ticker_stop_.store(true);
  if (ticker_.joinable()) ticker_.join();
  ticker_ = std::thread();
}

MutexLock UniPlatform::mutex_lock() {
  return MutexLock(std::make_shared<UniLockCell>());
}

bool UniPlatform::try_lock(const MutexLock& l) {
  UniLockCell& cell = cell_of(l);
  if (cell.held) return false;
  cell.held = true;
  return true;
}

void UniPlatform::lock(const MutexLock& l) {
  // On a uniprocessor a spinning proc starves the (suspended) holder
  // forever; a blocked lock() is therefore a client bug, not a wait.
  MPNJ_CHECK(try_lock(l),
             "uniprocessor lock() on a held lock would spin forever");
}

void UniPlatform::unlock(const MutexLock& l) { cell_of(l).held = false; }

void UniPlatform::work(double) { safe_point(); }

double UniPlatform::now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void UniPlatform::safe_point() { deliver_pending_signals(proc_); }

void UniPlatform::idle_wait(double max_us) {
  safe_point();
  if (max_us <= 0) return;
  timespec ts;
  ts.tv_sec = static_cast<time_t>(max_us / 1e6);
  ts.tv_nsec = static_cast<long>((max_us - static_cast<double>(ts.tv_sec) * 1e6) * 1e3);
  arch::retry_eintr([&] { return ::nanosleep(&ts, &ts); });
  safe_point();
}

void UniPlatform::set_preempt_interval(double us) {
  preempt_interval_us_.store(us);
  if (us > 0 && !ticker_.joinable()) {
    ticker_stop_.store(false);
    ticker_ = std::thread([this] {
      while (!ticker_stop_.load(std::memory_order_acquire)) {
        const double interval = preempt_interval_us_.load();
        if (interval <= 0) break;
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::micro>(interval));
        post_signal(Sig::kPreempt);
      }
    });
  }
}

}  // namespace mp
