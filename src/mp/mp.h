#pragma once

// Umbrella header: the whole MP stack for clients who want one include.
//
//   #include "mp/mp.h"
//
//   mp::NativePlatform platform({.max_procs = 4});
//   mp::threads::Scheduler::run(platform, {}, [&](auto& s) { ... });

#include "cml/cml.h"
#include "cml/sync_cells.h"
#include "gc/heap.h"
#include "gc/roots.h"
#include "gc/value.h"
#include "mp/native_platform.h"
#include "mp/platform.h"
#include "mp/sim_platform.h"
#include "mp/uni_platform.h"
#include "threads/mlthreads.h"
#include "threads/scheduler.h"
#include "threads/sync.h"
#include "threads/trace.h"
#include "threads/unithread.h"
