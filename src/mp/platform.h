#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>

#include "arch/rng.h"
#include "arch/tas.h"
#include "cont/cont.h"
#include "gc/heap.h"
#include "gc/hooks.h"

// The MP platform (paper section 3): a processor abstraction (Proc) and a
// mutex lock abstraction (Lock) which, together with first-class
// continuations, suffice to build multiprocessor thread packages entirely
// above the runtime.  Two backends implement the interface:
//
//   * NativePlatform (native_platform.h) — procs are kernel threads, locks
//     are hardware test-and-set words; functional parallelism on a real
//     multiprocessor.
//   * SimPlatform (sim_platform.h) — procs are virtual processors of a
//     deterministic machine simulation (sim/engine.h) with a shared-bus
//     cost model; this is the substrate the benchmark harness uses to
//     reproduce the paper's Sequent/SGI measurements.
//
// Client code (src/threads, src/cml, workloads) is written once against
// Platform and runs unchanged on either backend.

namespace mp {

// The client-defined per-proc datum (paper section 3.2).  One machine word,
// read/written by the dedicated-register analogue get_datum/set_datum.
// Clients needing richer state store a pointer here.  The datum is not
// traced by the collector; GC values reachable only through a datum must
// also be held in a GlobalRoot.
using Datum = std::uintptr_t;

// Raised by acquire_proc when every proc is in use (Proc.No_More_Procs).
class NoMoreProcs : public std::exception {
 public:
  const char* what() const noexcept override {
    return "Proc.No_More_Procs: no processor available";
  }
};

namespace detail {
// Backend-specific lock state; clients only ever see MutexLock handles.
struct LockCell {
  virtual ~LockCell() = default;
};
}  // namespace detail

// A first-class mutex lock value (paper section 3.3): a one-bit atomically
// test-and-set location, usable as a spin lock, unlockable by any proc.
// Copyable and cheap to pass around; the cell is reclaimed when the last
// handle drops (in SML the cell would simply be garbage collected).
class MutexLock {
 public:
  MutexLock() = default;
  explicit MutexLock(std::shared_ptr<detail::LockCell> cell)
      : cell_(std::move(cell)) {}
  detail::LockCell* cell() const { return cell_.get(); }
  bool valid() const { return cell_ != nullptr; }
  friend bool operator==(const MutexLock& a, const MutexLock& b) {
    return a.cell_ == b.cell_;
  }

 private:
  std::shared_ptr<detail::LockCell> cell_;
};

// Signals (paper section 3.4): handlers are installed globally — all procs
// share the same handler table and every proc receives each posted signal —
// while masking is controlled per proc.  kPreempt is posted by the platform
// timer when preemption is enabled.
enum class Sig : int { kPreempt = 0, kUsr1 = 1, kUsr2 = 2 };
inline constexpr int kNumSignals = 3;

// State of one proc, shared between the generic layer and the backends.
struct ProcRec {
  int id = -1;
  Datum datum = 0;
  cont::ExecContext exec;
  std::uint32_t sig_mask = 0;               // per-proc signal mask
  std::atomic<std::uint32_t> sig_pending{0};  // posted, not yet delivered
  bool active = false;  // currently holding a processor for a client
};

// Every backend implements both halves of the collector-facing API: the
// gc::Rendezvous stop-the-world / worker-routing protocol and the
// gc::Accounting cost charges (gc/hooks.h).
class Platform : public gc::Rendezvous, public gc::Accounting {
 public:
  ~Platform() override = default;

  // ---- Proc (paper Figure 2) ----

  // Start `k` running in parallel with the caller on a newly acquired proc,
  // with the given per-proc datum.  Throws NoMoreProcs at the proc limit.
  void acquire_proc(cont::Cont<cont::Unit> k, Datum datum);
  // Non-throwing form; returns false at the proc limit.  On failure the
  // continuation has already had its unit value delivered, so the caller
  // can still reschedule it onto a ready queue and fire it later.
  bool try_acquire_proc(cont::Cont<cont::Unit> k, Datum datum);
  // Convenience: acquire a proc to run `f` from scratch (no capture point
  // needed).  Used by schedulers to start their per-proc dispatch loops.
  bool try_acquire_entry(std::function<void()> f, Datum datum) {
    return backend_acquire(cont::make_entry(std::move(f)), datum);
  }
  // Stop executing and return this processor to the operating system.  The
  // caller saves its state with callcc first if it wants to continue later.
  [[noreturn]] void release_proc();

  Datum get_datum() { return self().datum; }
  void set_datum(Datum d) { self().datum = d; }

  // Extensions beyond the paper's signature, needed by schedulers and the
  // benchmark harness.
  int proc_id() { return self().id; }
  virtual int max_procs() const = 0;
  virtual int active_procs() const = 0;

  // ---- Lock (paper Figure 2) ----

  virtual MutexLock mutex_lock() = 0;                // fresh unlocked lock
  virtual bool try_lock(const MutexLock& l) = 0;     // atomic test-and-set
  virtual void lock(const MutexLock& l) = 0;         // spin (maybe backoff)
  virtual void unlock(const MutexLock& l) = 0;       // any proc may unlock

  // ---- Virtual work and time ----

  // Account `instructions` of client computation.  On the simulator this
  // advances virtual time (and is a safe point); on native hardware the
  // computation itself is the cost and this is a plain safe point.
  virtual void work(double instructions) = 0;
  virtual double now_us() = 0;
  // GC poll + signal delivery point.  Runtime operations call this; any
  // Value not held in a Roots frame is invalid across it.
  virtual void safe_point() = 0;
  // Brackets a scheduler's "no work available, polling" loop so the
  // simulator accounts the time as processor idle time (paper section 6
  // reports idle rates; native backend ignores the hint).
  virtual void begin_idle_poll() {}
  virtual void end_idle_poll() {}
  // Bounded cheap wait used by an idle proc that has nothing to run:
  // on native backends the proc sleeps (instead of burning a processor
  // spinning), on the simulator virtual time advances by `max_us`.  Both
  // ends are safe points, and callers must keep `max_us` small enough that
  // a waiting proc stays responsive to collections and posted signals.
  virtual void idle_wait(double max_us) {
    (void)max_us;
    safe_point();
  }
  // Targeted park/unpark (the scheduler's per-proc wakeup protocol).  A
  // proc with nothing to run parks itself for at most `max_us`; any proc —
  // or non-proc thread — can unpark a specific proc by id with one cheap,
  // async-thread-safe kick (an eventfd write on the native backend; a
  // deterministic pending flag on the simulator).  An unpark posted while
  // the target is not parked persists and makes its next park return
  // immediately, so the enqueue-then-unpark order never loses a wakeup.
  // Like idle_wait, both ends are safe points and callers must keep
  // `max_us` bounded; the default degrades to a plain bounded idle wait.
  virtual void park_proc(double max_us) { idle_wait(max_us); }
  virtual void unpark_proc(int proc_id) { (void)proc_id; }
  // Account one hardware compare-and-swap (work-stealing takes, park-state
  // claims).  Free on real hardware; the simulator charges the machine
  // model's CAS cost and a bus transaction.
  virtual void charge_cas() {}
  // Account one queue-lock direct handoff (threads/qlock.h): the grant
  // exchange plus the line transfer that moves the freshly released state to
  // the next holder's cache.  Free on real hardware (the traffic is the
  // cost); the simulator charges the machine model's handoff latency so
  // lock-bound traces stay deterministic.
  virtual void charge_lock_handoff() {}
  // Deterministic per-proc random stream (scheduling decisions, workloads).
  virtual arch::Rng& rng() = 0;

  // ---- Signals (paper section 3.4) ----

  void set_signal_handler(Sig s, std::function<void()> handler);
  void mask_signal(Sig s);
  void unmask_signal(Sig s);
  bool signal_masked(Sig s);
  // Deliver `s` to every proc at its next safe point.
  void post_signal(Sig s);
  // Hook run whenever the platform needs every proc to reach a safe point
  // promptly: after posting a signal, and (on native backends) when a
  // collector begins stopping the world.  The I/O reactor installs a
  // callback here that interrupts its blocking OS wait, so a proc parked in
  // the kernel never stalls preemption or a stop-the-world.  May be invoked
  // from non-proc threads (the preemption ticker); the hook must therefore
  // be async-thread-safe and must not take platform locks.
  void set_wake_hook(std::function<void()> hook);
  // Enable preemption: kPreempt is posted to each proc every `us` of its
  // execution (0 disables).  The thread package installs a yield handler.
  virtual void set_preempt_interval(double us) = 0;

  // ---- Heap ----
  gc::Heap& heap() { return *heap_; }
  const gc::Heap& heap() const { return *heap_; }

  // ---- Running ----

  // Execute `root` as the root proc's computation; returns when it has
  // completed and every proc has been released.
  void run(std::function<void()> root, Datum root_datum = 0);
  bool done() const { return done_.load(std::memory_order_acquire); }

 protected:
  Platform() = default;
  void init_heap(const gc::HeapConfig& config) {
    heap_ = std::make_unique<gc::Heap>(config, *this, *this);
  }
  // Apply the backend config's stack geometry to the process-wide segment
  // pool (cont/stack_config.h).  Called from every backend constructor,
  // before any proc can acquire a segment; validates and panics on
  // degenerate geometry the same way HeapConfig does.
  void init_stacks(const cont::StackConfig& config) {
    cont::SegmentPool::instance().configure(config);
  }

  virtual ProcRec& self() = 0;
  virtual void for_each_proc(const std::function<void(ProcRec&)>& fn) = 0;
  virtual bool backend_acquire(cont::ContRef k, Datum datum) = 0;
  [[noreturn]] virtual void backend_release() = 0;
  virtual void backend_run(cont::ContRef root, Datum root_datum) = 0;
  virtual void on_done() {}

  // Run any pending unmasked handlers for the current proc.  Called by the
  // backends at safe points.
  void deliver_pending_signals(ProcRec& p);
  void post_signal_to(ProcRec& p, Sig s);
  // Invoke the registered wake hook, if any (backends call this from
  // stop_world so reactor-parked procs reach their GC safe point).
  void run_wake_hook();

  std::atomic<bool> done_{false};

 private:
  std::function<void()> handlers_[kNumSignals];
  arch::TasWord handler_lock_;
  std::atomic<std::shared_ptr<const std::function<void()>>> wake_hook_;
  std::unique_ptr<gc::Heap> heap_;
};

}  // namespace mp
