#pragma once

#include <memory>
#include <vector>

#include "mp/platform.h"
#include "sim/engine.h"
#include "sim/machine.h"

namespace mp {

// Aggregate measurements of one simulated run — everything the benchmark
// harness needs to reproduce the paper's Figure 6 curves and in-text tables
// (idle rates, lock contention, bus traffic, GC share).
struct SimReport {
  double total_us = 0;       // elapsed virtual time (max over proc clocks)
  double busy_us = 0;        // summed over procs
  double spin_us = 0;        // subset of busy: spinning on MP locks
  double idle_us = 0;        // parked with no work (incl. trailing idle)
  double gc_wait_us = 0;     // parked at clean points during collections
  double gc_us = 0;          // sequential collection time (collector procs)
  double bus_wait_us = 0;    // stalled waiting for the shared bus
  std::uint64_t lock_acquires = 0;
  std::uint64_t lock_spin_iters = 0;
  sim::BusStats bus;
  gc::HeapStats heap;
  int procs = 0;

  double idle_fraction() const {
    const double denom = total_us * procs;
    return denom > 0 ? (idle_us + gc_wait_us) / denom : 0.0;
  }
  double bus_utilization() const {
    return total_us > 0 ? bus.busy_us / total_us : 0.0;
  }
  double bus_mb_per_s() const {
    return total_us > 0 ? static_cast<double>(bus.bytes) / total_us : 0.0;
  }
};

struct SimPlatformConfig {
  sim::MachineModel machine;
  gc::HeapConfig heap;
  cont::StackConfig stack;
  double preempt_interval_us = 0;  // 0 = no preemption
  // Exponential backoff between spin retries (Anderson); 0 = naive spin.
  double lock_backoff_base_us = 0;
};

// MP on the simulated multiprocessor: each proc is a virtual processor of
// the engine, lock and allocation costs follow the machine model, and runs
// are bit-for-bit deterministic for a given config.
class SimPlatform final : public Platform {
 public:
  explicit SimPlatform(SimPlatformConfig config);
  ~SimPlatform() override;

  // ---- Platform ----
  int max_procs() const override;
  int active_procs() const override;
  MutexLock mutex_lock() override;
  bool try_lock(const MutexLock& l) override;
  void lock(const MutexLock& l) override;
  void unlock(const MutexLock& l) override;
  void work(double instructions) override;
  double now_us() override;
  void safe_point() override;
  void begin_idle_poll() override;
  void end_idle_poll() override;
  void idle_wait(double max_us) override;
  void park_proc(double max_us) override;
  void unpark_proc(int proc_id) override;
  void charge_cas() override;
  void charge_lock_handoff() override;
  arch::Rng& rng() override;
  void set_preempt_interval(double us) override;

  // ---- gc::Rendezvous ----
  // The simulation runs every proc on one kernel thread, so parked fibers
  // cannot actually execute the worker fn: the collecting proc is the only
  // real worker and parallel collection is modeled in charge_gc instead.
  void stop_world(gc::WorkerFn work) override;
  void resume_world() override;
  void rendezvous_and_work(const gc::WorkerFn& work) override;
  int cur_proc() override;
  int nproc() override;
  cont::ExecContext* proc_exec(int id) override;

  // ---- gc::Accounting ----
  void charge_gc(std::uint64_t words_copied) override;
  void charge_alloc(std::uint64_t words) override;
  void charge_card_scan(std::uint64_t cards, std::uint64_t words) override;
  void charge_los_alloc(std::uint64_t pages) override;
  void charge_los_sweep(std::uint64_t pages) override;

  // ---- simulation access ----
  sim::Engine& engine() { return *engine_; }
  const sim::MachineModel& machine() const { return cfg_.machine; }
  SimReport report() const;

 protected:
  ProcRec& self() override;
  void for_each_proc(const std::function<void(ProcRec&)>& fn) override;
  bool backend_acquire(cont::ContRef k, Datum datum) override;
  [[noreturn]] void backend_release() override;
  void backend_run(cont::ContRef root, Datum root_datum) override;

 private:
  struct SimProc : ProcRec {
    cont::ContRef mailbox;
    bool has_work = false;
    bool idle_polling = false;
    double idle_poll_start = 0;
    double idle_poll_us = 0;  // accounted separately in the report
    // Posted unpark not yet consumed by a park (all sim procs share one
    // OS thread, so a plain bool is race-free and deterministic).
    bool unpark_pending = false;
  };

  void proc_main(int id);
  void on_timer(int id);
  bool raw_try_lock(const MutexLock& l);

  SimPlatformConfig cfg_;
  std::unique_ptr<sim::Engine> engine_;
  std::vector<std::unique_ptr<SimProc>> procs_;
};

}  // namespace mp
