#pragma once

#include <chrono>
#include <thread>

#include "mp/platform.h"

namespace mp {

struct UniPlatformConfig {
  gc::HeapConfig heap;
  cont::StackConfig stack;
  double preempt_interval_us = 0;
  std::uint64_t seed = 0x5eed;
};

// The paper's "trivial uniprocessor implementation [that] works on all
// processors that run SML/NJ": exactly one proc (the calling thread), no
// kernel threads, and locks that are plain booleans — elementary exclusion
// is free on a uniprocessor (Wand), so no atomic instructions are needed.
// acquire_proc always reports No_More_Procs, which makes the Figure 3
// thread package degenerate gracefully into the Figure 1 uniprocessor one.
//
// Combined with the portable ucontext context-switch backend
// (-DMPNJ_CTX_UCONTEXT=ON) this backend runs on any POSIX system with no
// machine-dependent code at all.
class UniPlatform final : public Platform {
 public:
  explicit UniPlatform(UniPlatformConfig config = {});
  ~UniPlatform() override;

  // ---- Platform ----
  int max_procs() const override { return 1; }
  int active_procs() const override { return proc_.active ? 1 : 0; }
  MutexLock mutex_lock() override;
  bool try_lock(const MutexLock& l) override;
  void lock(const MutexLock& l) override;
  void unlock(const MutexLock& l) override;
  void work(double instructions) override;
  double now_us() override;
  void safe_point() override;
  void idle_wait(double max_us) override;
  arch::Rng& rng() override { return rng_; }
  void set_preempt_interval(double us) override;

  // ---- gc::Rendezvous (a one-proc world never needs to stop; the
  // collecting proc is the collection's single, degenerate worker) ----
  void stop_world(gc::WorkerFn) override {}
  void resume_world() override {}
  void rendezvous_and_work(const gc::WorkerFn&) override {}
  int cur_proc() override { return running_ ? 0 : -1; }
  int nproc() override { return 1; }
  cont::ExecContext* proc_exec(int) override { return &proc_.exec; }

  // ---- gc::Accounting ----
  void charge_gc(std::uint64_t) override {}
  void charge_alloc(std::uint64_t) override {}
  void charge_card_scan(std::uint64_t, std::uint64_t) override {}
  void charge_los_alloc(std::uint64_t) override {}
  void charge_los_sweep(std::uint64_t) override {}

 protected:
  ProcRec& self() override;
  void for_each_proc(const std::function<void(ProcRec&)>& fn) override;
  bool backend_acquire(cont::ContRef k, Datum datum) override;
  [[noreturn]] void backend_release() override;
  void backend_run(cont::ContRef root, Datum root_datum) override;

 private:
  ProcRec proc_;
  bool running_ = false;
  arch::Rng rng_;
  std::chrono::steady_clock::time_point epoch_;
  std::thread ticker_;
  std::atomic<bool> ticker_stop_{false};
  std::atomic<double> preempt_interval_us_{0};
};

}  // namespace mp
