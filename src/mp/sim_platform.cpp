#include "mp/sim_platform.h"

#include <algorithm>

#include "arch/panic.h"
#include "fuzz/hooks.h"
#include "metrics/metrics.h"

namespace mp {

namespace {

struct SimLockCell final : detail::LockCell {
  bool held = false;
};

SimLockCell& cell_of(const MutexLock& l) {
  MPNJ_CHECK(l.valid(), "operation on an invalid MutexLock");
  return *static_cast<SimLockCell*>(l.cell());
}

// Schedule-fuzzer cost point: inject the sink's virtual-time jitter before
// the operation.  Each charge is an engine scheduling point, so delaying
// this proc here slides it across the other procs' histories — an
// interleaving perturbation the cost model stays consistent under.  With
// no sink installed this is one relaxed load.
inline void fuzz_jitter(sim::Engine& eng, fuzz::Kind k) {
  if (fuzz::installed_sink() == nullptr) return;
  if (eng.current() < 0) return;
  const double j = fuzz::point(k);
  if (j > 0) eng.charge_us(j);
}

}  // namespace

SimPlatform::SimPlatform(SimPlatformConfig config) : cfg_(std::move(config)) {
  engine_ = std::make_unique<sim::Engine>(
      cfg_.machine, [this](int id) { proc_main(id); });
  procs_.reserve(static_cast<std::size_t>(cfg_.machine.num_procs));
  for (int i = 0; i < cfg_.machine.num_procs; i++) {
    auto p = std::make_unique<SimProc>();
    p->id = i;
    procs_.push_back(std::move(p));
  }
  engine_->set_resume_hook([this](int id) {
    cont::set_current_exec(&procs_[static_cast<std::size_t>(id)]->exec);
    // All simulated procs share one OS thread; rebinding the metrics slot at
    // every resume keeps per-proc attribution anyway.
    metrics::Registry::bind_slot(id);
  });
  engine_->set_timer_hook([this](int id) { on_timer(id); });
  init_stacks(cfg_.stack);
  // Start from a cold slot pool: decommit every warm free slot left over
  // from earlier runs in this process.  A cold-slot acquire and a fresh
  // carve charge the same commit cost, so with no warm slots at boot the
  // charge sequence — and therefore the whole run — is bit-reproducible
  // no matter what ran before.
  cont::SegmentPool::instance().trim();
  // Charge stack-slot commit/decommit traffic to the proc doing it.  The
  // pool fires the hook outside its lock, and only real page transitions
  // reach it (cache-hot recycles are free), so this prices exactly the cold
  // paths.  Pool work on the engine's own thread between proc runs
  // (current() < 0) is simulation bookkeeping, not proc time: skip it.
  cont::SegmentPool::instance().set_accounting(
      [](void* arg, std::int64_t commit_bytes, std::int64_t decommit_bytes) {
        auto* self = static_cast<SimPlatform*>(arg);
        sim::Engine& eng = *self->engine_;
        if (eng.current() < 0) return;
        const sim::MachineModel& m = self->cfg_.machine;
        constexpr double kPage = 4096.0;
        const double us =
            (static_cast<double>(commit_bytes) / kPage) *
                m.stack_commit_us_per_page +
            (static_cast<double>(decommit_bytes) / kPage) *
                m.stack_decommit_us_per_page;
        if (us > 0) eng.charge_us(us);
      },
      this);
  init_heap(cfg_.heap);
}

SimPlatform::~SimPlatform() {
  // Defensive mirror of the clear in backend_run: if a run was abandoned
  // (panic path, engine never drained), the thread-local exec may still
  // name one of the procs freed below.
  for (auto& p : procs_) {
    if (cont::current_exec() == &p->exec) {
      cont::set_current_exec(nullptr);
      break;
    }
  }
  cont::SegmentPool::instance().set_accounting(nullptr, nullptr);
}

// ----- proc lifecycle -----

void SimPlatform::proc_main(int id) {
  SimProc& p = *procs_[static_cast<std::size_t>(id)];
  p.exec.idle_ctx = nullptr;  // set per entry by run_from_idle convention
  for (;;) {
    while (!p.has_work) engine_->idle_wait();
    p.has_work = false;
    cont::ContRef k = std::move(p.mailbox);
    p.active = true;
    if (cfg_.preempt_interval_us > 0) {
      engine_->arm_hook(id, engine_->now() + cfg_.preempt_interval_us +
                                fuzz::point(fuzz::Kind::kPreemptArm));
    }
    arch::Context idle_ctx;
    p.exec.idle_ctx = &idle_ctx;
    cont::run_from_idle(std::move(k), p.exec);
    p.exec.idle_ctx = nullptr;
    p.active = false;
  }
}

bool SimPlatform::backend_acquire(cont::ContRef k, Datum datum) {
  const bool on_proc = engine_->current() >= 0;
  for (auto& up : procs_) {
    SimProc& p = *up;
    if (!p.active && !p.has_work && engine_->is_idle(p.id)) {
      // Only a successful acquisition pays the operating-system call
      // (acquire_proc "requires communication with the operating system",
      // section 3.1); once every proc is held — the common case in the
      // evaluated configuration — the failing check is a cheap user-level
      // test.
      if (on_proc) engine_->charge_us(cfg_.machine.proc_acquire_us);
      p.mailbox = std::move(k);
      p.has_work = true;
      p.datum = datum;
      engine_->wake(p.id, on_proc ? engine_->now() : 0.0);
      return true;
    }
  }
  if (on_proc) engine_->charge_instr(20);
  return false;
}

void SimPlatform::backend_release() {
  engine_->charge_us(cfg_.machine.proc_release_us);
  cont::exit_to_idle();
}

void SimPlatform::backend_run(cont::ContRef root, Datum root_datum) {
  const bool posted = backend_acquire(std::move(root), root_datum);
  MPNJ_CHECK(posted, "could not start the root proc");
  engine_->run();
  // The resume hook pointed the thread-local exec at whichever virtual proc
  // ran last; that proc's ExecContext dies with this platform, so the
  // pointer must not outlive the run.
  cont::set_current_exec(nullptr);
  if (!done()) {
    arch::panic(
        "simulated deadlock: all procs idle but the root computation has "
        "not completed");
  }
}

// ----- identity -----

ProcRec& SimPlatform::self() {
  const int id = engine_->current();
  MPNJ_CHECK(id >= 0, "MP operation outside a running proc");
  return *procs_[static_cast<std::size_t>(id)];
}

void SimPlatform::for_each_proc(const std::function<void(ProcRec&)>& fn) {
  for (auto& p : procs_) fn(*p);
}

int SimPlatform::max_procs() const { return cfg_.machine.num_procs; }

int SimPlatform::active_procs() const {
  int n = 0;
  for (const auto& p : procs_) {
    if (p->active) n++;
  }
  return n;
}

// ----- locks -----

MutexLock SimPlatform::mutex_lock() {
  return MutexLock(std::make_shared<SimLockCell>());
}

bool SimPlatform::raw_try_lock(const MutexLock& l) {
  SimLockCell& cell = cell_of(l);
  engine_->charge_instr(cfg_.machine.lock_op_instr);
  if (!cfg_.machine.hardware_lock_bus) {
    engine_->bus_transfer(cfg_.machine.tas_bus_bytes);
  }
  if (cell.held) return false;
  cell.held = true;
  engine_->stats(engine_->current()).lock_acquires++;
  return true;
}

// Lock operations are deliberately NOT signal-delivery points: a handler
// that suspends the thread (the preemption yield) must never run while the
// client is inside a spin-lock critical section, or the parked holder
// deadlocks every spinner.  Signals are delivered at work() / safe_point().
bool SimPlatform::try_lock(const MutexLock& l) {
  fuzz_jitter(*engine_, fuzz::Kind::kLockAcquire);
  return raw_try_lock(l);
}

void SimPlatform::lock(const MutexLock& l) {
  fuzz_jitter(*engine_, fuzz::Kind::kLockAcquire);
  if (raw_try_lock(l)) {
    MPNJ_METRIC_COUNT(kLockAcquires, 1);
    return;
  }
  const double spin_from = engine_->now();
  std::uint64_t iters = 0;
  std::uint64_t backoff_rounds = 0;
  double backoff = cfg_.lock_backoff_base_us;
  for (;;) {
    iters++;
    // A failed iteration costs the retry loop plus (with backoff enabled)
    // an off-bus delay; both are safe points, so a spinning proc still
    // parks for collections and receives preemption signals.
    engine_->charge_instr(cfg_.machine.spin_retry_instr);
    if (cfg_.lock_backoff_base_us > 0) {
      engine_->charge_us(backoff);
      backoff = std::min(backoff * 2, 1000.0);
      backoff_rounds++;
    }
    if (raw_try_lock(l)) break;
  }
  engine_->note_spin(engine_->now() - spin_from, iters);
  MPNJ_METRIC_COUNT(kLockAcquires, 1);
  MPNJ_METRIC_COUNT(kLockContended, 1);
  MPNJ_METRIC_COUNT(kLockSpinIters, iters);
  MPNJ_METRIC_COUNT(kLockBackoffRounds, backoff_rounds);
  MPNJ_METRIC_RECORD(kLockSpinIters, iters);
}

void SimPlatform::unlock(const MutexLock& l) {
  fuzz_jitter(*engine_, fuzz::Kind::kLockRelease);
  SimLockCell& cell = cell_of(l);
  engine_->charge_instr(cfg_.machine.lock_op_instr);
  if (!cfg_.machine.hardware_lock_bus) {
    engine_->bus_transfer(cfg_.machine.tas_bus_bytes);
  }
  // Any proc may unlock, not just the one that set the lock (section 3.3).
  cell.held = false;
}

// ----- time / work -----

void SimPlatform::work(double instructions) {
  engine_->charge_instr(instructions);
  deliver_pending_signals(self());
}

double SimPlatform::now_us() { return engine_->now(); }

void SimPlatform::safe_point() {
  engine_->safe_point();
  deliver_pending_signals(self());
}

void SimPlatform::begin_idle_poll() {
  SimProc& p = static_cast<SimProc&>(self());
  if (!p.idle_polling) {
    p.idle_polling = true;
    p.idle_poll_start = engine_->now();
  }
}

void SimPlatform::idle_wait(double max_us) {
  // The simulated analogue of sleeping: virtual time advances without
  // instructions retiring.  Deterministic, and accounted as idle time when
  // bracketed by begin/end_idle_poll (which the scheduler's idle loop does).
  if (max_us > 0) engine_->charge_us(max_us);
  deliver_pending_signals(self());
}

void SimPlatform::park_proc(double max_us) {
  fuzz_jitter(*engine_, fuzz::Kind::kPark);
  SimProc& p = static_cast<SimProc&>(self());
  const auto& m = cfg_.machine;
  if (p.unpark_pending) {
    // A kick posted while we were running ends the park before it starts.
    p.unpark_pending = false;
    deliver_pending_signals(self());
    return;
  }
  engine_->charge_us(m.park_us);
  // Advance virtual time in slices, noticing a posted unpark at slice
  // granularity.  Each charge is an engine scheduling point, so a parked
  // proc still yields to lagging procs, parks for stop-the-worlds, and
  // receives timer hooks — and the run stays deterministic.
  double remaining = max_us;
  const double slice = m.park_slice_us > 0 ? m.park_slice_us : max_us;
  while (remaining > 0) {
    SimProc& cur = static_cast<SimProc&>(self());
    if (cur.unpark_pending) break;
    const double step = remaining < slice ? remaining : slice;
    engine_->charge_us(step);
    remaining -= step;
  }
  static_cast<SimProc&>(self()).unpark_pending = false;
  deliver_pending_signals(self());
}

void SimPlatform::unpark_proc(int proc_id) {
  // Jitter lands on the waker, before the kick is posted: the window in
  // which a lost-wakeup bug loses the wakeup.
  fuzz_jitter(*engine_, fuzz::Kind::kUnpark);
  procs_[static_cast<std::size_t>(proc_id)]->unpark_pending = true;
  // The kick itself costs the waker an eventfd-write analogue.
  if (engine_->current() >= 0) {
    engine_->charge_instr(cfg_.machine.unpark_instr);
  }
}

void SimPlatform::charge_cas() {
  fuzz_jitter(*engine_, fuzz::Kind::kCas);
  engine_->charge_instr(cfg_.machine.cas_instr);
  if (!cfg_.machine.hardware_lock_bus) {
    engine_->bus_transfer(cfg_.machine.tas_bus_bytes);
  }
}

void SimPlatform::charge_lock_handoff() {
  fuzz_jitter(*engine_, fuzz::Kind::kHandoff);
  engine_->charge_instr(cfg_.machine.lock_handoff_instr);
  if (!cfg_.machine.hardware_lock_bus) {
    engine_->bus_transfer(cfg_.machine.tas_bus_bytes);
  }
}

void SimPlatform::end_idle_poll() {
  SimProc& p = static_cast<SimProc&>(self());
  if (p.idle_polling) {
    p.idle_polling = false;
    p.idle_poll_us += engine_->now() - p.idle_poll_start;
  }
}

arch::Rng& SimPlatform::rng() { return engine_->rng(engine_->current()); }

void SimPlatform::set_preempt_interval(double us) {
  cfg_.preempt_interval_us = us;
  if (us > 0 && engine_->current() >= 0) {
    engine_->arm_hook(engine_->current(),
                      engine_->now() + us +
                          fuzz::point(fuzz::Kind::kPreemptArm));
  }
}

void SimPlatform::on_timer(int id) {
  SimProc& p = *procs_[static_cast<std::size_t>(id)];
  if (cfg_.preempt_interval_us <= 0) return;
  // Post only: this hook runs inside the engine's scheduling bookkeeping,
  // where running a handler that migrates the thread to another proc would
  // leave the engine mid-call on stale state.  Delivery happens at the
  // platform-level safe points (work / lock operations / safe_point), which
  // re-resolve the current proc after the handler returns.
  post_signal_to(p, Sig::kPreempt);
  // Jittering the re-arm slides every later preemption on this proc, which
  // moves the signal-delivery points across the thread's critical sections.
  engine_->arm_hook(id, engine_->now() + cfg_.preempt_interval_us +
                            fuzz::point(fuzz::Kind::kPreemptArm));
}

// ----- collector hooks -----

void SimPlatform::stop_world(gc::WorkerFn work) {
  // All simulated procs are fibers of one kernel thread, so a parked proc
  // cannot run `work` concurrently with the collector; drop the fn and model
  // the parallel speedup in charge_gc instead (the collector proc does all
  // the real copying either way).
  (void)work;
  engine_->stop_world();
}

void SimPlatform::resume_world() { engine_->resume_world(); }

void SimPlatform::charge_gc(std::uint64_t words_copied) {
  const auto& m = cfg_.machine;
  const double t0 = engine_->now();
  const double w = static_cast<double>(words_copied);
  // With parallel collection every stopped proc is a copying worker, so the
  // instruction cost divides across them — but the shared bus does not: the
  // same bytes move either way, which is what bounds the modeled speedup.
  // Each extra worker also pays a per-worker rendezvous/termination cost.
  int workers = 1;
  if (cfg_.heap.parallel_gc) workers += engine_->num_stopped();
  engine_->charge_us(m.gc_sync_us +
                     m.gc_par_sync_us_per_worker * (workers - 1));
  engine_->charge_instr(w * m.gc_instr_per_word /
                        static_cast<double>(workers));
  engine_->bus_transfer(w * m.gc_bus_bytes_per_word);
  engine_->stats(engine_->current()).gc_us += engine_->now() - t0;
}

void SimPlatform::charge_alloc(std::uint64_t words) {
  fuzz_jitter(*engine_, fuzz::Kind::kAlloc);
  const auto& m = cfg_.machine;
  const double w = static_cast<double>(words);
  engine_->charge_instr(w * m.alloc_instr_per_word);
  // A nursery that fits in the per-processor cache turns most allocation
  // write misses into hits (section 7's future-work strategy).
  const double miss_factor =
      static_cast<double>(cfg_.heap.nursery_bytes) <= m.cache_bytes
          ? m.cached_alloc_bus_factor
          : 1.0;
  engine_->bus_transfer(w * m.alloc_bus_bytes_per_word * miss_factor);
}

void SimPlatform::charge_card_scan(std::uint64_t cards, std::uint64_t words) {
  const auto& m = cfg_.machine;
  const double t0 = engine_->now();
  const double c = static_cast<double>(cards);
  const double w = static_cast<double>(words);
  // Like charge_gc: parallel workers split the parse work, the bus carries
  // the same read traffic either way.
  int workers = 1;
  if (cfg_.heap.parallel_gc) workers += engine_->num_stopped();
  engine_->charge_instr(
      (c * m.gc_card_scan_instr_per_card + w * m.gc_card_scan_instr_per_word) /
      static_cast<double>(workers));
  engine_->bus_transfer(w * m.gc_card_scan_bus_bytes_per_word);
  engine_->stats(engine_->current()).gc_us += engine_->now() - t0;
}

void SimPlatform::charge_los_alloc(std::uint64_t pages) {
  engine_->charge_us(static_cast<double>(pages) *
                     cfg_.machine.los_alloc_us_per_page);
}

void SimPlatform::charge_los_sweep(std::uint64_t pages) {
  const double t0 = engine_->now();
  engine_->charge_instr(static_cast<double>(pages) *
                        cfg_.machine.los_sweep_instr_per_page);
  engine_->stats(engine_->current()).gc_us += engine_->now() - t0;
}

void SimPlatform::rendezvous_and_work(const gc::WorkerFn& work) {
  // Parking suffices: the engine accounts the wait as gc_wait_us and the
  // collector's charge_gc models this proc's share of the copying work.
  (void)work;
  engine_->safe_point();
}

int SimPlatform::cur_proc() { return engine_->current(); }

int SimPlatform::nproc() { return cfg_.machine.num_procs; }

cont::ExecContext* SimPlatform::proc_exec(int id) {
  return &procs_[static_cast<std::size_t>(id)]->exec;
}

// ----- report -----

SimReport SimPlatform::report() const {
  SimReport r;
  r.procs = cfg_.machine.num_procs;
  r.total_us = engine_->total_us();
  for (int i = 0; i < r.procs; i++) {
    const sim::ProcStats& s = engine_->stats(i);
    const SimProc& p = *procs_[static_cast<std::size_t>(i)];
    r.busy_us += s.busy_us - p.idle_poll_us;
    r.spin_us += s.spin_us;
    // A proc that went idle (or never started) before the end of the run
    // accumulates trailing idle time up to the global finish line; polling
    // for work while holding the proc counts as idle as well.
    r.idle_us += s.idle_us + p.idle_poll_us;
    if (engine_->is_idle(i)) r.idle_us += r.total_us - engine_->clock_of(i);
    r.gc_wait_us += s.gc_wait_us;
    r.gc_us += s.gc_us;
    r.bus_wait_us += s.bus_wait_us;
    r.lock_acquires += s.lock_acquires;
    r.lock_spin_iters += s.lock_spin_iters;
  }
  r.bus = engine_->bus_stats();
  r.heap = heap().stats();
  return r;
}

}  // namespace mp
