#include "mp/native_platform.h"

#include <poll.h>

#include <ctime>

#include <algorithm>

#include "arch/panic.h"
#include "arch/sysio.h"
#include "arch/tas.h"
#include "metrics/metrics.h"

namespace mp {

namespace {

struct NativeLockCell final : detail::LockCell {
  arch::TasWord word;
};

NativeLockCell& cell_of(const MutexLock& l) {
  MPNJ_CHECK(l.valid(), "operation on an invalid MutexLock");
  return *static_cast<NativeLockCell*>(l.cell());
}

}  // namespace

NativePlatform::NativePlatform(NativePlatformConfig config)
    : cfg_(std::move(config)) {
  if (cfg_.max_procs <= 0) {
    cfg_.max_procs =
        std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  }
  procs_.reserve(static_cast<std::size_t>(cfg_.max_procs));
  for (int i = 0; i < cfg_.max_procs; i++) {
    auto p = std::make_unique<NProc>();
    p->id = i;
    p->prng.reseed(cfg_.seed ^ (0x9e3779b97f4a7c15ull * (std::uint64_t)(i + 1)));
    p->port.open();
    procs_.push_back(std::move(p));
  }
  epoch_ = std::chrono::steady_clock::now();
  preempt_interval_us_.store(cfg_.preempt_interval_us);
  init_stacks(cfg_.stack);
  init_heap(cfg_.heap);
}

NativePlatform::~NativePlatform() {
  ticker_stop_.store(true);
  if (ticker_.joinable()) ticker_.join();
  for (auto& p : procs_) {
    MPNJ_CHECK(!p->thread.joinable(),
               "platform destroyed with live proc threads (run() not used?)");
  }
}

// ----- identity -----

namespace {
thread_local ProcRec* tl_proc = nullptr;
}

ProcRec& NativePlatform::self() {
  MPNJ_CHECK(tl_proc != nullptr, "MP operation outside a proc");
  return *tl_proc;
}

void NativePlatform::for_each_proc(const std::function<void(ProcRec&)>& fn) {
  for (auto& p : procs_) fn(*p);
}

int NativePlatform::max_procs() const { return cfg_.max_procs; }

int NativePlatform::active_procs() const {
  int n = 0;
  for (const auto& p : procs_) {
    if (p->rstate.load(std::memory_order_acquire) != RunState::kIdle) n++;
  }
  return n;
}

// ----- proc lifecycle -----

void NativePlatform::proc_loop(NProc& p) {
  tl_proc = &p;
  cont::set_current_exec(&p.exec);
  metrics::Registry::bind_slot(p.id);
  for (;;) {
    cont::ContRef k;
    {
      std::unique_lock<std::mutex> lk(pool_mutex_);
      pool_cv_.wait(lk, [&] { return p.has_work || done(); });
      if (!p.has_work && done()) break;
      p.has_work = false;
      k = std::move(p.mailbox);
    }
    arch::Context idle_ctx;
    p.exec.idle_ctx = &idle_ctx;
    cont::run_from_idle(std::move(k), p.exec);
    p.exec.idle_ctx = nullptr;
    {
      std::unique_lock<std::mutex> lk(pool_mutex_);
      p.active = false;
      p.rstate.store(RunState::kIdle, std::memory_order_release);
    }
    pool_cv_.notify_all();  // run() may be waiting for quiescence
    gc_cv_.notify_all();    // a collector may be waiting on our transition
  }
  tl_proc = nullptr;
  cont::set_current_exec(nullptr);
}

bool NativePlatform::backend_acquire(cont::ContRef k, Datum datum) {
  std::unique_lock<std::mutex> lk(pool_mutex_);
  for (auto& up : procs_) {
    NProc& p = *up;
    if (p.rstate.load(std::memory_order_acquire) == RunState::kIdle &&
        !p.has_work) {
      p.mailbox = std::move(k);
      p.datum = datum;
      p.has_work = true;
      p.active = true;
      p.rstate.store(RunState::kActive, std::memory_order_release);
      if (!p.thread.joinable() && p.id != 0) {
        // First use of this slot: create the kernel thread (the runtime may
        // also re-use a previously released one — that is the normal path).
        p.thread = std::thread([this, &p] { proc_loop(p); });
      }
      lk.unlock();
      pool_cv_.notify_all();
      return true;
    }
  }
  return false;
}

void NativePlatform::backend_release() {
  // Reach a clean point first: if a collection is stopping the world we park
  // here instead of vanishing from the collector's count mid-transition.
  safe_point();
  cont::exit_to_idle();
}

void NativePlatform::backend_run(cont::ContRef root, Datum root_datum) {
  if (cfg_.preempt_interval_us > 0 && !ticker_.joinable()) {
    set_preempt_interval(cfg_.preempt_interval_us);
  }
  // The caller's thread becomes proc 0.
  NProc& p0 = *procs_[0];
  {
    std::unique_lock<std::mutex> lk(pool_mutex_);
    p0.mailbox = std::move(root);
    p0.datum = root_datum;
    p0.has_work = true;
    p0.active = true;
    p0.rstate.store(RunState::kActive, std::memory_order_release);
  }
  proc_loop(p0);
  // done() is set; wait until every proc has been released, then reap the
  // pool threads.
  {
    std::unique_lock<std::mutex> lk(pool_mutex_);
    pool_cv_.wait(lk, [&] {
      for (const auto& p : procs_) {
        if (p->rstate.load(std::memory_order_acquire) != RunState::kIdle ||
            p->has_work) {
          return false;
        }
      }
      return true;
    });
  }
  pool_cv_.notify_all();
  for (auto& p : procs_) {
    if (p->thread.joinable()) p->thread.join();
  }
  ticker_stop_.store(true);
  if (ticker_.joinable()) ticker_.join();
  ticker_ = std::thread();
}

void NativePlatform::on_done() { pool_cv_.notify_all(); }

// ----- locks -----

MutexLock NativePlatform::mutex_lock() {
  return MutexLock(std::make_shared<NativeLockCell>());
}

bool NativePlatform::try_lock(const MutexLock& l) {
  return cell_of(l).word.test_and_set();
}

void NativePlatform::lock(const MutexLock& l) {
  NativeLockCell& cell = cell_of(l);
  if (cell.word.test_and_set()) {
    MPNJ_METRIC_COUNT(kLockAcquires, 1);
    return;
  }
  // The paper includes lock in the interface precisely so systems can spin
  // smarter than the naive loop; spin with optional exponential backoff
  // (Anderson) and keep hitting safe points so we park for collections.
  double backoff_us = cfg_.lock_backoff_base_us;
  std::uint64_t iters = 0;
  std::uint64_t backoff_rounds = 0;
  for (;;) {
    arch::cpu_relax();
    ++iters;
    if (cell.word.test_and_set()) break;
    if (iters % 64 == 0) safe_point();
    if (cfg_.lock_backoff_base_us > 0) {
      const auto until = std::chrono::steady_clock::now() +
                         std::chrono::duration<double, std::micro>(backoff_us);
      while (std::chrono::steady_clock::now() < until) arch::cpu_relax();
      backoff_us = std::min(backoff_us * 2, 1000.0);
      ++backoff_rounds;
    }
  }
  MPNJ_METRIC_COUNT(kLockAcquires, 1);
  MPNJ_METRIC_COUNT(kLockContended, 1);
  MPNJ_METRIC_COUNT(kLockSpinIters, iters);
  MPNJ_METRIC_COUNT(kLockBackoffRounds, backoff_rounds);
  MPNJ_METRIC_RECORD(kLockSpinIters, iters);
}

void NativePlatform::unlock(const MutexLock& l) { cell_of(l).word.clear(); }

// ----- time / work -----

void NativePlatform::work(double instructions) {
  (void)instructions;  // real hardware: the computation itself is the cost
  safe_point();
}

double NativePlatform::now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void NativePlatform::safe_point() {
  NProc& p = static_cast<NProc&>(self());
  if (world_stop_.load(std::memory_order_acquire) &&
      collector_.load(std::memory_order_acquire) != p.id) {
    park_for_gc(p);
  }
  deliver_pending_signals(p);
}

void NativePlatform::idle_wait(double max_us) {
  safe_point();
  if (max_us <= 0) return;
  // A sleeping proc has no safe points until it wakes, so the bound the
  // caller picked is also the worst case it adds to a stop-the-world.
  timespec ts;
  ts.tv_sec = static_cast<time_t>(max_us / 1e6);
  ts.tv_nsec = static_cast<long>((max_us - static_cast<double>(ts.tv_sec) * 1e6) * 1e3);
  arch::retry_eintr([&] { return ::nanosleep(&ts, &ts); });
  safe_point();
}

void NativePlatform::park_proc(double max_us) {
  NProc& p = static_cast<NProc&>(self());
  safe_point();
  if (max_us <= 0) return;
  // A kick posted while we were running (or by a previous spurious signal)
  // ends the park before it starts.
  if (p.port.consume()) {
    safe_point();
    return;
  }
  pollfd pfd{p.port.rfd(), POLLIN, 0};
  timespec ts;
  ts.tv_sec = static_cast<time_t>(max_us / 1e6);
  ts.tv_nsec =
      static_cast<long>((max_us - static_cast<double>(ts.tv_sec) * 1e6) * 1e3);
  // EINTR counts as a wakeup: the park is bounded either way and the caller
  // re-checks its queues.
  ::ppoll(&pfd, 1, &ts, nullptr);
  p.port.consume();
  safe_point();
}

void NativePlatform::unpark_proc(int proc_id) {
  procs_[static_cast<std::size_t>(proc_id)]->port.signal();
}

arch::Rng& NativePlatform::rng() {
  return static_cast<NProc&>(self()).prng;
}

void NativePlatform::set_preempt_interval(double us) {
  preempt_interval_us_.store(us);
  if (us > 0 && !ticker_.joinable()) {
    ticker_stop_.store(false);
    ticker_ = std::thread([this] {
      while (!ticker_stop_.load(std::memory_order_acquire)) {
        const double interval = preempt_interval_us_.load();
        if (interval <= 0) break;
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::micro>(interval));
        post_signal(Sig::kPreempt);
      }
    });
  }
}

// ----- GC rendezvous -----

void NativePlatform::park_for_gc(NProc& p) {
  std::unique_lock<std::mutex> lk(gc_mutex_);
  const RunState prev = p.rstate.exchange(RunState::kParked);
  MPNJ_CHECK(prev == RunState::kActive, "parking a non-active proc");
  gc_cv_.notify_all();  // the collector may be waiting on our transition
  while (world_stop_.load(std::memory_order_acquire)) {
    if (gc_work_fn_ && p.gc_epoch_seen != gc_epoch_) {
      // Join the collection as a worker (once per epoch).  The fn spins at
      // the copier's gate until the collector opens the first phase and
      // returns when the heap ends the cycle — all before resume_world, so
      // dropping gc_mutex_ here never lets this proc escape the rendezvous.
      p.gc_epoch_seen = gc_epoch_;
      const gc::WorkerFn fn = gc_work_fn_;
      lk.unlock();
      fn();
      lk.lock();
      continue;
    }
    gc_cv_.wait(lk, [&] {
      return !world_stop_.load(std::memory_order_acquire) ||
             (gc_work_fn_ && p.gc_epoch_seen != gc_epoch_);
    });
  }
  p.rstate.store(RunState::kActive, std::memory_order_release);
}

void NativePlatform::stop_world(gc::WorkerFn work) {
  NProc& me = static_cast<NProc&>(self());
  {
    // Publish the worker entry before the stop flag: a proc that parks the
    // instant world_stop_ flips must already see the fn and epoch.
    std::unique_lock<std::mutex> lk(gc_mutex_);
    gc_work_fn_ = std::move(work);
    gc_epoch_++;
    collector_.store(me.id, std::memory_order_release);
    world_stop_.store(true, std::memory_order_release);
  }
  // Interrupt any proc blocked in the I/O reactor so it parks promptly, and
  // kick every per-proc park port: a port-parked proc has no safe points
  // until it wakes, so without the kick each one would add up to its park
  // bound to this stop-the-world.
  run_wake_hook();
  for (auto& p : procs_) p->port.signal();
  std::unique_lock<std::mutex> lk(gc_mutex_);
  gc_cv_.notify_all();  // parked procs re-check for the new epoch's fn
  gc_cv_.wait(lk, [&] {
    for (const auto& p : procs_) {
      if (p->id == me.id) continue;
      if (p->rstate.load(std::memory_order_acquire) == RunState::kActive) {
        return false;
      }
    }
    return true;
  });
}

void NativePlatform::resume_world() {
  {
    std::unique_lock<std::mutex> lk(gc_mutex_);
    world_stop_.store(false, std::memory_order_release);
    collector_.store(-1, std::memory_order_release);
    gc_work_fn_ = nullptr;
  }
  gc_cv_.notify_all();
}

void NativePlatform::charge_gc(std::uint64_t) {}

void NativePlatform::charge_card_scan(std::uint64_t, std::uint64_t) {}

void NativePlatform::charge_los_alloc(std::uint64_t) {}

void NativePlatform::charge_los_sweep(std::uint64_t) {}

void NativePlatform::charge_alloc(std::uint64_t) {}

void NativePlatform::rendezvous_and_work(const gc::WorkerFn& work) {
  // The registered epoch fn (identical to `work`) is run by park_for_gc, so
  // reaching the clean point is joining the collection.
  (void)work;
  safe_point();
}

int NativePlatform::cur_proc() {
  return tl_proc != nullptr ? tl_proc->id : -1;
}

int NativePlatform::nproc() { return cfg_.max_procs; }

cont::ExecContext* NativePlatform::proc_exec(int id) {
  return &procs_[static_cast<std::size_t>(id)]->exec;
}

}  // namespace mp
