#include "mp/platform.h"

#include "arch/tas.h"

namespace mp {

namespace {

std::uint32_t sig_bit(Sig s) { return 1u << static_cast<int>(s); }

}  // namespace

bool Platform::try_acquire_proc(cont::Cont<cont::Unit> k, Datum datum) {
  MPNJ_CHECK(k.valid(), "acquire_proc with an invalid continuation");
  // Deliver the unit value now: on success the new proc fires the
  // continuation directly; on failure the caller typically reschedules it
  // onto a ready queue (paper Figure 3), which holds preloaded
  // continuations.
  k.preload(cont::Unit{});
  return backend_acquire(std::move(k).take_ref(), datum);
}

void Platform::acquire_proc(cont::Cont<cont::Unit> k, Datum datum) {
  if (!try_acquire_proc(std::move(k), datum)) throw NoMoreProcs();
}

void Platform::release_proc() {
  backend_release();
  __builtin_unreachable();
}

void Platform::set_signal_handler(Sig s, std::function<void()> handler) {
  arch::TasGuard guard(handler_lock_);
  handlers_[static_cast<int>(s)] = std::move(handler);
}

void Platform::mask_signal(Sig s) { self().sig_mask |= sig_bit(s); }

void Platform::unmask_signal(Sig s) { self().sig_mask &= ~sig_bit(s); }

bool Platform::signal_masked(Sig s) {
  return (self().sig_mask & sig_bit(s)) != 0;
}

void Platform::post_signal_to(ProcRec& p, Sig s) {
  p.sig_pending.fetch_or(sig_bit(s), std::memory_order_release);
}

void Platform::post_signal(Sig s) {
  // All procs share the handler table and all procs receive each delivered
  // signal (paper section 3.4); each consumes it at its next safe point.
  for_each_proc([&](ProcRec& p) { post_signal_to(p, s); });
  // A proc blocked in the I/O reactor's OS wait has no safe points until it
  // returns; kick it so the signal is consumed promptly.
  run_wake_hook();
}

void Platform::set_wake_hook(std::function<void()> hook) {
  wake_hook_.store(
      hook ? std::make_shared<const std::function<void()>>(std::move(hook))
           : nullptr,
      std::memory_order_release);
}

void Platform::run_wake_hook() {
  if (auto hook = wake_hook_.load(std::memory_order_acquire)) (*hook)();
}

void Platform::deliver_pending_signals(ProcRec& first) {
  ProcRec* p = &first;
  for (;;) {
    const std::uint32_t deliverable =
        p->sig_pending.load(std::memory_order_acquire) & ~p->sig_mask;
    if (deliverable == 0) return;
    const int s = __builtin_ctz(deliverable);
    p->sig_pending.fetch_and(~(1u << s), std::memory_order_acq_rel);
    std::function<void()> handler;
    {
      arch::TasGuard guard(handler_lock_);
      handler = handlers_[s];
    }
    // The handler runs on the interrupted thread's stack, exactly like a
    // Unix signal delivered at a clean point; it may suspend the thread
    // (e.g. a preemption handler calling yield), in which case delivery of
    // further pending signals resumes with the thread — possibly on a
    // *different* proc, so re-bind to the current proc's record rather
    // than keep touching the one the thread was interrupted on.
    if (handler) {
      handler();
      p = &self();
    }
  }
}

void Platform::run(std::function<void()> root, Datum root_datum) {
  MPNJ_CHECK(!done_.load(), "Platform::run may only be called once");
  cont::ContRef entry = cont::make_entry(
      [this, body = std::move(root)] {
        body();
        done_.store(true, std::memory_order_release);
        on_done();
      });
  backend_run(std::move(entry), root_datum);
}

}  // namespace mp
