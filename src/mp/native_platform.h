#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "arch/wakeport.h"
#include "mp/platform.h"

namespace mp {

struct NativePlatformConfig {
  // Analogue of the paper's compile-time proc limit: the runtime statically
  // sizes its per-proc structures.  0 = hardware concurrency.
  int max_procs = 0;
  gc::HeapConfig heap;
  cont::StackConfig stack;
  double preempt_interval_us = 0;
  // Spin-then-backoff behaviour of lock(); 0 = naive spin.
  double lock_backoff_base_us = 0;
  std::uint64_t seed = 0x5eed;
};

// MP on real kernel threads (the production backend): procs map onto
// std::threads sharing the address space — the same shape as the paper's
// Mach kernel threads / Irix+Dynix shared-address-space processes — and
// mutex locks are hardware test-and-set words.  Released kernel threads are
// parked and re-used by later acquire_proc calls, as section 5 describes.
class NativePlatform final : public Platform {
 public:
  explicit NativePlatform(NativePlatformConfig config = {});
  ~NativePlatform() override;

  // ---- Platform ----
  int max_procs() const override;
  int active_procs() const override;
  MutexLock mutex_lock() override;
  bool try_lock(const MutexLock& l) override;
  void lock(const MutexLock& l) override;
  void unlock(const MutexLock& l) override;
  void work(double instructions) override;
  double now_us() override;
  void safe_point() override;
  void idle_wait(double max_us) override;
  void park_proc(double max_us) override;
  void unpark_proc(int proc_id) override;
  arch::Rng& rng() override;
  void set_preempt_interval(double us) override;

  // ---- gc::Rendezvous ----
  void stop_world(gc::WorkerFn work) override;
  void resume_world() override;
  void rendezvous_and_work(const gc::WorkerFn& work) override;
  int cur_proc() override;
  int nproc() override;
  cont::ExecContext* proc_exec(int id) override;

  // ---- gc::Accounting (real hardware: the computation is the cost) ----
  void charge_gc(std::uint64_t words_copied) override;
  void charge_alloc(std::uint64_t words) override;
  void charge_card_scan(std::uint64_t cards, std::uint64_t words) override;
  void charge_los_alloc(std::uint64_t pages) override;
  void charge_los_sweep(std::uint64_t pages) override;

 protected:
  ProcRec& self() override;
  void for_each_proc(const std::function<void(ProcRec&)>& fn) override;
  bool backend_acquire(cont::ContRef k, Datum datum) override;
  [[noreturn]] void backend_release() override;
  void backend_run(cont::ContRef root, Datum root_datum) override;
  void on_done() override;

 private:
  enum class RunState : std::uint8_t { kIdle, kActive, kParked };

  struct NProc : ProcRec {
    std::thread thread;            // empty for proc 0 (the run() caller)
    cont::ContRef mailbox;
    bool has_work = false;
    std::atomic<RunState> rstate{RunState::kIdle};
    arch::Rng prng;
    // Targeted-wakeup port: park_proc waits on it, unpark_proc (any
    // thread) signals it.  stop_world signals every port so parked procs
    // reach their GC safe point at interrupt speed, not timeout speed.
    arch::WakePort port;
    // Last collection epoch whose worker fn this proc ran (under gc_mutex_);
    // ensures one worker entry per proc per stop-the-world.
    std::uint64_t gc_epoch_seen = 0;
  };

  void proc_loop(NProc& p);  // idle loop shared by pool threads and proc 0
  void park_for_gc(NProc& p);

  NativePlatformConfig cfg_;
  std::vector<std::unique_ptr<NProc>> procs_;

  std::mutex pool_mutex_;
  std::condition_variable pool_cv_;

  // GC rendezvous.
  std::atomic<bool> world_stop_{false};
  std::atomic<int> collector_{-1};
  std::mutex gc_mutex_;
  std::condition_variable gc_cv_;
  // Worker entry for the current collection and its epoch (both guarded by
  // gc_mutex_).  Parked procs run the fn once per epoch, becoming collection
  // workers instead of idling out the stop-the-world.
  gc::WorkerFn gc_work_fn_;
  std::uint64_t gc_epoch_ = 0;

  // Preemption ticker.
  std::thread ticker_;
  std::atomic<bool> ticker_stop_{false};
  std::atomic<double> preempt_interval_us_{0};

  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace mp
