#include "cont/stack_config.h"

#include <cstdlib>

#include "arch/panic.h"

namespace mp::cont {

void StackConfig::validate() const {
  MPNJ_CHECK(small_stack_bytes >= 8 * 1024,
             "stack config: small stack class below the 8 KiB minimum");
  MPNJ_CHECK(large_stack_bytes >= small_stack_bytes,
             "stack config: large stack class smaller than the small class");
  MPNJ_CHECK(large_stack_bytes <= (std::size_t{256} << 20),
             "stack config: stack class above the 256 MiB ceiling");
  MPNJ_CHECK(guard_pages <= 64,
             "stack config: more than 64 guard pages per slot");
  MPNJ_CHECK(slots_per_arena >= 8,
             "stack config: fewer than 8 slots per arena");
  MPNJ_CHECK(slots_per_arena <= (std::size_t{1} << 20),
             "stack config: more than 2^20 slots per arena");
  MPNJ_CHECK(cache_slots_per_proc <= 4096,
             "stack config: per-proc slot cache above the 4096 cap");
}

bool StackConfig::default_pooling() {
  static const bool enabled = [] {
    const char* v = std::getenv("MPNJ_STACK_POOL");
    return v == nullptr || v[0] != '0';
  }();
  return enabled;
}

}  // namespace mp::cont
