#include "cont/cont.h"

#include <atomic>

#include "arch/fiber_san.h"
#include "arch/tas.h"

namespace mp::cont {

namespace {

// ----- Registry of live cores (for the collector's root scan). -----
//
// Sharded by core address: at production fork rates every capture and
// release takes a registry lock, and a single global word is the first thing
// every proc fights over.  The collector iterates shard by shard with the
// world stopped, so it still sees every live core.

constexpr std::size_t kRegShards = 64;

struct alignas(64) RegShard {
  std::atomic<std::uint32_t> lock{0};
  ContCore* head = nullptr;
};

RegShard g_reg_shards[kRegShards];
std::atomic<std::size_t> g_live_cores{0};

std::size_t shard_of(const ContCore* core) noexcept {
  // Cores are cacheline-ish sized; dropping the low bits spreads pooled
  // (address-reused) cores evenly.
  return (reinterpret_cast<std::uintptr_t>(core) >> 6) % kRegShards;
}

class RegistryGuard {
 public:
  explicit RegistryGuard(RegShard& shard) : shard_(shard) {
    while (shard_.lock.exchange(1, std::memory_order_acquire) != 0) {
      while (shard_.lock.load(std::memory_order_relaxed) != 0) {
        arch::cpu_relax();
      }
    }
  }
  ~RegistryGuard() { shard_.lock.store(0, std::memory_order_release); }

 private:
  RegShard& shard_;
};

// Cached continuation cores a proc may keep for reuse.
constexpr int kCoreCacheCap = 64;

// The internal unwind raised by throw_to / fire_preloaded / exit_to_idle.
// Deliberately not derived from std::exception: catching it with `catch
// (...)` and not rethrowing is a client bug (it would bypass the segment
// trampoline), which the trampoline's escape check turns into a panic.
struct AbandonUnwind {
  bool to_idle = false;
  ContRef target;  // PRELOADED continuation to resume (when !to_idle)
};

// Completes the sanitizer side of a fiber switch on arrival.  When this
// arrival is the client side of an enter_from_idle, the bounds the sanitizer
// reports for the stack just left are the idle loop's — record them so
// return_to_idle can annotate the switch back.
void san_arrive(void* fake_restore) {
  if constexpr (arch::san::kActive) {
    const void* prev_bottom = nullptr;
    std::size_t prev_size = 0;
    arch::san::switch_finish(fake_restore, &prev_bottom, &prev_size);
    ExecContext* ex = current_exec();
    if (ex != nullptr && ex->san_from_idle) {
      ex->san_idle_bottom = prev_bottom;
      ex->san_idle_size = prev_size;
      ex->san_from_idle = false;
    }
  }
}

}  // namespace

void ContCore::preload(std::uint64_t raw, bool gc_traced) noexcept {
  slot_ = raw;
  slot_armed_ = gc_traced;
  State expected = State::kCaptured;
  MPNJ_CHECK(state_.compare_exchange_strong(expected, State::kPreloaded,
                                            std::memory_order_acq_rel),
             "value delivered to a continuation twice (one-shot violation)");
}

void cont_unref(ContCore* core) noexcept {
  if (core->refs_.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  {
    RegShard& shard = g_reg_shards[shard_of(core)];
    RegistryGuard guard(shard);
    if (core->reg_prev_ != nullptr) {
      core->reg_prev_->reg_next_ = core->reg_next_;
    } else {
      shard.head = core->reg_next_;
    }
    if (core->reg_next_ != nullptr) {
      core->reg_next_->reg_prev_ = core->reg_prev_;
    }
  }
  g_live_cores.fetch_sub(1, std::memory_order_relaxed);
  StackSegment* seg = core->home_seg_;
  if (core->state_.load(std::memory_order_relaxed) != ContCore::State::kFired) {
    // An abandoned, never-resumed continuation: un-count its seal so the
    // segment can be reclaimed.
    seg->live_seals.fetch_sub(1, std::memory_order_relaxed);
  }
  detail::ContOps::free_core(core);
  if (seg != nullptr) seg->drop_ref();
}

namespace detail {

ContCore* ContOps::alloc_core() {
  ExecContext* ex = current_exec();
  if (ex != nullptr && ex->core_cache != nullptr) {
    ContCore* core = ex->core_cache;
    ex->core_cache = core->reg_next_;
    ex->core_cache_count--;
    core->refs_.store(0, std::memory_order_relaxed);
    core->state_.store(ContCore::State::kCaptured, std::memory_order_relaxed);
    core->slot_ = 0;
    core->slot_armed_ = false;
    core->cancel_ = false;
    core->home_seg_ = nullptr;
    core->ctx_ = arch::Context{};
    core->root_head_ = nullptr;
    core->reg_prev_ = nullptr;
    core->reg_next_ = nullptr;
    return core;
  }
  return new ContCore();
}

void ContOps::free_core(ContCore* core) noexcept {
  ExecContext* ex = current_exec();
  if (ex != nullptr && ex->core_cache_count < kCoreCacheCap) {
    core->reg_next_ = ex->core_cache;
    ex->core_cache = core;
    ex->core_cache_count++;
    return;
  }
  delete core;
}

ContRef ContOps::make_sealed_core() {
  ExecContext* ex = current_exec();
  MPNJ_CHECK(ex != nullptr && ex->seg != nullptr,
             "callcc outside a proc's client context");
  const int prev_seals =
      ex->seg->live_seals.fetch_add(1, std::memory_order_relaxed);
  MPNJ_CHECK(prev_seals == 0,
             "two live continuations sealed into one segment");
  ContCore* core = alloc_core();
  core->refs_.store(1, std::memory_order_relaxed);
  core->home_seg_ = ex->seg;
  ex->seg->add_ref();
  core->root_head_ = ex->root_head;
  {
    RegShard& shard = g_reg_shards[shard_of(core)];
    RegistryGuard guard(shard);
    core->reg_next_ = shard.head;
    if (shard.head != nullptr) shard.head->reg_prev_ = core;
    shard.head = core;
  }
  g_live_cores.fetch_add(1, std::memory_order_relaxed);
  return ContRef::adopt(core);
}

std::uint64_t ContOps::seal_and_switch(ContRef sealed, StackSegment* fresh) {
  ExecContext* ex = current_exec();
  // The suspended frame keeps only a raw pointer: the continuation is owned
  // by the boot record / clients while suspended and by the firing side's
  // pending_unref hand-off while being resumed.
  ContCore* core = sealed.get();
  sealed.reset();  // boot record + parent linkage keep the core alive
  MPNJ_CHECK(ex->pending_release == nullptr, "nested pending segment release");
  ex->pending_release = ex->seg;  // running reference; the core holds its own
  fresh->copy_owner_from(*ex->seg);  // the thread's identity moves with it
  ex->seg = fresh;                // fresh arrives with its pool reference
  ex->root_head = nullptr;        // the body starts a fresh root chain
  void* san_fake = nullptr;
  arch::san::switch_begin(&san_fake, fresh->san_fiber, fresh->stack_base(),
                          fresh->stack_size());
  arch::ctx_swap(core->ctx_, fresh->boot_ctx);
  san_arrive(san_fake);
  // Fired: possibly executing on a different proc (or kernel thread) now.
  // Read the delivered value (and the cancel mark) before process_pending
  // drops the firing side's reference to the core.
  core->slot_armed_ = false;
  const std::uint64_t raw = core->slot_;
  const bool cancelled = core->cancel_;
  current_exec()->process_pending();
  if (cancelled) throw ThreadCancelled();
  return raw;
}

[[noreturn]] void ContOps::fire(ContRef k) {
  MPNJ_CHECK(k.get() != nullptr, "fire of a null continuation");
  MPNJ_CHECK(k.get()->state() == ContCore::State::kPreloaded,
             "continuation fired twice or fired without a value");
  throw AbandonUnwind{/*to_idle=*/false, std::move(k)};
}

[[noreturn]] void ContOps::to_idle() {
  throw AbandonUnwind{/*to_idle=*/true, {}};
}

[[noreturn]] void ContOps::resume_target(ContRef k) {
  ContCore* core = k.get();
  auto prev = core->state_.exchange(ContCore::State::kFired,
                                    std::memory_order_acq_rel);
  MPNJ_CHECK(prev == ContCore::State::kPreloaded,
             "continuation fired twice (lost the one-shot race)");
  core->home_seg_->live_seals.fetch_sub(1, std::memory_order_relaxed);
  ExecContext* ex = current_exec();
  MPNJ_CHECK(ex->pending_release == nullptr, "nested pending segment release");
  MPNJ_CHECK(ex->pending_unref == nullptr, "nested pending core unref");
  ex->pending_release = ex->seg;
  ex->seg = core->home_seg_;
  ex->seg->add_ref();
  ex->root_head = core->root_head_;
  arch::Context target = std::move(core->ctx_);
  // Hand our reference across the switch; the resumed side drops it after
  // reading the value slot.
  ex->pending_unref = k.release();
  // Null fake-save: this stack is abandoned, never resumed.
  arch::san::switch_begin(nullptr, ex->seg->san_fiber, ex->seg->stack_base(),
                          ex->seg->stack_size());
  arch::Context dead;
  arch::ctx_swap(dead, target);
  arch::panic("abandoned context was resumed");
}

[[noreturn]] void ContOps::return_to_idle() {
  ExecContext* ex = current_exec();
  MPNJ_CHECK(ex->idle_ctx != nullptr, "no idle loop to release this proc to");
  MPNJ_CHECK(ex->pending_release == nullptr, "nested pending segment release");
  ex->pending_release = ex->seg;
  ex->seg = nullptr;
  ex->root_head = nullptr;
  arch::san::switch_begin(nullptr, ex->san_idle_fiber, ex->san_idle_bottom,
                          ex->san_idle_size);
  arch::Context dead;
  arch::ctx_swap(dead, *ex->idle_ctx);
  arch::panic("abandoned context was resumed");
}

[[noreturn]] void trampoline(void* seg_arg) {
  san_arrive(nullptr);
  auto* seg = static_cast<StackSegment*>(seg_arg);
  ExecContext* ex = current_exec();
  ex->process_pending();
  // Ownership of the boot record stays with the segment while run() is live:
  // a frame-local owner would leak when a suspended chain is abandoned,
  // because abandoned frames are reclaimed without unwinding.  The segment's
  // recycle path destroys the record in that case.
  auto* rec = static_cast<BootRecord*>(seg->boot_record);
  ContRef fire_target;
  bool to_idle = false;
  try {
    rec->run();
    arch::panic("callcc body escaped without transferring control");
  } catch (AbandonUnwind& u) {
    to_idle = u.to_idle;
    fire_target = std::move(u.target);
  } catch (...) {
    arch::panic("uncaught C++ exception crossed a continuation boundary");
  }
  // Retire the record.  An in-place record lives in the slot's boot area
  // above the range execution uses, so destroying it from this stack is
  // safe; `boot_record` is cleared first so an overlapping recycle of the
  // segment cannot double-destroy.
  const bool inplace = seg->boot_inplace;
  seg->boot_record = nullptr;
  seg->boot_inplace = false;
  if (inplace) {
    rec->~BootRecord();
  } else {
    delete rec;
  }
  if (to_idle) ContOps::return_to_idle();
  ContOps::resume_target(std::move(fire_target));
}

StackSegment* acquire_boot_segment(StackClass cls, ContCore* parent) {
  StackSegment* seg = SegmentPool::instance().acquire(cls);
  if (parent != nullptr) {
    ContRef keep{parent};  // +1 for the segment's parent linkage
    seg->parent_cont = keep.release();
  }
  // Clear stale sanitizer shadow over the whole slot (usable range plus the
  // boot area the record is about to be constructed in).
  arch::san::stack_reuse(seg->stack_base(),
                         seg->stack_size() + StackSegment::kBootReserve);
  return seg;
}

void finish_boot_segment(StackSegment* seg, BootRecord* rec, bool inplace) {
  seg->boot_record = rec;
  seg->boot_inplace = inplace;
  if (seg->san_fiber == nullptr) seg->san_fiber = arch::san::fiber_create();
  arch::ctx_make(seg->boot_ctx, seg->stack_base(), seg->stack_size(),
                 &trampoline, seg);
}

StackClass current_stack_class() noexcept {
  ExecContext* ex = current_exec();
  if (ex == nullptr || ex->seg == nullptr) return StackClass::kLarge;
  return ex->seg->klass();
}

ContRef ContOps::adopt_entry_segment(StackSegment* seg) {
  ContCore* core = alloc_core();
  core->refs_.store(1, std::memory_order_relaxed);
  core->home_seg_ = seg;  // adopts the pool reference
  core->root_head_ = nullptr;
  core->ctx_ = std::move(seg->boot_ctx);
  seg->live_seals.store(1, std::memory_order_relaxed);
  core->state_.store(ContCore::State::kPreloaded, std::memory_order_relaxed);
  core->slot_ = 0;
  {
    RegShard& shard = g_reg_shards[shard_of(core)];
    RegistryGuard guard(shard);
    core->reg_next_ = shard.head;
    if (shard.head != nullptr) shard.head->reg_prev_ = core;
    shard.head = core;
  }
  g_live_cores.fetch_add(1, std::memory_order_relaxed);
  return ContRef::adopt(core);
}

void ContOps::enter_from_idle(ContRef k, ExecContext& ex) {
  MPNJ_CHECK(ex.seg == nullptr, "proc entering the client world twice");
  MPNJ_CHECK(ex.idle_ctx != nullptr, "proc has no idle context");
  ContCore* core = k.get();
  MPNJ_CHECK(core != nullptr, "entering from idle with a null continuation");
  auto prev = core->state_.exchange(ContCore::State::kFired,
                                    std::memory_order_acq_rel);
  MPNJ_CHECK(prev == ContCore::State::kPreloaded,
             "continuation fired twice (proc entry)");
  core->home_seg_->live_seals.fetch_sub(1, std::memory_order_relaxed);
  MPNJ_CHECK(ex.pending_unref == nullptr, "nested pending core unref");
  ex.seg = core->home_seg_;
  ex.seg->add_ref();
  ex.root_head = core->root_head_;
  arch::Context target = std::move(core->ctx_);
  ex.pending_unref = k.release();  // dropped by the resumed side
  if constexpr (arch::san::kActive) {
    ex.san_idle_fiber = arch::san::current_fiber();
    ex.san_from_idle = true;
  }
  void* san_fake = nullptr;
  arch::san::switch_begin(&san_fake, ex.seg->san_fiber, ex.seg->stack_base(),
                          ex.seg->stack_size());
  arch::ctx_swap(*ex.idle_ctx, target);
  arch::san::switch_finish(san_fake, nullptr, nullptr);
  // The client released this proc.
  ex.process_pending();
  MPNJ_CHECK(ex.seg == nullptr, "client returned to idle without releasing");
}

void ContOps::for_each(const std::function<void(ContCore&)>& fn) {
  for (RegShard& shard : g_reg_shards) {
    RegistryGuard guard(shard);
    for (ContCore* c = shard.head; c != nullptr; c = c->reg_next_) {
      fn(*c);
    }
  }
}

}  // namespace detail

void detail::drain_exec_caches(ExecContext& ex) noexcept {
  while (ex.core_cache != nullptr) {
    ContCore* core = ex.core_cache;
    ex.core_cache = core->reg_next_;
    delete core;
  }
  ex.core_cache_count = 0;
  SegmentPool::instance().flush_cache(&ex.stack_cache);
}

ContRef make_entry(std::function<void()> f, StackClass cls) {
  struct EntryRecord final : detail::BootRecord {
    std::function<void()> f;
    explicit EntryRecord(std::function<void()> fn) : f(std::move(fn)) {}
    void run() override {
      f();
      // Thread body completed: this proc goes back to its idle loop.
      detail::ContOps::to_idle();
    }
  };
  StackSegment* seg = detail::boot_segment_make<EntryRecord>(
      cls, /*parent=*/nullptr, std::move(f));
  return detail::ContOps::adopt_entry_segment(seg);
}

void set_stack_owner(int tid, const char* name) noexcept {
  ExecContext* ex = current_exec();
  if (ex == nullptr || ex->seg == nullptr) return;
  ex->seg->stamp_owner(tid, name);
}

void run_from_idle(ContRef k, ExecContext& exec) {
  detail::ContOps::enter_from_idle(std::move(k), exec);
}

void mark_cancel(const ContRef& k) {
  ContCore* core = k.get();
  MPNJ_CHECK(core != nullptr, "mark_cancel on a null continuation");
  core->cancel_ = true;
  if (core->state() == ContCore::State::kCaptured) {
    core->preload(0, false);
  }
}

void for_each_core(const std::function<void(ContCore&)>& fn) {
  detail::ContOps::for_each(fn);
}

std::size_t live_core_count() {
  return g_live_cores.load(std::memory_order_relaxed);
}

}  // namespace mp::cont
