#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "arch/ctx.h"
#include "arch/stackfault.h"
#include "arch/tas.h"
#include "cont/stack_config.h"

namespace mp::cont {

class ContCore;
struct SlotArena;
void cont_unref(ContCore* core) noexcept;  // defined in cont.cpp

// A pooled stack slot.  Continuation capture seals the current segment into
// the continuation and moves execution to a fresh segment, so capture is
// O(1) — the property that makes SML/NJ-style threads cheap (paper section
// 2: "callcc simply allocates and initializes a new closure without having
// to copy anything").
//
// Segments are slots carved out of large PROT_NONE arena reservations
// (docs/STACKS.md): committing a slot is one mprotect, releasing a surplus
// slot is one madvise, and a guard region below the usable range turns an
// overflow into a deterministic fault attributed to the owning thread
// (arch/stackfault.h).  The top kBootReserve bytes of each slot hold the
// pending callcc's boot record, so booting a segment allocates nothing.
//
// Lifetime is reference counted.  References are held by:
//   * the proc currently executing on the segment (the "running" reference),
//   * every continuation whose saved frame lives in the segment,
//   * nothing else — queues and clients reference ContCores, not segments.
// In addition a segment holds one reference to its *parent continuation*:
// the continuation that a normal return off the segment's bottom frame
// implicitly fires.  Dropping the last reference to a segment therefore
// releases the parent continuation too, which reclaims abandoned
// continuation chains without unwinding them.
class StackSegment {
 public:
  // Space reserved at the top of every slot for the in-place boot record.
  static constexpr std::size_t kBootReserve = 512;
  static constexpr std::size_t kBootAlign = 64;

  std::byte* stack_base() const noexcept { return usable_base_; }
  std::size_t stack_size() const noexcept { return usable_size_; }
  // The boot-record area above the usable stack range.
  void* boot_area() const noexcept { return usable_base_ + usable_size_; }
  StackClass klass() const noexcept { return klass_; }

  void add_ref() noexcept { refs_.fetch_add(1, std::memory_order_relaxed); }
  // Drops one reference; frees the segment (returning it to the pool) and
  // releases the parent continuation when the count reaches zero.  Must not
  // be called on the segment the caller is currently executing on — defer
  // through ExecContext::pending_release instead.
  void drop_ref() noexcept;

  // Stamp the logical thread executing on this segment; shown by the
  // stack-overflow fault report.  `name` (may be null) is copied.
  void stamp_owner(int tid, const char* name) noexcept;
  // Capture hands the executing thread's identity to its fresh segment.
  void copy_owner_from(const StackSegment& other) noexcept {
    stamp_owner(other.owner_tid_, other.owner_name_);
  }

  // Destroys the pending boot record, in place or on the heap (see
  // boot_inplace).  Safe to call with no record pending.
  void destroy_boot_record() noexcept;

  // Parent continuation fired on normal return off this segment's bottom
  // frame; owned (one ContCore reference).  Managed by callcc/trampoline.
  ContCore* parent_cont = nullptr;

  // Boot context fabricated by ctx_make for this segment's trampoline.
  arch::Context boot_ctx;

  // Type-erased boot record for the pending callcc body (see cont.cpp) and
  // whether it was placement-constructed in boot_area().
  void* boot_record = nullptr;
  bool boot_inplace = false;

  // TSan fiber identity for executions on this stack (arch/fiber_san.h);
  // created when the segment is booted, destroyed when it is recycled.
  void* san_fiber = nullptr;

  // Debug invariant: number of live *unfired* continuations sealed into this
  // segment.  More than one would mean a resumed execution could overwrite
  // another live continuation's frames.
  std::atomic<int> live_seals{0};

 private:
  friend class SegmentPool;
  friend struct SlotArena;
  StackSegment() = default;
  ~StackSegment() = default;

  std::atomic<int> refs_{0};
  std::byte* usable_base_ = nullptr;
  std::size_t usable_size_ = 0;  // excludes kBootReserve
  StackClass klass_ = StackClass::kLarge;
  SlotArena* arena_ = nullptr;  // null for unpooled (baseline) segments
  arch::stackfault::SlotInfo* slot_info_ = nullptr;
  std::uint64_t gen_ = 0;  // pool generation the slot was carved under
  std::byte* map_base_ = nullptr;   // baseline segments: start of the mmap
  std::size_t map_size_ = 0;        //   (guard page + usable)
  int owner_tid_ = -1;              // shadow of slot_info_ for hand-off
  char owner_name_[24] = {};
  StackSegment* free_next_ = nullptr;
};

// Per-proc cache of recycled slots, embedded in ExecContext.  Owner-only:
// only the proc the cache belongs to pushes or pops, so no lock is needed
// (the ProcCore recycled-cell discipline).
struct StackCache {
  StackSegment* head[kNumStackClasses] = {};
  int count[kNumStackClasses] = {};
};

// Process-wide pool of stack slots in two size classes, carved on demand out
// of large PROT_NONE arena reservations.  Acquisition order: the current
// proc's StackCache, then the global hot list (committed slots), then the
// cold list (decommitted slots), then a fresh slot from the newest arena.
class SegmentPool {
 public:
  static SegmentPool& instance();

  // Applies a validated stack geometry.  A no-op when `cfg` equals the
  // current configuration; otherwise panics if any segment is outstanding.
  // Old-generation arenas stay reserved (cached slots pointing into them
  // are retired lazily), so reconfiguring costs address space, not safety.
  void configure(const StackConfig& cfg);
  const StackConfig& config() const noexcept { return config_; }

  // Returns a segment with one reference (the caller's running reference).
  StackSegment* acquire(StackClass cls = StackClass::kLarge);
  // Internal: called by StackSegment::drop_ref when the count reaches zero.
  void recycle(StackSegment* seg) noexcept;
  // Returns a proc's cached slots to the global pool (ExecContext teardown).
  void flush_cache(StackCache* cache) noexcept;

  // Statistics for tests and leak checks.
  std::int64_t outstanding() const noexcept {
    return outstanding_.load(std::memory_order_relaxed);
  }
  std::int64_t total_created() const noexcept {
    return created_.load(std::memory_order_relaxed);
  }
  // Bytes of stack currently committed (acquired slots + hot free slots);
  // maintained unconditionally, independent of MPNJ_METRICS.
  std::int64_t committed_bytes() const noexcept {
    return committed_.load(std::memory_order_relaxed);
  }
  // Decommits every hot free slot (tests use this between configurations;
  // arenas stay reserved).
  void trim();

  // Deterministic commit/decommit accounting hook (the sim backend charges
  // modeled page costs through it).  Called outside the pool lock.
  using AccountFn = void (*)(void* arg, std::int64_t commit_bytes,
                             std::int64_t decommit_bytes);
  void set_accounting(AccountFn fn, void* arg) noexcept;

 private:
  SegmentPool();

  struct ClassState {
    std::vector<std::unique_ptr<SlotArena>> arenas;
    StackSegment* hot = nullptr;  // committed free slots
    int hot_count = 0;
    StackSegment* cold = nullptr;  // decommitted free slots
    int cold_count = 0;
  };

  StackSegment* carve_locked(int c, std::int64_t* commit);
  StackSegment* allocate_baseline(StackClass cls);
  void retire_slot(StackSegment* seg) noexcept;
  void release_to_global(StackSegment* seg) noexcept;
  void release_baseline(StackSegment* seg) noexcept;
  void account(std::int64_t commit, std::int64_t decommit) noexcept;

  arch::TasWord lock_;
  StackConfig config_;
  std::atomic<std::uint64_t> gen_{0};  // bumped by every geometry change
  ClassState classes_[kNumStackClasses];
  std::vector<std::unique_ptr<SlotArena>> retired_arenas_;
  std::atomic<std::int64_t> outstanding_{0};
  std::atomic<std::int64_t> created_{0};
  std::atomic<std::int64_t> committed_{0};
  std::atomic<AccountFn> acct_fn_{nullptr};
  std::atomic<void*> acct_arg_{nullptr};
};

}  // namespace mp::cont
