#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "arch/ctx.h"
#include "arch/tas.h"

namespace mp::cont {

class ContCore;
void cont_unref(ContCore* core) noexcept;  // defined in cont.cpp

// A heap-allocated stack segment.  Continuation capture seals the current
// segment into the continuation and moves execution to a fresh segment, so
// capture is O(1) — the property that makes SML/NJ-style threads cheap
// (paper section 2: "callcc simply allocates and initializes a new closure
// without having to copy anything").
//
// Lifetime is reference counted.  References are held by:
//   * the proc currently executing on the segment (the "running" reference),
//   * every continuation whose saved frame lives in the segment,
//   * nothing else — queues and clients reference ContCores, not segments.
// In addition a segment holds one reference to its *parent continuation*:
// the continuation that a normal return off the segment's bottom frame
// implicitly fires.  Dropping the last reference to a segment therefore
// releases the parent continuation too, which reclaims abandoned
// continuation chains without unwinding them.
class StackSegment {
 public:
  std::byte* stack_base() const noexcept { return usable_base_; }
  std::size_t stack_size() const noexcept { return usable_size_; }

  void add_ref() noexcept { refs_.fetch_add(1, std::memory_order_relaxed); }
  // Drops one reference; frees the segment (returning it to the pool) and
  // releases the parent continuation when the count reaches zero.  Must not
  // be called on the segment the caller is currently executing on — defer
  // through ExecContext::pending_release instead.
  void drop_ref() noexcept;

  // Parent continuation fired on normal return off this segment's bottom
  // frame; owned (one ContCore reference).  Managed by callcc/trampoline.
  ContCore* parent_cont = nullptr;

  // Boot context fabricated by ctx_make for this segment's trampoline.
  arch::Context boot_ctx;

  // Type-erased boot record for the pending callcc body (see cont.cpp).
  void* boot_record = nullptr;

  // TSan fiber identity for executions on this stack (arch/fiber_san.h);
  // created when the segment is booted, destroyed when it is recycled.
  void* san_fiber = nullptr;

  // Debug invariant: number of live *unfired* continuations sealed into this
  // segment.  More than one would mean a resumed execution could overwrite
  // another live continuation's frames.
  std::atomic<int> live_seals{0};

 private:
  friend class SegmentPool;
  StackSegment() = default;
  ~StackSegment() = default;

  std::atomic<int> refs_{0};
  std::byte* map_base_ = nullptr;   // start of the mmap (guard page)
  std::size_t map_size_ = 0;
  std::byte* usable_base_ = nullptr;
  std::size_t usable_size_ = 0;
  StackSegment* free_next_ = nullptr;
};

// Process-wide pool of equally sized stack segments.  Segments are mmap'd
// with an inaccessible guard page below the stack (stacks grow down), so a
// segment overflow faults instead of corrupting a neighbour.
class SegmentPool {
 public:
  static SegmentPool& instance();

  // Size of the usable stack area of every pooled segment.  May only be
  // changed while no segments are outstanding (e.g. in tests / at startup).
  void set_segment_size(std::size_t bytes);
  std::size_t segment_size() const noexcept { return seg_size_; }

  // Returns a segment with one reference (the caller's running reference).
  StackSegment* acquire();
  // Internal: called by StackSegment::drop_ref when the count reaches zero.
  void recycle(StackSegment* seg) noexcept;

  // Statistics for tests and leak checks.
  std::int64_t outstanding() const noexcept {
    return outstanding_.load(std::memory_order_relaxed);
  }
  std::int64_t total_created() const noexcept {
    return created_.load(std::memory_order_relaxed);
  }
  // Unmaps all free-listed segments (tests use this between configurations).
  void trim();

 private:
  SegmentPool() = default;

  StackSegment* allocate_fresh();

  arch::TasWord lock_;
  StackSegment* free_list_ = nullptr;
  std::size_t seg_size_ = 64 * 1024;
  std::atomic<std::int64_t> outstanding_{0};
  std::atomic<std::int64_t> created_{0};
};

}  // namespace mp::cont
