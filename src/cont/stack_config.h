#pragma once

#include <cstddef>
#include <cstdint>

namespace mp::cont {

// Stack slot classes.  Every continuation stack is carved from one of two
// slot sizes: kLarge for ordinary thread bodies (the default, matching the
// seed's 64 KiB segments) and kSmall for fleets of mostly-parked threads —
// per-connection readers/writers, timers — where slot footprint is what
// bounds how many threads fit in memory.  A thread's replacement segments
// (every callcc seals the current segment and continues on a fresh one)
// inherit the class of the segment being sealed, so the choice made at fork
// follows the thread for its whole life.
enum class StackClass : std::uint8_t {
  kSmall = 0,
  kLarge = 1,
};
inline constexpr std::size_t kNumStackClasses = 2;

// Validated stack-slot geometry for the segment pool (cont/segment.h),
// threaded through platform boot on every backend — the replacement for the
// old mutable-global SegmentPool::set_segment_size.  Mirrors gc::HeapConfig:
// plain fields with chainable named setters, and validate() panics on any
// degenerate setting (called by SegmentPool::configure, callable by tests).
struct StackConfig {
  // Usable stack bytes per slot, per class; rounded up to the page size.
  std::size_t small_stack_bytes = 16 * 1024;
  std::size_t large_stack_bytes = 64 * 1024;

  // Inaccessible pages below each slot's usable range (stacks grow down):
  // an overflow faults deterministically in the guard and is reported as a
  // panic naming the owning thread (arch/stackfault.h).  0 selects guardless
  // arenas whose slots merge into one VMA — the only way to hold ~1M live
  // slots under the kernel's default vm.max_map_count, at the price of
  // overflow attribution being best-effort instead of exact.
  std::size_t guard_pages = 1;

  // Slots per reserved arena.  An arena is one PROT_NONE mmap of
  // slots_per_arena * (guard + usable) bytes; slots are committed out of it
  // on demand, so the figure costs address space, not memory.
  std::size_t slots_per_arena = 1024;

  // Recycled slots each proc keeps on a private, lock-free free list (the
  // PR-5 recycled-cell cache shape) before overflowing to the global pool.
  // 0 disables the per-proc caches.
  std::size_t cache_slots_per_proc = 32;

  // Committed free slots the global pool keeps warm per class; beyond this
  // target, released slots are decommitted (madvise MADV_DONTNEED) so RSS
  // tracks the live-thread population instead of its high-water mark.
  std::size_t global_free_target = 256;

  // Master switch for slot pooling.  When false every segment is a private
  // mmap/munmap pair exactly like the seed — the A/B baseline for the
  // fork+join numbers.  Defaults from MPNJ_STACK_POOL: unset or any value
  // but "0" enables pooling.
  bool pooling = default_pooling();

  StackConfig& with_small_stack_bytes(std::size_t v) {
    small_stack_bytes = v;
    return *this;
  }
  StackConfig& with_large_stack_bytes(std::size_t v) {
    large_stack_bytes = v;
    return *this;
  }
  StackConfig& with_guard_pages(std::size_t v) {
    guard_pages = v;
    return *this;
  }
  StackConfig& with_slots_per_arena(std::size_t v) {
    slots_per_arena = v;
    return *this;
  }
  StackConfig& with_cache_slots_per_proc(std::size_t v) {
    cache_slots_per_proc = v;
    return *this;
  }
  StackConfig& with_global_free_target(std::size_t v) {
    global_free_target = v;
    return *this;
  }
  StackConfig& with_pooling(bool v) {
    pooling = v;
    return *this;
  }

  std::size_t class_bytes(StackClass c) const noexcept {
    return c == StackClass::kSmall ? small_stack_bytes : large_stack_bytes;
  }

  // Panics with a clear message on any degenerate setting.
  void validate() const;

  static bool default_pooling();

  friend bool operator==(const StackConfig& a, const StackConfig& b) noexcept {
    return a.small_stack_bytes == b.small_stack_bytes &&
           a.large_stack_bytes == b.large_stack_bytes &&
           a.guard_pages == b.guard_pages &&
           a.slots_per_arena == b.slots_per_arena &&
           a.cache_slots_per_proc == b.cache_slots_per_proc &&
           a.global_free_target == b.global_free_target &&
           a.pooling == b.pooling;
  }
  friend bool operator!=(const StackConfig& a, const StackConfig& b) noexcept {
    return !(a == b);
  }
};

}  // namespace mp::cont
