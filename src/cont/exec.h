#pragma once

#include "arch/ctx.h"
#include "cont/segment.h"

namespace mp::cont {

struct ExecContext;

namespace detail {
// Returns the ExecContext's cached stack slots and continuation cores to the
// global pools (cont.cpp); called by the ExecContext destructor.
void drain_exec_caches(ExecContext& ex) noexcept;
}  // namespace detail

// Per-proc execution state visible to the continuation layer.  The platform
// backends own one ExecContext per proc; a thread-local pointer names the one
// belonging to the proc currently executing on this kernel thread (in the
// simulator everything runs on one kernel thread and the engine retargets the
// pointer on every virtual-proc switch).
struct ExecContext {
  // Segment the proc is executing on; the proc holds one ("running")
  // reference to it.  Null while the proc sits in its idle loop.
  StackSegment* seg = nullptr;

  // Head of the GC root chain of the logical thread currently executing.
  // Opaque to this layer; saved into and restored from continuations.
  void* root_head = nullptr;

  // Segment whose running reference must be dropped by the next resume
  // point.  A proc abandoning its segment cannot free it while still
  // executing on it, so the drop is deferred across the context switch.
  StackSegment* pending_release = nullptr;

  // Continuation core whose reference must be dropped by the next resume
  // point.  The side firing a continuation hands its reference across the
  // context switch this way, so the core stays alive until the resumed side
  // has read the delivered value.
  ContCore* pending_unref = nullptr;

  // Where release_proc()/exit_to_idle() returns control: the proc's idle
  // loop, owned by the platform backend.
  arch::Context* idle_ctx = nullptr;

  // Sanitizer identity of the idle loop's stack (arch/fiber_san.h): the
  // TSan fiber is captured by enter_from_idle before it suspends; the ASan
  // bounds are captured on the client side of that switch, where the
  // sanitizer reports the bounds of the stack just left (san_from_idle
  // marks the one arrival that should record them).  All dead weight in
  // unsanitized builds.
  void* san_idle_fiber = nullptr;
  const void* san_idle_bottom = nullptr;
  std::size_t san_idle_size = 0;
  bool san_from_idle = false;

  // This proc's recycled stack slots (cont/segment.h) and continuation
  // cores: owner-only free lists in the ProcCore recycled-cell shape, so
  // fork/capture/resume at steady state touch neither the pool lock nor
  // malloc.  Cores chain through their registry link.
  StackCache stack_cache;
  ContCore* core_cache = nullptr;
  int core_cache_count = 0;

  ExecContext() = default;
  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;
  ~ExecContext() { detail::drain_exec_caches(*this); }

  // Drop any deferred references.  Called at every resume point (after the
  // resumed code has read the fired continuation's value slot).
  void process_pending() noexcept {
    if (pending_release != nullptr) {
      StackSegment* seg_to_drop = pending_release;
      pending_release = nullptr;
      seg_to_drop->drop_ref();
    }
    if (pending_unref != nullptr) {
      ContCore* core_to_drop = pending_unref;
      pending_unref = nullptr;
      cont_unref(core_to_drop);
    }
  }
};

// The executing proc's context; set by the platform backends.
ExecContext* current_exec() noexcept;
void set_current_exec(ExecContext* exec) noexcept;

}  // namespace mp::cont
