#include "cont/segment.h"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdlib>

#include "arch/fiber_san.h"
#include "arch/panic.h"
#include "arch/tas.h"
#include "cont/cont.h"

namespace mp::cont {

namespace {

std::size_t page_size() {
  static const std::size_t ps = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return ps;
}

std::size_t round_up(std::size_t n, std::size_t align) {
  return (n + align - 1) / align * align;
}

}  // namespace

void StackSegment::drop_ref() noexcept {
  if (refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    MPNJ_CHECK(live_seals.load(std::memory_order_relaxed) == 0,
               "segment freed with live sealed continuations");
    SegmentPool::instance().recycle(this);
  }
}

SegmentPool& SegmentPool::instance() {
  static SegmentPool pool;
  return pool;
}

void SegmentPool::set_segment_size(std::size_t bytes) {
  MPNJ_CHECK(outstanding_.load() == 0,
             "cannot resize segments while segments are outstanding");
  MPNJ_CHECK(bytes >= 8 * 1024, "segment size too small");
  if (bytes != seg_size_) {
    trim();
    seg_size_ = round_up(bytes, page_size());
  }
}

StackSegment* SegmentPool::allocate_fresh() {
  const std::size_t guard = page_size();
  const std::size_t usable = round_up(seg_size_, page_size());
  const std::size_t total = guard + usable;
  void* mem = mmap(nullptr, total, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) arch::panic("segment mmap failed");
  if (mprotect(mem, guard, PROT_NONE) != 0) {
    arch::panic("segment guard mprotect failed");
  }
  auto* seg = new StackSegment();
  seg->map_base_ = static_cast<std::byte*>(mem);
  seg->map_size_ = total;
  seg->usable_base_ = seg->map_base_ + guard;
  seg->usable_size_ = usable;
  created_.fetch_add(1, std::memory_order_relaxed);
  return seg;
}

StackSegment* SegmentPool::acquire() {
  StackSegment* seg = nullptr;
  {
    arch::TasGuard guard(lock_);
    if (free_list_ != nullptr) {
      seg = free_list_;
      free_list_ = seg->free_next_;
      seg->free_next_ = nullptr;
    }
  }
  if (seg == nullptr) seg = allocate_fresh();
  seg->refs_.store(1, std::memory_order_relaxed);
  seg->parent_cont = nullptr;
  seg->boot_record = nullptr;
  outstanding_.fetch_add(1, std::memory_order_relaxed);
  return seg;
}

void SegmentPool::recycle(StackSegment* seg) noexcept {
  if (seg->san_fiber != nullptr) {
    // The caller is never executing on the segment being recycled (drops on
    // the running segment are deferred through ExecContext::pending_release),
    // so the fiber identity can be retired here.
    arch::san::fiber_destroy(seg->san_fiber);
    seg->san_fiber = nullptr;
  }
  if (seg->boot_record != nullptr) {
    // The segment was reclaimed before its trampoline ever ran (an unfired
    // continuation chain being dropped); the pending boot record is ours to
    // destroy.
    delete static_cast<detail::BootRecord*>(seg->boot_record);
    seg->boot_record = nullptr;
  }
  if (seg->parent_cont != nullptr) {
    // Releasing an abandoned segment releases its parent continuation; this
    // may cascade and free an entire suspended chain.
    cont_unref(seg->parent_cont);
    seg->parent_cont = nullptr;
  }
  outstanding_.fetch_sub(1, std::memory_order_relaxed);
  arch::TasGuard guard(lock_);
  seg->free_next_ = free_list_;
  free_list_ = seg;
}

void SegmentPool::trim() {
  arch::TasGuard guard(lock_);
  while (free_list_ != nullptr) {
    StackSegment* seg = free_list_;
    free_list_ = seg->free_next_;
    munmap(seg->map_base_, seg->map_size_);
    delete seg;
  }
}

}  // namespace mp::cont
