#include "cont/segment.h"

#include <sys/mman.h>
#include <unistd.h>

#include <cstring>

#include "arch/fiber_san.h"
#include "arch/panic.h"
#include "arch/tas.h"
#include "cont/cont.h"
#include "cont/exec.h"
#include "metrics/metrics.h"

namespace mp::cont {

namespace {

std::size_t page_size() {
  static const std::size_t ps = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return ps;
}

std::size_t round_up(std::size_t n, std::size_t align) {
  return (n + align - 1) / align * align;
}

// Full committed span of a slot: the usable stack plus the boot reserve.
std::size_t usable_total(const StackSegment* seg) {
  return seg->stack_size() + StackSegment::kBootReserve;
}

}  // namespace

// One PROT_NONE reservation holding slots_per_arena equally sized slots of a
// single class.  Arenas are never unmapped while the pool lives: retired
// generations keep their reservation so stale cached slots stay mappable
// (they are merely decommitted and parked forever).
struct SlotArena {
  std::byte* base = nullptr;
  std::size_t bytes = 0;
  std::size_t stride = 0;  // guard + usable
  std::size_t guard = 0;
  std::size_t usable = 0;  // includes StackSegment::kBootReserve
  std::size_t num_slots = 0;
  std::size_t next_fresh = 0;  // next never-carved slot index
  StackClass cls = StackClass::kLarge;
  StackSegment* segs = nullptr;
  std::vector<arch::stackfault::SlotInfo> slots;

  ~SlotArena() {
    delete[] segs;
    if (base != nullptr) munmap(base, bytes);
  }

  void init(std::size_t n) {
    num_slots = n;
    segs = new StackSegment[n];
    slots = std::vector<arch::stackfault::SlotInfo>(n);
  }
};

void StackSegment::drop_ref() noexcept {
  if (refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    MPNJ_CHECK(live_seals.load(std::memory_order_relaxed) == 0,
               "segment freed with live sealed continuations");
    SegmentPool::instance().recycle(this);
  }
}

void StackSegment::stamp_owner(int tid, const char* name) noexcept {
  owner_tid_ = tid;
  if (name != nullptr && name != owner_name_) {
    std::size_t i = 0;
    for (; name[i] != '\0' && i + 1 < sizeof(owner_name_); i++) {
      owner_name_[i] = name[i];
    }
    owner_name_[i] = '\0';
  } else if (name == nullptr) {
    owner_name_[0] = '\0';
  }
  if (slot_info_ != nullptr) {
    std::memcpy(slot_info_->name, owner_name_, sizeof(owner_name_));
    slot_info_->tid.store(tid, std::memory_order_relaxed);
  }
}

void StackSegment::destroy_boot_record() noexcept {
  if (boot_record == nullptr) return;
  auto* rec = static_cast<detail::BootRecord*>(boot_record);
  boot_record = nullptr;
  if (boot_inplace) {
    rec->~BootRecord();
  } else {
    delete rec;
  }
  boot_inplace = false;
}

SegmentPool::SegmentPool() = default;

SegmentPool& SegmentPool::instance() {
  // Deliberately leaked: proc threads may still be recycling segments while
  // static destructors run, so the pool (and its arenas) must outlive exit.
  static SegmentPool* pool = new SegmentPool();
  return *pool;
}

void SegmentPool::configure(const StackConfig& cfg) {
  cfg.validate();
  std::int64_t dec = 0;
  {
    arch::TasGuard guard(lock_);
    if (cfg == config_) return;
    MPNJ_CHECK(outstanding_.load(std::memory_order_relaxed) == 0,
               "cannot reconfigure stack slots while segments are outstanding");
    for (auto& st : classes_) {
      // The free lists die with the old geometry; their slots stay parked in
      // the now-retired arenas.
      while (st.hot != nullptr) {
        StackSegment* seg = st.hot;
        st.hot = seg->free_next_;
        seg->free_next_ = nullptr;
        madvise(seg->stack_base(), usable_total(seg), MADV_DONTNEED);
        if (seg->slot_info_ != nullptr) {
          seg->slot_info_->committed.store(0, std::memory_order_relaxed);
        }
        dec += static_cast<std::int64_t>(usable_total(seg));
      }
      st.hot_count = 0;
      st.cold = nullptr;
      st.cold_count = 0;
      for (auto& arena : st.arenas) {
        retired_arenas_.push_back(std::move(arena));
      }
      st.arenas.clear();
    }
    gen_.fetch_add(1, std::memory_order_relaxed);
    config_ = cfg;
  }
  account(0, dec);
}

StackSegment* SegmentPool::carve_locked(int c, std::int64_t* commit) {
  const StackClass cls = static_cast<StackClass>(c);
  ClassState& st = classes_[c];
  SlotArena* a = st.arenas.empty() ? nullptr : st.arenas.back().get();
  if (a == nullptr || a->next_fresh == a->num_slots) {
    auto arena = std::make_unique<SlotArena>();
    arena->guard = config_.guard_pages * page_size();
    arena->usable = round_up(config_.class_bytes(cls), page_size());
    arena->stride = arena->guard + arena->usable;
    arena->bytes = arena->stride * config_.slots_per_arena;
    arena->cls = cls;
    void* mem = mmap(nullptr, arena->bytes, PROT_NONE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    if (mem == MAP_FAILED) arch::panic("stack arena reservation failed");
    arena->base = static_cast<std::byte*>(mem);
    arena->init(config_.slots_per_arena);
    arch::stackfault::ArenaInfo reg;
    reg.base = arena->base;
    reg.bytes = arena->bytes;
    reg.stride = arena->stride;
    reg.guard_bytes = arena->guard;
    reg.usable_bytes = arena->usable;
    reg.slots = arena->slots.data();
    reg.num_slots = arena->num_slots;
    arch::stackfault::register_arena(reg);  // serialized: we hold the lock
    a = arena.get();
    st.arenas.push_back(std::move(arena));
  }
  const std::size_t idx = a->next_fresh++;
  std::byte* slot_base = a->base + idx * a->stride;
  std::byte* ub = slot_base + a->guard;
  if (mprotect(ub, a->usable, PROT_READ | PROT_WRITE) != 0) {
    arch::panic("stack slot commit (mprotect) failed");
  }
  StackSegment* seg = &a->segs[idx];
  seg->usable_base_ = ub;
  seg->usable_size_ = a->usable - StackSegment::kBootReserve;
  seg->klass_ = cls;
  seg->arena_ = a;
  seg->slot_info_ = &a->slots[idx];
  seg->gen_ = gen_.load(std::memory_order_relaxed);
  *commit += static_cast<std::int64_t>(a->usable);
  created_.fetch_add(1, std::memory_order_relaxed);
  return seg;
}

StackSegment* SegmentPool::allocate_baseline(StackClass cls) {
  // The pre-pool shape, kept as the A/B baseline (MPNJ_STACK_POOL=0): one
  // private mmap per segment with a single guard page, munmapped on release.
  const std::size_t guard = page_size();
  const std::size_t usable = round_up(config_.class_bytes(cls), page_size());
  const std::size_t total = guard + usable;
  void* mem = mmap(nullptr, total, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) arch::panic("segment mmap failed");
  if (mprotect(mem, guard, PROT_NONE) != 0) {
    arch::panic("segment guard mprotect failed");
  }
  auto* seg = new StackSegment();
  seg->map_base_ = static_cast<std::byte*>(mem);
  seg->map_size_ = total;
  seg->usable_base_ = seg->map_base_ + guard;
  seg->usable_size_ = usable - StackSegment::kBootReserve;
  seg->klass_ = cls;
  created_.fetch_add(1, std::memory_order_relaxed);
  return seg;
}

StackSegment* SegmentPool::acquire(StackClass cls) {
  // The thread is about to run client code on a pooled stack; make sure a
  // guard fault can be classified (the handler needs somewhere to run once
  // the faulting stack is exhausted).
  arch::stackfault::ensure_thread();
  const int c = static_cast<int>(cls);
  StackSegment* seg = nullptr;
  std::int64_t commit = 0;
  if (config_.pooling) {
    ExecContext* ex = current_exec();
    StackCache* cache = (ex != nullptr && config_.cache_slots_per_proc > 0)
                            ? &ex->stack_cache
                            : nullptr;
    while (cache != nullptr && cache->head[c] != nullptr) {
      StackSegment* s = cache->head[c];
      cache->head[c] = s->free_next_;
      cache->count[c]--;
      s->free_next_ = nullptr;
      if (s->gen_ != gen_.load(std::memory_order_relaxed)) {
        retire_slot(s);  // parked under an old geometry; never reused
        continue;
      }
      seg = s;
      break;
    }
    if (seg == nullptr) {
      arch::TasGuard guard(lock_);
      ClassState& st = classes_[c];
      if (st.hot != nullptr) {
        seg = st.hot;
        st.hot = seg->free_next_;
        st.hot_count--;
        seg->free_next_ = nullptr;
      } else if (st.cold != nullptr) {
        seg = st.cold;
        st.cold = seg->free_next_;
        st.cold_count--;
        seg->free_next_ = nullptr;
        // Decommitted pages repopulate (zero-filled) on first touch; the
        // protection never changed, so no syscall is needed here.
        commit = static_cast<std::int64_t>(usable_total(seg));
      } else {
        seg = carve_locked(c, &commit);
      }
    }
    if (commit > 0) {
      MPNJ_METRIC_COUNT(kContPoolMisses, 1);
    } else {
      MPNJ_METRIC_COUNT(kContPoolHits, 1);
    }
  } else {
    seg = allocate_baseline(cls);
    commit = static_cast<std::int64_t>(usable_total(seg));
  }
  seg->refs_.store(1, std::memory_order_relaxed);
  seg->parent_cont = nullptr;
  seg->boot_record = nullptr;
  seg->boot_inplace = false;
  seg->stamp_owner(-1, nullptr);
  if (seg->slot_info_ != nullptr) {
    seg->slot_info_->committed.store(1, std::memory_order_relaxed);
  }
  outstanding_.fetch_add(1, std::memory_order_relaxed);
  account(commit, 0);
  return seg;
}

void SegmentPool::recycle(StackSegment* seg) noexcept {
  if (seg->san_fiber != nullptr) {
    // The caller is never executing on the segment being recycled (drops on
    // the running segment are deferred through ExecContext::pending_release),
    // so the fiber identity can be retired here.
    arch::san::fiber_destroy(seg->san_fiber);
    seg->san_fiber = nullptr;
  }
  // An unfired continuation chain being dropped may leave its pending boot
  // record behind; it is ours to destroy.
  seg->destroy_boot_record();
  if (seg->parent_cont != nullptr) {
    // Releasing an abandoned segment releases its parent continuation; this
    // may cascade and free an entire suspended chain.
    cont_unref(seg->parent_cont);
    seg->parent_cont = nullptr;
  }
  outstanding_.fetch_sub(1, std::memory_order_relaxed);
  if (seg->arena_ == nullptr) {
    release_baseline(seg);
    return;
  }
  seg->stamp_owner(-1, nullptr);
  if (seg->gen_ != gen_.load(std::memory_order_relaxed)) {
    retire_slot(seg);
    return;
  }
  ExecContext* ex = current_exec();
  const int c = static_cast<int>(seg->klass_);
  if (ex != nullptr &&
      ex->stack_cache.count[c] <
          static_cast<int>(config_.cache_slots_per_proc)) {
    seg->free_next_ = ex->stack_cache.head[c];
    ex->stack_cache.head[c] = seg;
    ex->stack_cache.count[c]++;
    MPNJ_METRIC_COUNT(kContPoolRecycles, 1);
    return;
  }
  MPNJ_METRIC_COUNT(kContPoolRecycles, 1);
  release_to_global(seg);
}

void SegmentPool::release_to_global(StackSegment* seg) noexcept {
  std::int64_t dec = 0;
  const int c = static_cast<int>(seg->klass_);
  {
    arch::TasGuard guard(lock_);
    ClassState& st = classes_[c];
    if (st.hot_count < static_cast<int>(config_.global_free_target)) {
      seg->free_next_ = st.hot;
      st.hot = seg;
      st.hot_count++;
    } else {
      madvise(seg->stack_base(), usable_total(seg), MADV_DONTNEED);
      if (seg->slot_info_ != nullptr) {
        seg->slot_info_->committed.store(0, std::memory_order_relaxed);
      }
      seg->free_next_ = st.cold;
      st.cold = seg;
      st.cold_count++;
      dec = static_cast<std::int64_t>(usable_total(seg));
      MPNJ_METRIC_COUNT(kContPoolDecommits, 1);
    }
  }
  account(0, dec);
}

void SegmentPool::retire_slot(StackSegment* seg) noexcept {
  madvise(seg->stack_base(), usable_total(seg), MADV_DONTNEED);
  if (seg->slot_info_ != nullptr) {
    seg->slot_info_->committed.store(0, std::memory_order_relaxed);
  }
  account(0, static_cast<std::int64_t>(usable_total(seg)));
}

void SegmentPool::release_baseline(StackSegment* seg) noexcept {
  const std::int64_t dec = static_cast<std::int64_t>(usable_total(seg));
  munmap(seg->map_base_, seg->map_size_);
  delete seg;
  account(0, dec);
}

void SegmentPool::flush_cache(StackCache* cache) noexcept {
  for (std::size_t c = 0; c < kNumStackClasses; c++) {
    StackSegment* seg = cache->head[c];
    cache->head[c] = nullptr;
    cache->count[c] = 0;
    while (seg != nullptr) {
      StackSegment* next = seg->free_next_;
      seg->free_next_ = nullptr;
      if (seg->gen_ != gen_.load(std::memory_order_relaxed)) {
        retire_slot(seg);
      } else {
        release_to_global(seg);
      }
      seg = next;
    }
  }
}

void SegmentPool::trim() {
  std::int64_t dec = 0;
  {
    arch::TasGuard guard(lock_);
    for (auto& st : classes_) {
      while (st.hot != nullptr) {
        StackSegment* seg = st.hot;
        st.hot = seg->free_next_;
        st.hot_count--;
        madvise(seg->stack_base(), usable_total(seg), MADV_DONTNEED);
        if (seg->slot_info_ != nullptr) {
          seg->slot_info_->committed.store(0, std::memory_order_relaxed);
        }
        seg->free_next_ = st.cold;
        st.cold = seg;
        st.cold_count++;
        dec += static_cast<std::int64_t>(usable_total(seg));
      }
    }
  }
  account(0, dec);
}

void SegmentPool::account(std::int64_t commit, std::int64_t decommit) noexcept {
  if (commit == 0 && decommit == 0) return;
  committed_.fetch_add(commit - decommit, std::memory_order_relaxed);
  if (commit > 0) {
    MPNJ_METRIC_COUNT_ALWAYS(kContStackCommitBytes,
                             static_cast<std::uint64_t>(commit));
  }
  if (decommit > 0) {
    MPNJ_METRIC_COUNT_ALWAYS(kContStackDecommitBytes,
                             static_cast<std::uint64_t>(decommit));
  }
  AccountFn fn = acct_fn_.load(std::memory_order_acquire);
  if (fn != nullptr) {
    fn(acct_arg_.load(std::memory_order_relaxed), commit, decommit);
  }
}

void SegmentPool::set_accounting(AccountFn fn, void* arg) noexcept {
  acct_arg_.store(arg, std::memory_order_relaxed);
  acct_fn_.store(fn, std::memory_order_release);
}

}  // namespace mp::cont
