#include "cont/exec.h"

namespace mp::cont {

namespace {
thread_local ExecContext* tl_exec = nullptr;
}

ExecContext* current_exec() noexcept { return tl_exec; }
void set_current_exec(ExecContext* exec) noexcept { tl_exec = exec; }

}  // namespace mp::cont
