#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <type_traits>
#include <utility>

#include "arch/ctx.h"
#include "arch/panic.h"
#include "cont/exec.h"
#include "cont/segment.h"

// First-class one-shot continuations for C++ — the analogue of SML/NJ's
// typed `callcc` / `throw` (paper section 2).
//
// SML/NJ continuations are heap-allocated closure chains and may be invoked
// any number of times.  Every use the paper makes of them — saving a thread
// in `fork`/`yield`, parking a sender or receiver on a channel, saving proc
// state before `release_proc` — fires each continuation exactly once, so we
// implement the one-shot subset (à la Bruggeman, Waddell & Dybvig): capture
// seals the current heap-allocated stack *segment* into the continuation and
// continues the body on a fresh segment.  Both capture and throw are O(1)
// and allocation-only, preserving the paper's "callcc is as cheap as a
// procedure call" property, and continuations remain first-class values that
// can migrate freely between procs.
//
// Discipline imposed on clients (checked at runtime where possible):
//   * A continuation may receive a value (preload/throw) exactly once and be
//     resumed exactly once; violations panic.
//   * The callcc body starts on a fresh stack segment with an empty GC root
//     chain; GC references handed to a body or a forked thread must travel
//     through registered roots (see gc/roots.h), not through captured stack
//     frames of the suspended parent.
//   * C++ exceptions must not propagate out of a callcc body; doing so
//     panics.  `throw_to` itself unwinds the abandoned frames (running
//     destructors) before switching, so RAII in client frames is safe.

namespace mp::cont {

// The ML `unit` type.
struct Unit {
  friend bool operator==(Unit, Unit) noexcept { return true; }
};

// Trait marking slot types the garbage collector must trace (specialized by
// gc/value.h for gc::Value).
template <typename T>
struct is_gc_traced : std::false_type {};

// Raised at a continuation's capture point when the continuation was
// resumed through mark_cancel: the suspended computation unwinds (running
// its destructors) instead of continuing.  Schedulers catch it at the
// thread's bottom frame to retire the thread (threads/scheduler.h).
class ThreadCancelled : public std::exception {
 public:
  const char* what() const noexcept override {
    return "thread cancelled at a suspension point";
  }
};

namespace detail {

struct ContOps;

template <typename T>
std::uint64_t encode_slot(const T& v) noexcept {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                "continuation payloads must fit in one machine word");
  std::uint64_t raw = 0;
  std::memcpy(&raw, &v, sizeof(T));
  return raw;
}

template <typename T>
T decode_slot(std::uint64_t raw) noexcept {
  T v{};
  std::memcpy(static_cast<void*>(&v), &raw, sizeof(T));
  return v;
}

}  // namespace detail

class ContRef;

// Reference-counted core of a continuation.  Type erased; `Cont<T>` is the
// typed client handle.  All live cores are kept on a global registry so the
// collector can find every suspended thread's roots.
class ContCore {
 public:
  enum class State : std::uint8_t {
    kCaptured,   // live, no value delivered yet
    kPreloaded,  // value delivered, not yet resumed
    kFired,      // resumed; the seal is spent
  };

  State state() const noexcept { return state_.load(std::memory_order_acquire); }

  // Deliver the value the continuation will return.  Exactly once.
  void preload(std::uint64_t raw, bool gc_traced) noexcept;

  // --- GC interface (world must be stopped) ---
  void* root_head() const noexcept { return root_head_; }
  bool slot_is_gc_ref() const noexcept { return slot_armed_; }
  std::uint64_t* slot_ptr() noexcept { return &slot_; }

 private:
  friend class ContRef;
  friend void cont_unref(ContCore* core) noexcept;
  friend void mark_cancel(const ContRef& k);
  friend void detail::drain_exec_caches(ExecContext& ex) noexcept;
  friend struct detail::ContOps;

  ContCore() = default;
  ~ContCore() = default;

  void add_ref() noexcept { refs_.fetch_add(1, std::memory_order_relaxed); }

  std::atomic<int> refs_{0};
  std::atomic<State> state_{State::kCaptured};
  std::uint64_t slot_ = 0;
  bool slot_armed_ = false;   // slot holds a GC reference (trace + update)
  bool cancel_ = false;       // resume raises ThreadCancelled
  StackSegment* home_seg_ = nullptr;  // owns one reference
  arch::Context ctx_;
  void* root_head_ = nullptr;
  ContCore* reg_prev_ = nullptr;  // registry links
  ContCore* reg_next_ = nullptr;
};

// Drops one core reference; destroys the core (releasing its segment and
// registry entry) when the count reaches zero.
void cont_unref(ContCore* core) noexcept;

// Intrusive smart pointer to a ContCore.
class ContRef {
 public:
  ContRef() noexcept = default;
  explicit ContRef(ContCore* core) noexcept : core_(core) {
    if (core_ != nullptr) core_->add_ref();
  }
  static ContRef adopt(ContCore* core) noexcept {  // takes an existing count
    ContRef r;
    r.core_ = core;
    return r;
  }
  ContRef(const ContRef& other) noexcept : ContRef(other.core_) {}
  ContRef(ContRef&& other) noexcept : core_(other.core_) { other.core_ = nullptr; }
  ContRef& operator=(ContRef other) noexcept {
    std::swap(core_, other.core_);
    return *this;
  }
  ~ContRef() { reset(); }

  void reset() noexcept {
    if (core_ != nullptr) {
      cont_unref(core_);
      core_ = nullptr;
    }
  }
  ContCore* get() const noexcept { return core_; }
  ContCore* release() noexcept {  // gives up the count without dropping it
    ContCore* c = core_;
    core_ = nullptr;
    return c;
  }
  explicit operator bool() const noexcept { return core_ != nullptr; }
  friend bool operator==(const ContRef& a, const ContRef& b) noexcept {
    return a.core_ == b.core_;
  }

 private:
  ContCore* core_ = nullptr;
};

namespace detail {

// Type-erased boot record executed by the trampoline at the bottom of a
// fresh segment.  The SML/NJ analogue is the closure callcc allocates.
struct BootRecord {
  virtual ~BootRecord() = default;
  // Runs the body.  Never returns normally: always exits by raising the
  // internal abandon-unwind, either firing a continuation or releasing the
  // proc.
  virtual void run() = 0;
};

[[noreturn]] void trampoline(void* seg_arg);

// Acquires a fresh segment of `cls` and links `parent` (may be null: it is
// fired on normal return off the segment; the segment takes one reference).
// The sanitizer shadow of the slot is cleared, ready for the boot record.
StackSegment* acquire_boot_segment(StackClass cls, ContCore* parent);

// Installs `rec` as the segment's pending boot record and fabricates the
// trampoline context.  `inplace` says whether `rec` was placement-
// constructed in the segment's boot area (destroyed in place) or heap
// allocated (deleted).
void finish_boot_segment(StackSegment* seg, BootRecord* rec, bool inplace);

// Stack class of the segment the caller is executing on (kLarge outside a
// proc's client context) — what a replacement segment inherits.
StackClass current_stack_class() noexcept;

// Boots a fresh segment of `cls` whose trampoline runs a newly constructed
// `R(args...)`.  Records that fit the slot's boot reserve are constructed in
// place — the steady-state fork/callcc path allocates nothing.
template <typename R, typename... Args>
StackSegment* boot_segment_make(StackClass cls, ContCore* parent,
                                Args&&... args) {
  StackSegment* seg = acquire_boot_segment(cls, parent);
  BootRecord* rec = nullptr;
  bool inplace = false;
  try {
    if constexpr (sizeof(R) <= StackSegment::kBootReserve &&
                  alignof(R) <= StackSegment::kBootAlign) {
      rec = new (seg->boot_area()) R(std::forward<Args>(args)...);
      inplace = true;
    } else {
      rec = new R(std::forward<Args>(args)...);
    }
  } catch (...) {
    seg->drop_ref();  // releases the parent linkage too
    throw;
  }
  finish_boot_segment(seg, rec, inplace);
  return seg;
}

// Core continuation operations; the single friend of ContCore through which
// all private state is manipulated.
struct ContOps {
  // Seals the current segment into a fresh CAPTURED core (returned with one
  // reference) recording the current root chain.
  static ContRef make_sealed_core();
  // Switches to `fresh` (boot context), saving the current execution into
  // `sealed`.  Consumes the caller's reference (the suspended frame must not
  // hold one: a frame owning its own continuation would be a leak cycle).
  // Returns the slot value when `sealed` is eventually fired.
  static std::uint64_t seal_and_switch(ContRef sealed, StackSegment* fresh);
  // Raises the abandon-unwind that resumes `k` (which must be PRELOADED).
  [[noreturn]] static void fire(ContRef k);
  // Raises the abandon-unwind that returns the proc to its idle loop.
  [[noreturn]] static void to_idle();
  // Wraps a freshly booted segment into a PRELOADED entry core.
  static ContRef adopt_entry_segment(StackSegment* seg);
  // Fires `k` from a proc's idle loop; returns when the proc is released.
  static void enter_from_idle(ContRef k, ExecContext& ex);
  // Final stages of an abandon-unwind (called by the trampoline only).
  [[noreturn]] static void resume_target(ContRef k);
  [[noreturn]] static void return_to_idle();
  // Registry iteration for the collector.
  static void for_each(const std::function<void(ContCore&)>& fn);
  // Core allocation through the per-proc recycled-core cache.
  static ContCore* alloc_core();
  static void free_core(ContCore* core) noexcept;
};

}  // namespace detail

// Typed first-class one-shot continuation, mirroring SML `'a cont`.
template <typename T>
class Cont {
 public:
  Cont() noexcept = default;
  explicit Cont(ContRef ref) noexcept : ref_(std::move(ref)) {}

  bool valid() const noexcept { return static_cast<bool>(ref_); }
  const ContRef& ref() const noexcept { return ref_; }
  ContRef take_ref() && noexcept { return std::move(ref_); }

  // Deliver `v` without resuming; pair with a later `fire_preloaded` (used
  // by ready queues: the paper's reschedule_thread does exactly this shape).
  void preload(const T& v) const {
    MPNJ_CHECK(ref_.get() != nullptr, "preload of null continuation");
    ref_.get()->preload(detail::encode_slot(v), is_gc_traced<T>::value);
  }

  friend bool operator==(const Cont& a, const Cont& b) noexcept {
    return a.ref_ == b.ref_;
  }

 private:
  ContRef ref_;
};

// callcc_on(cls, body): captures the current continuation k, then runs
// body(k) on a fresh segment of stack class `cls`.  Returns when k is thrown
// a value — or, if the body returns normally, with the body's own result
// (delivered by an implicit throw, matching SML semantics for one-shot use).
template <typename T, typename F>
T callcc_on(StackClass cls, F&& body) {
  static_assert(std::is_invocable_r_v<T, F, Cont<T>>,
                "callcc<T> body must accept Cont<T> and return T");

  struct Record final : detail::BootRecord {
    std::decay_t<F> body;
    ContRef k;
    Record(F&& b, ContRef kk) : body(std::forward<F>(b)), k(std::move(kk)) {}
    void run() override {
      Cont<T> typed(std::move(k));
      ContRef again = typed.ref();  // keep a handle for the implicit throw
      T result = std::move(body)(std::move(typed));
      // Implicit throw of the body's normal result to the captured
      // continuation; panics if the body already fired it.
      again.get()->preload(detail::encode_slot(result), is_gc_traced<T>::value);
      detail::ContOps::fire(std::move(again));
    }
  };

  ContRef sealed = detail::ContOps::make_sealed_core();
  StackSegment* fresh = detail::boot_segment_make<Record>(
      cls, sealed.get(), std::forward<F>(body), sealed);
  std::uint64_t raw = detail::ContOps::seal_and_switch(std::move(sealed), fresh);
  return detail::decode_slot<T>(raw);
}

// callcc(body): callcc_on with the class of the segment being sealed, so a
// thread's replacement segments keep the footprint its fork requested.
template <typename T, typename F>
T callcc(F&& body) {
  return callcc_on<T>(detail::current_stack_class(), std::forward<F>(body));
}

// throw v to k: unwinds the current frames (running destructors), abandons
// the current segment chain, and resumes k with v.  Never returns.
template <typename T>
[[noreturn]] void throw_to(Cont<T> k, const T& v) {
  k.preload(v);
  detail::ContOps::fire(std::move(k).take_ref());
}

// Resume a continuation that already had its value delivered via preload().
// The shape used by schedulers: dequeue a Resumee, fire it.
[[noreturn]] inline void fire_preloaded(ContRef k) {
  detail::ContOps::fire(std::move(k));
}

// Unwind the current thread of control and return this proc to its idle
// loop.  The platform's release_proc is built on this.
[[noreturn]] inline void exit_to_idle() { detail::ContOps::to_idle(); }

// Arrange for `k`'s resume to raise ThreadCancelled at its capture point
// instead of delivering a value (delivering one first is fine; it is
// discarded).  The caller still fires or reschedules `k` as usual.  Only
// meaningful for callcc-captured continuations; an entry continuation has
// no capture point to raise at and simply runs.
void mark_cancel(const ContRef& k);

// Create a PRELOADED entry continuation that, when fired, runs `f` on a
// fresh segment of `cls`.  If `f` returns normally the proc returns to its
// idle loop.  Used by the platform to start the root computation and by
// clients that need a thread body without a parent capture point.
ContRef make_entry(std::function<void()> f,
                   StackClass cls = StackClass::kLarge);

// Stamp the identity of the logical thread executing on the current segment
// (reported by the stack-overflow panic, arch/stackfault.h).  The stamp
// follows the thread: capture copies it onto each replacement segment.
// `name` (may be null) is copied and truncated to the slot's name buffer.
void set_stack_owner(int tid, const char* name) noexcept;

// Platform-side: enter the client world from a proc's idle loop by firing
// `k` (which must be PRELOADED); returns when the client releases the proc.
// `exec` must be the calling proc's ExecContext with exec.seg == nullptr and
// exec.idle_ctx pointing at the Context to save the idle loop into.
void run_from_idle(ContRef k, ExecContext& exec);

// --- GC support: iterate all live continuation cores (world stopped). ---
void for_each_core(const std::function<void(ContCore&)>& fn);

// Number of live cores (tests / leak checks).
std::size_t live_core_count();

}  // namespace mp::cont
