#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

// The per-shard ordered store of the mp::kv service (docs/KV.md): a chained
// hash index for O(1) point operations layered over a skiplist for ordered
// RANGE scans, with one node per key living in both structures at once
// (hash chain link + skiplist towers), so SET/DEL maintain both views with
// a single allocation.
//
// Deliberately lock-free BY OWNERSHIP, not by atomics: a ShardStore is only
// ever touched by the one MLthread that owns its shard (KvService routes
// every request to that thread over a CML channel), so there is nothing to
// synchronize — plain loads and stores, no CAS, no fences.  The service
// layer asserts the single-owner discipline on every access.
//
// Determinism: skiplist tower heights come from a private xorshift stream
// seeded per shard, so a given sequence of operations builds bit-identical
// structure on every backend — including the simulator, where the fuzz
// scenarios depend on it.

namespace mp::kv {

class ShardStore {
 public:
  explicit ShardStore(std::uint64_t seed);
  ~ShardStore();
  ShardStore(const ShardStore&) = delete;
  ShardStore& operator=(const ShardStore&) = delete;

  // Insert or overwrite.  Returns true when the key is new.
  bool set(std::string_view key, std::string_view value);
  // nullptr on a miss; the pointer is valid until the key is next mutated.
  const std::string* get(std::string_view key) const;
  // Returns true when the key existed.
  bool del(std::string_view key);
  // Visit entries with lo <= key <= hi in ascending key order, at most
  // `limit` of them (limit < 0 = unbounded).  `fn` returns false to stop.
  void range(std::string_view lo, std::string_view hi, long limit,
             const std::function<bool(std::string_view key,
                                      std::string_view value)>& fn) const;

  std::size_t size() const { return size_; }
  // Payload bytes resident (keys + values), for STATS and capacity metrics.
  std::size_t bytes() const { return bytes_; }

 private:
  static constexpr int kMaxHeight = 16;

  struct Node;

  Node* find(std::string_view key) const;
  int random_height();
  void rehash();

  Node* heads_[kMaxHeight] = {};   // skiplist level heads
  int height_ = 1;                 // tallest tower in use
  std::vector<Node*> buckets_;     // hash index (power-of-two size)
  std::size_t size_ = 0;
  std::size_t bytes_ = 0;
  std::uint64_t rng_;
  // Per-store salt folded into the bucket hash so collision sets cannot be
  // precomputed from the (public) hash function over attacker-chosen keys.
  std::uint64_t hash_seed_;
};

}  // namespace mp::kv
