#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

// The mp::kv wire protocol (docs/KV.md): a pipelined, line-oriented text
// protocol in the RESP style, built for incremental parsing — both parsers
// below accept input one byte at a time and never assume a read boundary
// lines up with a frame boundary.
//
// Requests (`\n`-terminated; a `\r` before the `\n` is accepted):
//   GET <key>
//   SET <key> <vlen>       followed by exactly <vlen> raw value bytes + newline
//   DEL <key>
//   RANGE <lo> <hi> [<limit>]
//   STATS | PING | QUIT
//
// Replies (always `\r\n`-terminated):
//   +OK / +PONG            simple strings
//   -ERR <message>         protocol errors (the connection stays open)
//   :<n>                   integers (DEL count)
//   $<len>\r\n<bytes>\r\n  bulk strings (GET hit, STATS body)
//   $-1                    nil (GET miss)
//   *<n>                   array header; RANGE yields 2k bulk items (k,v,...)
//
// A malformed request line produces an error *request* from FrameParser
// (the server answers -ERR and keeps the connection) and the parser
// resynchronizes at the next newline; an oversized SET value is skipped
// byte-accurately so the stream stays framed.

namespace mp::kv {

inline constexpr std::size_t kMaxKeyBytes = 512;
inline constexpr std::size_t kMaxValueBytes = 1u << 20;
// A request line holds at most a verb + two keys + a limit.
inline constexpr std::size_t kMaxLineBytes = 2 * kMaxKeyBytes + 64;
// Ceiling on RANGE result pairs.  The parser rejects explicit limits above
// it, and the server clamps the no-limit default (-1) to it, so one RANGE
// can never materialize an unbounded slice of the store.
inline constexpr long kMaxRangeResults = 1 << 20;

enum class Op : std::uint8_t { kGet, kSet, kDel, kRange, kStats, kPing, kQuit };
const char* op_name(Op op);

struct Request {
  Op op = Op::kPing;
  std::string key;    // GET/SET/DEL key; RANGE lower bound
  std::string value;  // SET payload
  std::string hi;     // RANGE upper bound
  long limit = -1;    // RANGE limit (-1 = unbounded)
  // Non-empty: a protocol error to report in place of an operation.
  std::string error;
  bool ok() const { return error.empty(); }
};

// Incremental request parser: feed() whatever arrived, then drain complete
// requests with next().  Protocol errors come out of next() as Requests
// with `error` set, in stream order, after the parser has discarded the
// malformed frame.
class FrameParser {
 public:
  void feed(const void* data, std::size_t n);
  // True when a complete request (or error) was extracted into *out.
  bool next(Request* out);
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  enum class Mode : std::uint8_t {
    kLine,          // scanning for a newline-terminated command line
    kValue,         // collecting a SET payload of value_need_ bytes
    kValueNl,       // expecting the newline after a SET payload
    kDiscardValue,  // skipping an oversized SET payload
    kDiscardLine,   // skipping to the next newline after a malformed line
  };

  bool parse_line(std::string_view line, Request* out);
  void compact();

  std::string buf_;
  std::size_t pos_ = 0;  // first unconsumed byte
  Mode mode_ = Mode::kLine;
  Request pending_;            // SET awaiting its payload
  std::size_t value_need_ = 0;  // bytes still to collect/discard
  std::string deferred_error_;  // reported once the discard completes
};

// ---- reply encoding (appends to *out; one call per frame) ----

void encode_ok(std::string* out);
void encode_pong(std::string* out);
void encode_error(std::string* out, std::string_view msg);
void encode_int(std::string* out, long v);
void encode_bulk(std::string* out, std::string_view v);
void encode_nil(std::string* out);
void encode_array_header(std::string* out, std::size_t items);

// ---- request encoding (the client half: load generators, tests) ----

void encode_get(std::string* out, std::string_view key);
void encode_set(std::string* out, std::string_view key, std::string_view value);
void encode_del(std::string* out, std::string_view key);
void encode_range(std::string* out, std::string_view lo, std::string_view hi,
                  long limit = -1);
void encode_stats(std::string* out);
void encode_ping(std::string* out);
void encode_quit(std::string* out);

// One decoded reply frame.
struct Reply {
  enum class Kind : std::uint8_t {
    kSimple,  // +...; text holds the body ("OK", "PONG")
    kError,   // -...; text holds the message
    kInt,     // :n
    kBulk,    // $n body; text holds the bytes
    kNil,     // $-1
    kArray,   // *n of bulk items; items holds them flat
  };
  Kind kind = Kind::kSimple;
  long ival = 0;
  std::string text;
  std::vector<std::string> items;
};

// Incremental reply parser (client side), same contract as FrameParser.
class ReplyParser {
 public:
  void feed(const void* data, std::size_t n);
  bool next(Reply* out);
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  enum class Mode : std::uint8_t { kLine, kBulkBody };

  bool take_line(std::string_view* line);
  void compact();

  std::string buf_;
  std::size_t pos_ = 0;
  Mode mode_ = Mode::kLine;
  std::size_t bulk_need_ = 0;
  Reply pending_;
  long array_left_ = 0;  // bulk items still owed to pending_ (array mode)
  bool in_array_ = false;
};

}  // namespace mp::kv
