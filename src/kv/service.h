#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "cml/cml.h"
#include "cml/mailbox.h"
#include "kv/proto.h"
#include "kv/store.h"
#include "threads/scheduler.h"
#include "threads/sync.h"

// The sharded KV service core (docs/KV.md): N ShardStores, each owned by
// exactly one MLthread, with ALL access routed through a per-shard CML
// request channel.  The shard data structures take no locks on the request
// path — ownership replaces mutual exclusion, and contention between
// connections becomes scheduling (rendezvous on the shard channel), which
// the work-stealing cores and parking locks underneath already make fast.
//
// Keys map to shards by rendezvous (highest-random-weight) hashing over
// per-shard salts: every key has one owner, ownership is stable under a
// fixed shard count, and the mapping needs no shared routing table.

namespace mp::kv {

struct KvConfig {
  // Shard count; 0 = one shard per proc (the platform's max_procs).
  int shards = 0;
  // Seed for per-shard skiplist height streams and routing salts.
  std::uint64_t seed = 0x5eed;
};

// One in-flight request: allocated by a connection's reader thread, applied
// and reply-encoded by the owning shard thread, retired (in submission
// order) by the connection's writer thread.  Crosses CML channels as a
// pointer, like every payload in this runtime.
struct KvReq {
  Request req;
  std::string out;   // encoded reply bytes (filled by the shard)
  // RANGE probe results (structured, per shard; the connection layer merges
  // across shards and encodes — see server.cpp).
  std::vector<std::pair<std::string, std::string>> range_out;
  std::uint64_t seq = 0;  // per-connection submission order
  // Where the shard delivers the finished request (the connection's reply
  // mailbox, or a private mailbox for RANGE/STATS fan-out probes).  A
  // mailbox, not a rendezvous channel, on purpose: delivery is asynchronous,
  // so a shard owner is never parked by one connection whose writer has
  // stalled — replies to other connections keep flowing.
  cml::Mailbox<std::uint64_t>* reply = nullptr;
  bool fin = false;  // writer sentinel: no request will carry seq >= this->seq
  double submit_us = 0;  // platform clock at submission (latency metrics)
  // STATS probe results (filled by the shard).
  std::size_t stat_keys = 0;
  std::size_t stat_bytes = 0;
  std::uint64_t stat_ops = 0;
};

struct ShardStats {
  std::size_t keys = 0;
  std::size_t bytes = 0;
  std::uint64_t ops = 0;
  int shards = 0;
};

class KvService {
 public:
  KvService(threads::Scheduler& sched, KvConfig cfg = {});
  ~KvService();
  KvService(const KvService&) = delete;
  KvService& operator=(const KvService&) = delete;

  // Fork the shard owner threads.  Must be called before submit().
  void start();
  // Drain-stop every shard thread and join them.  Outstanding submitters
  // must have completed; the service is unusable afterwards.
  void stop();

  int shards() const { return static_cast<int>(shards_.size()); }
  int shard_of(std::string_view key) const;

  // Hand `r` to its owning shard (a rendezvous send: parks the caller until
  // the shard accepts, which is the service's only backpressure).  The shard
  // encodes the reply into r->out and posts r to r->reply.  Point ops only
  // (GET/SET/DEL): RANGE and STATS are multi-shard and fan out via
  // submit_to.
  void submit(KvReq* r);

  // Route `r` to one specific shard regardless of key: the scatter half of
  // RANGE and STATS fan-outs.
  void submit_to(int shard, KvReq* r);

  // Aggregate store sizes via a STATS probe round-trip to every shard.
  // Callable from any MLthread while the service is running.
  ShardStats stats();

  threads::Scheduler& scheduler() { return sched_; }

 private:
  struct Shard {
    std::unique_ptr<cml::Channel<std::uint64_t>> ch;
    std::unique_ptr<ShardStore> store;
    std::uint64_t salt = 0;   // rendezvous-hashing weight seed
    int owner_tid = -1;       // the one thread allowed to touch `store`
    std::uint64_t ops = 0;    // operations applied (owner-only, no atomics)
  };

  void shard_loop(int idx);
  void apply(Shard& sh, KvReq* r);

  threads::Scheduler& sched_;
  KvConfig cfg_;
  std::vector<Shard> shards_;
  std::unique_ptr<threads::CountdownLatch> joined_;
  bool started_ = false;
};

}  // namespace mp::kv
