#include "kv/proto.h"

#include <algorithm>
#include <cstdlib>

namespace mp::kv {

namespace {

// Strict unsigned-decimal parse (no sign, no blanks); false on overflow or
// a non-digit.
bool parse_u64(std::string_view s, std::uint64_t* out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    if (v > (UINT64_MAX - 9) / 10) return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

}  // namespace

const char* op_name(Op op) {
  switch (op) {
    case Op::kGet:   return "GET";
    case Op::kSet:   return "SET";
    case Op::kDel:   return "DEL";
    case Op::kRange: return "RANGE";
    case Op::kStats: return "STATS";
    case Op::kPing:  return "PING";
    case Op::kQuit:  return "QUIT";
  }
  return "?";
}

// ---- FrameParser ----

void FrameParser::feed(const void* data, std::size_t n) {
  buf_.append(static_cast<const char*>(data), n);
}

void FrameParser::compact() {
  // Drop the consumed prefix once it dominates the buffer, so long-lived
  // connections do not accumulate dead bytes.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
}

bool FrameParser::parse_line(std::string_view line, Request* out) {
  // Tokenize on runs of spaces (keys cannot contain spaces or newlines).
  std::string_view tok[4];
  std::size_t ntok = 0;
  bool overflow = false;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') i++;
    std::size_t j = i;
    while (j < line.size() && line[j] != ' ') j++;
    if (j > i) {
      if (ntok < 4) {
        tok[ntok++] = line.substr(i, j - i);
      } else {
        overflow = true;
      }
    }
    i = j;
  }
  if (ntok == 0) return false;  // all-blank line: ignored, stay in kLine

  const auto err = [out](const char* msg) {
    *out = Request{};
    out->error = msg;
    return true;
  };
  if (overflow) return err("too many arguments");

  const std::string_view verb = tok[0];
  if (verb == "GET" || verb == "DEL") {
    if (ntok != 2) return err("expected: GET|DEL <key>");
    if (tok[1].size() > kMaxKeyBytes) return err("key too long");
    *out = Request{};
    out->op = verb == "GET" ? Op::kGet : Op::kDel;
    out->key.assign(tok[1].data(), tok[1].size());
    return true;
  }
  if (verb == "SET") {
    if (ntok != 3) return err("expected: SET <key> <vlen>");
    std::uint64_t vlen = 0;
    if (!parse_u64(tok[2], &vlen)) return err("bad value length");
    if (tok[1].size() > kMaxKeyBytes) {
      // The payload is on the wire regardless; skip it byte-accurately so
      // the stream stays framed, then report.
      mode_ = Mode::kDiscardValue;
      value_need_ = static_cast<std::size_t>(vlen);
      deferred_error_ = "key too long";
      return false;
    }
    if (vlen > kMaxValueBytes) {
      mode_ = Mode::kDiscardValue;
      value_need_ = static_cast<std::size_t>(vlen);
      deferred_error_ = "value too long";
      return false;
    }
    pending_ = Request{};
    pending_.op = Op::kSet;
    pending_.key.assign(tok[1].data(), tok[1].size());
    pending_.value.reserve(static_cast<std::size_t>(vlen));
    mode_ = Mode::kValue;
    value_need_ = static_cast<std::size_t>(vlen);
    return false;
  }
  if (verb == "RANGE") {
    if (ntok != 3 && ntok != 4) {
      return err("expected: RANGE <lo> <hi> [<limit>]");
    }
    if (tok[1].size() > kMaxKeyBytes || tok[2].size() > kMaxKeyBytes) {
      return err("key too long");
    }
    long limit = -1;
    if (ntok == 4) {
      std::uint64_t l = 0;
      if (!parse_u64(tok[3], &l) ||
          l > static_cast<std::uint64_t>(kMaxRangeResults)) {
        return err("bad limit");
      }
      limit = static_cast<long>(l);
    }
    *out = Request{};
    out->op = Op::kRange;
    out->key.assign(tok[1].data(), tok[1].size());
    out->hi.assign(tok[2].data(), tok[2].size());
    out->limit = limit;
    return true;
  }
  if (verb == "STATS" || verb == "PING" || verb == "QUIT") {
    if (ntok != 1) return err("unexpected arguments");
    *out = Request{};
    out->op = verb == "STATS" ? Op::kStats
              : verb == "PING" ? Op::kPing
                               : Op::kQuit;
    return true;
  }
  return err("unknown command");
}

bool FrameParser::next(Request* out) {
  for (;;) {
    switch (mode_) {
      case Mode::kLine: {
        const std::size_t nl = buf_.find('\n', pos_);
        if (nl == std::string::npos) {
          if (buf_.size() - pos_ > kMaxLineBytes) {
            // No newline in a whole line's worth of bytes: discard until
            // one shows up, then report once.
            mode_ = Mode::kDiscardLine;
            deferred_error_ = "line too long";
            continue;
          }
          compact();
          return false;
        }
        std::string_view line(buf_.data() + pos_, nl - pos_);
        if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
        pos_ = nl + 1;
        if (line.size() > kMaxLineBytes) {
          *out = Request{};
          out->error = "line too long";
          return true;
        }
        if (parse_line(line, out)) return true;
        continue;  // blank line, or a SET/discard that changed mode
      }
      case Mode::kValue: {
        if (buf_.size() - pos_ < value_need_) {
          compact();
          return false;
        }
        pending_.value.assign(buf_, pos_, value_need_);
        pos_ += value_need_;
        value_need_ = 0;
        mode_ = Mode::kValueNl;
        continue;
      }
      case Mode::kValueNl: {
        if (pos_ >= buf_.size()) {
          compact();
          return false;
        }
        const char c = buf_[pos_];
        if (c == '\n') {
          pos_ += 1;
        } else if (c == '\r') {
          if (buf_.size() - pos_ < 2) {
            compact();
            return false;
          }
          if (buf_[pos_ + 1] != '\n') {
            mode_ = Mode::kDiscardLine;
            deferred_error_ = "value not newline-terminated";
            continue;
          }
          pos_ += 2;
        } else {
          mode_ = Mode::kDiscardLine;
          deferred_error_ = "value not newline-terminated";
          continue;
        }
        mode_ = Mode::kLine;
        *out = std::move(pending_);
        pending_ = Request{};
        return true;
      }
      case Mode::kDiscardValue: {
        const std::size_t drop = std::min(buf_.size() - pos_, value_need_);
        pos_ += drop;
        value_need_ -= drop;
        if (value_need_ > 0) {
          compact();
          return false;
        }
        mode_ = Mode::kDiscardLine;  // eat the payload's trailing newline
        continue;
      }
      case Mode::kDiscardLine: {
        const std::size_t nl = buf_.find('\n', pos_);
        if (nl == std::string::npos) {
          pos_ = buf_.size();
          compact();
          return false;
        }
        pos_ = nl + 1;
        mode_ = Mode::kLine;
        *out = Request{};
        out->error = std::move(deferred_error_);
        deferred_error_.clear();
        return true;
      }
    }
  }
}

// ---- reply encoding ----

void encode_ok(std::string* out) { out->append("+OK\r\n"); }
void encode_pong(std::string* out) { out->append("+PONG\r\n"); }

void encode_error(std::string* out, std::string_view msg) {
  out->append("-ERR ");
  out->append(msg.data(), msg.size());
  out->append("\r\n");
}

void encode_int(std::string* out, long v) {
  out->push_back(':');
  out->append(std::to_string(v));
  out->append("\r\n");
}

void encode_bulk(std::string* out, std::string_view v) {
  out->push_back('$');
  out->append(std::to_string(v.size()));
  out->append("\r\n");
  out->append(v.data(), v.size());
  out->append("\r\n");
}

void encode_nil(std::string* out) { out->append("$-1\r\n"); }

void encode_array_header(std::string* out, std::size_t items) {
  out->push_back('*');
  out->append(std::to_string(items));
  out->append("\r\n");
}

// ---- request encoding ----

void encode_get(std::string* out, std::string_view key) {
  out->append("GET ");
  out->append(key.data(), key.size());
  out->push_back('\n');
}

void encode_set(std::string* out, std::string_view key, std::string_view value) {
  out->append("SET ");
  out->append(key.data(), key.size());
  out->push_back(' ');
  out->append(std::to_string(value.size()));
  out->push_back('\n');
  out->append(value.data(), value.size());
  out->push_back('\n');
}

void encode_del(std::string* out, std::string_view key) {
  out->append("DEL ");
  out->append(key.data(), key.size());
  out->push_back('\n');
}

void encode_range(std::string* out, std::string_view lo, std::string_view hi,
                  long limit) {
  out->append("RANGE ");
  out->append(lo.data(), lo.size());
  out->push_back(' ');
  out->append(hi.data(), hi.size());
  if (limit >= 0) {
    out->push_back(' ');
    out->append(std::to_string(limit));
  }
  out->push_back('\n');
}

void encode_stats(std::string* out) { out->append("STATS\n"); }
void encode_ping(std::string* out) { out->append("PING\n"); }
void encode_quit(std::string* out) { out->append("QUIT\n"); }

// ---- ReplyParser ----

void ReplyParser::feed(const void* data, std::size_t n) {
  buf_.append(static_cast<const char*>(data), n);
}

void ReplyParser::compact() {
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
}

bool ReplyParser::take_line(std::string_view* line) {
  const std::size_t nl = buf_.find('\n', pos_);
  if (nl == std::string::npos) {
    compact();
    return false;
  }
  *line = std::string_view(buf_.data() + pos_, nl - pos_);
  if (!line->empty() && line->back() == '\r') line->remove_suffix(1);
  pos_ = nl + 1;
  return true;
}

bool ReplyParser::next(Reply* out) {
  for (;;) {
    switch (mode_) {
      case Mode::kLine: {
        std::string_view line;
        if (!take_line(&line)) return false;
        if (line.empty()) continue;
        const char tag = line.front();
        const std::string_view body = line.substr(1);
        if (tag == '$') {
          if (body == "-1") {
            if (in_array_) continue;  // nil never appears inside RANGE arrays
            *out = Reply{};
            out->kind = Reply::Kind::kNil;
            return true;
          }
          std::uint64_t n = 0;
          if (!parse_u64(body, &n)) continue;  // malformed header: skip
          bulk_need_ = static_cast<std::size_t>(n);
          mode_ = Mode::kBulkBody;
          continue;
        }
        if (tag == '*') {
          std::uint64_t n = 0;
          if (!parse_u64(body, &n)) continue;
          pending_ = Reply{};
          pending_.kind = Reply::Kind::kArray;
          if (n == 0) {
            *out = std::move(pending_);
            pending_ = Reply{};
            return true;
          }
          in_array_ = true;
          array_left_ = static_cast<long>(n);
          continue;
        }
        *out = Reply{};
        if (tag == '+') {
          out->kind = Reply::Kind::kSimple;
          out->text.assign(body.data(), body.size());
        } else if (tag == '-') {
          out->kind = Reply::Kind::kError;
          // Strip the conventional "ERR " prefix for callers.
          std::string_view msg = body;
          if (msg.substr(0, 4) == "ERR ") msg.remove_prefix(4);
          out->text.assign(msg.data(), msg.size());
        } else if (tag == ':') {
          out->kind = Reply::Kind::kInt;
          out->ival = std::strtol(std::string(body).c_str(), nullptr, 10);
        } else {
          continue;  // unknown frame tag: skip the line
        }
        return true;
      }
      case Mode::kBulkBody: {
        const std::size_t have = buf_.size() - pos_;
        if (have < bulk_need_ + 1) {
          compact();
          return false;
        }
        std::size_t term = 1;
        if (buf_[pos_ + bulk_need_] == '\r') {
          if (have < bulk_need_ + 2) {
            compact();
            return false;
          }
          term = 2;
        }
        std::string body(buf_, pos_, bulk_need_);
        pos_ += bulk_need_ + term;
        mode_ = Mode::kLine;
        if (in_array_) {
          pending_.items.push_back(std::move(body));
          if (--array_left_ == 0) {
            in_array_ = false;
            *out = std::move(pending_);
            pending_ = Reply{};
            return true;
          }
          continue;
        }
        *out = Reply{};
        out->kind = Reply::Kind::kBulk;
        out->text = std::move(body);
        return true;
      }
    }
  }
}

}  // namespace mp::kv
