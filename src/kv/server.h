#pragma once

#include <cstddef>

#include "io/stream.h"
#include "kv/service.h"

// The per-connection serving layer: glue between an mp::io byte stream and
// the sharded KvService.  Each connection gets two MLthreads —
//
//  - the reader (the thread that calls serve) pulls bytes, runs the
//    incremental FrameParser, stamps each request with a per-connection
//    sequence number, and hands it to its owning shard via KvService::submit
//    (a rendezvous send — the only backpressure in the system);
//  - the writer receives finished requests on the connection's reply
//    mailbox (an asynchronous buffered channel: shards post replies without
//    ever parking on a slow connection), reorders them back into submission
//    order (pipelined requests fan out across shards and complete in any
//    order), and flushes each contiguous run with one coalesced write_all.
//
// Protocol errors, PING, and STATS never reach a shard: the reader answers
// them itself, but still routes the encoded reply through the reply mailbox
// under the same sequence numbering, so pipelined replies stay in request
// order no matter what produced them.
//
// A stream error on the read side (ECONNRESET from a peer that closed with
// unread pipelined replies, say) is treated exactly like a disconnect: the
// connection drains its in-flight requests and serve() returns normally
// rather than letting the exception unwind past live channels.

namespace mp::kv {

struct ServeOptions {
  std::size_t read_chunk = 4096;  // reader's read_some granularity
};

// Serve one connection until the peer disconnects or sends QUIT.  Blocks the
// calling MLthread (it becomes the reader); the writer thread is forked and
// joined internally.  Streams are closed on return.
void serve(KvService& svc, io::Stream in, io::Stream out,
           ServeOptions opts = {});

inline void serve(KvService& svc, io::Duplex conn, ServeOptions opts = {}) {
  serve(svc, conn.in, conn.out, opts);
}

}  // namespace mp::kv
