#include "kv/client.h"

#include "arch/panic.h"

namespace mp::kv {

void KvClient::flush() {
  if (outbuf_.empty()) return;
  out_.write_all(outbuf_.data(), outbuf_.size());
  outbuf_.clear();
}

Reply KvClient::recv_reply() {
  Reply rep;
  char chunk[4096];
  while (!parser_.next(&rep)) {
    const std::size_t n = in_.read_some(chunk, sizeof(chunk));
    MPNJ_CHECK(n > 0, "kv server closed mid-reply");
    parser_.feed(chunk, n);
  }
  return rep;
}

bool KvClient::set(std::string_view key, std::string_view value) {
  queue_set(key, value);
  flush();
  const Reply rep = recv_reply();
  return rep.kind == Reply::Kind::kSimple && rep.text == "OK";
}

bool KvClient::get(std::string_view key, std::string* value) {
  queue_get(key);
  flush();
  Reply rep = recv_reply();
  if (rep.kind != Reply::Kind::kBulk) return false;
  if (value != nullptr) *value = std::move(rep.text);
  return true;
}

long KvClient::del(std::string_view key) {
  queue_del(key);
  flush();
  const Reply rep = recv_reply();
  return rep.kind == Reply::Kind::kInt ? rep.ival : 0;
}

std::vector<std::pair<std::string, std::string>> KvClient::range(
    std::string_view lo, std::string_view hi, long limit) {
  queue_range(lo, hi, limit);
  flush();
  Reply rep = recv_reply();
  std::vector<std::pair<std::string, std::string>> out;
  if (rep.kind != Reply::Kind::kArray) return out;
  // RANGE arrays are flat k,v pairs; an odd tail would be a server bug.
  MPNJ_CHECK((rep.items.size() & 1) == 0, "odd RANGE array from server");
  out.reserve(rep.items.size() / 2);
  for (std::size_t i = 0; i + 1 < rep.items.size(); i += 2) {
    out.emplace_back(std::move(rep.items[i]), std::move(rep.items[i + 1]));
  }
  return out;
}

std::string KvClient::stats() {
  encode_stats(&outbuf_);
  flush();
  Reply rep = recv_reply();
  return rep.kind == Reply::Kind::kBulk ? std::move(rep.text) : std::string();
}

bool KvClient::ping() {
  encode_ping(&outbuf_);
  flush();
  const Reply rep = recv_reply();
  return rep.kind == Reply::Kind::kSimple && rep.text == "PONG";
}

void KvClient::quit() {
  encode_quit(&outbuf_);
  flush();
  recv_reply();  // +OK
  close();
}

}  // namespace mp::kv
