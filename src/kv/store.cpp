#include "kv/store.h"

#include <new>

namespace mp::kv {

namespace {

// FNV-1a with a salted basis: the per-store seed keeps the bucket mapping
// unpredictable, so crafted key sets can't all land in one chain and turn
// point ops into O(n) scans (rehash grows by total size, never by chain
// length, so it would not rescue a seeded collision attack).
std::uint64_t fnv1a(std::uint64_t seed, std::string_view s) {
  std::uint64_t h = 1469598103934665603ull ^ seed;
  for (const char c : s) {
    h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
  }
  return h;
}

// splitmix64, so even adjacent raw seeds salt the basis with well-mixed
// bits (the routing layer hands ShardStore already-mixed seeds, but the
// store shouldn't rely on that).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

// One entry, shared by the hash chain and the skiplist.  The tower is a
// flexible tail sized by `height` at allocation time, so a node costs one
// allocation regardless of its level.
struct ShardStore::Node {
  std::string key;
  std::string val;
  Node* hnext = nullptr;  // hash-bucket chain
  int height = 1;
  Node* next[1];  // skiplist tower; really next[height]

  static Node* make(std::string_view k, std::string_view v, int height) {
    void* mem = ::operator new(sizeof(Node) +
                               sizeof(Node*) * static_cast<std::size_t>(height - 1));
    Node* n = new (mem) Node;
    n->key.assign(k.data(), k.size());
    n->val.assign(v.data(), v.size());
    n->height = height;
    for (int i = 0; i < height; i++) n->next[i] = nullptr;
    return n;
  }
  static void destroy(Node* n) {
    n->~Node();
    ::operator delete(n);
  }
};

ShardStore::ShardStore(std::uint64_t seed)
    : buckets_(64, nullptr), rng_(seed | 1), hash_seed_(mix64(seed)) {}

ShardStore::~ShardStore() {
  Node* n = heads_[0];
  while (n != nullptr) {
    Node* next = n->next[0];
    Node::destroy(n);
    n = next;
  }
}

int ShardStore::random_height() {
  // xorshift64; each extra level with probability 1/4 (classic skiplist
  // geometry: ~1.33 pointers per node).
  rng_ ^= rng_ << 13;
  rng_ ^= rng_ >> 7;
  rng_ ^= rng_ << 17;
  int h = 1;
  std::uint64_t bits = rng_;
  while ((bits & 3) == 0 && h < kMaxHeight) {
    h++;
    bits >>= 2;
  }
  return h;
}

ShardStore::Node* ShardStore::find(std::string_view key) const {
  const std::size_t b = fnv1a(hash_seed_, key) & (buckets_.size() - 1);
  for (Node* n = buckets_[b]; n != nullptr; n = n->hnext) {
    if (n->key == key) return n;
  }
  return nullptr;
}

void ShardStore::rehash() {
  std::vector<Node*> bigger(buckets_.size() * 2, nullptr);
  // Walk the bottom skiplist level: every node, in order, exactly once.
  for (Node* n = heads_[0]; n != nullptr; n = n->next[0]) {
    const std::size_t b = fnv1a(hash_seed_, n->key) & (bigger.size() - 1);
    n->hnext = bigger[b];
    bigger[b] = n;
  }
  buckets_.swap(bigger);
}

bool ShardStore::set(std::string_view key, std::string_view value) {
  if (Node* n = find(key)) {
    bytes_ += value.size();
    bytes_ -= n->val.size();
    n->val.assign(value.data(), value.size());
    return false;
  }
  // Splice a fresh node into the skiplist: the standard descent, resuming
  // each level's scan from where the level above stopped.
  Node* update[kMaxHeight];
  Node* prev = nullptr;
  for (int lvl = height_ - 1; lvl >= 0; lvl--) {
    Node* cur = prev == nullptr ? heads_[lvl] : prev->next[lvl];
    while (cur != nullptr && cur->key < key) {
      prev = cur;
      cur = cur->next[lvl];
    }
    update[lvl] = prev;
  }
  const int h = random_height();
  Node* n = Node::make(key, value, h);
  if (h > height_) {
    for (int lvl = height_; lvl < h; lvl++) update[lvl] = nullptr;
    height_ = h;
  }
  for (int lvl = 0; lvl < h; lvl++) {
    Node** link = update[lvl] == nullptr ? &heads_[lvl] : &update[lvl]->next[lvl];
    n->next[lvl] = *link;
    *link = n;
  }
  const std::size_t b = fnv1a(hash_seed_, key) & (buckets_.size() - 1);
  n->hnext = buckets_[b];
  buckets_[b] = n;
  size_++;
  bytes_ += key.size() + value.size();
  if (size_ > buckets_.size()) rehash();
  return true;
}

const std::string* ShardStore::get(std::string_view key) const {
  const Node* n = find(key);
  return n == nullptr ? nullptr : &n->val;
}

bool ShardStore::del(std::string_view key) {
  // Unlink from the hash chain first (also the existence check).
  const std::size_t b = fnv1a(hash_seed_, key) & (buckets_.size() - 1);
  Node** hlink = &buckets_[b];
  Node* n = nullptr;
  while (*hlink != nullptr) {
    if ((*hlink)->key == key) {
      n = *hlink;
      *hlink = n->hnext;
      break;
    }
    hlink = &(*hlink)->hnext;
  }
  if (n == nullptr) return false;
  // Unlink every tower level (same descent as set's splice scan).
  Node* update[kMaxHeight];
  Node* prev = nullptr;
  for (int lvl = height_ - 1; lvl >= 0; lvl--) {
    Node* cur = prev == nullptr ? heads_[lvl] : prev->next[lvl];
    while (cur != nullptr && cur->key < key) {
      prev = cur;
      cur = cur->next[lvl];
    }
    update[lvl] = prev;
  }
  for (int lvl = 0; lvl < n->height; lvl++) {
    Node** link = update[lvl] == nullptr ? &heads_[lvl] : &update[lvl]->next[lvl];
    if (*link == n) *link = n->next[lvl];
  }
  while (height_ > 1 && heads_[height_ - 1] == nullptr) height_--;
  size_--;
  bytes_ -= n->key.size() + n->val.size();
  Node::destroy(n);
  return true;
}

void ShardStore::range(std::string_view lo, std::string_view hi, long limit,
                       const std::function<bool(std::string_view,
                                                std::string_view)>& fn) const {
  if (limit == 0) return;
  // Descend to the first node with key >= lo.
  Node* prev = nullptr;
  for (int lvl = height_ - 1; lvl >= 0; lvl--) {
    Node* cur = prev == nullptr ? heads_[lvl] : prev->next[lvl];
    while (cur != nullptr && cur->key < lo) {
      prev = cur;
      cur = cur->next[lvl];
    }
  }
  Node* n = prev == nullptr ? heads_[0] : prev->next[0];
  long emitted = 0;
  while (n != nullptr && n->key <= hi) {
    if (!fn(n->key, n->val)) return;
    if (limit > 0 && ++emitted >= limit) return;
    n = n->next[0];
  }
}

}  // namespace mp::kv
