#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "io/stream.h"
#include "kv/proto.h"

// Client-side convenience wrapper: one KvClient per connection, owned by one
// MLthread.  Two usage styles over the same ReplyParser:
//
//  - synchronous: set()/get()/del()/range()/stats()/ping() encode, flush,
//    and block (the thread, never the proc) for the reply;
//  - pipelined: queue_*() appends encoded requests to an outgoing buffer,
//    flush() pushes the whole batch in one write, recv_reply() drains the
//    replies in request order.  This is how the load generators keep a
//    window of requests in flight per connection.

namespace mp::kv {

class KvClient {
 public:
  KvClient(io::Stream in, io::Stream out)
      : in_(std::move(in)), out_(std::move(out)) {}
  explicit KvClient(io::Duplex conn)
      : KvClient(std::move(conn.in), std::move(conn.out)) {}

  // ---- synchronous ops ----
  bool set(std::string_view key, std::string_view value);  // true on +OK
  bool get(std::string_view key, std::string* value);      // true on hit
  long del(std::string_view key);                          // keys removed
  std::vector<std::pair<std::string, std::string>> range(
      std::string_view lo, std::string_view hi, long limit = -1);
  std::string stats();  // raw STATS body ("keys=... bytes=... ...")
  bool ping();
  void quit();  // QUIT, await +OK, close both streams

  // ---- pipelining ----
  void queue_get(std::string_view key) { encode_get(&outbuf_, key); }
  void queue_set(std::string_view key, std::string_view value) {
    encode_set(&outbuf_, key, value);
  }
  void queue_del(std::string_view key) { encode_del(&outbuf_, key); }
  void queue_range(std::string_view lo, std::string_view hi, long limit = -1) {
    encode_range(&outbuf_, lo, hi, limit);
  }
  void queue_raw(std::string_view bytes) { outbuf_ += bytes; }
  void flush();
  // Next reply in request order; blocks until one arrives.
  Reply recv_reply();

  void close() {
    in_.close();
    out_.close();
  }

 private:
  io::Stream in_;
  io::Stream out_;
  std::string outbuf_;
  ReplyParser parser_;
};

}  // namespace mp::kv
