#include "kv/server.h"

#include <algorithm>
#include <exception>
#include <iterator>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "arch/panic.h"
#include "arch/sysio.h"
#include "cml/mailbox.h"
#include "metrics/metrics.h"

namespace mp::kv {

namespace {

#if MPNJ_METRICS
bool req_histo(Op op, metrics::Histo* out) {
  switch (op) {
    case Op::kGet:   *out = metrics::Histo::kKvReqUsGet; return true;
    case Op::kSet:   *out = metrics::Histo::kKvReqUsSet; return true;
    case Op::kDel:   *out = metrics::Histo::kKvReqUsDel; return true;
    case Op::kRange: *out = metrics::Histo::kKvReqUsRange; return true;
    default:         return false;
  }
}
#endif

// The writer half: receive finished requests, restore submission order, and
// flush each contiguous run as one coalesced write.  Returns once the fin
// sentinel's sequence number has been reached and everything before it is on
// the wire.
void writer_loop(KvService& svc, cml::Mailbox<std::uint64_t>& replies,
                 io::Stream& out) {
  (void)svc;  // only read for the latency metric below
  std::map<std::uint64_t, KvReq*> pending;  // completed, awaiting their turn
  std::uint64_t next_seq = 0;
  std::uint64_t fin_seq = 0;
  bool fin_seen = false;
  bool peer_gone = false;
  std::string batch;
  for (;;) {
    if (fin_seen && next_seq >= fin_seq) break;
    auto* r = reinterpret_cast<KvReq*>(replies.recv());
    if (r->fin) {
      // fin carries the total number of sequenced requests; nothing with
      // seq >= fin_seq will ever arrive.
      fin_seq = r->seq;
      fin_seen = true;
      delete r;
      continue;
    }
    pending.emplace(r->seq, r);
    // Flush the contiguous run starting at next_seq (reorder buffer drain):
    // out-of-order completions that piled up behind a gap go out in one
    // write_all once the gap fills.
    batch.clear();
    while (true) {
      auto it = pending.find(next_seq);
      if (it == pending.end()) break;
      KvReq* done = it->second;
      pending.erase(it);
#if MPNJ_METRICS
      metrics::Histo h;
      if (done->submit_us > 0 && metrics::registry().enabled() &&
          req_histo(done->req.op, &h)) {
        const double us =
            svc.scheduler().platform().now_us() - done->submit_us;
        metrics::record_value(h, us > 0 ? static_cast<std::uint64_t>(us) : 0);
      }
#endif
      batch += done->out;
      delete done;
      next_seq++;
    }
    if (!batch.empty() && !peer_gone) {
      try {
        out.write_all(batch.data(), batch.size());
      } catch (...) {
        // The peer hung up with replies in flight; keep draining the
        // mailbox (shards may still post into it, and every KvReq must be
        // freed and counted toward fin_seq) but stop writing.
        peer_gone = true;
      }
    }
  }
  for (auto& [seq, r] : pending) delete r;  // unreachable unless fin lied
}

}  // namespace

void serve(KvService& svc, io::Stream in, io::Stream out, ServeOptions opts) {
  MPNJ_METRIC_COUNT(kKvConns, 1);
  threads::Scheduler& sched = svc.scheduler();
  cml::Mailbox<std::uint64_t> replies(sched);
  threads::CountdownLatch writer_done(sched, 1);
  sched.fork(
      [&] {
        writer_loop(svc, replies, out);
        writer_done.count_down();
      },
      threads::Scheduler::SpawnOpts{}
          .with_stack(cont::StackClass::kSmall)
          .with_name("kv-writer"));

  // Private mailbox for multi-shard fan-outs (RANGE probes): replies to
  // scatter probes come back here, never through the writer.
  cml::Mailbox<std::uint64_t> gather(sched);

  // Reader-side direct answer: skip the shards but keep the sequence slot,
  // so pipelined replies stay in request order.
  std::uint64_t next_seq = 0;
  auto answer = [&](const Request& req, std::string reply_bytes) {
    auto* r = new KvReq;
    r->req = req;
    r->out = std::move(reply_bytes);
    r->seq = next_seq;
    r->reply = &replies;
    try {
      replies.send(reinterpret_cast<std::uint64_t>(r));
    } catch (...) {
      delete r;
      throw;
    }
    // Only after the enqueue: a seq allocated but never delivered would be
    // a permanent gap in the writer's reorder window, and the fin handshake
    // would never complete.
    next_seq++;
  };

  // The shutdown handshake, which must run on EVERY exit path: the fin
  // sentinel tells the writer no request will ever carry seq >= next_seq,
  // and the await guarantees the writer has retired every outstanding KvReq
  // before the stack-allocated mailboxes and latch above are destroyed.
  // Skipping it (e.g. by unwinding on a socket error) would free channels
  // that the writer thread and in-flight shard replies still reference.
  auto finish = [&] {
    auto* fin = new KvReq;
    fin->fin = true;
    fin->seq = next_seq;
    replies.send(reinterpret_cast<std::uint64_t>(fin));
    writer_done.await();
    in.close();
    out.close();
  };

  FrameParser parser;
  std::vector<char> chunk(opts.read_chunk > 0 ? opts.read_chunk : 4096);
  Request req;
  bool quitting = false;
  try {
  while (!quitting) {
    std::size_t n = 0;
    try {
      n = in.read_some(chunk.data(), chunk.size());
    } catch (const arch::SysError&) {
      // Socket-level failure — e.g. ECONNRESET when the peer closed with
      // unread pipelined replies (a TCP RST, not the clean EOF a pipe
      // gives).  Treat it exactly like a disconnect.
      break;
    }
    if (n == 0) break;  // peer disconnected
    parser.feed(chunk.data(), n);
    while (parser.next(&req)) {
      if (!req.ok()) {
        MPNJ_METRIC_COUNT(kKvProtoErrors, 1);
        std::string e;
        encode_error(&e, req.error);
        answer(req, std::move(e));
        continue;
      }
      switch (req.op) {
        case Op::kPing: {
          std::string e;
          encode_pong(&e);
          answer(req, std::move(e));
          break;
        }
        case Op::kQuit: {
          std::string e;
          encode_ok(&e);
          answer(req, std::move(e));
          quitting = true;
          break;
        }
        case Op::kRange: {
          MPNJ_METRIC_COUNT(kKvRanges, 1);
#if MPNJ_METRICS
          const double start_us = sched.platform().now_us();
#endif
          // Scatter: rendezvous hashing spreads adjacent keys across
          // shards, so every shard owns a slice of [lo, hi].  Probe them
          // all, then merge the sorted slices and apply the limit.  The
          // no-limit default (-1) is clamped to the same ceiling the parser
          // enforces on explicit limits, so one RANGE over a large store
          // cannot materialize unbounded payload copies (per-shard slices,
          // the merged vector, and the encoded reply).
          const long limit =
              req.limit < 0 ? kMaxRangeResults
                            : std::min(req.limit, kMaxRangeResults);
          const int n_shards = svc.shards();
          std::vector<KvReq> probes(static_cast<std::size_t>(n_shards));
          for (int s = 0; s < n_shards; s++) {
            probes[static_cast<std::size_t>(s)].req = req;
            probes[static_cast<std::size_t>(s)].req.limit = limit;
            probes[static_cast<std::size_t>(s)].reply = &gather;
            svc.submit_to(s, &probes[static_cast<std::size_t>(s)]);
          }
          std::vector<std::pair<std::string, std::string>> merged;
          // Gather ALL probes before anything can unwind: shards hold
          // pointers into the stack-allocated `probes` until each posts
          // back, so a merge failure must not abandon outstanding probes.
          std::exception_ptr merge_err;
          for (int s = 0; s < n_shards; s++) {
            auto* p = reinterpret_cast<KvReq*>(gather.recv());
            if (merge_err) continue;
            try {
              merged.insert(merged.end(),
                            std::make_move_iterator(p->range_out.begin()),
                            std::make_move_iterator(p->range_out.end()));
            } catch (...) {
              merge_err = std::current_exception();
            }
          }
          if (merge_err) std::rethrow_exception(merge_err);
          std::sort(merged.begin(), merged.end());
          if (merged.size() > static_cast<std::size_t>(limit)) {
            merged.resize(static_cast<std::size_t>(limit));
          }
          std::string e;
          encode_array_header(&e, merged.size() * 2);
          for (const auto& [k, v] : merged) {
            encode_bulk(&e, k);
            encode_bulk(&e, v);
          }
#if MPNJ_METRICS
          if (metrics::registry().enabled()) {
            const double us = sched.platform().now_us() - start_us;
            metrics::record_value(metrics::Histo::kKvReqUsRange,
                                  us > 0 ? static_cast<std::uint64_t>(us) : 0);
          }
#endif
          answer(req, std::move(e));
          break;
        }
        case Op::kStats: {
          // Fan the probe out from the reader; shards only ever see
          // single-shard requests.
          const ShardStats st = svc.stats();
          std::string body = "keys=" + std::to_string(st.keys) +
                             " bytes=" + std::to_string(st.bytes) +
                             " ops=" + std::to_string(st.ops) +
                             " shards=" + std::to_string(st.shards);
          std::string e;
          encode_bulk(&e, body);
          answer(req, std::move(e));
          break;
        }
        default: {
          auto* r = new KvReq;
          r->req = std::move(req);
          r->seq = next_seq;
          r->reply = &replies;
          svc.submit(r);  // rendezvous: parks until the shard accepts
          next_seq++;     // seq advances only once the shard owns the req
          req = Request{};
          break;
        }
      }
      if (quitting) break;
    }
  }
  } catch (...) {
    // Unexpected failure mid-connection: run the shutdown handshake before
    // unwinding (see `finish`), then let the error propagate.
    finish();
    throw;
  }

  finish();
}

}  // namespace mp::kv
