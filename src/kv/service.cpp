#include "kv/service.h"

#include "arch/panic.h"
#include "metrics/metrics.h"

namespace mp::kv {

namespace {

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
  }
  return h;
}

// splitmix64: turns sequential seeds into well-mixed salts.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

#if MPNJ_METRICS
metrics::Histo queue_histo(Op op) {
  switch (op) {
    case Op::kGet:   return metrics::Histo::kKvQueueUsGet;
    case Op::kSet:   return metrics::Histo::kKvQueueUsSet;
    case Op::kDel:   return metrics::Histo::kKvQueueUsDel;
    default:         return metrics::Histo::kKvQueueUsRange;
  }
}
#endif

}  // namespace

KvService::KvService(threads::Scheduler& sched, KvConfig cfg)
    : sched_(sched), cfg_(cfg) {
  int n = cfg_.shards;
  if (n <= 0) n = sched_.platform().max_procs();
  MPNJ_CHECK(n > 0, "kv service needs at least one shard");
  shards_.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; i++) {
    Shard& sh = shards_[static_cast<std::size_t>(i)];
    sh.ch = std::make_unique<cml::Channel<std::uint64_t>>(sched_);
    sh.store = std::make_unique<ShardStore>(
        mix64(cfg_.seed ^ (0xa076'1d64'78bd'642full +
                           static_cast<std::uint64_t>(i))));
    sh.salt = mix64(cfg_.seed + 0x517cc1b727220a95ull +
                    static_cast<std::uint64_t>(i));
  }
}

KvService::~KvService() {
  MPNJ_CHECK(!started_, "kv service destroyed while running (call stop())");
}

void KvService::start() {
  MPNJ_CHECK(!started_, "kv service already started");
  started_ = true;
  joined_ = std::make_unique<threads::CountdownLatch>(
      sched_, static_cast<int>(shards_.size()));
  for (int i = 0; i < static_cast<int>(shards_.size()); i++) {
    sched_.fork(
        [this, i] {
          shard_loop(i);
          joined_->count_down();
        },
        threads::Scheduler::SpawnOpts{}.with_name("kv-shard"));
  }
}

void KvService::stop() {
  MPNJ_CHECK(started_, "kv service not running");
  // A quit request with no reply channel is the shard loop's stop token.
  for (Shard& sh : shards_) {
    auto* r = new KvReq;
    r->req.op = Op::kQuit;
    r->reply = nullptr;
    sh.ch->send(reinterpret_cast<std::uint64_t>(r));
  }
  joined_->await();
  joined_.reset();
  started_ = false;
}

int KvService::shard_of(std::string_view key) const {
  // Rendezvous hashing: every shard scores the key with its salt; the
  // highest score owns it.  O(shards) per key, but shards ~ procs.
  const std::uint64_t h = fnv1a(key);
  std::uint64_t best = 0;
  int owner = 0;
  for (int i = 0; i < static_cast<int>(shards_.size()); i++) {
    const std::uint64_t score =
        mix64(h ^ shards_[static_cast<std::size_t>(i)].salt);
    if (i == 0 || score > best) {
      best = score;
      owner = i;
    }
  }
  return owner;
}

void KvService::submit(KvReq* r) {
  MPNJ_CHECK(r->req.op == Op::kGet || r->req.op == Op::kSet ||
                 r->req.op == Op::kDel,
             "submit is for point ops; RANGE/STATS fan out via submit_to");
  submit_to(shard_of(r->req.key), r);
}

void KvService::submit_to(int shard, KvReq* r) {
  MPNJ_CHECK(started_, "submit to a stopped kv service");
  MPNJ_CHECK(shard >= 0 && shard < shards(), "kv shard index out of range");
#if MPNJ_METRICS
  r->submit_us = sched_.platform().now_us();
#endif
  shards_[static_cast<std::size_t>(shard)].ch->send(
      reinterpret_cast<std::uint64_t>(r));
}

ShardStats KvService::stats() {
  MPNJ_CHECK(started_, "stats on a stopped kv service");
  ShardStats total;
  total.shards = shards();
  // One probe per shard through the same channel as every other request, so
  // the counts are exact as of each shard's dequeue (no cross-thread reads
  // of owner-only state).
  cml::Mailbox<std::uint64_t> back(sched_);
  for (Shard& sh : shards_) {
    KvReq probe;
    probe.req.op = Op::kStats;
    probe.reply = &back;
    submit_to(static_cast<int>(&sh - shards_.data()), &probe);
    auto* done = reinterpret_cast<KvReq*>(back.recv());
    MPNJ_CHECK(done == &probe, "stats probe came back out of order");
    total.keys += probe.stat_keys;
    total.bytes += probe.stat_bytes;
    total.ops += probe.stat_ops;
  }
  return total;
}

void KvService::shard_loop(int idx) {
  Shard& sh = shards_[static_cast<std::size_t>(idx)];
  sh.owner_tid = sched_.id();
  for (;;) {
    auto* r = reinterpret_cast<KvReq*>(sh.ch->recv());
    if (r->req.op == Op::kQuit && r->reply == nullptr) {
      delete r;
      return;
    }
#if MPNJ_METRICS
    if (metrics::registry().enabled()) {
      const double waited = sched_.platform().now_us() - r->submit_us;
      metrics::record_value(
          queue_histo(r->req.op),
          waited > 0 ? static_cast<std::uint64_t>(waited) : 0);
    }
#endif
    apply(sh, r);
    // Asynchronous delivery: the mailbox enqueue never parks, so a stalled
    // connection writer (peer stopped reading, write_all parked on a full
    // socket buffer) cannot head-of-line block this shard for every other
    // connection it owes a reply to.
    r->reply->send(reinterpret_cast<std::uint64_t>(r));
  }
}

void KvService::apply(Shard& sh, KvReq* r) {
  // The single-owner discipline that makes the store lock-free: only the
  // shard's owner thread ever reaches this point.
  MPNJ_CHECK(sched_.id() == sh.owner_tid,
             "kv shard touched off its owner thread");
  sh.ops++;
  ShardStore& store = *sh.store;
  switch (r->req.op) {
    case Op::kGet: {
      MPNJ_METRIC_COUNT(kKvGets, 1);
      if (const std::string* v = store.get(r->req.key)) {
        MPNJ_METRIC_COUNT(kKvHits, 1);
        encode_bulk(&r->out, *v);
      } else {
        MPNJ_METRIC_COUNT(kKvMisses, 1);
        encode_nil(&r->out);
      }
      break;
    }
    case Op::kSet: {
      MPNJ_METRIC_COUNT(kKvSets, 1);
      store.set(r->req.key, r->req.value);
      encode_ok(&r->out);
      break;
    }
    case Op::kDel: {
      MPNJ_METRIC_COUNT(kKvDels, 1);
      encode_int(&r->out, store.del(r->req.key) ? 1 : 0);
      break;
    }
    case Op::kRange: {
      // One probe of a multi-shard scatter: return this shard's slice of
      // [lo, hi] (sorted, capped at the global limit — enough for the merge)
      // as structured pairs; the connection layer merges and encodes.
      r->range_out.clear();
      store.range(r->req.key, r->req.hi, r->req.limit,
                  [&](std::string_view k, std::string_view v) {
                    r->range_out.emplace_back(k, v);
                    return true;
                  });
      break;
    }
    case Op::kStats: {
      MPNJ_METRIC_COUNT(kKvStats, 1);
      r->stat_keys = store.size();
      r->stat_bytes = store.bytes();
      r->stat_ops = sh.ops;
      break;
    }
    case Op::kPing:
    case Op::kQuit:
      // Served at the connection layer; a shard never sees them.
      encode_error(&r->out, "internal: misrouted request");
      break;
  }
}

}  // namespace mp::kv
