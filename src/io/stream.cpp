#include "io/stream.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <vector>

#include "arch/panic.h"
#include "arch/sysio.h"
#include "metrics/metrics.h"
#include "threads/queue.h"

namespace mp::io {

namespace {

// Virtual-time charge per byte moved through a virtual pipe (native
// backends turn this into a no-op beyond the safe point; the simulator
// advances its clock, modelling copy bandwidth).
constexpr double kPipeInstrPerByte = 0.25;

// ----- virtual pipes -----

// Shared state of one pipe: a bounded byte ring plus parked readers,
// writers and one-shot readable callbacks.  All transitions happen under
// the platform lock; wakeups are collected inside and run after unlock
// (reschedule takes the scheduler's queue locks).
struct PipeCore {
  threads::Scheduler& sched;
  Platform& plat;
  MutexLock lock;
  std::vector<unsigned char> ring;
  std::size_t head = 0;   // index of the oldest byte
  std::size_t count = 0;  // bytes buffered
  bool rd_closed = false;
  bool wr_closed = false;
  std::deque<threads::ThreadState> readers;
  std::deque<threads::ThreadState> writers;
  std::vector<std::function<void()>> readable_cbs;

  PipeCore(threads::Scheduler& s, std::size_t capacity)
      : sched(s), plat(s.platform()), ring(capacity) {
    MPNJ_CHECK(capacity > 0, "pipe capacity must be positive");
    lock = plat.mutex_lock();
  }

  bool readable_locked() const { return count > 0 || wr_closed; }

  // Move every parked thread of `q` into `out` (caller reschedules after
  // unlocking).
  static void collect(std::deque<threads::ThreadState>& q,
                      std::vector<threads::ThreadState>& out) {
    while (!q.empty()) {
      out.push_back(std::move(q.front()));
      q.pop_front();
    }
  }

  void run_wakeups(std::vector<threads::ThreadState>& threads,
                   std::vector<std::function<void()>>& cbs) {
    for (auto& t : threads) sched.reschedule(std::move(t));
    for (auto& cb : cbs) cb();
    threads.clear();
    cbs.clear();
  }
};

class PipeEnd final : public StreamImpl {
 public:
  PipeEnd(std::shared_ptr<PipeCore> core, bool readable_end)
      : core_(std::move(core)), readable_end_(readable_end) {}

  ~PipeEnd() override {
    // Handles are dropped on MLthreads; make an abandoned end behave like
    // a closed one so the peer never hangs.
    if (!closed_) close();
  }

  std::size_t read_some(void* buf, std::size_t n) override {
    MPNJ_CHECK(readable_end_, "read from the write end of a pipe");
    if (n == 0) return 0;
    PipeCore& c = *core_;
    std::vector<threads::ThreadState> wake;
    std::vector<std::function<void()>> cbs;
    c.plat.lock(c.lock);
    for (;;) {
      if (c.count > 0) {
        const std::size_t m = std::min(n, c.count);
        auto* out = static_cast<unsigned char*>(buf);
        for (std::size_t i = 0; i < m; i++) {
          out[i] = c.ring[(c.head + i) % c.ring.size()];
        }
        c.head = (c.head + m) % c.ring.size();
        c.count -= m;
        PipeCore::collect(c.writers, wake);  // space freed
        c.plat.unlock(c.lock);
        c.run_wakeups(wake, cbs);
        c.plat.work(kPipeInstrPerByte * static_cast<double>(m));
        MPNJ_METRIC_COUNT(kIoBytesRead, m);
        return m;
      }
      if (c.wr_closed || c.rd_closed || closed_) {
        c.plat.unlock(c.lock);
        return 0;  // EOF
      }
      MPNJ_METRIC_COUNT(kIoParked, 1);
#if MPNJ_METRICS
      const double parked_at = c.plat.now_us();
#endif
      c.sched.suspend([&](threads::ThreadState t) {
        c.readers.push_back(std::move(t));
        c.plat.unlock(c.lock);
      });
#if MPNJ_METRICS
      const double waited = c.plat.now_us() - parked_at;
      MPNJ_METRIC_RECORD(kIoWaitUs,
                         waited > 0 ? static_cast<std::uint64_t>(waited) : 0);
#endif
      c.plat.lock(c.lock);
    }
  }

  void write_all(const void* buf, std::size_t n) override {
    MPNJ_CHECK(!readable_end_, "write to the read end of a pipe");
    PipeCore& c = *core_;
    const auto* in = static_cast<const unsigned char*>(buf);
    std::size_t off = 0;
    std::vector<threads::ThreadState> wake;
    std::vector<std::function<void()>> cbs;
    c.plat.lock(c.lock);
    while (off < n) {
      if (c.rd_closed) {
        c.plat.unlock(c.lock);
        arch::raise_errno("pipe write", EPIPE);
      }
      if (c.wr_closed || closed_) {
        c.plat.unlock(c.lock);
        arch::raise_errno("pipe write", EBADF);
      }
      if (c.count < c.ring.size()) {
        const std::size_t m = std::min(n - off, c.ring.size() - c.count);
        for (std::size_t i = 0; i < m; i++) {
          c.ring[(c.head + c.count + i) % c.ring.size()] = in[off + i];
        }
        c.count += m;
        off += m;
        PipeCore::collect(c.readers, wake);
        cbs.swap(c.readable_cbs);
        c.plat.unlock(c.lock);
        c.run_wakeups(wake, cbs);
        c.plat.work(kPipeInstrPerByte * static_cast<double>(m));
        MPNJ_METRIC_COUNT(kIoBytesWritten, m);
        c.plat.lock(c.lock);
        continue;
      }
      MPNJ_METRIC_COUNT(kIoParked, 1);
      c.sched.suspend([&](threads::ThreadState t) {
        c.writers.push_back(std::move(t));
        c.plat.unlock(c.lock);
      });
      c.plat.lock(c.lock);
    }
    c.plat.unlock(c.lock);
  }

  bool poll_readable() override {
    if (!readable_end_) return false;
    PipeCore& c = *core_;
    c.plat.lock(c.lock);
    const bool r = c.readable_locked();
    c.plat.unlock(c.lock);
    return r;
  }

  void on_readable(std::function<void()> fire) override {
    MPNJ_CHECK(readable_end_, "readiness wait on the write end of a pipe");
    PipeCore& c = *core_;
    c.plat.lock(c.lock);
    if (c.readable_locked()) {
      c.plat.unlock(c.lock);
      fire();
      return;
    }
    c.readable_cbs.push_back(std::move(fire));
    c.plat.unlock(c.lock);
  }

  void close() override {
    PipeCore& c = *core_;
    std::vector<threads::ThreadState> wake;
    std::vector<std::function<void()>> cbs;
    c.plat.lock(c.lock);
    if (closed_) {
      c.plat.unlock(c.lock);
      return;
    }
    closed_ = true;
    if (readable_end_) {
      c.rd_closed = true;  // parked writers wake into EPIPE
    } else {
      c.wr_closed = true;  // parked readers wake into EOF
    }
    PipeCore::collect(c.readers, wake);
    PipeCore::collect(c.writers, wake);
    cbs.swap(c.readable_cbs);  // EOF counts as readable
    c.plat.unlock(c.lock);
    c.run_wakeups(wake, cbs);
  }

 private:
  std::shared_ptr<PipeCore> core_;
  const bool readable_end_;
  bool closed_ = false;  // this end's handle state, under core_->lock
};

// ----- fd streams -----

class FdStream final : public StreamImpl {
 public:
  FdStream(Reactor& reactor, int fd, bool socket)
      : reactor_(reactor), fd_(fd), socket_(socket) {
    const int flags =
        arch::check_sys("fcntl", [&] { return ::fcntl(fd_, F_GETFL); });
    arch::check_sys("fcntl",
                    [&] { return ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK); });
    if (socket_) {
      // Request/response traffic over cooperative threads is exactly the
      // write-write-read shape that trips Nagle + delayed ACK (~40 ms per
      // exchange); disable coalescing.  Non-TCP sockets reject the option,
      // which is fine.
      const int one = 1;
      ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
  }

  ~FdStream() override {
    if (!closed_.load(std::memory_order_acquire)) close();
  }

  std::size_t read_some(void* buf, std::size_t n) override {
    if (n == 0) return 0;
    for (;;) {
      if (closed_.load(std::memory_order_acquire)) return 0;
      const ssize_t rc = arch::retry_eintr([&] {
        return socket_ ? ::recv(fd_, buf, n, 0) : ::read(fd_, buf, n);
      });
      if (rc >= 0) {
        MPNJ_METRIC_COUNT(kIoBytesRead, static_cast<std::uint64_t>(rc));
        return static_cast<std::size_t>(rc);
      }
      if (errno != EAGAIN && errno != EWOULDBLOCK) {
        arch::raise_errno("read", errno);
      }
      reactor_.wait_fd(fd_, Interest::kRead);
    }
  }

  void write_all(const void* buf, std::size_t n) override {
    const auto* p = static_cast<const unsigned char*>(buf);
    std::size_t off = 0;
    while (off < n) {
      if (closed_.load(std::memory_order_acquire)) {
        arch::raise_errno("write", EBADF);
      }
      const ssize_t rc = arch::retry_eintr([&] {
        return socket_ ? ::send(fd_, p + off, n - off, MSG_NOSIGNAL)
                       : ::write(fd_, p + off, n - off);
      });
      if (rc > 0) {
        off += static_cast<std::size_t>(rc);
        MPNJ_METRIC_COUNT(kIoBytesWritten, static_cast<std::uint64_t>(rc));
        continue;
      }
      if (rc < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
        arch::raise_errno("write", errno);
      }
      reactor_.wait_fd(fd_, Interest::kWrite);
    }
  }

  bool poll_readable() override {
    if (closed_.load(std::memory_order_acquire)) return true;  // EOF now
    pollfd pf{fd_, POLLIN, 0};
    const int n = arch::retry_eintr([&] { return ::poll(&pf, 1, 0); });
    return n > 0 && (pf.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
  }

  void on_readable(std::function<void()> fire) override {
    // Fast path only: the reactor's demultiplexer is level-triggered, so a
    // readiness edge between this check and the registration still fires.
    if (poll_readable()) {
      fire();
      return;
    }
    reactor_.add_waiter(fd_, Interest::kRead, std::move(fire));
  }

  void close() override {
    if (closed_.exchange(true, std::memory_order_acq_rel)) return;
    // Wake parked waiters first: they re-poll, observe closed_ / the
    // kernel's view of the closed socket, and unwind.
    reactor_.forget_fd(fd_);
    arch::retry_eintr([&] { return ::close(fd_); });
  }

 private:
  Reactor& reactor_;
  const int fd_;
  const bool socket_;
  std::atomic<bool> closed_{false};
};

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

// ----- Stream -----

void Stream::read_exact(void* buf, std::size_t n) {
  auto* p = static_cast<unsigned char*>(buf);
  std::size_t off = 0;
  while (off < n) {
    const std::size_t m = read_some(p + off, n - off);
    if (m == 0) throw EofError();
    off += m;
  }
}

std::pair<Stream, Stream> Stream::pipe(threads::Scheduler& sched,
                                       std::size_t capacity) {
  auto core = std::make_shared<PipeCore>(sched, capacity);
  return {Stream(std::make_shared<PipeEnd>(core, /*readable_end=*/true)),
          Stream(std::make_shared<PipeEnd>(core, /*readable_end=*/false))};
}

Stream Stream::from_fd(Reactor& reactor, int fd, bool socket) {
  return Stream(std::make_shared<FdStream>(reactor, fd, socket));
}

Stream Stream::connect_tcp(Reactor& reactor, std::uint16_t port) {
  const int fd = arch::check_sys("socket", [] {
    return ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  });
  const sockaddr_in addr = loopback_addr(port);
  const int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS && errno != EINTR) {
    const int err = errno;
    ::close(fd);
    arch::raise_errno("connect", err);
  }
  if (rc < 0) {
    // In progress: park until the socket is writable, then read the result.
    reactor.wait_fd(fd, Interest::kWrite);
    int err = 0;
    socklen_t len = sizeof(err);
    arch::check_sys("getsockopt", [&] {
      return ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    });
    if (err != 0) {
      ::close(fd);
      arch::raise_errno("connect", err);
    }
  }
  return from_fd(reactor, fd, /*socket=*/true);
}

std::pair<Duplex, Duplex> duplex_pipe(threads::Scheduler& sched,
                                      std::size_t capacity) {
  auto [a_in, b_out] = Stream::pipe(sched, capacity);
  auto [b_in, a_out] = Stream::pipe(sched, capacity);
  return {Duplex{std::move(a_in), std::move(a_out)},
          Duplex{std::move(b_in), std::move(b_out)}};
}

// ----- Listener -----

struct Listener::Impl {
  Reactor& reactor;
  int fd;
  std::uint16_t port;
  std::atomic<bool> closed{false};

  Impl(Reactor& r, int f, std::uint16_t p) : reactor(r), fd(f), port(p) {}
  ~Impl() {
    if (!closed.load(std::memory_order_acquire)) do_close();
  }
  void do_close() {
    if (closed.exchange(true, std::memory_order_acq_rel)) return;
    reactor.forget_fd(fd);
    arch::retry_eintr([&] { return ::close(fd); });
  }
};

Listener Listener::tcp(Reactor& reactor, std::uint16_t port, int backlog) {
  const int fd = arch::check_sys("socket", [] {
    return ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  });
  const int one = 1;
  arch::check_sys("setsockopt", [&] {
    return ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  });
  sockaddr_in addr = loopback_addr(port);
  arch::check_sys("bind", [&] {
    return ::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  });
  arch::check_sys("listen", [&] { return ::listen(fd, backlog); });
  socklen_t len = sizeof(addr);
  arch::check_sys("getsockname", [&] {
    return ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  });
  return Listener(
      std::make_shared<Impl>(reactor, fd, ntohs(addr.sin_port)));
}

std::uint16_t Listener::port() const { return impl_->port; }

Stream Listener::accept() {
  for (;;) {
    if (impl_->closed.load(std::memory_order_acquire)) {
      arch::raise_errno("accept", EBADF);
    }
    const int cfd =
        ::accept4(impl_->fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (cfd >= 0) {
      return Stream::from_fd(impl_->reactor, cfd, /*socket=*/true);
    }
    if (errno == EINTR || errno == ECONNABORTED) {
      arch::note_eintr_retry();
      continue;
    }
    if (errno != EAGAIN && errno != EWOULDBLOCK) {
      arch::raise_errno("accept", errno);
    }
    impl_->reactor.wait_fd(impl_->fd, Interest::kRead);
  }
}

void Listener::close() {
  if (impl_) impl_->do_close();
}

}  // namespace mp::io
