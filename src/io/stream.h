#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <utility>

#include "io/reactor.h"
#include "threads/scheduler.h"

// Byte streams with blocking-looking reads and writes that never block the
// proc: when a stream cannot make progress the calling MLthread parks its
// continuation (against fd readiness in the reactor, or on the pipe's own
// waiter queues) and the proc dispatches other work.
//
// Two families share one interface:
//  - Virtual pipes (Stream::pipe): in-memory bounded byte rings handed off
//    thread-to-thread through the scheduler alone.  They involve no kernel
//    state, so they run — deterministically — on every platform backend,
//    including the simulator.
//  - Fd streams (Stream::from_fd / connect_tcp / Listener): non-blocking
//    OS file descriptors parked in a Reactor; native and uni backends.

namespace mp::io {

// Premature end-of-stream inside read_exact.
class EofError : public std::exception {
 public:
  const char* what() const noexcept override {
    return "end of stream before the requested bytes";
  }
};

// Internal polymorphic stream body; use the Stream value type below.
class StreamImpl {
 public:
  virtual ~StreamImpl() = default;
  // Read up to n bytes; blocks the thread (not the proc) until at least one
  // byte or EOF.  Returns 0 only at EOF.
  virtual std::size_t read_some(void* buf, std::size_t n) = 0;
  // Write all n bytes, parking as needed; raises SysError(EPIPE) when the
  // read side is gone.
  virtual void write_all(const void* buf, std::size_t n) = 0;
  // Non-blocking: would read_some return without parking (data or EOF)?
  virtual bool poll_readable() = 0;
  // One-shot callback when the stream becomes readable (or hits EOF).
  // Runs from whichever proc observes readiness; must be brief and
  // non-blocking.  Fires immediately if already readable.
  virtual void on_readable(std::function<void()> fire) = 0;
  virtual void close() = 0;
};

// Shared-handle stream value (copy = another handle on the same stream).
class Stream {
 public:
  Stream() = default;

  std::size_t read_some(void* buf, std::size_t n) {
    return impl_->read_some(buf, n);
  }
  // Read exactly n bytes or throw EofError.
  void read_exact(void* buf, std::size_t n);
  void write_all(const void* buf, std::size_t n) {
    impl_->write_all(buf, n);
  }
  bool poll_readable() { return impl_->poll_readable(); }
  void close() {
    if (impl_) impl_->close();
  }
  bool valid() const { return impl_ != nullptr; }
  const std::shared_ptr<StreamImpl>& impl() const { return impl_; }

  // In-memory bounded pipe: (read end, write end).  Works on every
  // platform backend; charges platform work per byte so the simulator's
  // virtual clock advances.
  static std::pair<Stream, Stream> pipe(threads::Scheduler& sched,
                                        std::size_t capacity = 4096);

  // Adopt an OS fd (made non-blocking); `socket` selects send/recv with
  // MSG_NOSIGNAL over read/write.
  static Stream from_fd(Reactor& reactor, int fd, bool socket = false);

  // Non-blocking connect to 127.0.0.1:port, parked until established.
  static Stream connect_tcp(Reactor& reactor, std::uint16_t port);

 private:
  explicit Stream(std::shared_ptr<StreamImpl> impl) : impl_(std::move(impl)) {}
  std::shared_ptr<StreamImpl> impl_;
};

// A bidirectional endpoint built from two unidirectional streams.
struct Duplex {
  Stream in;   // read from the peer
  Stream out;  // write to the peer
  void close() {
    in.close();
    out.close();
  }
};

// Two cross-connected virtual pipes: a loopback "connection" that runs on
// any backend.  Returns (client endpoint, server endpoint).
std::pair<Duplex, Duplex> duplex_pipe(threads::Scheduler& sched,
                                      std::size_t capacity = 4096);

// Listening TCP socket on 127.0.0.1 (port 0 = kernel-assigned; read the
// result back with port()).  accept() parks the calling thread until a
// connection arrives.
class Listener {
 public:
  Listener() = default;
  static Listener tcp(Reactor& reactor, std::uint16_t port = 0,
                      int backlog = 128);
  std::uint16_t port() const;
  Stream accept();
  void close();
  bool valid() const { return impl_ != nullptr; }

 private:
  struct Impl;
  explicit Listener(std::shared_ptr<Impl> impl) : impl_(std::move(impl)) {}
  std::shared_ptr<Impl> impl_;
};

}  // namespace mp::io
