#pragma once

#include <memory>

#include "cml/cml.h"
#include "io/stream.h"

// CML integration: stream readiness as a first-class event, composable
// with channel communication and timeouts through Event::choose.  A select
// can therefore race a channel send, a timer, and a socket in one sync —
// the same parked-offer commitment protocol decides the winner whichever
// source fires first.

namespace mp::io {

// The event that becomes ready when `s` is readable (data buffered or
// EOF).  The sync does not consume any bytes; the winner typically calls
// read_some next, which returns without parking.
inline cml::Event<cont::Unit> readable_event(Stream s) {
  auto impl = s.impl();
  return cml::Event<cont::Unit>::primitive(
      [impl](threads::Scheduler& sched,
             const std::shared_ptr<cml::detail::EventState>& own, int idx,
             int tid, const cont::ContRef& k,
             std::uint64_t* out) -> cml::detail::Outcome {
        if (impl->poll_readable()) {
          if (own->synched() || !own->try_claim()) {
            return cml::detail::Outcome::kDead;
          }
          own->commit_self(idx);
          *out = 0;
          return cml::detail::Outcome::kCommitted;
        }
        // Park an offer: readiness commits it exactly like a channel
        // partner or a timer would (Event::after's shape).  A stale fire —
        // the sync already committed elsewhere — loses try_commit_partner
        // and is a no-op.
        impl->on_readable([impl, own, k, idx, tid, &sched] {
          if (own->try_commit_partner(idx, sched.platform())) {
            k.get()->preload(0, false);
            sched.reschedule(threads::ThreadState{k, tid});
          }
        });
        return cml::detail::Outcome::kBlocked;
      },
      [](std::uint64_t) { return cont::Unit{}; });
}

}  // namespace mp::io
