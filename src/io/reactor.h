#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "arch/wakeport.h"
#include "threads/scheduler.h"

// The event-driven I/O reactor: the bridge between file-descriptor
// readiness and the MLthread scheduler.  A thread that would block on a
// socket instead parks its continuation here (wait_fd / add_waiter) and the
// proc dispatches other runnable threads — a proc never sits in the kernel
// while runnable work exists.  Readiness is drained by the procs
// themselves through the scheduler's IdleWaiter hook: busy procs poll the
// reactor on a short cadence from their dispatch loops, and a fully idle
// proc blocks in the kernel demultiplexer (epoll, or poll(2) as the
// portable fallback) with a bounded timeout.
//
// GC cooperation.  Every blocking entry point brackets itself with
// platform safe points, waits are bounded by ReactorConfig::max_wait_us,
// and the reactor installs a Platform wake hook: posting a signal or
// starting a stop-the-world kicks the in-kernel poller through an eventfd,
// so a parked-in-reactor proc joins the rendezvous at interrupt speed, not
// timeout speed.
//
// Threading.  poll()/wait()/add_waiter()/wait_fd()/forget_fd() run on
// procs (they take the reactor's platform lock).  notify() is
// async-thread-safe — atomics plus one eventfd write — and may be called
// from any OS thread (the preemption ticker, a GC initiator).

namespace mp::io {

enum class Interest : unsigned { kRead = 1u, kWrite = 2u };

struct ReactorConfig {
  // Upper bound on one in-kernel wait; also the stop-the-world latency a
  // sleeping proc can add if the wake hook is ever missed.
  double max_wait_us = 2000;
  // Use the portable poll(2) backend even where epoll is available.
  bool force_poll = false;
};

class Reactor final : public threads::IdleWaiter {
 public:
  // Installs itself as `sched`'s idle waiter and as the platform's wake
  // hook; the destructor reverses both (quiescing concurrent dispatchers)
  // before closing kernel state.
  explicit Reactor(threads::Scheduler& sched, ReactorConfig cfg = {});
  ~Reactor() override;
  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  // Park the calling MLthread until `fd` is ready for `interest` (or has
  // an error/hangup pending, which reports as ready so the caller's next
  // syscall observes it).  Level-triggered: callers re-attempt the syscall
  // and come back on EAGAIN.
  void wait_fd(int fd, Interest interest);

  // One-shot readiness callback: `fire` runs once, from whichever proc
  // drains the readiness event, with preemption masked — it must be brief
  // and non-blocking (typical body: reschedule a thread or commit a CML
  // offer).  Fires immediately if registration with the kernel fails with
  // EPERM (regular files: always ready).
  void add_waiter(int fd, Interest interest, std::function<void()> fire);

  // Drop `fd` from the demultiplexer and fire all of its parked waiters
  // (they re-poll and observe whatever state — usually EOF — made the
  // caller close).  Call before close(2)ing a registered fd.
  void forget_fd(int fd);

  threads::Scheduler& scheduler() { return sched_; }

  // ---- threads::IdleWaiter ----
  int poll() override;
  int wait(double max_us) override;
  void notify() override;

 private:
  struct Waiter {
    unsigned mask;
    std::function<void()> fire;
  };
  struct FdEntry {
    unsigned armed = 0;  // interest mask currently registered in the kernel
    std::vector<Waiter> waiters;
  };
  struct Ready {
    int fd;
    unsigned mask;
  };

  // Re-register `fd`'s kernel interest after its waiter list changed;
  // called with lock_ held.
  void rearm(int fd, FdEntry& e);
  // One demultiplexer pass: collect ready fds (blocking up to timeout_us),
  // detach and run matching waiters.  Returns the number fired.  Callers
  // hold the single-poller slot, not lock_.
  int drive(double timeout_us);
  int collect_epoll(double timeout_us, std::vector<Ready>& out);
  int collect_poll(double timeout_us, std::vector<Ready>& out);
  int fire_ready(const std::vector<Ready>& ready);

  threads::Scheduler& sched_;
  Platform& plat_;
  ReactorConfig cfg_;
  bool use_epoll_ = false;
  int epfd_ = -1;
  // The cross-thread wakeup port (arch/wakeport.h — the same primitive the
  // native platform uses for per-proc parking) lives apart from the Reactor
  // so the platform wake hook (which may run from a ticker thread at any
  // time) can hold it by shared_ptr and never race the Reactor's
  // destruction.
  std::shared_ptr<arch::WakePort> wake_;

  MutexLock lock_;
  std::unordered_map<int, FdEntry> fds_;
  // Fds with kernel interest armed; lets the hot maybe_poll_io path skip
  // the demultiplexer entirely while no I/O is outstanding.
  std::atomic<int> armed_fds_{0};
  // Single-poller slot: one proc at a time sits in the kernel; the others
  // nap briefly through Platform::idle_wait and retry.
  std::atomic<bool> polling_{false};
};

}  // namespace mp::io
