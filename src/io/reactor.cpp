#include "io/reactor.h"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include "fuzz/hooks.h"

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <ctime>

#ifdef __linux__
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/syscall.h>
#endif

#include "arch/panic.h"
#include "arch/sysio.h"
#include "arch/wakeport.h"
#include "metrics/metrics.h"

namespace mp::io {

namespace {

// A proc that lost the single-poller race naps briefly instead of stacking
// up inside the kernel demultiplexer; the winner (or a notify) produces
// the actual wakeups.
constexpr double kLoserNapUs = 200;

constexpr unsigned kReadMask = static_cast<unsigned>(Interest::kRead);
constexpr unsigned kWriteMask = static_cast<unsigned>(Interest::kWrite);
constexpr unsigned kBothMask = kReadMask | kWriteMask;

timespec to_timespec(double us) {
  if (us < 0) us = 0;
  timespec ts;
  ts.tv_sec = static_cast<time_t>(us / 1e6);
  ts.tv_nsec =
      static_cast<long>((us - static_cast<double>(ts.tv_sec) * 1e6) * 1e3);
  return ts;
}

short to_poll_events(unsigned mask) {
  short ev = 0;
  if (mask & kReadMask) ev |= POLLIN;
  if (mask & kWriteMask) ev |= POLLOUT;
  return ev;
}

unsigned from_poll_events(short ev) {
  unsigned mask = 0;
  if (ev & (POLLIN | POLLPRI)) mask |= kReadMask;
  if (ev & POLLOUT) mask |= kWriteMask;
  // Errors and hangups wake every waiter: the next syscall reports the
  // condition to whichever side retries.
  if (ev & (POLLERR | POLLHUP | POLLNVAL)) mask |= kBothMask;
  return mask;
}

}  // namespace

// ----- construction / teardown -----

Reactor::Reactor(threads::Scheduler& sched, ReactorConfig cfg)
    : sched_(sched), plat_(sched.platform()), cfg_(cfg) {
  lock_ = plat_.mutex_lock();
  wake_ = std::make_shared<arch::WakePort>();
  wake_->open();
#ifdef __linux__
  if (!cfg_.force_poll) {
    epfd_ = arch::check_sys("epoll_create1",
                            [] { return ::epoll_create1(EPOLL_CLOEXEC); });
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wake_->rfd();
    arch::check_sys("epoll_ctl", [&] {
      return ::epoll_ctl(epfd_, EPOLL_CTL_ADD, wake_->rfd(), &ev);
    });
    use_epoll_ = true;
  }
#endif
  // The hook holds the port (not the Reactor) by shared_ptr, so a ticker
  // thread caught mid-invocation during our destruction stays safe.
  plat_.set_wake_hook([port = wake_] { port->signal(); });
  sched_.set_idle_waiter(this);
}

Reactor::~Reactor() {
  sched_.set_idle_waiter(nullptr);  // quiesces concurrent dispatch loops
  plat_.set_wake_hook(nullptr);
  // Fire any still-parked waiters so no thread is stranded; their owners
  // re-poll and observe closed streams.
  std::vector<std::function<void()>> fires;
  plat_.lock(lock_);
  for (auto& [fd, e] : fds_) {
    for (auto& w : e.waiters) fires.push_back(std::move(w.fire));
  }
  fds_.clear();
  armed_fds_.store(0, std::memory_order_release);
  plat_.unlock(lock_);
  for (auto& f : fires) f();
  if (epfd_ >= 0) ::close(epfd_);
}

// ----- registration -----

void Reactor::rearm(int fd, FdEntry& e) {
  unsigned want = 0;
  for (const Waiter& w : e.waiters) want |= w.mask;
  if (want == e.armed) return;
  const unsigned old = e.armed;
  e.armed = want;
  if (old == 0 && want != 0) {
    armed_fds_.fetch_add(1, std::memory_order_acq_rel);
  } else if (old != 0 && want == 0) {
    armed_fds_.fetch_sub(1, std::memory_order_acq_rel);
  }
#ifdef __linux__
  if (use_epoll_) {
    epoll_event ev{};
    ev.events = (want & kReadMask ? EPOLLIN | EPOLLRDHUP : 0u) |
                (want & kWriteMask ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    const int op = want == 0  ? EPOLL_CTL_DEL
                   : old == 0 ? EPOLL_CTL_ADD
                              : EPOLL_CTL_MOD;
    const int rc =
        arch::retry_eintr([&] { return ::epoll_ctl(epfd_, op, fd, &ev); });
    if (rc < 0 && op == EPOLL_CTL_ADD && errno == EPERM) {
      // Not pollable (a regular file): report as permanently ready by
      // leaving it unarmed; the caller fires waiters immediately.
      e.armed = 0;
      armed_fds_.fetch_sub(1, std::memory_order_acq_rel);
      return;
    }
    if (rc < 0 && !(op == EPOLL_CTL_DEL && errno == EBADF)) {
      arch::raise_errno("epoll_ctl", errno);
    }
    return;
  }
#endif
  // poll(2) backend: the fd set is rebuilt each pass; kick a poller that
  // may be blocked on the stale set.
  if (want & ~old) wake_->signal();
}

void Reactor::add_waiter(int fd, Interest interest, std::function<void()> fire) {
  const unsigned mask = static_cast<unsigned>(interest);
  plat_.lock(lock_);
  FdEntry& e = fds_[fd];
  e.waiters.push_back(Waiter{mask, std::move(fire)});
  rearm(fd, e);
  if (e.armed == 0) {
    // Unpollable fd (see rearm): fire now rather than never.
    Waiter w = std::move(e.waiters.back());
    e.waiters.pop_back();
    if (e.waiters.empty()) fds_.erase(fd);
    plat_.unlock(lock_);
    w.fire();
    return;
  }
  plat_.unlock(lock_);
}

void Reactor::wait_fd(int fd, Interest interest) {
  MPNJ_METRIC_COUNT(kIoParked, 1);
#if MPNJ_METRICS
  const double parked_at = plat_.now_us();
#endif
  sched_.suspend([&](threads::ThreadState t) {
    add_waiter(fd, interest,
               [this, t]() mutable { sched_.reschedule(std::move(t)); });
  });
#if MPNJ_METRICS
  const double waited = plat_.now_us() - parked_at;
  MPNJ_METRIC_RECORD(kIoWaitUs,
                     waited > 0 ? static_cast<std::uint64_t>(waited) : 0);
#endif
}

void Reactor::forget_fd(int fd) {
  std::vector<std::function<void()>> fires;
  plat_.lock(lock_);
  auto it = fds_.find(fd);
  if (it != fds_.end()) {
    for (auto& w : it->second.waiters) fires.push_back(std::move(w.fire));
    it->second.waiters.clear();
    rearm(fd, it->second);
    fds_.erase(it);
  }
  plat_.unlock(lock_);
  for (auto& f : fires) f();
}

// ----- demultiplexing -----

int Reactor::collect_epoll(double timeout_us, std::vector<Ready>& out) {
#ifdef __linux__
  epoll_event evs[64];
  int n;
  if (timeout_us <= 0) {
    n = ::epoll_wait(epfd_, evs, 64, 0);
  } else {
#ifdef SYS_epoll_pwait2
    timespec ts = to_timespec(timeout_us);
    n = static_cast<int>(::syscall(SYS_epoll_pwait2, epfd_, evs, 64, &ts,
                                   nullptr, static_cast<std::size_t>(0)));
#else
    const int ms = static_cast<int>((timeout_us + 999) / 1000);
    n = ::epoll_wait(epfd_, evs, 64, std::max(ms, 1));
#endif
  }
  if (n < 0) {
    if (errno == EINTR) return 0;  // treat as a spurious wake, stay bounded
    arch::raise_errno("epoll_wait", errno);
  }
  for (int i = 0; i < n; i++) {
    if (evs[i].data.fd == wake_->rfd()) {
      wake_->acknowledge();
      continue;
    }
    unsigned mask = 0;
    if (evs[i].events & (EPOLLIN | EPOLLPRI | EPOLLRDHUP)) mask |= kReadMask;
    if (evs[i].events & EPOLLOUT) mask |= kWriteMask;
    if (evs[i].events & (EPOLLERR | EPOLLHUP)) mask |= kBothMask;
    out.push_back(Ready{evs[i].data.fd, mask});
  }
  return n;
#else
  (void)timeout_us;
  (void)out;
  arch::panic("epoll backend on a non-Linux build");
#endif
}

int Reactor::collect_poll(double timeout_us, std::vector<Ready>& out) {
  std::vector<pollfd> pfds;
  pfds.push_back(pollfd{wake_->rfd(), POLLIN, 0});
  plat_.lock(lock_);
  for (const auto& [fd, e] : fds_) {
    if (e.armed != 0) pfds.push_back(pollfd{fd, to_poll_events(e.armed), 0});
  }
  plat_.unlock(lock_);
  timespec ts = to_timespec(timeout_us);
  const int n = ::ppoll(pfds.data(), pfds.size(), &ts, nullptr);
  if (n < 0) {
    if (errno == EINTR) return 0;
    arch::raise_errno("ppoll", errno);
  }
  for (const pollfd& p : pfds) {
    if (p.revents == 0) continue;
    if (p.fd == wake_->rfd()) {
      wake_->acknowledge();
      continue;
    }
    out.push_back(Ready{p.fd, from_poll_events(p.revents)});
  }
  return n;
}

int Reactor::fire_ready(const std::vector<Ready>& ready) {
  if (ready.empty()) return 0;
  // Fuzz choice point: the rotation applied to the ready batch.  The OS
  // (or the sim's virtual ports) hands events in an arbitrary order, so
  // permuting the dispatch order explores schedules the kernel could have
  // produced.
  const std::size_t rot =
      fuzz::pick(fuzz::Kind::kIoOrder, ready.size(), 0);
  std::vector<std::function<void()>> fires;
  plat_.lock(lock_);
  for (std::size_t i = 0; i < ready.size(); i++) {
    const Ready& r = ready[(i + rot) % ready.size()];
    auto it = fds_.find(r.fd);
    if (it == fds_.end()) continue;  // raced with forget_fd
    FdEntry& e = it->second;
    auto keep = e.waiters.begin();
    for (auto& w : e.waiters) {
      if (w.mask & r.mask) {
        fires.push_back(std::move(w.fire));
      } else {
        *keep++ = std::move(w);
      }
    }
    e.waiters.erase(keep, e.waiters.end());
    rearm(r.fd, e);
    if (e.waiters.empty()) fds_.erase(it);
  }
  plat_.unlock(lock_);
  // Waiter callbacks run outside the reactor lock (they enqueue on the
  // scheduler's ready queues / commit CML offers).
  for (auto& f : fires) f();
  const int fired = static_cast<int>(fires.size());
  if (fired > 0) {
    MPNJ_METRIC_COUNT(kIoWakeups, static_cast<std::uint64_t>(fired));
    MPNJ_METRIC_COUNT(kIoDispatchBatches, 1);
    MPNJ_METRIC_RECORD(kIoBatchWakeups, static_cast<std::uint64_t>(fired));
  }
  return fired;
}

int Reactor::drive(double timeout_us) {
  std::vector<Ready> ready;
  if (use_epoll_) {
    collect_epoll(timeout_us, ready);
  } else {
    collect_poll(timeout_us, ready);
  }
  return fire_ready(ready);
}

// ----- threads::IdleWaiter -----

int Reactor::poll() {
  if (armed_fds_.load(std::memory_order_acquire) == 0) return 0;
  bool expected = false;
  if (!polling_.compare_exchange_strong(expected, true,
                                        std::memory_order_acq_rel)) {
    return 0;  // the current poller reports readiness itself
  }
  const int fired = drive(0);
  polling_.store(false, std::memory_order_release);
  return fired;
}

int Reactor::wait(double max_us) {
  plat_.safe_point();
  if (wake_->consume()) {
    return 0;  // consumed an external kick; caller re-checks its queues
  }
  bool expected = false;
  if (!polling_.compare_exchange_strong(expected, true,
                                        std::memory_order_acq_rel)) {
    // Fallback only: the scheduler's reactor election admits one proc at a
    // time, so this race is confined to direct callers outside the
    // election (tests, the destructor's quiesce kicks).
    plat_.idle_wait(std::min(max_us, kLoserNapUs));
    return 0;
  }
  const int fired = drive(std::min(max_us, cfg_.max_wait_us));
  polling_.store(false, std::memory_order_release);
  plat_.safe_point();
  return fired;
}

void Reactor::notify() {
  MPNJ_METRIC_COUNT(kIoNotifies, 1);
  wake_->signal();
}

}  // namespace mp::io
