#pragma once

#include <exception>
#include <memory>
#include <vector>

#include "cml/sync_cells.h"
#include "threads/scheduler.h"
#include "threads/sync.h"

// ML Threads: the "Modula-3 style thread package" the paper builds on MP
// (section 1; Cooper & Morrisett, "Adding Threads to Standard ML").  A
// typed veneer over the Figure 3 scheduler:
//
//   * fork_thread returns a first-class handle; join waits for the thread
//     and yields its result (plumbed through an IVar).
//   * Mutex / CondVar with Modula-3 semantics live in threads/sync.h.
//   * Alerts: a polite asynchronous cancellation request.  `alert` marks
//     the target; the target observes it at `test_alert` / `alert_pause`
//     (which raise Alerted) — the "timer-driven polling in the target
//     proc" that section 3.4 prescribes in place of a proc-interruption
//     facility.  An alerted exit propagates out of join as Alerted.

namespace mp::threads {

// Raised in the target thread when it polls a pending alert, and re-raised
// from join when the thread exited that way.
class Alerted : public std::exception {
 public:
  const char* what() const noexcept override { return "thread alerted"; }
};

namespace detail {

struct ThreadRec {
  explicit ThreadRec(Scheduler& s) : done(s) {}
  cml::IVar<std::uint64_t> done;  // raw-encoded result, delivered at exit
  std::atomic<bool> alerted{false};
  std::atomic<bool> alert_exit{false};
  std::atomic<bool> finished{false};
};

// Maps scheduler thread ids to their records so test_alert can find the
// calling thread's record.  Guarded by a raw spin word (it sits below the
// platform and entries are touched only at fork/exit/poll).
class AlertRegistry {
 public:
  static AlertRegistry& instance() {
    static AlertRegistry reg;
    return reg;
  }

  void set(int tid, ThreadRec* rec) {
    Spin guard(word_);
    entries_.emplace_back(tid, rec);
  }
  void clear(int tid) {
    Spin guard(word_);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->first == tid) {
        entries_.erase(it);
        return;
      }
    }
  }
  ThreadRec* find(int tid) {
    Spin guard(word_);
    for (const auto& [id, rec] : entries_) {
      if (id == tid) return rec;
    }
    return nullptr;
  }

 private:
  class Spin {
   public:
    explicit Spin(std::atomic<std::uint32_t>& w) : w_(w) {
      while (w_.exchange(1, std::memory_order_acquire) != 0) {
        arch::cpu_relax();
      }
    }
    ~Spin() { w_.store(0, std::memory_order_release); }

   private:
    std::atomic<std::uint32_t>& w_;
  };

  AlertRegistry() = default;
  std::atomic<std::uint32_t> word_{0};
  std::vector<std::pair<int, ThreadRec*>> entries_;
};

}  // namespace detail

// A first-class handle to a forked thread producing a T (T must fit a
// machine word, like continuation payloads; use cont::Unit for
// effects-only threads).  Handles are copyable; join may be called by any
// number of threads.
template <typename T>
class Thread {
 public:
  Thread() = default;

  bool valid() const { return rec_ != nullptr; }

  // Wait for the thread to finish and return its result; re-raises Alerted
  // if the thread exited through an alert.
  T join() {
    MPNJ_CHECK(rec_ != nullptr, "join of an invalid thread handle");
    const std::uint64_t raw = rec_->done.get();
    if (rec_->alert_exit.load(std::memory_order_acquire)) throw Alerted();
    return cont::detail::decode_slot<T>(raw);
  }

  // Request cancellation: the target observes it at its next alert poll.
  void alert() {
    MPNJ_CHECK(rec_ != nullptr, "alert of an invalid thread handle");
    rec_->alerted.store(true, std::memory_order_release);
  }

  bool finished() const {
    return rec_ != nullptr && rec_->finished.load(std::memory_order_acquire);
  }

 private:
  template <typename U, typename F>
  friend Thread<U> fork_thread(Scheduler& s, F&& body,
                               Scheduler::SpawnOpts opts);

  std::shared_ptr<detail::ThreadRec> rec_;
};

// Fork a thread computing body() -> T; returns a joinable handle.  `opts`
// (stack class, debug name) passes straight through to Scheduler::fork.
template <typename T, typename F>
Thread<T> fork_thread(Scheduler& s, F&& body, Scheduler::SpawnOpts opts = {}) {
  static_assert(std::is_invocable_r_v<T, F>,
                "fork_thread<T> body must be callable as T()");
  Thread<T> handle;
  handle.rec_ = std::make_shared<detail::ThreadRec>(s);
  auto rec = handle.rec_;
  s.fork(
      [&s, rec, body = std::forward<F>(body)]() mutable {
        detail::AlertRegistry::instance().set(s.id(), rec.get());
        std::uint64_t raw = 0;
        try {
          raw = cont::detail::encode_slot<T>(body());
        } catch (const Alerted&) {
          rec->alert_exit.store(true, std::memory_order_release);
        }
        detail::AlertRegistry::instance().clear(s.id());
        rec->finished.store(true, std::memory_order_release);
        rec->done.put(raw);  // wakes every joiner
      },
      opts);
  return handle;
}

// Raise Alerted in the calling thread if someone has alerted it.
inline void test_alert(Scheduler& s) {
  detail::ThreadRec* rec = detail::AlertRegistry::instance().find(s.id());
  if (rec != nullptr && rec->alerted.load(std::memory_order_acquire)) {
    rec->alerted.store(false, std::memory_order_release);  // consumed
    throw Alerted();
  }
}

// A yield that also polls for alerts (Modula-3's AlertPause shape).
inline void alert_pause(Scheduler& s) {
  s.yield();
  test_alert(s);
}

}  // namespace mp::threads
