#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "cont/cont.h"
#include "mp/platform.h"
#include "threads/proc_core.h"
#include "threads/queue_types.h"

namespace mp::threads {

// The QUEUE signature (paper Figure 1): the thread module is parameterized
// by the queuing discipline, so scheduling policy is changed "simply by
// varying the functor's argument".  The lock-based implementations do their
// own locking through the platform's mutex locks — which is also what makes
// run-queue lock contention measurable in the simulator; the work-stealing
// discipline keeps the ready path off mutual exclusion entirely.
class ReadyQueue {
 public:
  virtual ~ReadyQueue() = default;
  // The scheduler offers its per-proc cores (proc_core.h) before init; the
  // work-stealing discipline anchors its deques there, the lock-based
  // disciplines ignore the offer.
  virtual void bind_cores(std::vector<ProcCore*> cores) { (void)cores; }
  // Called once, on the root proc, before any enq/deq.
  virtual void init(Platform& p) = 0;
  virtual void enq(Platform& p, ThreadState t) = 0;
  // Returns a thread if one is available right now (no blocking).
  virtual std::optional<ThreadState> deq(Platform& p) = 0;
  virtual const char* name() const = 0;
};

// Central FIFO queue under one lock — the paper's Figure 3 configuration.
class CentralFifoQueue final : public ReadyQueue {
 public:
  void init(Platform& p) override { lock_ = p.mutex_lock(); }
  void enq(Platform& p, ThreadState t) override;
  std::optional<ThreadState> deq(Platform& p) override;
  const char* name() const override { return "central-fifo"; }

 private:
  MutexLock lock_;
  std::deque<ThreadState> q_;
};

// Central LIFO (stack) discipline: favours cache-warm recent work.
class CentralLifoQueue final : public ReadyQueue {
 public:
  void init(Platform& p) override { lock_ = p.mutex_lock(); }
  void enq(Platform& p, ThreadState t) override;
  std::optional<ThreadState> deq(Platform& p) override;
  const char* name() const override { return "central-lifo"; }

 private:
  MutexLock lock_;
  std::deque<ThreadState> q_;
};

// Randomized discipline (the paper notes FIFO and randomized queues both
// match the QUEUE signature): dequeues a uniformly random waiting thread.
class RandomQueue final : public ReadyQueue {
 public:
  void init(Platform& p) override { lock_ = p.mutex_lock(); }
  void enq(Platform& p, ThreadState t) override;
  std::optional<ThreadState> deq(Platform& p) override;
  const char* name() const override { return "central-random"; }

 private:
  MutexLock lock_;
  std::vector<ThreadState> q_;
};

// Priority discipline (the paper's footnote 1: "priority queues would need
// a priority to be passed to the enqueue operation" — here priorities are
// registered per thread id instead of changing the enq signature).  Higher
// priority dequeues first; FIFO within a priority level.
class PriorityQueue final : public ReadyQueue {
 public:
  void init(Platform& p) override { lock_ = p.mutex_lock(); }
  void enq(Platform& p, ThreadState t) override;
  std::optional<ThreadState> deq(Platform& p) override;
  const char* name() const override { return "central-priority"; }

  // Set the priority used for future enqueues of thread `thread_id`
  // (default 0).
  void set_priority(Platform& p, int thread_id, int priority);

 private:
  struct Entry {
    int priority;
    std::uint64_t seq;
    ThreadState t;
  };
  MutexLock lock_;
  std::vector<Entry> heap_;  // max-heap by (priority, -seq)
  std::uint64_t next_seq_ = 0;
  // Registered priorities keyed by thread id: O(log n) lookup per enqueue
  // and per set_priority (the pair-vector this replaces made both O(n)).
  std::map<int, int> priorities_;
};

// Distributed run queue: one deque + lock per proc; enqueue goes to the
// enqueuing proc's own queue, dequeue tries the own queue first and then
// steals from victims in random order.  This is the configuration the
// paper's evaluation uses ("with the addition of a distributed run queue").
class DistributedQueue final : public ReadyQueue {
 public:
  void init(Platform& p) override;
  void enq(Platform& p, ThreadState t) override;
  std::optional<ThreadState> deq(Platform& p) override;
  const char* name() const override { return "distributed"; }

 private:
  struct PerProc {
    MutexLock lock;
    std::deque<ThreadState> q;
    // Approximate size readable without the lock: stealing procs peek at it
    // (one shared-memory read) before paying for a lock acquisition, so
    // idle polling does not hammer every victim's lock.
    std::atomic<int> approx_size{0};
  };
  std::vector<std::unique_ptr<PerProc>> per_proc_;
};

// Lock-free work-stealing discipline (the default): one Chase–Lev deque
// per proc, anchored in the scheduler's ProcCores.  Enqueue is a plain
// store + release on the enqueuing proc's own deque; dequeue takes from
// the own deque first and then steals from victims in seeded random order,
// one CAS per take.  Owner order is FIFO by default — the owner takes from
// its own deque's top with the same CAS the thieves use, preserving the
// distributed discipline's per-proc FIFO fairness (a yielding thread goes
// behind its proc's other work; with LIFO it would re-dispatch itself and
// starve them).  kLifo keeps the textbook Chase–Lev owner pop at the
// bottom for depth-first fork/join ablation, with the same starvation
// caveat as CentralLifoQueue.
class WorkStealingQueue final : public ReadyQueue {
 public:
  enum class OwnerOrder { kFifo, kLifo };

  explicit WorkStealingQueue(OwnerOrder order = OwnerOrder::kFifo)
      : order_(order) {}

  void bind_cores(std::vector<ProcCore*> cores) override {
    cores_ = std::move(cores);
  }
  void init(Platform& p) override;
  void enq(Platform& p, ThreadState t) override;
  std::optional<ThreadState> deq(Platform& p) override;
  const char* name() const override {
    return order_ == OwnerOrder::kFifo ? "ws" : "ws-lifo";
  }

  // Test hook: record (thief, victim) for every committed steal.  The
  // recorder is written without synchronization — use it only where all
  // procs share one OS thread (the simulator backend).
  void set_steal_recorder(std::vector<std::pair<int, int>>* rec) {
    steal_rec_ = rec;
  }

 private:
  OwnerOrder order_;
  std::vector<ProcCore*> cores_;
  // Standalone use (tests, queue-only harnesses): cores created by init
  // when the scheduler did not bind its own.
  std::vector<std::unique_ptr<ProcCore>> owned_;
  std::vector<std::pair<int, int>>* steal_rec_ = nullptr;
};

}  // namespace mp::threads
