#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "cont/cont.h"
#include "mp/platform.h"

namespace mp::threads {

// A suspended thread on a ready queue: a continuation that already carries
// its resume value, plus the thread's integer id (restored into the proc
// datum by dispatch, as in the paper's Figure 3).
struct ThreadState {
  cont::ContRef k;
  int id = 0;
};

// The QUEUE signature (paper Figure 1): the thread module is parameterized
// by the queuing discipline, so scheduling policy is changed "simply by
// varying the functor's argument".  Implementations do their own locking
// through the platform's mutex locks — which is also what makes run-queue
// lock contention measurable in the simulator.
class ReadyQueue {
 public:
  virtual ~ReadyQueue() = default;
  // Called once, on the root proc, before any enq/deq.
  virtual void init(Platform& p) = 0;
  virtual void enq(Platform& p, ThreadState t) = 0;
  // Returns a thread if one is available right now (no blocking).
  virtual std::optional<ThreadState> deq(Platform& p) = 0;
  virtual const char* name() const = 0;
};

// Central FIFO queue under one lock — the paper's Figure 3 configuration.
class CentralFifoQueue final : public ReadyQueue {
 public:
  void init(Platform& p) override { lock_ = p.mutex_lock(); }
  void enq(Platform& p, ThreadState t) override;
  std::optional<ThreadState> deq(Platform& p) override;
  const char* name() const override { return "central-fifo"; }

 private:
  MutexLock lock_;
  std::deque<ThreadState> q_;
};

// Central LIFO (stack) discipline: favours cache-warm recent work.
class CentralLifoQueue final : public ReadyQueue {
 public:
  void init(Platform& p) override { lock_ = p.mutex_lock(); }
  void enq(Platform& p, ThreadState t) override;
  std::optional<ThreadState> deq(Platform& p) override;
  const char* name() const override { return "central-lifo"; }

 private:
  MutexLock lock_;
  std::deque<ThreadState> q_;
};

// Randomized discipline (the paper notes FIFO and randomized queues both
// match the QUEUE signature): dequeues a uniformly random waiting thread.
class RandomQueue final : public ReadyQueue {
 public:
  void init(Platform& p) override { lock_ = p.mutex_lock(); }
  void enq(Platform& p, ThreadState t) override;
  std::optional<ThreadState> deq(Platform& p) override;
  const char* name() const override { return "central-random"; }

 private:
  MutexLock lock_;
  std::vector<ThreadState> q_;
};

// Priority discipline (the paper's footnote 1: "priority queues would need
// a priority to be passed to the enqueue operation" — here priorities are
// registered per thread id instead of changing the enq signature).  Higher
// priority dequeues first; FIFO within a priority level.
class PriorityQueue final : public ReadyQueue {
 public:
  void init(Platform& p) override { lock_ = p.mutex_lock(); }
  void enq(Platform& p, ThreadState t) override;
  std::optional<ThreadState> deq(Platform& p) override;
  const char* name() const override { return "central-priority"; }

  // Set the priority used for future enqueues of thread `thread_id`
  // (default 0).
  void set_priority(Platform& p, int thread_id, int priority);

 private:
  struct Entry {
    int priority;
    std::uint64_t seq;
    ThreadState t;
  };
  MutexLock lock_;
  std::vector<Entry> heap_;  // max-heap by (priority, -seq)
  std::uint64_t next_seq_ = 0;
  std::vector<std::pair<int, int>> priorities_;  // (thread id, priority)
};

// Distributed run queue: one deque + lock per proc; enqueue goes to the
// enqueuing proc's own queue, dequeue tries the own queue first and then
// steals from victims in random order.  This is the configuration the
// paper's evaluation uses ("with the addition of a distributed run queue").
class DistributedQueue final : public ReadyQueue {
 public:
  void init(Platform& p) override;
  void enq(Platform& p, ThreadState t) override;
  std::optional<ThreadState> deq(Platform& p) override;
  const char* name() const override { return "distributed"; }

 private:
  struct PerProc {
    MutexLock lock;
    std::deque<ThreadState> q;
    // Approximate size readable without the lock: stealing procs peek at it
    // (one shared-memory read) before paying for a lock acquisition, so
    // idle polling does not hammer every victim's lock.
    std::atomic<int> approx_size{0};
  };
  std::vector<std::unique_ptr<PerProc>> per_proc_;
};

}  // namespace mp::threads
