#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "arch/cacheline.h"
#include "threads/queue_types.h"

// Chase–Lev work-stealing deque specialized to ready-queue entries.
//
// One proc owns each deque: the owner pushes and pops at the bottom without
// any atomic read-modify-write on the fast path, thieves take from the top
// with a single compare-and-swap.  The orderings follow Lê/Pop/Cohen/
// Nardelli ("Correct and Efficient Work-Stealing for Weak Memory Models",
// PPoPP'13) with one deliberate deviation: the store-load orderings that
// the original expresses through standalone seq_cst fences are carried by
// the bottom/top operations themselves, because ThreadSanitizer (which the
// CI sched-stress leg runs against this code) does not model standalone
// fences and would report false races on the slot array.  Every slot is an
// atomic pointer for the same reason; the extra cost on x86 is one
// store-load barrier per owner pop.
//
// Entries are heap-allocated ThreadState cells (ThreadState itself holds a
// non-trivially-copyable ContRef, so slots hold owning pointers; whoever
// takes an entry deletes the cell after moving the state out).  The array
// grows under the owner; superseded arrays are retired, not freed, until
// the deque is destroyed, so a thief racing a growth still reads valid —
// possibly stale, CAS-rejected — memory.

namespace mp::threads {

class WsDeque {
 public:
  enum class Steal { kEmpty, kLost, kGot };

  explicit WsDeque(std::int64_t capacity = 64) {
    array_.store(new Array(round_up(capacity)), std::memory_order_relaxed);
  }

  WsDeque(const WsDeque&) = delete;
  WsDeque& operator=(const WsDeque&) = delete;

  ~WsDeque() {
    // Single-threaded by contract at destruction: drain owners' leftovers,
    // then free the live array and everything retired by growth.
    while (ThreadState* t = pop()) delete t;
    delete array_.load(std::memory_order_relaxed);
    for (Array* a : retired_) delete a;
  }

  // Owner only: push `t` at the bottom.  Takes ownership of the cell.
  void push(ThreadState* t) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t top = top_.load(std::memory_order_acquire);
    Array* a = array_.load(std::memory_order_relaxed);
    if (b - top > a->cap - 1) a = grow(a, top, b);
    a->slot(b).store(t, std::memory_order_relaxed);
    // The release publishes the slot store to any thief that acquires the
    // new bottom.
    bottom_.store(b + 1, std::memory_order_release);
  }

  // Owner only: pop from the bottom (LIFO).  Null when empty.
  ThreadState* pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Array* a = array_.load(std::memory_order_relaxed);
    // seq_cst store-then-load: the reservation of slot b must be visible
    // before top is read, or a thief could take the same entry.
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t top = top_.load(std::memory_order_seq_cst);
    if (top > b) {
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    ThreadState* t = a->slot(b).load(std::memory_order_relaxed);
    if (top == b) {
      // Last entry: race the thieves for it with the same CAS they use.
      if (!top_.compare_exchange_strong(top, top + 1,
                                        std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        t = nullptr;  // a thief won
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return t;
  }

  // Any proc: take from the top (FIFO order).  kLost means the single CAS
  // was beaten by a concurrent taker — the entry went somewhere, so a
  // retrying thief still makes global progress.
  Steal steal(ThreadState** out) {
    std::int64_t top = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (top >= b) return Steal::kEmpty;
    Array* a = array_.load(std::memory_order_acquire);
    ThreadState* t = a->slot(top).load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(top, top + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return Steal::kLost;
    }
    *out = t;
    return Steal::kGot;
  }

  // Racy size estimate (never negative); cheap enough for victim peeks.
  std::int64_t approx_size() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t top = top_.load(std::memory_order_relaxed);
    return b > top ? b - top : 0;
  }

  bool empty() const { return approx_size() == 0; }

 private:
  struct Array {
    explicit Array(std::int64_t capacity)
        : cap(capacity), mask(capacity - 1),
          slots(new std::atomic<ThreadState*>[static_cast<std::size_t>(
              capacity)]) {}
    ~Array() { delete[] slots; }
    std::atomic<ThreadState*>& slot(std::int64_t i) {
      return slots[i & mask];
    }
    const std::int64_t cap;
    const std::int64_t mask;
    std::atomic<ThreadState*>* const slots;
  };

  static std::int64_t round_up(std::int64_t n) {
    std::int64_t cap = 8;
    while (cap < n) cap <<= 1;
    return cap;
  }

  Array* grow(Array* old, std::int64_t top, std::int64_t b) {
    Array* bigger = new Array(old->cap * 2);
    for (std::int64_t i = top; i < b; i++) {
      bigger->slot(i).store(old->slot(i).load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
    }
    array_.store(bigger, std::memory_order_release);
    retired_.push_back(old);  // thieves may still be reading it
    return bigger;
  }

  // top and bottom on separate lines: thieves hammer top with CAS while the
  // owner's push/pop traffic should stay local to bottom.
  alignas(arch::kCacheLine) std::atomic<std::int64_t> top_{0};
  alignas(arch::kCacheLine) std::atomic<std::int64_t> bottom_{0};
  std::atomic<Array*> array_{nullptr};
  std::vector<Array*> retired_;  // owner-only; freed at destruction
};

}  // namespace mp::threads
