#pragma once

#include <deque>

#include "threads/scheduler.h"

// Thread-level synchronization synthesized from mutex locks, refs and
// first-class continuations, as section 3.3 promises ("more elaborate
// synchronization constructs such as reader/writer locks, semaphores,
// channels, etc., can be synthesized from mutex locks, refs, and
// first-class continuations").  Each primitive protects its state with an
// MP spin lock and parks waiting threads as continuations, so a blocked
// thread costs nothing and its proc runs other work.

namespace mp::threads {

// Blocking mutual exclusion with direct ownership handoff to the longest
// waiting thread.
class Mutex {
 public:
  explicit Mutex(Scheduler& sched);
  void lock();
  bool try_lock();
  void unlock();

 private:
  Scheduler& sched_;
  MutexLock spin_;
  bool held_ = false;
  std::deque<ThreadState> waiters_;
};

// Condition variable paired with Mutex (Mesa semantics: re-lock after wake,
// caller re-checks its predicate).
class CondVar {
 public:
  explicit CondVar(Scheduler& sched);
  void wait(Mutex& m);
  void signal();
  void broadcast();

 private:
  Scheduler& sched_;
  MutexLock spin_;
  std::deque<ThreadState> waiters_;
};

// Cyclic barrier for `parties` threads.
class Barrier {
 public:
  Barrier(Scheduler& sched, int parties);
  void arrive_and_wait();
  long generation() const { return generation_; }

 private:
  Scheduler& sched_;
  MutexLock spin_;
  int parties_;
  int waiting_ = 0;
  long generation_ = 0;
  std::deque<ThreadState> waiters_;
};

// Counting semaphore.
class Semaphore {
 public:
  Semaphore(Scheduler& sched, long initial);
  void acquire();
  bool try_acquire();
  void release();

 private:
  Scheduler& sched_;
  MutexLock spin_;
  long count_;
  std::deque<ThreadState> waiters_;
};

// Reader/writer lock, writer-preferring (new readers wait once a writer is
// queued, so writers cannot starve).
class RWLock {
 public:
  explicit RWLock(Scheduler& sched);
  void lock_shared();
  void unlock_shared();
  void lock_exclusive();
  void unlock_exclusive();

 private:
  Scheduler& sched_;
  MutexLock spin_;
  int readers_ = 0;
  bool writer_ = false;
  std::deque<ThreadState> read_waiters_;
  std::deque<ThreadState> write_waiters_;
};

// One-shot countdown latch: await() returns once count_down() has been
// called `count` times.  The workloads use this as their join mechanism.
class CountdownLatch {
 public:
  CountdownLatch(Scheduler& sched, long count);
  void count_down();
  void await();
  long remaining();

 private:
  Scheduler& sched_;
  MutexLock spin_;
  long count_;
  std::deque<ThreadState> waiters_;
};

}  // namespace mp::threads
