#pragma once

#include <deque>

#include "threads/qlock.h"
#include "threads/scheduler.h"

// Thread-level synchronization synthesized from mutex locks, refs and
// first-class continuations, as section 3.3 promises ("more elaborate
// synchronization constructs such as reader/writer locks, semaphores,
// channels, etc., can be synthesized from mutex locks, refs, and
// first-class continuations").  Parked threads cost nothing and their proc
// runs other work; a release hands ownership to a waiter directly.
//
// Two lock disciplines implement that contract (docs/SYNC.md):
//
//   queue (default) — the MCS-style claim/release core of qlock.h.  Each
//     waiter owns a cache-line-padded claim node, joins with one RMW, spins
//     briefly on its own flag and then parks through the scheduler, and
//     each release grants the head claim directly: FIFO-fair across procs,
//     no shared spin word, no proc ever burned on a waiter.  The RWLock is
//     phase-fair in this mode: a releasing writer admits the whole waiting
//     reader batch before the next writer.
//
//   tas — the paper's protocol kept as the ablation baseline (MPNJ_LOCK=tas):
//     state guarded by a platform test-and-set MutexLock (Anderson backoff
//     per the platform's lock_backoff knob), waiters parked on a deque.
//     The RWLock is writer-preferring in this mode.
//
// The discipline is chosen once per primitive at construction from
// MPNJ_LOCK (or set_lock_discipline), mirroring the MPNJ_QUEUE knob.

namespace mp::threads {

// Which waiting protocol newly constructed primitives use.
enum class LockDiscipline {
  kQueue,  // qlock.h claim/release core (default)
  kTas,    // paper baseline: test-and-set guard + Anderson backoff
};

// Process-wide discipline: MPNJ_LOCK=tas|queue in the environment, else
// kQueue.  set_lock_discipline overrides the environment (benches, tests);
// primitives sample the discipline in their constructor, so flipping it
// does not affect live objects.
LockDiscipline lock_discipline();
void set_lock_discipline(LockDiscipline d);

// Blocking mutual exclusion with direct ownership handoff to the longest
// waiting thread.
class Mutex {
 public:
  explicit Mutex(Scheduler& sched);
  void lock();
  bool try_lock();
  void unlock();
  // Debug accessor (invariant checks): true while some thread holds the
  // mutex.  Only meaningful to a caller that owns the lock or otherwise
  // excludes concurrent lock/unlock.
  bool held() const;

 private:
  Scheduler& sched_;
  const bool tas_;
  // queue discipline: the lock is the claim queue.
  QueueLock q_;
  // tas discipline: spin-guarded state + parked waiters.
  MutexLock spin_;
  bool held_ = false;
  std::deque<ThreadState> waiters_;
};

// Condition variable paired with Mutex (Mesa semantics: re-lock after wake,
// caller re-checks its predicate).
class CondVar {
 public:
  explicit CondVar(Scheduler& sched);
  void wait(Mutex& m);
  void signal();
  void broadcast();

 private:
  Scheduler& sched_;
  const bool tas_;
  MutexLock spin_;  // guards the waiter queue in both disciplines
  WaitList qwaiters_;
  std::deque<ThreadState> waiters_;
};

// Cyclic barrier for `parties` threads.  Safe to reuse immediately: each
// episode is tagged with a generation, and a resumed waiter checks it was
// released by its own generation's flip.
class Barrier {
 public:
  Barrier(Scheduler& sched, int parties);
  void arrive_and_wait();
  long generation() const { return generation_; }

 private:
  Scheduler& sched_;
  const bool tas_;
  MutexLock spin_;
  int parties_;
  int waiting_ = 0;
  long generation_ = 0;
  WaitList qwaiters_;
  std::deque<ThreadState> waiters_;
};

// Counting semaphore.
class Semaphore {
 public:
  Semaphore(Scheduler& sched, long initial);
  void acquire();
  bool try_acquire();
  void release();

 private:
  Scheduler& sched_;
  const bool tas_;
  MutexLock spin_;
  long count_;
  WaitList qwaiters_;
  std::deque<ThreadState> waiters_;
};

// Reader/writer lock.  Queue discipline: phase-fair — once a writer is
// queued new readers wait, and a releasing writer admits the entire waiting
// reader batch before the next writer, so neither side starves.  Tas
// discipline (paper baseline): writer-preferring.
class RWLock {
 public:
  explicit RWLock(Scheduler& sched);
  void lock_shared();
  void unlock_shared();
  void lock_exclusive();
  void unlock_exclusive();

 private:
  Scheduler& sched_;
  const bool tas_;
  MutexLock spin_;
  int readers_ = 0;
  bool writer_ = false;
  WaitList qread_waiters_;
  WaitList qwrite_waiters_;
  std::deque<ThreadState> read_waiters_;
  std::deque<ThreadState> write_waiters_;
};

// One-shot countdown latch: await() returns once count_down() has been
// called `count` times.  The workloads use this as their join mechanism.
class CountdownLatch {
 public:
  CountdownLatch(Scheduler& sched, long count);
  void count_down();
  void await();
  long remaining();

 private:
  Scheduler& sched_;
  const bool tas_;
  MutexLock spin_;
  long count_;
  WaitList qwaiters_;
  std::deque<ThreadState> waiters_;
};

}  // namespace mp::threads
