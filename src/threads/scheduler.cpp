#include "threads/scheduler.h"

#include <algorithm>

#include "arch/panic.h"
#include "fuzz/hooks.h"
#include "metrics/metrics.h"

namespace mp::threads {

using cont::callcc;
using cont::Cont;
using cont::Unit;

Scheduler::Scheduler(Platform& platform, SchedulerConfig config)
    : plat_(platform), cfg_(std::move(config)) {
  for (int i = 0; i < plat_.max_procs(); i++) {
    cores_.push_back(std::make_unique<ProcCore>(i));
  }
  queue_ = cfg_.queue ? std::move(cfg_.queue)
                      : std::make_unique<WorkStealingQueue>();
  std::vector<ProcCore*> core_ptrs;
  core_ptrs.reserve(cores_.size());
  for (auto& c : cores_) core_ptrs.push_back(c.get());
  queue_->bind_cores(std::move(core_ptrs));
  queue_->init(plat_);
  next_id_lock_ = plat_.mutex_lock();
  timer_lock_ = plat_.mutex_lock();
  if (cfg_.preempt_interval_us > 0) {
    plat_.set_signal_handler(Sig::kPreempt, [this] { on_preempt(); });
    plat_.set_preempt_interval(cfg_.preempt_interval_us);
  }
  if (cfg_.hold_procs) {
    // "To obtain good performance ... a client can call acquire_proc
    // repeatedly when it starts up, acquiring as many procs as possible,
    // and hold on to them for the duration" (section 3.1).
    while (plat_.try_acquire_entry([this] { worker_loop(); }, 0)) {
    }
  }
}

Scheduler::~Scheduler() = default;

void Scheduler::worker_loop() {
  // Dispatch loops run with preemption masked; the mask is dropped just
  // before control enters a user thread.
  plat_.mask_signal(Sig::kPreempt);
  dispatch();
}

void Scheduler::dispatch() {
  ProcCore& core = *cores_[static_cast<std::size_t>(plat_.proc_id())];
  for (;;) {
    plat_.work(cfg_.costs.dispatch_instr);
    poll_timers(core);
    maybe_poll_io();
    std::optional<ThreadState> t = queue_->deq(plat_);
    if (!t) {
      if (shutdown_.load(std::memory_order_acquire) || !cfg_.hold_procs) {
        // Figure 3 releases the proc whenever the queue is empty; the
        // held-procs configuration only releases at shutdown.
        plat_.end_idle_poll();
        plat_.unmask_signal(Sig::kPreempt);
        plat_.release_proc();
      }
      MPNJ_METRIC_COUNT(kSchedIdlePolls, 1);
      plat_.begin_idle_poll();
      t = idle_step(core);
      if (!t) continue;
    }
    core.backoff_round = 0;
#if MPNJ_METRICS
    if (metrics::registry().enabled()) {
      const long depth = ready_count_.fetch_sub(1, std::memory_order_relaxed);
      MPNJ_METRIC_COUNT(kSchedDispatches, 1);
      // Depth as observed before this dequeue (clamped: enq/deq races can
      // transiently drive the mirror below the true size).
      MPNJ_METRIC_RECORD(kRunQueueDepth,
                         depth > 0 ? static_cast<std::uint64_t>(depth) : 0);
      if (core.pending_wake_us >= 0) {
        const double lat = plat_.now_us() - core.pending_wake_us;
        MPNJ_METRIC_RECORD(kSchedWakeToDispatchUs,
                           lat > 0 ? static_cast<std::uint64_t>(lat) : 0);
      }
    }
    core.pending_wake_us = -1.0;
#endif
    plat_.end_idle_poll();
    plat_.set_datum(static_cast<Datum>(t->id));
    if (cfg_.tracer) {
      cfg_.tracer->record(plat_, TraceKind::kDispatch, t->id);
    }
    plat_.unmask_signal(Sig::kPreempt);
    cont::fire_preloaded(std::move(t->k));
  }
}

namespace {
// Bounded exponential idle backoff: the first rounds keep the seed's cheap
// busy poll (lowest wakeup latency while work is imminent), then the park
// bound doubles from kIdleWaitBaseUs up to kIdleWaitMaxUs.  Parks are woken
// early by wake_one; the cap is a liveness backstop, bounding the cost of
// any wakeup the protocol could ever fail to deliver and the latency a
// sleeping proc adds to a stop-the-world on platforms without ports.
constexpr int kIdleSpinRounds = 8;
constexpr double kIdleWaitBaseUs = 4;
constexpr double kIdleWaitMaxUs = 2000;
// Busy procs drain reactor-ready fds at least this often, so I/O waiters
// wake even when no proc ever goes idle.
constexpr double kIoPollIntervalUs = 200;
// How long a busy dispatch loop may trust its cached copy of the shared
// next-timer deadline before re-reading it (parks always re-read).
constexpr double kTimerRefreshUs = 25;
}  // namespace

void Scheduler::poll_timers(ProcCore& core) {
  const double now = plat_.now_us();
  if (now >= core.timer_refresh_us) {
    core.cached_deadline_us = next_deadline_.load(std::memory_order_acquire);
    core.timer_refresh_us = now + kTimerRefreshUs;
  }
  if (now >= core.cached_deadline_us) {
    run_expired_timers();
    core.cached_deadline_us = next_deadline_.load(std::memory_order_acquire);
  }
}

std::optional<ThreadState> Scheduler::idle_step(ProcCore& core) {
  IdleWaiter* w = acquire_idle_waiter();
  if (w != nullptr && w->poll() > 0) {
    release_idle_waiter();
    core.backoff_round = 0;  // woke work; re-attempt the dequeue
    return std::nullopt;
  }
  const int round = ++core.backoff_round;
  if (round <= kIdleSpinRounds) {
    if (w != nullptr) release_idle_waiter();
    plat_.work(cfg_.costs.poll_instr);
    return std::nullopt;
  }
  MPNJ_METRIC_COUNT(kSchedIdleBackoff, 1);
  const int shift = std::min(round - kIdleSpinRounds - 1, 30);
  double max_us = std::min(kIdleWaitBaseUs * static_cast<double>(1u << shift),
                           kIdleWaitMaxUs);
  // Never sleep past the next timer deadline: parks re-read the shared
  // deadline (the per-proc cursor may be stale by kTimerRefreshUs).
  const double deadline = next_deadline_.load(std::memory_order_acquire);
  if (deadline < std::numeric_limits<double>::infinity()) {
    max_us = std::min(max_us, std::max(deadline - plat_.now_us(), 0.0));
  }
  if (max_us <= 0) {
    if (w != nullptr) release_idle_waiter();
    plat_.work(cfg_.costs.poll_instr);
    return std::nullopt;
  }
  // Reactor election: exactly one idle proc blocks inside the reactor's
  // kernel wait (it owns the fd set); everyone else parks on its own port
  // and is woken individually by wake_one.
  std::optional<ThreadState> found;
  if (w != nullptr) {
    int expect = -1;
    if (io_waiter_proc_.compare_exchange_strong(expect, core.id,
                                                std::memory_order_seq_cst)) {
      found = park_on(core, ParkState::kParkedReactor, w, max_us);
      io_waiter_proc_.store(-1, std::memory_order_seq_cst);
    } else {
      found = park_on(core, ParkState::kParkedPort, nullptr, max_us);
    }
    release_idle_waiter();
  } else {
    found = park_on(core, ParkState::kParkedPort, nullptr, max_us);
  }
  plat_.work(cfg_.costs.poll_instr);
  return found;
}

std::optional<ThreadState> Scheduler::park_on(ProcCore& core, ParkState venue,
                                              IdleWaiter* w, double max_us) {
#if MPNJ_METRICS
  core.pending_wake_us = -1.0;  // a wake that led to no dispatch expires
#endif
  core.park_state.store(venue, std::memory_order_seq_cst);
  parked_count_.fetch_add(1, std::memory_order_seq_cst);
  // Re-check destructively: wake_one enqueues before scanning park states,
  // so either this dequeue sees the new work or the scan sees us parked —
  // the wakeup cannot fall between.
  if (std::optional<ThreadState> t = queue_->deq(plat_)) {
    core.park_state.exchange(ParkState::kRunning, std::memory_order_seq_cst);
    parked_count_.fetch_sub(1, std::memory_order_seq_cst);
    return t;
  }
  MPNJ_METRIC_COUNT(kSchedParkWaits, 1);
#if MPNJ_METRICS
  const double park_start = plat_.now_us();
#endif
  bool woke = false;
  if (venue == ParkState::kParkedReactor) {
    woke = w->wait(max_us) > 0;
  } else {
    plat_.park_proc(max_us);
  }
  const ParkState prev =
      core.park_state.exchange(ParkState::kRunning, std::memory_order_seq_cst);
  parked_count_.fetch_sub(1, std::memory_order_seq_cst);
#if MPNJ_METRICS
  const double parked_us = plat_.now_us() - park_start;
  MPNJ_METRIC_RECORD(kSchedParkUs,
                     parked_us > 0 ? static_cast<std::uint64_t>(parked_us) : 0);
#endif
  if (prev == ParkState::kWakePending) {
    MPNJ_METRIC_COUNT(kSchedParkWakeups, 1);
#if MPNJ_METRICS
    core.pending_wake_us = core.wake_posted_us.load(std::memory_order_relaxed);
#endif
    woke = true;
  }
  if (woke) core.backoff_round = 0;
  return std::nullopt;
}

void Scheduler::wake_one() {
  // Figure 3 mode (hold_procs=false) keeps no idle procs to wake: empty
  // procs release themselves and fork re-acquires.
  if (!cfg_.hold_procs) return;
  // The enqueue this wake follows must be ordered before the parked-state
  // reads (the other half of park_on's publish/re-check).  A seq_cst RMW on
  // parked_count_ is both the Dekker store-load barrier and the fast-path
  // read: park_on increments with a seq_cst RMW on the same word, so either
  // this read observes the parker (and the scan finds it) or the parker's
  // increment reads from this RMW and its queue re-check sees the enqueue.
  // (An atomic_thread_fence would also do, but TSan does not model fences.)
  if (parked_count_.fetch_add(0, std::memory_order_seq_cst) == 0) return;
  // Fuzz choice point: which core the claim scan starts at.  Rotating the
  // scan picks a different parked proc to wake, reordering every wakeup
  // downstream of this enqueue.
  const std::size_t rot =
      fuzz::pick(fuzz::Kind::kWakeScan, cores_.size(), 0);
  for (std::size_t i = 0; i < cores_.size(); i++) {
    ProcCore& c = *cores_[(i + rot) % cores_.size()];
    ParkState st = c.park_state.load(std::memory_order_seq_cst);
    if (st != ParkState::kParkedPort && st != ParkState::kParkedReactor) {
      continue;
    }
    // Stamp before the claim so the sleeper always reads a valid time.
    c.wake_posted_us.store(plat_.now_us(), std::memory_order_relaxed);
    if (!c.park_state.compare_exchange_strong(st, ParkState::kWakePending,
                                              std::memory_order_seq_cst)) {
      continue;  // raced with the sleeper or another waker; try the next
    }
    if (st == ParkState::kParkedReactor) {
      if (IdleWaiter* w = acquire_idle_waiter()) {
        w->notify();
        release_idle_waiter();
      }
    } else {
      plat_.unpark_proc(c.id);
    }
    return;  // exactly one proc woken
  }
}

void Scheduler::wake_all() {
  for (auto& cp : cores_) {
    ProcCore& c = *cp;
    ParkState st = c.park_state.load(std::memory_order_seq_cst);
    if (st != ParkState::kParkedPort && st != ParkState::kParkedReactor) {
      continue;
    }
    c.wake_posted_us.store(plat_.now_us(), std::memory_order_relaxed);
    if (!c.park_state.compare_exchange_strong(st, ParkState::kWakePending,
                                              std::memory_order_seq_cst)) {
      continue;
    }
    if (st == ParkState::kParkedReactor) {
      if (IdleWaiter* w = acquire_idle_waiter()) {
        w->notify();
        release_idle_waiter();
      }
    } else {
      plat_.unpark_proc(c.id);
    }
  }
}

IdleWaiter* Scheduler::acquire_idle_waiter() {
  // Common case (no reactor): one relaxed load, no shared-line traffic.
  if (idle_waiter_.load(std::memory_order_relaxed) == nullptr) return nullptr;
  idle_waiter_users_.fetch_add(1, std::memory_order_seq_cst);
  IdleWaiter* w = idle_waiter_.load(std::memory_order_seq_cst);
  if (w == nullptr) {
    idle_waiter_users_.fetch_sub(1, std::memory_order_seq_cst);
  }
  return w;
}

void Scheduler::release_idle_waiter() {
  idle_waiter_users_.fetch_sub(1, std::memory_order_seq_cst);
}

void Scheduler::set_idle_waiter(IdleWaiter* w) {
  IdleWaiter* old = idle_waiter_.exchange(w, std::memory_order_seq_cst);
  if (old == nullptr || old == w) return;
  // Quiesce: a dispatch loop that acquired `old` either finishes its call
  // soon (waits are bounded) or is blocked inside wait(); keep kicking it
  // until the user count drains, after which `old` may be destroyed.
  while (idle_waiter_users_.load(std::memory_order_seq_cst) > 0) {
    old->notify();
    plat_.work(10);
  }
}

void Scheduler::maybe_poll_io() {
  if (idle_waiter_.load(std::memory_order_relaxed) == nullptr) return;
  const double now = plat_.now_us();
  double next = next_io_poll_us_.load(std::memory_order_relaxed);
  if (now < next) return;
  if (!next_io_poll_us_.compare_exchange_strong(next, now + kIoPollIntervalUs,
                                                std::memory_order_relaxed)) {
    return;  // another proc took this poll slot
  }
  if (IdleWaiter* w = acquire_idle_waiter()) {
    w->poll();
    release_idle_waiter();
  }
}

void Scheduler::fork(std::function<void()> child, SpawnOpts opts) {
  plat_.work(cfg_.costs.fork_instr);
  plat_.mask_signal(Sig::kPreempt);
  MPNJ_METRIC_COUNT(kSchedForks, 1);
  live_.fetch_add(1, std::memory_order_acq_rel);
  // The callcc body is the child, so the requested stack class is simply the
  // class of the fresh segment the body boots on; every later capture the
  // child makes inherits it.
  callcc_on<Unit>(
      opts.stack,
      [this, opts, child = std::move(child)](Cont<Unit> parent) mutable
      -> Unit {
        const int parent_id = static_cast<int>(plat_.get_datum());
        // Move the parent to a freshly acquired proc if one is available;
        // otherwise block it on the ready queue (Figure 3).
        if (!plat_.try_acquire_proc(parent,
                                    static_cast<Datum>(parent_id))) {
          reschedule(ThreadState{std::move(parent).take_ref(), parent_id});
        }
        // This proc becomes the child thread.
        plat_.lock(next_id_lock_);
        const int my_id = next_id_++;
        plat_.unlock(next_id_lock_);
        plat_.set_datum(static_cast<Datum>(my_id));
        cont::set_stack_owner(my_id, opts.name);
        if (cfg_.tracer) {
          cfg_.tracer->record(plat_, TraceKind::kFork, parent_id, my_id);
        }
        plat_.unmask_signal(Sig::kPreempt);
        try {
          child();
        } catch (const cont::ThreadCancelled&) {
          // Cancelled at a suspension point: the thread's frames have been
          // unwound; retire it like a normal exit.
        }
        exit_thread();
      });
  // The parent resumes here, possibly on a different proc.
}

void Scheduler::yield() {
  // Mask before charging the yield cost: a preempt landing inside the
  // charge would run its handler (which yields again) on top of this
  // frame, and under a preempt storm — quantum shorter than the dispatch
  // cost — that nesting is unbounded and overflows the thread stack.  The
  // pending preempt is not lost; it delivers at the next unmasked charge.
  plat_.mask_signal(Sig::kPreempt);
  plat_.work(cfg_.costs.yield_instr);
  MPNJ_METRIC_COUNT(kSchedYields, 1);
  if (cfg_.tracer) {
    cfg_.tracer->record(plat_, TraceKind::kYield,
                        static_cast<int>(plat_.get_datum()));
  }
  callcc<Unit>([this](Cont<Unit> k) -> Unit {
    const int my_id = static_cast<int>(plat_.get_datum());
    k.preload(Unit{});
    reschedule(ThreadState{std::move(k).take_ref(), my_id});
    dispatch();
  });
}

int Scheduler::id() { return static_cast<int>(plat_.get_datum()); }

void Scheduler::exit_thread() {
  plat_.mask_signal(Sig::kPreempt);
  if (cfg_.tracer) {
    cfg_.tracer->record(plat_, TraceKind::kExit,
                        static_cast<int>(plat_.get_datum()));
  }
  live_.fetch_sub(1, std::memory_order_acq_rel);
  dispatch();
}

void Scheduler::suspend(const std::function<void(ThreadState)>& park) {
  plat_.mask_signal(Sig::kPreempt);
  callcc<Unit>([&, this](Cont<Unit> k) -> Unit {
    const int my_id = static_cast<int>(plat_.get_datum());
    k.preload(Unit{});
    park(ThreadState{std::move(k).take_ref(), my_id});
    // Once parked the thread may already be running on another proc; this
    // proc moves on.
    dispatch();
  });
}

void Scheduler::reschedule(ThreadState t) {
#if MPNJ_METRICS
  if (metrics::registry().enabled()) {
    ready_count_.fetch_add(1, std::memory_order_relaxed);
  }
#endif
  queue_->enq(plat_, std::move(t));
  // Every wakeup source — sync.cpp reschedules, CML offer commits, reactor
  // callbacks, timer fires — funnels through this enqueue, so the single
  // wake_one here is the whole targeted-wakeup protocol's entry point.
  wake_one();
}

void Scheduler::cancel(ThreadState t) {
  MPNJ_CHECK(t.id != 0, "the root thread cannot be cancelled");
  cont::mark_cancel(t.k);
  reschedule(std::move(t));
}

void Scheduler::dispatch_from_blocked() {
  plat_.mask_signal(Sig::kPreempt);
  dispatch();
}

// ----- timers -----

void Scheduler::at(double deadline_us, std::function<void()> fn) {
  plat_.lock(timer_lock_);
  const double previous = next_deadline_.load(std::memory_order_relaxed);
  timers_.push_back(Timer{deadline_us, std::move(fn)});
  std::push_heap(timers_.begin(), timers_.end(),
                 [](const Timer& a, const Timer& b) {
                   return a.deadline > b.deadline;  // min-heap
                 });
  const double earliest = timers_.front().deadline;
  next_deadline_.store(earliest, std::memory_order_release);
  plat_.unlock(timer_lock_);
  if (earliest < previous) {
    // The horizon moved closer: a parked proc may be sleeping past it.
    // Waking one is enough — it re-reads the deadline before re-parking.
    wake_one();
  }
}

void Scheduler::run_expired_timers() {
  // Entered from dispatch with kPreempt masked.
  const double now = plat_.now_us();
  std::vector<std::function<void()>> due;
  plat_.lock(timer_lock_);
  while (!timers_.empty() && timers_.front().deadline <= now) {
    std::pop_heap(timers_.begin(), timers_.end(),
                  [](const Timer& a, const Timer& b) {
                    return a.deadline > b.deadline;
                  });
    due.push_back(std::move(timers_.back().fn));
    timers_.pop_back();
  }
  next_deadline_.store(timers_.empty()
                           ? std::numeric_limits<double>::infinity()
                           : timers_.front().deadline,
                       std::memory_order_release);
  plat_.unlock(timer_lock_);
  MPNJ_METRIC_COUNT(kSchedTimerFires, due.size());
  for (auto& fn : due) fn();
}

void Scheduler::sleep_until(double deadline_us) {
  if (plat_.now_us() >= deadline_us) {
    yield();  // already due: still a scheduling point
    return;
  }
  suspend([&](ThreadState t) {
    at(deadline_us, [this, t = std::move(t)]() mutable {
      reschedule(std::move(t));
    });
  });
}

void Scheduler::sleep_for(double us) { sleep_until(plat_.now_us() + us); }

void Scheduler::on_preempt() {
  if (shutdown_.load(std::memory_order_acquire)) return;
  MPNJ_METRIC_COUNT(kSchedPreempts, 1);
  if (cfg_.tracer) {
    cfg_.tracer->record(plat_, TraceKind::kPreempt,
                        static_cast<int>(plat_.get_datum()));
  }
  yield();
}

void Scheduler::run(Platform& platform, SchedulerConfig config,
                    const std::function<void(Scheduler&)>& main_fn) {
  platform.run([&] {
    Scheduler sched(platform, std::move(config));
    sched.live_.fetch_add(1);  // the root thread
    platform.set_datum(0);
    cont::set_stack_owner(0, "main");
    main_fn(sched);
    sched.live_.fetch_sub(1);
    // Drain: keep yielding (which also lends this proc to ready threads)
    // until every forked thread has finished.
    long last_live = sched.live_.load();
    long stall = 0;
    while (sched.live_.load(std::memory_order_acquire) > 0) {
      sched.yield();
      const long now_live = sched.live_.load();
      stall = (now_live == last_live) ? stall + 1 : 0;
      last_live = now_live;
      MPNJ_CHECK(stall < 5'000'000,
                 "thread deadlock: forked threads never completed");
    }
    sched.shutdown_.store(true, std::memory_order_release);
    // Parked procs would otherwise only notice shutdown when their bounded
    // parks expire; unpark everyone so release is prompt.
    sched.wake_all();
    // Wait until the held worker procs have observed shutdown and released
    // themselves; the scheduler must outlive every dispatch loop.
    while (platform.active_procs() > 1) platform.work(10);
  });
}

}  // namespace mp::threads
