#pragma once

#include <atomic>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "metrics/metrics.h"
#include "threads/proc_core.h"
#include "threads/queue.h"
#include "threads/trace.h"

namespace mp::threads {

// Instruction-count charges for scheduler operations (converted to virtual
// time by the simulator's machine model; free on native hardware where the
// real work is the cost).  These model the ML-side bookkeeping around the
// runtime primitives, whose costs (callcc, locks, queue ops) are charged by
// the layers below.
struct SchedCosts {
  double fork_instr = 60;      // id assignment + closure setup
  double yield_instr = 25;     // callcc + reschedule bookkeeping
  double dispatch_instr = 20;  // per dequeue attempt
  double poll_instr = 40;      // one empty-queue polling iteration
};

// Pluggable idle-wait hook: the src/io reactor's poll surface.  At most one
// idle proc at a time — the winner of the scheduler's reactor election —
// blocks in wait(); every other idle proc parks on its own per-proc port
// and is woken by the scheduler's targeted wake_one.  All methods may still
// be called from any proc concurrently (busy procs call poll() on a
// cadence); wait() must bound its own blocking and keep both ends at
// platform safe points.
class IdleWaiter {
 public:
  virtual ~IdleWaiter() = default;
  // Dispatch any ready events now, without blocking.  Returns the number
  // of waiters woken (rescheduled threads, committed event offers).
  virtual int poll() = 0;
  // Block until an event arrives, notify() is called, or roughly `max_us`
  // elapses; returns the number of waiters woken.
  virtual int wait(double max_us) = 0;
  // Interrupt a concurrent wait() from any thread (async-thread-safe).
  virtual void notify() = 0;
};

struct SchedulerConfig {
  // Queue discipline; null selects the default: lock-free per-proc
  // work-stealing deques (WorkStealingQueue).  The paper's evaluated
  // configuration (distributed lock-per-proc run queues) and the Figure 3
  // central queue remain available for ablation — see workloads/runner.cpp
  // make_queue.
  std::unique_ptr<ReadyQueue> queue;
  // Acquire as many procs as possible at startup and hold them for the
  // duration (section 3.1's advice; what the evaluation does).  When false,
  // the scheduler behaves exactly like Figure 3: procs are acquired by fork
  // and released whenever the ready queue is empty.
  bool hold_procs = true;
  // Signal-based preemption interval; 0 disables (Figure 3 has none, the
  // evaluated package uses it).
  double preempt_interval_us = 0;
  SchedCosts costs;
  // Optional scheduling-event recorder (threads/trace.h); must outlive the
  // scheduler.  Deterministic on the simulator backend.
  Tracer* tracer = nullptr;
};

// The MP thread package (paper Figure 3, plus the evaluation section's
// distributed run queue and signal-based preemption): fork / yield / id on
// top of Proc, Lock and callcc.  The current thread's id lives in the
// per-proc datum.
class Scheduler {
 public:
  Scheduler(Platform& platform, SchedulerConfig config);
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Per-thread creation options (the SpawnOpts overload of fork).  The
  // stack class picks the thread's slot footprint (cont/stack_config.h):
  // kLarge (default) for ordinary bodies, kSmall for fleets of mostly-parked
  // threads — per-connection readers/writers, timers — where slot size is
  // what bounds the live-thread population.  Replacement segments inherit
  // the class, so the choice follows the thread for its whole life.  `name`
  // labels the thread in the stack-overflow fault report; it is copied at
  // fork, so any lifetime is fine.
  struct SpawnOpts {
    cont::StackClass stack = cont::StackClass::kLarge;
    const char* name = nullptr;

    SpawnOpts& with_stack(cont::StackClass c) {
      stack = c;
      return *this;
    }
    SpawnOpts& with_name(const char* n) {
      name = n;
      return *this;
    }
  };

  // --- the THREAD signature (Figure 1) ---
  void fork(std::function<void()> child) { fork(std::move(child), {}); }
  void fork(std::function<void()> child, SpawnOpts opts);
  void yield();
  int id();

  // Terminate the current thread and dispatch another.
  [[noreturn]] void exit_thread();

  // Suspend-and-dispatch support for synchronization primitives (sync.h):
  // park the calling thread, handing its ThreadState to `park` (which
  // typically enqueues it on a waiter list and must release any spin lock it
  // holds), then dispatch another thread.  kPreempt is masked from before
  // `park` runs until the thread is resumed.
  void suspend(const std::function<void(ThreadState)>& park);

  // Move a previously suspended thread back to the ready queue.  Matches
  // the paper's `reschedule`.
  void reschedule(ThreadState t);

  // Cancel a suspended thread whose ThreadState the caller holds (i.e. it
  // is on no other queue): its resume raises cont::ThreadCancelled at the
  // suspension point, unwinding the thread's frames with destructors; the
  // fork wrapper then retires it.  The root thread cannot be cancelled.
  void cancel(ThreadState t);

  // For communication libraries (src/cml): the calling thread has already
  // parked its continuation on waiter queues of its own (Figure 5's send and
  // receive do this while holding channel locks); give the proc to another
  // thread.  kPreempt is masked before dispatching.
  [[noreturn]] void dispatch_from_blocked();

  // ---- timers (extension: timer-driven wakeups, the mechanism section
  // 3.4 suggests for simulating inter-proc alerts) ----

  // Run `fn` once the platform clock reaches `deadline_us`.  The callback
  // executes inside a dispatch loop with preemption masked: it must be
  // brief and must not block (typical body: reschedule a parked thread or
  // commit an event offer).  Resolution is bounded by scheduler activity,
  // which preemption guarantees on busy procs; with hold_procs=false and
  // every proc released, timers do not fire.
  void at(double deadline_us, std::function<void()> fn);
  // Park the calling thread until the platform clock reaches the deadline.
  void sleep_until(double deadline_us);
  void sleep_for(double us);

  // ---- idle waiting (extension: src/io reactor integration) ----

  // Install `w` as the idle-wait hook (nullptr to clear).  Clearing blocks
  // until no dispatch loop still holds a reference to the previous waiter,
  // so the caller may destroy it immediately afterwards.  Callable from any
  // thread of the computation (typically the reactor's constructor).
  void set_idle_waiter(IdleWaiter* w);

  // Number of live threads (root + forked, not yet completed).
  long live_threads() const { return live_.load(std::memory_order_acquire); }

  Platform& platform() { return plat_; }

  // Run `main_fn` as thread 0 of a fresh scheduler on `platform`.  Returns
  // when main_fn has returned AND every forked thread has completed.
  static void run(Platform& platform, SchedulerConfig config,
                  const std::function<void(Scheduler&)>& main_fn);

 private:
  struct Timer {
    double deadline;
    std::function<void()> fn;
  };

  [[noreturn]] void dispatch();
  void worker_loop();
  void on_preempt();
  void poll_timers(ProcCore& core);
  void run_expired_timers();
  IdleWaiter* acquire_idle_waiter();
  void release_idle_waiter();
  void maybe_poll_io();
  // One step of the idle loop: reactor poll, then bounded exponential
  // backoff (spin -> targeted parks).  Uses and advances core.backoff_round;
  // may return a thread found by the park-time re-check, which the caller
  // dispatches.
  std::optional<ThreadState> idle_step(ProcCore& core);
  // Publish `venue`, re-check the queue, then block (bounded) on the proc's
  // port or in the reactor's wait.  The destructive re-check is what closes
  // the sleep/wakeup race: the waker enqueues before scanning park states.
  std::optional<ThreadState> park_on(ProcCore& core, ParkState venue,
                                     IdleWaiter* w, double max_us);
  // Unpark exactly one parked proc (called after every enqueue); no-op when
  // nobody is parked.  wake_all unparks everyone (shutdown).
  void wake_one();
  void wake_all();

  Platform& plat_;
  SchedulerConfig cfg_;
  // Per-proc scheduling cores (proc_core.h): the work-stealing deques, the
  // park/unpark handshakes, and the idle/timer cursors.  Declared before
  // queue_ so any queue that binds them is destroyed while they are alive.
  std::vector<std::unique_ptr<ProcCore>> cores_;
  std::unique_ptr<ReadyQueue> queue_;
  MutexLock next_id_lock_;
  int next_id_ = 1;
  std::atomic<long> live_{0};
  std::atomic<bool> shutdown_{false};

  MutexLock timer_lock_;
  std::vector<Timer> timers_;  // min-heap by deadline
  std::atomic<double> next_deadline_{
      std::numeric_limits<double>::infinity()};

  // Idle-wait hook (null when no reactor is installed).  The user count
  // lets set_idle_waiter quiesce concurrent dispatch loops before the old
  // waiter is destroyed; both sides use seq_cst (idle path only).
  std::atomic<IdleWaiter*> idle_waiter_{nullptr};
  std::atomic<int> idle_waiter_users_{0};
  // The one proc currently electing to block inside the reactor's kernel
  // wait (-1 when none): every other idle proc parks on its own port and is
  // woken by wake_one, so losing the reactor election no longer costs a
  // blind nap.
  std::atomic<int> io_waiter_proc_{-1};
  // Procs currently parked (port or reactor); lets wake_one's common case —
  // every proc busy — skip the core scan with one load.
  std::atomic<int> parked_count_{0};
  // Next platform time a busy dispatch loop drains the reactor, so fds are
  // still serviced while every proc has runnable threads.
  std::atomic<double> next_io_poll_us_{0};

#if MPNJ_METRICS
  // Ready-thread count mirrored outside the queue (the queues' own sizes are
  // lock-protected and differ per discipline); feeds the run-queue-depth
  // histogram at dispatch.  Compiled out with metrics, and skipped at
  // runtime when the registry is disabled.
  std::atomic<long> ready_count_{0};
#endif
};

}  // namespace mp::threads
