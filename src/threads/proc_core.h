#pragma once

#include <atomic>
#include <limits>

#include "arch/cacheline.h"
#include "threads/wsdeque.h"

// The per-proc scheduling core.  Everything one dispatch loop touches on
// its idle path lives here, on its own cache line: the proc's work-stealing
// run deque (used when the WorkStealingQueue discipline is selected), the
// park/unpark handshake state, the idle-backoff round, and the per-proc
// timer cursor that keeps busy dispatch loops off the shared
// next-deadline atomic.
//
// Park/unpark protocol (an eventcount, one per proc).  A proc with nothing
// to run publishes kParkedPort (or kParkedReactor when it is the elected
// reactor poller) with a seq_cst store, re-checks the ready queue, and only
// then blocks — bounded — in Platform::park_proc (or the reactor's wait).
// A waker enqueues first, then scans the cores and claims exactly one
// parked proc by CASing its state to kWakePending before kicking that
// proc's port (or the reactor).  The claim CAS is what makes wakeups
// targeted: N wakers claim at most N distinct sleepers, and nobody
// broadcasts.  Because the seq_cst publish/scan pair means either the
// parker's re-check sees the new work or the waker's scan sees the parked
// state, a wakeup can never be lost; bounded parks make even a reasoning
// error here a latency bug, not a hang.

namespace mp::threads {

enum class ParkState : int {
  kRunning = 0,        // dispatching or running a thread
  kParkedPort,         // blocked (bounded) in Platform::park_proc
  kParkedReactor,      // blocked (bounded) in the io reactor's kernel wait
  kWakePending,        // claimed by a waker; unpark in flight
};

struct alignas(arch::kCacheLine) ProcCore {
  explicit ProcCore(int proc_id) : id(proc_id) {}
  ~ProcCore() {
    while (free_cells != nullptr) {
      ThreadState* next = free_cells->next_free;
      delete free_cells;
      free_cells = next;
    }
  }
  ProcCore(const ProcCore&) = delete;
  ProcCore& operator=(const ProcCore&) = delete;

  const int id;

  // This proc's run deque (WorkStealingQueue discipline): the owner pushes
  // and pops here, other procs steal from the top.
  WsDeque deque;

  // Park/unpark handshake (see the protocol note above).
  std::atomic<ParkState> park_state{ParkState::kRunning};
  // Platform time at which a waker claimed this proc; consumed by the
  // sleeper to feed the wake-to-dispatch latency histogram.
  std::atomic<double> wake_posted_us{-1.0};

  // ---- owner-only fields (only the proc's own dispatch loop) ----

  // Cache of recycled deque cells, chained through ThreadState::next_free.
  // enq allocates from the *enqueuing* proc's cache and a successful deq
  // returns the cell to the *dequeuing* proc's cache, so each list is
  // touched by exactly one OS thread and needs no synchronization; cells
  // simply migrate between cores as threads do.
  ThreadState* free_cells = nullptr;
  int free_cell_count = 0;

  // Consecutive empty dispatch attempts; drives the bounded exponential
  // idle backoff and resets on any dequeue or targeted wake.
  int backoff_round = 0;
  // Wake stamp carried from the park exit to the next dispatch.
  double pending_wake_us = -1.0;
  // Timer cursor: a cached copy of the scheduler's earliest deadline plus
  // the time at which to refresh it, so a busy dispatch loop reads the
  // shared next-deadline atomic on a bounded cadence instead of every
  // iteration.  Staleness is bounded by the refresh interval; parks always
  // re-read the shared value.
  double cached_deadline_us = std::numeric_limits<double>::infinity();
  double timer_refresh_us = 0;
};

}  // namespace mp::threads
