#pragma once

#include <atomic>

#include "arch/cacheline.h"
#include "arch/padded_pool.h"
#include "arch/panic.h"
#include "fuzz/hooks.h"
#include "metrics/metrics.h"
#include "threads/scheduler.h"

// Queue-based (MCS/CLH-style) claim/release core for the thread-level
// synchronization primitives (sync.h) — the scheduler-aware replacement for
// hammering a test-and-set word from every waiter.
//
// The unit of waiting is a cache-line-padded claim node (QNode).  A waiter
// joins a lock's queue with a single RMW (or an O(1) push under a primitive's
// short spin guard), then waits on *its own* node's flag: it spins briefly —
// cache-local, no shared-line traffic — and, if the claim has not been
// granted by then, parks as a thread through Scheduler::suspend, so a waiting
// thread never burns a proc that could be running the holder.  Release is a
// direct FIFO handoff: the releaser grants the head claim with one exchange
// on that node's flag, and a parked grantee re-enters the ready queue through
// the scheduler's reschedule → wake_one targeted-wakeup path (proc_core.h).
//
// Claim protocol (the one spot where the spinner and the granter race):
//
//   waiter                                granter
//   ------                                -------
//   spin on phase == kGranted             phase.exchange(kGranted)
//   ...bounded; give up...                  -> saw kSpin: the waiter will
//   suspend([&](ThreadState t) {               observe the flag, either in
//     n.ts = move(t);                          its spin or in the CAS below
//     CAS(phase, kSpin -> kParked)            -> saw kParked: n.ts is valid
//       success: parked; granter wakes us      (the CAS released it);
//       failure: already granted —             reschedule(move(n.ts))
//         reschedule ourselves
//   })
//
// Either the grant lands before the park CAS (the waiter sees it and requeues
// itself) or the CAS publishes the ThreadState first (the granter consumes
// it).  A wakeup can never be lost, and the granter's last access to the node
// is the exchange/reschedule, so a stack-allocated node is safe for waits
// that do not outlive the waiting frame (every primitive except the mutex's
// holder node, which lives from lock() to unlock() and is pooled).

namespace mp::threads {

// One waiter's claim ticket.  Padded so two claims never share a line.
struct alignas(arch::kCacheLine) QNode {
  enum class Phase : int {
    kSpin = 0,  // waiter is (or will shortly be) spinning on this flag
    kParked,    // waiter parked; ts holds its ThreadState
    kGranted,   // claim granted; a parked waiter has been rescheduled
  };

  std::atomic<QNode*> next{nullptr};  // MCS successor / intrusive wait-list
  std::atomic<Phase> phase{Phase::kSpin};
  ThreadState ts;          // valid only while phase == kParked
  long tag = 0;            // grant-side stamp (barrier generation check)
  QNode* pool_next = nullptr;  // arch::PaddedPool freelist link
};

using QNodePool = arch::PaddedPool<QNode>;

// Bounded own-flag spin before parking.  Short: it only has to cover the
// grant latency of a near-empty critical section; anything longer and
// parking (whose cost the scheduler's targeted wakeup bounds) is cheaper
// than the burned proc time.  Each round charges kClaimSpinInstr so the
// simulator models the wait deterministically.
inline constexpr int kClaimSpinRounds = 24;
inline constexpr double kClaimSpinInstr = 12;

inline QNode* qnode_get() {
  QNode* n = QNodePool::get();
  n->next.store(nullptr, std::memory_order_relaxed);
  n->phase.store(QNode::Phase::kSpin, std::memory_order_relaxed);
  n->tag = 0;
  return n;
}

inline void qnode_put(QNode* n) { QNodePool::put(n); }

// Wait until `n`'s claim is granted: bounded spin on the node's own flag,
// then park through the scheduler.  The caller must already have published
// `n` where a releaser will find it (lock queue / wait list) and must hold
// no spin guard.  Returns with the claim owned.
inline void claim_wait(Scheduler& sched, QNode& n) {
  Platform& p = sched.platform();
  if (p.max_procs() > 1) {
    // With one proc the granter is a thread this proc has to run first;
    // spinning can never succeed, so go straight to the park.
    for (int round = 0; round < kClaimSpinRounds; round++) {
      if (n.phase.load(std::memory_order_acquire) == QNode::Phase::kGranted) {
        return;
      }
      arch::cpu_relax();
      p.work(kClaimSpinInstr);
    }
    if (n.phase.load(std::memory_order_acquire) == QNode::Phase::kGranted) {
      return;
    }
  }
  MPNJ_METRIC_COUNT(kLockParkWaits, 1);
  sched.suspend([&](ThreadState t) {
    n.ts = std::move(t);
    if (fuzz::injected(fuzz::InjectedBug::kQlockParkRace)) {
      // Deliberately re-introduced pre-PR-6 bug (MPNJ_FUZZ_INJECT): park
      // with a check-then-store instead of the phase CAS.  The check and
      // the store are separated only by a fuzz cost point, so on the
      // simulator the window is closed until the fuzzer injects jitter at
      // exactly this decision — then the granter's exchange lands inside
      // it, sees kSpin, assumes the waiter will notice, and moves on; the
      // store overwrites kGranted with kParked and the waiter sleeps
      // forever (lost wakeup -> deadlock/hang).
      if (n.phase.load(std::memory_order_acquire) == QNode::Phase::kSpin) {
        const double jitter_us = fuzz::point(fuzz::Kind::kCas);
        if (jitter_us > 0) p.work(jitter_us * 100.0);
        n.phase.store(QNode::Phase::kParked, std::memory_order_release);
      } else {
        sched.reschedule(std::move(n.ts));
      }
      return;
    }
    QNode::Phase expect = QNode::Phase::kSpin;
    p.charge_cas();
    if (!n.phase.compare_exchange_strong(expect, QNode::Phase::kParked,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
      // The grant landed between our spin and the CAS: the claim is already
      // ours; re-enter the ready queue instead of sleeping on it.
      sched.reschedule(std::move(n.ts));
    }
  });
}

// Grant `n`'s claim (direct handoff).  The caller must have removed `n`
// from whatever queue it was on and must hold no spin guard; after the
// exchange the node belongs to the waiter again and must not be touched.
inline void claim_grant(Scheduler& sched, QNode& n) {
  Platform& p = sched.platform();
  p.charge_lock_handoff();
  const QNode::Phase was =
      n.phase.exchange(QNode::Phase::kGranted, std::memory_order_acq_rel);
  if (was == QNode::Phase::kParked) {
    MPNJ_METRIC_COUNT(kLockHandoffs, 1);
    sched.reschedule(std::move(n.ts));
  }
}

// Intrusive FIFO list of claim nodes, chained through QNode::next.  Used by
// the higher primitives (condvar, semaphore, rwlock, barrier, latch) for
// their waiter sets; externally synchronized by the primitive's short spin
// guard, so the link accesses are plain relaxed stores/loads.
class WaitList {
 public:
  bool empty() const { return head_ == nullptr; }
  int size() const { return count_; }

  void push(QNode* n) {
    n->next.store(nullptr, std::memory_order_relaxed);
    if (tail_ == nullptr) {
      head_ = tail_ = n;
    } else {
      tail_->next.store(n, std::memory_order_relaxed);
      tail_ = n;
    }
    count_++;
  }

  QNode* pop() {
    QNode* n = head_;
    if (n == nullptr) return nullptr;
    head_ = n->next.load(std::memory_order_relaxed);
    if (head_ == nullptr) tail_ = nullptr;
    count_--;
    return n;
  }

  // Steal the whole list (barrier flip, broadcast, latch release); the
  // receiver grants outside the guard.
  WaitList take() {
    WaitList out;
    out.head_ = head_;
    out.tail_ = tail_;
    out.count_ = count_;
    head_ = tail_ = nullptr;
    count_ = 0;
    return out;
  }

 private:
  QNode* head_ = nullptr;
  QNode* tail_ = nullptr;
  int count_ = 0;
};

// The MCS-style queue mutex: the lock *is* the claim queue.  tail_ points at
// the most recent claim; a null tail_ is an unheld lock.  Acquire joins with
// one exchange; release either retires the queue (CAS tail_ back to null) or
// hands the lock to the successor claim directly — FIFO-fair across procs by
// construction, with each waiter spinning only on its own padded node.
class QueueLock {
 public:
  QueueLock() = default;
  QueueLock(const QueueLock&) = delete;
  QueueLock& operator=(const QueueLock&) = delete;
  ~QueueLock() {
    MPNJ_CHECK(holder_ == nullptr && tail_.load(std::memory_order_relaxed) == nullptr,
               "QueueLock destroyed while held or contended");
  }

  void init(Scheduler& s) { sched_ = &s; }

  // Debug accessor: true while some thread holds the lock.  Only meaningful
  // to a caller that owns the lock or otherwise excludes lock/unlock.
  bool held() const { return holder_ != nullptr; }

  void lock() {
    Platform& p = sched_->platform();
    QNode* n = qnode_get();
    p.charge_cas();
    QNode* prev = tail_.exchange(n, std::memory_order_acq_rel);
    MPNJ_METRIC_COUNT(kLockAcquires, 1);
    if (prev == nullptr) {  // uncontended: one RMW and we own it
      holder_ = n;
      stamp_acquired();
      return;
    }
    MPNJ_METRIC_COUNT(kLockContended, 1);
#if MPNJ_METRICS
    const bool timed = metrics::registry().enabled();
    const double wait_from = timed ? p.now_us() : 0;
#endif
    prev->next.store(n, std::memory_order_release);
    claim_wait(*sched_, *n);
    holder_ = n;
    stamp_acquired();
#if MPNJ_METRICS
    if (timed) {
      const double waited = p.now_us() - wait_from;
      MPNJ_METRIC_RECORD(kLockWaitUs,
                         waited > 0 ? static_cast<std::uint64_t>(waited) : 0);
    }
#endif
  }

  bool try_lock() {
    Platform& p = sched_->platform();
    if (tail_.load(std::memory_order_relaxed) != nullptr) return false;
    QNode* n = qnode_get();
    QNode* expect = nullptr;
    p.charge_cas();
    if (tail_.compare_exchange_strong(expect, n, std::memory_order_acq_rel)) {
      MPNJ_METRIC_COUNT(kLockAcquires, 1);
      holder_ = n;
      stamp_acquired();
      return true;
    }
    qnode_put(n);
    return false;
  }

  void unlock() {
    Platform& p = sched_->platform();
    MPNJ_CHECK(holder_ != nullptr, "QueueLock::unlock of an unheld lock");
    QNode* n = holder_;
    holder_ = nullptr;
#if MPNJ_METRICS
    if (acquired_us_ >= 0) {
      const double held = p.now_us() - acquired_us_;
      MPNJ_METRIC_RECORD(kLockHoldUs,
                         held > 0 ? static_cast<std::uint64_t>(held) : 0);
      acquired_us_ = -1;
    }
#endif
    QNode* next = n->next.load(std::memory_order_acquire);
    if (next == nullptr) {
      QNode* expect = n;
      p.charge_cas();
      if (tail_.compare_exchange_strong(expect, nullptr,
                                        std::memory_order_acq_rel)) {
        qnode_put(n);  // no waiters: the queue is retired
        return;
      }
      // A claimant won the tail exchange but has not linked itself yet; the
      // window is the two instructions between its exchange and its next
      // store, so this wait is short and bounded.
      while ((next = n->next.load(std::memory_order_acquire)) == nullptr) {
        arch::cpu_relax();
        p.work(kClaimSpinInstr);
      }
    }
    claim_grant(*sched_, *next);
    qnode_put(n);
  }

 private:
  void stamp_acquired() {
#if MPNJ_METRICS
    acquired_us_ = metrics::registry().enabled() ? sched_->platform().now_us()
                                                 : -1;
#endif
  }

  Scheduler* sched_ = nullptr;
  std::atomic<QNode*> tail_{nullptr};
  // Owner-only: the holder's claim node (granted but not yet released) and
  // its acquisition stamp for the hold-time histogram.
  QNode* holder_ = nullptr;
#if MPNJ_METRICS
  double acquired_us_ = -1;
#endif
};

}  // namespace mp::threads
