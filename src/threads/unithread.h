#pragma once

#include <deque>
#include <functional>
#include <utility>

#include "arch/rng.h"
#include "cont/cont.h"

// The paper's Figure 1: a user-level thread package for *uniprocessor*
// SML/NJ, built from nothing but first-class continuations and a queue.
// No locks, no platform — elementary exclusion is trivial on a
// uniprocessor (Wand).  The package is parameterized by the queuing
// discipline, the paper's point being that "thread scheduling policy can
// be changed simply by varying the functor's argument".
//
// Runs standalone on the calling thread (it brings its own proc harness),
// or inside a Platform proc.

namespace mp::threads {

// Queue disciplines for UniThread (the QUEUE functor argument).  A
// discipline stores (continuation, id) pairs; deq returns them in its own
// order.
class UniFifo {
 public:
  void enq(std::pair<cont::ContRef, int> t) { q_.push_back(std::move(t)); }
  bool empty() const { return q_.empty(); }
  std::pair<cont::ContRef, int> deq() {
    auto t = std::move(q_.front());
    q_.pop_front();
    return t;
  }

 private:
  std::deque<std::pair<cont::ContRef, int>> q_;
};

class UniLifo {
 public:
  void enq(std::pair<cont::ContRef, int> t) { q_.push_back(std::move(t)); }
  bool empty() const { return q_.empty(); }
  std::pair<cont::ContRef, int> deq() {
    auto t = std::move(q_.back());
    q_.pop_back();
    return t;
  }

 private:
  std::deque<std::pair<cont::ContRef, int>> q_;
};

class UniRandom {
 public:
  explicit UniRandom(std::uint64_t seed = 42) : rng_(seed) {}
  void enq(std::pair<cont::ContRef, int> t) { q_.push_back(std::move(t)); }
  bool empty() const { return q_.empty(); }
  std::pair<cont::ContRef, int> deq() {
    const std::size_t i = rng_.below(q_.size());
    std::swap(q_[i], q_.back());
    auto t = std::move(q_.back());
    q_.pop_back();
    return t;
  }

 private:
  std::deque<std::pair<cont::ContRef, int>> q_;
  arch::Rng rng_;
};

template <typename Queue = UniFifo>
class UniThread {
 public:
  explicit UniThread(Queue queue = Queue()) : ready_(std::move(queue)) {}

  // fork: start a new thread running `child`, giving it a fresh id; the
  // parent is placed on the ready queue (Figure 1's fork runs the child
  // immediately).
  void fork(std::function<void()> child) {
    cont::callcc<cont::Unit>(
        [this, child = std::move(child)](cont::Cont<cont::Unit> parent)
            mutable -> cont::Unit {
          parent.preload(cont::Unit{});
          ready_.enq({std::move(parent).take_ref(), current_id_});
          current_id_ = next_id_++;
          child();
          dispatch();
          return cont::Unit{};  // unreachable
        });
  }

  // yield: temporarily give the processor to another thread.
  void yield() {
    cont::callcc<cont::Unit>([this](cont::Cont<cont::Unit> k) -> cont::Unit {
      k.preload(cont::Unit{});
      ready_.enq({std::move(k).take_ref(), current_id_});
      dispatch();
      return cont::Unit{};  // unreachable
    });
  }

  // id: the current thread's identifier (the root thread is 0).
  int id() const { return current_id_; }

  // Run `main_fn` as thread 0; returns when every thread has finished.
  // Standalone: establishes its own proc context on the calling thread.
  static void run(const std::function<void(UniThread&)>& main_fn,
                  Queue queue = Queue()) {
    cont::ExecContext exec;
    arch::Context idle_ctx;
    exec.idle_ctx = &idle_ctx;
    cont::ExecContext* saved = cont::current_exec();
    cont::set_current_exec(&exec);
    UniThread self(std::move(queue));
    cont::run_from_idle(
        cont::make_entry([&] {
          main_fn(self);
          self.dispatch();  // drain remaining threads, then fall out
        }),
        exec);
    cont::set_current_exec(saved);
  }

  // Dispatch the next ready thread; with an empty queue, control leaves
  // the package (the analogue of Figure 1's unhandled Queue.Empty).
  [[noreturn]] void dispatch() {
    if (ready_.empty()) cont::exit_to_idle();
    auto [k, tid] = ready_.deq();
    current_id_ = tid;
    cont::fire_preloaded(std::move(k));
  }

 private:
  Queue ready_;
  int current_id_ = 0;
  int next_id_ = 1;
};

}  // namespace mp::threads
