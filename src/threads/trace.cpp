#include "threads/trace.h"

#include <cstdio>

namespace mp::threads {

const char* trace_kind_name(TraceKind k) {
  switch (k) {
    case TraceKind::kFork:
      return "fork";
    case TraceKind::kYield:
      return "yield";
    case TraceKind::kExit:
      return "exit";
    case TraceKind::kDispatch:
      return "dispatch";
    case TraceKind::kPreempt:
      return "preempt";
  }
  return "?";
}

std::string Tracer::format() const {
  std::string out;
  char line[128];
  for (const auto& e : snapshot()) {
    std::snprintf(line, sizeof(line), "%12.2fus proc%-3d thr%-5d %-8s %d\n",
                  e.t, e.proc, e.thread, trace_kind_name(e.kind), e.arg);
    out += line;
  }
  return out;
}

}  // namespace mp::threads
