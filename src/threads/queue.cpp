#include <algorithm>

#include "fuzz/hooks.h"
#include "metrics/metrics.h"
#include "threads/queue.h"

namespace mp::threads {

void CentralFifoQueue::enq(Platform& p, ThreadState t) {
  p.lock(lock_);
  q_.push_back(std::move(t));
  p.unlock(lock_);
}

std::optional<ThreadState> CentralFifoQueue::deq(Platform& p) {
  p.lock(lock_);
  if (q_.empty()) {
    p.unlock(lock_);
    return std::nullopt;
  }
  ThreadState t = std::move(q_.front());
  q_.pop_front();
  p.unlock(lock_);
  return t;
}

void CentralLifoQueue::enq(Platform& p, ThreadState t) {
  p.lock(lock_);
  q_.push_back(std::move(t));
  p.unlock(lock_);
}

std::optional<ThreadState> CentralLifoQueue::deq(Platform& p) {
  p.lock(lock_);
  if (q_.empty()) {
    p.unlock(lock_);
    return std::nullopt;
  }
  ThreadState t = std::move(q_.back());
  q_.pop_back();
  p.unlock(lock_);
  return t;
}

void RandomQueue::enq(Platform& p, ThreadState t) {
  p.lock(lock_);
  q_.push_back(std::move(t));
  p.unlock(lock_);
}

std::optional<ThreadState> RandomQueue::deq(Platform& p) {
  p.lock(lock_);
  if (q_.empty()) {
    p.unlock(lock_);
    return std::nullopt;
  }
  const std::size_t i = p.rng().below(q_.size());
  std::swap(q_[i], q_.back());
  ThreadState t = std::move(q_.back());
  q_.pop_back();
  p.unlock(lock_);
  return t;
}

namespace {

bool entry_less(const int pa, const std::uint64_t sa, const int pb,
                const std::uint64_t sb) {
  // Max-heap ordering: lower priority (or later sequence) sorts "less".
  if (pa != pb) return pa < pb;
  return sa > sb;
}

}  // namespace

void PriorityQueue::set_priority(Platform& p, int thread_id, int priority) {
  p.lock(lock_);
  priorities_[thread_id] = priority;
  p.unlock(lock_);
}

void PriorityQueue::enq(Platform& p, ThreadState t) {
  p.lock(lock_);
  int prio = 0;
  if (auto it = priorities_.find(t.id); it != priorities_.end()) {
    prio = it->second;
  }
  heap_.push_back(Entry{prio, next_seq_++, std::move(t)});
  std::push_heap(heap_.begin(), heap_.end(), [](const Entry& a, const Entry& b) {
    return entry_less(a.priority, a.seq, b.priority, b.seq);
  });
  p.unlock(lock_);
}

std::optional<ThreadState> PriorityQueue::deq(Platform& p) {
  p.lock(lock_);
  if (heap_.empty()) {
    p.unlock(lock_);
    return std::nullopt;
  }
  std::pop_heap(heap_.begin(), heap_.end(), [](const Entry& a, const Entry& b) {
    return entry_less(a.priority, a.seq, b.priority, b.seq);
  });
  ThreadState t = std::move(heap_.back().t);
  heap_.pop_back();
  p.unlock(lock_);
  return t;
}

void DistributedQueue::init(Platform& p) {
  per_proc_.clear();
  for (int i = 0; i < p.max_procs(); i++) {
    auto pp = std::make_unique<PerProc>();
    pp->lock = p.mutex_lock();
    per_proc_.push_back(std::move(pp));
  }
}

void DistributedQueue::enq(Platform& p, ThreadState t) {
  PerProc& mine = *per_proc_[static_cast<std::size_t>(p.proc_id())];
  p.lock(mine.lock);
  mine.q.push_back(std::move(t));
  mine.approx_size.store(static_cast<int>(mine.q.size()),
                         std::memory_order_release);
  p.unlock(mine.lock);
}

std::optional<ThreadState> DistributedQueue::deq(Platform& p) {
  const auto n = per_proc_.size();
  const auto me = static_cast<std::size_t>(p.proc_id());
  // Own queue first (FIFO within a proc)...
  {
    PerProc& mine = *per_proc_[me];
    if (mine.approx_size.load(std::memory_order_acquire) > 0) {
      p.lock(mine.lock);
      if (!mine.q.empty()) {
        ThreadState t = std::move(mine.q.front());
        mine.q.pop_front();
        mine.approx_size.store(static_cast<int>(mine.q.size()),
                               std::memory_order_release);
        p.unlock(mine.lock);
        return t;
      }
      p.unlock(mine.lock);
    }
  }
  // ...then steal from the tail of a victim, starting at a random proc.
  // The unlocked size peek costs one shared-memory read, not a lock pair.
  const std::size_t start =
      fuzz::pick(fuzz::Kind::kStealVictim, n, p.rng().below(n));
  for (std::size_t step = 0; step < n; step++) {
    const std::size_t v = (start + step) % n;
    if (v == me) continue;
    PerProc& victim = *per_proc_[v];
    p.work(2);
    if (victim.approx_size.load(std::memory_order_acquire) == 0) continue;
    p.lock(victim.lock);
    if (!victim.q.empty()) {
      ThreadState t = std::move(victim.q.back());
      victim.q.pop_back();
      victim.approx_size.store(static_cast<int>(victim.q.size()),
                               std::memory_order_release);
      p.unlock(victim.lock);
      return t;
    }
    p.unlock(victim.lock);
  }
  return std::nullopt;
}

namespace {

// Bound on each core's recycled-cell cache; overflow falls back to delete.
constexpr int kMaxFreeCells = 256;

// Heap a ThreadState into a deque cell, reusing the proc's cell cache when
// it has one (the cache is owner-only — see ProcCore::free_cells).
ThreadState* make_cell(ProcCore& mine, ThreadState&& t) {
  ThreadState* cell = mine.free_cells;
  if (cell == nullptr) return new ThreadState(std::move(t));
  mine.free_cells = cell->next_free;
  mine.free_cell_count--;
  cell->k = std::move(t.k);
  cell->id = t.id;
  cell->next_free = nullptr;
  return cell;
}

// Move the state out of a deque cell and recycle the cell into the
// dequeuing proc's cache.
std::optional<ThreadState> take_cell(ProcCore& mine, ThreadState* cell) {
  std::optional<ThreadState> t{std::move(*cell)};
  t->next_free = nullptr;
  if (mine.free_cell_count < kMaxFreeCells) {
    cell->next_free = mine.free_cells;
    mine.free_cells = cell;
    mine.free_cell_count++;
  } else {
    delete cell;
  }
  return t;
}

}  // namespace

void WorkStealingQueue::init(Platform& p) {
  if (!cores_.empty()) return;
  // No scheduler bound its cores: make our own (queue-only tests and
  // harnesses drive the discipline without a Scheduler).
  owned_.clear();
  for (int i = 0; i < p.max_procs(); i++) {
    owned_.push_back(std::make_unique<ProcCore>(i));
  }
  cores_.reserve(owned_.size());
  for (auto& c : owned_) cores_.push_back(c.get());
}

void WorkStealingQueue::enq(Platform& p, ThreadState t) {
  ProcCore& mine = *cores_[static_cast<std::size_t>(p.proc_id())];
  // Owner-side push: a slot store plus the release publish of bottom — no
  // lock pair, no read-modify-write.
  p.work(4);
  mine.deque.push(make_cell(mine, std::move(t)));
}

std::optional<ThreadState> WorkStealingQueue::deq(Platform& p) {
  const auto n = cores_.size();
  const auto me = static_cast<std::size_t>(p.proc_id());
  ProcCore& mine = *cores_[me];
  // Own deque first.
  if (order_ == OwnerOrder::kLifo) {
    if (!mine.deque.empty()) {
      p.charge_cas();  // pop's store-load barrier / last-entry CAS
      if (ThreadState* cell = mine.deque.pop()) return take_cell(mine, cell);
    }
  } else {
    // FIFO owner order: the owner takes its own oldest entry with the same
    // top CAS the thieves use.  kLost means a thief took that entry — the
    // next-oldest is still ours to try.
    while (!mine.deque.empty()) {
      ThreadState* cell = nullptr;
      p.charge_cas();
      const auto r = mine.deque.steal(&cell);
      if (r == WsDeque::Steal::kGot) return take_cell(mine, cell);
      if (r == WsDeque::Steal::kEmpty) break;
    }
  }
  // Steal from a victim, starting at a random proc.  The unsynchronized
  // size peek costs one shared-memory read; the take itself is one CAS.
  const std::size_t start =
      fuzz::pick(fuzz::Kind::kStealVictim, n, p.rng().below(n));
  for (std::size_t step = 0; step < n; step++) {
    const std::size_t v = (start + step) % n;
    if (v == me) continue;
    ProcCore& victim = *cores_[v];
    p.work(2);
    if (victim.deque.empty()) continue;
    ThreadState* cell = nullptr;
    MPNJ_METRIC_COUNT(kSchedStealAttempts, 1);
    p.charge_cas();
    const auto r = victim.deque.steal(&cell);
    if (r == WsDeque::Steal::kGot) {
      MPNJ_METRIC_COUNT(kSchedStealCommits, 1);
      if (steal_rec_) {
        steal_rec_->emplace_back(static_cast<int>(me), static_cast<int>(v));
      }
      return take_cell(mine, cell);
    }
    // kLost: someone else took the entry — global progress was made; move
    // on to the next victim rather than hammering this one's top.
  }
  return std::nullopt;
}

}  // namespace mp::threads
