#include <algorithm>

#include "threads/queue.h"

namespace mp::threads {

void CentralFifoQueue::enq(Platform& p, ThreadState t) {
  p.lock(lock_);
  q_.push_back(std::move(t));
  p.unlock(lock_);
}

std::optional<ThreadState> CentralFifoQueue::deq(Platform& p) {
  p.lock(lock_);
  if (q_.empty()) {
    p.unlock(lock_);
    return std::nullopt;
  }
  ThreadState t = std::move(q_.front());
  q_.pop_front();
  p.unlock(lock_);
  return t;
}

void CentralLifoQueue::enq(Platform& p, ThreadState t) {
  p.lock(lock_);
  q_.push_back(std::move(t));
  p.unlock(lock_);
}

std::optional<ThreadState> CentralLifoQueue::deq(Platform& p) {
  p.lock(lock_);
  if (q_.empty()) {
    p.unlock(lock_);
    return std::nullopt;
  }
  ThreadState t = std::move(q_.back());
  q_.pop_back();
  p.unlock(lock_);
  return t;
}

void RandomQueue::enq(Platform& p, ThreadState t) {
  p.lock(lock_);
  q_.push_back(std::move(t));
  p.unlock(lock_);
}

std::optional<ThreadState> RandomQueue::deq(Platform& p) {
  p.lock(lock_);
  if (q_.empty()) {
    p.unlock(lock_);
    return std::nullopt;
  }
  const std::size_t i = p.rng().below(q_.size());
  std::swap(q_[i], q_.back());
  ThreadState t = std::move(q_.back());
  q_.pop_back();
  p.unlock(lock_);
  return t;
}

namespace {

bool entry_less(const int pa, const std::uint64_t sa, const int pb,
                const std::uint64_t sb) {
  // Max-heap ordering: lower priority (or later sequence) sorts "less".
  if (pa != pb) return pa < pb;
  return sa > sb;
}

}  // namespace

void PriorityQueue::set_priority(Platform& p, int thread_id, int priority) {
  p.lock(lock_);
  for (auto& [tid, prio] : priorities_) {
    if (tid == thread_id) {
      prio = priority;
      p.unlock(lock_);
      return;
    }
  }
  priorities_.emplace_back(thread_id, priority);
  p.unlock(lock_);
}

void PriorityQueue::enq(Platform& p, ThreadState t) {
  p.lock(lock_);
  int prio = 0;
  for (const auto& [tid, pr] : priorities_) {
    if (tid == t.id) {
      prio = pr;
      break;
    }
  }
  heap_.push_back(Entry{prio, next_seq_++, std::move(t)});
  std::push_heap(heap_.begin(), heap_.end(), [](const Entry& a, const Entry& b) {
    return entry_less(a.priority, a.seq, b.priority, b.seq);
  });
  p.unlock(lock_);
}

std::optional<ThreadState> PriorityQueue::deq(Platform& p) {
  p.lock(lock_);
  if (heap_.empty()) {
    p.unlock(lock_);
    return std::nullopt;
  }
  std::pop_heap(heap_.begin(), heap_.end(), [](const Entry& a, const Entry& b) {
    return entry_less(a.priority, a.seq, b.priority, b.seq);
  });
  ThreadState t = std::move(heap_.back().t);
  heap_.pop_back();
  p.unlock(lock_);
  return t;
}

void DistributedQueue::init(Platform& p) {
  per_proc_.clear();
  for (int i = 0; i < p.max_procs(); i++) {
    auto pp = std::make_unique<PerProc>();
    pp->lock = p.mutex_lock();
    per_proc_.push_back(std::move(pp));
  }
}

void DistributedQueue::enq(Platform& p, ThreadState t) {
  PerProc& mine = *per_proc_[static_cast<std::size_t>(p.proc_id())];
  p.lock(mine.lock);
  mine.q.push_back(std::move(t));
  mine.approx_size.store(static_cast<int>(mine.q.size()),
                         std::memory_order_release);
  p.unlock(mine.lock);
}

std::optional<ThreadState> DistributedQueue::deq(Platform& p) {
  const auto n = per_proc_.size();
  const auto me = static_cast<std::size_t>(p.proc_id());
  // Own queue first (FIFO within a proc)...
  {
    PerProc& mine = *per_proc_[me];
    if (mine.approx_size.load(std::memory_order_acquire) > 0) {
      p.lock(mine.lock);
      if (!mine.q.empty()) {
        ThreadState t = std::move(mine.q.front());
        mine.q.pop_front();
        mine.approx_size.store(static_cast<int>(mine.q.size()),
                               std::memory_order_release);
        p.unlock(mine.lock);
        return t;
      }
      p.unlock(mine.lock);
    }
  }
  // ...then steal from the tail of a victim, starting at a random proc.
  // The unlocked size peek costs one shared-memory read, not a lock pair.
  const std::size_t start = p.rng().below(n);
  for (std::size_t step = 0; step < n; step++) {
    const std::size_t v = (start + step) % n;
    if (v == me) continue;
    PerProc& victim = *per_proc_[v];
    p.work(2);
    if (victim.approx_size.load(std::memory_order_acquire) == 0) continue;
    p.lock(victim.lock);
    if (!victim.q.empty()) {
      ThreadState t = std::move(victim.q.back());
      victim.q.pop_back();
      victim.approx_size.store(static_cast<int>(victim.q.size()),
                               std::memory_order_release);
      p.unlock(victim.lock);
      return t;
    }
    p.unlock(victim.lock);
  }
  return std::nullopt;
}

}  // namespace mp::threads
