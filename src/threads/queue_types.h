#pragma once

#include "cont/cont.h"

namespace mp::threads {

// A suspended thread on a ready queue: a continuation that already carries
// its resume value, plus the thread's integer id (restored into the proc
// datum by dispatch, as in the paper's Figure 3).
struct ThreadState {
  cont::ContRef k;
  int id = 0;
  // Intrusive link for the per-proc cell caches (proc_core.h): live cells on
  // a work-stealing deque never use it; a recycled cell chains through it.
  ThreadState* next_free = nullptr;
};

}  // namespace mp::threads
