#include "threads/sync.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "arch/panic.h"
#include "fuzz/hooks.h"

namespace mp::threads {

// ----- lock discipline knob -----

namespace {

LockDiscipline env_discipline() {
  if (const char* env = std::getenv("MPNJ_LOCK")) {
    if (std::strcmp(env, "tas") == 0) return LockDiscipline::kTas;
  }
  return LockDiscipline::kQueue;
}

std::atomic<LockDiscipline>& discipline_cell() {
  static std::atomic<LockDiscipline> cell{env_discipline()};
  return cell;
}

}  // namespace

LockDiscipline lock_discipline() {
  return discipline_cell().load(std::memory_order_relaxed);
}

void set_lock_discipline(LockDiscipline d) {
  discipline_cell().store(d, std::memory_order_relaxed);
}

namespace {
bool use_tas() { return lock_discipline() == LockDiscipline::kTas; }
}  // namespace

// ----- Mutex -----

Mutex::Mutex(Scheduler& sched) : sched_(sched), tas_(use_tas()) {
  if (tas_) {
    spin_ = sched_.platform().mutex_lock();
  } else {
    q_.init(sched_);
  }
}

void Mutex::lock() {
  if (!tas_) {
    q_.lock();
    return;
  }
  Platform& p = sched_.platform();
  p.lock(spin_);
  if (!held_) {
    held_ = true;
    p.unlock(spin_);
    return;
  }
  // Park holding the spin lock; the park callback releases it once the
  // thread is safely on the waiter queue (the protocol the paper's send/
  // receive use in Figure 5).
  MPNJ_METRIC_COUNT(kLockParkWaits, 1);
  sched_.suspend([&](ThreadState t) {
    waiters_.push_back(std::move(t));
    p.unlock(spin_);
  });
  // Resumed: ownership was handed to us directly (held_ stayed true).
}

bool Mutex::try_lock() {
  if (!tas_) return q_.try_lock();
  Platform& p = sched_.platform();
  p.lock(spin_);
  const bool got = !held_;
  if (got) held_ = true;
  p.unlock(spin_);
  return got;
}

void Mutex::unlock() {
  if (!tas_) {
    q_.unlock();
    return;
  }
  Platform& p = sched_.platform();
  p.lock(spin_);
  MPNJ_CHECK(held_, "Mutex::unlock of an unheld mutex");
  if (waiters_.empty()) {
    held_ = false;
    p.unlock(spin_);
    return;
  }
  ThreadState next = std::move(waiters_.front());
  waiters_.pop_front();
  p.unlock(spin_);
  MPNJ_METRIC_COUNT(kLockHandoffs, 1);
  sched_.reschedule(std::move(next));  // handoff: held_ remains true
}

bool Mutex::held() const {
  if (!tas_) return q_.held();
  Platform& p = sched_.platform();
  p.lock(spin_);
  const bool h = held_;
  p.unlock(spin_);
  return h;
}

// ----- CondVar -----

CondVar::CondVar(Scheduler& sched) : sched_(sched), tas_(use_tas()) {
  spin_ = sched_.platform().mutex_lock();
}

void CondVar::wait(Mutex& m) {
  MPNJ_CHECK(m.held(), "CondVar::wait without the monitor held");
  Platform& p = sched_.platform();
  if (!tas_) {
    // Enqueue the claim while still inside the monitor, release the monitor
    // on this frame, then wait.  A signal landing between the unlock and
    // the park simply grants the claim early and claim_wait returns without
    // parking; one landing before the unlock is also fine — the signaler
    // never touches the monitor, so there is no lock-order cycle.
    QNode n;
    p.lock(spin_);
    qwaiters_.push(&n);
    p.unlock(spin_);
    m.unlock();
    claim_wait(sched_, n);
    m.lock();
    return;
  }
  // Baseline protocol: enqueue first, release the monitor second, both from
  // the park callback.  The callback runs on a fresh segment after this
  // frame is sealed (cont/cont.h), so by the time m.unlock() can hand the
  // monitor onward — even if the new owner signals immediately and the
  // signal races our park — our ThreadState is already on the queue and a
  // resume can only happen after the callback returns into the dispatcher.
  // Audited interleavings in docs/SYNC.md; pinned by the TSan stress test.
  MPNJ_METRIC_COUNT(kLockParkWaits, 1);
  sched_.suspend([&](ThreadState t) {
    p.lock(spin_);
    waiters_.push_back(std::move(t));
    p.unlock(spin_);
    m.unlock();
  });
  m.lock();
}

void CondVar::signal() {
  Platform& p = sched_.platform();
  if (!tas_) {
    p.lock(spin_);
    QNode* n = qwaiters_.pop();
    p.unlock(spin_);
    if (n != nullptr) claim_grant(sched_, *n);
    return;
  }
  p.lock(spin_);
  if (waiters_.empty()) {
    p.unlock(spin_);
    return;
  }
  ThreadState t = std::move(waiters_.front());
  waiters_.pop_front();
  p.unlock(spin_);
  sched_.reschedule(std::move(t));
}

void CondVar::broadcast() {
  Platform& p = sched_.platform();
  if (!tas_) {
    p.lock(spin_);
    WaitList batch = qwaiters_.take();
    p.unlock(spin_);
    QNode* n;
    while ((n = batch.pop()) != nullptr) claim_grant(sched_, *n);
    return;
  }
  p.lock(spin_);
  std::deque<ThreadState> woken;
  woken.swap(waiters_);
  p.unlock(spin_);
  for (auto& t : woken) sched_.reschedule(std::move(t));
}

// ----- Barrier -----

Barrier::Barrier(Scheduler& sched, int parties)
    : sched_(sched), tas_(use_tas()), parties_(parties) {
  spin_ = sched_.platform().mutex_lock();
}

void Barrier::arrive_and_wait() {
  Platform& p = sched_.platform();
  p.lock(spin_);
  const long gen = generation_;
  if (++waiting_ == parties_) {
    waiting_ = 0;
    generation_++;
    if (!tas_) {
      WaitList batch = qwaiters_.take();
      const long released = generation_;
      p.unlock(spin_);
      QNode* n;
      while ((n = batch.pop()) != nullptr) {
        // Stamp the releasing generation before the grant; the waiter
        // checks it was freed by its own episode's flip.
        n->tag = released;
        if (fuzz::injected(fuzz::InjectedBug::kBarrierGeneration)) {
          // Deliberately re-introduced bug (MPNJ_FUZZ_INJECT): stamp the
          // pre-flip generation, as if the flip forgot to advance before
          // releasing.  Every released waiter's reuse guard then trips.
          n->tag = released - 1;
        }
        claim_grant(sched_, *n);
      }
      return;
    }
    std::deque<ThreadState> woken;
    woken.swap(waiters_);
    p.unlock(spin_);
    for (auto& t : woken) sched_.reschedule(std::move(t));
    return;
  }
  if (!tas_) {
    QNode n;
    qwaiters_.push(&n);
    p.unlock(spin_);
    claim_wait(sched_, n);
    MPNJ_CHECK(n.tag == gen + 1,
               "Barrier waiter resumed outside its own generation");
    return;
  }
  MPNJ_METRIC_COUNT(kLockParkWaits, 1);
  sched_.suspend([&](ThreadState t) {
    waiters_.push_back(std::move(t));
    p.unlock(spin_);
  });
  // Reuse guard: only the flip of our own episode may have freed us.
  p.lock(spin_);
  MPNJ_CHECK(generation_ > gen, "Barrier waiter resumed before its release");
  p.unlock(spin_);
}

// ----- Semaphore -----

Semaphore::Semaphore(Scheduler& sched, long initial)
    : sched_(sched), tas_(use_tas()), count_(initial) {
  MPNJ_CHECK(initial >= 0, "Semaphore initialized with a negative count");
  spin_ = sched_.platform().mutex_lock();
}

void Semaphore::acquire() {
  Platform& p = sched_.platform();
  p.lock(spin_);
  if (count_ > 0) {
    count_--;
    p.unlock(spin_);
    return;
  }
  if (!tas_) {
    QNode n;
    qwaiters_.push(&n);
    p.unlock(spin_);
    claim_wait(sched_, n);  // the permit passed to us with the grant
    return;
  }
  MPNJ_METRIC_COUNT(kLockParkWaits, 1);
  sched_.suspend([&](ThreadState t) {
    waiters_.push_back(std::move(t));
    p.unlock(spin_);
  });
}

bool Semaphore::try_acquire() {
  Platform& p = sched_.platform();
  p.lock(spin_);
  const bool got = count_ > 0;
  if (got) count_--;
  p.unlock(spin_);
  return got;
}

void Semaphore::release() {
  Platform& p = sched_.platform();
  p.lock(spin_);
  MPNJ_CHECK(count_ >= 0, "Semaphore count went negative");
  if (!tas_) {
    QNode* n = qwaiters_.pop();
    if (n != nullptr) {
      MPNJ_CHECK(count_ == 0, "Semaphore waiter parked with permits free");
      p.unlock(spin_);
      claim_grant(sched_, *n);  // the permit passes to the waiter
      return;
    }
    count_++;
    p.unlock(spin_);
    return;
  }
  if (!waiters_.empty()) {
    ThreadState t = std::move(waiters_.front());
    waiters_.pop_front();
    p.unlock(spin_);
    MPNJ_METRIC_COUNT(kLockHandoffs, 1);
    sched_.reschedule(std::move(t));  // the permit passes to the waiter
    return;
  }
  count_++;
  p.unlock(spin_);
}

// ----- RWLock -----

RWLock::RWLock(Scheduler& sched) : sched_(sched), tas_(use_tas()) {
  spin_ = sched_.platform().mutex_lock();
}

void RWLock::lock_shared() {
  Platform& p = sched_.platform();
  p.lock(spin_);
  const bool writers_queued =
      tas_ ? !write_waiters_.empty() : !qwrite_waiters_.empty();
  if (!writer_ && !writers_queued) {
    readers_++;
    p.unlock(spin_);
    return;
  }
  if (!tas_) {
    QNode n;
    qread_waiters_.push(&n);
    p.unlock(spin_);
    claim_wait(sched_, n);
    return;  // the granter already counted us as a reader
  }
  MPNJ_METRIC_COUNT(kLockParkWaits, 1);
  sched_.suspend([&](ThreadState t) {
    read_waiters_.push_back(std::move(t));
    p.unlock(spin_);
  });
  // Resumed by a releasing writer, which already counted us as a reader.
}

void RWLock::unlock_shared() {
  Platform& p = sched_.platform();
  p.lock(spin_);
  MPNJ_CHECK(readers_ > 0, "RWLock::unlock_shared without a shared hold");
  MPNJ_CHECK(!writer_, "RWLock held shared and exclusive at once");
  if (--readers_ == 0) {
    if (!tas_) {
      QNode* w = qwrite_waiters_.pop();
      if (w != nullptr) {
        writer_ = true;
        p.unlock(spin_);
        claim_grant(sched_, *w);
        return;
      }
    } else if (!write_waiters_.empty()) {
      ThreadState w = std::move(write_waiters_.front());
      write_waiters_.pop_front();
      writer_ = true;
      p.unlock(spin_);
      MPNJ_METRIC_COUNT(kLockHandoffs, 1);
      sched_.reschedule(std::move(w));
      return;
    }
  }
  p.unlock(spin_);
}

void RWLock::lock_exclusive() {
  Platform& p = sched_.platform();
  p.lock(spin_);
  if (!writer_ && readers_ == 0) {
    writer_ = true;
    p.unlock(spin_);
    return;
  }
  if (!tas_) {
    QNode n;
    qwrite_waiters_.push(&n);
    p.unlock(spin_);
    claim_wait(sched_, n);
    return;  // the granter set writer_ on our behalf
  }
  MPNJ_METRIC_COUNT(kLockParkWaits, 1);
  sched_.suspend([&](ThreadState t) {
    write_waiters_.push_back(std::move(t));
    p.unlock(spin_);
  });
}

void RWLock::unlock_exclusive() {
  Platform& p = sched_.platform();
  p.lock(spin_);
  MPNJ_CHECK(writer_, "RWLock::unlock_exclusive without the exclusive hold");
  MPNJ_CHECK(readers_ == 0, "RWLock held shared and exclusive at once");
  if (!tas_) {
    // Phase-fair: the reader batch that accumulated behind this writer goes
    // first, then the next writer — neither side starves.
    if (!qread_waiters_.empty()) {
      writer_ = false;
      WaitList batch = qread_waiters_.take();
      readers_ += batch.size();
      p.unlock(spin_);
      QNode* n;
      while ((n = batch.pop()) != nullptr) claim_grant(sched_, *n);
      return;
    }
    QNode* w = qwrite_waiters_.pop();
    if (w != nullptr) {
      // writer_ stays true: direct handoff to the next writer.
      p.unlock(spin_);
      claim_grant(sched_, *w);
      return;
    }
    writer_ = false;
    p.unlock(spin_);
    return;
  }
  if (!write_waiters_.empty()) {
    ThreadState w = std::move(write_waiters_.front());
    write_waiters_.pop_front();
    // writer_ stays true: direct handoff to the next writer.
    p.unlock(spin_);
    MPNJ_METRIC_COUNT(kLockHandoffs, 1);
    sched_.reschedule(std::move(w));
    return;
  }
  writer_ = false;
  std::deque<ThreadState> woken;
  woken.swap(read_waiters_);
  readers_ += static_cast<int>(woken.size());
  p.unlock(spin_);
  for (auto& t : woken) sched_.reschedule(std::move(t));
}

// ----- CountdownLatch -----

CountdownLatch::CountdownLatch(Scheduler& sched, long count)
    : sched_(sched), tas_(use_tas()), count_(count) {
  MPNJ_CHECK(count >= 0, "CountdownLatch initialized with a negative count");
  spin_ = sched_.platform().mutex_lock();
}

void CountdownLatch::count_down() {
  Platform& p = sched_.platform();
  p.lock(spin_);
  if (count_ > 0 && --count_ == 0) {
    if (!tas_) {
      WaitList batch = qwaiters_.take();
      p.unlock(spin_);
      QNode* n;
      while ((n = batch.pop()) != nullptr) claim_grant(sched_, *n);
      return;
    }
    std::deque<ThreadState> woken;
    woken.swap(waiters_);
    p.unlock(spin_);
    for (auto& t : woken) sched_.reschedule(std::move(t));
    return;
  }
  MPNJ_CHECK(count_ > 0 || (qwaiters_.empty() && waiters_.empty()),
             "CountdownLatch waiters survived the release");
  p.unlock(spin_);
}

void CountdownLatch::await() {
  Platform& p = sched_.platform();
  p.lock(spin_);
  if (count_ == 0) {
    p.unlock(spin_);
    return;
  }
  if (!tas_) {
    QNode n;
    qwaiters_.push(&n);
    p.unlock(spin_);
    claim_wait(sched_, n);
    return;
  }
  MPNJ_METRIC_COUNT(kLockParkWaits, 1);
  sched_.suspend([&](ThreadState t) {
    waiters_.push_back(std::move(t));
    p.unlock(spin_);
  });
}

long CountdownLatch::remaining() {
  Platform& p = sched_.platform();
  p.lock(spin_);
  const long c = count_;
  p.unlock(spin_);
  return c;
}

}  // namespace mp::threads
