#include "threads/sync.h"

namespace mp::threads {

// ----- Mutex -----

Mutex::Mutex(Scheduler& sched) : sched_(sched) {
  spin_ = sched_.platform().mutex_lock();
}

void Mutex::lock() {
  Platform& p = sched_.platform();
  p.lock(spin_);
  if (!held_) {
    held_ = true;
    p.unlock(spin_);
    return;
  }
  // Park holding the spin lock; the park callback releases it once the
  // thread is safely on the waiter queue (the protocol the paper's send/
  // receive use in Figure 5).
  sched_.suspend([&](ThreadState t) {
    waiters_.push_back(std::move(t));
    p.unlock(spin_);
  });
  // Resumed: ownership was handed to us directly (held_ stayed true).
}

bool Mutex::try_lock() {
  Platform& p = sched_.platform();
  p.lock(spin_);
  const bool got = !held_;
  if (got) held_ = true;
  p.unlock(spin_);
  return got;
}

void Mutex::unlock() {
  Platform& p = sched_.platform();
  p.lock(spin_);
  if (waiters_.empty()) {
    held_ = false;
    p.unlock(spin_);
    return;
  }
  ThreadState next = std::move(waiters_.front());
  waiters_.pop_front();
  p.unlock(spin_);
  sched_.reschedule(std::move(next));  // handoff: held_ remains true
}

// ----- CondVar -----

CondVar::CondVar(Scheduler& sched) : sched_(sched) {
  spin_ = sched_.platform().mutex_lock();
}

void CondVar::wait(Mutex& m) {
  Platform& p = sched_.platform();
  // Enqueue first, release the monitor second: a signal racing with this
  // wait either sees us on the queue or happens strictly before the park,
  // so wakeups cannot be lost.
  sched_.suspend([&](ThreadState t) {
    p.lock(spin_);
    waiters_.push_back(std::move(t));
    p.unlock(spin_);
    m.unlock();
  });
  m.lock();
}

void CondVar::signal() {
  Platform& p = sched_.platform();
  p.lock(spin_);
  if (waiters_.empty()) {
    p.unlock(spin_);
    return;
  }
  ThreadState t = std::move(waiters_.front());
  waiters_.pop_front();
  p.unlock(spin_);
  sched_.reschedule(std::move(t));
}

void CondVar::broadcast() {
  Platform& p = sched_.platform();
  p.lock(spin_);
  std::deque<ThreadState> woken;
  woken.swap(waiters_);
  p.unlock(spin_);
  for (auto& t : woken) sched_.reschedule(std::move(t));
}

// ----- Barrier -----

Barrier::Barrier(Scheduler& sched, int parties)
    : sched_(sched), parties_(parties) {
  spin_ = sched_.platform().mutex_lock();
}

void Barrier::arrive_and_wait() {
  Platform& p = sched_.platform();
  p.lock(spin_);
  if (++waiting_ == parties_) {
    waiting_ = 0;
    generation_++;
    std::deque<ThreadState> woken;
    woken.swap(waiters_);
    p.unlock(spin_);
    for (auto& t : woken) sched_.reschedule(std::move(t));
    return;
  }
  sched_.suspend([&](ThreadState t) {
    waiters_.push_back(std::move(t));
    p.unlock(spin_);
  });
}

// ----- Semaphore -----

Semaphore::Semaphore(Scheduler& sched, long initial)
    : sched_(sched), count_(initial) {
  spin_ = sched_.platform().mutex_lock();
}

void Semaphore::acquire() {
  Platform& p = sched_.platform();
  p.lock(spin_);
  if (count_ > 0) {
    count_--;
    p.unlock(spin_);
    return;
  }
  sched_.suspend([&](ThreadState t) {
    waiters_.push_back(std::move(t));
    p.unlock(spin_);
  });
}

bool Semaphore::try_acquire() {
  Platform& p = sched_.platform();
  p.lock(spin_);
  const bool got = count_ > 0;
  if (got) count_--;
  p.unlock(spin_);
  return got;
}

void Semaphore::release() {
  Platform& p = sched_.platform();
  p.lock(spin_);
  if (!waiters_.empty()) {
    ThreadState t = std::move(waiters_.front());
    waiters_.pop_front();
    p.unlock(spin_);
    sched_.reschedule(std::move(t));  // the permit passes to the waiter
    return;
  }
  count_++;
  p.unlock(spin_);
}

// ----- RWLock -----

RWLock::RWLock(Scheduler& sched) : sched_(sched) {
  spin_ = sched_.platform().mutex_lock();
}

void RWLock::lock_shared() {
  Platform& p = sched_.platform();
  p.lock(spin_);
  if (!writer_ && write_waiters_.empty()) {
    readers_++;
    p.unlock(spin_);
    return;
  }
  sched_.suspend([&](ThreadState t) {
    read_waiters_.push_back(std::move(t));
    p.unlock(spin_);
  });
  // Resumed by a releasing writer, which already counted us as a reader.
}

void RWLock::unlock_shared() {
  Platform& p = sched_.platform();
  p.lock(spin_);
  if (--readers_ == 0 && !write_waiters_.empty()) {
    ThreadState w = std::move(write_waiters_.front());
    write_waiters_.pop_front();
    writer_ = true;
    p.unlock(spin_);
    sched_.reschedule(std::move(w));
    return;
  }
  p.unlock(spin_);
}

void RWLock::lock_exclusive() {
  Platform& p = sched_.platform();
  p.lock(spin_);
  if (!writer_ && readers_ == 0) {
    writer_ = true;
    p.unlock(spin_);
    return;
  }
  sched_.suspend([&](ThreadState t) {
    write_waiters_.push_back(std::move(t));
    p.unlock(spin_);
  });
}

void RWLock::unlock_exclusive() {
  Platform& p = sched_.platform();
  p.lock(spin_);
  if (!write_waiters_.empty()) {
    ThreadState w = std::move(write_waiters_.front());
    write_waiters_.pop_front();
    // writer_ stays true: direct handoff to the next writer.
    p.unlock(spin_);
    sched_.reschedule(std::move(w));
    return;
  }
  writer_ = false;
  std::deque<ThreadState> woken;
  woken.swap(read_waiters_);
  readers_ += static_cast<int>(woken.size());
  p.unlock(spin_);
  for (auto& t : woken) sched_.reschedule(std::move(t));
}

// ----- CountdownLatch -----

CountdownLatch::CountdownLatch(Scheduler& sched, long count)
    : sched_(sched), count_(count) {
  spin_ = sched_.platform().mutex_lock();
}

void CountdownLatch::count_down() {
  Platform& p = sched_.platform();
  p.lock(spin_);
  if (count_ > 0 && --count_ == 0) {
    std::deque<ThreadState> woken;
    woken.swap(waiters_);
    p.unlock(spin_);
    for (auto& t : woken) sched_.reschedule(std::move(t));
    return;
  }
  p.unlock(spin_);
}

void CountdownLatch::await() {
  Platform& p = sched_.platform();
  p.lock(spin_);
  if (count_ == 0) {
    p.unlock(spin_);
    return;
  }
  sched_.suspend([&](ThreadState t) {
    waiters_.push_back(std::move(t));
    p.unlock(spin_);
  });
}

long CountdownLatch::remaining() {
  Platform& p = sched_.platform();
  p.lock(spin_);
  const long c = count_;
  p.unlock(spin_);
  return c;
}

}  // namespace mp::threads
