#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/tas.h"
#include "metrics/metrics.h"
#include "mp/platform.h"

// Scheduling-event tracing.  The paper's platform "has been used ... as a
// basis for experimentation with concurrent debugging"; the enabling
// property is that thread state and scheduling live in the client, where
// they can be observed.  A Tracer attached to a Scheduler records every
// fork / yield / exit / dispatch / preemption with its virtual (or real)
// timestamp, proc and thread — and on the simulator backend a rerun with
// the same configuration reproduces the trace bit for bit, giving
// deterministic replay for free.

namespace mp::threads {

enum class TraceKind : std::uint8_t {
  kFork,      // arg = child thread id
  kYield,     // arg unused
  kExit,      // arg unused
  kDispatch,  // thread = resumed thread
  kPreempt,   // preemption signal delivered
};

const char* trace_kind_name(TraceKind k);

struct TraceEvent {
  double t = 0;  // platform clock (virtual us on the simulator)
  int proc = -1;
  int thread = -1;
  TraceKind kind = TraceKind::kYield;
  int arg = 0;

  friend bool operator==(const TraceEvent& a, const TraceEvent& b) {
    return a.t == b.t && a.proc == b.proc && a.thread == b.thread &&
           a.kind == b.kind && a.arg == b.arg;
  }
};

// Bounded trace recorder.  The buffer is a ring sized up front, so record
// never allocates while other procs spin on the trace lock (an unbounded
// vector's realloc under that spin lock made every proc pay for one proc's
// growth — and could starve the simulator's determinism checks).  When the
// ring wraps, the oldest events are overwritten and counted as dropped.
class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  explicit Tracer(std::size_t capacity = kDefaultCapacity)
      : ring_(capacity > 0 ? capacity : 1) {}

  void record(Platform& p, TraceKind kind, int thread, int arg = 0) {
    TraceEvent e;
    e.t = p.now_us();
    e.proc = p.proc_id();
    e.thread = thread;
    e.kind = kind;
    e.arg = arg;
    bool dropped = false;
    {
      arch::TasGuard guard(lock_);
      ring_[(head_ + size_) % ring_.size()] = e;
      if (size_ < ring_.size()) {
        size_++;
      } else {
        head_ = (head_ + 1) % ring_.size();  // overwrote the oldest event
        dropped_++;
        dropped = true;
      }
    }
    if (dropped) MPNJ_METRIC_COUNT(kTraceDropped, 1);
  }

  // The retained events, oldest first.
  std::vector<TraceEvent> snapshot() const {
    arch::TasGuard guard(lock_);
    std::vector<TraceEvent> out;
    out.reserve(size_);
    for (std::size_t i = 0; i < size_; i++) {
      out.push_back(ring_[(head_ + i) % ring_.size()]);
    }
    return out;
  }

  std::size_t count(TraceKind kind) const {
    std::size_t n = 0;
    for (const auto& e : snapshot()) {
      if (e.kind == kind) n++;
    }
    return n;
  }

  std::size_t size() const {
    arch::TasGuard guard(lock_);
    return size_;
  }

  std::size_t capacity() const { return ring_.size(); }

  // Events lost to ring wrap-around since construction.
  std::uint64_t dropped() const {
    arch::TasGuard guard(lock_);
    return dropped_;
  }

  // Human-readable dump (debugging aid).
  std::string format() const;

 private:
  mutable arch::TasWord lock_;
  std::vector<TraceEvent> ring_;  // fixed size after construction
  std::size_t head_ = 0;          // index of the oldest retained event
  std::size_t size_ = 0;          // retained events (<= ring_.size())
  std::uint64_t dropped_ = 0;
};

}  // namespace mp::threads
