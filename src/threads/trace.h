#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "arch/tas.h"
#include "mp/platform.h"

// Scheduling-event tracing.  The paper's platform "has been used ... as a
// basis for experimentation with concurrent debugging"; the enabling
// property is that thread state and scheduling live in the client, where
// they can be observed.  A Tracer attached to a Scheduler records every
// fork / yield / exit / dispatch / preemption with its virtual (or real)
// timestamp, proc and thread — and on the simulator backend a rerun with
// the same configuration reproduces the trace bit for bit, giving
// deterministic replay for free.

namespace mp::threads {

enum class TraceKind : std::uint8_t {
  kFork,      // arg = child thread id
  kYield,     // arg unused
  kExit,      // arg unused
  kDispatch,  // thread = resumed thread
  kPreempt,   // preemption signal delivered
};

const char* trace_kind_name(TraceKind k);

struct TraceEvent {
  double t = 0;  // platform clock (virtual us on the simulator)
  int proc = -1;
  int thread = -1;
  TraceKind kind = TraceKind::kYield;
  int arg = 0;

  friend bool operator==(const TraceEvent& a, const TraceEvent& b) {
    return a.t == b.t && a.proc == b.proc && a.thread == b.thread &&
           a.kind == b.kind && a.arg == b.arg;
  }
};

class Tracer {
 public:
  void record(Platform& p, TraceKind kind, int thread, int arg = 0) {
    TraceEvent e;
    e.t = p.now_us();
    e.proc = p.proc_id();
    e.thread = thread;
    e.kind = kind;
    e.arg = arg;
    while (lock_.exchange(1, std::memory_order_acquire) != 0) {
      arch::cpu_relax();
    }
    events_.push_back(e);
    lock_.store(0, std::memory_order_release);
  }

  std::vector<TraceEvent> snapshot() const {
    while (lock_.exchange(1, std::memory_order_acquire) != 0) {
      arch::cpu_relax();
    }
    std::vector<TraceEvent> out = events_;
    lock_.store(0, std::memory_order_release);
    return out;
  }

  std::size_t count(TraceKind kind) const {
    std::size_t n = 0;
    for (const auto& e : snapshot()) {
      if (e.kind == kind) n++;
    }
    return n;
  }

  std::size_t size() const { return snapshot().size(); }

  // Human-readable dump (debugging aid).
  std::string format() const;

 private:
  mutable std::atomic<std::uint32_t> lock_{0};
  std::vector<TraceEvent> events_;
};

}  // namespace mp::threads
