// Native microbenchmarks for the Lock abstraction: the hardware
// test-and-set word and the MutexLock operations built on it.

#include <benchmark/benchmark.h>

#include <thread>

#include "arch/tas.h"
#include "bench_util.h"
#include "mp/native_platform.h"

namespace {

void BM_TasWord(benchmark::State& state) {
  mp::arch::TasWord w;
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.test_and_set());
    w.clear();
  }
}
BENCHMARK(BM_TasWord);

void BM_MutexLockPairUncontended(benchmark::State& state) {
  mp::NativePlatformConfig cfg;
  cfg.max_procs = 1;
  mp::NativePlatform p(cfg);
  p.run([&] {
    mp::MutexLock l = p.mutex_lock();
    for (auto _ : state) {
      p.lock(l);
      p.unlock(l);
    }
  });
}
BENCHMARK(BM_MutexLockPairUncontended);

void BM_TryLockFailure(benchmark::State& state) {
  mp::NativePlatformConfig cfg;
  cfg.max_procs = 1;
  mp::NativePlatform p(cfg);
  p.run([&] {
    mp::MutexLock l = p.mutex_lock();
    p.lock(l);
    for (auto _ : state) {
      benchmark::DoNotOptimize(p.try_lock(l));
    }
    p.unlock(l);
  });
}
BENCHMARK(BM_TryLockFailure);

void BM_MutexLockCreate(benchmark::State& state) {
  mp::NativePlatformConfig cfg;
  cfg.max_procs = 1;
  mp::NativePlatform p(cfg);
  p.run([&] {
    for (auto _ : state) {
      mp::MutexLock l = p.mutex_lock();
      benchmark::DoNotOptimize(l.cell());
    }
  });
}
BENCHMARK(BM_MutexLockCreate);

void BM_TasContended(benchmark::State& state) {
  static mp::arch::TasWord w;
  for (auto _ : state) {
    mp::arch::spin_acquire(w);
    w.clear();
  }
}
BENCHMARK(BM_TasContended)->Threads(1)->Threads(2)->Threads(4);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  bench::dump_metrics_json("micro_lock");
  return 0;
}
