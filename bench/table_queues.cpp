// Queue-discipline ablation (DESIGN.md decision 3; paper section 2: "thread
// scheduling policy can be changed simply by varying the functor's
// argument", and section 6's evaluated package uses a distributed run
// queue).  Runs the fork/join-heavy abisort benchmark under each ready-queue
// discipline and reports elapsed time and run-queue lock spinning.

#include "bench_util.h"

using namespace mp::workloads;

int main(int argc, char** argv) {
  const bool quick = bench::flag(argc, argv, "--quick");
  bench::header("A-QUEUE", "ready-queue disciplines under fork/join load (abisort)",
                "the evaluated thread package replaced Figure 3's central "
                "queue with a distributed per-proc run queue to cut run-queue "
                "lock contention");
  const std::vector<int> grid =
      quick ? std::vector<int>{4, 16} : std::vector<int>{2, 4, 8, 12, 16};

  std::printf("%-12s", "queue");
  for (const int p : grid) std::printf("   p=%-2d T(ms)/spin%%", p);
  std::printf("\n");
  bench::rule();
  for (const char* queue : {"distributed", "fifo", "lifo", "random"}) {
    std::printf("%-12s", queue);
    for (const int p : grid) {
      SimRunSpec spec;
      spec.workload = "abisort";
      spec.machine = mp::sim::sequent_s81(p);
      spec.queue = queue;
      const auto r = run_sim(spec);
      if (!r.verified) {
        std::printf("  VERIFY-FAIL");
        continue;
      }
      const double proc_time = r.report.total_us * p;
      std::printf("   %8.1f / %4.1f", r.report.total_us / 1000.0,
                  100 * r.report.spin_us / proc_time);
    }
    std::printf("\n");
  }
  bench::rule();
  std::printf("expected: central disciplines spin more on the single queue\n");
  std::printf("lock as procs are added; distributed queues keep spin low\n");
  return 0;
}
