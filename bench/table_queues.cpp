// Queue-discipline ablation (DESIGN.md decision 3; paper section 2: "thread
// scheduling policy can be changed simply by varying the functor's
// argument", and section 6's evaluated package uses a distributed run
// queue).  Runs the fork/join-heavy abisort benchmark under each ready-queue
// discipline — the central queues of Figure 3, the paper's distributed
// lock-per-proc queues, and this package's lock-free work-stealing deques —
// and reports simulated elapsed time / run-queue lock spinning plus a
// native 4-proc enq/deq op-throughput comparison.
//
// MPNJ_QUEUE=<name>[|<name>...] restricts both sections to the named
// disciplines (the CI sched-stress leg runs one discipline per job).

#include <chrono>
#include <cstdlib>
#include <cstring>

#include "arch/tas.h"
#include "bench_util.h"
#include "mp/native_platform.h"
#include "workloads/workload.h"

using namespace mp::workloads;

namespace {

// True when `queue` is selected by the MPNJ_QUEUE env filter (unset = all).
bool selected(const char* queue) {
  const char* env = std::getenv("MPNJ_QUEUE");
  if (env == nullptr || *env == '\0') return true;
  const std::size_t len = std::strlen(queue);
  for (const char* p = env; (p = std::strstr(p, queue)) != nullptr; p += len) {
    const bool starts = p == env || p[-1] == '|' || p[-1] == ',';
    const bool ends = p[len] == '\0' || p[len] == '|' || p[len] == ',';
    if (starts && ends) return true;
  }
  return false;
}

// Ready-queue op throughput on `procs` native procs: every proc pushes and
// pops bursts through the ReadyQueue interface, so the measured region is
// the queue discipline itself — no context switches, GC, or dispatch-loop
// overhead diluting the comparison (and no dependence on how the OS
// timeslices oversubscribed procs, beyond the lock-holder preemption that
// spin locks genuinely suffer and lock-free deques genuinely avoid).
// Returns wall milliseconds for all procs to complete `ops` enq+deq pairs.
double native_queue_ms(const char* qname, int procs, int ops) {
  mp::NativePlatformConfig cfg;
  cfg.max_procs = procs;
  mp::NativePlatform platform(cfg);
  double ms = -1;
  platform.run([&] {
    auto q = make_queue(qname);
    q->init(platform);
    std::atomic<int> done{0};
    std::atomic<bool> go{false};
    auto worker = [&] {
      while (!go.load(std::memory_order_acquire)) mp::arch::cpu_relax();
      constexpr int kBurst = 32;
      for (int i = 0; i < ops;) {
        for (int b = 0; b < kBurst && i < ops; b++, i++) {
          q->enq(platform, mp::threads::ThreadState{mp::cont::ContRef(), i});
        }
        for (int b = 0; b < kBurst; b++) {
          if (!q->deq(platform)) break;
        }
      }
      while (q->deq(platform)) {
      }
      done.fetch_add(1, std::memory_order_acq_rel);
    };
    for (int i = 1; i < procs; i++) {
      platform.try_acquire_entry(
          [&] {
            worker();
            platform.release_proc();
          },
          0);
    }
    const auto t0 = std::chrono::steady_clock::now();
    go.store(true, std::memory_order_release);
    worker();
    while (done.load(std::memory_order_acquire) < procs) mp::arch::cpu_relax();
    const auto t1 = std::chrono::steady_clock::now();
    ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  });
  return ms;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::flag(argc, argv, "--quick");
  bench::header("A-QUEUE", "ready-queue disciplines under fork/join load (abisort)",
                "the evaluated thread package replaced Figure 3's central "
                "queue with a distributed per-proc run queue to cut run-queue "
                "lock contention; this package's default goes one step "
                "further to lock-free work-stealing deques");
  const std::vector<int> grid =
      quick ? std::vector<int>{4, 16} : std::vector<int>{2, 4, 8, 12, 16};

  std::printf("%-14s", "queue");
  for (const int p : grid) std::printf("   p=%-2d T(ms)/spin%%", p);
  std::printf("\n");
  bench::rule();
  for (const char* queue : {"ws", "ws-lifo", "distributed", "central-fifo",
                            "central-lifo", "central-random"}) {
    if (!selected(queue)) continue;
    std::printf("%-14s", queue);
    for (const int p : grid) {
      SimRunSpec spec;
      spec.workload = "abisort";
      spec.machine = mp::sim::sequent_s81(p);
      spec.queue = queue;
      const auto r = run_sim(spec);
      if (!r.verified) {
        std::printf("  VERIFY-FAIL");
        continue;
      }
      const double proc_time = r.report.total_us * p;
      std::printf("   %8.1f / %4.1f", r.report.total_us / 1000.0,
                  100 * r.report.spin_us / proc_time);
    }
    std::printf("\n");
  }
  bench::rule();
  std::printf("expected: central disciplines spin more on the single queue\n");
  std::printf("lock as procs are added; distributed queues keep spin low and\n");
  std::printf("work stealing drops run-queue spinning to zero\n");

  // ---- native procs: 4-proc ready-queue op throughput, best of 5 ----
  const int procs = 4;
  const int ops = quick ? 200000 : 500000;
  std::printf(
      "\nnative ready-queue ops (%d procs, %dk enq+deq pairs each, best of "
      "5):\n",
      procs, ops / 1000);
  bench::rule();
  double ws_ms = 0, dist_ms = 0;
  for (const char* queue : {"ws", "distributed", "central-fifo"}) {
    if (!selected(queue)) continue;
    native_queue_ms(queue, procs, ops);  // warmup
    double best = -1;
    for (int rep = 0; rep < 5; rep++) {
      const double ms = native_queue_ms(queue, procs, ops);
      if (best < 0 || ms < best) best = ms;
    }
    const double mops = procs * ops / best / 1000.0;
    std::printf("%-14s  %8.1f ms  %7.1f Mops/s\n", queue, best, mops);
    if (std::strcmp(queue, "ws") == 0) ws_ms = best;
    if (std::strcmp(queue, "distributed") == 0) dist_ms = best;
  }
  bench::rule();
  if (ws_ms > 0 && dist_ms > 0) {
    std::printf("work-stealing vs distributed-lock throughput: %.2fx %s\n",
                dist_ms / ws_ms,
                dist_ms / ws_ms >= 1.0 ? "(ws >= distributed)"
                                       : "(ws SLOWER than distributed)");
  }
  bench::dump_metrics_json("table_queues");
  return 0;
}
