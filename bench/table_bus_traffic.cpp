// Bus-traffic table (section 6): "the bus has a maximum achievable
// bandwidth of about 25 MB/sec; with 16 processors mm generates about
// 20 MB/sec of bus traffic in allocation alone."  Sweeps mm over proc
// counts on the Sequent model and reports allocation-driven bus load.

#include "bench_util.h"

using namespace mp::workloads;

int main(int argc, char** argv) {
  const bool quick = bench::flag(argc, argv, "--quick");
  bench::header("T3", "allocation bus traffic of mm on the Sequent",
                "~20 MB/s of a ~25 MB/s achievable bus at 16 procs; bus "
                "contention, not parallelism, limits mm's speedup");
  const std::vector<int> grid = bench::sequent_grid(quick);
  std::printf("%5s %12s %10s %10s %12s %10s\n", "procs", "T(us)", "MB/s",
              "bus-util", "buswait(us)", "speedup");
  bench::rule();
  SimRunSpec spec;
  spec.workload = "mm";
  const auto sweep = sweep_procs(spec, grid);
  for (std::size_t i = 0; i < sweep.size(); i++) {
    const auto& r = sweep[i];
    std::printf("%5d %12.0f %10.2f %9.1f%% %12.0f %10.2f\n", r.procs,
                r.report.total_us, r.report.bus_mb_per_s(),
                100 * r.report.bus_utilization(), r.report.bus_wait_us,
                self_relative_speedup(sweep, i));
  }
  bench::rule();
  const auto& last = sweep.back();
  std::printf("at %d procs: %.1f MB/s of %.0f MB/s achievable (paper: ~20 of ~25)\n",
              last.procs, last.report.bus_mb_per_s(),
              spec.machine.bus_bytes_per_us);
  return 0;
}
