// Native microbenchmarks for the thread package: fork/exit, yield, and the
// synthesized synchronization primitives.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "mp/native_platform.h"
#include "threads/scheduler.h"
#include "threads/sync.h"

namespace {

using mp::threads::CountdownLatch;
using mp::threads::Mutex;
using mp::threads::Scheduler;
using mp::threads::SchedulerConfig;

void BM_ForkJoin(benchmark::State& state) {
  mp::NativePlatformConfig cfg;
  cfg.max_procs = 1;
  mp::NativePlatform p(cfg);
  Scheduler::run(p, {}, [&](Scheduler& s) {
    for (auto _ : state) {
      CountdownLatch latch(s, 1);
      s.fork([&] { latch.count_down(); });
      latch.await();
    }
  });
}
BENCHMARK(BM_ForkJoin);

void BM_YieldSelf(benchmark::State& state) {
  mp::NativePlatformConfig cfg;
  cfg.max_procs = 1;
  mp::NativePlatform p(cfg);
  Scheduler::run(p, {}, [&](Scheduler& s) {
    for (auto _ : state) s.yield();
  });
}
BENCHMARK(BM_YieldSelf);

void BM_YieldPingPong(benchmark::State& state) {
  mp::NativePlatformConfig cfg;
  cfg.max_procs = 1;
  mp::NativePlatform p(cfg);
  Scheduler::run(p, {}, [&](Scheduler& s) {
    std::atomic<bool> stop{false};
    s.fork([&] {
      while (!stop.load(std::memory_order_relaxed)) s.yield();
    });
    for (auto _ : state) s.yield();  // each yield switches to the partner
    stop.store(true);
  });
}
BENCHMARK(BM_YieldPingPong);

void BM_UserMutexUncontended(benchmark::State& state) {
  mp::NativePlatformConfig cfg;
  cfg.max_procs = 1;
  mp::NativePlatform p(cfg);
  Scheduler::run(p, {}, [&](Scheduler& s) {
    Mutex m(s);
    for (auto _ : state) {
      m.lock();
      m.unlock();
    }
  });
}
BENCHMARK(BM_UserMutexUncontended);

void BM_ForkManyThenDrain(benchmark::State& state) {
  mp::NativePlatformConfig cfg;
  cfg.max_procs = 2;
  mp::NativePlatform p(cfg);
  const int batch = static_cast<int>(state.range(0));
  Scheduler::run(p, {}, [&](Scheduler& s) {
    for (auto _ : state) {
      CountdownLatch latch(s, batch);
      for (int i = 0; i < batch; i++) {
        s.fork([&] { latch.count_down(); });
      }
      latch.await();
    }
  });
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ForkManyThenDrain)->Arg(16)->Arg(128);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  bench::dump_metrics_json("micro_threads");
  return 0;
}
