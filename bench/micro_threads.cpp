// Native microbenchmarks for the thread package: fork/exit, yield, and the
// synthesized synchronization primitives.  `--soak=N` (default 1M) switches
// to the live-thread soak: park N threads on small pooled stack slots at
// once, assert the resident set stays inside a budget, then drain and time
// raw fork+join — the acceptance numbers for the pooled-stack work.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench_util.h"
#include "cont/cont.h"
#include "mp/native_platform.h"
#include "threads/scheduler.h"
#include "threads/sync.h"

namespace {

using mp::threads::CountdownLatch;
using mp::threads::Mutex;
using mp::threads::Scheduler;
using mp::threads::SchedulerConfig;
using mp::threads::ThreadState;

void BM_ForkJoin(benchmark::State& state) {
  mp::NativePlatformConfig cfg;
  cfg.max_procs = 1;
  mp::NativePlatform p(cfg);
  Scheduler::run(p, {}, [&](Scheduler& s) {
    for (auto _ : state) {
      CountdownLatch latch(s, 1);
      s.fork([&] { latch.count_down(); });
      latch.await();
    }
  });
}
BENCHMARK(BM_ForkJoin);

void BM_YieldSelf(benchmark::State& state) {
  mp::NativePlatformConfig cfg;
  cfg.max_procs = 1;
  mp::NativePlatform p(cfg);
  Scheduler::run(p, {}, [&](Scheduler& s) {
    for (auto _ : state) s.yield();
  });
}
BENCHMARK(BM_YieldSelf);

void BM_YieldPingPong(benchmark::State& state) {
  mp::NativePlatformConfig cfg;
  cfg.max_procs = 1;
  mp::NativePlatform p(cfg);
  Scheduler::run(p, {}, [&](Scheduler& s) {
    std::atomic<bool> stop{false};
    s.fork([&] {
      while (!stop.load(std::memory_order_relaxed)) s.yield();
    });
    for (auto _ : state) s.yield();  // each yield switches to the partner
    stop.store(true);
  });
}
BENCHMARK(BM_YieldPingPong);

void BM_UserMutexUncontended(benchmark::State& state) {
  mp::NativePlatformConfig cfg;
  cfg.max_procs = 1;
  mp::NativePlatform p(cfg);
  Scheduler::run(p, {}, [&](Scheduler& s) {
    Mutex m(s);
    for (auto _ : state) {
      m.lock();
      m.unlock();
    }
  });
}
BENCHMARK(BM_UserMutexUncontended);

void BM_ForkManyThenDrain(benchmark::State& state) {
  mp::NativePlatformConfig cfg;
  cfg.max_procs = 2;
  mp::NativePlatform p(cfg);
  const int batch = static_cast<int>(state.range(0));
  Scheduler::run(p, {}, [&](Scheduler& s) {
    for (auto _ : state) {
      CountdownLatch latch(s, batch);
      for (int i = 0; i < batch; i++) {
        s.fork([&] { latch.count_down(); });
      }
      latch.await();
    }
  });
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ForkManyThenDrain)->Arg(16)->Arg(128);

// Resident set in bytes, from /proc/self/statm (Linux; 0 elsewhere).
std::size_t resident_bytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long vsize = 0, resident = 0;
  const int n = std::fscanf(f, "%lu %lu", &vsize, &resident);
  std::fclose(f);
  if (n != 2) return 0;
  return static_cast<std::size_t>(resident) *
         static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
}

// The million-thread soak.  Every thread forks on a small pooled slot and
// parks; with all N live at once the resident set must stay inside the
// budget (MPNJ_SOAK_RSS_MB, default 12 GiB — ~8 GiB of 8 KiB stacks plus
// cores and scheduler state).  Guard pages are off so N slots cost N/8192
// VMAs instead of 2N (vm.max_map_count is 65530 on stock kernels); overflow
// attribution still works through the pool's committed-neighbour check.
int run_soak(long n) {
  auto& pool = mp::cont::SegmentPool::instance();
  mp::NativePlatformConfig cfg;
  cfg.max_procs = 2;
  cfg.stack = mp::cont::StackConfig{}
                  .with_small_stack_bytes(8 * 1024)
                  .with_guard_pages(0)
                  .with_slots_per_arena(8192)
                  .with_cache_slots_per_proc(64)
                  .with_global_free_target(1024);
  mp::NativePlatform p(cfg);

  long budget_mb = 12 * 1024;
  if (const char* e = std::getenv("MPNJ_SOAK_RSS_MB")) {
    budget_mb = std::atol(e);
  }

  bool ok = true;
  Scheduler::run(p, {}, [&](Scheduler& s) {
    std::vector<ThreadState> parked(static_cast<std::size_t>(n));
    std::atomic<std::size_t> idx{0};
    // Raw s.fork, not fork_thread: the MLthreads alert registry is an O(n)
    // list and would turn the soak quadratic.
    const auto opts = Scheduler::SpawnOpts{}
                          .with_stack(mp::cont::StackClass::kSmall)
                          .with_name("soak");
    CountdownLatch done(s, static_cast<int>(n));
    for (long i = 0; i < n; i++) {
      s.fork(
          [&] {
            s.suspend([&](ThreadState t) {
              parked[idx.fetch_add(1, std::memory_order_relaxed)] =
                  std::move(t);
            });
            done.count_down();
          },
          opts);
      // Yield periodically so children run and park instead of piling a
      // million entries onto the ready queue.
      if ((i & 15) == 15) s.yield();
    }
    while (idx.load(std::memory_order_acquire) <
           static_cast<std::size_t>(n)) {
      s.yield();
    }

    const std::size_t rss = resident_bytes();
    const std::size_t committed = pool.committed_bytes();
    std::printf(
        "soak: live=%ld rss_mb=%zu committed_stack_mb=%zu slots_created=%ld "
        "budget_mb=%ld\n",
        n, rss >> 20, committed >> 20, pool.total_created(), budget_mb);
    if (rss >> 20 > static_cast<std::size_t>(budget_mb)) {
      std::fprintf(stderr, "soak: FAIL resident set %zu MB over budget %ld MB\n",
                   rss >> 20, budget_mb);
      ok = false;
    }

    for (auto& t : parked) s.reschedule(std::move(t));
    parked.clear();
    done.await();

    // Drained: everything is back in the pool.  Trim, then time raw
    // fork+join through the (now hot) per-proc caches — the A/B number
    // against MPNJ_STACK_POOL=0.
    pool.trim();
    std::printf("soak: after drain committed_stack_mb=%zu outstanding=%ld\n",
                pool.committed_bytes() >> 20, pool.outstanding());

    constexpr long kTimed = 50000;
    const auto t0 = std::chrono::steady_clock::now();
    for (long i = 0; i < kTimed; i++) {
      CountdownLatch latch(s, 1);
      s.fork([&] { latch.count_down(); }, opts);
      latch.await();
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count() /
        static_cast<double>(kTimed);
    std::printf("soak: fork+join %.0f ns/op (pooling=%s)\n", ns,
                pool.config().pooling ? "on" : "off");
  });
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; i++) {
    if (std::strncmp(argv[i], "--soak", 6) == 0) {
      long n = 1000000;
      if (argv[i][6] == '=') n = std::atol(argv[i] + 7);
      if (n <= 0) n = 1000000;
      return run_soak(n);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  bench::dump_metrics_json("micro_threads");
  return 0;
}
