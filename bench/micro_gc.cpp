// Native microbenchmarks for the heap: allocation fast path (the paper's
// design requires no proc synchronization on it), store barrier, and
// collection cost per live word.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "gc/heap.h"
#include "mp/native_platform.h"

namespace {

using mp::gc::Roots;
using mp::gc::Value;

void BM_AllocRecord2(benchmark::State& state) {
  mp::NativePlatformConfig cfg;
  cfg.max_procs = 1;
  cfg.heap.nursery_bytes = 8u << 20;
  mp::NativePlatform p(cfg);
  p.run([&] {
    auto& h = p.heap();
    for (auto _ : state) {
      benchmark::DoNotOptimize(
          h.alloc_record({Value::from_int(1), Value::from_int(2)}));
    }
  });
  state.SetBytesProcessed(state.iterations() * 24);
}
BENCHMARK(BM_AllocRecord2);

void BM_AllocRef(benchmark::State& state) {
  mp::NativePlatformConfig cfg;
  cfg.max_procs = 1;
  cfg.heap.nursery_bytes = 8u << 20;
  mp::NativePlatform p(cfg);
  p.run([&] {
    auto& h = p.heap();
    for (auto _ : state) {
      benchmark::DoNotOptimize(h.alloc_ref(Value::from_int(3)));
    }
  });
}
BENCHMARK(BM_AllocRef);

void BM_StoreWithBarrier(benchmark::State& state) {
  mp::NativePlatformConfig cfg;
  cfg.max_procs = 1;
  mp::NativePlatform p(cfg);
  p.run([&] {
    auto& h = p.heap();
    Roots<1> r;
    r[0] = h.alloc_array(64, Value::from_int(0));
    h.collect_now();  // promote: stores now hit the old-generation barrier
    std::size_t i = 0;
    for (auto _ : state) {
      h.store(r[0], i++ & 63, Value::from_int(1));
    }
  });
}
BENCHMARK(BM_StoreWithBarrier);

// Arg 0: live records per collection.  Arg 1: 0 = the paper's sequential
// Cheney scan, 1 = gc::ParallelCopier (here with a single worker, so the
// delta is the copier's block/termination overhead rather than speedup).
void BM_MinorCollection(benchmark::State& state) {
  const auto live_records = static_cast<std::size_t>(state.range(0));
  mp::NativePlatformConfig cfg;
  cfg.max_procs = 1;
  cfg.heap.nursery_bytes = 16u << 20;
  cfg.heap.old_bytes = 64u << 20;
  cfg.heap.parallel_gc = state.range(1) != 0;
  mp::NativePlatform p(cfg);
  p.run([&] {
    auto& h = p.heap();
    for (auto _ : state) {
      state.PauseTiming();
      std::vector<mp::gc::GlobalRoot> live;
      live.reserve(live_records);
      for (std::size_t i = 0; i < live_records; i++) {
        live.emplace_back(
            h, h.alloc_record({Value::from_int(static_cast<long>(i)),
                               Value::from_int(2)}));
      }
      state.ResumeTiming();
      h.collect_now();
    }
  });
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(live_records));
}
BENCHMARK(BM_MinorCollection)
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Args({50000, 0})
    ->Args({50000, 1});

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  bench::dump_metrics_json("micro_gc");
  return 0;
}
