// Native microbenchmarks for the selective-communication layer: rendezvous
// cost, select over multiple channels, and event composition overhead.

#include <benchmark/benchmark.h>

#include "cml/cml.h"
#include "mp/native_platform.h"

namespace {

using mp::cont::Unit;
using mp::cml::Channel;
using mp::cml::Event;
using mp::threads::Scheduler;

void BM_ChannelPingPong(benchmark::State& state) {
  mp::NativePlatformConfig cfg;
  cfg.max_procs = 1;
  mp::NativePlatform p(cfg);
  Scheduler::run(p, {}, [&](Scheduler& s) {
    Channel<int> ping(s), pong(s);
    s.fork([&] {
      for (;;) {
        const int v = ping.recv();
        if (v < 0) break;
        pong.send(v);
      }
    });
    for (auto _ : state) {
      ping.send(1);
      benchmark::DoNotOptimize(pong.recv());
    }
    ping.send(-1);
  });
}
BENCHMARK(BM_ChannelPingPong);

void BM_SelectOverChannels(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  mp::NativePlatformConfig cfg;
  cfg.max_procs = 1;
  mp::NativePlatform p(cfg);
  Scheduler::run(p, {}, [&](Scheduler& s) {
    std::vector<std::unique_ptr<Channel<int>>> chans;
    std::vector<Channel<int>*> ptrs;
    for (int i = 0; i < n; i++) {
      chans.push_back(std::make_unique<Channel<int>>(s));
      ptrs.push_back(chans.back().get());
    }
    std::atomic<bool> stop{false};
    s.fork([&] {
      // Always feed the last channel; the selector pays for scanning all n.
      while (!stop.load(std::memory_order_relaxed)) {
        chans.back()->send(7);
      }
    });
    for (auto _ : state) {
      benchmark::DoNotOptimize(mp::cml::select_receive<int>(ptrs));
    }
    stop.store(true);
    // Drain without blocking: the feeder may be parked in send (drained
    // here) or merely queued (it observes `stop` when next scheduled).
    // Polling order is randomized, so `always` may fire while a sender is
    // parked; require many consecutive empty polls before concluding done.
    int empty_polls = 0;
    while (empty_polls < 32) {
      const int got = Event<int>::choose({chans.back()->recv_event(),
                                          Event<int>::always(-1)})
                          .sync(s);
      empty_polls = (got == -1) ? empty_polls + 1 : 0;
    }
  });
}
BENCHMARK(BM_SelectOverChannels)->Arg(1)->Arg(4)->Arg(16);

void BM_EventWrapOverhead(benchmark::State& state) {
  mp::NativePlatformConfig cfg;
  cfg.max_procs = 1;
  mp::NativePlatform p(cfg);
  Scheduler::run(p, {}, [&](Scheduler& s) {
    for (auto _ : state) {
      int v = Event<int>::always(3)
                  .wrap<int>([](int x) { return x * 2; })
                  .sync(s);
      benchmark::DoNotOptimize(v);
    }
  });
}
BENCHMARK(BM_EventWrapOverhead);

}  // namespace

BENCHMARK_MAIN();
