// GC latency table: minor-pause percentiles of the card-marking remembered
// set against the paper's store-list barrier, on real kernel threads.
//
// The store list makes every old-generation store grow the next minor's
// root set, so pause time scales with the WRITE COUNT between collections;
// the card table re-scans dirty cards, so pause time scales with the number
// of distinct written LOCATIONS.  Hot-skewed KV-style stores make the two
// regimes maximally different.  Both modes must produce identical final
// heaps — the remembered set is invisible to the program — and the binary
// exits nonzero on a checksum mismatch or a blown --budget-us SLO, so CI
// can use it as a latency regression gate.
//
// Workloads (4 native procs, 256 MB heap: 2 x 128 MB semispaces plus the
// shared nursery):
//   kv    a pre-promoted 8K-slot table takes hot-skewed stores of fresh
//         records (7 of 8 writes land in 64 slots per lane)
//   net   LOS-sized byte-buffer "frames" cycle through a ring while small
//         metadata records are stored into an old-generation header table;
//         frames are swept (never copied) and majors fire on LOS pressure

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cont/cont.h"
#include "gc/heap.h"
#include "gc/roots.h"
#include "gc/value.h"
#include "mp/native_platform.h"

using mp::cont::callcc;
using mp::cont::Cont;
using mp::cont::Unit;
using mp::gc::GlobalRoot;
using mp::gc::Heap;
using mp::gc::HeapConfig;
using mp::gc::RemsetMode;
using mp::gc::Roots;
using mp::gc::Value;

namespace {

constexpr int kProcs = 4;

struct Outcome {
  std::vector<std::uint64_t> minor_us;  // exact per-minor pause samples
  std::uint64_t majors = 0;
  std::uint64_t checksum = 0;
  std::uint64_t stores = 0;
  std::uint64_t cards_scanned = 0;
};

double percentile(std::vector<std::uint64_t> v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(v.size() - 1) + 0.5);
  return static_cast<double>(v[std::min(idx, v.size() - 1)]);
}

// Run `setup` on the root proc, then `lane_body(heap, lane)` on all four
// procs in parallel (lane 0 stays on the forking flow), then `finish` once
// every lane has drained.  `finish` must also reset any GlobalRoots it was
// handed — the heap dies with the platform before this function returns.
Outcome run_workload(const HeapConfig& heap_cfg,
                     const std::function<void(Heap&)>& setup,
                     const std::function<void(Heap&, int)>& lane_body,
                     const std::function<std::uint64_t(Heap&)>& finish) {
  mp::NativePlatformConfig cfg;
  cfg.max_procs = kProcs;
  cfg.heap = heap_cfg;
  cfg.heap.with_record_pauses(true);
  mp::NativePlatform p(cfg);

  Outcome out;
  std::atomic<int> lanes_done{0};
  p.run([&] {
    Heap& h = p.heap();
    setup(h);
    h.collect_now();  // promote the shared tables before the stores start
    for (int lane = 1; lane < kProcs; lane++) {
      callcc<Unit>([&, lane](Cont<Unit> parent) -> Unit {
        if (!p.try_acquire_proc(std::move(parent), 0)) {
          std::fprintf(stderr, "fatal: no proc for lane %d\n", lane);
          std::exit(2);
        }
        // This body is now the lane worker on the original proc; the
        // forking flow continues on the freshly acquired proc.
        lane_body(h, lane);
        lanes_done.fetch_add(1);
        p.release_proc();
      });
    }
    lane_body(h, 0);
    lanes_done.fetch_add(1);
    while (lanes_done.load() < kProcs) p.work(50);
    h.collect_now();  // drain the nursery so `finish` reads a settled heap
    out.checksum = finish(h);
  });

  for (const auto& s : p.heap().pause_log()) {
    if (s.major_us == 0) out.minor_us.push_back(s.minor_us);
    else out.majors++;
  }
  const auto stats = p.heap().stats();
  out.stores = stats.stores_recorded;
  out.cards_scanned = stats.cards_scanned;
  return out;
}

std::uint64_t checksum_records(Value table, std::size_t slots) {
  std::uint64_t sum = 0;
  for (std::size_t s = 0; s < slots; s++) {
    const Value v = table.field(s);
    if (!v.is_ptr()) continue;  // never-written slots still hold int 0
    sum = sum * 1099511628211ull +
          static_cast<std::uint64_t>(v.field(0).as_int() * 131 +
                                     v.field(1).as_int());
  }
  return sum;
}

// ---- kv: hot-skewed record stores into a pre-promoted table ----

// 4K slots, 32 KB: small enough for a nursery chunk (so it is born in the
// nursery, not the LOS) and promoted into the old generation by setup.
constexpr std::size_t kKvSlotsPerLane = 1024;

Outcome run_kv(RemsetMode mode, int ops_per_lane) {
  HeapConfig heap;
  heap.with_nursery_bytes(1u << 20)
      .with_old_bytes(128u << 20)
      // Keep the 32 KB table itself out of the LOS: this workload measures
      // the old-generation barrier.
      .with_los_threshold_bytes(1u << 20)
      .with_remset(mode);

  GlobalRoot table;
  auto setup = [&table](Heap& h) {
    Roots<1> r;
    r[0] = h.alloc_array(kProcs * kKvSlotsPerLane, Value::from_int(0));
    table = GlobalRoot(h, r[0]);
  };
  auto lane_body = [ops_per_lane, &table](Heap& h, int lane) {
    std::uint64_t rng = 0xdecafbad + static_cast<std::uint64_t>(lane);
    for (int i = 0; i < ops_per_lane; i++) {
      rng = rng * 6364136223846793005ull + 1442695040888963407ull;
      // 7 of 8 stores land in 64 hot slots of this lane's slice.
      const std::uint64_t roll = rng >> 33;
      const std::size_t slot =
          static_cast<std::size_t>(lane) * kKvSlotsPerLane +
          ((roll & 7u) != 0 ? (roll >> 3) % 64
                            : (roll >> 3) % kKvSlotsPerLane);
      Roots<1> r;
      r[0] = h.alloc_record({Value::from_int(lane), Value::from_int(i)});
      h.store(table.get(), slot, r[0]);
      if ((roll & 0x1Fu) == 1) {
        // Allocation churn: drive minors without adding barrier work.
        for (int n = 0; n < 16; n++) h.alloc_record({Value::from_int(n)});
      }
    }
  };
  auto finish = [&table](Heap&) {
    const std::uint64_t sum =
        checksum_records(table.get(), kProcs * kKvSlotsPerLane);
    table = GlobalRoot();
    return sum;
  };
  return run_workload(heap, setup, lane_body, finish);
}

// ---- net: LOS frame buffers plus ring stores ----

constexpr std::size_t kNetSlotsPerLane = 64;  // 256-slot rings: old gen
constexpr std::size_t kFrameBytes = 32 * 1024;

Outcome run_net(RemsetMode mode, int ops_per_lane) {
  HeapConfig heap;
  heap.with_nursery_bytes(1u << 20)
      .with_old_bytes(128u << 20)
      .with_remset(mode);

  GlobalRoot headers;
  GlobalRoot frames;
  auto setup = [&headers, &frames](Heap& h) {
    Roots<2> r;
    r[0] = h.alloc_array(kProcs * kNetSlotsPerLane, Value::from_int(0));
    r[1] = h.alloc_array(kProcs * kNetSlotsPerLane, Value::from_int(0));
    headers = GlobalRoot(h, r[0]);
    frames = GlobalRoot(h, r[1]);
  };
  auto lane_body = [ops_per_lane, &headers, &frames](Heap& h, int lane) {
    const std::string payload(kFrameBytes, 'x');
    std::uint64_t rng = 0xfeedface + static_cast<std::uint64_t>(lane);
    for (int i = 0; i < ops_per_lane; i++) {
      rng = rng * 6364136223846793005ull + 1442695040888963407ull;
      const std::size_t slot =
          static_cast<std::size_t>(lane) * kNetSlotsPerLane +
          (rng >> 33) % kNetSlotsPerLane;
      Roots<1> r;
      r[0] = h.alloc_record({Value::from_int(lane), Value::from_int(i)});
      h.store(headers.get(), slot, r[0]);
      if ((rng & 0x3Fu) == 0) {
        // A fresh LOS-sized frame replaces this connection's buffer; the
        // old one becomes sweepable garbage.
        r[0] = h.alloc_bytes(payload);
        h.store(frames.get(), slot, r[0]);
      } else if ((rng & 0x3Fu) == 1) {
        for (int n = 0; n < 16; n++) h.alloc_record({Value::from_int(n)});
      }
    }
  };
  auto finish = [&headers, &frames](Heap& h) {
    std::uint64_t sum =
        checksum_records(headers.get(), kProcs * kNetSlotsPerLane);
    for (std::size_t s = 0; s < kProcs * kNetSlotsPerLane; s++) {
      const Value f = frames.get().field(s);
      if (f.is_ptr()) sum = sum * 31 + f.length() + (h.in_los(f) ? 1 : 0);
    }
    headers = GlobalRoot();
    frames = GlobalRoot();
    return sum;
  };
  return run_workload(heap, setup, lane_body, finish);
}

struct Workload {
  const char* name;
  Outcome (*run)(RemsetMode, int);
  int ops;
};

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::flag(argc, argv, "--quick");
  double budget_us = 0;  // 0 = no SLO gate
  for (int i = 1; i < argc - 1; i++) {
    if (std::strcmp(argv[i], "--budget-us") == 0) {
      budget_us = std::atof(argv[i + 1]);
    }
  }

  bench::header("T9", "minor-GC pause percentiles: card table vs store list",
                "beyond the paper: pause work bounded by written locations "
                "(cards), not write count (store list)");
  std::printf("(native, %d procs, 256 MB heap; exact per-pause samples)\n\n",
              kProcs);
  std::printf("%-5s %-6s %8s %8s %9s %9s %9s %9s %10s\n", "wkld", "remset",
              "minors", "majors", "p50(us)", "p99(us)", "p999(us)", "max(us)",
              "stores");
  bench::rule();

  const Workload workloads[] = {
      {"kv", run_kv, quick ? 1000000 : 3000000},
      {"net", run_net, quick ? 300000 : 500000},
  };

  bool fail = false;
  double ratios[2] = {0, 0};
  int row = 0;
  for (const Workload& w : workloads) {
    std::uint64_t sums[2] = {0, 0};
    double p999[2] = {0, 0};
    std::vector<std::uint64_t> card_minors;
    for (const RemsetMode mode : {RemsetMode::kList, RemsetMode::kCard}) {
      const int m = mode == RemsetMode::kCard ? 1 : 0;
      const Outcome o = w.run(mode, w.ops);
      sums[m] = o.checksum;
      p999[m] = percentile(o.minor_us, 0.999);
      if (m != 0) card_minors = o.minor_us;
      std::printf("%-5s %-6s %8zu %8llu %9.0f %9.0f %9.0f %9.0f %10llu\n",
                  w.name, m != 0 ? "card" : "list", o.minor_us.size(),
                  static_cast<unsigned long long>(o.majors),
                  percentile(o.minor_us, 0.50), percentile(o.minor_us, 0.99),
                  p999[m],
                  o.minor_us.empty()
                      ? 0.0
                      : static_cast<double>(*std::max_element(
                            o.minor_us.begin(), o.minor_us.end())),
                  static_cast<unsigned long long>(o.stores));
    }
    if (sums[0] != sums[1]) {
      std::printf("FAIL: %s checksum differs between remset modes "
                  "(list=%llx card=%llx)\n",
                  w.name, static_cast<unsigned long long>(sums[0]),
                  static_cast<unsigned long long>(sums[1]));
      fail = true;
    }
    if (p999[1] > 0) ratios[row] = p999[0] / p999[1];
    if (budget_us > 0) {
      // SLO gate on the card-mode minor p99.9.  The single worst sample is
      // dropped first: these are wall-clock measurements on a shared
      // machine, and one OS preemption blip should not fail CI.  The table
      // above still reports the raw distribution.
      std::vector<std::uint64_t> gated = card_minors;
      if (gated.size() > 1) {
        gated.erase(std::max_element(gated.begin(), gated.end()));
      }
      const double gated_p999 = percentile(gated, 0.999);
      if (gated_p999 > budget_us) {
        std::printf("FAIL: %s card-mode minor p99.9 %.0fus exceeds budget "
                    "%.0fus\n",
                    w.name, gated_p999, budget_us);
        fail = true;
      }
    }
    row++;
  }
  bench::rule();
  for (int i = 0; i < 2; i++) {
    if (ratios[i] > 0) {
      std::printf("%-5s minor p99.9 improvement (list/card): %.2fx\n",
                  workloads[i].name, ratios[i]);
    }
  }
  std::printf("expected: card p99.9 well under the list baseline (>= 3x on "
              "kv);\nidentical checksums prove the barriers are "
              "observationally equal\n");
  bench::dump_metrics_json("table_gc_latency");
  return fail ? 1 : 0;
}
