// Portability table (section 6): the paper counts the lines of
// system-dependent code in each MP port (SGI: 144 C + 15 asm; Sequent:
// 267 C + 10 asm; Luna: 630 C + 34 asm) against ~6750 C + 650 asm for the
// whole runtime.  The analogous split here: the machine-dependent context
// switch + test-and-set layer and the per-backend proc/lock glue, against
// the generic platform, GC, thread, and communication code.

#include <dirent.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

int count_lines(const std::string& path) {
  std::ifstream in(path);
  if (!in) return -1;
  int n = 0;
  std::string line;
  while (std::getline(in, line)) n++;
  return n;
}

struct Group {
  const char* label;
  std::vector<std::string> files;
  int total = 0;
};

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  bench::header("T1", "system-dependent vs generic lines of code",
                "SGI port: 144 C + 15 asm; Sequent: 267 C + 10 asm; Luna: "
                "630 C + 34 asm; entire runtime ~6750 C + 650 asm — the "
                "system-dependent layer is a small fraction of the whole");
  const std::string src = std::string(MPNJ_SOURCE_DIR) + "/src/";
  Group groups[] = {
      {"machine-dependent: x86-64 context switch (asm)",
       {src + "arch/ctx_x86_64.S"}},
      {"machine-dependent: context-switch glue + test-and-set",
       {src + "arch/ctx.cpp", src + "arch/ctx.h", src + "arch/tas.h"}},
      {"portable fallback port (ucontext)", {src + "arch/ctx_ucontext.cpp"}},
      {"backend: native kernel threads",
       {src + "mp/native_platform.cpp", src + "mp/native_platform.h"}},
      {"backend: simulated multiprocessor",
       {src + "mp/sim_platform.cpp", src + "mp/sim_platform.h",
        src + "sim/engine.cpp", src + "sim/engine.h", src + "sim/machine.cpp",
        src + "sim/machine.h"}},
      {"generic: continuations + segments",
       {src + "cont/cont.cpp", src + "cont/cont.h", src + "cont/segment.cpp",
        src + "cont/segment.h", src + "cont/exec.cpp", src + "cont/exec.h"}},
      {"generic: platform interface + signals",
       {src + "mp/platform.cpp", src + "mp/platform.h"}},
      {"generic: heap + collector",
       {src + "gc/heap.cpp", src + "gc/heap.h", src + "gc/value.h",
        src + "gc/roots.h", src + "gc/hooks.h"}},
      {"client: thread package + sync",
       {src + "threads/scheduler.cpp", src + "threads/scheduler.h",
        src + "threads/queue.cpp", src + "threads/queue.h",
        src + "threads/sync.cpp", src + "threads/sync.h"}},
      {"client: selective communication / CML", {src + "cml/cml.h"}},
  };

  std::printf("%-52s %10s\n", "layer", "lines");
  bench::rule();
  int grand = 0;
  int machine_dep = 0;
  for (Group& g : groups) {
    for (const auto& f : g.files) {
      const int n = count_lines(f);
      if (n < 0) {
        std::printf("  (missing: %s)\n", f.c_str());
        continue;
      }
      g.total += n;
    }
    grand += g.total;
    if (std::strncmp(g.label, "machine-dependent", 17) == 0) {
      machine_dep += g.total;
    }
    std::printf("%-52s %10d\n", g.label, g.total);
  }
  bench::rule();
  std::printf("%-52s %10d\n", "total counted", grand);
  std::printf("machine-dependent share: %.1f%% (paper's ports: 2-9%% of the runtime)\n",
              100.0 * machine_dep / grand);
  return 0;
}
