// Figure 6: self-relative speedup for the five ML-Threads benchmarks and
// the `seq` baseline on the 16-processor Sequent Symmetry, under the
// evaluated thread package (distributed run queue, signal-based preemption,
// procs held for the duration).  All measurements include garbage
// collection time, as in the paper.

#include <cstdlib>

#include "bench_util.h"

using namespace mp::workloads;

int main(int argc, char** argv) {
  const bool quick = bench::flag(argc, argv, "--quick");
  // MPNJ_QUEUE overrides the evaluated distributed run queue, so the same
  // curves can be regenerated under the work-stealing / central disciplines.
  const char* queue_env = std::getenv("MPNJ_QUEUE");
  bench::header(
      "F6", "self-relative speedup on the simulated Sequent Symmetry S81",
      "mm shows excellent speedup limited by allocation bus traffic and "
      "tracks seq; allpairs/mst/abisort are limited by sequential GC and "
      "available parallelism; simple is worst (idle procs)");

  if (queue_env != nullptr && *queue_env != '\0') {
    std::printf("queue discipline: %s\n", queue_env);
  }
  const std::vector<int> grid = bench::sequent_grid(quick);
  std::printf("%-9s", "procs");
  for (const int p : grid) std::printf("%8d", p);
  std::printf("   verified\n");
  bench::rule();

  bool all_ok = true;
  for (const std::string& w :
       {std::string("seq"), std::string("mm"), std::string("abisort"),
        std::string("allpairs"), std::string("mst"), std::string("simple")}) {
    SimRunSpec spec;
    spec.workload = w;
    if (queue_env != nullptr && *queue_env != '\0') spec.queue = queue_env;
    const auto sweep = sweep_procs(spec, grid);
    bool ok = true;
    std::printf("%-9s", w.c_str());
    for (std::size_t i = 0; i < sweep.size(); i++) {
      std::printf("%8.2f", self_relative_speedup(sweep, i));
      ok = ok && sweep[i].verified;
    }
    std::printf("   %s\n", ok ? "yes" : "NO");
    all_ok = all_ok && ok;
  }
  bench::rule();
  std::printf("series are self-relative speedups T(1)/T(p) (seq: p*T(1)/T(p));\n");
  std::printf("all runs include GC time; results %s against sequential references\n",
              all_ok ? "verified" : "FAILED VERIFICATION");
  return all_ok ? 0 : 1;
}
