// Nursery-size ablation (section 7's future work): SML/NJ's big allocation
// regions guarantee "a cache-miss on almost every allocation"; the authors
// propose "a multi-generational collector with very small young generations
// that can fit in the cache".  Sweeping the nursery size on the Sequent
// model shows the trade: a cache-fitting nursery slashes allocation bus
// traffic, at the price of more frequent (sequential, world-stopping)
// minor collections.

#include "bench_util.h"

using namespace mp::workloads;

int main(int argc, char** argv) {
  const bool quick = bench::flag(argc, argv, "--quick");
  bench::header("A-CACHE", "nursery size vs bus traffic vs GC frequency (mm, 16 procs)",
                "section 7: a cache-fitting young generation would fix the "
                "cache-miss-per-allocation problem that saturates the bus");
  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{32u << 10, 2u << 20}
            : std::vector<std::size_t>{32u << 10, 64u << 10, 256u << 10,
                                       1u << 20, 2u << 20, 8u << 20};
  std::printf("%12s %12s %8s %8s %10s %10s %10s\n", "nursery", "T(us)",
              "minorGC", "bus MB/s", "bus-util", "gc-share", "speedup16");
  bench::rule();
  double t1_big = 0;
  {
    SimRunSpec one;
    one.workload = "mm";
    one.machine = mp::sim::sequent_s81(1);
    const auto r1 = run_sim(one);
    t1_big = r1.report.total_us;
  }
  for (const std::size_t nursery : sizes) {
    SimRunSpec spec;
    spec.workload = "mm";
    spec.machine = mp::sim::sequent_s81(16);
    spec.nursery_bytes = nursery;
    const auto r = run_sim(spec);
    const double proc_time = r.report.total_us * 16;
    std::printf("%10zuK %12.0f %8llu %8.2f %9.1f%% %9.1f%% %10.2f\n",
                nursery / 1024, r.report.total_us,
                static_cast<unsigned long long>(r.report.heap.minor_gcs),
                r.report.bus_mb_per_s(), 100 * r.report.bus_utilization(),
                100 * (r.report.gc_us + r.report.gc_wait_us) / proc_time,
                t1_big / r.report.total_us);
    if (!r.verified) {
      std::printf("VERIFICATION FAILED\n");
      return 1;
    }
  }
  bench::rule();
  std::printf("the 16MHz-386 cache is modelled at %.0f KiB: nurseries at or\n",
              mp::sim::sequent_s81(1).cache_bytes / 1024);
  std::printf("below it pay %.0f%% of the write-miss traffic but stop the world\n",
              100 * mp::sim::sequent_s81(1).cached_alloc_bus_factor);
  std::printf("far more often; the sweet spot balances bus vs sequential GC\n");
  return 0;
}
