// SGI companion to Figure 6 (section 6's closing paragraph): on the
// 4D/380S the processors are much faster but the bus is only slightly
// wider, so main-memory contention swamps every other effect — sequential
// GC, idle time and lock contention were "not significant factors" there.

#include "bench_util.h"

using namespace mp::workloads;

int main(int argc, char** argv) {
  const bool quick = bench::flag(argc, argv, "--quick");
  bench::header(
      "F6b", "speedup and bus saturation on the simulated SGI 4D/380S",
      "much faster processors, only ~30 MB/s of bus: main-memory contention "
      "swamps all other effects (GC/idle/locks insignificant by comparison)");

  const std::vector<int> grid = quick ? std::vector<int>{1, 4, 8}
                                      : std::vector<int>{1, 2, 3, 4, 6, 8};

  std::printf("%-9s %5s %9s %8s %8s %8s %8s %8s\n", "workload", "procs",
              "speedup", "bus%", "buswait%", "gc%", "idle%", "spin%");
  bench::rule();
  for (const std::string& w :
       {std::string("seq"), std::string("mm"), std::string("allpairs"),
        std::string("abisort")}) {
    SimRunSpec spec;
    spec.workload = w;
    spec.machine = mp::sim::sgi_4d380(8);
    const auto sweep = sweep_procs(spec, grid);
    for (std::size_t i = 0; i < sweep.size(); i++) {
      const auto& r = sweep[i];
      const double proc_time = r.report.total_us * r.procs;
      std::printf("%-9s %5d %9.2f %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
                  w.c_str(), r.procs, self_relative_speedup(sweep, i),
                  100 * r.report.bus_utilization(),
                  100 * r.report.bus_wait_us / proc_time,
                  100 * (r.report.gc_us + r.report.gc_wait_us) / proc_time,
                  100 * r.report.idle_fraction(),
                  100 * r.report.spin_us / proc_time);
    }
    bench::rule();
  }
  std::printf("expected shape: bus utilization saturates quickly; the buswait\n");
  std::printf("share dwarfs the gc/spin shares (the Sequent's limiters)\n");
  return 0;
}
