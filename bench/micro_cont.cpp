// T6 — native microbenchmarks for the continuation layer, checking the
// paper's section 2 claim: because nothing is copied at capture, "callcc
// simply allocates and initializes a new closure ...; the same work is
// required to call an arbitrary procedure."  Capture+throw should therefore
// be within a small constant factor of an ordinary indirect call plus an
// allocation — not the stack-copy cost of stackful callcc implementations.

#include <benchmark/benchmark.h>

#include <functional>

#include "cont/cont.h"
#include "cont/exec.h"

namespace {

using mp::cont::callcc;
using mp::cont::Cont;
using mp::cont::ContRef;
using mp::cont::make_entry;
using mp::cont::run_from_idle;
using mp::cont::throw_to;

// Minimal proc harness (same shape as the platform backends).
class ManualProc {
 public:
  ManualProc() {
    exec_.idle_ctx = &idle_ctx_;
    mp::cont::set_current_exec(&exec_);
  }
  ~ManualProc() { mp::cont::set_current_exec(nullptr); }
  void run(std::function<void()> f) {
    run_from_idle(make_entry(std::move(f)), exec_);
  }

 private:
  mp::cont::ExecContext exec_;
  mp::arch::Context idle_ctx_;
};

int sink_value = 0;
__attribute__((noinline)) int plain_callee(int x) {
  benchmark::DoNotOptimize(sink_value += x);
  return x + 1;
}

void BM_IndirectCall(benchmark::State& state) {
  int (*volatile fn)(int) = plain_callee;
  int acc = 0;
  for (auto _ : state) {
    acc += fn(acc);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_IndirectCall);

void BM_HeapClosureCall(benchmark::State& state) {
  // The SML/NJ cost model: a call allocates a closure; std::function is the
  // closest C++ analogue.
  for (auto _ : state) {
    int x = static_cast<int>(state.iterations());
    std::function<int()> f = [x] { return x + 1; };
    benchmark::DoNotOptimize(f());
  }
}
BENCHMARK(BM_HeapClosureCall);

void BM_CallccThrow(benchmark::State& state) {
  ManualProc proc;
  proc.run([&] {
    for (auto _ : state) {
      int v = callcc<int>([](Cont<int> k) -> int { throw_to(std::move(k), 1); });
      benchmark::DoNotOptimize(v);
    }
  });
}
BENCHMARK(BM_CallccThrow);

void BM_CallccImplicitReturn(benchmark::State& state) {
  ManualProc proc;
  proc.run([&] {
    for (auto _ : state) {
      int v = callcc<int>([](Cont<int>) -> int { return 2; });
      benchmark::DoNotOptimize(v);
    }
  });
}
BENCHMARK(BM_CallccImplicitReturn);

void BM_SegmentAcquireRelease(benchmark::State& state) {
  auto& pool = mp::cont::SegmentPool::instance();
  for (auto _ : state) {
    auto* seg = pool.acquire();
    benchmark::DoNotOptimize(seg);
    seg->drop_ref();
  }
}
BENCHMARK(BM_SegmentAcquireRelease);

void BM_ThreadSpawnRunDone(benchmark::State& state) {
  // Entry continuation created, run to completion, reclaimed: the cost of a
  // minimal thread lifetime.
  ManualProc proc;
  for (auto _ : state) {
    bool ran = false;
    proc.run([&] { ran = true; });
    benchmark::DoNotOptimize(ran);
  }
}
BENCHMARK(BM_ThreadSpawnRunDone);

}  // namespace

BENCHMARK_MAIN();
