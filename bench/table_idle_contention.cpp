// Idle-rate and lock-contention table (section 6): "simple, the worst
// case, has average processor idle rates above 50% for 10 processors or
// more.  simple also displays moderate contention for access to the run
// queues and data locks; none of the other applications showed any
// significant lock contention."

#include "bench_util.h"

using namespace mp::workloads;

int main(int argc, char** argv) {
  const bool quick = bench::flag(argc, argv, "--quick");
  bench::header("T4", "processor idle rates and lock contention",
                "simple idles >50% at 10+ procs and shows moderate run-queue/"
                "data-lock contention; other applications show none");
  const std::vector<int> grid =
      quick ? std::vector<int>{4, 10, 16} : std::vector<int>{4, 8, 10, 12, 16};

  std::printf("%-9s", "workload");
  for (const int p : grid) std::printf("   p=%-2d idle%%/spin%%", p);
  std::printf("\n");
  bench::rule();
  for (const std::string& w :
       {std::string("simple"), std::string("mst"), std::string("allpairs"),
        std::string("abisort"), std::string("mm"), std::string("seq")}) {
    std::printf("%-9s", w.c_str());
    for (const int p : grid) {
      SimRunSpec spec;
      spec.workload = w;
      spec.machine.num_procs = p;
      const auto r = run_sim(spec);
      const double proc_time = r.report.total_us * p;
      std::printf("   %9.1f / %4.1f", 100 * r.report.idle_fraction(),
                  100 * r.report.spin_us / proc_time);
    }
    std::printf("\n");
  }
  bench::rule();
  std::printf("idle%% counts both no-work polling and GC clean-point waits;\n");
  std::printf("spin%% is time spent spinning on MP mutex locks\n");
  return 0;
}
