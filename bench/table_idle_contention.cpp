// Idle-rate and lock-contention table (section 6): "simple, the worst
// case, has average processor idle rates above 50% for 10 processors or
// more.  simple also displays moderate contention for access to the run
// queues and data locks; none of the other applications showed any
// significant lock contention."

#include "bench_util.h"

using namespace mp::workloads;

int main(int argc, char** argv) {
  const bool quick = bench::flag(argc, argv, "--quick");
  bench::header("T4", "processor idle rates and lock contention",
                "simple idles >50% at 10+ procs and shows moderate run-queue/"
                "data-lock contention; other applications show none");
  const std::vector<int> grid =
      quick ? std::vector<int>{4, 10, 16} : std::vector<int>{4, 8, 10, 12, 16};

  std::printf("%-9s", "workload");
  for (const int p : grid) std::printf("   p=%-2d idle%%/spin%%", p);
  std::printf("\n");
  bench::rule();
  for (const std::string& w :
       {std::string("simple"), std::string("mst"), std::string("allpairs"),
        std::string("abisort"), std::string("mm"), std::string("seq")}) {
    std::printf("%-9s", w.c_str());
    for (const int p : grid) {
      SimRunSpec spec;
      spec.workload = w;
      spec.machine.num_procs = p;
      const auto r = run_sim(spec);
      const double proc_time = r.report.total_us * p;
      std::printf("   %9.1f / %4.1f", 100 * r.report.idle_fraction(),
                  100 * r.report.spin_us / proc_time);
    }
    std::printf("\n");
  }
  bench::rule();
  std::printf("idle%% counts both no-work polling and GC clean-point waits;\n");
  std::printf("spin%% is time spent spinning on MP mutex locks\n");

  // A-LOCK companion: the same idle/spin lens on a data lock once threads
  // outnumber procs (the contention regime section 6 only brushes against).
  // The tas baseline burns proc time in guard spins and backoff delays;
  // queue claims park through the scheduler, so the burn column collapses
  // while throughput and the max-waiter-delay fairness column improve.
  std::printf("\n");
  bench::header("A-LOCK/idle", "data-lock contention at high thread:proc "
                "ratios (4 procs)",
                "parking queue locks never burn a proc on a waiter; the "
                "tas+backoff baseline spins at the guard");
  constexpr int kProcs = 4;
  const std::vector<int> ratios =
      quick ? std::vector<int>{16} : std::vector<int>{16, 32};
  const int iters = quick ? 20 : 40;
  std::printf("%7s | %5s | %9s | %12s %12s | %8s %6s\n", "ratio", "disc",
              "ops/ms", "max wait(us)", "avg wait(us)", "spin(us)", "parks");
  bench::rule();
  for (const int ratio : ratios) {
    const int threads = kProcs * ratio;
    for (const char* disc : {"tas", "queue"}) {
      if (!bench::discipline_row_enabled(disc)) continue;
      const auto r = bench::contended_mutex(
          std::strcmp(disc, "tas") == 0 ? mp::threads::LockDiscipline::kTas
                                        : mp::threads::LockDiscipline::kQueue,
          kProcs, threads, iters);
      std::printf("%4d:%-2d | %5s | %9.1f | %12.0f %12.1f | %8.0f %6llu\n",
                  threads, kProcs, disc, r.ops_per_ms, r.max_wait_us,
                  r.avg_wait_us, r.spin_us,
                  static_cast<unsigned long long>(r.park_waits));
    }
  }
  bench::rule();
  std::printf("spin(us) is summed proc time in MP-lock spin loops; parks is\n");
  std::printf("lock_park_waits — waits absorbed by the scheduler instead\n");
  return 0;
}
