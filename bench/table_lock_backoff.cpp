// Spin-discipline ablation (design choice from section 3.3: `lock` is in
// the interface "because some operating systems may provide a more
// efficient spin than [a naive retry loop] (e.g., by using backoff
// techniques [Anderson])").  Hammers one mutex from p procs with naive
// spinning vs exponential backoff and reports elapsed time and spin cost.

#include "bench_util.h"
#include "cont/cont.h"
#include "mp/sim_platform.h"

namespace {

struct Outcome {
  double total_us;
  double spin_us;
  std::uint64_t spin_iters;
};

Outcome contend(int procs, double backoff_us) {
  mp::SimPlatformConfig cfg;
  cfg.machine = mp::sim::sequent_s81(procs);
  cfg.lock_backoff_base_us = backoff_us;
  mp::SimPlatform p(cfg);
  constexpr int kIters = 300;
  p.run([&] {
    mp::MutexLock l = p.mutex_lock();
    std::atomic<int> done{0};
    for (int i = 1; i < procs; i++) {
      mp::cont::callcc<mp::cont::Unit>(
          [&](mp::cont::Cont<mp::cont::Unit> parent) -> mp::cont::Unit {
            p.acquire_proc(parent, 0);
            for (int n = 0; n < kIters; n++) {
              p.lock(l);
              p.work(30);  // short critical section
              p.unlock(l);
              p.work(10);
            }
            done.fetch_add(1);
            p.release_proc();
          });
    }
    for (int n = 0; n < kIters; n++) {
      p.lock(l);
      p.work(30);
      p.unlock(l);
      p.work(10);
    }
    while (done.load() < procs - 1) p.work(10);
  });
  const auto rep = p.report();
  return {rep.total_us, rep.spin_us, rep.lock_spin_iters};
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::flag(argc, argv, "--quick");
  bench::header("T7", "contended lock: naive spin vs exponential backoff",
                "backoff keeps spinning procs off the bus; naive spinning "
                "degrades as procs are added (Anderson 1990)");
  const std::vector<int> grid =
      quick ? std::vector<int>{2, 8, 16} : std::vector<int>{2, 4, 8, 12, 16};
  std::printf("%5s | %12s %12s | %12s %12s\n", "procs", "naive T(us)",
              "spin(us)", "backoff T(us)", "spin(us)");
  bench::rule();
  for (const int p : grid) {
    const Outcome naive = contend(p, 0);
    const Outcome backoff = contend(p, 5.0);
    std::printf("%5d | %12.0f %12.0f | %12.0f %12.0f\n", p, naive.total_us,
                naive.spin_us, backoff.total_us, backoff.spin_us);
  }
  bench::rule();
  std::printf("the critical path (serial critical sections) bounds both; the\n");
  std::printf("spin columns show the wasted processor time each discipline burns\n");

  // A-LOCK: thread-level mutexes once threads outnumber procs.  The proc
  // rows above spin at the platform layer; here 4 procs multiplex many
  // client threads contending on one mp::threads::Mutex, comparing the
  // paper's test-and-set + Anderson-backoff baseline (MPNJ_LOCK=tas)
  // against the parking MCS-style queue lock (default).  max/avg wait are
  // exact virtual-time acquire-to-grant delays — the fairness columns.
  std::printf("\n");
  bench::header("A-LOCK", "parking queue lock vs tas+backoff at high "
                "thread:proc ratios",
                "a spinning waiter burns a proc that could run the lock "
                "holder; queue claims park through the scheduler instead");
  constexpr int kProcs = 4;
  const std::vector<int> ratios =
      quick ? std::vector<int>{16} : std::vector<int>{16, 32, 64};
  const int iters = quick ? 20 : 40;
  std::printf("%7s | %5s | %10s %9s | %12s %12s | %6s\n", "ratio", "disc",
              "T(us)", "ops/ms", "max wait(us)", "avg wait(us)", "parks");
  bench::rule();
  for (const int ratio : ratios) {
    const int threads = kProcs * ratio;
    if (bench::discipline_row_enabled("tas")) {
      const auto tas = bench::contended_mutex(
          mp::threads::LockDiscipline::kTas, kProcs, threads, iters);
      std::printf("%4d:%-2d | %5s | %10.0f %9.1f | %12.0f %12.1f | %6llu\n",
                  threads, kProcs, "tas", tas.total_us, tas.ops_per_ms,
                  tas.max_wait_us, tas.avg_wait_us,
                  static_cast<unsigned long long>(tas.park_waits));
    }
    if (bench::discipline_row_enabled("queue")) {
      const auto q = bench::contended_mutex(
          mp::threads::LockDiscipline::kQueue, kProcs, threads, iters);
      std::printf("%4d:%-2d | %5s | %10.0f %9.1f | %12.0f %12.1f | %6llu\n",
                  threads, kProcs, "queue", q.total_us, q.ops_per_ms,
                  q.max_wait_us, q.avg_wait_us,
                  static_cast<unsigned long long>(q.park_waits));
    }
  }
  bench::rule();
  std::printf("FIFO direct handoff bounds max wait near avg wait; the tas\n");
  std::printf("baseline's guard spins and backoff delays stretch the tail\n");
  return 0;
}
