// Spin-discipline ablation (design choice from section 3.3: `lock` is in
// the interface "because some operating systems may provide a more
// efficient spin than [a naive retry loop] (e.g., by using backoff
// techniques [Anderson])").  Hammers one mutex from p procs with naive
// spinning vs exponential backoff and reports elapsed time and spin cost.

#include "bench_util.h"
#include "cont/cont.h"
#include "mp/sim_platform.h"

namespace {

struct Outcome {
  double total_us;
  double spin_us;
  std::uint64_t spin_iters;
};

Outcome contend(int procs, double backoff_us) {
  mp::SimPlatformConfig cfg;
  cfg.machine = mp::sim::sequent_s81(procs);
  cfg.lock_backoff_base_us = backoff_us;
  mp::SimPlatform p(cfg);
  constexpr int kIters = 300;
  p.run([&] {
    mp::MutexLock l = p.mutex_lock();
    std::atomic<int> done{0};
    for (int i = 1; i < procs; i++) {
      mp::cont::callcc<mp::cont::Unit>(
          [&](mp::cont::Cont<mp::cont::Unit> parent) -> mp::cont::Unit {
            p.acquire_proc(parent, 0);
            for (int n = 0; n < kIters; n++) {
              p.lock(l);
              p.work(30);  // short critical section
              p.unlock(l);
              p.work(10);
            }
            done.fetch_add(1);
            p.release_proc();
          });
    }
    for (int n = 0; n < kIters; n++) {
      p.lock(l);
      p.work(30);
      p.unlock(l);
      p.work(10);
    }
    while (done.load() < procs - 1) p.work(10);
  });
  const auto rep = p.report();
  return {rep.total_us, rep.spin_us, rep.lock_spin_iters};
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::flag(argc, argv, "--quick");
  bench::header("T7", "contended lock: naive spin vs exponential backoff",
                "backoff keeps spinning procs off the bus; naive spinning "
                "degrades as procs are added (Anderson 1990)");
  const std::vector<int> grid =
      quick ? std::vector<int>{2, 8, 16} : std::vector<int>{2, 4, 8, 12, 16};
  std::printf("%5s | %12s %12s | %12s %12s\n", "procs", "naive T(us)",
              "spin(us)", "backoff T(us)", "spin(us)");
  bench::rule();
  for (const int p : grid) {
    const Outcome naive = contend(p, 0);
    const Outcome backoff = contend(p, 5.0);
    std::printf("%5d | %12.0f %12.0f | %12.0f %12.0f\n", p, naive.total_us,
                naive.spin_us, backoff.total_us, backoff.spin_us);
  }
  bench::rule();
  std::printf("the critical path (serial critical sections) bounds both; the\n");
  std::printf("spin columns show the wasted processor time each discipline burns\n");
  return 0;
}
