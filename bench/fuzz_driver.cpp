// Schedule-fuzz campaign driver (docs/FUZZING.md).
//
//   fuzz_driver --scenario qlock-storm --budget-s 60 --out fail.seed
//   fuzz_driver --scenario all --budget-s 1200
//   fuzz_driver --replay fail.seed
//
// Exit codes: 0 = no failures found (or replay reproduced consistently and
// the run was clean), 1 = a failing schedule was found (seed file written)
// or a replayed failure reproduced, 2 = usage/internal error, 3 = replay
// was NOT deterministic (two consecutive runs disagreed, or the outcome
// did not match the seed's recorded signature).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/driver.h"
#include "fuzz/scenarios.h"

namespace {

using namespace mp::fuzz;

[[noreturn]] void usage(int code) {
  std::fprintf(stderr,
               "usage: fuzz_driver [options]\n"
               "  --scenario NAME   scenario to fuzz, or 'all' (default all)\n"
               "  --budget-s N      wall-clock budget in seconds (default 60;\n"
               "                    env MPNJ_FUZZ_BUDGET_S)\n"
               "  --seed N          machine rng seed (default 0x5eed; env\n"
               "                    MPNJ_FUZZ_SEED)\n"
               "  --rng-seed N      mutation-generator seed (default 1)\n"
               "  --procs N         simulated procs (default 4)\n"
               "  --queue Q         ws | distributed (default ws)\n"
               "  --sequential-gc   disable the parallel copier\n"
               "  --scale N         workload size multiplier (default 1)\n"
               "  --max-execs N     cap executions per scenario\n"
               "  --no-snapshot     cold-fork every execution\n"
               "  --out FILE        seed-file path for a find (default\n"
               "                    fuzz-<scenario>-fail.seed)\n"
               "  --inject LIST    set MPNJ_FUZZ_INJECT (comma-separated)\n"
               "  --replay FILE     replay a seed file twice and compare\n"
               "  --list            list scenarios\n");
  std::exit(code);
}

double env_double(const char* name, double dflt) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::atof(v) : dflt;
}

std::uint64_t env_u64(const char* name, std::uint64_t dflt) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0'
             ? std::strtoull(v, nullptr, 0)
             : dflt;
}

int do_replay(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "fuzz_driver: cannot open '%s'\n", path.c_str());
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  SeedFile seed;
  std::string err;
  if (!parse_seed_file(buf.str(), &seed, &err)) {
    std::fprintf(stderr, "fuzz_driver: malformed seed file: %s\n",
                 err.c_str());
    return 2;
  }
  std::printf("replaying %s: scenario=%s seed=%llu procs=%d queue=%s "
              "parallel-gc=%d mutations=%zu\n",
              path.c_str(), seed.scenario.c_str(),
              static_cast<unsigned long long>(seed.seed), seed.procs,
              seed.queue.c_str(), seed.parallel_gc ? 1 : 0,
              seed.mutations.size());
  const RunResult a = replay_seed(seed);
  const RunResult b = replay_seed(seed);
  std::printf("run 1: %s\n", a.signature().c_str());
  std::printf("run 2: %s\n", b.signature().c_str());
  if (a.signature() != b.signature()) {
    std::fprintf(stderr, "fuzz_driver: replay NOT deterministic\n");
    return 3;
  }
  if (!seed.signature.empty() && a.signature() != seed.signature) {
    std::fprintf(stderr,
                 "fuzz_driver: outcome differs from recorded signature\n"
                 "  recorded: %s\n",
                 seed.signature.c_str());
    return 3;
  }
  std::printf("replay deterministic: %s\n",
              a.failed() ? "failure reproduced" : "run is clean");
  return a.failed() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario = "all";
  std::string out_path;
  std::string replay_path;
  DriverOptions opt;
  opt.budget_s = env_double("MPNJ_FUZZ_BUDGET_S", 60);
  opt.opts.seed = env_u64("MPNJ_FUZZ_SEED", 0x5eed);

  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(2);
      return argv[++i];
    };
    if (arg == "--scenario") {
      scenario = next();
    } else if (arg == "--budget-s") {
      opt.budget_s = std::atof(next());
    } else if (arg == "--seed") {
      opt.opts.seed = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--rng-seed") {
      opt.rng_seed = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--procs") {
      opt.opts.procs = std::atoi(next());
    } else if (arg == "--queue") {
      opt.opts.queue = next();
    } else if (arg == "--sequential-gc") {
      opt.opts.parallel_gc = false;
    } else if (arg == "--scale") {
      opt.opts.scale = std::atoi(next());
    } else if (arg == "--max-execs") {
      opt.max_execs = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--no-snapshot") {
      opt.use_snapshot = false;
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--inject") {
      setenv("MPNJ_FUZZ_INJECT", next(), 1);
    } else if (arg == "--replay") {
      replay_path = next();
    } else if (arg == "--list") {
      for (const Scenario& s : scenarios()) {
        std::printf("%-12s %s\n", s.name, s.description);
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(0);
    } else {
      std::fprintf(stderr, "fuzz_driver: unknown option '%s'\n", arg.c_str());
      usage(2);
    }
  }

  if (!replay_path.empty()) return do_replay(replay_path);

  std::vector<std::string> names;
  if (scenario == "all") {
    for (const Scenario& s : scenarios()) names.push_back(s.name);
  } else {
    if (find_scenario(scenario) == nullptr) {
      std::fprintf(stderr, "fuzz_driver: unknown scenario '%s'\n",
                   scenario.c_str());
      return 2;
    }
    names.push_back(scenario);
  }

  opt.log = [](const std::string& msg) {
    std::fprintf(stderr, "%s\n", msg.c_str());
  };

  const double per_scenario = opt.budget_s / static_cast<double>(names.size());
  bool found = false;
  for (const std::string& name : names) {
    DriverOptions o = opt;
    o.scenario = name;
    o.budget_s = per_scenario;
    const DriverResult r = fuzz_scenario(o);
    std::printf("%-12s execs=%llu baseline=%llu decisions  %s\n", name.c_str(),
                static_cast<unsigned long long>(r.executions),
                static_cast<unsigned long long>(r.baseline_decisions),
                r.found ? "FAILED" : "ok");
    if (!r.found) continue;
    found = true;
    const std::string path =
        out_path.empty() ? "fuzz-" + name + "-fail.seed" : out_path;
    std::ofstream out(path);
    out << format_seed_file(r.seed);
    out.close();
    std::printf("  signature: %s\n", r.seed.signature.c_str());
    std::printf("  seed file: %s (replay with: fuzz_driver --replay %s)\n",
                path.c_str(), path.c_str());
  }
  return found ? 1 : 0;
}
