// Lock-cost table (section 6, footnote 4): "locking and unlocking an MP
// mutex takes only 6 usec on the SGI versus 46 usec on the Sequent".
// Measures an uncontended lock+unlock pair on each simulated machine model.

#include "bench_util.h"
#include "mp/sim_platform.h"

using mp::sim::MachineModel;

namespace {

double lock_pair_us(const MachineModel& m) {
  mp::SimPlatformConfig cfg;
  cfg.machine = m;
  cfg.machine.num_procs = 1;
  mp::SimPlatform p(cfg);
  double per_pair = 0;
  p.run([&] {
    mp::MutexLock l = p.mutex_lock();
    constexpr int kPairs = 2000;
    const double t0 = p.now_us();
    for (int i = 0; i < kPairs; i++) {
      p.lock(l);
      p.unlock(l);
    }
    per_pair = (p.now_us() - t0) / kPairs;
  });
  return per_pair;
}

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  bench::header("T2", "uncontended mutex lock+unlock cost",
                "6 us on the SGI 4D/380S vs 46 us on the Sequent Symmetry "
                "(~8x ratio, reflecting processor speed)");
  struct Row {
    const char* name;
    MachineModel model;
    double paper_us;
  };
  const Row rows[] = {
      {"sequent-s81", mp::sim::sequent_s81(1), 46.0},
      {"sgi-4d380s", mp::sim::sgi_4d380(1), 6.0},
      {"luna88k", mp::sim::luna88k(1), 0.0},
      {"uniprocessor", mp::sim::uniprocessor(), 0.0},
  };
  std::printf("%-14s %14s %12s\n", "machine", "measured(us)", "paper(us)");
  bench::rule();
  double sequent = 0, sgi = 0;
  for (const Row& r : rows) {
    const double us = lock_pair_us(r.model);
    if (r.paper_us > 0) {
      std::printf("%-14s %14.2f %12.1f\n", r.name, us, r.paper_us);
    } else {
      std::printf("%-14s %14.2f %12s\n", r.name, us, "-");
    }
    if (std::string(r.name) == "sequent-s81") sequent = us;
    if (std::string(r.name) == "sgi-4d380s") sgi = us;
  }
  bench::rule();
  std::printf("measured SGI:Sequent ratio %.1fx (paper %.1fx)\n", sequent / sgi,
              46.0 / 6.0);
  return 0;
}
