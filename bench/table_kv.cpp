// KV service scaling table (ROADMAP "per-proc services" item): the sharded
// ownership-routed KV store (src/kv) under a closed-loop pipelined load, on
// the simulated multiprocessor and on native procs.  Reports throughput and
// exact client-observed latency percentiles (p50/p99/p999) over a
// procs x connections grid — the oversubscribed columns (256 connections on
// a handful of procs) are the regime the scheduler-aware parking locks and
// work-stealing cores were built for — plus a GC-pause row pair showing how
// stop-the-world collections land in the tail percentiles.
//
// table_kv [--quick] [--full] [--tcp]
//   --quick  smaller per-connection op counts (CI)
//   --full   adds 8- and 16-proc rows to the sim grid
//   --tcp    native section uses loopback TCP through the reactor
//            (default: virtual duplex pipes)

#include <algorithm>
#include <atomic>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "gc/heap.h"
#include "io/stream.h"
#include "kv/client.h"
#include "kv/server.h"
#include "kv/service.h"
#include "mp/native_platform.h"

namespace {

using mp::io::Duplex;
using mp::io::Stream;
using mp::kv::KvClient;
using mp::kv::KvService;
using mp::threads::CountdownLatch;
using mp::threads::Scheduler;

struct Outcome {
  double elapsed_us = 0;
  double kops_per_s = 0;
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  std::uint64_t gc_collections = 0;
  double gc_pause_total_us = 0;
};

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

// One closed-loop run: `conns` connections, each keeping `window` pipelined
// requests in flight, `ops` requests per connection (90% point ops, 10%
// RANGE).  Latency is measured at the client — batch flush to that reply's
// parse — with the platform clock, so sim numbers are exact virtual time.
Outcome run_kv(mp::Platform& platform, int procs, int conns, int ops,
               int window, bool gc_churn, bool tcp) {
  Outcome out;
  std::vector<std::vector<double>> lat(static_cast<std::size_t>(conns));
  const auto gc_before = mp::metrics::registry().snapshot();

  // Preemption on: the churn threads are compute loops that would otherwise
  // pin their procs forever, and the evaluated package runs with a quantum.
  mp::threads::SchedulerConfig sched_cfg;
  sched_cfg.preempt_interval_us = 1000;
  Scheduler::run(platform, std::move(sched_cfg), [&](Scheduler& sched) {
    mp::kv::KvConfig cfg;
    cfg.shards = procs;
    KvService svc(sched, cfg);
    svc.start();

    std::unique_ptr<mp::io::Reactor> reactor;
    mp::io::Listener listener;
    if (tcp) {
      reactor = std::make_unique<mp::io::Reactor>(sched);
      listener = mp::io::Listener::tcp(*reactor, 0, std::max(conns, 128));
    }

    // Optional allocation churn: one SML/NJ-rate cons loop per proc keeps
    // the collector busy so its stop-the-world pauses land inside request
    // latencies.
    std::atomic<bool> stop_churn{false};
    CountdownLatch churn_done(sched, gc_churn ? procs : 0);
    if (gc_churn) {
      auto& h = platform.heap();
      for (int t = 0; t < procs; t++) {
        sched.fork([&] {
          std::vector<mp::gc::GlobalRoot> live;
          long i = 0;
          while (!stop_churn.load(std::memory_order_relaxed)) {
            mp::gc::Roots<1> cell;
            cell[0] = h.alloc_record({mp::gc::Value::from_int(i),
                                      mp::gc::Value::from_int(i ^ 7)});
            if (i % 256 == 0) {
              if (live.size() > 2048) live.clear();
              live.emplace_back(h, cell[0]);
            }
            platform.work(30);
            i++;
          }
          churn_done.count_down();
        });
      }
    }

    CountdownLatch clients_done(sched, conns);
    CountdownLatch servers_done(sched, conns);
    if (tcp) {
      sched.fork([&] {
        for (int c = 0; c < conns; c++) {
          Stream s = listener.accept();
          sched.fork([&svc, &servers_done, s]() mutable {
            mp::kv::serve(svc, Duplex{s, s});
            servers_done.count_down();
          });
        }
      });
    }

    const double t_start = platform.now_us();
    for (int c = 0; c < conns; c++) {
      Duplex client_end;
      if (!tcp) {
        auto [client, server] = mp::io::duplex_pipe(sched, 4096);
        client_end = client;
        sched.fork([&svc, &servers_done, server]() mutable {
          mp::kv::serve(svc, server);
          servers_done.count_down();
        });
      }
      sched.fork([&, client_end, c]() mutable {
        Duplex conn = client_end;
        if (tcp) {
          Stream s = Stream::connect_tcp(*reactor, listener.port());
          conn = Duplex{s, s};
        }
        KvClient cli(conn);
        std::vector<double>& lats = lat[static_cast<std::size_t>(c)];
        lats.reserve(static_cast<std::size_t>(ops));
        const std::string val(32, 'v');
        int sent = 0;
        while (sent < ops) {
          const int batch = std::min(window, ops - sent);
          for (int i = 0; i < batch; i++) {
            const int op = sent + i;
            const std::string key =
                "c" + std::to_string(c) + ":k" + std::to_string(op % 64);
            if (op % 10 == 9) {
              cli.queue_range("c" + std::to_string(c) + ":k0",
                              "c" + std::to_string(c) + ":k9", 16);
            } else if (op % 3 == 0) {
              cli.queue_set(key, val);
            } else {
              cli.queue_get(key);
            }
          }
          const double t0 = platform.now_us();
          cli.flush();
          for (int i = 0; i < batch; i++) {
            (void)cli.recv_reply();
            lats.push_back(platform.now_us() - t0);
          }
          sent += batch;
        }
        cli.quit();
        clients_done.count_down();
      });
    }

    clients_done.await();
    out.elapsed_us = platform.now_us() - t_start;
    servers_done.await();
    if (gc_churn) {
      stop_churn.store(true, std::memory_order_relaxed);
      churn_done.await();
    }
    svc.stop();
    if (tcp) {
      listener.close();
      reactor.reset();
    }
  });

  std::vector<double> all;
  for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  out.p50_us = percentile(all, 0.50);
  out.p99_us = percentile(all, 0.99);
  out.p999_us = percentile(all, 0.999);
  const double total_ops = static_cast<double>(conns) * ops;
  out.kops_per_s =
      out.elapsed_us > 0 ? total_ops / (out.elapsed_us / 1e6) / 1e3 : 0;
  const auto gc_after = mp::metrics::registry().snapshot();
  using mp::metrics::Counter;
  out.gc_collections =
      gc_after.counter(Counter::kGcMinor) + gc_after.counter(Counter::kGcMajor) -
      gc_before.counter(Counter::kGcMinor) - gc_before.counter(Counter::kGcMajor);
  out.gc_pause_total_us =
      static_cast<double>(gc_after.counter(Counter::kGcPauseUsTotal) -
                          gc_before.counter(Counter::kGcPauseUsTotal));
  return out;
}

Outcome run_sim_kv(int procs, int conns, int ops, bool gc_churn) {
  mp::SimPlatformConfig cfg;
  cfg.machine = mp::sim::sequent_s81(procs);
  mp::SimPlatform p(cfg);
  return run_kv(p, procs, conns, ops, 8, gc_churn, false);
}

Outcome run_native_kv(int procs, int conns, int ops, bool tcp) {
  mp::NativePlatformConfig cfg;
  cfg.max_procs = procs;
  mp::NativePlatform p(cfg);
  return run_kv(p, procs, conns, ops, 8, false, tcp);
}

void print_row(int procs, int conns, const Outcome& o) {
  std::printf("  %2d     %4d   %9.1f  %8.1f %9.1f %9.1f\n", procs, conns,
              o.kops_per_s, o.p50_us, o.p99_us, o.p999_us);
}

int ops_for(int conns, bool quick) {
  const int total = quick ? 4000 : 16000;
  return std::max(25, total / conns);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = bench::flag(argc, argv, "--quick");
  const bool full = bench::flag(argc, argv, "--full");
  const bool tcp = bench::flag(argc, argv, "--tcp");
  bench::header("A-KV", "sharded KV service: throughput and tail latency",
                "ownership-routed shards turn data-structure locking into "
                "scheduling; the paper's platform claim is that the thread "
                "package carries server workloads like this portably");

  std::vector<int> procs_grid = {1, 2, 4};
  if (full) {
    procs_grid.push_back(8);
    procs_grid.push_back(16);
  }
  const std::vector<int> conns_grid = {16, 256};

  std::printf("simulated (sequent_s81, virtual-time percentiles, exact):\n");
  std::printf("  procs  conns      kops/s    p50_us    p99_us   p999_us\n");
  bench::rule();
  for (const int p : procs_grid) {
    for (const int c : conns_grid) {
      print_row(p, c, run_sim_kv(p, c, ops_for(c, quick), false));
    }
  }
  bench::rule();
  std::printf("expected: throughput scales with procs until the shard\n");
  std::printf("channels saturate; 256-connection tails stay bounded because\n");
  std::printf("waiting is parking, not spinning\n\n");

  // ---- GC pause impact on the tail ----
  const int gp = std::min(4, procs_grid.back());
  std::printf("GC-pause impact (sim, %d procs, 16 conns, +cons churn):\n", gp);
  std::printf("  churn  conns      kops/s    p50_us    p99_us   p999_us"
              "   gcs  pause_ms\n");
  bench::rule();
  for (const bool churn : {false, true}) {
    const Outcome o = run_sim_kv(gp, 16, ops_for(16, quick), churn);
    std::printf("  %-5s   %4d   %9.1f  %8.1f %9.1f %9.1f  %4llu  %8.2f\n",
                churn ? "yes" : "no", 16, o.kops_per_s, o.p50_us, o.p99_us,
                o.p999_us, static_cast<unsigned long long>(o.gc_collections),
                o.gc_pause_total_us / 1000.0);
  }
  bench::rule();
  std::printf("expected: churn leaves p50 mostly alone and pushes the\n");
  std::printf("stop-the-world pauses into p99/p999\n\n");

  std::printf("native (%s, wall-clock percentiles):\n",
              tcp ? "loopback TCP" : "virtual duplex pipes");
  std::printf("  procs  conns      kops/s    p50_us    p99_us   p999_us\n");
  bench::rule();
  for (const int p : procs_grid) {
    for (const int c : conns_grid) {
      print_row(p, c, run_native_kv(p, c, ops_for(c, quick), tcp));
    }
  }
  bench::rule();
  bench::dump_metrics_json("table_kv");
  return 0;
}
