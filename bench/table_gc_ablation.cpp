// GC ablation (section 6): "Speedup for the other benchmarks is limited
// by ... our sequential garbage collection strategy; if garbage collection
// time were omitted, the maximum speedups for abisort and allpairs would be
// considerably higher, although the rough shape of their curves would be
// the same."

#include "bench_util.h"

using namespace mp::workloads;

int main(int argc, char** argv) {
  const bool quick = bench::flag(argc, argv, "--quick");
  bench::header("T5", "speedup with and without sequential GC time",
                "abisort and allpairs reach considerably higher maximum "
                "speedups with GC omitted; curve shapes stay the same");
  const std::vector<int> grid = quick ? std::vector<int>{1, 8, 16}
                                      : std::vector<int>{1, 4, 8, 12, 16};
  std::printf("%-9s %-8s", "workload", "mode");
  for (const int p : grid) std::printf("%8d", p);
  std::printf("\n");
  bench::rule();
  for (const std::string& w : {std::string("allpairs"), std::string("abisort"),
                               std::string("mm"), std::string("simple")}) {
    for (const bool free_gc : {false, true}) {
      SimRunSpec spec;
      spec.workload = w;
      spec.free_gc = free_gc;
      const auto sweep = sweep_procs(spec, grid);
      std::printf("%-9s %-8s", w.c_str(), free_gc ? "no-gc" : "with-gc");
      for (std::size_t i = 0; i < sweep.size(); i++) {
        std::printf("%8.2f", self_relative_speedup(sweep, i));
      }
      std::printf("\n");
    }
    bench::rule();
  }
  std::printf("expected: allpairs/abisort no-gc curves sit well above with-gc;\n");
  std::printf("simple barely moves (it is idle-limited, not GC-limited)\n");

  // Parallel stop-the-world collection: instead of omitting GC time (the
  // paper's hypothetical), every stopped proc becomes a copy worker
  // (gc::ParallelCopier; the simulator divides the copy's instruction cost
  // across workers while bus traffic stays serialized).  Both modes must
  // produce identical results — the collection strategy is invisible to the
  // program.  On native heaps the same switch is the MPNJ_GC_PARALLEL
  // environment variable (=0 restores sequential collection).
  bench::header("T6", "parallel vs sequential collection pause (4 procs)",
                "avg GC pause drops >= 2x on copy-heavy workloads when the "
                "stopped procs help copy; checksums are identical");
  std::printf("%-9s %-8s %12s %12s %6s %12s %8s\n", "workload", "mode",
              "T(us)", "gc_us", "gcs", "pause(us)", "ratio");
  bench::rule();
  for (const std::string& w : {std::string("abisort"), std::string("allpairs"),
                               std::string("mm")}) {
    double pause[2] = {0, 0};
    std::uint64_t checksum[2] = {0, 0};
    for (const bool parallel : {false, true}) {
      SimRunSpec spec;
      spec.workload = w;
      spec.machine = mp::sim::sequent_s81(4);
      spec.parallel_gc = parallel;
      const auto r = run_sim(spec);
      const std::uint64_t gcs =
          r.report.heap.minor_gcs + r.report.heap.major_gcs;
      pause[parallel ? 1 : 0] = r.report.gc_us / static_cast<double>(
                                    gcs > 0 ? gcs : 1);
      checksum[parallel ? 1 : 0] = r.checksum;
      char ratio[16] = "";
      if (parallel && pause[1] > 0) {
        std::snprintf(ratio, sizeof(ratio), "%.2fx", pause[0] / pause[1]);
      }
      std::printf("%-9s %-8s %12.0f %12.0f %6llu %12.2f %8s\n", w.c_str(),
                  parallel ? "par-gc" : "seq-gc", r.report.total_us,
                  r.report.gc_us, static_cast<unsigned long long>(gcs),
                  pause[parallel ? 1 : 0], ratio);
    }
    if (checksum[0] != checksum[1]) {
      std::printf("FAIL: checksum differs between GC modes for %s\n",
                  w.c_str());
      return 1;
    }
  }
  bench::rule();
  std::printf("expected: pause ratio >= 2 for the copy-heavy workloads;\n");
  std::printf("identical checksums prove the modes are observationally equal\n");
  return 0;
}
