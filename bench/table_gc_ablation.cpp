// GC ablation (section 6): "Speedup for the other benchmarks is limited
// by ... our sequential garbage collection strategy; if garbage collection
// time were omitted, the maximum speedups for abisort and allpairs would be
// considerably higher, although the rough shape of their curves would be
// the same."

#include "bench_util.h"

using namespace mp::workloads;

int main(int argc, char** argv) {
  const bool quick = bench::flag(argc, argv, "--quick");
  bench::header("T5", "speedup with and without sequential GC time",
                "abisort and allpairs reach considerably higher maximum "
                "speedups with GC omitted; curve shapes stay the same");
  const std::vector<int> grid = quick ? std::vector<int>{1, 8, 16}
                                      : std::vector<int>{1, 4, 8, 12, 16};
  std::printf("%-9s %-8s", "workload", "mode");
  for (const int p : grid) std::printf("%8d", p);
  std::printf("\n");
  bench::rule();
  for (const std::string& w : {std::string("allpairs"), std::string("abisort"),
                               std::string("mm"), std::string("simple")}) {
    for (const bool free_gc : {false, true}) {
      SimRunSpec spec;
      spec.workload = w;
      spec.free_gc = free_gc;
      const auto sweep = sweep_procs(spec, grid);
      std::printf("%-9s %-8s", w.c_str(), free_gc ? "no-gc" : "with-gc");
      for (std::size_t i = 0; i < sweep.size(); i++) {
        std::printf("%8.2f", self_relative_speedup(sweep, i));
      }
      std::printf("\n");
    }
    bench::rule();
  }
  std::printf("expected: allpairs/abisort no-gc curves sit well above with-gc;\n");
  std::printf("simple barely moves (it is idle-limited, not GC-limited)\n");
  return 0;
}
