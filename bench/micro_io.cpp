// Native microbenchmarks for the mp::io layer: virtual-pipe roundtrips,
// loopback TCP roundtrips through the reactor (the cost of a park + epoll
// wakeup + reschedule), and select over channel vs socket readiness.

#include <benchmark/benchmark.h>

#include <vector>

#include "bench_util.h"
#include "cml/cml.h"
#include "io/io_event.h"
#include "io/reactor.h"
#include "io/stream.h"
#include "mp/native_platform.h"
#include "threads/scheduler.h"
#include "threads/sync.h"

namespace {

using mp::cml::Channel;
using mp::cml::Event;
using mp::cont::Unit;
using mp::io::Listener;
using mp::io::Reactor;
using mp::io::Stream;
using mp::threads::Scheduler;

void run_procs(int procs, const std::function<void(Scheduler&)>& fn) {
  mp::NativePlatformConfig cfg;
  cfg.max_procs = procs;
  mp::NativePlatform p(cfg);
  Scheduler::run(p, {}, fn);
}

// One byte each way through a bounded in-process pipe: two thread parks and
// two reschedules per iteration, no kernel involvement.
void BM_PipeRoundtrip(benchmark::State& state) {
  run_procs(1, [&](Scheduler& s) {
    auto [req_rd, req_wr] = Stream::pipe(s, 64);
    auto [rep_rd, rep_wr] = Stream::pipe(s, 64);
    s.fork([rd = req_rd, wr = rep_wr]() mutable {
      unsigned char b;
      while (rd.read_some(&b, 1) == 1) wr.write_all(&b, 1);
      wr.close();
    });
    unsigned char b = 7;
    for (auto _ : state) {
      req_wr.write_all(&b, 1);
      benchmark::DoNotOptimize(rep_rd.read_some(&b, 1));
    }
    req_wr.close();
  });
}
BENCHMARK(BM_PipeRoundtrip);

// Payload echo over loopback TCP: the echoing thread parks on fd readiness,
// so each iteration pays a full reactor wakeup (epoll + fire + dispatch).
void BM_TcpEchoRoundtrip(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  const std::size_t bytes = static_cast<std::size_t>(state.range(1));
  run_procs(procs, [&](Scheduler& s) {
    Reactor reactor(s);
    Listener lis = Listener::tcp(reactor);
    // The reactor dies with this scope, so every thread touching a stream
    // must be joined before returning (the mp::io lifetime rule).
    mp::threads::CountdownLatch served(s, 1);
    s.fork([&] {
      Stream srv = lis.accept();
      std::vector<unsigned char> buf(bytes);
      for (;;) {
        const std::size_t n = srv.read_some(buf.data(), buf.size());
        if (n == 0) break;
        srv.write_all(buf.data(), n);
      }
      srv.close();
      served.count_down();
    });
    Stream cli = Stream::connect_tcp(reactor, lis.port());
    std::vector<unsigned char> payload(bytes, 0x5a);
    std::vector<unsigned char> reply(bytes);
    for (auto _ : state) {
      cli.write_all(payload.data(), payload.size());
      cli.read_exact(reply.data(), reply.size());
      benchmark::DoNotOptimize(reply.data());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(2 * bytes));
    cli.close();  // EOF ends the echo loop
    served.await();
    lis.close();
  });
}
BENCHMARK(BM_TcpEchoRoundtrip)->Args({1, 64})->Args({2, 64})->Args({4, 4096});

// CML select where a socket readiness event loses to an always-ready
// channel: the cost of arming + retracting the fd branch every iteration.
void BM_SelectChannelVsSocket(benchmark::State& state) {
  run_procs(1, [&](Scheduler& s) {
    Reactor reactor(s);
    Listener lis = Listener::tcp(reactor);
    mp::threads::CountdownLatch finished(s, 1);
    mp::threads::CountdownLatch served(s, 1);
    s.fork([&] {
      Stream srv = lis.accept();  // held open and silent until the end
      finished.await();
      srv.close();
      served.count_down();
    });
    Stream cli = Stream::connect_tcp(reactor, lis.port());
    Channel<std::uint64_t> ch(s);
    Channel<std::uint64_t> quit(s);
    s.fork([&] {  // feed ch until the quit rendezvous wins the select
      for (;;) {
        bool done = false;
        Event<Unit>::choose(
            {ch.send_event(1), quit.recv_event().wrap<Unit>([&](std::uint64_t) {
              done = true;
              return Unit{};
            })})
            .sync(s);
        if (done) return;
      }
    });
    for (auto _ : state) {
      auto ev = Event<std::uint64_t>::choose(
          {ch.recv_event(), mp::io::readable_event(cli).wrap<std::uint64_t>(
                                [](Unit) { return std::uint64_t{0}; })});
      benchmark::DoNotOptimize(std::move(ev).sync(s));
    }
    quit.send(0);  // rendezvous with the feeder wherever it is parked
    finished.count_down();
    served.await();
    cli.close();
    lis.close();
  });
}
BENCHMARK(BM_SelectChannelVsSocket);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  bench::dump_metrics_json("micro_io");
  return 0;
}
