// Tests for the per-proc scheduling core: the Chase–Lev work-stealing
// deque (threads/wsdeque.h), the park/unpark wake port (arch/wakeport.h),
// the no-lost-thread invariant across every ready-queue discipline under
// concurrent enqueue/dequeue/steal, and the determinism of work stealing on
// the simulator backend (seeded victim order, reproducible steal traces).

#include <gtest/gtest.h>

#include <poll.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "arch/wakeport.h"
#include "metrics/metrics.h"
#include "mp/native_platform.h"
#include "mp/sim_platform.h"
#include "threads/scheduler.h"
#include "threads/sync.h"
#include "threads/wsdeque.h"
#include "workloads/runner.h"

namespace {

using mp::threads::CountdownLatch;
using mp::threads::PriorityQueue;
using mp::threads::Scheduler;
using mp::threads::SchedulerConfig;
using mp::threads::ThreadState;
using mp::threads::WorkStealingQueue;
using mp::threads::WsDeque;

ThreadState* cell(int id) { return new ThreadState{mp::cont::ContRef(), id}; }

// ---------- WsDeque unit behaviour ----------

TEST(WsDequeTest, OwnerPopsLifoThievesStealFifo) {
  WsDeque d;
  for (int i = 0; i < 6; i++) d.push(cell(i));
  EXPECT_EQ(d.approx_size(), 6);

  ThreadState* t = nullptr;
  ASSERT_EQ(d.steal(&t), WsDeque::Steal::kGot);  // oldest first
  EXPECT_EQ(t->id, 0);
  delete t;

  ThreadState* p = d.pop();  // newest first
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->id, 5);
  delete p;

  std::vector<int> rest;
  while ((p = d.pop()) != nullptr) {
    rest.push_back(p->id);
    delete p;
  }
  EXPECT_EQ(rest, (std::vector<int>{4, 3, 2, 1}));
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.steal(&t), WsDeque::Steal::kEmpty);
}

TEST(WsDequeTest, GrowsPastInitialCapacityAndKeepsOrder) {
  WsDeque d(8);
  constexpr int kN = 1000;
  for (int i = 0; i < kN; i++) d.push(cell(i));
  for (int i = 0; i < kN; i++) {
    ThreadState* t = nullptr;
    ASSERT_EQ(d.steal(&t), WsDeque::Steal::kGot);
    EXPECT_EQ(t->id, i);
    delete t;
  }
  EXPECT_TRUE(d.empty());
}

TEST(WsDequeTest, DestructorDrainsLeftoverCells) {
  // Leaks (cells or retired arrays) are caught by the sanitizer legs.
  WsDeque d(8);
  for (int i = 0; i < 100; i++) d.push(cell(i));
}

TEST(WsDequeTest, ConcurrentOwnerAndThievesLoseNothing) {
  constexpr int kN = 20000;
  constexpr int kThieves = 3;
  WsDeque d(8);
  std::atomic<int> taken{0};
  std::vector<std::vector<int>> got(kThieves + 1);

  std::vector<std::thread> thieves;
  for (int th = 0; th < kThieves; th++) {
    thieves.emplace_back([&, th] {
      while (taken.load(std::memory_order_acquire) < kN) {
        ThreadState* t = nullptr;
        if (d.steal(&t) == WsDeque::Steal::kGot) {
          got[static_cast<std::size_t>(th)].push_back(t->id);
          delete t;
          taken.fetch_add(1, std::memory_order_acq_rel);
        }
      }
    });
  }
  // Owner: push everything, popping a batch now and then; then drain.
  for (int i = 0; i < kN; i++) {
    d.push(cell(i));
    if (i % 64 == 0) {
      if (ThreadState* t = d.pop()) {
        got[kThieves].push_back(t->id);
        delete t;
        taken.fetch_add(1, std::memory_order_acq_rel);
      }
    }
  }
  while (taken.load(std::memory_order_acquire) < kN) {
    if (ThreadState* t = d.pop()) {
      got[kThieves].push_back(t->id);
      delete t;
      taken.fetch_add(1, std::memory_order_acq_rel);
    }
  }
  for (auto& th : thieves) th.join();

  std::vector<int> all;
  for (const auto& v : got) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; i++) EXPECT_EQ(all[static_cast<std::size_t>(i)], i);
}

// ---------- arch::WakePort ----------

TEST(WakePortTest, SignalPersistsUntilConsumed) {
  mp::arch::WakePort port;
  port.open();
  EXPECT_FALSE(port.pending());
  EXPECT_FALSE(port.consume());

  port.signal();
  port.signal();  // bursts collapse
  EXPECT_TRUE(port.pending());

  pollfd pfd{port.rfd(), POLLIN, 0};
  EXPECT_EQ(::poll(&pfd, 1, 0), 1);  // readable while pending

  EXPECT_TRUE(port.consume());
  EXPECT_FALSE(port.consume());
  pfd.revents = 0;
  EXPECT_EQ(::poll(&pfd, 1, 0), 0);  // drained
}

// ---------- no-lost-thread property across every discipline ----------

std::unique_ptr<mp::threads::ReadyQueue> queue_for(const std::string& name) {
  if (name == "central-priority") return std::make_unique<PriorityQueue>();
  return mp::workloads::make_queue(name);
}

class QueueDiscipline : public ::testing::TestWithParam<std::string> {};

TEST_P(QueueDiscipline, NoLostThreadsOn4NativeProcs) {
  constexpr int kThreads = 300;
  mp::NativePlatformConfig cfg;
  cfg.max_procs = 4;
  cfg.heap.nursery_bytes = 256 * 1024;
  mp::NativePlatform platform(cfg);
  SchedulerConfig sc;
  sc.queue = queue_for(GetParam());
  sc.preempt_interval_us = 5000;
  std::atomic<int> done{0};
  Scheduler::run(platform, std::move(sc), [&](Scheduler& s) {
    CountdownLatch latch(s, kThreads);
    for (int i = 0; i < kThreads; i++) {
      s.fork([&] {
        s.yield();
        s.yield();
        done.fetch_add(1);
        latch.count_down();
      });
    }
    latch.await();
  });
  EXPECT_EQ(done.load(), kThreads);
}

INSTANTIATE_TEST_SUITE_P(
    AllDisciplines, QueueDiscipline,
    ::testing::Values("ws", "ws-lifo", "distributed", "central-fifo",
                      "central-lifo", "central-random", "central-priority"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string n = info.param;
      std::replace(n.begin(), n.end(), '-', '_');
      return n;
    });

// ---------- work stealing on the simulator: seeded and reproducible ----------

void spawn_tree(Scheduler& s, int depth) {
  if (depth <= 0) return;
  CountdownLatch latch(s, 2);
  for (int i = 0; i < 2; i++) {
    s.fork([&s, &latch, depth] {
      spawn_tree(s, depth - 1);
      latch.count_down();
    });
  }
  latch.await();
}

std::vector<std::pair<int, int>> sim_steal_trace(std::uint64_t seed) {
  mp::SimPlatformConfig cfg;
  cfg.machine = mp::sim::sequent_s81(4);
  cfg.machine.seed = seed;
  cfg.heap.nursery_bytes = 256 * 1024;
  mp::SimPlatform platform(cfg);
  std::vector<std::pair<int, int>> steals;
  auto q = std::make_unique<WorkStealingQueue>();
  q->set_steal_recorder(&steals);
  SchedulerConfig sc;
  sc.queue = std::move(q);
  Scheduler::run(platform, std::move(sc),
                 [&](Scheduler& s) { spawn_tree(s, 5); });
  return steals;
}

TEST(WorkStealingSimTest, StealVictimOrderIsSeededAndReproducible) {
  const auto a = sim_steal_trace(0x5eed);
  const auto b = sim_steal_trace(0x5eed);
  const auto c = sim_steal_trace(0x1234);
  ASSERT_FALSE(a.empty());  // fork trees on 4 procs must migrate work
  EXPECT_EQ(a, b);          // same seed, bit-identical trace
  EXPECT_NE(a, c);          // the victim order is drawn from the seeded rng
  for (const auto& [thief, victim] : a) {
    EXPECT_NE(thief, victim);
    EXPECT_GE(thief, 0);
    EXPECT_LT(thief, 4);
    EXPECT_GE(victim, 0);
    EXPECT_LT(victim, 4);
  }
}

TEST(WorkStealingSimTest, VirtualTimeAndChecksumDeterministic) {
  auto once = [] {
    mp::workloads::SimRunSpec spec;
    spec.workload = "abisort";
    spec.machine = mp::sim::sequent_s81(4);
    spec.queue = "ws";
    auto r = mp::workloads::run_sim(spec);
    EXPECT_TRUE(r.verified);
    return std::pair<double, std::uint64_t>(r.report.total_us, r.checksum);
  };
  const auto a = once();
  const auto b = once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

// ---------- park / targeted wakeup on native threads ----------

TEST(ParkWakeTest, IdleProcsParkAndTimerWakesThem) {
  mp::metrics::registry().reset();
  mp::NativePlatformConfig cfg;
  cfg.max_procs = 2;
  mp::NativePlatform platform(cfg);
  const auto t0 = std::chrono::steady_clock::now();
  Scheduler::run(platform, {}, [&](Scheduler& s) {
    // Both procs go idle for the whole sleep; they must park (bounded) and
    // the timer fire plus wake_one must get the sleeper dispatched again.
    s.sleep_for(5000);  // 5 ms
  });
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  EXPECT_GE(ms, 4.0);
  EXPECT_LT(ms, 2000.0);  // woken by the deadline clamp, not luck
  const auto snap = mp::metrics::registry().snapshot();
  EXPECT_GT(snap.counter(mp::metrics::Counter::kSchedParkWaits), 0u);
}

TEST(ParkWakeTest, StealAndParkMetricsSurfaceInSnapshot) {
  // The simulator makes the steal traffic deterministic (a native root proc
  // can finish a small fork tree before the worker threads even spin up).
  mp::metrics::registry().reset();
  mp::SimPlatformConfig cfg;
  cfg.machine = mp::sim::sequent_s81(4);
  cfg.heap.nursery_bytes = 256 * 1024;
  mp::SimPlatform platform(cfg);
  Scheduler::run(platform, {},  // default queue: ws
                 [&](Scheduler& s) { spawn_tree(s, 5); });
  const auto snap = mp::metrics::registry().snapshot();
  // Every forked thread lands on the forking proc's deque, so the other
  // procs can only have run work they stole.
  EXPECT_GT(snap.counter(mp::metrics::Counter::kSchedStealAttempts), 0u);
  EXPECT_GT(snap.counter(mp::metrics::Counter::kSchedStealCommits), 0u);
  const std::string json = snap.to_json();
  for (const char* key :
       {"sched_steal_attempts", "sched_steal_commits", "sched_park_waits",
        "sched_park_wakeups", "sched_park_us", "sched_wake_to_dispatch_us"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

}  // namespace
