// Tests of the MP platform API (paper Figure 2) run against BOTH backends:
// the deterministic simulator and real kernel threads.  The client code is
// identical for the two — which is itself the paper's portability claim.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <vector>

#include "cont/cont.h"
#include "gc/roots.h"
#include "mp/native_platform.h"
#include "mp/platform.h"
#include "mp/sim_platform.h"

namespace {

using mp::cont::callcc;
using mp::cont::Cont;
using mp::cont::fire_preloaded;
using mp::cont::throw_to;
using mp::cont::Unit;
using mp::gc::Roots;
using mp::gc::Value;

enum class Backend { kSim, kNative };

std::string backend_name(const ::testing::TestParamInfo<Backend>& info) {
  return info.param == Backend::kSim ? "Sim" : "Native";
}

class PlatformTest : public ::testing::TestWithParam<Backend> {
 protected:
  std::unique_ptr<mp::Platform> make(int procs, double preempt_us = 0,
                                     std::size_t nursery = 256 * 1024) {
    if (GetParam() == Backend::kSim) {
      mp::SimPlatformConfig cfg;
      cfg.machine = mp::sim::sequent_s81(procs);
      cfg.preempt_interval_us = preempt_us;
      cfg.heap.nursery_bytes = nursery;
      return std::make_unique<mp::SimPlatform>(cfg);
    }
    mp::NativePlatformConfig cfg;
    cfg.max_procs = procs;
    cfg.preempt_interval_us = preempt_us;
    cfg.heap.nursery_bytes = nursery;
    return std::make_unique<mp::NativePlatform>(cfg);
  }
};

TEST_P(PlatformTest, RunRootToCompletion) {
  auto p = make(2);
  bool ran = false;
  p->run([&] { ran = true; });
  EXPECT_TRUE(ran);
  EXPECT_TRUE(p->done());
}

TEST_P(PlatformTest, RootDatum) {
  auto p = make(1);
  mp::Datum seen = 0;
  p->run([&] {
    seen = p->get_datum();
    p->set_datum(99);
    EXPECT_EQ(p->get_datum(), 99u);
  },
         /*root_datum=*/42);
  EXPECT_EQ(seen, 42u);
}

TEST_P(PlatformTest, RootRunsOnProcZero) {
  auto p = make(3);
  int id = -1;
  p->run([&] { id = p->proc_id(); });
  EXPECT_EQ(id, 0);
}

// The paper's fork shape (Figure 3): capture the parent, hand it to a new
// proc, run the child on the current proc.
TEST_P(PlatformTest, AcquireProcRunsWorkInParallel) {
  constexpr int kProcs = 4;
  auto p = make(kProcs);
  std::atomic<int> workers_done{0};
  std::set<int> worker_procs;
  mp::MutexLock set_lock;
  p->run([&] {
    set_lock = p->mutex_lock();
    for (int i = 1; i < kProcs; i++) {
      callcc<Unit>([&](Cont<Unit> parent) -> Unit {
        if (!p->try_acquire_proc(std::move(parent), 0)) {
          ADD_FAILURE() << "proc " << i << " unavailable";
        }
        // This body is now the worker on the original proc; the parent
        // continues on the freshly acquired proc.
        p->lock(set_lock);
        worker_procs.insert(p->proc_id());
        p->unlock(set_lock);
        workers_done.fetch_add(1);
        p->release_proc();
      });
    }
    while (workers_done.load() < kProcs - 1) p->work(10);
  });
  EXPECT_EQ(workers_done.load(), kProcs - 1);
  // Workers run on whichever proc the forking thread occupied, and released
  // procs are re-used, so we only require that more than one proc did work.
  EXPECT_GE(worker_procs.size(), 2u);
  EXPECT_LE(worker_procs.size(), static_cast<std::size_t>(kProcs));
}

TEST_P(PlatformTest, NoMoreProcsAtLimit) {
  constexpr int kProcs = 3;
  auto p = make(kProcs);
  int acquired = 0;
  bool exhausted = false;
  std::atomic<int> release_count{0};
  std::atomic<bool> quit{false};
  p->run([&] {
    // Occupy every proc with a spinning worker, then one more acquire must
    // raise No_More_Procs.
    for (int i = 0; i < kProcs + 1; i++) {
      bool ok = true;
      callcc<Unit>([&](Cont<Unit> parent) -> Unit {
        try {
          p->acquire_proc(parent, 0);
        } catch (const mp::NoMoreProcs&) {
          ok = false;
          fire_preloaded(std::move(parent).take_ref());
        }
        // Worker: spin until told to quit.
        while (!quit.load()) p->work(10);
        release_count.fetch_add(1);
        p->release_proc();
      });
      if (ok) {
        acquired++;
      } else {
        exhausted = true;
        break;
      }
    }
    quit.store(true);
    while (release_count.load() < acquired) p->work(10);
  });
  EXPECT_TRUE(exhausted);
  EXPECT_EQ(acquired, kProcs - 1);  // the root holds one proc throughout
}

TEST_P(PlatformTest, ReleasedProcsAreReused) {
  auto p = make(2);
  p->run([&] {
    for (int round = 0; round < 5; round++) {
      std::atomic<bool> child_ran{false};
      callcc<Unit>([&](Cont<Unit> parent) -> Unit {
        p->acquire_proc(parent, 0);
        child_ran.store(true);
        p->release_proc();
      });
      while (!child_ran.load()) p->work(10);
      // Wait for the worker to actually release its proc before re-acquiring.
      while (p->active_procs() > 1) p->work(10);
    }
  });
}

TEST_P(PlatformTest, TryLockSemantics) {
  auto p = make(1);
  p->run([&] {
    mp::MutexLock l = p->mutex_lock();
    EXPECT_TRUE(p->try_lock(l));
    EXPECT_FALSE(p->try_lock(l));
    p->unlock(l);
    EXPECT_TRUE(p->try_lock(l));
    p->unlock(l);
  });
}

TEST_P(PlatformTest, LocksAreIndependent) {
  auto p = make(1);
  p->run([&] {
    mp::MutexLock a = p->mutex_lock();
    mp::MutexLock b = p->mutex_lock();
    EXPECT_TRUE(p->try_lock(a));
    EXPECT_TRUE(p->try_lock(b));
    p->unlock(a);
    EXPECT_TRUE(p->try_lock(a));
    p->unlock(a);
    p->unlock(b);
  });
}

TEST_P(PlatformTest, LockProvidesMutualExclusion) {
  constexpr int kProcs = 4;
  constexpr int kIters = 500;
  auto p = make(kProcs);
  long counter = 0;  // deliberately unprotected by atomics
  std::atomic<int> done_workers{0};
  p->run([&] {
    mp::MutexLock l = p->mutex_lock();
    for (int i = 1; i < kProcs; i++) {
      callcc<Unit>([&](Cont<Unit> parent) -> Unit {
        p->acquire_proc(parent, 0);
        for (int n = 0; n < kIters; n++) {
          p->lock(l);
          counter++;  // protected read-modify-write
          p->unlock(l);
          p->work(5);
        }
        done_workers.fetch_add(1);
        p->release_proc();
      });
    }
    for (int n = 0; n < kIters; n++) {
      p->lock(l);
      counter++;
      p->unlock(l);
      p->work(5);
    }
    while (done_workers.load() < kProcs - 1) p->work(10);
  });
  EXPECT_EQ(counter, static_cast<long>(kProcs) * kIters);
}

TEST_P(PlatformTest, UnlockByADifferentProc) {
  auto p = make(2);
  std::atomic<bool> child_done{false};
  p->run([&] {
    mp::MutexLock l = p->mutex_lock();
    p->lock(l);
    callcc<Unit>([&](Cont<Unit> parent) -> Unit {
      p->acquire_proc(parent, 0);
      // The paper allows unlock by any proc, not just the one that set it.
      p->unlock(l);
      child_done.store(true);
      p->release_proc();
    });
    while (!child_done.load()) p->work(10);
    EXPECT_TRUE(p->try_lock(l));
    p->unlock(l);
  });
}

TEST_P(PlatformTest, SignalsDeliveredAtSafePoints) {
  auto p = make(1);
  int delivered = 0;
  p->run([&] {
    p->set_signal_handler(mp::Sig::kUsr1, [&] { delivered++; });
    p->post_signal(mp::Sig::kUsr1);
    EXPECT_EQ(delivered, 0) << "delivery only happens at safe points";
    p->safe_point();
    EXPECT_EQ(delivered, 1);
    p->safe_point();
    EXPECT_EQ(delivered, 1) << "a signal is consumed by its delivery";
  });
}

TEST_P(PlatformTest, MaskedSignalsAreHeldPending) {
  auto p = make(1);
  int delivered = 0;
  p->run([&] {
    p->set_signal_handler(mp::Sig::kUsr2, [&] { delivered++; });
    p->mask_signal(mp::Sig::kUsr2);
    p->post_signal(mp::Sig::kUsr2);
    p->safe_point();
    EXPECT_EQ(delivered, 0);
    p->unmask_signal(mp::Sig::kUsr2);
    p->safe_point();
    EXPECT_EQ(delivered, 1);
  });
}

TEST_P(PlatformTest, HeapAllocationAndCollectionAcrossProcs) {
  constexpr int kProcs = 3;
  auto p = make(kProcs, 0, /*nursery=*/64 * 1024);
  std::atomic<int> done_workers{0};
  p->run([&] {
    auto& h = p->heap();
    Roots<1> r;
    r[0] = h.alloc_record({Value::from_int(1234)});
    for (int i = 1; i < kProcs; i++) {
      callcc<Unit>([&](Cont<Unit> parent) -> Unit {
        p->acquire_proc(parent, 0);
        // Worker: allocate heavily, forcing shared minor collections.
        {
          Roots<1> mine;
          mine[0] = h.alloc_record({Value::from_int(p->proc_id())});
          for (int n = 0; n < 5000; n++) {
            h.alloc_record({Value::from_int(n), mine[0]});
          }
          if (mine[0].field(0).as_int() != p->proc_id()) {
            ADD_FAILURE() << "worker root corrupted by collection";
          }
        }
        done_workers.fetch_add(1);
        p->release_proc();
      });
    }
    for (int n = 0; n < 5000; n++) h.alloc_record({Value::from_int(n)});
    while (done_workers.load() < kProcs - 1) p->work(10);
    EXPECT_EQ(r[0].field(0).as_int(), 1234);
    EXPECT_GT(h.stats().minor_gcs, 0u);
  });
}

TEST_P(PlatformTest, PreemptionSignalFires) {
  auto p = make(1, /*preempt_us=*/500);
  int preempts = 0;
  p->run([&] {
    p->set_signal_handler(mp::Sig::kPreempt, [&] { preempts++; });
    // now_us is virtual on the simulator and real time on native hardware;
    // either way the timer must fire well within 2 seconds.
    while (preempts == 0 && p->now_us() < 2e6) p->work(100);
  });
  EXPECT_GT(preempts, 0);
}

INSTANTIATE_TEST_SUITE_P(Backends, PlatformTest,
                         ::testing::Values(Backend::kSim, Backend::kNative),
                         backend_name);

// ---------- simulator-specific behaviour ----------

TEST(SimPlatform, DeterministicAcrossRuns) {
  auto run_once = [] {
    mp::SimPlatformConfig cfg;
    cfg.machine = mp::sim::sequent_s81(4);
    mp::SimPlatform p(cfg);
    std::atomic<int> done_workers{0};
    p.run([&] {
      mp::MutexLock l = p.mutex_lock();
      for (int i = 1; i < 4; i++) {
        callcc<Unit>([&](Cont<Unit> parent) -> Unit {
          p.acquire_proc(parent, 0);
          for (int n = 0; n < 200; n++) {
            p.lock(l);
            p.work(20);
            p.unlock(l);
            p.work(p.rng().below(50));
          }
          done_workers.fetch_add(1);
          p.release_proc();
        });
      }
      while (done_workers.load() < 3) p.work(10);
    });
    return p.report();
  };
  const mp::SimReport a = run_once();
  const mp::SimReport b = run_once();
  EXPECT_EQ(a.total_us, b.total_us);
  EXPECT_EQ(a.busy_us, b.busy_us);
  EXPECT_EQ(a.spin_us, b.spin_us);
  EXPECT_EQ(a.bus.bytes, b.bus.bytes);
  EXPECT_EQ(a.lock_acquires, b.lock_acquires);
}

TEST(SimPlatform, LockCostMatchesMachineModel) {
  // Paper section 6 footnote: lock+unlock takes ~46us on the Sequent and
  // ~6us on the SGI.  The machine models are calibrated to land near these.
  auto lock_pair_us = [](const mp::sim::MachineModel& m) {
    mp::SimPlatformConfig cfg;
    cfg.machine = m;
    mp::SimPlatform p(cfg);
    double elapsed = 0;
    p.run([&] {
      mp::MutexLock l = p.mutex_lock();
      const double t0 = p.now_us();
      constexpr int kPairs = 1000;
      for (int i = 0; i < kPairs; i++) {
        p.lock(l);
        p.unlock(l);
      }
      elapsed = (p.now_us() - t0) / kPairs;
    });
    return elapsed;
  };
  const double sequent = lock_pair_us(mp::sim::sequent_s81(1));
  const double sgi = lock_pair_us(mp::sim::sgi_4d380(1));
  EXPECT_NEAR(sequent, 46.0, 8.0);
  EXPECT_NEAR(sgi, 6.0, 1.5);
}

TEST(SimPlatform, BusSaturationSlowsAllocation) {
  // Allocation traffic from many procs must queue on the shared bus: the
  // 16-proc run cannot allocate 16x faster than the 1-proc run.
  auto alloc_run_us = [](int procs) {
    mp::SimPlatformConfig cfg;
    cfg.machine = mp::sim::sequent_s81(procs);
    cfg.heap.nursery_bytes = 4u << 20;
    mp::SimPlatform p(cfg);
    p.run([&] {
      std::atomic<int> done_workers{0};
      for (int i = 1; i < procs; i++) {
        callcc<Unit>([&](Cont<Unit> parent) -> Unit {
          p.acquire_proc(parent, 0);
          for (int n = 0; n < 3000; n++) {
            p.heap().alloc_record(
                {Value::from_int(n), Value::from_int(n + 1)});
          }
          done_workers.fetch_add(1);
          p.release_proc();
        });
      }
      for (int n = 0; n < 3000; n++) {
        p.heap().alloc_record({Value::from_int(n), Value::from_int(n + 1)});
      }
      while (done_workers.load() < procs - 1) p.work(10);
    });
    return p.report();
  };
  const auto r1 = alloc_run_us(1);
  const auto r16 = alloc_run_us(16);
  // Same per-proc work; with a saturated bus the 16-proc run takes longer
  // than the 1-proc run rather than matching it.
  EXPECT_GT(r16.total_us, r1.total_us * 1.5);
  EXPECT_GT(r16.bus.busy_us / r16.total_us, 0.8) << "bus should be saturated";
}

TEST(SimPlatform, DeadlockPanics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        mp::SimPlatformConfig cfg;
        cfg.machine = mp::sim::uniprocessor();
        mp::SimPlatform p(cfg);
        p.run([&] {
          // Release the only proc without completing the computation.
          p.release_proc();
        });
      },
      "deadlock");
}

}  // namespace
