// Tests for the benchmark workloads: exact verification against sequential
// references on both backends, determinism of simulated runs, and the
// qualitative properties the Figure 6 reproduction depends on.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "mp/native_platform.h"
#include "threads/scheduler.h"
#include "workloads/runner.h"
#include "workloads/workload.h"

namespace {

using mp::threads::Scheduler;
using mp::workloads::make_abisort;
using mp::workloads::make_allpairs;
using mp::workloads::make_mm;
using mp::workloads::make_mst;
using mp::workloads::make_seq;
using mp::workloads::make_simple;
using mp::workloads::Range;
using mp::workloads::run_sim;
using mp::workloads::self_relative_speedup;
using mp::workloads::SimRunSpec;
using mp::workloads::sweep_procs;
using mp::workloads::task_range;
using mp::workloads::Workload;

std::unique_ptr<Workload> make_small(const std::string& name, int procs) {
  if (name == "allpairs") return make_allpairs(20);
  if (name == "mst") return make_mst(40);
  if (name == "abisort") return make_abisort(8);
  if (name == "simple") return make_simple(24, 1);
  if (name == "mm") return make_mm(24);
  if (name == "seq") return make_seq(procs, 2000);
  return nullptr;
}

class WorkloadNames : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadNames, VerifiesOnSimulator) {
  mp::SimPlatformConfig cfg;
  cfg.machine = mp::sim::sequent_s81(4);
  cfg.heap.nursery_bytes = 256 * 1024;
  mp::SimPlatform platform(cfg);
  auto w = make_small(GetParam(), 4);
  ASSERT_NE(w, nullptr);
  mp::threads::SchedulerConfig sc;
  sc.preempt_interval_us = 5000;
  Scheduler::run(platform, std::move(sc),
                 [&](Scheduler& s) { w->run(s, 4); });
  EXPECT_TRUE(w->verify()) << w->name() << " produced a wrong result";
}

TEST_P(WorkloadNames, VerifiesOnNativeThreads) {
  mp::NativePlatformConfig cfg;
  cfg.max_procs = 3;
  cfg.heap.nursery_bytes = 256 * 1024;
  mp::NativePlatform platform(cfg);
  auto w = make_small(GetParam(), 3);
  ASSERT_NE(w, nullptr);
  Scheduler::run(platform, {}, [&](Scheduler& s) { w->run(s, 3); });
  EXPECT_TRUE(w->verify()) << w->name() << " produced a wrong result";
}

TEST_P(WorkloadNames, DeterministicVirtualTimeAndChecksum) {
  auto once = [&] {
    mp::SimPlatformConfig cfg;
    cfg.machine = mp::sim::sequent_s81(3);
    cfg.heap.nursery_bytes = 256 * 1024;
    mp::SimPlatform platform(cfg);
    auto w = make_small(GetParam(), 3);
    mp::threads::SchedulerConfig sc;
    sc.preempt_interval_us = 5000;
    Scheduler::run(platform, std::move(sc),
                   [&](Scheduler& s) { w->run(s, 3); });
    return std::pair<double, std::uint64_t>(platform.report().total_us,
                                            w->checksum());
  };
  const auto a = once();
  const auto b = once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

INSTANTIATE_TEST_SUITE_P(All, WorkloadNames,
                         ::testing::Values("allpairs", "mst", "abisort",
                                           "simple", "mm", "seq"),
                         [](const auto& info) { return info.param; });

// ---------- task_range partition properties ----------

struct RangeCase {
  int n;
  int tasks;
};

class TaskRangeProperty : public ::testing::TestWithParam<RangeCase> {};

TEST_P(TaskRangeProperty, PartitionsExactlyAndEvenly) {
  const auto [n, tasks] = GetParam();
  std::set<int> covered;
  int min_size = n + 1, max_size = -1;
  for (int t = 0; t < tasks; t++) {
    const Range r = task_range(n, tasks, t);
    ASSERT_LE(r.lo, r.hi);
    for (int i = r.lo; i < r.hi; i++) {
      EXPECT_TRUE(covered.insert(i).second) << "index " << i << " covered twice";
    }
    min_size = std::min(min_size, r.hi - r.lo);
    max_size = std::max(max_size, r.hi - r.lo);
  }
  EXPECT_EQ(covered.size(), static_cast<std::size_t>(n));
  if (n > 0) {
    EXPECT_TRUE(covered.count(0) == 1 && covered.count(n - 1) == 1);
  }
  EXPECT_LE(max_size - min_size, 1) << "blocks must differ by at most 1";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TaskRangeProperty,
    ::testing::Values(RangeCase{0, 1}, RangeCase{1, 1}, RangeCase{5, 1},
                      RangeCase{5, 5}, RangeCase{5, 7}, RangeCase{100, 16},
                      RangeCase{75, 16}, RangeCase{4096, 9},
                      RangeCase{13, 4}));

// ---------- runner-level properties (small machine sweeps) ----------

TEST(Runner, SpeedupImprovesWithProcsOnParallelWork) {
  SimRunSpec spec;
  spec.workload = "mm";
  const auto sweep = sweep_procs(spec, {1, 4});
  EXPECT_TRUE(sweep[0].verified);
  EXPECT_TRUE(sweep[1].verified);
  const double s4 = self_relative_speedup(sweep, 1);
  EXPECT_GT(s4, 2.5);
  EXPECT_LT(s4, 4.2);
}

TEST(Runner, SeqSpeedupUsesCopiesScaling) {
  SimRunSpec spec;
  spec.workload = "seq";
  const auto sweep = sweep_procs(spec, {1, 4});
  // 4 procs do 4x the work of the 1-proc run; self-relative speedup ~4.
  const double s4 = self_relative_speedup(sweep, 1);
  EXPECT_GT(s4, 3.0);
  EXPECT_LE(s4, 4.2);
}

TEST(Runner, FreeGcAblationSpeedsUpGcBoundWorkload) {
  SimRunSpec spec;
  spec.workload = "abisort";
  spec.machine = mp::sim::sequent_s81(8);
  const auto with_gc = run_sim(spec);
  spec.free_gc = true;
  const auto without_gc = run_sim(spec);
  EXPECT_TRUE(with_gc.verified);
  EXPECT_TRUE(without_gc.verified);
  EXPECT_LT(without_gc.report.total_us, with_gc.report.total_us);
  EXPECT_EQ(without_gc.checksum, with_gc.checksum);
}

TEST(Runner, QueueDisciplinesAllVerify) {
  for (const char* q : {"distributed", "fifo", "lifo", "random"}) {
    SimRunSpec spec;
    spec.workload = "abisort";
    spec.machine = mp::sim::sequent_s81(4);
    spec.queue = q;
    const auto r = run_sim(spec);
    EXPECT_TRUE(r.verified) << "queue " << q;
  }
}

TEST(Runner, UnknownWorkloadPanics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SimRunSpec spec;
        spec.workload = "nonesuch";
        run_sim(spec);
      },
      "unknown workload");
}

TEST(Runner, UnknownQueuePanics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SimRunSpec spec;
        spec.queue = "nonesuch";
        run_sim(spec);
      },
      "unknown queue");
}

TEST(Runner, SimpleHasLimitedParallelismIdleRates) {
  SimRunSpec spec;
  spec.workload = "simple";
  spec.machine = mp::sim::sequent_s81(12);
  const auto r = run_sim(spec);
  EXPECT_TRUE(r.verified);
  // The paper reports >50% average idle for simple at 10+ procs.
  EXPECT_GT(r.report.idle_fraction(), 0.5);
}

TEST(Runner, MmIsBusBoundAtSixteenProcs) {
  SimRunSpec spec;
  spec.workload = "mm";
  spec.machine = mp::sim::sequent_s81(16);
  const auto r = run_sim(spec);
  EXPECT_TRUE(r.verified);
  // Paper: ~20 MB/s of traffic against a ~25 MB/s bus.
  EXPECT_GT(r.report.bus_mb_per_s(), 14.0);
  EXPECT_LT(r.report.bus_mb_per_s(), 25.0);
  EXPECT_GT(r.report.idle_fraction() + r.report.bus_utilization(), 0.5);
}

}  // namespace
