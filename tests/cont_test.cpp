// Unit tests for the one-shot continuation layer: callcc/throw semantics,
// segment lifetime, proc idle-loop integration, and cross-thread migration.

#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <functional>
#include <semaphore>
#include <thread>
#include <vector>

#include "cont/cont.h"
#include "cont/exec.h"
#include "cont/segment.h"

namespace {

using mp::cont::callcc;
using mp::cont::Cont;
using mp::cont::ContRef;
using mp::cont::exit_to_idle;
using mp::cont::fire_preloaded;
using mp::cont::make_entry;
using mp::cont::run_from_idle;
using mp::cont::SegmentPool;
using mp::cont::throw_to;
using mp::cont::Unit;

// A minimal stand-in for a platform proc: an ExecContext plus an idle loop
// context, driven directly by the test thread.  The real platform backends
// (src/mp) are built the same way.
class ManualProc {
 public:
  ManualProc() {
    exec_.idle_ctx = &idle_ctx_;
    mp::cont::set_current_exec(&exec_);
  }
  ~ManualProc() { mp::cont::set_current_exec(nullptr); }

  void run(std::function<void()> f) {
    run_from_idle(make_entry(std::move(f)), exec_);
  }
  void resume(ContRef k) { run_from_idle(std::move(k), exec_); }

 private:
  mp::cont::ExecContext exec_;
  mp::arch::Context idle_ctx_;
};

class ContTest : public ::testing::Test {
 protected:
  void SetUp() override {
    baseline_segments_ = SegmentPool::instance().outstanding();
    baseline_cores_ = mp::cont::live_core_count();
  }
  void TearDown() override {
    EXPECT_EQ(SegmentPool::instance().outstanding(), baseline_segments_)
        << "stack segments leaked by test";
    EXPECT_EQ(mp::cont::live_core_count(), baseline_cores_)
        << "continuation cores leaked by test";
  }

  std::int64_t baseline_segments_ = 0;
  std::size_t baseline_cores_ = 0;
};

TEST_F(ContTest, EntryRunsToCompletion) {
  ManualProc proc;
  bool ran = false;
  proc.run([&] { ran = true; });
  EXPECT_TRUE(ran);
}

TEST_F(ContTest, EntryRunsNestedCalls) {
  ManualProc proc;
  long result = 0;
  proc.run([&] {
    std::function<long(long)> fib = [&](long n) {
      return n < 2 ? n : fib(n - 1) + fib(n - 2);
    };
    result = fib(15);
  });
  EXPECT_EQ(result, 610);
}

TEST_F(ContTest, CallccImplicitReturn) {
  ManualProc proc;
  int got = 0;
  proc.run([&] { got = callcc<int>([](Cont<int>) { return 42; }); });
  EXPECT_EQ(got, 42);
}

TEST_F(ContTest, CallccThrowDeliversValue) {
  ManualProc proc;
  int got = 0;
  bool after_throw = false;
  proc.run([&] {
    got = callcc<int>([&](Cont<int> k) -> int {
      throw_to(std::move(k), 7);
      after_throw = true;  // unreachable
      return 0;
    });
  });
  EXPECT_EQ(got, 7);
  EXPECT_FALSE(after_throw);
}

TEST_F(ContTest, ThrowRunsDestructorsOfAbandonedFrames) {
  ManualProc proc;
  bool dtor_ran = false;
  bool dtor_ran_before_resume = false;
  proc.run([&] {
    callcc<Unit>([&](Cont<Unit> k) -> Unit {
      struct Raii {
        bool* flag;
        ~Raii() { *flag = true; }
      };
      Raii r{&dtor_ran};
      throw_to(std::move(k), Unit{});
    });
    dtor_ran_before_resume = dtor_ran;
  });
  EXPECT_TRUE(dtor_ran);
  EXPECT_TRUE(dtor_ran_before_resume);
}

TEST_F(ContTest, SuspendAndResumeAcrossIdle) {
  ManualProc proc;
  Cont<int> saved;
  std::vector<int> trace;
  proc.run([&] {
    trace.push_back(1);
    int v = callcc<int>([&](Cont<int> k) -> int {
      saved = std::move(k);
      exit_to_idle();
    });
    trace.push_back(v);
  });
  // The thread is suspended; the proc is back in its idle loop.
  EXPECT_EQ(trace, (std::vector<int>{1}));
  saved.preload(2);
  proc.resume(std::move(saved).take_ref());
  EXPECT_EQ(trace, (std::vector<int>{1, 2}));
}

TEST_F(ContTest, TwoThreadsPingPongOnOneProc) {
  // A miniature round-robin scheduler: the shape of Figure 1 in the paper.
  ManualProc proc;
  std::deque<ContRef> ready;
  std::vector<int> trace;

  auto dispatch_or_exit = [&]() -> void {
    if (ready.empty()) exit_to_idle();
    ContRef next = std::move(ready.front());
    ready.pop_front();
    fire_preloaded(std::move(next));
  };
  auto yield = [&] {
    callcc<Unit>([&](Cont<Unit> k) -> Unit {
      k.preload(Unit{});
      ready.push_back(std::move(k).take_ref());
      dispatch_or_exit();
      return Unit{};  // unreachable; dispatch_or_exit transfers control
    });
  };

  auto body = [&](int id) {
    for (int i = 0; i < 3; i++) {
      trace.push_back(id * 10 + i);
      yield();
    }
  };
  ready.push_back(make_entry([&] { body(2); dispatch_or_exit(); }));
  proc.run([&] { body(1); dispatch_or_exit(); });
  EXPECT_EQ(trace, (std::vector<int>{10, 20, 11, 21, 12, 22}));
}

TEST_F(ContTest, NestedCallcc) {
  ManualProc proc;
  int got = 0;
  proc.run([&] {
    got = callcc<int>([&](Cont<int> outer) -> int {
      int inner_v = callcc<int>([&](Cont<int> inner) -> int {
        throw_to(std::move(inner), 5);
      });
      throw_to(std::move(outer), inner_v + 100);
    });
  });
  EXPECT_EQ(got, 105);
}

TEST_F(ContTest, PointerPayload) {
  ManualProc proc;
  int cell = 99;
  int* got = nullptr;
  proc.run([&] {
    got = callcc<int*>([&](Cont<int*> k) -> int* {
      throw_to(std::move(k), &cell);
    });
  });
  ASSERT_EQ(got, &cell);
  EXPECT_EQ(*got, 99);
}

TEST_F(ContTest, SmallStructPayload) {
  struct Pair {
    std::int32_t a;
    std::int32_t b;
  };
  ManualProc proc;
  Pair got{0, 0};
  proc.run([&] {
    got = callcc<Pair>([](Cont<Pair> k) -> Pair {
      throw_to(std::move(k), Pair{3, 4});
    });
  });
  EXPECT_EQ(got.a, 3);
  EXPECT_EQ(got.b, 4);
}

TEST_F(ContTest, ManySequentialCaptures) {
  ManualProc proc;
  long sum = 0;
  proc.run([&] {
    for (int i = 0; i < 20000; i++) {
      sum += callcc<int>([&](Cont<int> k) -> int { throw_to(std::move(k), 1); });
    }
  });
  EXPECT_EQ(sum, 20000);
}

TEST_F(ContTest, ChainOfSuspendedThreadsReclaimedWithoutFiring) {
  // Threads suspended on the "queue" are dropped without ever being resumed;
  // reference counting must reclaim their whole segment chains.
  ManualProc proc;
  {
    std::vector<Cont<Unit>> parked;
    for (int i = 0; i < 50; i++) {
      proc.run([&] {
        callcc<Unit>([&](Cont<Unit> k) -> Unit {
          parked.push_back(std::move(k));
          exit_to_idle();
        });
        ADD_FAILURE() << "abandoned thread was resumed";
      });
    }
    EXPECT_EQ(parked.size(), 50u);
  }  // parked handles dropped here
}

// pthread_self() is a pure function GCC may cache across a continuation
// switch (code holding thread identity across suspension points must re-read
// it through an opaque call; this is the same caveat the runtime documents
// for proc-local state).
__attribute__((noinline)) std::thread::id current_tid() {
  std::atomic_signal_fence(std::memory_order_seq_cst);
  return std::this_thread::get_id();
}

TEST_F(ContTest, MigrationAcrossKernelThreads) {
  Cont<int> saved;
  std::vector<std::string> trace;
  std::thread::id first_id{};
  std::thread::id second_id{};
  std::binary_semaphore parked{0};
  std::binary_semaphore resumed{0};

  // Both threads stay alive for the whole test so their ids are distinct.
  std::thread t1([&] {
    ManualProc proc;
    proc.run([&] {
      first_id = current_tid();
      int v = callcc<int>([&](Cont<int> k) -> int {
        saved = std::move(k);
        exit_to_idle();
      });
      // Resumed on a different kernel thread (t2's proc).
      second_id = current_tid();
      trace.push_back("resumed:" + std::to_string(v));
    });
    parked.release();
    resumed.acquire();  // wait for t2 before exiting
  });
  std::thread t2([&] {
    parked.acquire();
    ASSERT_TRUE(saved.valid());
    ManualProc proc;
    saved.preload(77);
    proc.resume(std::move(saved).take_ref());
    resumed.release();
  });
  t1.join();
  t2.join();
  EXPECT_EQ(trace, (std::vector<std::string>{"resumed:77"}));
  EXPECT_NE(first_id, second_id);
}

TEST_F(ContTest, SegmentsAreRecycled) {
  ManualProc proc;
  const auto created_before = SegmentPool::instance().total_created();
  proc.run([&] {
    for (int i = 0; i < 1000; i++) {
      callcc<int>([&](Cont<int> k) -> int { throw_to(std::move(k), 0); });
    }
  });
  const auto created_after = SegmentPool::instance().total_created();
  // 1000 captures must not allocate 1000 fresh segments.
  EXPECT_LE(created_after - created_before, 8);
}

using ContDeathTest = ContTest;

TEST_F(ContDeathTest, PreloadTwicePanics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ManualProc proc;
        Cont<int> saved;
        proc.run([&] {
          callcc<int>([&](Cont<int> k) -> int {
            saved = std::move(k);
            exit_to_idle();
          });
        });
        saved.preload(1);
        saved.preload(2);
      },
      "one-shot violation");
}

TEST_F(ContDeathTest, BodyReturnAfterValueDeliveredPanics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ManualProc proc;
        proc.run([&] {
          callcc<Unit>([&](Cont<Unit> k) -> Unit {
            k.preload(Unit{});  // value delivered (e.g. queued elsewhere)...
            return Unit{};      // ...so the implicit return throw is a bug
          });
        });
      },
      "one-shot violation");
}

TEST_F(ContDeathTest, CallccOutsideProcPanics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        callcc<int>([](Cont<int>) { return 1; });
      },
      "callcc outside");
}

TEST_F(ContDeathTest, UserExceptionEscapingBodyPanics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ManualProc proc;
        proc.run([&] {
          callcc<int>([](Cont<int>) -> int {
            throw std::runtime_error("user error");
          });
        });
      },
      "crossed a continuation boundary");
}

}  // namespace
