// The schedule fuzzer's own test suite: baseline determinism, fork/CoW
// snapshot round trips, mutated-replay determinism, failure classification,
// seed-file round trips, and the acceptance harness — with a known
// interleaving bug deliberately re-introduced (MPNJ_FUZZ_INJECT), the
// fuzzer must re-find it inside a bounded budget and the shrunk seed must
// replay to the identical failure.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "fuzz/driver.h"
#include "fuzz/scenarios.h"
#include "fuzz/snapshot.h"
#include "fuzz/trace.h"

namespace {

using namespace mp::fuzz;

double env_budget(const char* name, double dflt) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::atof(v) : dflt;
}

ExecutorOptions cold_opts() {
  ExecutorOptions o;
  o.use_snapshot = false;
  o.decision_budget = 3'000'000;
  o.child_timeout_s = 120;
  o.mute_child_stderr = true;
  return o;
}

// Guard that sets MPNJ_FUZZ_INJECT for the test body and clears it after
// (executor children re-parse the variable after fork).
struct InjectGuard {
  explicit InjectGuard(const char* bugs) {
    setenv("MPNJ_FUZZ_INJECT", bugs, 1);
  }
  ~InjectGuard() { unsetenv("MPNJ_FUZZ_INJECT"); }
};

// ---------- baseline determinism ----------

TEST(ScheduleFuzz, BaselineRunsAreBitIdentical) {
  for (const Scenario& sc : scenarios()) {
    ScenarioOpts opts;
    Executor ex(scenario_body(sc.name, opts), cold_opts());
    ScheduleTrace t1, t2;
    const RunResult a = ex.run({}, &t1);
    const RunResult b = ex.run({}, &t2);
    ASSERT_FALSE(a.failed()) << sc.name << ": " << a.message;
    EXPECT_EQ(a.checksum, b.checksum) << sc.name;
    EXPECT_EQ(a.virtual_us, b.virtual_us) << sc.name;
    EXPECT_EQ(a.decisions, b.decisions) << sc.name;
    ASSERT_EQ(t1.count(), t2.count()) << sc.name;
    for (std::size_t i = 0; i < t1.decisions.size(); i++) {
      ASSERT_EQ(static_cast<int>(t1.decisions[i].kind),
                static_cast<int>(t2.decisions[i].kind))
          << sc.name << " decision " << i;
      ASSERT_EQ(t1.decisions[i].chosen, t2.decisions[i].chosen)
          << sc.name << " decision " << i;
    }
    EXPECT_GT(t1.count(), 100u) << sc.name << " exercises too few decisions";
  }
}

// ---------- snapshot round trip ----------
//
// A run restored from a mid-run CoW snapshot must be bit-identical to the
// uninterrupted run: same checksum, same virtual time, same decision
// count.  Swept across both queue disciplines and both GC modes.

TEST(ScheduleFuzz, SnapshotRoundTripIsBitIdentical) {
  struct Case {
    const char* scenario;
    const char* queue;
    bool parallel_gc;
  };
  const Case cases[] = {
      {"gc-churn", "ws", true},
      {"gc-churn", "ws", false},
      {"gc-churn", "distributed", true},
      {"qlock-storm", "distributed", false},
      {"cml-ring", "ws", true},
      {"wake-storm", "distributed", true},
  };
  for (const Case& c : cases) {
    ScenarioOpts opts;
    opts.queue = c.queue;
    opts.parallel_gc = c.parallel_gc;
    const std::string label = std::string(c.scenario) + "/" + c.queue +
                              (c.parallel_gc ? "/par" : "/seq");

    Executor cold(scenario_body(c.scenario, opts), cold_opts());
    const RunResult base = cold.run({});
    ASSERT_FALSE(base.failed()) << label << ": " << base.message;

    // Snapshot mid-run: park the server a few hundred decisions in.
    ExecutorOptions wopts = cold_opts();
    wopts.use_snapshot = true;
    wopts.snapshot_at = base.decisions / 2;
    Executor warm(scenario_body(c.scenario, opts), wopts);
    const RunResult restored1 = warm.run({});
    const RunResult restored2 = warm.run({});
    EXPECT_EQ(restored1.checksum, base.checksum) << label;
    EXPECT_EQ(restored1.virtual_us, base.virtual_us) << label;
    EXPECT_EQ(restored1.decisions, base.decisions) << label;
    EXPECT_EQ(restored2.checksum, base.checksum) << label;
    EXPECT_EQ(restored2.virtual_us, base.virtual_us) << label;
  }
}

// Mutations applied past the snapshot point must behave identically warm
// and cold.

TEST(ScheduleFuzz, SnapshotServesMutatedRunsIdentically) {
  ScenarioOpts opts;
  Executor cold(scenario_body("qlock-storm", opts), cold_opts());
  const RunResult base = cold.run({});
  ASSERT_FALSE(base.failed()) << base.message;
  const std::uint64_t snap = base.decisions / 4;

  ExecutorOptions wopts = cold_opts();
  wopts.use_snapshot = true;
  wopts.snapshot_at = snap;
  Executor warm(scenario_body("qlock-storm", opts), wopts);

  for (std::uint64_t probe = 0; probe < 3; probe++) {
    std::vector<Mutation> muts;
    Mutation m;
    m.index = snap + probe * 97;  // at and past the snapshot point
    m.jitter_us = 25;
    muts.push_back(m);
    const RunResult w = warm.run(muts);
    const RunResult c = cold.run(muts);
    EXPECT_EQ(w.signature(), c.signature()) << "probe " << probe;
    EXPECT_EQ(w.checksum, c.checksum) << "probe " << probe;
    EXPECT_EQ(w.virtual_us, c.virtual_us) << "probe " << probe;
    EXPECT_EQ(w.decisions, c.decisions) << "probe " << probe;
  }
}

// ---------- mutated replay determinism ----------

TEST(ScheduleFuzz, MutatedRunsReplayByteForByte) {
  ScenarioOpts opts;
  Executor ex(scenario_body("cml-ring", opts), cold_opts());
  std::vector<Mutation> muts;
  for (std::uint64_t i = 0; i < 4; i++) {
    Mutation m;
    m.index = 50 + i * 211;
    if (i % 2 == 0) {
      m.jitter_us = 10.0 * static_cast<double>(i + 1);
    } else {
      m.has_pick = true;
      m.pick = i;
    }
    muts.push_back(m);
  }
  ScheduleTrace t1, t2;
  const RunResult a = ex.run(muts, &t1);
  const RunResult b = ex.run(muts, &t2);
  EXPECT_EQ(a.signature(), b.signature());
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.virtual_us, b.virtual_us);
  ASSERT_EQ(t1.count(), t2.count());
  for (std::size_t i = 0; i < t1.decisions.size(); i++) {
    ASSERT_EQ(t1.decisions[i].chosen, t2.decisions[i].chosen)
        << "decision " << i;
  }
}

// ---------- failure classification ----------

TEST(ScheduleFuzz, DecisionBudgetOverrunClassifiesAsHang) {
  ScenarioOpts opts;
  ExecutorOptions eopts = cold_opts();
  eopts.decision_budget = 500;  // far below any scenario's real footprint
  Executor ex(scenario_body("qlock-storm", opts), eopts);
  const RunResult r = ex.run({});
  EXPECT_EQ(r.status, RunResult::Status::kHang);
  EXPECT_NE(r.message.find("decision budget exceeded"), std::string::npos)
      << r.message;
  EXPECT_EQ(r.decisions, 500u);
}

// ---------- seed files ----------

TEST(ScheduleFuzz, SeedFileRoundTrips) {
  SeedFile s;
  s.scenario = "qlock-storm";
  s.seed = 0xabcdef;
  s.procs = 7;
  s.queue = "distributed";
  s.parallel_gc = false;
  s.decision_budget = 123456;
  Mutation m1;
  m1.index = 42;
  m1.has_pick = true;
  m1.pick = 3;
  Mutation m2;
  m2.index = 4711;
  m2.jitter_us = 12.625;
  s.mutations = {m1, m2};
  s.signature = "deadlock simulated deadlock: all procs idle";

  SeedFile parsed;
  std::string err;
  ASSERT_TRUE(parse_seed_file(format_seed_file(s), &parsed, &err)) << err;
  EXPECT_EQ(parsed.scenario, s.scenario);
  EXPECT_EQ(parsed.seed, s.seed);
  EXPECT_EQ(parsed.procs, s.procs);
  EXPECT_EQ(parsed.queue, s.queue);
  EXPECT_EQ(parsed.parallel_gc, s.parallel_gc);
  EXPECT_EQ(parsed.decision_budget, s.decision_budget);
  ASSERT_EQ(parsed.mutations.size(), 2u);
  EXPECT_EQ(parsed.mutations[0].index, 42u);
  EXPECT_TRUE(parsed.mutations[0].has_pick);
  EXPECT_EQ(parsed.mutations[0].pick, 3u);
  EXPECT_EQ(parsed.mutations[1].index, 4711u);
  EXPECT_EQ(parsed.mutations[1].jitter_us, 12.625);
  EXPECT_EQ(parsed.signature, s.signature);

  SeedFile bad;
  EXPECT_FALSE(parse_seed_file("not a seed file\n", &bad, &err));
  EXPECT_FALSE(parse_seed_file(
      "mpnj-schedule-fuzz v1\nscenario x\nmutate 1 frobnicate 2\n", &bad,
      &err));
  EXPECT_NE(err.find("line 3"), std::string::npos) << err;
}

// ---------- acceptance: re-finding injected bugs ----------

TEST(ScheduleFuzz, FindsInjectedBarrierGenerationBug) {
  InjectGuard inject("barrier-generation");
  DriverOptions opt;
  opt.scenario = "qlock-storm";
  opt.budget_s = env_budget("MPNJ_FUZZ_BUDGET_S", 60);
  const DriverResult r = fuzz_scenario(opt);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.failure.status, RunResult::Status::kPanic);
  EXPECT_NE(r.failure.message.find("Barrier waiter resumed"),
            std::string::npos)
      << r.failure.message;
  // The failing seed must replay to the identical failure, twice.
  const RunResult p1 = replay_seed(r.seed);
  const RunResult p2 = replay_seed(r.seed);
  EXPECT_EQ(p1.signature(), r.seed.signature);
  EXPECT_EQ(p2.signature(), r.seed.signature);
}

TEST(ScheduleFuzz, FindsInjectedQlockParkRaceWithinBudget) {
  InjectGuard inject("qlock-park-race");
  DriverOptions opt;
  opt.scenario = "qlock-storm";
  opt.budget_s = env_budget("MPNJ_FUZZ_BUDGET_S", 60);
  opt.rng_seed = 7;
  const DriverResult r = fuzz_scenario(opt);
  ASSERT_TRUE(r.found) << "no failing schedule in " << r.executions
                       << " executions";
  // The lost wakeup surfaces as a deadlock (all procs idle) or as a
  // decision-budget hang (parked procs cycling their park slices).
  EXPECT_TRUE(r.failure.status == RunResult::Status::kDeadlock ||
              r.failure.status == RunResult::Status::kHang)
      << status_name(r.failure.status) << ": " << r.failure.message;
  EXPECT_FALSE(r.seed.mutations.empty())
      << "the unmutated baseline should not fail";

  // Acceptance: two consecutive replays reproduce the identical failure.
  const RunResult p1 = replay_seed(r.seed);
  const RunResult p2 = replay_seed(r.seed);
  EXPECT_EQ(p1.signature(), r.seed.signature);
  EXPECT_EQ(p2.signature(), r.seed.signature);

  // And without the injection the same schedule is clean: the find is the
  // bug, not the mutations.
  unsetenv("MPNJ_FUZZ_INJECT");
  const RunResult clean = replay_seed(r.seed);
  EXPECT_FALSE(clean.failed()) << clean.message;
}

}  // namespace
