// Tests for the trivial uniprocessor backend: the full client stack
// (Figure 3 scheduler, sync primitives, channels, GC) must run unchanged
// on a single cooperatively scheduled proc — the paper's portability
// bottom rung.

#include <gtest/gtest.h>

#include <vector>

#include "cml/cml.h"
#include "cml/sync_cells.h"
#include "gc/roots.h"
#include "mp/uni_platform.h"
#include "threads/mlthreads.h"
#include "threads/scheduler.h"
#include "threads/sync.h"
#include "threads/unithread.h"

namespace {

using mp::UniPlatform;
using mp::UniPlatformConfig;
using mp::cont::callcc;
using mp::cont::Cont;
using mp::cont::Unit;
using mp::gc::Roots;
using mp::gc::Value;
using mp::threads::CountdownLatch;
using mp::threads::Scheduler;
using mp::threads::SchedulerConfig;

TEST(UniPlatform, RunsRootToCompletion) {
  UniPlatform p;
  bool ran = false;
  mp::Datum datum_seen = 0;
  p.run(
      [&] {
        ran = true;
        datum_seen = p.get_datum();
        EXPECT_EQ(p.proc_id(), 0);
        EXPECT_EQ(p.max_procs(), 1);
        EXPECT_EQ(p.active_procs(), 1);
      },
      /*root_datum=*/17);
  EXPECT_TRUE(ran);
  EXPECT_EQ(datum_seen, 17u);
}

TEST(UniPlatform, AcquireAlwaysRaisesNoMoreProcs) {
  UniPlatform p;
  bool raised = false;
  p.run([&] {
    callcc<Unit>([&](Cont<Unit> k) -> Unit {
      try {
        p.acquire_proc(k, 0);
      } catch (const mp::NoMoreProcs&) {
        raised = true;
        mp::cont::fire_preloaded(std::move(k).take_ref());
      }
      ADD_FAILURE() << "acquire_proc succeeded on a uniprocessor";
      mp::cont::exit_to_idle();
    });
  });
  EXPECT_TRUE(raised);
}

TEST(UniPlatform, LocksAreBooleanAndUncontended) {
  UniPlatform p;
  p.run([&] {
    mp::MutexLock l = p.mutex_lock();
    EXPECT_TRUE(p.try_lock(l));
    EXPECT_FALSE(p.try_lock(l));
    p.unlock(l);
    p.lock(l);  // free: must succeed immediately
    p.unlock(l);
  });
}

TEST(UniPlatformDeathTest, LockOnHeldLockPanics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        UniPlatform p;
        p.run([&] {
          mp::MutexLock l = p.mutex_lock();
          p.lock(l);
          p.lock(l);  // would spin forever: the holder cannot run
        });
      },
      "spin forever");
}

TEST(UniPlatform, SchedulerDegeneratesToCooperativeThreads) {
  // The multiprocessor package of Figure 3, run on the trivial backend:
  // every fork takes the No_More_Procs path and the package behaves like
  // Figure 1.
  UniPlatform p;
  std::vector<int> trace;
  SchedulerConfig cfg;
  cfg.queue = std::make_unique<mp::threads::CentralFifoQueue>();
  Scheduler::run(p, std::move(cfg), [&](Scheduler& s) {
    CountdownLatch latch(s, 2);
    for (int id = 1; id <= 2; id++) {
      s.fork([&, id] {
        for (int i = 0; i < 3; i++) {
          trace.push_back(id);
          s.yield();
        }
        latch.count_down();
      });
    }
    latch.await();
  });
  ASSERT_EQ(trace.size(), 6u);
  for (std::size_t i = 1; i < trace.size(); i++) {
    EXPECT_NE(trace[i], trace[i - 1]) << "threads must alternate";
  }
}

TEST(UniPlatform, ChannelsRendezvousCooperatively) {
  UniPlatform p;
  long sum = 0;
  Scheduler::run(p, {}, [&](Scheduler& s) {
    mp::cml::Channel<int> ch(s);
    s.fork([&] {
      for (int i = 0; i < 25; i++) ch.send(i);
    });
    for (int i = 0; i < 25; i++) sum += ch.recv();
  });
  EXPECT_EQ(sum, 24L * 25 / 2);
}

TEST(UniPlatform, SelectAndTimeoutsWork) {
  UniPlatform p;
  int got = 0;
  bool timed_out = false;
  // Outlives the root lambda: the polling thread below may still be running
  // (inside Scheduler::run's drain loop) after the lambda's frame is gone.
  std::atomic<bool> stop{false};
  Scheduler::run(p, {}, [&](Scheduler& s) {
    mp::cml::Channel<int> a(s), b(s);
    s.fork([&] { b.send(5); });
    for (int i = 0; i < 10; i++) s.yield();
    got = mp::cml::select_receive<int>({&a, &b});
    // And a timeout on a silent channel (requires an active polling thread
    // for the scheduler's timer).
    s.fork([&] {
      while (!stop.load()) s.yield();
    });
    timed_out = !mp::cml::recv_timeout(a, 10'000).has_value();
    stop.store(true);
  });
  EXPECT_EQ(got, 5);
  EXPECT_TRUE(timed_out);
}

TEST(UniPlatform, GarbageCollectionWorksWithoutStoppingAnything) {
  UniPlatformConfig cfg;
  cfg.heap.nursery_bytes = 64 * 1024;
  UniPlatform p(cfg);
  p.run([&] {
    auto& h = p.heap();
    Roots<1> r;
    r[0] = h.alloc_record({Value::from_int(2718)});
    for (int i = 0; i < 20000; i++) h.alloc_record({Value::from_int(i)});
    EXPECT_GT(h.stats().minor_gcs, 0u);
    EXPECT_EQ(r[0].field(0).as_int(), 2718);
  });
}

TEST(UniPlatform, PreemptionTimerInterleavesComputeThreads) {
  UniPlatformConfig cfg;
  cfg.preempt_interval_us = 500;  // real time on this backend
  UniPlatform p(cfg);
  std::vector<int> trace;
  SchedulerConfig sc;
  sc.preempt_interval_us = 500;
  Scheduler::run(p, std::move(sc), [&](Scheduler& s) {
    CountdownLatch latch(s, 2);
    for (int id = 1; id <= 2; id++) {
      s.fork([&, id] {
        for (int i = 0; i < 50; i++) {
          trace.push_back(id);
          const double t0 = s.platform().now_us();
          while (s.platform().now_us() - t0 < 100) s.platform().work(20);
        }
        latch.count_down();
      });
    }
    latch.await();
  });
  int switches = 0;
  for (std::size_t i = 1; i < trace.size(); i++) {
    if (trace[i] != trace[i - 1]) switches++;
  }
  EXPECT_GT(switches, 1) << "the timer must preempt compute-bound threads";
}

TEST(UniPlatform, MlThreadsJoinAndAlerts) {
  UniPlatform p;
  long got = 0;
  bool alerted = false;
  Scheduler::run(p, {}, [&](Scheduler& s) {
    auto t = mp::threads::fork_thread<long>(s, [] { return 12L; });
    got = t.join();
    auto v = mp::threads::fork_thread<Unit>(s, [&] {
      for (;;) mp::threads::alert_pause(s);
      return Unit{};
    });
    for (int i = 0; i < 5; i++) s.yield();
    v.alert();
    try {
      v.join();
    } catch (const mp::threads::Alerted&) {
      alerted = true;
    }
  });
  EXPECT_EQ(got, 12);
  EXPECT_TRUE(alerted);
}

TEST(UniPlatformDeathTest, ReleasingTheOnlyProcPanics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        UniPlatform p;
        p.run([&] { p.release_proc(); });
      },
      "uniprocessor deadlock");
}

}  // namespace
