// Direct unit tests of the discrete-event engine: virtual clocks, min-clock
// scheduling, the shared-bus queueing model, idle/wake accounting,
// stop-the-world rendezvous, timer hooks, and determinism.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "sim/engine.h"
#include "sim/machine.h"

namespace {

using mp::sim::Engine;
using mp::sim::MachineModel;

// Drives an Engine directly: each proc's fiber sits in idle_wait until a
// job is posted to it.
class Harness {
 public:
  explicit Harness(MachineModel model)
      : jobs_(static_cast<std::size_t>(model.num_procs)),
        eng_(model, [this](int id) { proc_main(id); }) {}

  void post(int id, std::function<void()> job) {
    jobs_[static_cast<std::size_t>(id)] = std::move(job);
    eng_.wake(id, 0);
  }

  Engine& eng() { return eng_; }

 private:
  void proc_main(int id) {
    for (;;) {
      if (jobs_[static_cast<std::size_t>(id)]) {
        auto job = std::move(jobs_[static_cast<std::size_t>(id)]);
        jobs_[static_cast<std::size_t>(id)] = nullptr;
        job();
      }
      eng_.idle_wait();
    }
  }

  std::vector<std::function<void()>> jobs_;
  Engine eng_;
};

MachineModel test_model(int procs) {
  MachineModel m = mp::sim::sequent_s81(procs);
  m.bus_bytes_per_us = 25.0;
  return m;
}

TEST(Engine, ChargeAdvancesClockAndBusyTime) {
  Harness h(test_model(1));
  h.post(0, [&] {
    h.eng().charge_us(100);
    h.eng().charge_instr(40);  // 40 instr at 4 MIPS = 10 us
  });
  h.eng().run();
  EXPECT_DOUBLE_EQ(h.eng().clock_of(0), 110.0);
  EXPECT_DOUBLE_EQ(h.eng().stats(0).busy_us, 110.0);
  EXPECT_DOUBLE_EQ(h.eng().total_us(), 110.0);
}

TEST(Engine, MinClockProcRunsFirst) {
  Harness h(test_model(2));
  std::vector<int> order;
  h.post(0, [&] {
    for (int i = 0; i < 3; i++) {
      order.push_back(0);
      h.eng().charge_us(10);  // proc 0 ticks at 10us
    }
  });
  h.post(1, [&] {
    for (int i = 0; i < 3; i++) {
      order.push_back(1);
      h.eng().charge_us(25);  // proc 1 ticks at 25us
    }
  });
  h.eng().run();
  // Events by virtual time: p0@0, p1@0, p0@10, p0@20, p1@25, p0? done,
  // p1@50.  Ties go to the lower id.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 0, 0, 1, 1}));
}

TEST(Engine, BusSerializesTransfersFcfs) {
  Harness h(test_model(2));
  h.post(0, [&] {
    h.eng().bus_transfer(50);  // 2us transfer starting at t=0
  });
  h.post(1, [&] {
    h.eng().charge_us(1);      // request the bus at t=1, mid-transfer
    h.eng().bus_transfer(25);  // 1us transfer, must queue until t=2
  });
  h.eng().run();
  EXPECT_DOUBLE_EQ(h.eng().clock_of(0), 2.0);
  EXPECT_DOUBLE_EQ(h.eng().clock_of(1), 3.0);
  EXPECT_DOUBLE_EQ(h.eng().stats(1).bus_wait_us, 1.0);
  EXPECT_DOUBLE_EQ(h.eng().bus_stats().busy_us, 3.0);
  EXPECT_EQ(h.eng().bus_stats().bytes, 75u);
}

TEST(Engine, BusIdleGapDoesNotChargeWaiters) {
  Harness h(test_model(1));
  h.post(0, [&] {
    h.eng().bus_transfer(25);  // [0,1]
    h.eng().charge_us(10);     // bus idle until t=11
    h.eng().bus_transfer(25);  // starts immediately at t=11
  });
  h.eng().run();
  EXPECT_DOUBLE_EQ(h.eng().clock_of(0), 12.0);
  EXPECT_DOUBLE_EQ(h.eng().stats(0).bus_wait_us, 0.0);
}

TEST(Engine, WakeHonoursNotBeforeAndAccountsIdle) {
  Harness h(test_model(2));
  h.post(1, [] {});  // starts at t=0, completes instantly, goes idle
  h.post(0, [&] {
    h.eng().charge_us(100);
    h.eng().wake(1, h.eng().now());
  });
  // Proc 1 wakes at 100, finds nothing, idles again; the 100us gap between
  // its idle transition (t=0) and the wake is accounted as idle time.
  h.eng().run();
  EXPECT_DOUBLE_EQ(h.eng().clock_of(1), 100.0);
  EXPECT_DOUBLE_EQ(h.eng().stats(1).idle_us, 100.0);
}

TEST(Engine, StopWorldParksRunnableProcsAndBumpsClocks) {
  Harness h(test_model(3));
  double p1_after = -1, p2_after = -1;
  h.post(0, [&] {
    h.eng().charge_us(5);
    h.eng().stop_world();
    // World stopped: procs 1 and 2 are parked at safe points.
    h.eng().charge_us(1000);  // the "collection"
    h.eng().resume_world();
  });
  h.post(1, [&] {
    for (int i = 0; i < 100; i++) h.eng().charge_us(1);
    p1_after = h.eng().now();
  });
  h.post(2, [&] {
    for (int i = 0; i < 100; i++) h.eng().charge_us(1);
    p2_after = h.eng().now();
  });
  h.eng().run();
  // Both workers lost time to the collection: their 100us of work finishes
  // only after the collector's clock (~1005) once parked.
  EXPECT_GT(p1_after, 1000.0);
  EXPECT_GT(p2_after, 1000.0);
  EXPECT_GT(h.eng().stats(1).gc_wait_us + h.eng().stats(2).gc_wait_us, 900.0);
}

TEST(Engine, TimerHookFiresAtArmedTime) {
  Harness h(test_model(1));
  std::vector<double> fired_at;
  h.eng().set_timer_hook([&](int id) {
    EXPECT_EQ(id, 0);
    fired_at.push_back(h.eng().now());
  });
  h.post(0, [&] {
    h.eng().arm_hook(0, 50);
    for (int i = 0; i < 20; i++) h.eng().charge_us(10);
  });
  h.eng().run();
  ASSERT_EQ(fired_at.size(), 1u) << "hook must fire once until re-armed";
  EXPECT_GE(fired_at[0], 50.0);
  EXPECT_LE(fired_at[0], 60.0) << "fires at the first charge past the deadline";
}

TEST(Engine, RngStreamsAreDeterministicAndPerProc) {
  auto sample = [](int proc) {
    Harness h(test_model(2));
    std::vector<std::uint64_t> vals;
    h.post(proc, [&, proc] {
      for (int i = 0; i < 5; i++) vals.push_back(h.eng().rng(proc).next());
    });
    h.eng().run();
    return vals;
  };
  EXPECT_EQ(sample(0), sample(0));
  EXPECT_NE(sample(0), sample(1));
}

TEST(Engine, DeterministicInterleavingUnderRandomLoads) {
  auto run_once = [] {
    Harness h(test_model(4));
    std::vector<int> order;
    for (int id = 0; id < 4; id++) {
      h.post(id, [&h, &order, id] {
        for (int i = 0; i < 50; i++) {
          order.push_back(id);
          h.eng().charge_us(1.0 + static_cast<double>(h.eng().rng(id).below(20)));
          h.eng().bus_transfer(static_cast<double>(h.eng().rng(id).below(30)));
        }
      });
    }
    h.eng().run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Engine, NumIdleTracksProcStates) {
  Harness h(test_model(3));
  EXPECT_EQ(h.eng().num_idle(), 3);
  int seen_mid_run = -1;
  h.post(0, [&] {
    h.eng().charge_us(1);
    seen_mid_run = h.eng().num_idle();
  });
  h.eng().run();
  EXPECT_EQ(seen_mid_run, 2);
  EXPECT_EQ(h.eng().num_idle(), 3);
}

}  // namespace
