// Tests for the extensions beyond the paper's core: the Figure 1
// uniprocessor package, scheduler timers and sleep, CML timeout events,
// IVar/MVar/Mailbox cells, the priority queue discipline, and the
// cache-fitting-nursery model (section 7 future work).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cml/cml.h"
#include "cml/sync_cells.h"
#include "mp/native_platform.h"
#include "mp/sim_platform.h"
#include "threads/scheduler.h"
#include "threads/unithread.h"
#include "workloads/runner.h"

namespace {

using mp::cont::Unit;
using mp::cml::Channel;
using mp::cml::Event;
using mp::cml::IVar;
using mp::cml::Mailbox;
using mp::cml::MVar;
using mp::threads::CountdownLatch;
using mp::threads::PriorityQueue;
using mp::threads::Scheduler;
using mp::threads::SchedulerConfig;
using mp::threads::UniFifo;
using mp::threads::UniLifo;
using mp::threads::UniRandom;
using mp::threads::UniThread;

enum class Backend { kSim, kNative };

std::string backend_name(const ::testing::TestParamInfo<Backend>& info) {
  return info.param == Backend::kSim ? "Sim" : "Native";
}

std::unique_ptr<mp::Platform> make_platform(Backend b, int procs) {
  if (b == Backend::kSim) {
    mp::SimPlatformConfig cfg;
    cfg.machine = mp::sim::sequent_s81(procs);
    return std::make_unique<mp::SimPlatform>(cfg);
  }
  mp::NativePlatformConfig cfg;
  cfg.max_procs = procs;
  return std::make_unique<mp::NativePlatform>(cfg);
}

// ---------- UniThread (paper Figure 1) ----------

TEST(UniThread, ForkRunsChildImmediately) {
  std::vector<int> trace;
  UniThread<>::run([&](UniThread<>& t) {
    trace.push_back(1);
    t.fork([&] { trace.push_back(2); });  // child runs now, parent queued
    trace.push_back(3);
  });
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3}));
}

TEST(UniThread, IdsFollowFigureOne) {
  std::vector<int> ids;
  UniThread<>::run([&](UniThread<>& t) {
    ids.push_back(t.id());  // root = 0
    t.fork([&] { ids.push_back(t.id()); });
    t.fork([&] { ids.push_back(t.id()); });
    ids.push_back(t.id());
  });
  EXPECT_EQ(ids, (std::vector<int>{0, 1, 2, 0}));
}

TEST(UniThread, YieldRoundRobinsFifo) {
  std::vector<int> trace;
  UniThread<>::run([&](UniThread<>& t) {
    for (int id = 1; id <= 2; id++) {
      t.fork([&, id] {
        for (int i = 0; i < 3; i++) {
          trace.push_back(id * 10 + i);
          t.yield();
        }
      });
    }
    while (!trace.empty() && trace.size() < 6) t.yield();
  });
  ASSERT_EQ(trace.size(), 6u);
  EXPECT_EQ(trace[0], 10);
  EXPECT_EQ(trace[1], 20);
}

TEST(UniThread, LifoDisciplineChangesOrder) {
  std::vector<int> fifo_trace, lifo_trace;
  UniThread<UniFifo>::run([&](UniThread<UniFifo>& t) {
    for (int i = 1; i <= 3; i++) {
      t.fork([&, i] { fifo_trace.push_back(i); });
    }
  });
  UniThread<UniLifo>::run([&](UniThread<UniLifo>& t) {
    for (int i = 1; i <= 3; i++) {
      t.fork([&, i] { lifo_trace.push_back(i); });
    }
  });
  // Children run immediately in both, in fork order.
  EXPECT_EQ(fifo_trace, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(lifo_trace, (std::vector<int>{1, 2, 3}));
}

TEST(UniThread, RandomDisciplineCompletesEverything) {
  int done = 0;
  UniThread<UniRandom>::run(
      [&](UniThread<UniRandom>& t) {
        for (int i = 0; i < 50; i++) {
          t.fork([&] {
            t.yield();
            done++;
          });
        }
      },
      UniRandom(7));
  EXPECT_EQ(done, 50);
}

TEST(UniThread, ManyThreadsDeepYields) {
  long total = 0;
  UniThread<>::run([&](UniThread<>& t) {
    for (int i = 0; i < 200; i++) {
      t.fork([&, i] {
        for (int n = 0; n < i % 7; n++) t.yield();
        total += i;
      });
    }
  });
  EXPECT_EQ(total, 199L * 200 / 2);
}

TEST(UniThread, RunsInsidePlatformProcToo) {
  auto p = make_platform(Backend::kSim, 1);
  int done = 0;
  p->run([&] {
    UniThread<>::run([&](UniThread<>& t) {
      t.fork([&] { done++; });
      t.fork([&] { done++; });
    });
  });
  EXPECT_EQ(done, 2);
}

// ---------- scheduler timers / sleep ----------

class ExtTest : public ::testing::TestWithParam<Backend> {};

TEST_P(ExtTest, SleepForAdvancesClock) {
  auto p = make_platform(GetParam(), 2);
  double before = 0, after = 0;
  // Outlives the root lambda: the partner thread still reads it while the
  // scheduler drains.
  std::atomic<bool> stop{false};
  Scheduler::run(*p, {}, [&](Scheduler& s) {
    // A busy partner keeps the dispatch loop turning so timers fire.
    s.fork([&] {
      while (!stop.load()) {
        s.platform().work(50);
        s.yield();
      }
    });
    before = s.platform().now_us();
    s.sleep_for(3000);
    after = s.platform().now_us();
    stop.store(true);
  });
  EXPECT_GE(after - before, 3000.0);
  EXPECT_LT(after - before, 3e6);
}

TEST_P(ExtTest, TimerCallbacksFireInDeadlineOrder) {
  auto p = make_platform(GetParam(), 2);
  std::vector<int> order;
  // Completion is signalled *after* each callback's unlock: the root lambda
  // destroys the mutex when it returns, so it must not race a callback that
  // has published its entry but is still releasing the lock.
  std::atomic<int> fired{0};
  Scheduler::run(*p, {}, [&](Scheduler& s) {
    const double t0 = s.platform().now_us();
    mp::threads::Mutex m(s);
    const auto cb = [&](int n) {
      m.lock();
      order.push_back(n);
      m.unlock();
      fired.fetch_add(1, std::memory_order_release);
    };
    s.at(t0 + 3000, [&, cb] { cb(3); });
    s.at(t0 + 1000, [&, cb] { cb(1); });
    s.at(t0 + 2000, [&, cb] { cb(2); });
    while (fired.load(std::memory_order_acquire) < 3 &&
           s.platform().now_us() < t0 + 5e6) {
      s.platform().work(100);
      s.yield();
    }
  });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_P(ExtTest, ManySleepersAllWake) {
  auto p = make_platform(GetParam(), 3);
  std::atomic<int> woke{0};
  Scheduler::run(*p, {}, [&](Scheduler& s) {
    CountdownLatch latch(s, 20);
    for (int i = 0; i < 20; i++) {
      s.fork([&, i] {
        s.sleep_for(100.0 * (i % 5 + 1));
        woke.fetch_add(1);
        latch.count_down();
      });
    }
    // Keep a dispatch loop hot.
    while (latch.remaining() > 0) {
      s.platform().work(50);
      s.yield();
    }
    latch.await();
  });
  EXPECT_EQ(woke.load(), 20);
}

// ---------- CML timeout events ----------

TEST_P(ExtTest, RecvTimesOutOnSilentChannel) {
  auto p = make_platform(GetParam(), 2);
  bool got_nothing = false;
  std::atomic<bool> stop{false};
  Scheduler::run(*p, {}, [&](Scheduler& s) {
    s.fork([&] {  // keep dispatch loops active for the timer
      while (!stop.load()) {
        s.platform().work(50);
        s.yield();
      }
    });
    Channel<int> quiet(s);
    got_nothing = !mp::cml::recv_timeout(quiet, 2000).has_value();
    stop.store(true);
  });
  EXPECT_TRUE(got_nothing);
}

TEST_P(ExtTest, RecvBeatsTimeoutWhenSenderIsReady) {
  auto p = make_platform(GetParam(), 2);
  std::optional<int> got;
  Scheduler::run(*p, {}, [&](Scheduler& s) {
    Channel<int> ch(s);
    s.fork([&] { ch.send(31); });
    for (int i = 0; i < 10; i++) s.yield();
    got = mp::cml::recv_timeout(ch, 1e6);
  });
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 31);
}

TEST_P(ExtTest, SendTimeoutFailsWithoutReceiver) {
  auto p = make_platform(GetParam(), 2);
  bool sent = true;
  std::atomic<bool> stop{false};
  Scheduler::run(*p, {}, [&](Scheduler& s) {
    s.fork([&] {
      while (!stop.load()) {
        s.platform().work(50);
        s.yield();
      }
    });
    Channel<int> quiet(s);
    sent = mp::cml::send_timeout(quiet, 5, 2000);
    stop.store(true);
  });
  EXPECT_FALSE(sent);
}

TEST_P(ExtTest, TimedOutOfferDoesNotFireLater) {
  auto p = make_platform(GetParam(), 2);
  int second = 0;
  std::atomic<bool> stop{false};
  Scheduler::run(*p, {}, [&](Scheduler& s) {
    s.fork([&] {
      while (!stop.load()) {
        s.platform().work(50);
        s.yield();
      }
    });
    Channel<int> ch(s);
    ASSERT_FALSE(mp::cml::recv_timeout(ch, 1000).has_value());
    // The timed-out receive offer is dead: a fresh sender must pair with a
    // fresh receiver, not the stale offer.
    s.fork([&] { ch.send(77); });
    second = ch.recv();
    stop.store(true);
  });
  EXPECT_EQ(second, 77);
}

// ---------- IVar / MVar / Mailbox ----------

TEST_P(ExtTest, IVarBlocksReadersUntilPut) {
  auto p = make_platform(GetParam(), 3);
  std::atomic<long> sum{0};
  Scheduler::run(*p, {}, [&](Scheduler& s) {
    IVar<long> iv(s);
    CountdownLatch latch(s, 3);
    for (int i = 0; i < 3; i++) {
      s.fork([&] {
        sum.fetch_add(iv.get());
        latch.count_down();
      });
    }
    for (int i = 0; i < 20; i++) s.yield();
    EXPECT_FALSE(iv.full());
    iv.put(7);
    latch.await();
    EXPECT_EQ(iv.get(), 7) << "get after put must not block";
  });
  EXPECT_EQ(sum.load(), 21);
}

TEST_P(ExtTest, IVarDoublePutPanics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        auto p = make_platform(GetParam(), 1);
        Scheduler::run(*p, {}, [&](Scheduler& s) {
          IVar<long> iv(s);
          iv.put(1);
          iv.put(2);
        });
      },
      "full IVar");
}

TEST_P(ExtTest, MVarTakePutAlternate) {
  auto p = make_platform(GetParam(), 2);
  std::vector<long> got;
  Scheduler::run(*p, {}, [&](Scheduler& s) {
    MVar<long> mv(s);
    s.fork([&] {
      for (long i = 0; i < 30; i++) mv.put(i);
    });
    for (int i = 0; i < 30; i++) got.push_back(mv.take());
  });
  ASSERT_EQ(got.size(), 30u);
  for (long i = 0; i < 30; i++) EXPECT_EQ(got[static_cast<size_t>(i)], i);
}

TEST_P(ExtTest, MVarTryOperations) {
  auto p = make_platform(GetParam(), 1);
  Scheduler::run(*p, {}, [&](Scheduler& s) {
    MVar<long> mv(s);
    EXPECT_FALSE(mv.try_take().has_value());
    EXPECT_TRUE(mv.try_put(5));
    EXPECT_FALSE(mv.try_put(6));
    auto v = mv.try_take();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 5);
  });
}

TEST_P(ExtTest, MailboxBuffersWithoutBlockingSender) {
  auto p = make_platform(GetParam(), 2);
  long sum = 0;
  Scheduler::run(*p, {}, [&](Scheduler& s) {
    Mailbox<long> mb(s);
    // Asynchronous: all sends complete before any recv.
    for (long i = 0; i < 50; i++) mb.send(i);
    EXPECT_EQ(mb.size(), 50u);
    for (int i = 0; i < 50; i++) sum += mb.recv();
    EXPECT_FALSE(mb.try_recv().has_value());
  });
  EXPECT_EQ(sum, 49L * 50 / 2);
}

TEST_P(ExtTest, MailboxWakesBlockedReceiver) {
  auto p = make_platform(GetParam(), 2);
  long got = 0;
  Scheduler::run(*p, {}, [&](Scheduler& s) {
    Mailbox<long> mb(s);
    CountdownLatch latch(s, 1);
    s.fork([&] {
      got = mb.recv();  // blocks: mailbox empty
      latch.count_down();
    });
    for (int i = 0; i < 20; i++) s.yield();
    mb.send(99);
    latch.await();
  });
  EXPECT_EQ(got, 99);
}

TEST_P(ExtTest, MailboxCarriesGcValues) {
  auto p = make_platform(GetParam(), 2);
  long field_sum = 0;
  Scheduler::run(*p, {}, [&](Scheduler& s) {
    auto& h = s.platform().heap();
    Mailbox<mp::gc::Value> mb(s);
    for (long i = 0; i < 40; i++) {
      mp::gc::Roots<1> r;
      r[0] = h.alloc_record({mp::gc::Value::from_int(i)});
      mb.send(r[0]);
    }
    h.collect_now();  // everything queued must survive via PayloadSlot roots
    for (int i = 0; i < 40; i++) {
      mp::gc::Roots<1> r;
      r[0] = mb.recv();
      field_sum += r[0].field(0).as_int();
    }
  });
  EXPECT_EQ(field_sum, 39L * 40 / 2);
}

// ---------- priority queue discipline ----------

TEST_P(ExtTest, PriorityQueueDirectOrdering) {
  auto p = make_platform(GetParam(), 1);
  p->run([&] {
    PriorityQueue q;
    q.init(*p);
    q.set_priority(*p, 11, 1);
    q.set_priority(*p, 12, 5);
    q.set_priority(*p, 13, 5);
    // Enqueue in id order; expect dequeue by (priority desc, FIFO within).
    for (int id : {10, 11, 12, 13}) {
      q.enq(*p, mp::threads::ThreadState{mp::cont::ContRef(), id});
    }
    std::vector<int> order;
    while (auto t = q.deq(*p)) order.push_back(t->id);
    EXPECT_EQ(order, (std::vector<int>{12, 13, 11, 10}));
    EXPECT_FALSE(q.deq(*p).has_value());
  });
}

TEST_P(ExtTest, PriorityQueueSchedulerSmoke) {
  auto p = make_platform(GetParam(), 2);
  std::atomic<int> done{0};
  SchedulerConfig cfg;
  cfg.queue = std::make_unique<PriorityQueue>();
  Scheduler::run(*p, std::move(cfg), [&](Scheduler& s) {
    CountdownLatch latch(s, 30);
    for (int i = 0; i < 30; i++) {
      s.fork([&] {
        s.yield();
        done.fetch_add(1);
        latch.count_down();
      });
    }
    latch.await();
  });
  EXPECT_EQ(done.load(), 30);
}

INSTANTIATE_TEST_SUITE_P(Backends, ExtTest,
                         ::testing::Values(Backend::kSim, Backend::kNative),
                         backend_name);

// ---------- thread cancellation ----------

TEST_P(ExtTest, CancelUnwindsASuspendedThread) {
  auto p = make_platform(GetParam(), 2);
  bool dtor_ran = false;
  bool resumed_user_code = false;
  Scheduler::run(*p, {}, [&](Scheduler& s) {
    mp::threads::ThreadState parked;
    bool have_parked = false;
    s.fork([&] {
      struct Raii {
        bool* flag;
        ~Raii() { *flag = true; }
      };
      Raii r{&dtor_ran};
      s.suspend([&](mp::threads::ThreadState t) {
        parked = std::move(t);
        have_parked = true;
      });
      resumed_user_code = true;  // must NOT run: we get cancelled instead
    });
    while (!have_parked) s.yield();
    EXPECT_FALSE(dtor_ran);
    s.cancel(std::move(parked));
    // Scheduler::run's drain waits for the cancelled thread to retire.
  });
  EXPECT_TRUE(dtor_ran) << "cancellation must unwind the thread's frames";
  EXPECT_FALSE(resumed_user_code);
}

TEST_P(ExtTest, CancelledThreadCanCatchAndFinish) {
  auto p = make_platform(GetParam(), 2);
  bool observed = false;
  Scheduler::run(*p, {}, [&](Scheduler& s) {
    mp::threads::ThreadState parked;
    bool have_parked = false;
    s.fork([&] {
      try {
        s.suspend([&](mp::threads::ThreadState t) {
          parked = std::move(t);
          have_parked = true;
        });
      } catch (const mp::cont::ThreadCancelled&) {
        observed = true;  // a thread may intercept its own cancellation
      }
    });
    while (!have_parked) s.yield();
    s.cancel(std::move(parked));
  });
  EXPECT_TRUE(observed);
}

TEST_P(ExtTest, RootThreadCancelPanics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        auto p = make_platform(GetParam(), 1);
        Scheduler::run(*p, {}, [&](Scheduler& s) {
          s.cancel(mp::threads::ThreadState{mp::cont::ContRef(), 0});
        });
      },
      "root thread cannot be cancelled");
}

// ---------- cache-fitting nursery model (sim only) ----------

TEST(CacheModel, TinyNurseryCutsAllocationBusTraffic) {
  auto run_with_nursery = [](std::size_t nursery) {
    mp::workloads::SimRunSpec spec;
    spec.workload = "seq";
    spec.machine = mp::sim::sequent_s81(8);
    spec.nursery_bytes = nursery;
    return mp::workloads::run_sim(spec);
  };
  const auto big = run_with_nursery(2u << 20);
  const auto tiny = run_with_nursery(32u << 10);  // fits the 64K cache
  EXPECT_TRUE(big.verified);
  EXPECT_TRUE(tiny.verified);
  EXPECT_LT(static_cast<double>(tiny.report.bus.bytes),
            0.6 * static_cast<double>(big.report.bus.bytes));
  EXPECT_GT(tiny.report.heap.minor_gcs, big.report.heap.minor_gcs);
}

}  // namespace
