// Tests for the latency-grade GC layers: card-marking remembered set vs the
// paper's store-list baseline (observable equivalence), per-proc promotion
// under real parallelism, the large-object space on all three platform
// backends, simulator bit-reproducibility with the new cost knobs, and the
// configuration death checks.

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cont/cont.h"
#include "gc/heap.h"
#include "gc/roots.h"
#include "gc/value.h"
#include "mp/native_platform.h"
#include "mp/platform.h"
#include "mp/sim_platform.h"
#include "mp/uni_platform.h"
#include "sim/machine.h"

namespace {

using mp::cont::callcc;
using mp::cont::Cont;
using mp::cont::Unit;
using mp::gc::GlobalRoot;
using mp::gc::Heap;
using mp::gc::HeapConfig;
using mp::gc::RemsetMode;
using mp::gc::Roots;
using mp::gc::Value;

// Single-proc harness (same shape as gc_test): a ManualProc execution
// context plus collector hooks that additionally record the new latency-GC
// accounting charges.
class LatencyHooks : public mp::gc::Rendezvous, public mp::gc::Accounting {
 public:
  void stop_world(mp::gc::WorkerFn) override {}
  void resume_world() override {}
  void rendezvous_and_work(const mp::gc::WorkerFn&) override {}
  int cur_proc() override { return 0; }
  int nproc() override { return 1; }
  mp::cont::ExecContext* proc_exec(int) override { return exec; }

  void charge_gc(std::uint64_t) override {}
  void charge_alloc(std::uint64_t) override {}
  void charge_card_scan(std::uint64_t cards, std::uint64_t words) override {
    cards_charged += cards;
    card_words_charged += words;
  }
  void charge_los_alloc(std::uint64_t pages) override {
    los_pages_charged += pages;
  }
  void charge_los_sweep(std::uint64_t pages) override {
    los_sweep_pages_charged += pages;
  }

  mp::cont::ExecContext* exec = nullptr;
  std::uint64_t cards_charged = 0;
  std::uint64_t card_words_charged = 0;
  std::uint64_t los_pages_charged = 0;
  std::uint64_t los_sweep_pages_charged = 0;
};

class GcLatencyTest : public ::testing::Test {
 protected:
  GcLatencyTest() {
    exec_.idle_ctx = &idle_ctx_;
    mp::cont::set_current_exec(&exec_);
    hooks_.exec = &exec_;
  }
  ~GcLatencyTest() override { mp::cont::set_current_exec(nullptr); }

  Heap& make_heap_cfg(const HeapConfig& cfg) {
    heap_ = std::make_unique<Heap>(cfg, hooks_, hooks_);
    return *heap_;
  }

  void on_proc(std::function<void()> f) {
    mp::cont::run_from_idle(mp::cont::make_entry(std::move(f)), exec_);
  }

  mp::cont::ExecContext exec_;
  mp::arch::Context idle_ctx_;
  LatencyHooks hooks_;
  std::unique_ptr<Heap> heap_;
};

// The store-heavy workload both barrier modes must agree on: an old-gen
// array table takes hot-skewed stores of freshly allocated records while
// churn forces minors at deterministic points.  Returns a checksum over the
// final table contents.  The table is sized below los_threshold_bytes so it
// lives in the old generation proper, where the two remsets differ.
std::uint64_t run_barrier_workload(Heap& h) {
  constexpr std::size_t kSlots = 256;
  GlobalRoot table(h, Value::nil());
  {
    Roots<1> r;
    r[0] = h.alloc_array(kSlots, Value::from_int(0));
    table.set(r[0]);
  }
  h.collect_now();  // promote the table so stores hit the old generation
  EXPECT_TRUE(h.in_old_space(table.get()));

  std::uint64_t rng = 0x9e3779b97f4a7c15ull;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int i = 0; i < 20000; i++) {
    // Hot-skewed slot choice: half the stores land in 16 slots.
    const std::uint64_t roll = next();
    const std::size_t slot =
        (roll & 1u) ? (roll >> 1) % 16 : (roll >> 1) % kSlots;
    Roots<1> r;
    r[0] = h.alloc_record({Value::from_int(i), Value::from_int(3 * i)});
    h.store(table.get(), slot, r[0]);
    if ((roll & 0xFu) == 0) {
      // Churn garbage so minors fire while the table carries young pointers.
      for (int n = 0; n < 32; n++) h.alloc_record({Value::from_int(n)});
    }
  }
  h.collect_now();

  std::uint64_t sum = 0;
  const Value t = table.get();
  for (std::size_t s = 0; s < kSlots; s++) {
    const Value v = t.field(s);
    if (!v.is_ptr()) continue;  // never-written slots still hold int 0
    sum = sum * 1099511628211ull +
          static_cast<std::uint64_t>(v.field(0).as_int() * 7 +
                                     v.field(1).as_int());
  }
  return sum;
}

TEST_F(GcLatencyTest, CardAndListBarriersProduceIdenticalHeaps) {
  std::uint64_t card_sum = 0;
  std::uint64_t list_sum = 0;
  std::uint64_t cards_dirtied = 0;
  std::uint64_t list_stores = 0;
  {
    Heap& h = make_heap_cfg(HeapConfig{}
                                .with_nursery_bytes(64 * 1024)
                                .with_old_bytes(4u << 20)
                                .with_remset(RemsetMode::kCard));
    on_proc([&] { card_sum = run_barrier_workload(h); });
    cards_dirtied = h.stats().cards_dirtied;
    EXPECT_GT(h.stats().cards_scanned, 0u);
    std::string err;
    EXPECT_TRUE(h.verify(&err)) << err;
  }
  {
    Heap& h = make_heap_cfg(HeapConfig{}
                                .with_nursery_bytes(64 * 1024)
                                .with_old_bytes(4u << 20)
                                .with_remset(RemsetMode::kList));
    on_proc([&] { list_sum = run_barrier_workload(h); });
    list_stores = h.stats().stores_recorded;
    EXPECT_EQ(h.stats().cards_dirtied, 0u);
    std::string err;
    EXPECT_TRUE(h.verify(&err)) << err;
  }
  EXPECT_EQ(card_sum, list_sum)
      << "card and store-list remsets disagree on the surviving heap";
  EXPECT_GT(cards_dirtied, 0u);
  EXPECT_GT(list_stores, 0u);
  // The whole point of the refactor: dirty cards are bounded by distinct
  // written locations, while the store list grows with every write.
  EXPECT_LT(cards_dirtied, list_stores / 10);
}

TEST_F(GcLatencyTest, CardScanCostIsChargedToAccounting) {
  Heap& h = make_heap_cfg(HeapConfig{}
                              .with_nursery_bytes(64 * 1024)
                              .with_old_bytes(4u << 20)
                              .with_remset(RemsetMode::kCard));
  on_proc([&] { run_barrier_workload(h); });
  EXPECT_GT(hooks_.cards_charged, 0u);
  // Each card spans many words, so the scanned-words charge dominates.
  EXPECT_GT(hooks_.card_words_charged, hooks_.cards_charged);
}

// The latent bug the LOS fixes: a large traced object is born outside the
// nursery with fields pointing INTO the nursery, and no store barrier ever
// sees those initializing writes.  LOS objects are born dirty, so the next
// minor scans them; the old bump-into-old-generation path lost the targets.
TEST_F(GcLatencyTest, LosYoungInitFieldsSurviveMinor) {
  Heap& h = make_heap_cfg(HeapConfig{}
                              .with_nursery_bytes(64 * 1024)
                              .with_old_bytes(1u << 20));
  on_proc([&] {
    Roots<2> r;
    r[0] = h.alloc_record({Value::from_int(31), Value::from_int(41)});
    ASSERT_TRUE(h.in_nursery(r[0]));
    // 8192 fields: well above the LOS threshold, initialized with a young
    // pointer in every slot.
    r[1] = h.alloc_array(8192, r[0]);
    ASSERT_TRUE(h.in_los(r[1]));
    // Drop the direct root so only the LOS object keeps the record alive.
    r[0] = Value::nil();
    h.collect_now();
    EXPECT_EQ(r[1].field(0).field(0).as_int(), 31);
    EXPECT_EQ(r[1].field(8191).field(1).as_int(), 41);
    std::string err;
    EXPECT_TRUE(h.verify(&err)) << err;
  });
}

TEST_F(GcLatencyTest, LosSweepFreesUnreachableRuns) {
  Heap& h = make_heap_cfg(HeapConfig{}
                              .with_nursery_bytes(64 * 1024)
                              .with_old_bytes(1u << 20)
                              .with_los_bytes(8u << 20));
  on_proc([&] {
    Roots<1> keep;
    keep[0] = h.alloc_array(4096, Value::from_int(7));
    for (int i = 0; i < 16; i++) {
      h.alloc_array(4096, Value::from_int(i));  // dropped immediately
    }
    const std::size_t used_before = h.los_used_bytes();
    ASSERT_GT(used_before, 16u * 4096u * 8u);
    h.collect_now(/*force_major=*/true);
    EXPECT_LT(h.los_used_bytes(), used_before / 4);
    EXPECT_GT(h.los_used_bytes(), 0u);  // the kept array survived
    EXPECT_EQ(keep[0].field(0).as_int(), 7);
    EXPECT_GT(hooks_.los_pages_charged, 0u);
    EXPECT_GT(hooks_.los_sweep_pages_charged, 0u);
  });
}

TEST_F(GcLatencyTest, LosPressureEscalatesToMajor) {
  Heap& h = make_heap_cfg(HeapConfig{}
                              .with_nursery_bytes(64 * 1024)
                              .with_old_bytes(1u << 20)
                              .with_los_bytes(1u << 20)
                              .with_los_pressure_fraction(0.5));
  on_proc([&] {
    // Fill more than half the tiny LOS arena with garbage, then trigger a
    // minor: the pressure check must escalate it to a major, which sweeps.
    for (int i = 0; i < 15; i++) h.alloc_array(4096, Value::from_int(i));
    ASSERT_GT(h.los_used_bytes(), (1u << 20) / 2);
    const auto majors_before = h.stats().major_gcs;
    h.collect_now(/*force_major=*/false);
    EXPECT_GT(h.stats().major_gcs, majors_before);
    EXPECT_LT(h.los_used_bytes(), (1u << 20) / 2);
  });
}

TEST_F(GcLatencyTest, PauseLogRecordsExactSamples) {
  Heap& h = make_heap_cfg(HeapConfig{}
                              .with_nursery_bytes(64 * 1024)
                              .with_old_bytes(1u << 20)
                              .with_record_pauses(true));
  on_proc([&] {
    for (int i = 0; i < 3; i++) h.collect_now();
    h.collect_now(/*force_major=*/true);
  });
  const auto log = h.pause_log();
  ASSERT_EQ(log.size(), 4u);
  // The first three collections were minor-only.
  for (std::size_t i = 0; i < 3; i++) EXPECT_EQ(log[i].major_us, 0u);
}

// ---------- the large-object space on all three backends ----------

enum class Backend { kSim, kNative, kUni };

std::string backend_name(const ::testing::TestParamInfo<Backend>& info) {
  switch (info.param) {
    case Backend::kSim: return "Sim";
    case Backend::kNative: return "Native";
    case Backend::kUni: return "Uni";
  }
  return "?";
}

class GcLatencyBackendTest : public ::testing::TestWithParam<Backend> {
 protected:
  std::unique_ptr<mp::Platform> make(int procs, const HeapConfig& heap) {
    switch (GetParam()) {
      case Backend::kSim: {
        mp::SimPlatformConfig cfg;
        cfg.machine = mp::sim::sequent_s81(procs);
        cfg.heap = heap;
        return std::make_unique<mp::SimPlatform>(cfg);
      }
      case Backend::kNative: {
        mp::NativePlatformConfig cfg;
        cfg.max_procs = procs;
        cfg.heap = heap;
        return std::make_unique<mp::NativePlatform>(cfg);
      }
      case Backend::kUni: {
        mp::UniPlatformConfig cfg;
        cfg.heap = heap;
        return std::make_unique<mp::UniPlatform>(cfg);
      }
    }
    __builtin_unreachable();
  }
};

TEST_P(GcLatencyBackendTest, LosAllocSurvivalAndSweep) {
  HeapConfig heap;
  heap.with_nursery_bytes(128 * 1024).with_old_bytes(2u << 20);
  auto p = make(GetParam() == Backend::kUni ? 1 : 2, heap);
  p->run([&] {
    Heap& h = p->heap();
    GlobalRoot keep(h, Value::nil());
    keep.set(h.alloc_array(5000, Value::from_int(123)));
    EXPECT_TRUE(h.in_los(keep.get()));
    for (int i = 0; i < 8; i++) h.alloc_array(5000, Value::from_int(i));
    const std::size_t before = h.los_used_bytes();
    h.collect_now(/*force_major=*/true);
    EXPECT_LT(h.los_used_bytes(), before);
    EXPECT_TRUE(h.in_los(keep.get()));
    EXPECT_EQ(keep.get().field(4999).as_int(), 123);
    std::string err;
    EXPECT_TRUE(h.verify(&err)) << err;
  });
}

INSTANTIATE_TEST_SUITE_P(AllBackends, GcLatencyBackendTest,
                         ::testing::Values(Backend::kSim, Backend::kNative,
                                           Backend::kUni),
                         backend_name);

// ---------- parallel promotion under real procs ----------

// Four native procs hammer disjoint slices of a shared old-generation table
// with young records while a small nursery forces frequent minors: the
// per-proc dirty-card buffers, the global flush lock, the card-aligned
// promotion blocks and the crossing-map writes all race for real here (CI
// additionally runs this binary under TSan).
TEST(GcLatencyParallel, PromotionAndCardBuffersRaceUnderNativeProcs) {
  constexpr int kProcs = 4;
  constexpr std::size_t kSlotsPerProc = 64;  // 4*64 slots: old gen, not LOS
  constexpr int kOpsPerProc = 4000;
  mp::NativePlatformConfig cfg;
  cfg.max_procs = kProcs;
  cfg.heap.with_nursery_bytes(256 * 1024).with_old_bytes(16u << 20);
  mp::NativePlatform p(cfg);

  std::atomic<int> workers_done{0};
  std::uint64_t op_sum = 0;
  p.run([&] {
    Heap& h = p.heap();
    GlobalRoot table(h, Value::nil());
    {
      Roots<1> r;
      r[0] = h.alloc_array(kProcs * kSlotsPerProc, Value::from_int(0));
      table.set(r[0]);
    }
    h.collect_now();
    ASSERT_TRUE(h.in_old_space(table.get()));

    auto worker = [&](int lane) {
      std::uint64_t rng = 0x1234567 + static_cast<std::uint64_t>(lane);
      for (int i = 0; i < kOpsPerProc; i++) {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        const std::size_t slot =
            static_cast<std::size_t>(lane) * kSlotsPerProc +
            (rng >> 33) % kSlotsPerProc;
        Roots<1> r;
        r[0] = h.alloc_record({Value::from_int(lane), Value::from_int(i)});
        h.store(table.get(), slot, r[0]);
        if ((rng & 0x7u) == 0) {
          for (int n = 0; n < 16; n++) h.alloc_record({Value::from_int(n)});
        }
      }
      workers_done.fetch_add(1);
    };

    for (int lane = 1; lane < kProcs; lane++) {
      callcc<Unit>([&, lane](Cont<Unit> parent) -> Unit {
        if (!p.try_acquire_proc(std::move(parent), 0)) {
          ADD_FAILURE() << "proc for lane " << lane << " unavailable";
        }
        // This body is now lane's worker on the original proc; the main
        // flow continues on the freshly acquired proc.
        worker(lane);
        p.release_proc();
      });
    }
    worker(0);
    while (workers_done.load() < kProcs) p.work(50);

    h.collect_now(/*force_major=*/true);
    std::string err;
    EXPECT_TRUE(h.verify(&err)) << err;
    // Every written slot holds a record stamped with its lane.
    const Value t = table.get();
    for (int lane = 0; lane < kProcs; lane++) {
      for (std::size_t s = 0; s < kSlotsPerProc; s++) {
        const Value v =
            t.field(static_cast<std::size_t>(lane) * kSlotsPerProc + s);
        if (!v.is_ptr()) continue;
        EXPECT_EQ(v.field(0).as_int(), lane);
        op_sum += static_cast<std::uint64_t>(v.field(1).as_int());
      }
    }
  });
  EXPECT_EQ(workers_done.load(), kProcs);
  EXPECT_GT(op_sum, 0u);
}

// ---------- simulator determinism with the new cost knobs ----------

TEST(GcLatencySim, TracesAreBitReproducibleWithCardAndLosCosts) {
  auto run_once = [] {
    mp::SimPlatformConfig cfg;
    cfg.machine = mp::sim::sequent_s81(3);
    cfg.heap.with_nursery_bytes(128 * 1024).with_old_bytes(2u << 20);
    mp::SimPlatform p(cfg);
    double end_us = 0;
    std::uint64_t checksum = 0;
    p.run([&] {
      Heap& h = p.heap();
      GlobalRoot table(h, Value::nil());
      {
        Roots<1> r;
        r[0] = h.alloc_array(256, Value::from_int(0));
        table.set(r[0]);
      }
      h.collect_now();
      std::uint64_t rng = 42;
      for (int i = 0; i < 3000; i++) {
        rng = rng * 2862933555777941757ull + 3037000493ull;
        Roots<1> r;
        r[0] = h.alloc_record({Value::from_int(i)});
        h.store(table.get(), (rng >> 32) % 256, r[0]);
        if (i % 500 == 250) h.alloc_array(2048, Value::from_int(i));  // LOS
      }
      h.collect_now(/*force_major=*/true);
      for (std::size_t s = 0; s < 256; s++) {
        const Value v = table.get().field(s);
        checksum =
            checksum * 31 +
            (v.is_ptr() ? static_cast<std::uint64_t>(v.field(0).as_int())
                        : 0);
      }
      end_us = p.now_us();
    });
    return std::pair<double, std::uint64_t>(end_us, checksum);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first)
      << "virtual time diverged: card/LOS cost charges are nondeterministic";
  EXPECT_EQ(a.second, b.second);
}

// ---------- configuration death checks ----------

using GcLatencyDeathTest = GcLatencyTest;

TEST_F(GcLatencyDeathTest, NonPowerOfTwoCardBytesPanics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(HeapConfig{}.with_card_bytes(768).validate(), "card_bytes");
}

TEST_F(GcLatencyDeathTest, TinyCardBytesPanics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(HeapConfig{}.with_card_bytes(32).validate(), "card_bytes");
}

TEST_F(GcLatencyDeathTest, LosThresholdBelowCardSizePanics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(HeapConfig{}
                   .with_card_bytes(1024)
                   .with_los_threshold_bytes(512)
                   .validate(),
               "los_threshold_bytes");
}

TEST_F(GcLatencyDeathTest, CardLargerThanParBlockPanics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(HeapConfig{}
                   .with_par_block_words(64)
                   .with_card_bytes(1024)
                   .validate(),
               "par_block_words");
}

TEST_F(GcLatencyDeathTest, UnalignedLosArenaPanics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(HeapConfig{}.with_los_bytes(4096 + 512).validate(),
               "los_bytes");
}

}  // namespace
