// Unit tests for the runtime metrics registry (src/metrics): per-proc slot
// merging under concurrent increments, histogram bucket boundaries, and the
// JSON snapshot round-trip.

#include "metrics/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace mp::metrics {
namespace {

TEST(Buckets, ZeroGetsItsOwnBucket) { EXPECT_EQ(bucket_of(0), 0u); }

TEST(Buckets, PowerOfTwoBoundaries) {
  // Bucket i >= 1 holds [2^(i-1), 2^i).
  EXPECT_EQ(bucket_of(1), 1u);
  EXPECT_EQ(bucket_of(2), 2u);
  EXPECT_EQ(bucket_of(3), 2u);
  EXPECT_EQ(bucket_of(4), 3u);
  EXPECT_EQ(bucket_of(7), 3u);
  EXPECT_EQ(bucket_of(8), 4u);
  for (std::size_t i = 1; i < kNumBuckets - 1; i++) {
    const std::uint64_t lo = 1ull << (i - 1);
    const std::uint64_t hi = (1ull << i) - 1;
    EXPECT_EQ(bucket_of(lo), i) << "lower edge of bucket " << i;
    EXPECT_EQ(bucket_of(hi), i) << "upper edge of bucket " << i;
  }
}

TEST(Buckets, HugeValuesClampToLastBucket) {
  EXPECT_EQ(bucket_of(~0ull), kNumBuckets - 1);
  EXPECT_EQ(bucket_of(1ull << 62), kNumBuckets - 1);
}

TEST(Registry, CountsAndRecords) {
  Registry r;
  r.count(Counter::kLockAcquires);
  r.count(Counter::kLockAcquires, 4);
  r.record(Histo::kLockSpinIters, 0);
  r.record(Histo::kLockSpinIters, 5);
  r.record(Histo::kLockSpinIters, 5);

  const Snapshot s = r.snapshot();
  EXPECT_EQ(s.counter(Counter::kLockAcquires), 5u);
  EXPECT_EQ(s.counter(Counter::kGcMinor), 0u);
  const HistoSnapshot& h = s.histo(Histo::kLockSpinIters);
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.sum, 10u);
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[bucket_of(5)], 2u);
}

TEST(Registry, DisabledDropsEverything) {
  Registry r;
  r.set_enabled(false);
  r.count(Counter::kLockAcquires, 100);
  r.record(Histo::kGcPauseUs, 42);
  EXPECT_EQ(r.snapshot(), Snapshot{});
  r.set_enabled(true);
  r.count(Counter::kLockAcquires);
  EXPECT_EQ(r.snapshot().counter(Counter::kLockAcquires), 1u);
}

// The always-on tier backs Heap::stats(): structural GC counters must keep
// counting when the observability tier is disabled (MPNJ_METRICS=0), or the
// heap would lose track of its own collections.
TEST(Registry, CountAlwaysBypassesDisable) {
  Registry r;
  r.set_enabled(false);
  r.count(Counter::kGcMinor, 5);         // observability tier: dropped
  r.count_always(Counter::kGcMinor, 2);  // structural tier: kept
  const Snapshot s = r.snapshot();
  EXPECT_EQ(s.counter(Counter::kGcMinor), 2u);
  r.set_enabled(true);
  r.count_always(Counter::kGcMinor);
  EXPECT_EQ(r.snapshot().counter(Counter::kGcMinor), 3u);
}

TEST(Registry, ResetClears) {
  Registry r;
  r.count(Counter::kSchedForks, 7);
  r.record(Histo::kRunQueueDepth, 3);
  r.reset();
  EXPECT_EQ(r.snapshot(), Snapshot{});
}

// The merge property the per-proc design rests on: increments from many
// threads, each bound to a different slot (plus some unbound), sum exactly.
TEST(Registry, ConcurrentIncrementsMergeExactly) {
  Registry r;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&r, t] {
      if (t % 2 == 0) Registry::bind_slot(t);  // odd threads stay lazy-bound
      for (std::uint64_t i = 0; i < kPerThread; i++) {
        r.count(Counter::kSchedDispatches);
        r.record(Histo::kRunQueueDepth, i % 17);
      }
      Registry::unbind_slot();
    });
  }
  for (auto& th : threads) th.join();

  const Snapshot s = r.snapshot();
  EXPECT_EQ(s.counter(Counter::kSchedDispatches), kThreads * kPerThread);
  const HistoSnapshot& h = s.histo(Histo::kRunQueueDepth);
  EXPECT_EQ(h.count, kThreads * kPerThread);
  std::uint64_t bucket_total = 0;
  for (const auto b : h.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, h.count);
}

TEST(Registry, BindSlotWrapsModuloMaxSlots) {
  Registry r;
  Registry::bind_slot(static_cast<int>(Registry::kMaxSlots) + 3);
  r.count(Counter::kCmlSends);
  Registry::unbind_slot();
  EXPECT_EQ(r.snapshot().counter(Counter::kCmlSends), 1u);
}

TEST(Json, RoundTripPreservesEverything) {
  Registry r;
  r.count(Counter::kLockAcquires, 3);
  r.count(Counter::kGcPauseUsTotal, 12345);
  r.count(Counter::kTraceDropped, 1);
  r.record(Histo::kGcPauseUs, 0);
  r.record(Histo::kGcPauseUs, 250);
  r.record(Histo::kLockSpinIters, 9);
  const Snapshot s = r.snapshot();

  const std::string text = s.to_json();
  Snapshot back;
  ASSERT_TRUE(Snapshot::from_json(text, &back)) << text;
  EXPECT_EQ(back, s);
}

TEST(Json, EmptySnapshotRoundTrips) {
  const Snapshot s;
  Snapshot back;
  ASSERT_TRUE(Snapshot::from_json(s.to_json(), &back));
  EXPECT_EQ(back, s);
}

TEST(Json, MalformedInputIsRejected) {
  Snapshot out;
  EXPECT_FALSE(Snapshot::from_json("", &out));
  EXPECT_FALSE(Snapshot::from_json("{", &out));
  EXPECT_FALSE(Snapshot::from_json("[]", &out));
  EXPECT_FALSE(Snapshot::from_json("{\"counters\":}", &out));
  EXPECT_FALSE(Snapshot::from_json("{\"counters\":{\"x\":}}", &out));
  EXPECT_FALSE(Snapshot::from_json("{\"counters\":{}} trailing", &out));
}

TEST(Json, UnknownNamesAreIgnored) {
  Snapshot out;
  ASSERT_TRUE(Snapshot::from_json(
      "{\"counters\":{\"not_a_counter\":7,\"lock_acquires\":2},"
      "\"histograms\":{}}",
      &out));
  EXPECT_EQ(out.counter(Counter::kLockAcquires), 2u);
}

TEST(Json, NamesAreUniqueWithinEachSection) {
  // The JSON keys are the enum names; a duplicate within a section would
  // merge silently on parse.  (Counters and histograms are separate JSON
  // objects, so a name may appear in both — lock_spin_iters does.)
  const auto check = [](const std::vector<std::string>& names) {
    for (std::size_t i = 0; i < names.size(); i++) {
      EXPECT_FALSE(names[i].empty());
      for (std::size_t j = i + 1; j < names.size(); j++) {
        EXPECT_NE(names[i], names[j]) << "duplicate metric name";
      }
    }
  };
  std::vector<std::string> counters;
  for (std::size_t i = 0; i < kNumCounters; i++) {
    counters.emplace_back(counter_name(static_cast<Counter>(i)));
  }
  std::vector<std::string> histos;
  for (std::size_t i = 0; i < kNumHistos; i++) {
    histos.emplace_back(histo_name(static_cast<Histo>(i)));
  }
  check(counters);
  check(histos);
}

}  // namespace
}  // namespace mp::metrics
