// Property/fuzz tests: randomized object graphs against a shadow model
// across many collections, and randomized channel traffic against an
// exactly-once ledger — each swept over seeds with parameterized gtest.

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <variant>
#include <vector>

#include "cml/cml.h"
#include "gc/heap.h"
#include "mp/sim_platform.h"
#include "threads/scheduler.h"
#include "threads/sync.h"

namespace {

using mp::arch::Rng;
using mp::gc::GlobalRoot;
using mp::gc::Value;
using mp::threads::CountdownLatch;
using mp::threads::Scheduler;

// Seed-sweep control.  The default lists are fixed so CI runs are stable
// and failures name a reproducible test case; MPNJ_FUZZ_SEED=<base> re-aims
// the whole sweep at a fresh seed region (base, base+1, ...) and
// MPNJ_FUZZ_ITERS=<n> widens or narrows it — e.g. a nightly job can run
// MPNJ_FUZZ_SEED=$RANDOM MPNJ_FUZZ_ITERS=64 without recompiling.
std::vector<std::uint64_t> sweep_seeds(
    std::initializer_list<std::uint64_t> dflt) {
  const char* seed_env = std::getenv("MPNJ_FUZZ_SEED");
  const char* iters_env = std::getenv("MPNJ_FUZZ_ITERS");
  std::vector<std::uint64_t> seeds(dflt);
  if (seed_env == nullptr && iters_env == nullptr) return seeds;
  const std::uint64_t base =
      seed_env != nullptr ? std::strtoull(seed_env, nullptr, 0) : 1;
  const std::uint64_t n =
      iters_env != nullptr ? std::strtoull(iters_env, nullptr, 0)
                           : seeds.size();
  seeds.clear();
  for (std::uint64_t i = 0; i < n; i++) seeds.push_back(base + i);
  return seeds;
}

// ---------- GC graph fuzz ----------
//
// Builds a random object graph (records, mutable arrays, refs, ints,
// cycles) while randomly dropping roots and forcing minor/major
// collections; a shadow model in plain C++ is compared against the real
// heap after every collection.  Every node carries a unique id in field 0.

struct ShadowNode {
  bool mutable_obj = false;
  // children[i]: either an int payload (long) or a node id (int).
  std::vector<std::variant<long, int>> children;
};

class GcGraphFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GcGraphFuzz, RandomGraphMatchesShadowAcrossCollections) {
  mp::SimPlatformConfig cfg;
  cfg.machine = mp::sim::sequent_s81(1);
  cfg.heap.nursery_bytes = 64 * 1024;  // frequent collections
  cfg.heap.old_bytes = 16u << 20;
  mp::SimPlatform platform(cfg);

  platform.run([&] {
    auto& h = platform.heap();
    Rng rng(GetParam());

    std::map<int, ShadowNode> shadow;
    std::vector<std::pair<GlobalRoot, int>> roots;  // (handle, node id)
    int next_id = 1;

    auto sample_child = [&]() -> std::variant<long, int> {
      if (roots.empty() || rng.below(2) == 0) {
        return static_cast<long>(rng.below(1000));
      }
      return roots[rng.below(roots.size())].second;
    };
    auto value_of = [&](const std::variant<long, int>& c) -> Value {
      if (std::holds_alternative<long>(c)) {
        return Value::from_int(std::get<long>(c));
      }
      for (auto& [root, id] : roots) {
        if (id == std::get<int>(c)) return root.get();
      }
      ADD_FAILURE() << "child id not found among roots";
      return Value::nil();
    };

    // Structural comparison of the real heap against the shadow model.
    std::function<void(Value, int, std::set<int>&)> check =
        [&](Value v, int id, std::set<int>& visited) {
          ASSERT_TRUE(v.is_ptr());
          ASSERT_EQ(v.field(0).as_int(), id);
          if (!visited.insert(id).second) return;  // cycle: already checked
          const ShadowNode& node = shadow.at(id);
          ASSERT_EQ(v.length(), node.children.size() + 1);
          for (std::size_t i = 0; i < node.children.size(); i++) {
            const Value child = v.field(i + 1);
            if (std::holds_alternative<long>(node.children[i])) {
              ASSERT_TRUE(child.is_int());
              ASSERT_EQ(child.as_int(), std::get<long>(node.children[i]));
            } else {
              check(child, std::get<int>(node.children[i]), visited);
            }
          }
        };
    auto check_all = [&] {
      std::set<int> visited;
      for (auto& [root, id] : roots) check(root.get(), id, visited);
    };

    constexpr int kOps = 2500;
    constexpr std::size_t kMaxRoots = 24;
    for (int op = 0; op < kOps; op++) {
      switch (rng.below(10)) {
        case 0:
        case 1:
        case 2:
        case 3: {  // allocate an immutable record node
          const int id = next_id++;
          ShadowNode node;
          const std::size_t n = rng.below(4);
          std::vector<Value> fields = {Value::from_int(id)};
          for (std::size_t i = 0; i < n; i++) {
            node.children.push_back(sample_child());
            fields.push_back(value_of(node.children.back()));
          }
          GlobalRoot root(h, h.alloc_record(fields));
          shadow[id] = std::move(node);
          if (roots.size() < kMaxRoots) {
            roots.emplace_back(std::move(root), id);
          } else {
            const std::size_t victim = rng.below(roots.size());
            roots[victim] = {std::move(root), id};
          }
          break;
        }
        case 4:
        case 5: {  // allocate a mutable array node
          const int id = next_id++;
          ShadowNode node;
          node.mutable_obj = true;
          const std::size_t n = 1 + rng.below(6);
          GlobalRoot root(h, h.alloc_array(n + 1, Value::from_int(0)));
          h.store(root.get(), 0, Value::from_int(id));
          for (std::size_t i = 0; i < n; i++) {
            node.children.push_back(static_cast<long>(0));
            h.store(root.get(), i + 1, Value::from_int(0));
          }
          shadow[id] = std::move(node);
          if (roots.size() < kMaxRoots) {
            roots.emplace_back(std::move(root), id);
          } else {
            roots[rng.below(roots.size())] = {std::move(root), id};
          }
          break;
        }
        case 6: {  // mutate a random array node (store-list barrier path)
          std::vector<std::size_t> arrays;
          for (std::size_t i = 0; i < roots.size(); i++) {
            if (shadow.at(roots[i].second).mutable_obj) arrays.push_back(i);
          }
          if (arrays.empty()) break;
          const std::size_t r = arrays[rng.below(arrays.size())];
          ShadowNode& node = shadow.at(roots[r].second);
          const std::size_t slot = rng.below(node.children.size());
          const auto child = sample_child();
          node.children[slot] = child;
          h.store(roots[r].first.get(), slot + 1, value_of(child));
          break;
        }
        case 7: {  // drop a root (its subtree may become garbage)
          if (roots.size() > 2) {
            roots.erase(roots.begin() +
                        static_cast<long>(rng.below(roots.size())));
          }
          break;
        }
        case 8: {  // minor collection + full check
          h.collect_now(false);
          check_all();
          break;
        }
        case 9: {  // occasionally a major collection
          if (rng.below(4) == 0) {
            h.collect_now(true);
            check_all();
          }
          break;
        }
      }
    }
    h.collect_now(true);
    check_all();
    EXPECT_GT(h.stats().minor_gcs, 5u);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, GcGraphFuzz,
    ::testing::ValuesIn(sweep_seeds({1u, 2u, 3u, 17u, 99u, 12345u})));

// ---------- channel ledger fuzz ----------
//
// Producers send tagged values on randomly chosen channels; consumers
// drain them with select_receive.  Every value must be delivered exactly
// once, for any machine size and seed.

struct ChanFuzzCase {
  std::uint64_t seed;
  int procs;
};

class ChannelFuzz : public ::testing::TestWithParam<ChanFuzzCase> {};

TEST_P(ChannelFuzz, ExactlyOnceDeliveryUnderRandomTraffic) {
  const auto [seed, procs] = GetParam();
  mp::SimPlatformConfig cfg;
  cfg.machine = mp::sim::sequent_s81(procs);
  cfg.machine.seed = seed;
  mp::SimPlatform platform(cfg);

  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 32;
  constexpr int kChannels = 3;
  static_assert(kProducers * kPerProducer % kConsumers == 0);

  std::multiset<int> received;
  Scheduler::run(platform, {}, [&](Scheduler& s) {
    std::vector<std::unique_ptr<mp::cml::Channel<int>>> chans;
    std::vector<mp::cml::Channel<int>*> ptrs;
    for (int i = 0; i < kChannels; i++) {
      chans.push_back(std::make_unique<mp::cml::Channel<int>>(s));
      ptrs.push_back(chans.back().get());
    }
    mp::threads::Mutex ledger_lock(s);
    CountdownLatch latch(s, kProducers + kConsumers);
    for (int prod = 0; prod < kProducers; prod++) {
      s.fork([&, prod] {
        for (int i = 0; i < kPerProducer; i++) {
          const int tag = prod * 1000 + i;
          const auto ch = s.platform().rng().below(kChannels);
          if (s.platform().rng().below(3) == 0) {
            ptrs[ch]->send_event(tag).sync(s);  // event form
          } else {
            ptrs[ch]->send(tag);
          }
          if (i % 7 == 0) s.yield();
        }
        latch.count_down();
      });
    }
    for (int cons = 0; cons < kConsumers; cons++) {
      s.fork([&] {
        for (int i = 0; i < kProducers * kPerProducer / kConsumers; i++) {
          const int v = mp::cml::select_receive<int>(ptrs);
          ledger_lock.lock();
          received.insert(v);
          ledger_lock.unlock();
        }
        latch.count_down();
      });
    }
    latch.await();
  });

  ASSERT_EQ(received.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
  for (int prod = 0; prod < kProducers; prod++) {
    for (int i = 0; i < kPerProducer; i++) {
      EXPECT_EQ(received.count(prod * 1000 + i), 1u)
          << "value " << prod * 1000 + i << " lost or duplicated";
    }
  }
}

// Default sweep: the historical (seed, procs) pairs.  Under
// MPNJ_FUZZ_SEED / MPNJ_FUZZ_ITERS the seeds come from sweep_seeds and the
// machine sizes cycle through the same proc counts.
std::vector<ChanFuzzCase> channel_sweep() {
  const int procs_cycle[] = {2, 4, 8, 16, 3, 6};
  const std::vector<std::uint64_t> seeds =
      sweep_seeds({1u, 2u, 3u, 4u, 5u, 99u});
  std::vector<ChanFuzzCase> cases;
  for (std::size_t i = 0; i < seeds.size(); i++) {
    cases.push_back(ChanFuzzCase{seeds[i], procs_cycle[i % 6]});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ChannelFuzz, ::testing::ValuesIn(channel_sweep()),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) + "procs" +
             std::to_string(info.param.procs);
    });

}  // namespace
