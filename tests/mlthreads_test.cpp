// Tests for ML Threads (the Modula-3 style package, paper section 1):
// typed fork/join handles, multiple joiners, and alerts — plus the
// scheduling-event tracer.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <set>

#include "mp/native_platform.h"
#include "mp/sim_platform.h"
#include "threads/mlthreads.h"
#include "threads/trace.h"

namespace {

using mp::cont::Unit;
using mp::threads::alert_pause;
using mp::threads::Alerted;
using mp::threads::CountdownLatch;
using mp::threads::fork_thread;
using mp::threads::Scheduler;
using mp::threads::SchedulerConfig;
using mp::threads::Thread;
using mp::threads::TraceKind;
using mp::threads::Tracer;

enum class Backend { kSim, kNative };

std::string backend_name(const ::testing::TestParamInfo<Backend>& info) {
  return info.param == Backend::kSim ? "Sim" : "Native";
}

std::unique_ptr<mp::Platform> make_platform(Backend b, int procs) {
  if (b == Backend::kSim) {
    mp::SimPlatformConfig cfg;
    cfg.machine = mp::sim::sequent_s81(procs);
    return std::make_unique<mp::SimPlatform>(cfg);
  }
  mp::NativePlatformConfig cfg;
  cfg.max_procs = procs;
  return std::make_unique<mp::NativePlatform>(cfg);
}

class MlThreadsTest : public ::testing::TestWithParam<Backend> {};

TEST_P(MlThreadsTest, ForkJoinReturnsValue) {
  auto p = make_platform(GetParam(), 2);
  long got = 0;
  Scheduler::run(*p, {}, [&](Scheduler& s) {
    Thread<long> t = fork_thread<long>(s, [] { return 41L + 1; });
    got = t.join();
  });
  EXPECT_EQ(got, 42);
}

TEST_P(MlThreadsTest, JoinAfterThreadAlreadyFinished) {
  auto p = make_platform(GetParam(), 2);
  long got = 0;
  Scheduler::run(*p, {}, [&](Scheduler& s) {
    Thread<long> t = fork_thread<long>(s, [] { return 7L; });
    while (!t.finished()) s.yield();
    got = t.join();  // must not block
  });
  EXPECT_EQ(got, 7);
}

TEST_P(MlThreadsTest, MultipleJoinersAllGetTheResult) {
  auto p = make_platform(GetParam(), 3);
  std::atomic<long> sum{0};
  Scheduler::run(*p, {}, [&](Scheduler& s) {
    Thread<long> worker = fork_thread<long>(s, [&] {
      for (int i = 0; i < 10; i++) s.yield();
      return 5L;
    });
    CountdownLatch latch(s, 4);
    for (int i = 0; i < 4; i++) {
      s.fork([&] {
        sum.fetch_add(worker.join());
        latch.count_down();
      });
    }
    latch.await();
  });
  EXPECT_EQ(sum.load(), 20);
}

TEST_P(MlThreadsTest, ParallelFibonacciViaJoin) {
  auto p = make_platform(GetParam(), 4);
  long got = 0;
  Scheduler::run(*p, {}, [&](Scheduler& s) {
    std::function<long(int)> fib = [&](int n) -> long {
      if (n < 2) return n;
      if (n < 8) return fib(n - 1) + fib(n - 2);  // sequential cutoff
      Thread<long> left = fork_thread<long>(s, [&, n] { return fib(n - 1); });
      const long right = fib(n - 2);
      return left.join() + right;
    };
    got = fib(15);
  });
  EXPECT_EQ(got, 610);
}

TEST_P(MlThreadsTest, AlertInterruptsAPollingThread) {
  auto p = make_platform(GetParam(), 2);
  bool join_raised = false;
  long iterations = 0;
  Scheduler::run(*p, {}, [&](Scheduler& s) {
    Thread<Unit> victim = fork_thread<Unit>(s, [&] {
      for (;;) {  // loops forever unless alerted
        iterations++;
        s.platform().work(20);
        alert_pause(s);
      }
      return Unit{};
    });
    for (int i = 0; i < 25; i++) s.yield();
    victim.alert();
    try {
      victim.join();
    } catch (const Alerted&) {
      join_raised = true;
    }
  });
  EXPECT_TRUE(join_raised);
  EXPECT_GT(iterations, 0);
}

TEST_P(MlThreadsTest, UnalertedThreadJoinsNormally) {
  auto p = make_platform(GetParam(), 2);
  long got = -1;
  Scheduler::run(*p, {}, [&](Scheduler& s) {
    Thread<long> t = fork_thread<long>(s, [&] {
      alert_pause(s);  // polls, but nobody alerts
      alert_pause(s);
      return 3L;
    });
    got = t.join();
  });
  EXPECT_EQ(got, 3);
}

TEST_P(MlThreadsTest, AlertCaughtByTargetIsConsumed) {
  auto p = make_platform(GetParam(), 2);
  long got = 0;
  Scheduler::run(*p, {}, [&](Scheduler& s) {
    Thread<long> t = fork_thread<long>(s, [&] {
      // The target may catch Alerted itself and finish normally.
      try {
        for (;;) alert_pause(s);
      } catch (const Alerted&) {
        return 99L;
      }
      return 0L;  // unreachable
    });
    for (int i = 0; i < 10; i++) s.yield();
    t.alert();
    got = t.join();
  });
  EXPECT_EQ(got, 99);
}

INSTANTIATE_TEST_SUITE_P(Backends, MlThreadsTest,
                         ::testing::Values(Backend::kSim, Backend::kNative),
                         backend_name);

// ---------- tracer ----------

TEST(Trace, RecordsForksYieldsAndExits) {
  mp::SimPlatformConfig cfg;
  cfg.machine = mp::sim::sequent_s81(2);
  mp::SimPlatform p(cfg);
  Tracer tracer;
  SchedulerConfig sc;
  sc.tracer = &tracer;
  Scheduler::run(p, std::move(sc), [&](Scheduler& s) {
    CountdownLatch latch(s, 3);
    for (int i = 0; i < 3; i++) {
      s.fork([&] {
        s.yield();
        latch.count_down();
      });
    }
    latch.await();
  });
  EXPECT_EQ(tracer.count(TraceKind::kFork), 3u);
  EXPECT_EQ(tracer.count(TraceKind::kExit), 3u);
  EXPECT_GE(tracer.count(TraceKind::kYield), 3u);
  EXPECT_GE(tracer.count(TraceKind::kDispatch), 3u);
  // Fork events carry distinct child ids.
  std::set<int> children;
  for (const auto& e : tracer.snapshot()) {
    if (e.kind == TraceKind::kFork) children.insert(e.arg);
  }
  EXPECT_EQ(children.size(), 3u);
}

TEST(Trace, DeterministicReplayOnSimulator) {
  auto run_once = [] {
    mp::SimPlatformConfig cfg;
    cfg.machine = mp::sim::sequent_s81(4);
    mp::SimPlatform p(cfg);
    Tracer tracer;
    SchedulerConfig sc;
    sc.tracer = &tracer;
    sc.preempt_interval_us = 2000;
    Scheduler::run(p, std::move(sc), [&](Scheduler& s) {
      CountdownLatch latch(s, 10);
      for (int i = 0; i < 10; i++) {
        s.fork([&, i] {
          s.platform().work(100.0 * (i + 1));
          s.yield();
          s.platform().work(3000);
          latch.count_down();
        });
      }
      latch.await();
    });
    return tracer.snapshot();
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i++) {
    EXPECT_TRUE(a[i] == b[i]) << "trace diverged at event " << i;
  }
}

TEST(Trace, PreemptEventsAppearForComputeBoundThreads) {
  mp::SimPlatformConfig cfg;
  cfg.machine = mp::sim::sequent_s81(1);
  mp::SimPlatform p(cfg);
  Tracer tracer;
  SchedulerConfig sc;
  sc.tracer = &tracer;
  sc.preempt_interval_us = 500;
  Scheduler::run(p, std::move(sc), [&](Scheduler& s) {
    CountdownLatch latch(s, 2);
    for (int i = 0; i < 2; i++) {
      s.fork([&] {
        for (int n = 0; n < 100; n++) s.platform().work(100);
        latch.count_down();
      });
    }
    latch.await();
  });
  EXPECT_GT(tracer.count(TraceKind::kPreempt), 3u);
}

TEST(Trace, FormatIsHumanReadable) {
  mp::SimPlatformConfig cfg;
  cfg.machine = mp::sim::sequent_s81(1);
  mp::SimPlatform p(cfg);
  Tracer tracer;
  SchedulerConfig sc;
  sc.tracer = &tracer;
  Scheduler::run(p, std::move(sc), [&](Scheduler& s) {
    s.fork([&] {});
    s.yield();
  });
  const std::string text = tracer.format();
  EXPECT_NE(text.find("fork"), std::string::npos);
  EXPECT_NE(text.find("yield"), std::string::npos);
  EXPECT_NE(text.find("proc"), std::string::npos);
}

}  // namespace
