// Tests for the src/io subsystem: the EINTR/errno syscall discipline, the
// virtual-pipe and TCP streams, the reactor's proc-parking protocol (a proc
// never blocks in the kernel while runnable threads exist), CML select over
// channel + timer + stream readiness, GC while parked, and the net_echo
// workload acceptance runs.

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "arch/fiber_san.h"
#include "arch/sysio.h"
#include "cml/cml.h"
#include "gc/heap.h"
#include "io/io_event.h"
#include "io/reactor.h"
#include "io/stream.h"
#include "metrics/metrics.h"
#include "mp/native_platform.h"
#include "mp/sim_platform.h"
#include "mp/uni_platform.h"
#include "threads/scheduler.h"
#include "workloads/workload.h"

namespace {

using mp::cont::Unit;
using mp::cml::Channel;
using mp::cml::Event;
using mp::io::Duplex;
using mp::io::EofError;
using mp::io::Interest;
using mp::io::Listener;
using mp::io::Reactor;
using mp::io::ReactorConfig;
using mp::io::Stream;
using mp::threads::CountdownLatch;
using mp::threads::Scheduler;
using mp::threads::SchedulerConfig;

enum class Backend { kSim, kNative, kUni };

// Keeps compute loops from being optimized away.
std::atomic<long> benchmark_sink{0};

std::string backend_name(const ::testing::TestParamInfo<Backend>& info) {
  switch (info.param) {
    case Backend::kSim:
      return "Sim";
    case Backend::kNative:
      return "Native";
    default:
      return "Uni";
  }
}

std::unique_ptr<mp::Platform> make_platform(Backend b, int procs) {
  if (b == Backend::kSim) {
    mp::SimPlatformConfig cfg;
    cfg.machine = mp::sim::sequent_s81(procs);
    return std::make_unique<mp::SimPlatform>(cfg);
  }
  if (b == Backend::kNative) {
    mp::NativePlatformConfig cfg;
    cfg.max_procs = procs;
    return std::make_unique<mp::NativePlatform>(cfg);
  }
  return std::make_unique<mp::UniPlatform>();
}

void run_threads(mp::Platform& p, const std::function<void(Scheduler&)>& fn) {
  Scheduler::run(p, SchedulerConfig{}, fn);
}

// ---------- arch/sysio: EINTR retry + errno mapping ----------

TEST(SysIo, SysErrorCarriesOpAndCode) {
  try {
    mp::arch::raise_errno("connect", ECONNREFUSED);
    FAIL() << "raise_errno returned";
  } catch (const mp::arch::SysError& e) {
    EXPECT_EQ(e.code(), ECONNREFUSED);
    EXPECT_STREQ(e.op(), "connect");
    EXPECT_NE(std::string(e.what()).find("connect"), std::string::npos);
  }
}

TEST(SysIo, RetryEintrRestartsOnlyEintr) {
  int calls = 0;
  const long r = mp::arch::retry_eintr([&]() -> long {
    calls++;
    if (calls < 3) {
      errno = EINTR;
      return -1;
    }
    return 42;
  });
  EXPECT_EQ(r, 42);
  EXPECT_EQ(calls, 3);

  calls = 0;
  errno = 0;
  const long f = mp::arch::retry_eintr([&]() -> long {
    calls++;
    errno = EBADF;
    return -1;
  });
  EXPECT_EQ(f, -1);
  EXPECT_EQ(calls, 1);  // non-EINTR failures are not retried
  EXPECT_EQ(errno, EBADF);
}

TEST(SysIo, CheckSysThrowsOnFailure) {
  EXPECT_THROW(mp::arch::check_sys("fstat",
                                   []() -> long {
                                     errno = EBADF;
                                     return -1;
                                   }),
               mp::arch::SysError);
  EXPECT_EQ(mp::arch::check_sys("ok", []() -> long { return 7; }), 7);
}

// ---------- virtual pipes ----------

TEST(Pipe, RoundtripAndEof) {
  auto p = make_platform(Backend::kUni, 1);
  run_threads(*p, [](Scheduler& sched) {
    auto [rd, wr] = Stream::pipe(sched, 16);
    const char msg[] = "hello, reactor";
    wr.write_all(msg, sizeof(msg));
    char buf[sizeof(msg)] = {};
    rd.read_exact(buf, sizeof(msg));
    EXPECT_STREQ(buf, msg);
    wr.close();
    EXPECT_TRUE(rd.poll_readable());  // EOF counts as readable
    EXPECT_EQ(rd.read_some(buf, sizeof(buf)), 0u);
  });
}

TEST(Pipe, WriterGetsEpipeAfterReaderClose) {
  auto p = make_platform(Backend::kUni, 1);
  run_threads(*p, [](Scheduler& sched) {
    auto [rd, wr] = Stream::pipe(sched, 16);
    rd.close();
    char b = 'x';
    try {
      wr.write_all(&b, 1);
      FAIL() << "write to a closed pipe succeeded";
    } catch (const mp::arch::SysError& e) {
      EXPECT_EQ(e.code(), EPIPE);
    }
  });
}

TEST(Pipe, BoundedCapacityParksWriterUntilDrained) {
  auto p = make_platform(Backend::kNative, 2);
  run_threads(*p, [](Scheduler& sched) {
    auto [rd, wr] = Stream::pipe(sched, 8);  // far smaller than the message
    std::vector<unsigned char> msg(4096);
    std::iota(msg.begin(), msg.end(), 0);
    CountdownLatch done(sched, 1);
    sched.fork([&, wr]() mutable {
      wr.write_all(msg.data(), msg.size());
      wr.close();
      done.count_down();
    });
    std::vector<unsigned char> got(msg.size());
    rd.read_exact(got.data(), got.size());
    done.await();
    EXPECT_EQ(got, msg);
    EXPECT_EQ(rd.read_some(got.data(), 1), 0u);
  });
}

TEST(Pipe, ReadExactThrowsEofOnShortStream) {
  auto p = make_platform(Backend::kUni, 1);
  run_threads(*p, [](Scheduler& sched) {
    auto [rd, wr] = Stream::pipe(sched, 16);
    wr.write_all("ab", 2);
    wr.close();
    char buf[8];
    EXPECT_THROW(rd.read_exact(buf, 8), EofError);
  });
}

// ---------- reactor + TCP on a single proc ----------

// One proc serving both ends of a TCP connection is only possible if a
// blocked socket op releases the proc: the client parks in the reactor and
// the server thread runs.
TEST(Reactor, TcpEchoOnOneProc) {
  auto p = make_platform(Backend::kUni, 1);
  run_threads(*p, [](Scheduler& sched) {
    Reactor reactor(sched);
    Listener lis = Listener::tcp(reactor);
    CountdownLatch done(sched, 1);
    sched.fork([&] {
      Stream s = lis.accept();
      char buf[5];
      s.read_exact(buf, 5);
      s.write_all(buf, 5);
      s.close();
      done.count_down();
    });
    Stream c = Stream::connect_tcp(reactor, lis.port());
    c.write_all("12345", 5);
    char buf[5] = {};
    c.read_exact(buf, 5);
    EXPECT_EQ(std::memcmp(buf, "12345", 5), 0);
    c.close();
    done.await();
    lis.close();
  });
}

TEST(Reactor, PollBackendEcho) {
  auto p = make_platform(Backend::kUni, 1);
  run_threads(*p, [](Scheduler& sched) {
    ReactorConfig cfg;
    cfg.force_poll = true;  // portable poll(2) demultiplexer
    Reactor reactor(sched, cfg);
    Listener lis = Listener::tcp(reactor);
    CountdownLatch done(sched, 1);
    sched.fork([&] {
      Stream s = lis.accept();
      char buf[3];
      s.read_exact(buf, 3);
      s.write_all(buf, 3);
      s.close();
      done.count_down();
    });
    Stream c = Stream::connect_tcp(reactor, lis.port());
    c.write_all("abc", 3);
    char buf[3] = {};
    c.read_exact(buf, 3);
    EXPECT_EQ(std::memcmp(buf, "abc", 3), 0);
    c.close();
    done.await();
    lis.close();
  });
}

// Acceptance: no proc blocks in the kernel while runnable threads exist.
// A thread waits on a socket that stays silent; meanwhile a batch of
// compute threads must all run to completion on the same procs.
TEST(Reactor, ComputeProgressesWhileThreadParkedOnSocket) {
  auto p = make_platform(Backend::kNative, 4);
  run_threads(*p, [](Scheduler& sched) {
    Reactor reactor(sched);
    Listener lis = Listener::tcp(reactor);
    CountdownLatch accepted(sched, 1);
    CountdownLatch reader_done(sched, 1);
    std::atomic<bool> reader_finished{false};
    Stream server;
    sched.fork([&] {
      server = lis.accept();
      accepted.count_down();
    });
    Stream client = Stream::connect_tcp(reactor, lis.port());
    accepted.await();

    sched.fork([&, client]() mutable {
      char b;
      ASSERT_EQ(client.read_some(&b, 1), 1u);  // parks: no data yet
      EXPECT_EQ(b, '!');
      reader_finished.store(true);
      reader_done.count_down();
    });

    // 64 compute threads across 4 procs; every one must finish while the
    // reader stays parked against the silent socket.
    std::atomic<int> computed{0};
    mp::workloads::parallel_for_tasks(sched, 64, [&](int t) {
      long acc = 0;
      for (long i = 0; i < 20000; i++) acc += i ^ t;
      benchmark_sink.fetch_add(acc, std::memory_order_relaxed);
      computed.fetch_add(1);
    });
    EXPECT_EQ(computed.load(), 64);
    EXPECT_FALSE(reader_finished.load())
        << "reader completed with no data: the socket wait did not park";

    server.write_all("!", 1);
    reader_done.await();
    EXPECT_TRUE(reader_finished.load());
    client.close();
    server.close();
    lis.close();
  });
}

TEST(Reactor, LargeTransferBothDirections) {
  auto p = make_platform(Backend::kNative, 4);
  run_threads(*p, [](Scheduler& sched) {
    Reactor reactor(sched);
    Listener lis = Listener::tcp(reactor);
    constexpr std::size_t kBytes = 256 * 1024;  // far beyond socket buffers
    CountdownLatch echoed(sched, 1);
    CountdownLatch server_done(sched, 1);
    sched.fork([&] {  // server: echo everything, then close
      Stream s = lis.accept();
      std::vector<unsigned char> buf(8192);
      for (;;) {
        const std::size_t n = s.read_some(buf.data(), buf.size());
        if (n == 0) break;
        s.write_all(buf.data(), n);
      }
      s.close();
      server_done.count_down();
    });
    Stream c = Stream::connect_tcp(reactor, lis.port());
    std::vector<unsigned char> got;
    got.reserve(kBytes);
    sched.fork([&, c]() mutable {  // concurrent reader of the echo
      std::vector<unsigned char> buf(8192);
      while (got.size() < kBytes) {
        const std::size_t n = c.read_some(buf.data(), buf.size());
        ASSERT_GT(n, 0u);
        got.insert(got.end(), buf.begin(), buf.begin() + n);
      }
      echoed.count_down();
    });
    std::vector<unsigned char> sent(kBytes);
    for (std::size_t i = 0; i < kBytes; i++) {
      sent[i] = static_cast<unsigned char>(i * 2654435761u >> 7);
    }
    c.write_all(sent.data(), sent.size());  // parks repeatedly on full buffers
    echoed.await();
    EXPECT_EQ(got, sent);
    c.close();  // EOF ends the server's echo loop
    server_done.await();
    lis.close();
  });
}

// GC cooperation: a stop-the-world must complete while a thread is parked
// against a silent socket (the reactor's bounded wait + wake hook keep the
// sleeping proc reaching its safe point).
TEST(Reactor, GcCompletesWhileThreadParkedOnSocket) {
  mp::NativePlatformConfig cfg;
  cfg.max_procs = 2;
  cfg.heap.nursery_bytes = 64 * 1024;  // force frequent minor collections
  mp::NativePlatform plat(cfg);
  run_threads(plat, [&](Scheduler& sched) {
    Reactor reactor(sched);
    Listener lis = Listener::tcp(reactor);
    CountdownLatch accepted(sched, 1);
    CountdownLatch reader_done(sched, 1);
    Stream server;
    sched.fork([&] {
      server = lis.accept();
      accepted.count_down();
    });
    Stream client = Stream::connect_tcp(reactor, lis.port());
    accepted.await();
    sched.fork([&, client]() mutable {
      char b;
      ASSERT_EQ(client.read_some(&b, 1), 1u);
      reader_done.count_down();
    });
    auto& h = sched.platform().heap();
    const std::uint64_t minors_before = h.stats().minor_gcs;
    for (int i = 0; i < 20000; i++) {
      mp::gc::Roots<1> cell;
      cell[0] = h.alloc_record({mp::gc::Value::from_int(i),
                                mp::gc::Value::from_int(i * 2)});
      sched.platform().work(5);
    }
    EXPECT_GT(h.stats().minor_gcs, minors_before)
        << "allocation loop did not trigger a collection";
    server.write_all("x", 1);
    reader_done.await();
    client.close();
    server.close();
    lis.close();
  });
}

// Heavier variant of the test above, and the CI gc-stress workload: four
// procs, several threads parked against silent sockets, several threads
// allocating linked structures, with forced major collections mixed into the
// automatic minors.  Run with the parallel copier both on and off so the
// rendezvous worker dispatch and the sequential fallback both see the same
// churn (the TSan leg runs this test too).
void gc_stress_run(bool parallel_gc) {
  mp::NativePlatformConfig cfg;
  cfg.max_procs = 4;
  cfg.heap.nursery_bytes = 64 * 1024;  // force frequent minor collections
  cfg.heap.old_bytes = 2u << 20;
  cfg.heap.parallel_gc = parallel_gc;  // explicit: ignore MPNJ_GC_PARALLEL
  mp::NativePlatform plat(cfg);
  run_threads(plat, [&](Scheduler& sched) {
    Reactor reactor(sched);
    Listener lis = Listener::tcp(reactor);
    constexpr int kReaders = 2;
    constexpr int kAllocators = 3;
    constexpr int kRounds = 6;
    constexpr int kCells = 400;
    CountdownLatch accepted(sched, kReaders);
    CountdownLatch readers_done(sched, kReaders);
    std::vector<Stream> servers(kReaders);
    std::vector<Stream> clients;
    for (int i = 0; i < kReaders; i++) {
      sched.fork([&, i] {
        servers[static_cast<std::size_t>(i)] = lis.accept();
        accepted.count_down();
      });
    }
    for (int i = 0; i < kReaders; i++) {
      clients.push_back(Stream::connect_tcp(reactor, lis.port()));
    }
    accepted.await();
    for (int i = 0; i < kReaders; i++) {
      Stream c = clients[static_cast<std::size_t>(i)];
      sched.fork([&, c]() mutable {
        char b;
        ASSERT_EQ(c.read_some(&b, 1), 1u);  // parks until the final write
        readers_done.count_down();
      });
    }

    auto& h = sched.platform().heap();
    std::atomic<bool> sums_ok{true};
    CountdownLatch allocs_done(sched, kAllocators);
    for (int t = 0; t < kAllocators; t++) {
      sched.fork([&, t] {
        constexpr long kWant = static_cast<long>(kCells) * (kCells - 1) / 2;
        for (int round = 0; round < kRounds; round++) {
          mp::gc::Roots<1> r;
          r[0] = mp::gc::Value::nil();
          for (int i = 0; i < kCells; i++) {
            r[0] = h.cons(h.alloc_record({mp::gc::Value::from_int(i)}), r[0]);
            sched.platform().work(2);
          }
          // One thread folds forced collections (alternating minor-only and
          // major) into everyone else's automatic minors.
          if (t == 0) h.collect_now(/*force_major=*/(round % 2) == 1);
          long sum = 0;
          for (mp::gc::Value p = r[0]; !p.is_nil(); p = p.field(1)) {
            sum += p.field(0).field(0).as_int();
          }
          if (sum != kWant) sums_ok = false;
        }
        allocs_done.count_down();
      });
    }
    allocs_done.await();
    EXPECT_TRUE(sums_ok) << "a collection corrupted a live list";
    const auto s = h.stats();
    EXPECT_GT(s.minor_gcs, 0u);
    EXPECT_GT(s.major_gcs, 0u);

    for (auto& sv : servers) sv.write_all("x", 1);
    readers_done.await();
    for (auto& c : clients) c.close();
    for (auto& sv : servers) sv.close();
    lis.close();
  });
  std::string err;
  EXPECT_TRUE(plat.heap().verify(&err)) << err;
}

TEST(Reactor, GcStressParallelWithParkedReaders) { gc_stress_run(true); }

TEST(Reactor, GcStressSequentialWithParkedReaders) { gc_stress_run(false); }

// ---------- CML select: channel vs timer vs stream readiness ----------

struct SelectCounts {
  int channel = 0;
  int timer = 0;
  int stream = 0;
};

// One race round: three sources (channel send, timer, pipe write) armed
// with the given delays; the selector syncs on all three at once.  After
// the race, the leftovers are consumed so every source thread terminates
// and the stream's byte is accounted for.
void select_race_round(Scheduler& sched, double send_delay_us,
                       double timer_us, double write_delay_us,
                       SelectCounts& counts) {
  Channel<std::uint64_t> ch(sched);
  auto [rd, wr] = Stream::pipe(sched, 4);
  CountdownLatch sources(sched, 2);
  sched.fork([&, send_delay_us] {
    if (send_delay_us > 0) sched.sleep_for(send_delay_us);
    ch.send(7);
    sources.count_down();
  });
  sched.fork([&, write_delay_us]() {
    if (write_delay_us > 0) sched.sleep_for(write_delay_us);
    wr.write_all("!", 1);
    sources.count_down();
  });

  int winner = -1;
  Event<Unit>::choose(
      {ch.recv_event().wrap<Unit>([&](std::uint64_t v) {
        EXPECT_EQ(v, 7u);
        winner = 0;
        return Unit{};
      }),
       Event<Unit>::after(sched, timer_us).wrap<Unit>([&](Unit) {
         winner = 1;
         return Unit{};
       }),
       mp::io::readable_event(rd).wrap<Unit>([&](Unit) {
         winner = 2;
         return Unit{};
       })})
      .sync(sched);
  ASSERT_GE(winner, 0);
  ASSERT_LE(winner, 2);
  (winner == 0 ? counts.channel : winner == 1 ? counts.timer : counts.stream)++;

  // Post-race cleanup: whatever did not win is still pending.  The channel
  // sender must rendezvous (unless it already did) and the written byte
  // must still be readable.
  if (winner != 0) {
    EXPECT_EQ(ch.recv(), 7u);
  }
  char b = 0;
  rd.read_exact(&b, 1);
  EXPECT_EQ(b, '!');
  sources.await();
  wr.close();
  rd.close();
}

class IoSelect : public ::testing::TestWithParam<Backend> {};

TEST_P(IoSelect, RacesChannelTimerAndStreamReadiness) {
  auto p = make_platform(GetParam(), 4);
  run_threads(*p, [](Scheduler& sched) {
    SelectCounts counts;
    // Delay grids push each source to win some rounds: immediate sends,
    // immediate data, short timers, and mixed orderings.  TSan slows
    // dispatch enough that sub-millisecond margins between the timer and
    // the delayed senders vanish; stretch real time so the orderings the
    // grid encodes still hold.  (Sim runs on virtual time — the scale is
    // harmless there.)
    const double scale = MPNJ_SAN_THREAD ? 25.0 : 1.0;
    const double delays[] = {0, 300 * scale, 900 * scale};
    for (int rep = 0; rep < 2; rep++) {
      for (const double sd : delays) {
        for (const double td : {200.0 * scale, 700.0 * scale}) {
          for (const double wd : delays) {
            select_race_round(sched, sd, td, wd, counts);
          }
        }
      }
    }
    const int total = counts.channel + counts.timer + counts.stream;
    EXPECT_EQ(total, 2 * 3 * 2 * 3);  // exactly one winner per round
    // Every source must be capable of winning (delay 0 beats a 200us timer;
    // an all-delayed round falls to the timer).
    EXPECT_GT(counts.channel, 0);
    EXPECT_GT(counts.timer, 0);
    EXPECT_GT(counts.stream, 0);
  });
}

INSTANTIATE_TEST_SUITE_P(All, IoSelect,
                         ::testing::Values(Backend::kSim, Backend::kNative,
                                           Backend::kUni),
                         backend_name);

// The same select is deterministic on the simulator: two runs on fresh
// engines produce identical winner tallies and identical virtual finish
// times.
TEST(IoSelect, DeterministicOnSim) {
  auto tally = [] {
    mp::SimPlatformConfig cfg;
    cfg.machine = mp::sim::sequent_s81(4);
    mp::SimPlatform plat(cfg);
    SelectCounts counts;
    run_threads(plat, [&](Scheduler& sched) {
      for (const double sd : {0.0, 250.0, 800.0}) {
        for (const double wd : {0.0, 250.0, 800.0}) {
          select_race_round(sched, sd, 400.0, wd, counts);
        }
      }
    });
    return std::tuple{counts.channel, counts.timer, counts.stream,
                      plat.report().total_us};
  };
  EXPECT_EQ(tally(), tally());
}

// ---------- net_echo workload ----------

TEST(NetEcho, PipeTransportOnEveryBackend) {
  for (const Backend b : {Backend::kSim, Backend::kNative, Backend::kUni}) {
    auto p = make_platform(b, 4);
    mp::workloads::NetEchoOptions opts;
    opts.connections = 8;
    opts.roundtrips = 20;
    opts.payload_bytes = 48;
    auto w = mp::workloads::make_net_echo(opts);
    run_threads(*p, [&](Scheduler& sched) { w->run(sched, 4); });
    EXPECT_TRUE(w->verify()) << "backend " << static_cast<int>(b);
  }
}

TEST(NetEcho, PipeChecksumMatchesAcrossBackends) {
  std::vector<std::uint64_t> sums;
  for (const Backend b : {Backend::kSim, Backend::kNative, Backend::kUni}) {
    auto p = make_platform(b, 4);
    auto w = mp::workloads::make_net_echo({});
    run_threads(*p, [&](Scheduler& sched) { w->run(sched, 4); });
    ASSERT_TRUE(w->verify());
    sums.push_back(w->checksum());
  }
  EXPECT_EQ(sums[0], sums[1]);
  EXPECT_EQ(sums[1], sums[2]);
}

// Acceptance: >= 10,000 echo roundtrips across >= 4 procs over real
// loopback TCP, exact verification.
TEST(NetEcho, TenThousandTcpRoundtripsOnFourProcs) {
  auto p = make_platform(Backend::kNative, 4);
  mp::workloads::NetEchoOptions opts;
  opts.connections = 64;
  opts.roundtrips = 160;  // 64 * 160 = 10,240 roundtrips
  opts.payload_bytes = 64;
  opts.tcp = true;
  auto w = mp::workloads::make_net_echo(opts);
  run_threads(*p, [&](Scheduler& sched) { w->run(sched, 4); });
  EXPECT_TRUE(w->verify());
}

// CI smoke: 256 concurrent connections through one reactor.
TEST(NetEcho, Loopback256Connections) {
  auto p = make_platform(Backend::kNative, 4);
  mp::workloads::NetEchoOptions opts;
  opts.connections = 256;
  opts.roundtrips = 10;
  opts.payload_bytes = 32;
  opts.tcp = true;
  auto w = mp::workloads::make_net_echo(opts);
  run_threads(*p, [&](Scheduler& sched) { w->run(sched, 4); });
  EXPECT_TRUE(w->verify());
}

// ---------- scheduler idle backoff + reactor metrics ----------

#if MPNJ_METRICS
TEST(IdleMetrics, BackoffAndReactorCountersAdvance) {
  auto& reg = mp::metrics::registry();
  const auto before = reg.snapshot();
  auto p = make_platform(Backend::kNative, 4);
  run_threads(*p, [](Scheduler& sched) {
    Reactor reactor(sched);
    Listener lis = Listener::tcp(reactor);
    CountdownLatch done(sched, 1);
    sched.fork([&] {
      Stream s = lis.accept();
      char b;
      ASSERT_EQ(s.read_some(&b, 1), 1u);
      s.write_all(&b, 1);
      s.close();
      done.count_down();
    });
    Stream c = Stream::connect_tcp(reactor, lis.port());
    sched.sleep_for(4000);  // all procs idle: the backoff path must engage
    c.write_all("z", 1);
    char b = 0;
    c.read_exact(&b, 1);
    done.await();
    c.close();
    lis.close();
  });
  const auto after = reg.snapshot();
  using mp::metrics::Counter;
  auto delta = [&](Counter c) {
    return after.counter(c) - before.counter(c);
  };
  EXPECT_GT(delta(Counter::kSchedIdleBackoff), 0u);
  EXPECT_GT(delta(Counter::kIoParked), 0u);
  EXPECT_GT(delta(Counter::kIoWakeups), 0u);
  EXPECT_GT(delta(Counter::kIoBytesRead), 0u);
  EXPECT_GT(delta(Counter::kIoBytesWritten), 0u);
}
#endif

}  // namespace
