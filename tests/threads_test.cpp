// Tests for the thread package (paper Figures 1/3): fork/yield/id over the
// queue disciplines, preemption, and the synthesized synchronization
// primitives — on both the simulator and native kernel threads.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <vector>

#include "mp/native_platform.h"
#include "mp/sim_platform.h"
#include "threads/scheduler.h"
#include "threads/sync.h"

namespace {

using mp::threads::Barrier;
using mp::threads::CentralFifoQueue;
using mp::threads::CentralLifoQueue;
using mp::threads::CondVar;
using mp::threads::CountdownLatch;
using mp::threads::DistributedQueue;
using mp::threads::Mutex;
using mp::threads::RandomQueue;
using mp::threads::RWLock;
using mp::threads::Scheduler;
using mp::threads::SchedulerConfig;
using mp::threads::Semaphore;

enum class Backend { kSim, kNative };

std::string backend_name(const ::testing::TestParamInfo<Backend>& info) {
  return info.param == Backend::kSim ? "Sim" : "Native";
}

class ThreadsTest : public ::testing::TestWithParam<Backend> {
 protected:
  std::unique_ptr<mp::Platform> make(int procs,
                                     std::size_t nursery = 512 * 1024) {
    if (GetParam() == Backend::kSim) {
      mp::SimPlatformConfig cfg;
      cfg.machine = mp::sim::sequent_s81(procs);
      cfg.heap.nursery_bytes = nursery;
      return std::make_unique<mp::SimPlatform>(cfg);
    }
    mp::NativePlatformConfig cfg;
    cfg.max_procs = procs;
    cfg.heap.nursery_bytes = nursery;
    return std::make_unique<mp::NativePlatform>(cfg);
  }

  void run(mp::Platform& p, const std::function<void(Scheduler&)>& fn,
           SchedulerConfig cfg = {}) {
    Scheduler::run(p, std::move(cfg), fn);
  }
};

TEST_P(ThreadsTest, ForkRunsChild) {
  auto p = make(2);
  std::atomic<bool> child_ran{false};
  run(*p, [&](Scheduler& s) {
    s.fork([&] { child_ran.store(true); });
    // Scheduler::run drains forked threads before returning.
  });
  EXPECT_TRUE(child_ran.load());
}

TEST_P(ThreadsTest, ManyForksAllComplete) {
  constexpr int kThreads = 200;
  auto p = make(4);
  std::atomic<int> completed{0};
  run(*p, [&](Scheduler& s) {
    CountdownLatch latch(s, kThreads);
    for (int i = 0; i < kThreads; i++) {
      s.fork([&] {
        completed.fetch_add(1);
        latch.count_down();
      });
    }
    latch.await();
    EXPECT_EQ(completed.load(), kThreads);
  });
  EXPECT_EQ(completed.load(), kThreads);
}

TEST_P(ThreadsTest, ThreadIdsAreUnique) {
  constexpr int kThreads = 50;
  auto p = make(3);
  std::set<int> ids;
  run(*p, [&](Scheduler& s) {
    EXPECT_EQ(s.id(), 0) << "root thread is id 0";
    Mutex m(s);
    CountdownLatch latch(s, kThreads);
    for (int i = 0; i < kThreads; i++) {
      s.fork([&] {
        m.lock();
        ids.insert(s.id());
        m.unlock();
        latch.count_down();
      });
    }
    latch.await();
  });
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(kThreads));
  EXPECT_EQ(ids.count(0), 0u) << "children must not reuse the root id";
}

TEST_P(ThreadsTest, YieldInterleavesThreadsOnOneProc) {
  auto p = make(1);
  std::vector<int> trace;
  SchedulerConfig cfg;
  cfg.queue = std::make_unique<CentralFifoQueue>();
  run(*p,
      [&](Scheduler& s) {
        CountdownLatch latch(s, 2);
        for (int id = 1; id <= 2; id++) {
          s.fork([&, id] {
            for (int i = 0; i < 3; i++) {
              trace.push_back(id);
              s.yield();
            }
            latch.count_down();
          });
        }
        latch.await();
      },
      std::move(cfg));
  // With a single proc and a FIFO queue the two threads must alternate.
  ASSERT_EQ(trace.size(), 6u);
  for (std::size_t i = 0; i + 2 < trace.size(); i += 2) {
    EXPECT_NE(trace[i], trace[i + 1]) << "threads did not interleave at " << i;
  }
}

TEST_P(ThreadsTest, NestedForksFormATree) {
  auto p = make(4);
  std::atomic<long> sum{0};
  run(*p, [&](Scheduler& s) {
    CountdownLatch latch(s, 1);
    // Parallel divide-and-conquer sum of 1..64.
    std::function<void(int, int, CountdownLatch*)> go =
        [&](int lo, int hi, CountdownLatch* done) {
          if (hi - lo <= 4) {
            long acc = 0;
            for (int i = lo; i < hi; i++) acc += i;
            sum.fetch_add(acc);
            done->count_down();
            return;
          }
          const int mid = lo + (hi - lo) / 2;
          auto* inner = new CountdownLatch(s, 2);
          s.fork([&go, lo, mid, inner] { go(lo, mid, inner); });
          s.fork([&go, mid, hi, inner] { go(mid, hi, inner); });
          inner->await();
          delete inner;
          done->count_down();
        };
    go(1, 65, &latch);
    latch.await();
  });
  EXPECT_EQ(sum.load(), 64L * 65 / 2);
}

TEST_P(ThreadsTest, Figure3ModeReleasesProcsWhenIdle) {
  auto p = make(3);
  std::atomic<int> completed{0};
  SchedulerConfig cfg;
  cfg.hold_procs = false;  // exact Figure 3 behaviour
  run(*p,
      [&](Scheduler& s) {
        CountdownLatch latch(s, 20);
        for (int i = 0; i < 20; i++) {
          s.fork([&] {
            s.yield();
            completed.fetch_add(1);
            latch.count_down();
          });
        }
        latch.await();
      },
      std::move(cfg));
  EXPECT_EQ(completed.load(), 20);
}

TEST_P(ThreadsTest, AllQueueDisciplinesComplete) {
  for (int which = 0; which < 4; which++) {
    auto p = make(4);
    std::atomic<int> completed{0};
    SchedulerConfig cfg;
    switch (which) {
      case 0: cfg.queue = std::make_unique<CentralFifoQueue>(); break;
      case 1: cfg.queue = std::make_unique<CentralLifoQueue>(); break;
      case 2: cfg.queue = std::make_unique<RandomQueue>(); break;
      case 3: cfg.queue = std::make_unique<DistributedQueue>(); break;
    }
    run(*p,
        [&](Scheduler& s) {
          CountdownLatch latch(s, 60);
          for (int i = 0; i < 60; i++) {
            s.fork([&] {
              s.yield();
              completed.fetch_add(1);
              latch.count_down();
            });
          }
          latch.await();
        },
        std::move(cfg));
    EXPECT_EQ(completed.load(), 60) << "discipline " << which;
    completed = 0;
  }
}

TEST_P(ThreadsTest, MutexProtectsCriticalSection) {
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  auto p = make(4);
  long counter = 0;
  run(*p, [&](Scheduler& s) {
    Mutex m(s);
    CountdownLatch latch(s, kThreads);
    for (int i = 0; i < kThreads; i++) {
      s.fork([&] {
        for (int n = 0; n < kIters; n++) {
          m.lock();
          counter++;
          m.unlock();
          s.platform().work(10);
        }
        latch.count_down();
      });
    }
    latch.await();
  });
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TEST_P(ThreadsTest, MutexTryLock) {
  auto p = make(2);
  run(*p, [&](Scheduler& s) {
    Mutex m(s);
    EXPECT_TRUE(m.try_lock());
    EXPECT_FALSE(m.try_lock());
    m.unlock();
    EXPECT_TRUE(m.try_lock());
    m.unlock();
  });
}

TEST_P(ThreadsTest, CondVarProducerConsumer) {
  auto p = make(3);
  std::vector<int> consumed;
  run(*p, [&](Scheduler& s) {
    Mutex m(s);
    CondVar cv(s);
    std::deque<int> buffer;
    bool done = false;
    CountdownLatch latch(s, 2);
    s.fork([&] {  // consumer
      m.lock();
      for (;;) {
        while (buffer.empty() && !done) cv.wait(m);
        if (!buffer.empty()) {
          consumed.push_back(buffer.front());
          buffer.pop_front();
        } else if (done) {
          break;
        }
      }
      m.unlock();
      latch.count_down();
    });
    s.fork([&] {  // producer
      for (int i = 0; i < 50; i++) {
        m.lock();
        buffer.push_back(i);
        cv.signal();
        m.unlock();
        if (i % 7 == 0) s.yield();
      }
      m.lock();
      done = true;
      cv.broadcast();
      m.unlock();
      latch.count_down();
    });
    latch.await();
  });
  ASSERT_EQ(consumed.size(), 50u);
  for (int i = 0; i < 50; i++) EXPECT_EQ(consumed[static_cast<size_t>(i)], i);
}

TEST_P(ThreadsTest, BarrierRunsInLockstep) {
  constexpr int kThreads = 6;
  constexpr int kPhases = 5;
  auto p = make(3);
  std::atomic<int> phase_counts[kPhases] = {};
  std::atomic<bool> violation{false};
  run(*p, [&](Scheduler& s) {
    Barrier barrier(s, kThreads);
    CountdownLatch latch(s, kThreads);
    for (int t = 0; t < kThreads; t++) {
      s.fork([&] {
        for (int ph = 0; ph < kPhases; ph++) {
          phase_counts[ph].fetch_add(1);
          barrier.arrive_and_wait();
          // After the barrier, every thread must have finished this phase.
          if (phase_counts[ph].load() != kThreads) violation.store(true);
        }
        latch.count_down();
      });
    }
    latch.await();
  });
  EXPECT_FALSE(violation.load());
  for (int ph = 0; ph < kPhases; ph++) {
    EXPECT_EQ(phase_counts[ph].load(), kThreads);
  }
}

TEST_P(ThreadsTest, SemaphoreBoundsConcurrency) {
  constexpr int kThreads = 10;
  constexpr int kPermits = 3;
  auto p = make(4);
  std::atomic<int> inside{0};
  std::atomic<int> peak{0};
  run(*p, [&](Scheduler& s) {
    Semaphore sem(s, kPermits);
    CountdownLatch latch(s, kThreads);
    for (int i = 0; i < kThreads; i++) {
      s.fork([&] {
        for (int n = 0; n < 20; n++) {
          sem.acquire();
          const int now = inside.fetch_add(1) + 1;
          int prev = peak.load();
          while (now > prev && !peak.compare_exchange_weak(prev, now)) {
          }
          s.platform().work(20);
          inside.fetch_sub(1);
          sem.release();
        }
        latch.count_down();
      });
    }
    latch.await();
  });
  EXPECT_LE(peak.load(), kPermits);
  EXPECT_GT(peak.load(), 0);
}

TEST_P(ThreadsTest, RWLockAllowsConcurrentReaders) {
  auto p = make(4);
  std::atomic<int> readers_inside{0};
  std::atomic<int> max_readers{0};
  std::atomic<bool> writer_overlap{false};
  run(*p, [&](Scheduler& s) {
    RWLock rw(s);
    CountdownLatch latch(s, 7);
    for (int i = 0; i < 6; i++) {
      s.fork([&] {
        for (int n = 0; n < 30; n++) {
          rw.lock_shared();
          const int now = readers_inside.fetch_add(1) + 1;
          int prev = max_readers.load();
          while (now > prev && !max_readers.compare_exchange_weak(prev, now)) {
          }
          s.platform().work(15);
          readers_inside.fetch_sub(1);
          rw.unlock_shared();
          s.yield();
        }
        latch.count_down();
      });
    }
    s.fork([&] {  // writer
      for (int n = 0; n < 10; n++) {
        rw.lock_exclusive();
        if (readers_inside.load() != 0) writer_overlap.store(true);
        s.platform().work(30);
        if (readers_inside.load() != 0) writer_overlap.store(true);
        rw.unlock_exclusive();
        s.yield();
      }
      latch.count_down();
    });
    latch.await();
  });
  EXPECT_FALSE(writer_overlap.load());
}

TEST_P(ThreadsTest, PreemptionInterleavesComputeBoundThreads) {
  auto p = make(1);
  std::vector<int> trace;
  SchedulerConfig cfg;
  cfg.preempt_interval_us = 300;
  run(*p,
      [&](Scheduler& s) {
        CountdownLatch latch(s, 2);
        for (int id = 1; id <= 2; id++) {
          s.fork([&, id] {
            // Compute-bound: never yields voluntarily.  Each iteration
            // burns ~50us (virtual on the simulator, real on native) so the
            // 300us preemption timer fires many times.
            for (int i = 0; i < 200; i++) {
              trace.push_back(id);
              const double t0 = s.platform().now_us();
              while (s.platform().now_us() - t0 < 50) s.platform().work(20);
            }
            latch.count_down();
          });
        }
        latch.await();
      },
      std::move(cfg));
  // Without preemption thread 1 would fully precede thread 2 on one proc;
  // the timer must have forced at least a few switches.
  ASSERT_EQ(trace.size(), 400u);
  int switches = 0;
  for (std::size_t i = 1; i < trace.size(); i++) {
    if (trace[i] != trace[i - 1]) switches++;
  }
  EXPECT_GT(switches, 3);
}

TEST_P(ThreadsTest, ForkedThreadsAllocateOnTheSharedHeap) {
  auto p = make(4, /*nursery=*/64 * 1024);
  std::atomic<long> checksum{0};
  run(*p, [&](Scheduler& s) {
    auto& h = s.platform().heap();
    CountdownLatch latch(s, 6);
    for (int t = 0; t < 6; t++) {
      s.fork([&, t] {
        mp::gc::Roots<1> r;
        r[0] = h.alloc_record({mp::gc::Value::from_int(t * 1000)});
        for (int n = 0; n < 3000; n++) {
          h.alloc_record({mp::gc::Value::from_int(n)});
          if (n % 512 == 0) s.yield();
        }
        checksum.fetch_add(r[0].field(0).as_int());
        latch.count_down();
      });
    }
    latch.await();
    EXPECT_GT(h.stats().minor_gcs, 0u);
  });
  EXPECT_EQ(checksum.load(), (0 + 1 + 2 + 3 + 4 + 5) * 1000L);
}

TEST_P(ThreadsTest, StressManyThreadsWithYields) {
  constexpr int kThreads = 500;
  auto p = make(4);
  std::atomic<int> completed{0};
  run(*p, [&](Scheduler& s) {
    CountdownLatch latch(s, kThreads);
    for (int i = 0; i < kThreads; i++) {
      s.fork([&, i] {
        for (int n = 0; n < i % 5; n++) s.yield();
        completed.fetch_add(1);
        latch.count_down();
      });
    }
    latch.await();
  });
  EXPECT_EQ(completed.load(), kThreads);
}

INSTANTIATE_TEST_SUITE_P(Backends, ThreadsTest,
                         ::testing::Values(Backend::kSim, Backend::kNative),
                         backend_name);

TEST(ThreadsSim, DeterministicSchedule) {
  auto run_once = [] {
    mp::SimPlatformConfig cfg;
    cfg.machine = mp::sim::sequent_s81(8);
    mp::SimPlatform p(cfg);
    double total = 0;
    Scheduler::run(p, {}, [&](Scheduler& s) {
      CountdownLatch latch(s, 100);
      for (int i = 0; i < 100; i++) {
        s.fork([&, i] {
          s.platform().work(100 + (i % 13) * 17);
          s.yield();
          s.platform().work(50);
          latch.count_down();
        });
      }
      latch.await();
    });
    total = p.report().total_us;
    return total;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(ThreadsSim, MoreProcsFinishSoonerOnParallelWork) {
  auto elapsed = [](int procs) {
    mp::SimPlatformConfig cfg;
    cfg.machine = mp::sim::sequent_s81(procs);
    mp::SimPlatform p(cfg);
    Scheduler::run(p, {}, [&](Scheduler& s) {
      CountdownLatch latch(s, 32);
      for (int i = 0; i < 32; i++) {
        s.fork([&] {
          s.platform().work(20000);  // pure compute, no bus traffic
          latch.count_down();
        });
      }
      latch.await();
    });
    return p.report().total_us;
  };
  const double t1 = elapsed(1);
  const double t8 = elapsed(8);
  EXPECT_GT(t1 / t8, 5.0) << "8 procs should speed up close to 8x";
  EXPECT_LT(t1 / t8, 8.5);
}

}  // namespace
